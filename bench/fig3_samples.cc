// Figure 3 — "Samples per period", 1000 samples per 20 s period.
//
// The relaxed algorithm occasionally over-samples (and then final-cleans
// back down to N), while the non-relaxed algorithm frequently under-samples
// after load drops, causing the Fig. 2 underestimation. We report the
// windows' final sample counts for both variants.

#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

std::vector<WindowStats> RunWindows(const Trace& trace, double relax) {
  CompiledQuery cq = MustCompile(
      SubsetSumSql(1000, relax, 2.0, /*probabilistic=*/true), /*seed=*/17);
  Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    std::exit(1);
  }
  return run->windows;
}

}  // namespace

int main() {
  Trace trace = TraceGenerator::MakeResearchFeed(601.0, /*seed=*/2005);

  PrintHeader("Figure 3: samples per period (target 1000)");
  std::vector<WindowStats> relaxed = RunWindows(trace, 10.0);
  std::vector<WindowStats> nonrelaxed = RunWindows(trace, 1.0);

  std::printf("%-8s %14s %14s %18s %18s\n", "window", "relaxed",
              "nonrelaxed", "admitted(rel)", "admitted(nonrel)");
  size_t windows = std::min(relaxed.size(), nonrelaxed.size());
  uint64_t rel_total = 0, nonrel_total = 0, rel_under = 0, nonrel_under = 0;
  for (size_t w = 0; w < windows; ++w) {
    std::printf("%-8zu %14llu %14llu %18llu %18llu\n", w,
                static_cast<unsigned long long>(relaxed[w].groups_output),
                static_cast<unsigned long long>(nonrelaxed[w].groups_output),
                static_cast<unsigned long long>(relaxed[w].tuples_admitted),
                static_cast<unsigned long long>(nonrelaxed[w].tuples_admitted));
    rel_total += relaxed[w].groups_output;
    nonrel_total += nonrelaxed[w].groups_output;
    if (w + 1 < windows) {  // full windows only
      if (relaxed[w].groups_output < 800) ++rel_under;
      if (nonrelaxed[w].groups_output < 800) ++nonrel_under;
    }
  }
  std::printf(
      "\nsummary: relaxed total samples = %llu, nonrelaxed = %llu; "
      "under-sampled windows (<800): relaxed %llu, nonrelaxed %llu\n",
      static_cast<unsigned long long>(rel_total),
      static_cast<unsigned long long>(nonrel_total),
      static_cast<unsigned long long>(rel_under),
      static_cast<unsigned long long>(nonrel_under));
  std::printf(
      "paper shape: nonrelaxed frequently under-samples, relaxed holds the "
      "target -> %s\n",
      (nonrel_under > rel_under && rel_total > nonrel_total) ? "REPRODUCED"
                                                             : "CHECK");
  return 0;
}
