// §8 extension — flow-integrated subset-sum sampling ("sampled flows").
//
// The paper's conclusion describes the problem: computing flow statistics
// by first aggregating flows and then sampling needs one group per flow,
// and a DDoS of single-packet flows explodes the group table. Their fix —
// "integrating flow aggregation with sampling into a single query
// processing phase [so] small flows can be quickly sampled and purged from
// the group table" — is expressible in the sampling operator as-is.
//
// The sampled-flows query admits *packets* through the dynamic subset-sum
// test (ssample in WHERE) and aggregates the admitted packets into flow
// groups, accumulating HT-adjusted packet weights
// (sum(UMAX(len, ssthreshold()))); cleaning phases then re-threshold whole
// flows by their adjusted weight. Small flows rarely get a packet past the
// admission test ("small flows can be quickly sampled and purged"), so the
// group table tracks the sample-size target instead of the flow count.
//
// This benchmark runs a DDoS trace through (a) the naive flow-aggregation
// query and (b) the sampled-flows query, and reports the group-table
// high-water mark (the memory story), the per-window byte-sum estimate
// accuracy, and heavy-flow recovery.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "net/flow_generator.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

constexpr char kFlowCols[] = "srcIP, destIP, srcPort, destPort, proto";

std::string NaiveFlowSql() {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "SELECT tb, %s, sum(len), count(*) FROM PKT "
                "GROUP BY time/20 as tb, %s",
                kFlowCols, kFlowCols);
  return buf;
}

std::string SampledFlowSql(uint64_t n) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
      SELECT tb, %s,
             UMAX(sum(UMAX(len, ssthreshold())), ssthreshold()), count(*)
      FROM PKT
      WHERE ssample(len, %llu, 2, 10) = TRUE
      GROUP BY time/20 as tb, %s
      HAVING ssfinal_clean(sum(UMAX(len, ssthreshold())),
                           count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(UMAX(len, ssthreshold()))) = TRUE
  )",
                kFlowCols, static_cast<unsigned long long>(n), kFlowCols);
  return buf;
}

}  // namespace

int main() {
  FlowTraceConfig cfg;
  cfg.duration_sec = 100.0;
  cfg.seed = 88;
  cfg.attack_enabled = true;
  cfg.attack_start_sec = 40.0;
  cfg.attack_duration_sec = 20.0;
  cfg.attack_flows_per_sec = 25000.0;
  Trace trace = GenerateFlowTrace(cfg);
  FlowWindowTruth truth = ComputeFlowTruth(trace, 20);

  PrintHeader("sampled flows: flow aggregation integrated with sampling");
  std::printf(
      "trace: %zu packets over %.0f s; single-packet-flow flood during "
      "[%.0f s, %.0f s)\n\n",
      trace.size(), trace.DurationSec(), cfg.attack_start_sec,
      cfg.attack_start_sec + cfg.attack_duration_sec);

  const uint64_t kTarget = 1000;
  CompiledQuery naive = MustCompile(NaiveFlowSql(), 91);
  CompiledQuery sampled = MustCompile(SampledFlowSql(kTarget), 92);

  Result<SingleRunResult> naive_run = RunQueryOverTrace(naive, trace);
  Result<SingleRunResult> sampled_run = RunQueryOverTrace(sampled, trace);
  if (!naive_run.ok() || !sampled_run.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  // Per-window byte estimates from the sampled-flows output.
  std::vector<double> est(truth.bytes_per_window.size(), 0.0);
  for (const Tuple& t : sampled_run->output) {
    uint64_t tb = t[0].AsUInt();
    if (tb < est.size()) est[tb] += t[6].AsDouble();
  }

  std::printf("%-8s %12s | %14s %14s | %12s %8s\n", "window", "flows",
              "naive groups", "sampled peak", "est. bytes", "err");
  uint64_t naive_peak = 0, sampled_peak = 0;
  for (size_t w = 0; w < truth.flows_per_window.size(); ++w) {
    uint64_t ng = w < naive_run->windows.size()
                      ? naive_run->windows[w].peak_groups
                      : 0;
    uint64_t sg = w < sampled_run->windows.size()
                      ? sampled_run->windows[w].peak_groups
                      : 0;
    naive_peak = std::max(naive_peak, ng);
    sampled_peak = std::max(sampled_peak, sg);
    double actual = static_cast<double>(truth.bytes_per_window[w]);
    std::printf("%-8zu %12llu | %14llu %14llu | %12.3e %+7.1f%%\n", w,
                static_cast<unsigned long long>(truth.flows_per_window[w]),
                static_cast<unsigned long long>(ng),
                static_cast<unsigned long long>(sg), est[w],
                actual > 0 ? 100.0 * (est[w] - actual) / actual : 0.0);
  }

  // Heavy-flow recovery: are the top true flows in the sample?
  std::map<uint64_t, uint64_t> flow_bytes;  // flow hash -> bytes (all windows)
  for (const PacketRecord& p : trace.packets()) {
    flow_bytes[FlowKeyOf(p).Hash()] += p.len;
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranked;  // (bytes, hash)
  for (auto& [h, b] : flow_bytes) ranked.push_back({b, h});
  std::sort(ranked.rbegin(), ranked.rend());

  std::set<std::array<uint64_t, 5>> sampled_flows;
  for (const Tuple& t : sampled_run->output) {
    sampled_flows.insert({t[1].AsUInt(), t[2].AsUInt(), t[3].AsUInt(),
                          t[4].AsUInt(), t[5].AsUInt()});
  }
  std::map<uint64_t, bool> hash_sampled;
  for (const auto& f : sampled_flows) {
    FlowKey k{static_cast<uint32_t>(f[0]), static_cast<uint32_t>(f[1]),
              static_cast<uint16_t>(f[2]), static_cast<uint16_t>(f[3]),
              static_cast<uint8_t>(f[4])};
    hash_sampled[k.Hash()] = true;
  }
  int top_recovered = 0;
  const int kTop = 50;
  for (int i = 0; i < kTop && i < static_cast<int>(ranked.size()); ++i) {
    if (hash_sampled.count(ranked[static_cast<size_t>(i)].second) > 0) {
      ++top_recovered;
    }
  }

  std::printf(
      "\nsummary: naive flow aggregation peaks at %llu live groups during "
      "the flood; the sampled-flows query peaks at %llu (budget: "
      "beta*N = %llu); top-%d heaviest flows recovered in sample: %d\n",
      static_cast<unsigned long long>(naive_peak),
      static_cast<unsigned long long>(sampled_peak),
      static_cast<unsigned long long>(2 * kTarget), kTop, top_recovered);
  std::printf(
      "paper shape: integrated sampling keeps the group table bounded "
      "through the flood while heavy flows stay in the sample -> %s\n",
      (sampled_peak < naive_peak / 10 && top_recovered > kTop * 8 / 10)
          ? "REPRODUCED"
          : "CHECK");
  return 0;
}
