// Micro-benchmarks (google-benchmark): the query-engine hot paths — tuple
// conversion, selection, plain aggregation through the sampling operator,
// and the full dynamic subset-sum query — in tuples/second.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/serde.h"
#include "engine/checkpoint.h"
#include "engine/query_node.h"
#include "net/trace_generator.h"
#include "stream/stream_source.h"
#include "tuple/tuple_batch.h"

namespace streamop {
namespace {

const Trace& BenchTrace() {
  static const Trace* trace =
      new Trace(TraceGenerator::MakeDataCenterFeed(2.0, 7));
  return *trace;
}

void BM_PacketToTuple(benchmark::State& state) {
  const Trace& trace = BenchTrace();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PacketToTuple(trace.at(i)));
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketToTuple);

// Pushes the whole trace through a freshly compiled query once per
// iteration, batched the way the runtime drives nodes (512-row TupleBatches
// refilled from the packet trace); reports tuples/second.
void RunQueryBenchmark(benchmark::State& state, const std::string& sql) {
  const Trace& trace = BenchTrace();
  Catalog catalog = Catalog::Default();
  for (auto _ : state) {
    Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 3});
    if (!cq.ok()) {
      state.SkipWithError(cq.status().ToString().c_str());
      return;
    }
    QueryNode node("bench", *cq);
    TupleBatch batch(node.input_width(), 512);
    const std::vector<PacketRecord>& pkts = trace.packets();
    size_t i = 0;
    while (i < pkts.size()) {
      batch.Clear();
      while (i < pkts.size() && !batch.full()) batch.AppendPacket(pkts[i++]);
      Status s = node.PushBatch(batch);
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    Status s = node.Finish();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(node.DrainOutput());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}

void BM_SelectionPassThrough(benchmark::State& state) {
  RunQueryBenchmark(state,
                    "SELECT time, srcIP, destIP, len FROM PKT");
}
BENCHMARK(BM_SelectionPassThrough);

void BM_SelectionFiltered(benchmark::State& state) {
  RunQueryBenchmark(state,
                    "SELECT time, srcIP, len FROM PKT WHERE len > 1400");
}
BENCHMARK(BM_SelectionFiltered);

void BM_SelectionBasicSubsetSum(benchmark::State& state) {
  RunQueryBenchmark(state, bench::BasicSubsetSumSelectionSql(50000.0));
}
BENCHMARK(BM_SelectionBasicSubsetSum);

void BM_AggregationQuery(benchmark::State& state) {
  RunQueryBenchmark(state,
                    "SELECT tb, srcIP, sum(len), count(*) FROM PKT "
                    "GROUP BY time/20 as tb, srcIP");
}
BENCHMARK(BM_AggregationQuery);

void BM_DynamicSubsetSumQuery(benchmark::State& state) {
  RunQueryBenchmark(
      state, bench::SubsetSumSql(static_cast<uint64_t>(state.range(0)), 10.0));
}
BENCHMARK(BM_DynamicSubsetSumQuery)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_HeavyHitterQuery(benchmark::State& state) {
  RunQueryBenchmark(state, R"(
      SELECT tb, srcIP, sum(len), count(*)
      FROM TCP
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN local_count(1000) = TRUE
      CLEANING BY count(*) >= current_bucket() - first(current_bucket())
  )");
}
BENCHMARK(BM_HeavyHitterQuery)->Unit(benchmark::kMillisecond);

void BM_QueryCompilation(benchmark::State& state) {
  Catalog catalog = Catalog::Default();
  const std::string sql = bench::SubsetSumSql(1000, 10.0);
  for (auto _ : state) {
    Result<CompiledQuery> cq = CompileQuery(sql, catalog);
    benchmark::DoNotOptimize(cq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryCompilation);

// ---------------------------------------------------------------------------
// Steady-state benchmarks: the hot path of the sampling operator with every
// group already created and no window boundary in sight. This is the regime
// the paper's CPU evaluation (§8, Fig. 5) cares about — the operator must
// keep up with ~100k pkt/s line rate — and the regime the flat-table /
// hash-once-key / scratch-buffer / batched-columnar work targets. The
// headline benchmarks drive the operator the way the runtime does since
// DESIGN.md §9: prebuilt 512-row TupleBatches through ProcessBatch, one
// batch per iteration, items scaled by the batch size so `tuples_per_sec`
// stays comparable across the perf trajectory (bench/run_bench.sh). The
// *RowAtATime variants keep the old tuple-at-a-time drive for an in-run
// before/after of the batching work.
// ---------------------------------------------------------------------------

// Packet-shaped tuples over a fixed (srcIP, destIP) key grid, all within one
// time window (time is pinned) so the window never closes while timing.
std::vector<Tuple> SteadyStateTuples(size_t count, uint64_t num_src,
                                     uint64_t num_dst) {
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t src = 0x0a000000ULL + (i % num_src);
    uint64_t dst = 0xc0a80000ULL + ((i / num_src) % num_dst);
    uint64_t len = 40 + (i * 97) % 1460;
    tuples.push_back(Tuple({Value::UInt(100),          // time (pinned)
                            Value::UInt(i * 1000),     // ts_ns
                            Value::UInt(src), Value::UInt(dst),
                            Value::UInt(1234), Value::UInt(80),
                            Value::UInt(6), Value::UInt(len)}));
  }
  return tuples;
}

constexpr size_t kSteadyBatchRows = 512;

// Shared setup: compile, build the tuple pool, warm up every group.
bool SteadyStateSetup(benchmark::State& state, const std::string& sql,
                      uint64_t num_src, uint64_t num_dst,
                      std::unique_ptr<SamplingOperator>* op,
                      std::vector<Tuple>* tuples) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 3});
  if (!cq.ok() || cq->kind != CompiledQueryKind::kSampling) {
    state.SkipWithError(cq.ok() ? "not a sampling query"
                                : cq.status().ToString().c_str());
    return false;
  }
  *op = std::make_unique<SamplingOperator>(cq->sampling);
  *tuples = SteadyStateTuples(4096, num_src, num_dst);
  // Warm-up: create every group so the timed loop only sees existing ones.
  for (const Tuple& t : *tuples) {
    Status s = (*op)->Process(t);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return false;
    }
  }
  return true;
}

void SetSteadyStateCounters(benchmark::State& state, size_t tuples_per_iter,
                            size_t live_groups) {
  const double total =
      static_cast<double>(state.iterations()) *
      static_cast<double>(tuples_per_iter);
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["tuples_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
  // Every steady-state tuple probes and updates exactly one group.
  state.counters["groups_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
  state.counters["live_groups"] =
      benchmark::Counter(static_cast<double>(live_groups));
}

// Batched driver: one prebuilt 512-row batch per iteration through
// ProcessBatch — the production drive since the runtime drains the ring
// into TupleBatches. real_time is ns/batch; items are scaled ×512.
void RunSteadyState(benchmark::State& state, const std::string& sql,
                    uint64_t num_src, uint64_t num_dst) {
  std::unique_ptr<SamplingOperator> op;
  std::vector<Tuple> tuples;
  if (!SteadyStateSetup(state, sql, num_src, num_dst, &op, &tuples)) return;
  std::vector<TupleBatch> batches;
  for (size_t i = 0; i < tuples.size(); i += kSteadyBatchRows) {
    batches.emplace_back(tuples.front().size(), kSteadyBatchRows);
    for (size_t j = i; j < i + kSteadyBatchRows; ++j) {
      batches.back().AppendTuple(tuples[j]);
    }
  }
  // One batched warm-up pass so columnar scratch reaches capacity too.
  for (const TupleBatch& b : batches) {
    Status s = op->ProcessBatch(b);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  const size_t groups_at_steady_state = op->num_groups();
  size_t i = 0;
  for (auto _ : state) {
    Status s = op->ProcessBatch(batches[i]);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    i = (i + 1) & (batches.size() - 1);
  }
  SetSteadyStateCounters(state, kSteadyBatchRows, groups_at_steady_state);
}

// Tuple-at-a-time driver (the pre-§9 hot path), kept for the in-run
// before/after: real_time is ns/tuple.
void RunSteadyStateRow(benchmark::State& state, const std::string& sql,
                       uint64_t num_src, uint64_t num_dst) {
  std::unique_ptr<SamplingOperator> op;
  std::vector<Tuple> tuples;
  if (!SteadyStateSetup(state, sql, num_src, num_dst, &op, &tuples)) return;
  const size_t groups_at_steady_state = op->num_groups();
  size_t i = 0;
  for (auto _ : state) {
    Status s = op->Process(tuples[i]);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    i = (i + 1) & 4095;
  }
  SetSteadyStateCounters(state, 1, groups_at_steady_state);
}

constexpr char kGroupedAggregationSql[] =
    "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
    "GROUP BY time/20 as tb, srcIP, destIP";

constexpr char kGroupedSamplingSql[] = R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 1000000000, 2, 10, 0.5) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )";

// Plain grouped aggregation: group probe + two aggregate updates per tuple,
// fully columnar (key hashes, WHERE and aggregate arguments all vectorized).
void BM_SteadyStateGroupedAggregation(benchmark::State& state) {
  RunSteadyState(state, kGroupedAggregationSql, 64,
                 static_cast<uint64_t>(state.range(0)));
}
// The two headline benchmarks pin a longer timing window than the suite
// default: single-core VMs drift by tens of percent across seconds, and
// these numbers carry the recorded perf trajectory (BENCH_operator.json).
BENCHMARK(BM_SteadyStateGroupedAggregation)->Arg(16)->Arg(64)->MinTime(2.0);

void BM_SteadyStateGroupedAggregationRowAtATime(benchmark::State& state) {
  RunSteadyStateRow(state, kGroupedAggregationSql, 64,
                    static_cast<uint64_t>(state.range(0)));
}
BENCHMARK(BM_SteadyStateGroupedAggregationRowAtATime)->Arg(16)->Arg(64);

// The paper's grouped subset-sum sampling shape: stateful admission in
// WHERE (compiled row mode per lane, RNG order preserved), superaggregate
// maintenance, CLEANING WHEN checked per tuple. The sample target is set
// high enough that no cleaning phase ever fires, so the timed loop is pure
// steady state (existing group, no window close).
void BM_SteadyStateGroupedSampling(benchmark::State& state) {
  RunSteadyState(state, kGroupedSamplingSql, 64,
                 static_cast<uint64_t>(state.range(0)));
}
BENCHMARK(BM_SteadyStateGroupedSampling)->Arg(16)->Arg(64)->MinTime(2.0);

void BM_SteadyStateGroupedSamplingRowAtATime(benchmark::State& state) {
  RunSteadyStateRow(state, kGroupedSamplingSql, 64,
                    static_cast<uint64_t>(state.range(0)));
}
BENCHMARK(BM_SteadyStateGroupedSamplingRowAtATime)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Durability cost (DESIGN.md §10). Checkpoints ride window flushes, so the
// steady-state hot path (no flush in sight) must be unaffected by merely
// enabling them — BM_SteadyStateGroupedSamplingCheckpointed installs the
// flush hook and must land within 2% of BM_SteadyStateGroupedSampling. The
// windowed A/B pair then measures what a flush-time snapshot actually
// costs: every iteration advances the window attribute, so each batch
// closes a window, and the checkpointed arm serializes the full durable
// state and writes a CRC-framed snapshot (temp + fsync + rename) per
// flush. run_bench.sh records the ratio as `checkpoint_overhead`.
// ---------------------------------------------------------------------------

void BM_SteadyStateGroupedSamplingCheckpointed(benchmark::State& state) {
  std::unique_ptr<SamplingOperator> op;
  std::vector<Tuple> tuples;
  if (!SteadyStateSetup(state, kGroupedSamplingSql, 64,
                        static_cast<uint64_t>(state.range(0)), &op,
                        &tuples)) {
    return;
  }
  const std::string dir =
      "/tmp/streamop_bench_ckpt_" + std::to_string(::getpid());
  CheckpointConfig cfg;
  cfg.dir = dir;
  cfg.node = "bench";
  cfg.retain = 2;
  CheckpointManager mgr(cfg);
  op->set_window_flush_hook([&op_ref = *op, &mgr](uint64_t windows) {
    if (!mgr.ShouldWrite(windows)) return;
    ByteWriter w;
    op_ref.SerializeDurableState(w);
    mgr.Write(windows, w.data());
  });
  std::vector<TupleBatch> batches;
  for (size_t i = 0; i < tuples.size(); i += kSteadyBatchRows) {
    batches.emplace_back(tuples.front().size(), kSteadyBatchRows);
    for (size_t j = i; j < i + kSteadyBatchRows; ++j) {
      batches.back().AppendTuple(tuples[j]);
    }
  }
  for (const TupleBatch& b : batches) {
    Status s = op->ProcessBatch(b);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  const size_t groups_at_steady_state = op->num_groups();
  size_t i = 0;
  for (auto _ : state) {
    Status s = op->ProcessBatch(batches[i]);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    i = (i + 1) & (batches.size() - 1);
  }
  SetSteadyStateCounters(state, kSteadyBatchRows, groups_at_steady_state);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_SteadyStateGroupedSamplingCheckpointed)
    ->Arg(16)
    ->Arg(64)
    ->MinTime(2.0);

// GROUP BY time (no /20): each new timestamp closes the window, so one
// window flush per timed iteration.
constexpr char kWindowedSamplingSql[] = R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 1000000000, 2, 10, 0.5) = TRUE
      GROUP BY time as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )";

void RunWindowedSampling(benchmark::State& state, bool checkpointed) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq =
      CompileQuery(kWindowedSamplingSql, catalog, {.seed = 3});
  if (!cq.ok() || cq->kind != CompiledQueryKind::kSampling) {
    state.SkipWithError(cq.ok() ? "not a sampling query"
                                : cq.status().ToString().c_str());
    return;
  }
  SamplingOperator op(cq->sampling);
  const std::string dir =
      "/tmp/streamop_bench_ckpt_" + std::to_string(::getpid());
  CheckpointConfig cfg;
  cfg.dir = dir;
  cfg.node = "bench";
  cfg.retain = 2;
  CheckpointManager mgr(cfg);
  if (checkpointed) {
    op.set_window_flush_hook([&op, &mgr](uint64_t windows) {
      if (!mgr.ShouldWrite(windows)) return;
      ByteWriter w;
      op.SerializeDurableState(w);
      mgr.Write(windows, w.data());
    });
  }
  constexpr uint8_t kUIntType = static_cast<uint8_t>(FieldType::kUInt);
  TupleBatch batch(8, kSteadyBatchRows);
  uint64_t t = 100;
  // Both arms rebuild the batch per iteration (time must keep advancing to
  // close windows), so the fill cost cancels out of the A/B ratio.
  for (auto _ : state) {
    batch.Clear();
    for (size_t j = 0; j < kSteadyBatchRows; ++j) {
      const uint64_t vals[8] = {t,
                                j * 1000,
                                0x0a000000ULL + (j % 64),
                                0xc0a80000ULL + ((j / 64) % 16),
                                1234,
                                80,
                                6,
                                40 + (j * 97) % 1460};
      for (size_t c = 0; c < 8; ++c) batch.AppendRaw(c, kUIntType, vals[c]);
      batch.FinishRow();
    }
    Status s = op.ProcessBatch(batch);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    ++t;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kSteadyBatchRows));
  state.counters["windows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  if (checkpointed) {
    state.counters["checkpoint_bytes"] =
        benchmark::Counter(static_cast<double>(mgr.last_bytes()));
    state.counters["checkpoint_write_ns"] =
        benchmark::Counter(static_cast<double>(mgr.last_write_ns()));
    state.counters["checkpoints_written"] =
        benchmark::Counter(static_cast<double>(mgr.writes()));
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

void BM_WindowedGroupedSamplingBaseline(benchmark::State& state) {
  RunWindowedSampling(state, false);
}
BENCHMARK(BM_WindowedGroupedSamplingBaseline)->MinTime(2.0);

void BM_WindowedGroupedSamplingCheckpointed(benchmark::State& state) {
  RunWindowedSampling(state, true);
}
BENCHMARK(BM_WindowedGroupedSamplingCheckpointed)->MinTime(2.0);

}  // namespace
}  // namespace streamop

BENCHMARK_MAIN();
