// Micro-benchmarks (google-benchmark): the query-engine hot paths — tuple
// conversion, selection, plain aggregation through the sampling operator,
// and the full dynamic subset-sum query — in tuples/second.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "engine/query_node.h"
#include "net/trace_generator.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

const Trace& BenchTrace() {
  static const Trace* trace =
      new Trace(TraceGenerator::MakeDataCenterFeed(2.0, 7));
  return *trace;
}

void BM_PacketToTuple(benchmark::State& state) {
  const Trace& trace = BenchTrace();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PacketToTuple(trace.at(i)));
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketToTuple);

// Pushes the whole trace through a freshly compiled query once per
// iteration; reports tuples/second.
void RunQueryBenchmark(benchmark::State& state, const std::string& sql) {
  const Trace& trace = BenchTrace();
  Catalog catalog = Catalog::Default();
  for (auto _ : state) {
    Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 3});
    if (!cq.ok()) {
      state.SkipWithError(cq.status().ToString().c_str());
      return;
    }
    QueryNode node("bench", *cq);
    for (const PacketRecord& p : trace.packets()) {
      Status s = node.Push(PacketToTuple(p));
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return;
      }
    }
    Status s = node.Finish();
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(node.DrainOutput());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}

void BM_SelectionPassThrough(benchmark::State& state) {
  RunQueryBenchmark(state,
                    "SELECT time, srcIP, destIP, len FROM PKT");
}
BENCHMARK(BM_SelectionPassThrough);

void BM_SelectionFiltered(benchmark::State& state) {
  RunQueryBenchmark(state,
                    "SELECT time, srcIP, len FROM PKT WHERE len > 1400");
}
BENCHMARK(BM_SelectionFiltered);

void BM_SelectionBasicSubsetSum(benchmark::State& state) {
  RunQueryBenchmark(state, bench::BasicSubsetSumSelectionSql(50000.0));
}
BENCHMARK(BM_SelectionBasicSubsetSum);

void BM_AggregationQuery(benchmark::State& state) {
  RunQueryBenchmark(state,
                    "SELECT tb, srcIP, sum(len), count(*) FROM PKT "
                    "GROUP BY time/20 as tb, srcIP");
}
BENCHMARK(BM_AggregationQuery);

void BM_DynamicSubsetSumQuery(benchmark::State& state) {
  RunQueryBenchmark(
      state, bench::SubsetSumSql(static_cast<uint64_t>(state.range(0)), 10.0));
}
BENCHMARK(BM_DynamicSubsetSumQuery)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_HeavyHitterQuery(benchmark::State& state) {
  RunQueryBenchmark(state, R"(
      SELECT tb, srcIP, sum(len), count(*)
      FROM TCP
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN local_count(1000) = TRUE
      CLEANING BY count(*) >= current_bucket() - first(current_bucket())
  )");
}
BENCHMARK(BM_HeavyHitterQuery)->Unit(benchmark::kMillisecond);

void BM_QueryCompilation(benchmark::State& state) {
  Catalog catalog = Catalog::Default();
  const std::string sql = bench::SubsetSumSql(1000, 10.0);
  for (auto _ : state) {
    Result<CompiledQuery> cq = CompileQuery(sql, catalog);
    benchmark::DoNotOptimize(cq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryCompilation);

}  // namespace
}  // namespace streamop

BENCHMARK_MAIN();
