// Shared helpers for the figure-reproduction benchmarks: canonical traces,
// the paper's query texts, and table formatting.

#ifndef STREAMOP_BENCH_BENCH_UTIL_H_
#define STREAMOP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"

namespace streamop {
namespace bench {

/// The paper's dynamic subset-sum query (§6.1): N samples per 20-second
/// window; relax_factor 1 reproduces the original (non-relaxed) algorithm,
/// the paper's fix uses f = 10.
/// `probabilistic` selects the admission rule for small tuples: false = the
/// counter scheme of §4.4 (deterministic, error bounded by one z per
/// window), true = the original DLT per-tuple coin flip (the behaviour the
/// paper's live runs exhibit, with right-skewed estimates when a window is
/// under-sampled).
inline std::string SubsetSumSql(uint64_t n, double relax_factor,
                                double beta = 2.0,
                                bool probabilistic = false) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, %llu, %g, %g, 0, %d) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, ts_ns
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                static_cast<unsigned long long>(n), beta, relax_factor,
                probabilistic ? 1 : 0);
  return buf;
}

/// The ground-truth aggregation query of §7.1 ("actual").
inline const char* ActualSumSql() {
  return "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb";
}

/// Basic subset-sum sampling as a user-defined function in a selection
/// operator (the Fig. 5 baseline). z is the fixed threshold.
inline std::string BasicSubsetSumSelectionSql(double z) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SELECT time, srcIP, destIP, UMAX(len, %g) "
                "FROM PKT WHERE ssample(len, 0, 2, 1, %g) = TRUE",
                z, z);
  return buf;
}

/// Sums the weight-adjusted estimate column per 20 s window.
inline std::vector<double> EstimatePerWindow(const std::vector<Tuple>& rows,
                                             size_t num_windows,
                                             size_t tb_col = 0,
                                             size_t weight_col = 3) {
  std::vector<double> est(num_windows, 0.0);
  for (const Tuple& t : rows) {
    uint64_t tb = t[tb_col].AsUInt();
    if (tb < est.size()) est[tb] += t[weight_col].AsDouble();
  }
  return est;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Compiles or dies — benchmark queries are fixed strings.
inline CompiledQuery MustCompile(const std::string& sql, uint64_t seed = 1) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = seed});
  if (!cq.ok()) {
    std::fprintf(stderr, "query compilation failed: %s\nquery: %s\n",
                 cq.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return *std::move(cq);
}

}  // namespace bench
}  // namespace streamop

#endif  // STREAMOP_BENCH_BENCH_UTIL_H_
