// Ingestion micro-benchmarks (google-benchmark): the same two-level
// pipeline fed three ways — in-process trace (the baseline every other
// bench uses), a pcap file through PcapReader, and a loopback TCP socket
// through SocketSource — in records/second, plus a reconnect-storm case
// where the producer kills the connection every few frames and the
// consumer's backoff + HELLO-resume machinery carries the stream anyway.
// run_bench.sh distills these into BENCH_operator.json's
// "ingest_throughput" section (socket-vs-in-process ratio, storm recovery).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/runtime.h"
#include "net/pcap_format.h"
#include "net/trace_generator.h"
#include "net/trace_sender.h"
#include "query/query.h"
#include "stream/pcap_reader.h"
#include "stream/socket_source.h"

namespace streamop {
namespace {

constexpr char kLowSql[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";
constexpr char kHighSql[] =
    "SELECT tb, srcIP, count(*), sum(len) FROM PKT "
    "GROUP BY time/5 as tb, srcIP";

const Trace& BenchTrace() {
  static const Trace* trace =
      new Trace(TraceGenerator::MakeDataCenterFeed(2.0, 7));
  return *trace;
}

const CompiledQuery& LowQuery() {
  static const CompiledQuery* q = new CompiledQuery(
      *CompileQuery(kLowSql, Catalog::Default(), {.seed = 3}));
  return *q;
}

const CompiledQuery& HighQuery() {
  static const CompiledQuery* q = new CompiledQuery(
      *CompileQuery(kHighSql, Catalog::Default(), {.seed = 3}));
  return *q;
}

// The pcap benchmarks read a capture materialized once from BenchTrace.
const std::string& BenchPcapPath() {
  static const std::string* path = [] {
    auto* p = new std::string(
        (std::filesystem::temp_directory_path() / "micro_ingest.pcap")
            .string());
    Status s = WritePcap(BenchTrace(), *p);
    if (!s.ok()) p->clear();
    return p;
  }();
  return *path;
}

// Baseline: the trace pushed straight from memory (no I/O, no framing).
void BM_InProcessIngest(benchmark::State& state) {
  const Trace& trace = BenchTrace();
  for (auto _ : state) {
    TwoLevelRuntime rt(LowQuery(), {HighQuery()});
    auto report = rt.Run(trace);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rt.high_node(0).DrainOutput());
  }
  state.SetItemsProcessed(state.iterations() * BenchTrace().size());
}
BENCHMARK(BM_InProcessIngest);

void BM_PcapIngest(benchmark::State& state) {
  if (BenchPcapPath().empty()) {
    state.SkipWithError("could not write bench pcap");
    return;
  }
  for (auto _ : state) {
    TwoLevelRuntime rt(LowQuery(), {HighQuery()});
    PcapReader reader(PcapReaderConfig{BenchPcapPath()});
    auto report = rt.RunSource(reader);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rt.high_node(0).DrainOutput());
  }
  state.SetItemsProcessed(state.iterations() * BenchTrace().size());
}
BENCHMARK(BM_PcapIngest);

// Loopback TCP: a TraceSender thread streams the trace over a real
// socket; the measured cost includes framing, CRC verification, the
// HELLO/ACK handshake and the kernel loopback path.
void RunTcpIngest(benchmark::State& state, uint64_t kill_every_frames,
                  size_t records_per_frame) {
  const Trace& trace = BenchTrace();
  uint64_t reconnects = 0;
  for (auto _ : state) {
    TraceSenderConfig scfg;
    scfg.records = trace.packets();
    scfg.records_per_frame = records_per_frame;
    scfg.handshake_timeout_ms = 20000;
    scfg.kill_connection_after_frames = kill_every_frames;
    TraceSender sender(std::move(scfg));
    Status bound = sender.BindTcp(0);
    if (!bound.ok()) {
      state.SkipWithError(bound.ToString().c_str());
      return;
    }
    std::thread producer([&sender] { sender.ServeTcp(); });

    SocketSourceConfig cfg;
    cfg.mode = SocketSourceConfig::Mode::kTcp;
    cfg.port = sender.tcp_port();
    cfg.read_timeout_ms = 50;
    cfg.backoff_initial_ms = 1;
    cfg.backoff_max_ms = 5;
    SocketSource src(cfg);
    TwoLevelRuntime rt(LowQuery(), {HighQuery()});
    auto report = rt.RunSource(src);
    sender.RequestStop();
    producer.join();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    if (report->packets != trace.size()) {
      state.SkipWithError("tcp ingest lost records");
      return;
    }
    reconnects += src.stats().reconnects;
    benchmark::DoNotOptimize(rt.high_node(0).DrainOutput());
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.counters["reconnects"] = static_cast<double>(reconnects);
}

void BM_TcpLoopbackIngest(benchmark::State& state) {
  RunTcpIngest(state, 0, 512);
}
BENCHMARK(BM_TcpLoopbackIngest);

// Reconnect storm: the producer slams the connection shut every 32 frames
// (every ~2k records); throughput includes ~100 reconnect + resume cycles
// per pass, and lossless delivery is asserted each iteration.
void BM_TcpReconnectStorm(benchmark::State& state) {
  RunTcpIngest(state, 32, 64);
}
BENCHMARK(BM_TcpReconnectStorm);

}  // namespace
}  // namespace streamop

BENCHMARK_MAIN();
