// §7.2 (text) — the beta sweep: "Increasing (decreasing) beta decreases
// (increases) the number of times cleaning is done, but increases
// (decreases) its cost. We found little dependence of CPU load on beta."
//
// beta is the cleaning trigger: a cleaning phase fires when the live sample
// exceeds beta * N. We sweep beta and report cleaning phases per window,
// mean cleaning cost (groups examined per phase ~ beta*N) and %CPU.

#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

int main() {
  const double kDurationSec = 20.0;
  Trace trace = TraceGenerator::MakeDataCenterFeed(kDurationSec, /*seed=*/79);

  PrintHeader("beta sweep: cleaning trigger vs CPU (target 1000, relaxed)");
  std::printf("%-8s %18s %18s %10s\n", "beta", "cleanings/window",
              "removed/window", "%CPU");
  double min_cpu = 1e18, max_cpu = 0.0;
  for (double beta : {1.25, 1.5, 2.0, 3.0, 4.0}) {
    CompiledQuery cq = MustCompile(SubsetSumSql(1000, 10.0, beta), 51);
    Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    double cleanings = 0, removed = 0;
    for (const WindowStats& ws : run->windows) {
      cleanings += static_cast<double>(ws.cleaning_phases);
      removed += static_cast<double>(ws.groups_removed);
    }
    cleanings /= static_cast<double>(run->windows.size());
    removed /= static_cast<double>(run->windows.size());
    double cpu = run->report.cpu_percent;
    min_cpu = std::min(min_cpu, cpu);
    max_cpu = std::max(max_cpu, cpu);
    std::printf("%-8.2f %18.1f %18.0f %9.2f%%\n", beta, cleanings, removed,
                cpu);
  }
  std::printf(
      "\nsummary: %%CPU spread across beta = %.2f points (min %.2f, max "
      "%.2f)\n",
      max_cpu - min_cpu, min_cpu, max_cpu);
  std::printf(
      "paper shape: higher beta -> fewer but costlier cleanings; little "
      "overall CPU dependence -> %s\n",
      (max_cpu - min_cpu) < std::max(1.0, 0.5 * max_cpu) ? "REPRODUCED"
                                                         : "CHECK");
  return 0;
}
