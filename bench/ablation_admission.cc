// Ablation — small-tuple admission rule: the paper's §4.4 counter scheme
// vs the original Duffield-Lund-Thorup probabilistic rule.
//
// Both are unbiased for subset sums, but their window-estimate error
// behaves very differently when the threshold overshoots (the non-relaxed
// failure of Fig. 2): the counter scheme's error is bounded by a single z
// per window, while the probabilistic rule's error scales like
// sqrt(z / window_total) — which is what makes the paper's non-relaxed
// valleys so deep. This experiment quantifies the difference, one of the
// "algorithm engineering" knobs the operator makes cheap to explore.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

struct ErrStats {
  double mean_abs = 0.0;
  double worst = 0.0;
};

ErrStats RunOnce(const Trace& trace, const std::vector<uint64_t>& truth,
                 double relax, bool probabilistic, uint64_t seed) {
  CompiledQuery cq =
      MustCompile(SubsetSumSql(1000, relax, 2.0, probabilistic), seed);
  Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> est = EstimatePerWindow(run->output, truth.size());
  ErrStats out;
  size_t full = truth.size() - 1;
  for (size_t w = 0; w < full; ++w) {
    if (truth[w] == 0) continue;
    double rel = std::fabs(est[w] - static_cast<double>(truth[w])) /
                 static_cast<double>(truth[w]);
    out.mean_abs += rel;
    out.worst = std::max(out.worst, rel);
  }
  out.mean_abs /= static_cast<double>(full);
  return out;
}

}  // namespace

int main() {
  Trace trace = TraceGenerator::MakeResearchFeed(401.0, /*seed=*/2007);
  std::vector<uint64_t> truth = trace.BytesPerWindow(20);

  PrintHeader("ablation: counter vs probabilistic admission (target 1000)");
  std::printf("%-26s %16s %16s\n", "configuration", "mean|err|",
              "worst|err|");
  struct Config {
    const char* name;
    double relax;
    bool prob;
  };
  const Config configs[] = {
      {"counter, relaxed f=10", 10.0, false},
      {"counter, non-relaxed", 1.0, false},
      {"probabilistic, relaxed", 10.0, true},
      {"probabilistic, non-relaxed", 1.0, true},
  };
  for (const Config& c : configs) {
    ErrStats e = RunOnce(trace, truth, c.relax, c.prob, 71);
    std::printf("%-26s %15.2f%% %15.2f%%\n", c.name, 100 * e.mean_abs,
                100 * e.worst);
  }
  std::printf(
      "\nreading: the counter scheme bounds each window's error by one z, "
      "so even the non-relaxed variant degrades gently; under probabilistic "
      "admission the non-relaxed variant reproduces the paper's deep "
      "under-estimation valleys, and the relaxed fix recovers accuracy.\n");
  return 0;
}
