// Figure 6 — "Effect of low-level query type".
//
// Gigascope's two-level architecture: a low-level query node feeds the
// high-level dynamic subset-sum query. With a plain *selection* subquery,
// every packet is copied up to the high level, so the low level pays the
// full per-packet copy cost and the high level sees the full stream. With a
// *basic subset-sum* subquery (threshold 1/10th of the dynamic sampler's
// level, per §7.2), the low level forwards a small fraction of the packets:
// both the low-level output cost and the high-level load collapse.
//
// We report low- and high-level %CPU for both configurations across the
// samples-per-period sweep.

#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

std::string PreSamplingLow(double z_low) {
  char buf[400];
  std::snprintf(buf, sizeof(buf),
                "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, "
                "UMAX(len, %g) as len FROM PKT "
                "WHERE ssample(len, 0, 2, 1, %g) = TRUE",
                z_low, z_low);
  return buf;
}

struct TwoLevelResult {
  double low_cpu = 0.0;
  double high_cpu = 0.0;
  uint64_t forwarded = 0;
  double worst_rel_err = 0.0;
};

TwoLevelResult RunTwoLevel(const Trace& trace, const std::string& low_sql,
                           uint64_t n) {
  CompiledQuery low = MustCompile(low_sql, 41);
  CompiledQuery high = MustCompile(SubsetSumSql(n, 10.0), 42);
  TwoLevelRuntime rt(low, {high});
  Result<RunReport> report = rt.Run(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  TwoLevelResult out;
  out.low_cpu = report->low.cpu_percent;
  out.high_cpu = report->high[0].cpu_percent;
  out.forwarded = report->low.tuples_out;

  // Sanity: the end-to-end estimate must still track the trace.
  std::vector<uint64_t> truth = trace.BytesPerWindow(20);
  std::vector<double> est =
      EstimatePerWindow(rt.high_node(0).DrainOutput(), truth.size());
  for (size_t w = 0; w < truth.size(); ++w) {
    if (truth[w] == 0) continue;
    double rel = std::fabs(est[w] - static_cast<double>(truth[w])) /
                 static_cast<double>(truth[w]);
    out.worst_rel_err = std::max(out.worst_rel_err, rel);
  }
  return out;
}

}  // namespace

int main() {
  const double kDurationSec = 20.0;
  Trace trace = TraceGenerator::MakeDataCenterFeed(kDurationSec, /*seed=*/78);
  const double bytes_per_period =
      static_cast<double>(trace.TotalBytes()) * 20.0 / kDurationSec;

  PrintHeader("Figure 6: effect of low-level query type");
  std::printf("trace: %zu packets over %.0f s\n", trace.size(), kDurationSec);
  std::printf("%-14s | %-36s | %-36s\n", "", "selection subquery",
              "basic-SS subquery (z/10)");
  std::printf("%-14s | %10s %10s %12s | %10s %10s %12s\n", "samples/period",
              "low%CPU", "high%CPU", "forwarded", "low%CPU", "high%CPU",
              "forwarded");

  double sel_high_sum = 0, pre_high_sum = 0, sel_low_sum = 0, pre_low_sum = 0;
  int rows = 0;
  for (uint64_t n : {1000ULL, 2500ULL, 5000ULL, 10000ULL}) {
    TwoLevelResult sel = RunTwoLevel(trace, kPassThroughLow, n);
    // §7.2: the low level runs basic subset-sum with a threshold 1/10th of
    // the level the dynamic sampler would use for this target.
    double z_low = bytes_per_period / static_cast<double>(n) / 10.0;
    TwoLevelResult pre = RunTwoLevel(trace, PreSamplingLow(z_low), n);
    std::printf("%-14llu | %9.2f%% %9.2f%% %12llu | %9.2f%% %9.2f%% %12llu\n",
                static_cast<unsigned long long>(n), sel.low_cpu, sel.high_cpu,
                static_cast<unsigned long long>(sel.forwarded), pre.low_cpu,
                pre.high_cpu, static_cast<unsigned long long>(pre.forwarded));
    if (pre.worst_rel_err > 0.25) {
      std::printf("  WARNING: pre-sampled estimate error %.1f%%\n",
                  100 * pre.worst_rel_err);
    }
    sel_high_sum += sel.high_cpu;
    pre_high_sum += pre.high_cpu;
    sel_low_sum += sel.low_cpu;
    pre_low_sum += pre.low_cpu;
    ++rows;
  }
  std::printf(
      "\nsummary: mean low-level %%CPU %.2f -> %.2f; mean high-level %%CPU "
      "%.2f -> %.2f with basic-SS pre-sampling\n",
      sel_low_sum / rows, pre_low_sum / rows, sel_high_sum / rows,
      pre_high_sum / rows);
  std::printf(
      "paper shape: basic-SS subquery slashes both the low-level cost (few "
      "output copies) and the high-level load -> %s\n",
      (pre_high_sum < 0.5 * sel_high_sum) ? "REPRODUCED" : "CHECK");
  return 0;
}
