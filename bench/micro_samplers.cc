// Micro-benchmarks (google-benchmark): raw throughput of the standalone
// sampling engines, including the reservoir admission-strategy ablation
// (per-record Algorithm R vs skip-based Algorithm L) called out in
// DESIGN.md.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "sampling/bernoulli.h"
#include "sampling/distinct.h"
#include "sampling/gk_quantile.h"
#include "sampling/kmv.h"
#include "sampling/lossy_counting.h"
#include "sampling/priority.h"
#include "sampling/reservoir.h"
#include "sampling/subset_sum.h"

namespace streamop {
namespace {

// Pre-generated weights shared by the weighted samplers.
const std::vector<double>& Weights() {
  static const std::vector<double>* weights = [] {
    auto* w = new std::vector<double>();
    Pcg64 rng(1);
    w->reserve(1 << 16);
    for (int i = 0; i < (1 << 16); ++i) {
      w->push_back(40.0 + static_cast<double>(rng.NextBounded(1460)));
    }
    return w;
  }();
  return *weights;
}

void BM_ThresholdCore(benchmark::State& state) {
  const auto& w = Weights();
  ThresholdSamplerCore core(5000.0);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.Offer(w[i++ & 0xffff]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThresholdCore);

void BM_BasicSubsetSum(benchmark::State& state) {
  const auto& w = Weights();
  const double z = static_cast<double>(state.range(0));
  size_t i = 0;
  BasicSubsetSumSampler<uint64_t> sampler(z);
  for (auto _ : state) {
    sampler.Offer(i, w[i & 0xffff]);
    ++i;
    if (sampler.samples().size() > (1u << 20)) {
      state.PauseTiming();
      sampler.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BasicSubsetSum)->Arg(1000)->Arg(100000);

void BM_DynamicSubsetSum(benchmark::State& state) {
  const auto& w = Weights();
  DynamicSubsetSumSampler<uint64_t>::Options opt;
  opt.target_samples = static_cast<uint64_t>(state.range(0));
  opt.relaxed = true;
  DynamicSubsetSumSampler<uint64_t> sampler(opt);
  size_t i = 0;
  for (auto _ : state) {
    sampler.Offer(i, w[i & 0xffff]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicSubsetSum)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ReservoirPerRecord(benchmark::State& state) {
  ReservoirSampler<uint64_t> sampler(
      static_cast<uint64_t>(state.range(0)), 7,
      ReservoirControl::Mode::kPerRecord);
  uint64_t i = 0;
  for (auto _ : state) {
    sampler.Offer(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirPerRecord)->Arg(100)->Arg(10000);

void BM_ReservoirSkip(benchmark::State& state) {
  ReservoirSampler<uint64_t> sampler(static_cast<uint64_t>(state.range(0)), 7,
                                     ReservoirControl::Mode::kSkip);
  uint64_t i = 0;
  for (auto _ : state) {
    sampler.Offer(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirSkip)->Arg(100)->Arg(10000);

void BM_CandidateReservoir(benchmark::State& state) {
  CandidateReservoir<uint64_t> sampler(100, 20.0, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    sampler.Offer(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CandidateReservoir);

void BM_LossyCounting(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  LossyCounting<uint64_t> lc(eps);
  Pcg64 rng(3);
  ZipfDistribution zipf(100000, 1.1);
  std::vector<uint64_t> elems;
  elems.reserve(1 << 16);
  for (int i = 0; i < (1 << 16); ++i) elems.push_back(zipf.Sample(rng));
  size_t i = 0;
  for (auto _ : state) {
    lc.Offer(elems[i++ & 0xffff]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LossyCounting)->Arg(100)->Arg(1000);

void BM_KmvSketch(benchmark::State& state) {
  KMinHashSketch sk(static_cast<uint64_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    sk.Offer(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvSketch)->Arg(100)->Arg(1000);

void BM_Bernoulli(benchmark::State& state) {
  BernoulliSampler<uint64_t> s(0.01, 5);
  uint64_t i = 0;
  for (auto _ : state) {
    s.Offer(i++);
    if (s.sample().size() > (1u << 20)) {
      state.PauseTiming();
      s.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bernoulli);

void BM_GkQuantile(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  GkQuantileSketch sk(eps);
  Pcg64 rng(11);
  std::vector<double> vals;
  vals.reserve(1 << 16);
  for (int i = 0; i < (1 << 16); ++i) vals.push_back(rng.NextDouble() * 1e6);
  size_t i = 0;
  for (auto _ : state) {
    sk.Insert(vals[i++ & 0xffff]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GkQuantile)->Arg(100)->Arg(1000);

void BM_DistinctSampler(benchmark::State& state) {
  DistinctSampler ds(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    ds.Offer(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistinctSampler)->Arg(256)->Arg(4096);

void BM_BackoffReservoir(benchmark::State& state) {
  BackoffReservoir<uint64_t> r(100, 20.0, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    r.Offer(i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackoffReservoir);

void BM_PrioritySampler(benchmark::State& state) {
  const auto& w = Weights();
  PrioritySampler<uint64_t> s(static_cast<uint64_t>(state.range(0)), 9);
  uint64_t i = 0;
  for (auto _ : state) {
    s.Offer(i, w[i & 0xffff]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrioritySampler)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace streamop

BENCHMARK_MAIN();
