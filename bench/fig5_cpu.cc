// Figure 5 — "Subset-sum Sampling CPU Usage" vs samples per period.
//
// On the steady high-speed feed (the paper's 100k pkt/s data-center tap),
// we measure the %CPU (fraction of one CPU consumed at line rate) of:
//   * dynamic subset-sum sampling, relaxed, via the sampling operator;
//   * dynamic subset-sum sampling, non-relaxed, via the sampling operator;
//   * basic subset-sum sampling as a UDF in a selection operator.
// The paper's findings: all three use a small fraction of a CPU even at
// 100k+ pkt/s; the sampling operator costs only a few percentage points
// over the bare selection; relaxation adds a further small overhead
// (more cleaning phases).

#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

double RunCpuPercent(const CompiledQuery& cq, const Trace& trace,
                     uint64_t* samples_out) {
  Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    std::exit(1);
  }
  if (samples_out != nullptr) *samples_out = run->report.tuples_out;
  return run->report.cpu_percent;
}

}  // namespace

int main() {
  const double kDurationSec = 20.0;
  Trace trace = TraceGenerator::MakeDataCenterFeed(kDurationSec, /*seed=*/77);
  const double pps = static_cast<double>(trace.size()) / kDurationSec;
  const double bytes_per_period =
      static_cast<double>(trace.TotalBytes()) * 20.0 / kDurationSec;

  PrintHeader("Figure 5: subset-sum sampling CPU usage (steady feed)");
  std::printf("trace: %zu packets, %.0f pkt/s, %.0f Mbit/s\n", trace.size(),
              pps,
              static_cast<double>(trace.TotalBytes()) * 8.0 / kDurationSec /
                  1e6);

  std::printf("%-18s %14s %16s %12s %14s\n", "samples/period", "SS relaxed",
              "SS nonrelaxed", "basic SS", "(basic kept)");
  double sum_relax = 0, sum_nonrelax = 0, sum_basic = 0;
  int rows = 0;
  for (uint64_t n : {100ULL, 1000ULL, 2500ULL, 5000ULL, 10000ULL}) {
    CompiledQuery relaxed = MustCompile(SubsetSumSql(n, 10.0), 31);
    CompiledQuery nonrelaxed = MustCompile(SubsetSumSql(n, 1.0), 31);
    // Basic subset-sum threshold tuned to produce ~n samples per period.
    double z = bytes_per_period / static_cast<double>(n);
    CompiledQuery basic = MustCompile(BasicSubsetSumSelectionSql(z), 31);

    double cpu_relaxed = RunCpuPercent(relaxed, trace, nullptr);
    double cpu_nonrelaxed = RunCpuPercent(nonrelaxed, trace, nullptr);
    uint64_t basic_kept = 0;
    double cpu_basic = RunCpuPercent(basic, trace, &basic_kept);
    std::printf("%-18llu %13.2f%% %15.2f%% %11.2f%% %14llu\n",
                static_cast<unsigned long long>(n), cpu_relaxed,
                cpu_nonrelaxed, cpu_basic,
                static_cast<unsigned long long>(basic_kept));
    sum_relax += cpu_relaxed;
    sum_nonrelax += cpu_nonrelaxed;
    sum_basic += cpu_basic;
    ++rows;
  }
  double mean_relax = sum_relax / rows;
  double mean_nonrelax = sum_nonrelax / rows;
  double mean_basic = sum_basic / rows;
  std::printf(
      "\nsummary: mean %%CPU relaxed %.2f, nonrelaxed %.2f, basic %.2f; "
      "operator overhead over selection = %.2f points, relaxation overhead "
      "= %.2f points\n",
      mean_relax, mean_nonrelax, mean_basic, mean_nonrelax - mean_basic,
      mean_relax - mean_nonrelax);
  std::printf(
      "paper shape: small fraction of a CPU overall; operator adds a few "
      "points over bare selection; relaxed slightly above nonrelaxed -> %s\n",
      (mean_basic < mean_nonrelax && mean_nonrelax <= mean_relax + 0.25)
          ? "REPRODUCED"
          : "CHECK");
  return 0;
}
