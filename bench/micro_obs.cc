// Micro-benchmarks for the observability layer (src/obs): the primitive
// record costs (counter add, histogram record, trace-ring event) and the
// tentpole's overhead criterion — the sampling operator's steady-state
// ns/tuple with full instrumentation attached vs detached. run_bench.sh
// computes the instrumented/uninstrumented ratio and embeds it in
// BENCH_operator.json; the budget is <= 2% (DESIGN.md §7). Building with
// -DSTREAMOP_NO_STATS=ON compiles every increment away, which should make
// the two steady-state benchmarks indistinguishable.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "bench/bench_util.h"
#include "core/sampling_operator.h"
#include "obs/alerts.h"
#include "obs/exemplar.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace_ring.h"

namespace streamop {
namespace {

// ---------- primitives ----------

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Add();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSetMax(benchmark::State& state) {
  obs::Gauge g;
  double v = 0.0;
  for (auto _ : state) {
    g.SetMax(v);
    v += 0.5;
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSetMax);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = v * 31 % 1000003;  // spread across buckets
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_NowNanos(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::NowNanos());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NowNanos);

void BM_TraceRingRecord(benchmark::State& state) {
  obs::TraceRing ring(8192);
  ring.set_enabled(true);
  uint64_t ts = 0;
  for (auto _ : state) {
    ring.Record("bench_event", ts, 10);
    ts += 100;
  }
  benchmark::DoNotOptimize(ring.events_recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRingRecord);

void BM_TraceRingDisabled(benchmark::State& state) {
  obs::TraceRing ring(8192);  // disabled: one relaxed bool load per call
  uint64_t ts = 0;
  for (auto _ : state) {
    ring.Record("bench_event", ts, 10);
    ts += 100;
  }
  benchmark::DoNotOptimize(ring.events_recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRingDisabled);

// ---------- operator steady state: instrumented vs uninstrumented ----------

// Same tuple shape as micro_operator's steady-state benchmarks: fixed key
// grid, time pinned so no window boundary fires while timing.
std::vector<Tuple> SteadyStateTuples(size_t count, uint64_t num_src,
                                     uint64_t num_dst) {
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t src = 0x0a000000ULL + (i % num_src);
    uint64_t dst = 0xc0a80000ULL + ((i / num_src) % num_dst);
    uint64_t len = 40 + (i * 97) % 1460;
    tuples.push_back(Tuple({Value::UInt(100), Value::UInt(i * 1000),
                            Value::UInt(src), Value::UInt(dst),
                            Value::UInt(1234), Value::UInt(80), Value::UInt(6),
                            Value::UInt(len)}));
  }
  return tuples;
}

constexpr char kAggregationSql[] =
    "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
    "GROUP BY time/20 as tb, srcIP, destIP";

// The A/B pair drives the operator the way the runtime does since the
// batched hot path landed (DESIGN.md §9): prebuilt 512-row TupleBatches
// through ProcessBatch. Instrumentation on this path is amortized per
// batch — one pending-counter flush and one admission-latency record per
// 512 tuples — so the ratio is the overhead of exactly what production
// pays. Items are scaled ×512 to stay a tuples/s rate.
constexpr size_t kObsBatchRows = 512;

// Shared setup for the steady-state legs: compiled operator with the full
// obs bundle attached, prebuilt batches warmed to columnar capacity.
// Members are ordered so the operator outlives nothing it points at.
struct SteadyStateRig {
  obs::SpanRing spans{4096};
  obs::Profiler profiler;
  obs::ExemplarStore exemplars;
  std::optional<Result<CompiledQuery>> cq;
  std::optional<SamplingOperator> op;
  std::vector<TupleBatch> batches;

  // Returns false (after SkipWithError) if compilation or warm-up failed.
  bool Init(benchmark::State& state, bool instrumented) {
    Catalog catalog = Catalog::Default();
    cq.emplace(CompileQuery(kAggregationSql, catalog, {.seed = 3}));
    if (!cq->ok() || (*cq)->kind != CompiledQueryKind::kSampling) {
      state.SkipWithError(cq->ok() ? "not a sampling query"
                                   : cq->status().ToString().c_str());
      return false;
    }
    op.emplace((*cq)->sampling);
    if (instrumented) {
      // The full third pillar rides in the instrumented leg: metrics, span
      // emission, phase-cycle accounting, the live SIGPROF stack sampler and
      // exemplar reservoirs — the ratio prices everything production runs.
      op->set_metrics(obs::OperatorMetrics::Create(
          obs::MetricRegistry::Default(), "micro_obs"));
      spans.set_enabled(true);
      op->set_span_ring(&spans);
      profiler.set_phase_accounting(true);
      (void)profiler.Start();  // busy slot (another instance): run unsampled
      op->set_profiler(&profiler);
      exemplars.set_enabled(true);
      op->set_exemplars(&exemplars);
    }
    const std::vector<Tuple> tuples = SteadyStateTuples(4096, 64, 16);
    for (const Tuple& t : tuples) {
      Status s = op->Process(t);
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return false;
      }
    }
    for (size_t i = 0; i < tuples.size(); i += kObsBatchRows) {
      batches.emplace_back(tuples.front().size(), kObsBatchRows);
      for (size_t j = i; j < i + kObsBatchRows; ++j) {
        batches.back().AppendTuple(tuples[j]);
      }
    }
    for (const TupleBatch& b : batches) {
      Status s = op->ProcessBatch(b);  // columnar scratch reaches capacity
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return false;
      }
    }
    return true;
  }
};

void RunSteadyState(benchmark::State& state, bool instrumented) {
  SteadyStateRig rig;
  if (!rig.Init(state, instrumented)) return;
  size_t i = 0;
  for (auto _ : state) {
    Status s = rig.op->ProcessBatch(rig.batches[i]);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    i = (i + 1) & (rig.batches.size() - 1);
  }
  rig.profiler.Stop();
  const double total = static_cast<double>(state.iterations()) *
                       static_cast<double>(kObsBatchRows);
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["tuples_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
}

// Baseline: metrics bundle detached — every record site short-circuits on
// enabled(), the same cost profile as a STREAMOP_NO_STATS build.
void BM_SteadyStateUninstrumented(benchmark::State& state) {
  RunSteadyState(state, /*instrumented=*/false);
}
// Longer window than the suite default: the A/B overhead ratio feeds the
// <=1.02 budget check and needs sub-percent timing stability.
BENCHMARK(BM_SteadyStateUninstrumented)->MinTime(2.0);

// Full instrumentation: batch-amortized counter flushes, per-batch
// admission timing, gauges at group creation. The ratio vs the benchmark
// above is the observability overhead (budget: <= 2%).
void BM_SteadyStateInstrumented(benchmark::State& state) {
  RunSteadyState(state, /*instrumented=*/true);
}
BENCHMARK(BM_SteadyStateInstrumented)->MinTime(2.0);

// Paired variant of the A/B above: both rigs live in one process and
// alternate ~50ms bursts with the phase order swapped every iteration, so
// host drift between two separately-timed benchmarks cancels out of the
// ratio. Reported time is the instrumented burst (manual timing); the
// per-rep paired ratio rides in the overhead_ratio counter, which
// run_bench.sh medians into obs_overhead.ratio — the <=1.02 budget
// criterion. The separately-timed legs stay registered for context.
void BM_ObsInstrumentationPairedOverhead(benchmark::State& state) {
  SteadyStateRig instr;
  SteadyStateRig plain;
  if (!instr.Init(state, /*instrumented=*/true)) return;
  if (!plain.Init(state, /*instrumented=*/false)) return;
  constexpr size_t kPhaseBatches = 2048;
  auto burst = [&](SteadyStateRig& rig, double* acc_ns) -> bool {
    const auto t0 = std::chrono::steady_clock::now();
    size_t i = 0;
    for (size_t n = 0; n < kPhaseBatches; ++n) {
      Status s = rig.op->ProcessBatch(rig.batches[i]);
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return false;
      }
      i = (i + 1) & (rig.batches.size() - 1);
    }
    *acc_ns += std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return true;
  };
  double instr_ns = 0.0;
  double plain_ns = 0.0;
  bool instr_first = true;
  for (auto _ : state) {
    double phase_instr = 0.0;
    double phase_plain = 0.0;
    bool ok = instr_first ? burst(instr, &phase_instr) &&
                                burst(plain, &phase_plain)
                          : burst(plain, &phase_plain) &&
                                burst(instr, &phase_instr);
    if (!ok) return;
    instr_first = !instr_first;
    instr_ns += phase_instr;
    plain_ns += phase_plain;
    state.SetIterationTime(phase_instr * 1e-9);
  }
  instr.profiler.Stop();
  state.SetItemsProcessed(static_cast<int64_t>(
      state.iterations() * kPhaseBatches * kObsBatchRows));
  state.counters["overhead_ratio"] =
      benchmark::Counter(plain_ns > 0.0 ? instr_ns / plain_ns : 0.0);
}
BENCHMARK(BM_ObsInstrumentationPairedOverhead)->UseManualTime()->MinTime(1.0);

// ---------- time-series sampler A/B ----------

// The flight-recorder stack live against the hot path: a sampler thread
// scrapes the default registry into the ring, evaluates every built-in
// alert rule and runs the flight recorder's cadence gate — at 10ms
// intervals, 25x production's default cadence. The ratio vs
// BM_SteadyStateInstrumented is the time-series overhead criterion
// (budget: <= 2%, run_bench.sh embeds it in BENCH_operator.json). The
// scrape holds no operator lock — the only coupling is cache traffic on
// the atomics the hot path writes — so the two legs should be within
// noise of each other.
void BM_SteadyStateWithTimeseriesSampler(benchmark::State& state) {
  obs::TimeSeries ts({.capacity = 240,
                      .max_series = 1024,
                      .max_points = 1024,
                      .max_bucket_deltas = 2048,
                      .interval_ms = 10});
  obs::AlertEngine alerts;
  alerts.AddBuiltinRules();
  obs::TimeSeriesSampler sampler({.interval_ms = 10,
                                  .registry = &obs::MetricRegistry::Default(),
                                  .timeseries = &ts,
                                  .alerts = &alerts});
  Status started = sampler.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }
  RunSteadyState(state, /*instrumented=*/true);
  sampler.Stop();
  state.counters["scrapes"] =
      benchmark::Counter(static_cast<double>(ts.scrapes()));
  state.counters["alert_evals"] =
      benchmark::Counter(static_cast<double>(alerts.evaluations()));
}
BENCHMARK(BM_SteadyStateWithTimeseriesSampler)->MinTime(2.0);

// The sampler's true cost (~6us of tick work per 10ms interval) is far
// below the run-to-run swing of comparing two separately-timed benchmarks
// on a shared host, so this benchmark measures the ratio *within* one
// process: alternating sampler-on / sampler-off bursts milliseconds
// apart, phase order swapped every iteration so host drift cancels.
// Reported time is the sampler-on burst (manual timing); the per-rep
// paired ratio rides in the overhead_ratio counter, which run_bench.sh
// medians into timeseries_overhead.ratio — the <=1.02 budget criterion.
void BM_TimeseriesSamplerPairedOverhead(benchmark::State& state) {
  SteadyStateRig rig;
  if (!rig.Init(state, /*instrumented=*/true)) return;
  obs::TimeSeries ts({.capacity = 240,
                      .max_series = 1024,
                      .max_points = 1024,
                      .max_bucket_deltas = 2048,
                      .interval_ms = 10});
  obs::AlertEngine alerts;
  alerts.AddBuiltinRules();
  obs::TimeSeriesSampler sampler({.interval_ms = 10,
                                  .registry = &obs::MetricRegistry::Default(),
                                  .timeseries = &ts,
                                  .alerts = &alerts});
  // ~50ms per phase at the steady-state rate: each phase spans ~5 sampler
  // ticks, and one iteration yields one on/off pair.
  constexpr size_t kPhaseBatches = 2048;
  auto burst = [&](double* acc_ns) -> bool {
    const auto t0 = std::chrono::steady_clock::now();
    size_t i = 0;
    for (size_t n = 0; n < kPhaseBatches; ++n) {
      Status s = rig.op->ProcessBatch(rig.batches[i]);
      if (!s.ok()) {
        state.SkipWithError(s.ToString().c_str());
        return false;
      }
      i = (i + 1) & (rig.batches.size() - 1);
    }
    *acc_ns += std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return true;
  };
  double on_ns = 0.0;
  double off_ns = 0.0;
  bool on_first = true;
  for (auto _ : state) {
    double phase_on = 0.0;
    double phase_off = 0.0;
    bool ok;
    if (on_first) {
      (void)sampler.Start();
      ok = burst(&phase_on);
      sampler.Stop();
      ok = ok && burst(&phase_off);
    } else {
      ok = burst(&phase_off);
      (void)sampler.Start();
      ok = ok && burst(&phase_on);
      sampler.Stop();
    }
    if (!ok) return;
    on_first = !on_first;
    on_ns += phase_on;
    off_ns += phase_off;
    state.SetIterationTime(phase_on * 1e-9);
  }
  rig.profiler.Stop();
  state.SetItemsProcessed(static_cast<int64_t>(
      state.iterations() * kPhaseBatches * kObsBatchRows));
  state.counters["overhead_ratio"] =
      benchmark::Counter(off_ns > 0.0 ? on_ns / off_ns : 0.0);
  state.counters["scrapes"] =
      benchmark::Counter(static_cast<double>(ts.scrapes()));
}
BENCHMARK(BM_TimeseriesSamplerPairedOverhead)->UseManualTime()->MinTime(1.0);

// The per-tick cost in isolation: one scrape of a realistically-sized
// registry + one evaluation pass of the built-in rules + the spill
// cadence gate. This is what the sampler thread pays every interval_ms —
// it bounds how tight the interval can go.
void BM_SamplerTick(benchmark::State& state) {
  obs::MetricRegistry reg;
  // A registry shaped like a live pipeline: per-operator bundles plus two
  // ingest sources (scalar + histogram entries, some labeled).
  (void)obs::OperatorMetrics::Create(reg, "bench_op_a");
  (void)obs::OperatorMetrics::Create(reg, "bench_op_b");
  (void)obs::IngestSourceMetrics::Create(reg, "udp:9999");
  (void)obs::IngestSourceMetrics::Create(reg, "pcap:bench.pcap");
  obs::TimeSeries ts({.capacity = 240,
                      .max_series = 1024,
                      .max_points = 1024,
                      .max_bucket_deltas = 2048,
                      .interval_ms = 100});
  obs::AlertEngine alerts;
  alerts.AddBuiltinRules();
  obs::TimeSeriesSampler sampler({.interval_ms = 100,
                                  .registry = &reg,
                                  .timeseries = &ts,
                                  .alerts = &alerts});
  obs::Counter* hot = reg.GetCounter("streamop_bench_hot_total");
  uint64_t t_ns = 1;
  for (auto _ : state) {
    hot->Add(17);  // every tick sees a moving counter
    sampler.TickOnce(t_ns += 100000000ull);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerTick);

// ---------- windowed steady state: quality reports + live HTTP scrapes ----

// Windows actually close during the timed loop here (time advances every
// kTuplesPerWindow tuples), so the quality-report build runs at its real
// cadence — and in the full-observability variant an HTTP poller hammers
// every introspection endpoint (metrics, traces, spans, profile, exemplars,
// windows, healthz) concurrently. The ratio vs the plain variant is the
// "serving overhead" criterion (budget: <= 2%).
constexpr uint64_t kTuplesPerWindow = 16384;

void RunWindowedSteadyState(benchmark::State& state, bool full_obs) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq =
      CompileQuery(kAggregationSql, catalog, {.seed = 3});
  if (!cq.ok() || cq->kind != CompiledQueryKind::kSampling) {
    state.SkipWithError(cq.ok() ? "not a sampling query"
                                : cq.status().ToString().c_str());
    return;
  }
  obs::SpanRing spans(4096);
  obs::Profiler profiler;
  obs::ExemplarStore exemplars;
  SamplingOperator op(cq->sampling);
  obs::QualityRing ring(512);
  op.set_quality(&ring, "micro_obs_q");  // disabled ring in the plain case
  std::unique_ptr<obs::HttpServer> server;
  std::thread poller;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> http_ok{0};
  if (full_obs) {
    op.set_metrics(obs::OperatorMetrics::Create(
        obs::MetricRegistry::Default(), "micro_obs_q"));
    ring.set_enabled(true);
    spans.set_enabled(true);
    op.set_span_ring(&spans);
    profiler.set_phase_accounting(true);
    (void)profiler.Start();  // busy slot (another instance): run unsampled
    op.set_profiler(&profiler);
    exemplars.set_enabled(true);
    op.set_exemplars(&exemplars);
    obs::HttpServerOptions hopt;
    hopt.port = 0;
    hopt.quality_ring = &ring;
    hopt.span_ring = &spans;
    hopt.profiler = &profiler;
    hopt.exemplars = &exemplars;
    server = std::make_unique<obs::HttpServer>(hopt);
    Status started = server->Start();
    if (!started.ok()) {
      state.SkipWithError(started.ToString().c_str());
      return;
    }
    const int port = server->port();
    poller = std::thread([port, &stop, this_ok = &http_ok] {
      // Scrape every endpoint round-robin at a cadence far above any real
      // scraper's (Prometheus defaults to 15s intervals).
      const char* kPaths[] = {"/metrics", "/metrics.json",  "/traces",
                              "/spans",   "/profile?format=phases",
                              "/exemplars", "/windows",     "/healthz"};
      constexpr size_t kNumPaths = sizeof(kPaths) / sizeof(kPaths[0]);
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Result<std::string> r =
            obs::HttpGet(port, kPaths[i % kNumPaths], 2000);
        if (r.ok()) this_ok->fetch_add(1, std::memory_order_relaxed);
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  std::vector<Tuple> tuples = SteadyStateTuples(4096, 64, 16);
  for (const Tuple& t : tuples) {
    Status s = op.Process(t);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  uint64_t i = 0;
  uint64_t tick = 0;
  uint64_t now = 100;
  for (auto _ : state) {
    if (++tick == kTuplesPerWindow) {
      tick = 0;
      now += 20;  // next time/20 bucket: the window closes mid-loop
    }
    Tuple& t = tuples[i & 4095];
    t.at(0) = Value::UInt(now);
    Status s = op.Process(t);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    ++i;
  }
  if (full_obs) {
    // Authoritative liveness sweep, outside the timed region: on a
    // single-CPU host the spinning loop above starves the poller (its
    // in-flight scrapes time out), so verify from this thread that every
    // endpoint answers against the still-live operator state. Blocking in
    // HttpGet yields the CPU to the serving thread.
    for (const char* path :
         {"/metrics", "/metrics.json", "/traces", "/spans",
          "/spans?format=chrome", "/profile?seconds=2",
          "/profile?format=phases", "/exemplars", "/windows", "/healthz"}) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        Result<std::string> r = obs::HttpGet(server->port(), path, 2000);
        if (r.ok()) {
          http_ok.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    stop.store(true, std::memory_order_relaxed);
    if (poller.joinable()) poller.join();
    server->Stop();
    profiler.Stop();
    state.counters["quality_reports"] =
        benchmark::Counter(static_cast<double>(ring.reports_recorded()));
    state.counters["http_requests"] =
        benchmark::Counter(static_cast<double>(server->requests_served()));
    state.counters["http_ok"] =
        benchmark::Counter(static_cast<double>(
            http_ok.load(std::memory_order_relaxed)));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tuples_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_WindowedSteadyStatePlain(benchmark::State& state) {
  RunWindowedSteadyState(state, /*full_obs=*/false);
}
BENCHMARK(BM_WindowedSteadyStatePlain);

// Quality ring, spans, profiler and exemplars attached, and an HTTP client
// scraping every endpoint while the operator runs at full rate.
void BM_WindowedSteadyStateServing(benchmark::State& state) {
  RunWindowedSteadyState(state, /*full_obs=*/true);
}
BENCHMARK(BM_WindowedSteadyStateServing);

}  // namespace
}  // namespace streamop

BENCHMARK_MAIN();
