// Micro-benchmarks for the observability layer (src/obs): the primitive
// record costs (counter add, histogram record, trace-ring event) and the
// tentpole's overhead criterion — the sampling operator's steady-state
// ns/tuple with full instrumentation attached vs detached. run_bench.sh
// computes the instrumented/uninstrumented ratio and embeds it in
// BENCH_operator.json; the budget is <= 2% (DESIGN.md §7). Building with
// -DSTREAMOP_NO_STATS=ON compiles every increment away, which should make
// the two steady-state benchmarks indistinguishable.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "core/sampling_operator.h"
#include "obs/exemplar.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/trace_ring.h"

namespace streamop {
namespace {

// ---------- primitives ----------

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Add();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSetMax(benchmark::State& state) {
  obs::Gauge g;
  double v = 0.0;
  for (auto _ : state) {
    g.SetMax(v);
    v += 0.5;
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSetMax);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = v * 31 % 1000003;  // spread across buckets
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_NowNanos(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::NowNanos());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NowNanos);

void BM_TraceRingRecord(benchmark::State& state) {
  obs::TraceRing ring(8192);
  ring.set_enabled(true);
  uint64_t ts = 0;
  for (auto _ : state) {
    ring.Record("bench_event", ts, 10);
    ts += 100;
  }
  benchmark::DoNotOptimize(ring.events_recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRingRecord);

void BM_TraceRingDisabled(benchmark::State& state) {
  obs::TraceRing ring(8192);  // disabled: one relaxed bool load per call
  uint64_t ts = 0;
  for (auto _ : state) {
    ring.Record("bench_event", ts, 10);
    ts += 100;
  }
  benchmark::DoNotOptimize(ring.events_recorded());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRingDisabled);

// ---------- operator steady state: instrumented vs uninstrumented ----------

// Same tuple shape as micro_operator's steady-state benchmarks: fixed key
// grid, time pinned so no window boundary fires while timing.
std::vector<Tuple> SteadyStateTuples(size_t count, uint64_t num_src,
                                     uint64_t num_dst) {
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t src = 0x0a000000ULL + (i % num_src);
    uint64_t dst = 0xc0a80000ULL + ((i / num_src) % num_dst);
    uint64_t len = 40 + (i * 97) % 1460;
    tuples.push_back(Tuple({Value::UInt(100), Value::UInt(i * 1000),
                            Value::UInt(src), Value::UInt(dst),
                            Value::UInt(1234), Value::UInt(80), Value::UInt(6),
                            Value::UInt(len)}));
  }
  return tuples;
}

constexpr char kAggregationSql[] =
    "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
    "GROUP BY time/20 as tb, srcIP, destIP";

// The A/B pair drives the operator the way the runtime does since the
// batched hot path landed (DESIGN.md §9): prebuilt 512-row TupleBatches
// through ProcessBatch. Instrumentation on this path is amortized per
// batch — one pending-counter flush and one admission-latency record per
// 512 tuples — so the ratio is the overhead of exactly what production
// pays. Items are scaled ×512 to stay a tuples/s rate.
constexpr size_t kObsBatchRows = 512;

void RunSteadyState(benchmark::State& state, bool instrumented) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq =
      CompileQuery(kAggregationSql, catalog, {.seed = 3});
  if (!cq.ok() || cq->kind != CompiledQueryKind::kSampling) {
    state.SkipWithError(cq.ok() ? "not a sampling query"
                                : cq.status().ToString().c_str());
    return;
  }
  // Declared before the operator: it keeps raw pointers to them.
  obs::SpanRing spans(4096);
  obs::Profiler profiler;
  obs::ExemplarStore exemplars;
  SamplingOperator op(cq->sampling);
  if (instrumented) {
    // The full third pillar rides in the instrumented leg: metrics, span
    // emission, phase-cycle accounting, the live SIGPROF stack sampler and
    // exemplar reservoirs — the ratio prices everything production runs.
    op.set_metrics(obs::OperatorMetrics::Create(
        obs::MetricRegistry::Default(), "micro_obs"));
    spans.set_enabled(true);
    op.set_span_ring(&spans);
    profiler.set_phase_accounting(true);
    (void)profiler.Start();  // busy slot (another instance): run unsampled
    op.set_profiler(&profiler);
    exemplars.set_enabled(true);
    op.set_exemplars(&exemplars);
  }
  const std::vector<Tuple> tuples = SteadyStateTuples(4096, 64, 16);
  for (const Tuple& t : tuples) {
    Status s = op.Process(t);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  std::vector<TupleBatch> batches;
  for (size_t i = 0; i < tuples.size(); i += kObsBatchRows) {
    batches.emplace_back(tuples.front().size(), kObsBatchRows);
    for (size_t j = i; j < i + kObsBatchRows; ++j) {
      batches.back().AppendTuple(tuples[j]);
    }
  }
  for (const TupleBatch& b : batches) {
    Status s = op.ProcessBatch(b);  // columnar scratch reaches capacity
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    Status s = op.ProcessBatch(batches[i]);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    i = (i + 1) & (batches.size() - 1);
  }
  profiler.Stop();
  const double total = static_cast<double>(state.iterations()) *
                       static_cast<double>(kObsBatchRows);
  state.SetItemsProcessed(static_cast<int64_t>(total));
  state.counters["tuples_per_sec"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
}

// Baseline: metrics bundle detached — every record site short-circuits on
// enabled(), the same cost profile as a STREAMOP_NO_STATS build.
void BM_SteadyStateUninstrumented(benchmark::State& state) {
  RunSteadyState(state, /*instrumented=*/false);
}
// Longer window than the suite default: the A/B overhead ratio feeds the
// <=1.02 budget check and needs sub-percent timing stability.
BENCHMARK(BM_SteadyStateUninstrumented)->MinTime(2.0);

// Full instrumentation: batch-amortized counter flushes, per-batch
// admission timing, gauges at group creation. The ratio vs the benchmark
// above is the observability overhead (budget: <= 2%).
void BM_SteadyStateInstrumented(benchmark::State& state) {
  RunSteadyState(state, /*instrumented=*/true);
}
BENCHMARK(BM_SteadyStateInstrumented)->MinTime(2.0);

// ---------- windowed steady state: quality reports + live HTTP scrapes ----

// Windows actually close during the timed loop here (time advances every
// kTuplesPerWindow tuples), so the quality-report build runs at its real
// cadence — and in the full-observability variant an HTTP poller hammers
// every introspection endpoint (metrics, traces, spans, profile, exemplars,
// windows, healthz) concurrently. The ratio vs the plain variant is the
// "serving overhead" criterion (budget: <= 2%).
constexpr uint64_t kTuplesPerWindow = 16384;

void RunWindowedSteadyState(benchmark::State& state, bool full_obs) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq =
      CompileQuery(kAggregationSql, catalog, {.seed = 3});
  if (!cq.ok() || cq->kind != CompiledQueryKind::kSampling) {
    state.SkipWithError(cq.ok() ? "not a sampling query"
                                : cq.status().ToString().c_str());
    return;
  }
  obs::SpanRing spans(4096);
  obs::Profiler profiler;
  obs::ExemplarStore exemplars;
  SamplingOperator op(cq->sampling);
  obs::QualityRing ring(512);
  op.set_quality(&ring, "micro_obs_q");  // disabled ring in the plain case
  std::unique_ptr<obs::HttpServer> server;
  std::thread poller;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> http_ok{0};
  if (full_obs) {
    op.set_metrics(obs::OperatorMetrics::Create(
        obs::MetricRegistry::Default(), "micro_obs_q"));
    ring.set_enabled(true);
    spans.set_enabled(true);
    op.set_span_ring(&spans);
    profiler.set_phase_accounting(true);
    (void)profiler.Start();  // busy slot (another instance): run unsampled
    op.set_profiler(&profiler);
    exemplars.set_enabled(true);
    op.set_exemplars(&exemplars);
    obs::HttpServerOptions hopt;
    hopt.port = 0;
    hopt.quality_ring = &ring;
    hopt.span_ring = &spans;
    hopt.profiler = &profiler;
    hopt.exemplars = &exemplars;
    server = std::make_unique<obs::HttpServer>(hopt);
    Status started = server->Start();
    if (!started.ok()) {
      state.SkipWithError(started.ToString().c_str());
      return;
    }
    const int port = server->port();
    poller = std::thread([port, &stop, this_ok = &http_ok] {
      // Scrape every endpoint round-robin at a cadence far above any real
      // scraper's (Prometheus defaults to 15s intervals).
      const char* kPaths[] = {"/metrics", "/metrics.json",  "/traces",
                              "/spans",   "/profile?format=phases",
                              "/exemplars", "/windows",     "/healthz"};
      constexpr size_t kNumPaths = sizeof(kPaths) / sizeof(kPaths[0]);
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Result<std::string> r =
            obs::HttpGet(port, kPaths[i % kNumPaths], 2000);
        if (r.ok()) this_ok->fetch_add(1, std::memory_order_relaxed);
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  std::vector<Tuple> tuples = SteadyStateTuples(4096, 64, 16);
  for (const Tuple& t : tuples) {
    Status s = op.Process(t);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  uint64_t i = 0;
  uint64_t tick = 0;
  uint64_t now = 100;
  for (auto _ : state) {
    if (++tick == kTuplesPerWindow) {
      tick = 0;
      now += 20;  // next time/20 bucket: the window closes mid-loop
    }
    Tuple& t = tuples[i & 4095];
    t.at(0) = Value::UInt(now);
    Status s = op.Process(t);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    ++i;
  }
  if (full_obs) {
    // Authoritative liveness sweep, outside the timed region: on a
    // single-CPU host the spinning loop above starves the poller (its
    // in-flight scrapes time out), so verify from this thread that every
    // endpoint answers against the still-live operator state. Blocking in
    // HttpGet yields the CPU to the serving thread.
    for (const char* path :
         {"/metrics", "/metrics.json", "/traces", "/spans",
          "/spans?format=chrome", "/profile?seconds=2",
          "/profile?format=phases", "/exemplars", "/windows", "/healthz"}) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        Result<std::string> r = obs::HttpGet(server->port(), path, 2000);
        if (r.ok()) {
          http_ok.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    }
    stop.store(true, std::memory_order_relaxed);
    if (poller.joinable()) poller.join();
    server->Stop();
    profiler.Stop();
    state.counters["quality_reports"] =
        benchmark::Counter(static_cast<double>(ring.reports_recorded()));
    state.counters["http_requests"] =
        benchmark::Counter(static_cast<double>(server->requests_served()));
    state.counters["http_ok"] =
        benchmark::Counter(static_cast<double>(
            http_ok.load(std::memory_order_relaxed)));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tuples_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_WindowedSteadyStatePlain(benchmark::State& state) {
  RunWindowedSteadyState(state, /*full_obs=*/false);
}
BENCHMARK(BM_WindowedSteadyStatePlain);

// Quality ring, spans, profiler and exemplars attached, and an HTTP client
// scraping every endpoint while the operator runs at full rate.
void BM_WindowedSteadyStateServing(benchmark::State& state) {
  RunWindowedSteadyState(state, /*full_obs=*/true);
}
BENCHMARK(BM_WindowedSteadyStateServing);

}  // namespace
}  // namespace streamop

BENCHMARK_MAIN();
