// Figure 4 — "Cleaning phases per period", 1000 samples per 20 s period.
//
// The cost of the relaxed algorithm: because each window starts with the
// threshold deliberately lowered (z/f), the cleaning phases must adapt it
// back up, so the relaxed variant performs a handful of cleaning phases per
// window where the non-relaxed variant performs about one. Both spike in
// the first window(s) while the threshold is found from cold.

#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

std::vector<WindowStats> RunWindows(const Trace& trace, double relax) {
  CompiledQuery cq = MustCompile(
      SubsetSumSql(1000, relax, 2.0, /*probabilistic=*/true), /*seed=*/17);
  Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    std::exit(1);
  }
  return run->windows;
}

double MeanAfterWarmup(const std::vector<WindowStats>& windows) {
  if (windows.size() <= 3) return 0.0;
  double total = 0.0;
  for (size_t w = 2; w + 1 < windows.size(); ++w) {
    total += static_cast<double>(windows[w].cleaning_phases);
  }
  return total / static_cast<double>(windows.size() - 3);
}

}  // namespace

int main() {
  Trace trace = TraceGenerator::MakeResearchFeed(601.0, /*seed=*/2005);

  PrintHeader("Figure 4: cleaning phases per period (target 1000)");
  std::vector<WindowStats> relaxed = RunWindows(trace, 10.0);
  std::vector<WindowStats> nonrelaxed = RunWindows(trace, 1.0);

  std::printf("%-8s %14s %14s\n", "window", "relaxed", "nonrelaxed");
  size_t windows = std::min(relaxed.size(), nonrelaxed.size());
  for (size_t w = 0; w < windows; ++w) {
    std::printf("%-8zu %14llu %14llu\n", w,
                static_cast<unsigned long long>(relaxed[w].cleaning_phases),
                static_cast<unsigned long long>(nonrelaxed[w].cleaning_phases));
  }
  double rel_mean = MeanAfterWarmup(relaxed);
  double nonrel_mean = MeanAfterWarmup(nonrelaxed);
  std::printf(
      "\nsummary (after warm-up): relaxed %.1f cleaning phases/window, "
      "nonrelaxed %.1f\n",
      rel_mean, nonrel_mean);
  std::printf(
      "paper shape: relaxed ~4 phases vs nonrelaxed ~1 after stabilizing "
      "-> %s\n",
      (rel_mean > nonrel_mean + 0.5) ? "REPRODUCED" : "CHECK");
  return 0;
}
