// Figure 2 — "Accuracy of summation", 1000 samples per 20 s period.
//
// Three query sets run over the same bursty feed (the paper's research-
// center link): the exact per-window sum of packet lengths ("actual"),
// dynamic subset-sum sampling with the relaxed threshold carry-over
// (f = 10), and the original non-relaxed algorithm. The paper's finding:
// the non-relaxed estimate collapses after sharp load drops because the
// carried threshold over-estimates the next window's load; the relaxed
// variant tracks the actual sum closely.
//
// Also reproduces the §7.1 remark that 100 and 10,000 samples per period
// give nearly identical results (the -n sweep at the bottom).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

struct AccuracyRun {
  std::vector<double> estimate;   // per window
  double mean_abs_rel_err = 0.0;  // over full windows
  double worst_rel_err = 0.0;
};

AccuracyRun RunAccuracy(const Trace& trace, uint64_t n, double relax,
                        const std::vector<uint64_t>& truth) {
  CompiledQuery cq = MustCompile(SubsetSumSql(n, relax, 2.0, /*probabilistic=*/true),
                               /*seed=*/17);
  Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    std::exit(1);
  }
  AccuracyRun out;
  out.estimate = EstimatePerWindow(run->output, truth.size());
  size_t full = truth.size() > 1 ? truth.size() - 1 : truth.size();
  for (size_t w = 0; w < full; ++w) {
    if (truth[w] == 0) continue;
    double rel = std::fabs(out.estimate[w] - static_cast<double>(truth[w])) /
                 static_cast<double>(truth[w]);
    out.mean_abs_rel_err += rel;
    out.worst_rel_err = std::max(out.worst_rel_err, rel);
  }
  out.mean_abs_rel_err /= static_cast<double>(full);
  return out;
}

}  // namespace

int main() {
  // ~30 windows of 20 s, matching the span of the paper's charts.
  const double kDurationSec = 601.0;
  Trace trace = TraceGenerator::MakeResearchFeed(kDurationSec, /*seed=*/2005);
  std::vector<uint64_t> truth = trace.BytesPerWindow(20);

  PrintHeader("Figure 2: accuracy of summation (1000 samples per period)");
  std::printf("trace: %zu packets over %.0f s (bursty research feed)\n",
              trace.size(), trace.DurationSec());

  AccuracyRun relaxed = RunAccuracy(trace, 1000, 10.0, truth);
  AccuracyRun nonrelaxed = RunAccuracy(trace, 1000, 1.0, truth);

  std::printf("%-8s %16s %22s %24s\n", "window", "actual",
              "estimated(relaxed)", "estimated(nonrelaxed)");
  for (size_t w = 0; w + 1 < truth.size(); ++w) {
    std::printf("%-8zu %16llu %16.0f (%+5.1f%%) %16.0f (%+5.1f%%)\n", w,
                static_cast<unsigned long long>(truth[w]),
                relaxed.estimate[w],
                100.0 * (relaxed.estimate[w] - static_cast<double>(truth[w])) /
                    static_cast<double>(truth[w]),
                nonrelaxed.estimate[w],
                100.0 *
                    (nonrelaxed.estimate[w] - static_cast<double>(truth[w])) /
                    static_cast<double>(truth[w]));
  }
  std::printf(
      "\nsummary: relaxed mean |err| = %.2f%% (worst %.2f%%); "
      "nonrelaxed mean |err| = %.2f%% (worst %.2f%%)\n",
      100 * relaxed.mean_abs_rel_err, 100 * relaxed.worst_rel_err,
      100 * nonrelaxed.mean_abs_rel_err, 100 * nonrelaxed.worst_rel_err);
  std::printf(
      "paper shape: nonrelaxed underestimates sharply after load drops; "
      "relaxed tracks the actual sum closely -> %s\n",
      (relaxed.mean_abs_rel_err < nonrelaxed.mean_abs_rel_err &&
       nonrelaxed.worst_rel_err > 2 * relaxed.worst_rel_err)
          ? "REPRODUCED"
          : "CHECK");

  // §7.1: "We repeated these experiments to collect 100 and 10,000 samples
  // per period, and obtained nearly identical results."
  PrintHeader("Figure 2 (N sweep): samples-per-period sensitivity");
  std::printf("%-10s %24s %24s\n", "N", "relaxed mean|err|",
              "nonrelaxed mean|err|");
  for (uint64_t n : {100ULL, 1000ULL, 10000ULL}) {
    AccuracyRun r = RunAccuracy(trace, n, 10.0, truth);
    AccuracyRun nr = RunAccuracy(trace, n, 1.0, truth);
    std::printf("%-10llu %22.2f%% %22.2f%%\n",
                static_cast<unsigned long long>(n), 100 * r.mean_abs_rel_err,
                100 * nr.mean_abs_rel_err);
  }
  return 0;
}
