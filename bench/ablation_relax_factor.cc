// Ablation — the relaxation factor f (the paper fixes f = 10).
//
// The relaxed algorithm seeds each new window with z_prev / f. Small f
// approaches the non-relaxed algorithm (accurate only under steady load);
// large f forgets more of the learned threshold and pays in cleaning
// phases. We sweep f over a bursty feed and report accuracy vs cleaning
// cost, locating the regime the paper's choice sits in.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace streamop;
using namespace streamop::bench;

int main() {
  Trace trace = TraceGenerator::MakeResearchFeed(401.0, /*seed=*/2006);
  std::vector<uint64_t> truth = trace.BytesPerWindow(20);

  PrintHeader("ablation: relaxation factor f (target 1000, bursty feed)");
  std::printf("%-8s %16s %16s %18s %10s\n", "f", "mean|err|",
              "worst|err|", "cleanings/window", "%CPU");
  for (double f : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    CompiledQuery cq =
        MustCompile(SubsetSumSql(1000, f, 2.0, /*probabilistic=*/true), 61);
    Result<SingleRunResult> run = RunQueryOverTrace(cq, trace);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::vector<double> est = EstimatePerWindow(run->output, truth.size());
    double mean_err = 0.0, worst = 0.0;
    size_t full = truth.size() - 1;
    for (size_t w = 0; w < full; ++w) {
      if (truth[w] == 0) continue;
      double rel = std::fabs(est[w] - static_cast<double>(truth[w])) /
                   static_cast<double>(truth[w]);
      mean_err += rel;
      worst = std::max(worst, rel);
    }
    mean_err /= static_cast<double>(full);
    double cleanings = 0;
    for (const WindowStats& ws : run->windows) {
      cleanings += static_cast<double>(ws.cleaning_phases);
    }
    cleanings /= static_cast<double>(run->windows.size());
    std::printf("%-8.0f %15.2f%% %15.2f%% %18.1f %9.2f%%\n", f,
                100 * mean_err, 100 * worst, cleanings,
                run->report.cpu_percent);
  }
  std::printf(
      "\nreading: f=1 (non-relaxed) shows the worst-case windows; accuracy "
      "saturates around the paper's f=10 while cleaning cost keeps rising "
      "with f.\n");
  return 0;
}
