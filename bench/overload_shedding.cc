// Overload experiment — adaptive load shedding on a bursty feed.
//
// A deliberately slow consumer (a per-batch stall hook standing in for an
// expensive high-level query) is fed a bursty research feed through a small
// ring buffer, so the producer sustainedly outruns the consumer. We compare
// the three overload policies on identical input:
//
//   retry — the producer backs off and retries (lossless, but the pipeline
//           runs at consumer speed: unbounded producer latency);
//   drop  — Gigascope's policy: the producer drops packets when the ring is
//           full; aggregates are silently biased low;
//   shed  — the AIMD controller lowers the Bernoulli admission probability
//           p at the consumer and reweights survivors by 1/p, keeping
//           sum(len)/count(*) unbiased while occupancy stays bounded.
//
// For each policy we report wall time, packets lost/shed, and the worst
// per-window relative error of sum(len) against trace ground truth.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "stream/fault_injection.h"

using namespace streamop;
using namespace streamop::bench;

namespace {

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

constexpr char kWindowAggHigh[] =
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/20 as tb";

struct PolicyResult {
  double wall_seconds = 0.0;
  uint64_t lost = 0;          // dropped (drop) or shed (shed)
  double shed_p_min = 1.0;
  uint64_t backoff_sleeps = 0;
  double worst_rel_err = 0.0;
  uint64_t ring_hwm = 0;
};

PolicyResult RunPolicy(const Trace& trace, const char* policy) {
  CompiledQuery low = MustCompile(kPassThroughLow, 41);
  CompiledQuery high = MustCompile(kWindowAggHigh, 42);

  RuntimeOptions opt;
  opt.ring_capacity = 1024;
  opt.batch_size = 256;
  ConsumerStallSpec stall;
  stall.stall_at_batch = 0;
  stall.per_batch_ms = 1;  // the "expensive consumer"
  opt.consumer_stall_hook = MakeConsumerStallHook(stall);
  if (std::string(policy) == "drop") {
    opt.drop_on_overload = true;
  } else if (std::string(policy) == "shed") {
    opt.shed.enabled = true;
    opt.shed.seed = 13;
    opt.shed.min_probability = 0.1;
  }

  TwoLevelRuntime rt(low, {high}, opt);
  Result<RunReport> report = rt.RunThreaded(trace);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed (%s): %s\n", policy,
                 report.status().ToString().c_str());
    std::exit(1);
  }

  PolicyResult out;
  out.wall_seconds = report->pipeline_seconds;
  out.lost = report->packets_dropped + report->tuples_shed;
  out.shed_p_min = report->shed_p_min;
  out.backoff_sleeps = report->producer_backoff_sleeps;
  out.ring_hwm = report->ring_occupancy_hwm;

  std::vector<uint64_t> truth = trace.BytesPerWindow(20);
  std::map<uint64_t, double> est;
  for (const Tuple& t : rt.high_node(0).DrainOutput()) {
    est[t[0].AsUInt()] += t[1].AsDouble();
  }
  for (size_t w = 0; w + 1 < truth.size(); ++w) {  // full windows only
    if (truth[w] == 0) continue;
    double rel = std::fabs(est[w] - static_cast<double>(truth[w])) /
                 static_cast<double>(truth[w]);
    out.worst_rel_err = std::max(out.worst_rel_err, rel);
  }
  return out;
}

}  // namespace

int main() {
  const double kDurationSec = 41.0;
  Trace trace = TraceGenerator::MakeResearchFeed(kDurationSec, /*seed=*/74);

  PrintHeader("Overload: retry vs drop vs AIMD shedding");
  std::printf("trace: %zu packets over %.0f s; ring 1024, consumer stalled "
              "1 ms / 256-packet batch\n\n",
              trace.size(), kDurationSec);
  std::printf("%-6s | %9s %12s %8s %10s %12s %10s\n", "policy", "wall(s)",
              "lost/shed", "p_min", "backoffs", "ring hwm", "worst err");

  for (const char* policy : {"retry", "drop", "shed"}) {
    PolicyResult r = RunPolicy(trace, policy);
    std::printf("%-6s | %9.2f %12llu %8.2f %10llu %12llu %9.2f%%\n", policy,
                r.wall_seconds, static_cast<unsigned long long>(r.lost),
                r.shed_p_min, static_cast<unsigned long long>(r.backoff_sleeps),
                static_cast<unsigned long long>(r.ring_hwm),
                100.0 * r.worst_rel_err);
  }

  std::printf(
      "\nexpectation: retry is lossless only because replay can be "
      "backpressured (live capture cannot); drop races ahead but biases "
      "sums ~ -99%%; shed admits ~p of the feed yet stays within ~1%% of "
      "ground truth thanks to 1/p reweighting\n");
  return 0;
}
