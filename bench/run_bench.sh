#!/usr/bin/env bash
# Runs the operator and sampler micro-benchmarks and writes
# BENCH_operator.json (repo root) for the perf trajectory.
#
# Usage: bench/run_bench.sh [build_dir] [output_json]
#
# The JSON layout:
#   {
#     "timestamp": ...,
#     "benchmarks": { "<name>": {"real_time_ns": ..., "items_per_second": ...} },
#     "baseline":   { "<name>": {...} },          # when BENCH_BASELINE is set
#     "speedup":    { "<name>": <x faster> },     # optimized vs baseline
#     "raw": { "micro_operator": <google-benchmark JSON>,
#              "micro_samplers": <google-benchmark JSON> }
#   }
#
# Set BENCH_BASELINE to a google-benchmark JSON file from a pre-change build
# to embed a before/after comparison.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_operator.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"

TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

for exe in micro_operator micro_samplers; do
  bin="$BUILD_DIR/bench/$exe"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
  echo "== $exe =="
  "$bin" --benchmark_min_time="$MIN_TIME" \
         --benchmark_out="$TMPDIR_BENCH/$exe.json" \
         --benchmark_out_format=json
done

python3 - "$TMPDIR_BENCH" "$OUT" "${BENCH_BASELINE:-}" <<'EOF'
import json, sys, time

tmpdir, out_path, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]

def flatten(data):
    flat = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        flat[b["name"]] = {
            "real_time_ns": b.get("real_time"),
            "cpu_time_ns": b.get("cpu_time"),
            "items_per_second": b.get("items_per_second"),
        }
    return flat

raw = {}
flat = {}
for exe in ("micro_operator", "micro_samplers"):
    with open(f"{tmpdir}/{exe}.json") as f:
        data = json.load(f)
    raw[exe] = data
    flat.update(flatten(data))

result = {
    "timestamp": int(time.time()),
    "benchmarks": flat,
}

if baseline_path:
    with open(baseline_path) as f:
        base = flatten(json.load(f))
    result["baseline"] = base
    result["speedup"] = {
        name: round(flat[name]["items_per_second"] /
                    base[name]["items_per_second"], 3)
        for name in sorted(base)
        if name in flat and base[name].get("items_per_second")
        and flat[name].get("items_per_second")
    }

result["raw"] = raw
with open(out_path, "w") as f:
    json.dump(result, f, indent=1)
    f.write("\n")
print(f"wrote {out_path} ({len(flat)} benchmarks)")
for name, x in sorted(result.get("speedup", {}).items()):
    print(f"  {name}: {x}x")
EOF
