#!/usr/bin/env bash
# Runs the operator, sampler and observability micro-benchmarks and writes
# BENCH_operator.json (repo root) for the perf trajectory.
#
# Usage: bench/run_bench.sh [build_dir] [output_json]
#
# The JSON layout:
#   {
#     "timestamp": ...,
#     "benchmarks": { "<name>": {"real_time_ns": ..., "items_per_second": ...} },
#     "obs_overhead": { "instrumented_ns": ..., "uninstrumented_ns": ...,
#                       "ratio": ... },            # budget: ratio <= 1.02
#     "timeseries_overhead": { "with_sampler_ns": ..., "instrumented_ns": ...,
#                              "ratio": ...,          # budget: <= 1.02
#                              "sampler_tick_ns": ..., "scrapes": ... },
#     "serving_overhead": { "serving_ns": ..., "plain_ns": ..., "ratio": ...,
#                           "http_requests": ..., "single_cpu": ... },
#     "checkpoint_overhead": { "ratio": ...,          # per-flush snapshot cost
#                              "steady_state_ratio": ...,  # budget: <= 1.02
#                              "checkpoint_bytes": ...,
#                              "checkpoint_write_ns": ... },
#     "ingest_throughput": { ... },                # socket/pcap vs in-process
#     "quality_summary": { ... },                  # per-window error bounds
#     "metrics_snapshot": { ... },                 # registry JSON from a CLI run
#     "baseline":   { "<name>": {...} },           # when BENCH_BASELINE is set
#     "speedup":    { "<name>": <x faster> },      # optimized vs baseline
#     "regression": { "<name>": { "previous_items_per_second": ...,
#                                 "items_per_second": ..., "change": ... } },
#     "overhead_regression": { "obs_overhead": { "previous_ratio": ...,
#                                                "ratio": ..., "change": ... },
#                              "serving_overhead": { ... } },
#     "raw": { "micro_operator": <google-benchmark JSON>, ... }
#   }
#
# Set BENCH_BASELINE to a google-benchmark JSON file from a pre-change build
# to embed a before/after comparison.
#
# If the output JSON already exists (the committed BENCH_operator.json from
# the previous PR), a regression table against it is printed and embedded:
# every benchmark present in both runs is compared on items_per_second, and
# any drop greater than 10% is flagged with a WARNING. The obs_overhead and
# serving_overhead ratios are diffed the same way — an observability change
# that inflates either A/B ratio by more than 10% relative gets its own
# WARNING line. Warnings do not fail the script — renamed drivers and host
# variance need a human eye — but they make an accidental slowdown
# impossible to miss.
#
# Any missing benchmark binary, benchmark crash, unparsable benchmark JSON
# or failing CLI run aborts the script with a non-zero exit code — a silent
# half-empty BENCH_operator.json would poison the perf trajectory.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT="${2:-$REPO_ROOT/BENCH_operator.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.5}"
# Interleaved repetitions for the A/B and trajectory-gating binaries.
# Raise on noisy (shared / single-CPU) hosts: the obs overhead ratio is a
# <=2% delta, easily swamped unless the median spans enough reps.
REPS="${BENCH_REPS:-5}"
# The obs A/B ratios are <=2% deltas between separate benchmarks; their
# medians need more reps than the operator trajectory numbers to stabilise
# on shared hosts (5 reps leaves ~8% run-to-run swing on the ratio).
OBS_REPS="${BENCH_OBS_REPS:-11}"

TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

fail() {
  echo "error: $*" >&2
  exit 1
}

BENCHES=(micro_operator micro_samplers micro_obs micro_ingest)

for exe in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$exe"
  [[ -x "$bin" ]] || fail "$bin not built (cmake --build $BUILD_DIR -j)"
  echo "== $exe =="
  # micro_obs measures a <=2% A/B delta and micro_operator carries the
  # trajectory-gating steady-state numbers: interleave repetitions so a
  # transient slow phase (VM steal) can't cover all reps of one benchmark,
  # and record medians.
  extra=()
  if [[ "$exe" == micro_obs ]]; then
    extra=(--benchmark_repetitions="$OBS_REPS" --benchmark_enable_random_interleaving=true)
  elif [[ "$exe" == micro_operator ]]; then
    extra=(--benchmark_repetitions="$REPS" --benchmark_enable_random_interleaving=true)
  fi
  if ! "$bin" --benchmark_min_time="$MIN_TIME" \
              --benchmark_out="$TMPDIR_BENCH/$exe.json" \
              --benchmark_out_format=json "${extra[@]}"; then
    fail "$exe exited non-zero"
  fi
  [[ -s "$TMPDIR_BENCH/$exe.json" ]] || fail "$exe produced no JSON output"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "$TMPDIR_BENCH/$exe.json" || fail "$exe wrote unparsable JSON"
done

# One instrumented CLI run so the snapshot of engine metrics (ring, node,
# operator phases) rides along with the benchmark numbers.
CLI="$BUILD_DIR/examples/streamop_cli"
[[ -x "$CLI" ]] || fail "$CLI not built"
if ! "$CLI" --feed datacenter --duration 2 --seed 7 \
        --query "SELECT tb, srcIP, sum(len), count(*) FROM PKT GROUP BY time/20 as tb, srcIP" \
        --limit 0 --metrics-json="$TMPDIR_BENCH/metrics.json" \
        > /dev/null; then
  fail "streamop_cli metrics run failed"
fi
[[ -s "$TMPDIR_BENCH/metrics.json" ]] || fail "CLI produced no metrics JSON"

# A subset-sum sampling run so per-window quality reports (HT variance,
# confidence intervals, threshold) ride along too. Single quotes: the
# query contains $(...) which the shell must not expand.
if ! "$CLI" --feed datacenter --duration 4 --seed 7 \
        --query 'SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold()), sum$(len) FROM PKT WHERE ssample(len, 100, 2, 100, 10.0) = TRUE GROUP BY time as tb, srcIP, destIP HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE CLEANING BY ssclean_with(sum(len)) = TRUE' \
        --limit 0 --quality-json="$TMPDIR_BENCH/quality.json" \
        > /dev/null; then
  fail "streamop_cli quality run failed"
fi
[[ -s "$TMPDIR_BENCH/quality.json" ]] || fail "CLI produced no quality JSON"

python3 - "$TMPDIR_BENCH" "$OUT" "${BENCH_BASELINE:-}" <<'EOF'
import json, os, re, sys, time

tmpdir, out_path, baseline_path = sys.argv[1], sys.argv[2], sys.argv[3]

# Load the previous run (the committed BENCH_operator.json) before it gets
# overwritten, for the regression table: per-benchmark throughput plus the
# two A/B overhead ratios.
previous = {}
previous_overheads = {}
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            prev_doc = json.load(f)
        previous = prev_doc.get("benchmarks", {})
        for key in ("obs_overhead", "serving_overhead", "timeseries_overhead"):
            ratio = (prev_doc.get(key) or {}).get("ratio")
            if ratio:
                previous_overheads[key] = ratio
    except (json.JSONDecodeError, OSError) as e:
        print(f"note: could not read previous {out_path}: {e}")

# Benchmarks registered with an explicit ->MinTime() get "/min_time:X"
# appended to their reported name; strip it so recorded names stay stable
# across min-time tuning and the regression table keys keep matching.
def norm(name):
    return re.sub(r"/min_time:[0-9.]+", "", name)

def flatten(data):
    # Prefer the _median aggregate when repetitions were run: the last
    # repetition is one 0.5-2s slice of a noisy VM, the median is not.
    flat = {}
    medians = set()
    for b in data.get("benchmarks", []):
        name = norm(b["name"])
        is_median = b.get("run_type") == "aggregate" and name.endswith("_median")
        if is_median:
            name = name[: -len("_median")]
        elif b.get("run_type") == "aggregate" or name in medians:
            continue
        flat[name] = {
            "real_time_ns": b.get("real_time"),
            "cpu_time_ns": b.get("cpu_time"),
            "items_per_second": b.get("items_per_second"),
        }
        if is_median:
            medians.add(name)
    return flat

raw = {}
flat = {}
for exe in ("micro_operator", "micro_samplers", "micro_obs", "micro_ingest"):
    with open(f"{tmpdir}/{exe}.json") as f:
        data = json.load(f)
    raw[exe] = data
    flat.update(flatten(data))

result = {
    "timestamp": int(time.time()),
    "benchmarks": flat,
}

# Observability overhead: instrumented vs uninstrumented steady state
# (budget: ratio <= 1.02, DESIGN.md §7). The budget ratio comes from the
# paired benchmark (both rigs alternate bursts in one process, so host
# drift cancels); the separately-timed legs ride along for context.
def median_time(data, name):
    for b in data.get("benchmarks", []):
        if norm(b.get("name", "")) == f"{name}_median":
            return b.get("real_time")
    return flat.get(name, {}).get("real_time_ns")

def counter(data, name, key):
    vals = [b.get(key) for b in data.get("benchmarks", [])
            if b.get("name", "").startswith(name) and b.get(key) is not None]
    return max(vals) if vals else None

def median_counter(data, name, key):
    for b in data.get("benchmarks", []):
        n = norm(b.get("name", ""))
        if n.startswith(name) and n.endswith("_median") and b.get(key) is not None:
            return b[key]
    vals = sorted(b.get(key) for b in data.get("benchmarks", [])
                  if b.get("name", "").startswith(name)
                  and b.get("run_type") != "aggregate"
                  and b.get(key) is not None)
    return vals[len(vals) // 2] if vals else None

instr = median_time(raw["micro_obs"], "BM_SteadyStateInstrumented")
plain = median_time(raw["micro_obs"], "BM_SteadyStateUninstrumented")
obs_paired = median_counter(raw["micro_obs"],
                            "BM_ObsInstrumentationPairedOverhead",
                            "overhead_ratio")
if instr is None or plain is None or not plain or obs_paired is None:
    sys.exit("error: micro_obs steady-state benchmarks missing from output")
result["obs_overhead"] = {
    "ratio": round(obs_paired, 4),
    "instrumented_ns": instr,
    "uninstrumented_ns": plain,
}

# Time-series overhead: the flight-recorder stack live (sampler thread
# scraping at 10ms + built-in alert rules evaluating) vs without it. The
# budget ratio comes from the *paired* benchmark — alternating sampler-on /
# sampler-off bursts inside one process, so host drift between two
# separately-timed benchmarks can't swamp a ~0.1% effect. The separately
# timed leg rides along for context only.
paired = median_counter(raw["micro_obs"],
                        "BM_TimeseriesSamplerPairedOverhead", "overhead_ratio")
ts_leg = median_time(raw["micro_obs"], "BM_SteadyStateWithTimeseriesSampler")
tick = median_time(raw["micro_obs"], "BM_SamplerTick")
if paired is None or ts_leg is None or tick is None:
    sys.exit("error: micro_obs time-series benchmarks missing from output")
result["timeseries_overhead"] = {
    "ratio": round(paired, 4),
    "with_sampler_ns": ts_leg,
    "instrumented_ns": instr,
    "sampler_tick_ns": tick,
    "scrapes": counter(raw["micro_obs"],
                       "BM_SteadyStateWithTimeseriesSampler", "scrapes"),
}

# Serving overhead: windows closing mid-loop with an HTTP scraper hitting
# all five endpoints vs the same loop with everything detached. On a
# single-CPU host the scraper time-shares with the operator, so the ratio
# includes scheduler contention, not just instrumentation — record the
# core count so CI judges the <= 1.02 budget on multi-core hardware only.
serving = median_time(raw["micro_obs"], "BM_WindowedSteadyStateServing")
wplain = median_time(raw["micro_obs"], "BM_WindowedSteadyStatePlain")
if serving is None or wplain is None or not wplain:
    sys.exit("error: micro_obs windowed benchmarks missing from output")

result["serving_overhead"] = {
    "serving_ns": serving,
    "plain_ns": wplain,
    "ratio": round(serving / wplain, 4),
    "http_requests": counter(raw["micro_obs"],
                             "BM_WindowedSteadyStateServing", "http_requests"),
    "http_ok": counter(raw["micro_obs"],
                       "BM_WindowedSteadyStateServing", "http_ok"),
    "single_cpu": (os.cpu_count() or 1) == 1,
}
if not result["serving_overhead"]["http_ok"]:
    sys.exit("error: serving benchmark completed no HTTP scrapes")

# Durability cost (DESIGN.md §10), two numbers with different budgets:
#  - steady_state_ratio: enabling checkpoints with no window flush in the
#    timed loop — the hot path must be unaffected (budget <= 1.02);
#  - ratio: a window flush per iteration with a full serialize + fsync +
#    rename snapshot each time — the worst-case flush-path cost that
#    --checkpoint-every-n-windows amortizes. Recorded, not budgeted.
ck = median_time(raw["micro_operator"], "BM_WindowedGroupedSamplingCheckpointed")
ck_base = median_time(raw["micro_operator"], "BM_WindowedGroupedSamplingBaseline")
steady = median_time(raw["micro_operator"], "BM_SteadyStateGroupedSampling/64")
steady_ck = median_time(raw["micro_operator"],
                        "BM_SteadyStateGroupedSamplingCheckpointed/64")
if any(v is None for v in (ck, ck_base, steady, steady_ck)) or not ck_base \
        or not steady:
    sys.exit("error: checkpoint benchmarks missing from micro_operator output")
result["checkpoint_overhead"] = {
    "checkpointed_ns": ck,
    "baseline_ns": ck_base,
    "ratio": round(ck / ck_base, 4),
    "steady_state_checkpointed_ns": steady_ck,
    "steady_state_ns": steady,
    "steady_state_ratio": round(steady_ck / steady, 4),
    "checkpoint_bytes": counter(raw["micro_operator"],
                                "BM_WindowedGroupedSamplingCheckpointed",
                                "checkpoint_bytes"),
    "checkpoint_write_ns": counter(raw["micro_operator"],
                                   "BM_WindowedGroupedSamplingCheckpointed",
                                   "checkpoint_write_ns"),
}

# Ingestion cost (DESIGN.md §11): the same pipeline fed in-process vs from
# a pcap file vs over a loopback TCP socket, plus the reconnect-storm case.
# The ratios are "fraction of in-process throughput retained"; recorded,
# not budgeted — the socket path is bounded by syscalls, not the operator.
def ingest_ips(name):
    return flat.get(name, {}).get("items_per_second")

in_proc = ingest_ips("BM_InProcessIngest")
pcap_ips = ingest_ips("BM_PcapIngest")
tcp_ips = ingest_ips("BM_TcpLoopbackIngest")
storm_ips = ingest_ips("BM_TcpReconnectStorm")
if not in_proc or not pcap_ips or not tcp_ips or not storm_ips:
    sys.exit("error: ingest benchmarks missing from micro_ingest output")
result["ingest_throughput"] = {
    "in_process_items_per_second": in_proc,
    "pcap_items_per_second": pcap_ips,
    "tcp_items_per_second": tcp_ips,
    "reconnect_storm_items_per_second": storm_ips,
    "pcap_fraction": round(pcap_ips / in_proc, 4),
    "tcp_fraction": round(tcp_ips / in_proc, 4),
    "storm_fraction_of_tcp": round(storm_ips / tcp_ips, 4),
    "storm_reconnects": counter(raw["micro_ingest"],
                                "BM_TcpReconnectStorm", "reconnects"),
}

# Quality summary: compress the per-window reports from the subset-sum CLI
# run into the headline error-bound numbers.
with open(f"{tmpdir}/quality.json") as f:
    quality = json.load(f)
reports = quality.get("reports", [])
ests = [e for r in reports for e in r.get("estimators", [])]
sums = [e for e in ests if e.get("kind") == "sum_ht"]
rel_ci = [e["ci95"] / e["estimate"] for e in sums
          if e.get("estimate") and e.get("ci95") is not None]
admitted = [r["tuples_admitted"] / r["tuples_in"]
            for r in reports if r.get("tuples_in")]
result["quality_summary"] = {
    "windows": quality.get("recorded", 0),
    "estimators": len(ests),
    "sum_ht_estimators": len(sums),
    "mean_admitted_fraction":
        round(sum(admitted) / len(admitted), 4) if admitted else None,
    "mean_rel_ci95":
        round(sum(rel_ci) / len(rel_ci), 4) if rel_ci else None,
    "max_threshold_z":
        max((e["threshold_z"] for e in ests if e.get("threshold_z")),
            default=None),
    "min_shed_p": min((r["shed_p_min"] for r in reports
                       if r.get("shed_p_min") is not None), default=None),
}
if not reports:
    sys.exit("error: quality run recorded no window reports")

with open(f"{tmpdir}/metrics.json") as f:
    result["metrics_snapshot"] = json.load(f)

if baseline_path:
    with open(baseline_path) as f:
        base = flatten(json.load(f))
    result["baseline"] = base
    result["speedup"] = {
        name: round(flat[name]["items_per_second"] /
                    base[name]["items_per_second"], 3)
        for name in sorted(base)
        if name in flat and base[name].get("items_per_second")
        and flat[name].get("items_per_second")
    }

# Regression table vs the previous committed run: items_per_second for
# every benchmark present in both. Drops > 10% get a WARNING line.
regression = {}
warned = []
for name in sorted(previous):
    prev_ips = (previous[name] or {}).get("items_per_second")
    cur_ips = flat.get(name, {}).get("items_per_second")
    if not prev_ips or not cur_ips:
        continue
    change = cur_ips / prev_ips - 1.0
    regression[name] = {
        "previous_items_per_second": prev_ips,
        "items_per_second": cur_ips,
        "change": round(change, 4),
    }
    if change < -0.10:
        warned.append((name, change))
if regression:
    result["regression"] = regression

# Overhead-ratio diff vs the previous run. The ratios are "cost multipliers"
# (1.0 = free), so the comparison is on the relative change of the ratio
# itself: 1.01 -> 1.12 is a real observability regression even though both
# rounds trip the same <= 10% throughput rule above.
overhead_regression = {}
overhead_warned = []
for key, prev_ratio in sorted(previous_overheads.items()):
    cur_ratio = result[key]["ratio"]
    change = cur_ratio / prev_ratio - 1.0
    overhead_regression[key] = {
        "previous_ratio": prev_ratio,
        "ratio": cur_ratio,
        "change": round(change, 4),
    }
    if change > 0.10:
        overhead_warned.append((key, change))
if overhead_regression:
    result["overhead_regression"] = overhead_regression

result["raw"] = raw
with open(out_path, "w") as f:
    json.dump(result, f, indent=1)
    f.write("\n")
print(f"wrote {out_path} ({len(flat)} benchmarks)")
print(f"  obs overhead ratio: {result['obs_overhead']['ratio']}x")
print(f"  timeseries overhead ratio: {result['timeseries_overhead']['ratio']}x "
      f"(tick {result['timeseries_overhead']['sampler_tick_ns']:.0f} ns, "
      f"scrapes={result['timeseries_overhead']['scrapes']:.0f})")
print(f"  serving overhead ratio: {result['serving_overhead']['ratio']}x "
      f"(http_ok={result['serving_overhead']['http_ok']}, "
      f"single_cpu={result['serving_overhead']['single_cpu']})")
print(f"  checkpoint overhead: steady-state "
      f"{result['checkpoint_overhead']['steady_state_ratio']}x, "
      f"per-flush {result['checkpoint_overhead']['ratio']}x "
      f"({result['checkpoint_overhead']['checkpoint_bytes']:.0f} B, "
      f"{result['checkpoint_overhead']['checkpoint_write_ns']:.0f} ns/write)")
print(f"  ingest: pcap {result['ingest_throughput']['pcap_fraction']:.2f}x, "
      f"tcp {result['ingest_throughput']['tcp_fraction']:.2f}x of in-process; "
      f"storm keeps {result['ingest_throughput']['storm_fraction_of_tcp']:.2f}x "
      f"of tcp ({result['ingest_throughput']['storm_reconnects']:.0f} reconnects)")
print(f"  quality: {result['quality_summary']['windows']} windows, "
      f"mean rel ci95 {result['quality_summary']['mean_rel_ci95']}")
for name, x in sorted(result.get("speedup", {}).items()):
    print(f"  {name}: {x}x")
if regression:
    print(f"regression vs previous {os.path.basename(out_path)}:")
    width = max(len(n) for n in regression)
    for name, r in sorted(regression.items()):
        mark = "  WARNING: >10% drop" if r["change"] < -0.10 else ""
        print(f"  {name:<{width}}  {r['previous_items_per_second']:>14.3e}"
              f" -> {r['items_per_second']:>14.3e}"
              f"  {r['change']*100:+7.1f}%{mark}")
    if warned:
        print(f"  {len(warned)} benchmark(s) regressed more than 10% — "
              "investigate before committing this JSON")
if overhead_regression:
    print(f"overhead ratios vs previous {os.path.basename(out_path)}:")
    for key, r in sorted(overhead_regression.items()):
        mark = "  WARNING: ratio grew >10%" if r["change"] > 0.10 else ""
        print(f"  {key:<17}  {r['previous_ratio']:.4f}x -> {r['ratio']:.4f}x"
              f"  {r['change']*100:+7.1f}%{mark}")
    if overhead_warned:
        print(f"  {len(overhead_warned)} overhead ratio(s) grew more than "
              "10% — the observability layer got more expensive")
EOF
