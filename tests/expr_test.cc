// Unit tests for src/expr: AST construction, evaluation semantics
// (numeric promotion, comparisons, short-circuiting, errors), scalar
// functions, aggregates, and the stateful-function registry.

#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "expr/scalar_function.h"
#include "expr/stateful.h"
#include "tuple/tuple.h"

namespace streamop {
namespace {

Value Eval(const ExprPtr& e, const EvalContext& ctx = {}) {
  Result<Value> r = Evaluate(*e, ctx);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

// ---------- literals and column refs ----------

TEST(ExprTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(Eval(Expr::Literal(Value::UInt(5))), Value::UInt(5));
  EXPECT_EQ(Eval(Expr::Literal(Value::String("x"))), Value::String("x"));
}

TEST(ExprTest, InputColumnRef) {
  Tuple input({Value::UInt(10), Value::String("a")});
  EvalContext ctx;
  ctx.input = &input;
  EXPECT_EQ(Eval(Expr::InputRef("c0", 0), ctx), Value::UInt(10));
  EXPECT_EQ(Eval(Expr::InputRef("c1", 1), ctx), Value::String("a"));
}

TEST(ExprTest, GroupByRef) {
  GroupKey key({Value::UInt(7)});
  EvalContext ctx;
  ctx.group_key = &key;
  EXPECT_EQ(Eval(Expr::GroupByRef("g", 0), ctx), Value::UInt(7));
}

TEST(ExprTest, UnresolvedColumnIsError) {
  Result<Value> r = Evaluate(*Expr::Column("x"), EvalContext{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ExprTest, MissingContextIsError) {
  Result<Value> r = Evaluate(*Expr::InputRef("c", 0), EvalContext{});
  EXPECT_FALSE(r.ok());
}

// ---------- arithmetic ----------

ExprPtr Bin(BinaryOp op, Value l, Value r) {
  return Expr::Binary(op, Expr::Literal(std::move(l)),
                      Expr::Literal(std::move(r)));
}

TEST(ExprTest, UnsignedArithmetic) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kAdd, Value::UInt(2), Value::UInt(3))),
            Value::UInt(5));
  EXPECT_EQ(Eval(Bin(BinaryOp::kMul, Value::UInt(4), Value::UInt(5))),
            Value::UInt(20));
  EXPECT_EQ(Eval(Bin(BinaryOp::kDiv, Value::UInt(45), Value::UInt(20))),
            Value::UInt(2));  // integer division (time/20 bucketing)
  EXPECT_EQ(Eval(Bin(BinaryOp::kMod, Value::UInt(45), Value::UInt(20))),
            Value::UInt(5));
}

TEST(ExprTest, UnsignedSubtractionUnderflowGoesSigned) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kSub, Value::UInt(3), Value::UInt(5))),
            Value::Int(-2));
  EXPECT_EQ(Eval(Bin(BinaryOp::kSub, Value::UInt(5), Value::UInt(3))),
            Value::UInt(2));
}

TEST(ExprTest, DoublePromotion) {
  Value v = Eval(Bin(BinaryOp::kDiv, Value::UInt(1), Value::Double(4.0)));
  EXPECT_EQ(v.type(), FieldType::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 0.25);
}

TEST(ExprTest, SignedPromotion) {
  Value v = Eval(Bin(BinaryOp::kAdd, Value::Int(-1), Value::UInt(3)));
  EXPECT_EQ(v.type(), FieldType::kInt);
  EXPECT_EQ(v.int_value(), 2);
}

TEST(ExprTest, DivisionByZeroIsError) {
  Result<Value> r =
      Evaluate(*Bin(BinaryOp::kDiv, Value::UInt(1), Value::UInt(0)), {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  r = Evaluate(*Bin(BinaryOp::kMod, Value::Int(1), Value::Int(0)), {});
  EXPECT_FALSE(r.ok());
}

TEST(ExprTest, ArithmeticOnStringIsTypeError) {
  Result<Value> r =
      Evaluate(*Bin(BinaryOp::kAdd, Value::String("a"), Value::UInt(1)), {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

// ---------- comparisons and logic ----------

TEST(ExprTest, ComparisonsCrossType) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kLt, Value::UInt(1), Value::Double(1.5))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kEq, Value::UInt(2), Value::Int(2))),
            Value::Bool(true));  // numeric equality across types
  EXPECT_EQ(Eval(Bin(BinaryOp::kGe, Value::UInt(2), Value::UInt(2))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kNe, Value::UInt(2), Value::UInt(3))),
            Value::Bool(true));
}

TEST(ExprTest, StringComparisonLexicographic) {
  EXPECT_EQ(Eval(Bin(BinaryOp::kLt, Value::String("abc"), Value::String("abd"))),
            Value::Bool(true));
  EXPECT_EQ(Eval(Bin(BinaryOp::kEq, Value::String("x"), Value::String("x"))),
            Value::Bool(true));
}

TEST(ExprTest, LargeUInt64ComparedExactly) {
  uint64_t big = (1ULL << 63) + 1;
  EXPECT_EQ(Eval(Bin(BinaryOp::kGt, Value::UInt(big), Value::UInt(big - 1))),
            Value::Bool(true));
}

TEST(ExprTest, AndOrShortCircuit) {
  // RHS would fail (division by zero) if evaluated.
  ExprPtr bad = Bin(BinaryOp::kDiv, Value::UInt(1), Value::UInt(0));
  ExprPtr e = Expr::Binary(BinaryOp::kAnd, Expr::Literal(Value::Bool(false)),
                           bad);
  EXPECT_EQ(Eval(e), Value::Bool(false));
  e = Expr::Binary(BinaryOp::kOr, Expr::Literal(Value::Bool(true)), bad);
  EXPECT_EQ(Eval(e), Value::Bool(true));
}

TEST(ExprTest, NotAndNegation) {
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNot, Expr::Literal(Value::Bool(true)))),
            Value::Bool(false));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNeg, Expr::Literal(Value::UInt(5)))),
            Value::Int(-5));
  EXPECT_EQ(
      Eval(Expr::Unary(UnaryOp::kNeg, Expr::Literal(Value::Double(1.5)))),
      Value::Double(-1.5));
}

TEST(ExprTest, PredicateSemantics) {
  EvalContext ctx;
  Result<bool> r = EvaluatePredicate(nullptr, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);  // omitted clause always passes
  ExprPtr zero = Expr::Literal(Value::UInt(0));
  EXPECT_FALSE(*EvaluatePredicate(zero.get(), ctx));
}

// ---------- Clone / ToString ----------

TEST(ExprTest, CloneIsDeep) {
  ExprPtr e = Expr::Binary(BinaryOp::kAdd, Expr::Column("a"),
                           Expr::Literal(Value::UInt(1)));
  ExprPtr c = e->Clone();
  c->children[0]->column_name = "b";
  EXPECT_EQ(e->children[0]->column_name, "a");
}

TEST(ExprTest, ToStringRoundRepresentation) {
  ExprPtr e = Expr::Binary(BinaryOp::kDiv, Expr::Column("time"),
                           Expr::Literal(Value::UInt(60)));
  EXPECT_EQ(e->ToString(), "(time / 60)");
  ExprPtr call = Expr::Call("sum", {Expr::Column("len")});
  EXPECT_EQ(call->ToString(), "sum(len)");
  ExprPtr super = Expr::Call("count_distinct", {}, /*is_super=*/true);
  super->star_arg = true;
  EXPECT_EQ(super->ToString(), "count_distinct$(*)");
}

// ---------- scalar functions ----------

Value CallScalar(const std::string& name, std::vector<Value> args) {
  const ScalarFunctionDef* def = ScalarFunctionRegistry::Global().Find(name);
  EXPECT_NE(def, nullptr) << name;
  Result<Value> r = def->fn(args.data(), args.size());
  EXPECT_TRUE(r.ok());
  return r.ok() ? *r : Value::Null();
}

TEST(ScalarFunctionTest, Umax) {
  EXPECT_EQ(CallScalar("UMAX", {Value::UInt(3), Value::UInt(9)}),
            Value::UInt(9));
  EXPECT_EQ(CallScalar("umax", {Value::UInt(9), Value::UInt(3)}),
            Value::UInt(9));  // case-insensitive lookup
}

TEST(ScalarFunctionTest, UminDmaxDmin) {
  EXPECT_EQ(CallScalar("UMIN", {Value::UInt(3), Value::UInt(9)}),
            Value::UInt(3));
  EXPECT_EQ(CallScalar("DMAX", {Value::Double(1.5), Value::Double(2.5)}),
            Value::Double(2.5));
  EXPECT_EQ(CallScalar("DMIN", {Value::Double(1.5), Value::Double(2.5)}),
            Value::Double(1.5));
}

TEST(ScalarFunctionTest, HashFunctionDeterministicAndSeeded) {
  Value h1 = CallScalar("H", {Value::UInt(42)});
  Value h2 = CallScalar("H", {Value::UInt(42)});
  Value h3 = CallScalar("H", {Value::UInt(42), Value::UInt(7)});
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(ScalarFunctionTest, AbsFloatUintIpstr) {
  EXPECT_EQ(CallScalar("ABS", {Value::Int(-4)}), Value::Int(4));
  EXPECT_EQ(CallScalar("ABS", {Value::Double(-4.5)}), Value::Double(4.5));
  EXPECT_EQ(CallScalar("FLOAT", {Value::UInt(2)}), Value::Double(2.0));
  EXPECT_EQ(CallScalar("UINT", {Value::Double(2.9)}), Value::UInt(2));
  EXPECT_EQ(CallScalar("IPSTR", {Value::UInt(0x0a000001)}),
            Value::String("10.0.0.1"));
}

TEST(ScalarFunctionTest, PrioDeterministicAndScaled) {
  // PRIO(w, key): deterministic per key, >= w, and changes with the seed.
  Value a = CallScalar("PRIO", {Value::UInt(100), Value::UInt(7)});
  Value b = CallScalar("PRIO", {Value::UInt(100), Value::UInt(7)});
  Value c = CallScalar("PRIO", {Value::UInt(100), Value::UInt(8)});
  Value d = CallScalar("PRIO",
                       {Value::UInt(100), Value::UInt(7), Value::UInt(99)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_GE(a.AsDouble(), 100.0);  // q = w/u with u in (0,1]
}

TEST(ScalarFunctionTest, UnknownReturnsNull) {
  EXPECT_EQ(ScalarFunctionRegistry::Global().Find("no_such_fn"), nullptr);
}

TEST(ScalarFunctionTest, DuplicateRegistrationRejected) {
  ScalarFunctionDef def;
  def.name = "UMAX";
  def.min_args = def.max_args = 2;
  def.fn = [](const Value*, size_t) -> Result<Value> {
    return Value::Null();
  };
  Status s = ScalarFunctionRegistry::Global().Register(def);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

// ---------- aggregates ----------

TEST(AggregateTest, LookupKinds) {
  AggregateKind k;
  EXPECT_TRUE(LookupAggregateKind("SUM", &k));
  EXPECT_EQ(k, AggregateKind::kSum);
  EXPECT_TRUE(LookupAggregateKind("count", &k));
  EXPECT_TRUE(LookupAggregateKind("first", &k));
  EXPECT_TRUE(LookupAggregateKind("median", &k));
  EXPECT_EQ(k, AggregateKind::kQuantile);
  EXPECT_TRUE(LookupAggregateKind("quantile", &k));
  EXPECT_FALSE(LookupAggregateKind("mode", &k));
}

TEST(AggregateTest, SumStaysUnsignedForUIntInputs) {
  AggregateAccumulator acc(AggregateKind::kSum);
  acc.Update(Value::UInt(10));
  acc.Update(Value::UInt(32));
  Value v = acc.Final();
  EXPECT_EQ(v, Value::UInt(42));
}

TEST(AggregateTest, SumPromotesToDoubleOnMixedInput) {
  AggregateAccumulator acc(AggregateKind::kSum);
  acc.Update(Value::UInt(1));
  acc.Update(Value::Double(0.5));
  Value v = acc.Final();
  EXPECT_EQ(v.type(), FieldType::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 1.5);
}

TEST(AggregateTest, CountStarIgnoresPayload) {
  AggregateAccumulator acc(AggregateKind::kCount);
  acc.Update(Value::Null());
  acc.Update(Value::UInt(9));
  EXPECT_EQ(acc.Final(), Value::UInt(2));
}

TEST(AggregateTest, MinMaxFirstLast) {
  AggregateAccumulator mn(AggregateKind::kMin), mx(AggregateKind::kMax);
  AggregateAccumulator fi(AggregateKind::kFirst), la(AggregateKind::kLast);
  for (uint64_t v : {5u, 2u, 9u, 4u}) {
    mn.Update(Value::UInt(v));
    mx.Update(Value::UInt(v));
    fi.Update(Value::UInt(v));
    la.Update(Value::UInt(v));
  }
  EXPECT_EQ(mn.Final(), Value::UInt(2));
  EXPECT_EQ(mx.Final(), Value::UInt(9));
  EXPECT_EQ(fi.Final(), Value::UInt(5));
  EXPECT_EQ(la.Final(), Value::UInt(4));
}

TEST(AggregateTest, AvgIsDouble) {
  AggregateAccumulator acc(AggregateKind::kAvg);
  acc.Update(Value::UInt(1));
  acc.Update(Value::UInt(2));
  Value v = acc.Final();
  EXPECT_DOUBLE_EQ(v.double_value(), 1.5);
}

TEST(AggregateTest, EmptyFinals) {
  EXPECT_EQ(AggregateAccumulator(AggregateKind::kSum).Final(), Value::UInt(0));
  EXPECT_EQ(AggregateAccumulator(AggregateKind::kCount).Final(),
            Value::UInt(0));
  EXPECT_TRUE(AggregateAccumulator(AggregateKind::kMin).Final().is_null());
  EXPECT_DOUBLE_EQ(
      AggregateAccumulator(AggregateKind::kAvg).Final().double_value(), 0.0);
}

TEST(AggregateTest, SubtractSupportedForSumCount) {
  AggregateAccumulator sum(AggregateKind::kSum);
  sum.Update(Value::UInt(10));
  sum.Update(Value::UInt(20));
  EXPECT_TRUE(sum.Subtract(Value::UInt(10)).ok());
  EXPECT_EQ(sum.Final(), Value::UInt(20));

  AggregateAccumulator mn(AggregateKind::kMin);
  mn.Update(Value::UInt(1));
  EXPECT_EQ(mn.Subtract(Value::UInt(1)).code(), StatusCode::kUnimplemented);
}

TEST(AggregateTest, MergeCombines) {
  AggregateAccumulator a(AggregateKind::kSum), b(AggregateKind::kSum);
  a.Update(Value::UInt(1));
  b.Update(Value::UInt(2));
  a.Merge(b);
  EXPECT_EQ(a.Final(), Value::UInt(3));

  AggregateAccumulator m1(AggregateKind::kMax), m2(AggregateKind::kMax);
  m1.Update(Value::UInt(5));
  m2.Update(Value::UInt(9));
  m1.Merge(m2);
  EXPECT_EQ(m1.Final(), Value::UInt(9));
}

// ---------- stateful registry ----------

TEST(SfunRegistryTest, BuiltinPackagesPresent) {
  EnsureBuiltinSfunPackagesRegistered();
  SfunRegistry& reg = SfunRegistry::Global();
  EXPECT_NE(reg.FindFunction("ssample"), nullptr);
  EXPECT_NE(reg.FindFunction("SSTHRESHOLD"), nullptr);  // case-insensitive
  EXPECT_NE(reg.FindFunction("rsample"), nullptr);
  EXPECT_NE(reg.FindFunction("local_count"), nullptr);
  EXPECT_NE(reg.FindState("subsetsum_sampling_state"), nullptr);
  EXPECT_EQ(reg.FindFunction("no_such_sfun"), nullptr);
}

TEST(SfunRegistryTest, FunctionsShareDeclaredState) {
  EnsureBuiltinSfunPackagesRegistered();
  SfunRegistry& reg = SfunRegistry::Global();
  const SfunDef* a = reg.FindFunction("ssample");
  const SfunDef* b = reg.FindFunction("ssdo_clean");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->state, b->state);  // one shared state per package
}

TEST(SfunRegistryTest, RejectsFunctionWithoutState) {
  SfunDef def;
  def.name = "orphan_fn";
  def.state = nullptr;
  Status s = SfunRegistry::Global().RegisterFunction(def);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace streamop
