// Unit tests for src/tuple: Value semantics, Schema resolution, Tuple and
// GroupKey hashing/equality.

#include <gtest/gtest.h>

#include <cmath>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace streamop {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), FieldType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), FieldType::kBool);
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::UInt(7).uint_value(), 7u);
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("x").string_value(), "x");
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_DOUBLE_EQ(Value::UInt(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Int(-3).AsDouble(), -3.0);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Value::Null().AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::String("9").AsDouble(), 0.0);
}

TEST(ValueTest, AsUIntClampsNegatives) {
  EXPECT_EQ(Value::Int(-5).AsUInt(), 0u);
  EXPECT_EQ(Value::Double(-0.5).AsUInt(), 0u);
  EXPECT_EQ(Value::Double(7.9).AsUInt(), 7u);
  EXPECT_EQ(Value::UInt(5).AsUInt(), 5u);
}

TEST(ValueTest, AsBoolTruthiness) {
  EXPECT_FALSE(Value::Null().AsBool());
  EXPECT_FALSE(Value::UInt(0).AsBool());
  EXPECT_TRUE(Value::UInt(1).AsBool());
  EXPECT_FALSE(Value::Double(0.0).AsBool());
  EXPECT_TRUE(Value::Double(0.1).AsBool());
  EXPECT_FALSE(Value::String("").AsBool());
  EXPECT_TRUE(Value::String("x").AsBool());
}

TEST(ValueTest, DoubleToIntegerClampsInsteadOfUB) {
  // Regression: UMAX(x, 1e154) once wrapped to 0 via an out-of-range cast.
  EXPECT_EQ(Value::Double(1e154).AsUInt(), UINT64_MAX);
  EXPECT_EQ(Value::Double(-1e154).AsUInt(), 0u);
  EXPECT_EQ(Value::Double(1e300).AsInt(), INT64_MAX);
  EXPECT_EQ(Value::Double(-1e300).AsInt(), INT64_MIN);
  double nan = std::nan("");
  EXPECT_EQ(Value::Double(nan).AsUInt(), 0u);
  EXPECT_EQ(Value::Double(nan).AsInt(), 0);
}

TEST(ValueTest, EqualityIsTypeStrict) {
  EXPECT_EQ(Value::UInt(1), Value::UInt(1));
  EXPECT_NE(Value::UInt(1), Value::Int(1));  // different types
  EXPECT_NE(Value::UInt(1), Value::UInt(2));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::String("a"), Value::String("a"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::UInt(42).Hash(), Value::UInt(42).Hash());
  EXPECT_NE(Value::UInt(42).Hash(), Value::Int(42).Hash());
  EXPECT_NE(Value::UInt(42).Hash(), Value::UInt(43).Hash());
  EXPECT_EQ(Value::String("k").Hash(), Value::String("k").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::UInt(12).ToString(), "12");
  EXPECT_EQ(Value::Int(-12).ToString(), "-12");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueTest, FieldTypeNames) {
  EXPECT_STREQ(FieldTypeToString(FieldType::kUInt), "UINT");
  EXPECT_STREQ(FieldTypeToString(FieldType::kString), "STRING");
  EXPECT_TRUE(IsNumeric(FieldType::kDouble));
  EXPECT_FALSE(IsNumeric(FieldType::kString));
  EXPECT_FALSE(IsNumeric(FieldType::kBool));
}

// ---------- Schema ----------

TEST(SchemaTest, FieldLookupCaseInsensitive) {
  SchemaPtr s = MakePacketSchema();
  EXPECT_EQ(s->FieldIndex("srcip"), 2);
  EXPECT_EQ(s->FieldIndex("SRCIP"), 2);
  EXPECT_EQ(s->FieldIndex("len"), 7);
  EXPECT_EQ(s->FieldIndex("nope"), -1);
}

TEST(SchemaTest, ResolveFieldErrors) {
  SchemaPtr s = MakePacketSchema();
  EXPECT_TRUE(s->ResolveField("destIP").ok());
  Result<int> r = s->ResolveField("bogus");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAnalysisError);
}

TEST(SchemaTest, PacketSchemaOrdering) {
  SchemaPtr s = MakePacketSchema();
  EXPECT_TRUE(s->HasOrderedField());
  auto ordered = s->OrderedFieldIndexes();
  // Only `time` is ordered; ts_ns has its timestamp-ness cast away (§6.1).
  ASSERT_EQ(ordered.size(), 1u);
  EXPECT_EQ(ordered[0], 0);
  EXPECT_EQ(s->field(1).ordering, Ordering::kNone);
}

TEST(SchemaTest, ToStringMentionsOrdering) {
  SchemaPtr s = MakePacketSchema();
  std::string str = s->ToString();
  EXPECT_NE(str.find("PKT("), std::string::npos);
  EXPECT_NE(str.find("time:UINT increasing"), std::string::npos);
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.num_fields(), 0u);
  EXPECT_FALSE(s.HasOrderedField());
  EXPECT_EQ(s.FieldIndex("x"), -1);
}

// ---------- Tuple / GroupKey ----------

TEST(TupleTest, BasicAccess) {
  Tuple t({Value::UInt(1), Value::String("a")});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].uint_value(), 1u);
  t.Append(Value::Double(3.5));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.ToString(), "(1, a, 3.5)");
}

TEST(TupleTest, Equality) {
  Tuple a({Value::UInt(1)});
  Tuple b({Value::UInt(1)});
  Tuple c({Value::UInt(2)});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(GroupKeyTest, HashAndEquality) {
  GroupKey a({Value::UInt(1), Value::UInt(2)});
  GroupKey b({Value::UInt(1), Value::UInt(2)});
  GroupKey c({Value::UInt(2), Value::UInt(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.Hash(), c.Hash());  // order matters
}

TEST(GroupKeyTest, EmptyKeyIsValid) {
  GroupKey empty1, empty2;
  EXPECT_EQ(empty1, empty2);
  EXPECT_EQ(empty1.Hash(), empty2.Hash());
}

TEST(GroupKeyTest, UsableInUnorderedMap) {
  std::unordered_map<GroupKey, int, GroupKeyHash> m;
  m[GroupKey({Value::UInt(1)})] = 10;
  m[GroupKey({Value::UInt(2)})] = 20;
  m[GroupKey({Value::UInt(1)})] = 11;  // overwrite
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m[GroupKey({Value::UInt(1)})], 11);
}

}  // namespace
}  // namespace streamop
