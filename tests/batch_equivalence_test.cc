// Differential testing of the batched hot path (DESIGN.md §9): for the
// same query and the same input stream, ProcessBatch/PushBatch must be
// equivalent tuple-for-tuple to Process/Push — identical output rows,
// identical per-window statistics, identical group tables — across window
// boundaries mid-batch, late tuples, stateful (ssample) admission, load
// shedding weights and cleaning phases. The bytecode interpreter routes
// operator application through the same evaluator kernels as the tree
// walk, so equality here is exact, not approximate.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sampling_operator.h"
#include "engine/query_node.h"
#include "net/trace_generator.h"
#include "query/query.h"
#include "stream/stream_source.h"
#include "tuple/tuple_batch.h"

namespace streamop {
namespace {

Tuple PacketTuple(uint64_t time, uint64_t src, uint64_t dst, uint64_t len) {
  return Tuple({Value::UInt(time), Value::UInt(time * 1000),
                Value::UInt(src), Value::UInt(dst), Value::UInt(1234),
                Value::UInt(80), Value::UInt(6), Value::UInt(len)});
}

// A stream that crosses several window boundaries and carries late
// (non-monotonic) tuples, over a small key grid so groups repeat.
std::vector<Tuple> WindowedStream() {
  std::vector<Tuple> tuples;
  uint64_t time = 100;
  for (int w = 0; w < 5; ++w) {
    for (int i = 0; i < 300; ++i) {
      uint64_t src = 0x0a000000ULL + (i % 7);
      uint64_t dst = 0xc0a80000ULL + (i % 3);
      uint64_t len = 40 + (i * 97) % 1460;
      tuples.push_back(PacketTuple(time, src, dst, len));
      if (i % 10 == 9) ++time;  // advance inside the window
    }
    time += 20;  // force a window boundary (time/20 buckets)
    // A late straggler right after each boundary: clamped, counted.
    tuples.push_back(PacketTuple(time - 25, 0x0a000001ULL, 0xc0a80001ULL, 99));
  }
  return tuples;
}

void ExpectSameWindowStats(const std::vector<WindowStats>& row,
                           const std::vector<WindowStats>& batch) {
  ASSERT_EQ(row.size(), batch.size());
  for (size_t i = 0; i < row.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(row[i].window_id, batch[i].window_id);
    EXPECT_EQ(row[i].tuples_in, batch[i].tuples_in);
    EXPECT_EQ(row[i].tuples_admitted, batch[i].tuples_admitted);
    EXPECT_EQ(row[i].groups_created, batch[i].groups_created);
    EXPECT_EQ(row[i].groups_removed, batch[i].groups_removed);
    EXPECT_EQ(row[i].peak_groups, batch[i].peak_groups);
    EXPECT_EQ(row[i].cleaning_phases, batch[i].cleaning_phases);
    EXPECT_EQ(row[i].groups_output, batch[i].groups_output);
    EXPECT_EQ(row[i].tuples_output, batch[i].tuples_output);
    EXPECT_EQ(row[i].late_tuples, batch[i].late_tuples);
  }
}

// Drives the same compiled query twice over the same tuples — once
// tuple-at-a-time, once in batches of `batch_size` — and asserts every
// observable is identical.
void ExpectBatchEquivalent(const std::string& sql,
                           const std::vector<Tuple>& tuples,
                           size_t batch_size, double weight = 1.0) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> row_cq = CompileQuery(sql, catalog, {.seed = 3});
  Result<CompiledQuery> batch_cq = CompileQuery(sql, catalog, {.seed = 3});
  ASSERT_TRUE(row_cq.ok()) << row_cq.status().ToString();
  ASSERT_EQ(row_cq->kind, CompiledQueryKind::kSampling);

  SamplingOperator row_op(row_cq->sampling);
  SamplingOperator batch_op(batch_cq->sampling);

  for (const Tuple& t : tuples) {
    ASSERT_TRUE(row_op.Process(t, weight).ok());
  }
  const size_t width = tuples.empty() ? 0 : tuples.front().size();
  TupleBatch batch(width, batch_size);
  for (size_t i = 0; i < tuples.size();) {
    batch.Clear();
    while (i < tuples.size() && !batch.full()) batch.AppendTuple(tuples[i++]);
    ASSERT_TRUE(batch_op.ProcessBatch(batch, weight).ok());
  }

  ASSERT_TRUE(row_op.FinishStream().ok());
  ASSERT_TRUE(batch_op.FinishStream().ok());

  EXPECT_EQ(row_op.DrainOutput(), batch_op.DrainOutput());
  EXPECT_EQ(row_op.num_groups(), batch_op.num_groups());
  EXPECT_EQ(row_op.num_supergroups(), batch_op.num_supergroups());
  EXPECT_EQ(row_op.late_tuples(), batch_op.late_tuples());
  ExpectSameWindowStats(row_op.window_stats(), batch_op.window_stats());
}

TEST(BatchEquivalenceTest, GroupedAggregationAcrossWindowsAndLateTuples) {
  ExpectBatchEquivalent(
      "SELECT tb, srcIP, destIP, sum(len), count(*), max(len) FROM PKTS "
      "GROUP BY time/20 as tb, srcIP, destIP",
      WindowedStream(), 256);
}

TEST(BatchEquivalenceTest, OddBatchSizesHitBoundariesMidBatch) {
  // 37 never divides the window length, so boundaries and late tuples land
  // at arbitrary lane positions inside batches.
  ExpectBatchEquivalent(
      "SELECT tb, srcIP, sum(len), count(*) FROM PKTS "
      "GROUP BY time/20 as tb, srcIP",
      WindowedStream(), 37);
}

TEST(BatchEquivalenceTest, SubsetSumSamplingWithCleaningPhases) {
  // The paper's stateful shape: ssample admission (per-supergroup RNG
  // state → compiled row mode in lane order), superaggregate maintenance,
  // cleaning phases actually firing (small target). The RNG consumption
  // order is part of the contract — any divergence shows up as different
  // admitted sets.
  ExpectBatchEquivalent(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 100, 2, 100, 10.0) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                        WindowedStream(), 256);
}

TEST(BatchEquivalenceTest, HorvitzThompsonWeightsFlowThroughBatches) {
  ExpectBatchEquivalent(
      "SELECT tb, srcIP, sum(len), count(*), sum$(len) FROM PKTS "
      "GROUP BY time/20 as tb, srcIP SUPERGROUP BY tb",
      WindowedStream(), 256, /*weight=*/2.5);
}

// ---------------------------------------------------------------------------
// Query-level differential fuzzing: the valid seed queries from
// query_fuzz_test driven over a generated packet trace through both engine
// entry points — Push (tree-walk-compatible row path) and PushBatch (the
// columnar path with bytecode programs). Outputs must be identical.
// ---------------------------------------------------------------------------

const std::vector<std::string>& FuzzSeedQueries() {
  // The query_fuzz seeds, compilable form: the second seed's CLEANING WHEN
  // uses an aggregate (legal only as a mutation starting point), so the
  // trigger here is the sfun the analyzer accepts in that clause.
  static const std::vector<std::string>* seeds = new std::vector<std::string>{
      "SELECT time, srcIP, destIP, len FROM PKT WHERE len > 100",
      "SELECT tb, srcIP, count(*), sum$(len), count$(*) FROM PKT "
      "GROUP BY time/60 as tb, srcIP "
      "CLEANING WHEN local_count(100) = TRUE CLEANING BY count(*) >= 2",
      "SELECT tb, quantile(len, 0.5), median(len) FROM PKT "
      "GROUP BY time/20 as tb HAVING count(*) > 1",
      "SELECT tb, sum(len) FROM PKT WHERE proto = 6 AND NOT (srcPort = 80 "
      "OR destPort = 80) GROUP BY time/20 as tb SUPERGROUP BY tb",
  };
  return *seeds;
}

TEST(BatchEquivalenceTest, QueryFuzzSeedsIdenticalThroughBothEnginePaths) {
  const Trace trace = TraceGenerator::MakeDataCenterFeed(2.0, 7);
  Catalog catalog = Catalog::Default();
  for (const std::string& sql : FuzzSeedQueries()) {
    SCOPED_TRACE(sql);
    Result<CompiledQuery> row_cq = CompileQuery(sql, catalog, {.seed = 11});
    Result<CompiledQuery> batch_cq = CompileQuery(sql, catalog, {.seed = 11});
    ASSERT_TRUE(row_cq.ok()) << row_cq.status().ToString();

    QueryNode row_node("equiv_row", *row_cq);
    QueryNode batch_node("equiv_batch", *batch_cq);

    for (const PacketRecord& p : trace.packets()) {
      ASSERT_TRUE(row_node.Push(PacketToTuple(p)).ok());
    }
    TupleBatch batch(8, 512);
    size_t i = 0;
    const std::vector<PacketRecord>& pkts = trace.packets();
    while (i < pkts.size()) {
      batch.Clear();
      while (i < pkts.size() && !batch.full()) batch.AppendPacket(pkts[i++]);
      ASSERT_TRUE(batch_node.PushBatch(batch).ok());
    }

    ASSERT_TRUE(row_node.Finish().ok());
    ASSERT_TRUE(batch_node.Finish().ok());

    EXPECT_EQ(row_node.tuples_in(), batch_node.tuples_in());
    EXPECT_EQ(row_node.tuples_out(), batch_node.tuples_out());
    EXPECT_EQ(row_node.late_tuples(), batch_node.late_tuples());
    EXPECT_EQ(row_node.DrainOutput(), batch_node.DrainOutput());
  }
}

// Selection nodes chained columnar (low feeds high through an `out` batch,
// the runtime topology) must equal the row path end to end.
TEST(BatchEquivalenceTest, ChainedSelectionIntoSamplingMatchesRowPath) {
  const Trace trace = TraceGenerator::MakeDataCenterFeed(2.0, 7);
  Catalog catalog = Catalog::Default();
  const std::string low_sql =
      "SELECT time, srcIP, destIP, len FROM PKT WHERE len > 200";
  const std::string high_sql =
      "SELECT tb, srcIP, sum(len), count(*) FROM PKT_FILT "
      "GROUP BY time/20 as tb, srcIP";
  Catalog high_catalog = catalog;
  // The high query reads the low node's output schema; `time` keeps its
  // ordering so time/20 still defines windows downstream.
  ASSERT_TRUE(high_catalog
                  .RegisterStream(std::make_shared<Schema>(
                      "PKT_FILT",
                      std::vector<Field>{
                          {"time", FieldType::kUInt, Ordering::kIncreasing},
                          {"srcIP", FieldType::kUInt, Ordering::kNone},
                          {"destIP", FieldType::kUInt, Ordering::kNone},
                          {"len", FieldType::kUInt, Ordering::kNone}}))
                  .ok());

  Result<CompiledQuery> low_row = CompileQuery(low_sql, catalog, {.seed = 5});
  Result<CompiledQuery> low_bat = CompileQuery(low_sql, catalog, {.seed = 5});
  Result<CompiledQuery> high_row =
      CompileQuery(high_sql, high_catalog, {.seed = 5});
  Result<CompiledQuery> high_bat =
      CompileQuery(high_sql, high_catalog, {.seed = 5});
  ASSERT_TRUE(low_row.ok()) << low_row.status().ToString();
  ASSERT_TRUE(high_row.ok()) << high_row.status().ToString();

  QueryNode low_row_node("chain_low_row", *low_row);
  QueryNode high_row_node("chain_high_row", *high_row);
  QueryNode low_bat_node("chain_low_bat", *low_bat);
  QueryNode high_bat_node("chain_high_bat", *high_bat);

  for (const PacketRecord& p : trace.packets()) {
    ASSERT_TRUE(low_row_node.Push(PacketToTuple(p)).ok());
    for (const Tuple& t : low_row_node.DrainOutput()) {
      ASSERT_TRUE(high_row_node.Push(t).ok());
    }
  }
  TupleBatch batch(8, 512);
  TupleBatch low_out;
  size_t i = 0;
  const std::vector<PacketRecord>& pkts = trace.packets();
  while (i < pkts.size()) {
    batch.Clear();
    while (i < pkts.size() && !batch.full()) batch.AppendPacket(pkts[i++]);
    ASSERT_TRUE(low_bat_node.PushBatch(batch, 1.0, &low_out).ok());
    ASSERT_TRUE(high_bat_node.PushBatch(low_out).ok());
  }

  ASSERT_TRUE(high_row_node.Finish().ok());
  ASSERT_TRUE(high_bat_node.Finish().ok());

  EXPECT_EQ(low_row_node.tuples_out(), low_bat_node.tuples_out());
  EXPECT_EQ(high_row_node.tuples_in(), high_bat_node.tuples_in());
  EXPECT_EQ(high_row_node.DrainOutput(), high_bat_node.DrainOutput());
}

}  // namespace
}  // namespace streamop
