// Tests for the embedded introspection server (src/obs/http_server.h):
// request routing, every endpoint over a real loopback socket, malformed
// requests, the connection limit, shutdown while clients are connected, and
// the runtime integration (TwoLevelRuntime with http_port set).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "obs/alerts.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/timeseries.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/trace_ring.h"
#include "query/query.h"

namespace streamop {
namespace {

using obs::HttpGet;
using obs::HttpServer;
using obs::HttpServerOptions;

// Starts a server on an ephemeral loopback port backed by private
// registry/rings so tests never race the process-wide defaults.
struct ServerFixture {
  obs::MetricRegistry registry;
  obs::TraceRing trace_ring{64};
  obs::QualityRing quality_ring{64};
  obs::SpanRing span_ring{64};
  obs::Profiler profiler;
  obs::ExemplarStore exemplars;
  std::unique_ptr<HttpServer> server;

  explicit ServerFixture(HttpServerOptions opts = HttpServerOptions()) {
    opts.port = 0;
    opts.registry = &registry;
    opts.trace_ring = &trace_ring;
    opts.quality_ring = &quality_ring;
    opts.span_ring = &span_ring;
    opts.profiler = &profiler;
    opts.exemplars = &exemplars;
    server = std::make_unique<HttpServer>(opts);
    Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
};

std::string StatusLine(const std::string& response) {
  size_t eol = response.find("\r\n");
  return eol == std::string::npos ? response : response.substr(0, eol);
}

std::string Body(const std::string& response) {
  size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

std::string Headers(const std::string& response) {
  size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? response : response.substr(0, sep + 2);
}

TEST(HttpServerTest, StartsOnEphemeralPortAndStops) {
  ServerFixture f;
  EXPECT_TRUE(f.server->running());
  EXPECT_GT(f.server->port(), 0);
  f.server->Stop();
  EXPECT_FALSE(f.server->running());
  // Stop is idempotent.
  f.server->Stop();
}

TEST(HttpServerTest, ServesEveryEndpointOverLoopback) {
  ServerFixture f;
  f.registry.GetCounter("streamop_test_total")->Add(5);
  f.trace_ring.set_enabled(true);
  f.trace_ring.Record("window_flush", 100, 10);
  obs::WindowQualityReport rep;
  rep.node = "t";
  f.quality_ring.Push(std::move(rep));

  struct Case {
    const char* path;
    const char* expect;  // substring of the body
  };
  f.span_ring.set_enabled(true);
  obs::SpanRecord span;
  span.name = "window";
  span.window_seq = 7;
  span.ts_ns = 100;
  span.dur_ns = 50;
  f.span_ring.Emit(span);
  const std::vector<Case> cases = {
      {"/healthz", "ok"},
      {"/metrics", "streamop_test_total 5"},
      {"/metrics.json", "\"streamop_test_total\": 5"},
      {"/traces", "window_flush"},
      {"/windows", "\"node\": \"t\""},
      {"/spans", "\"window_seq\": 7"},
      {"/spans?format=chrome", "traceEvents"},
      {"/spans/window/7", "\"name\": \"window\""},
      {"/profile?format=phases", "phase_cycles"},
      {"/exemplars", "latency_bands"},
  };
  for (const Case& c : cases) {
    Result<std::string> resp = HttpGet(f.server->port(), c.path);
    ASSERT_TRUE(resp.ok()) << c.path << ": " << resp.status().ToString();
    EXPECT_NE(StatusLine(*resp).find("200"), std::string::npos)
        << c.path << "\n" << *resp;
    EXPECT_NE(Body(*resp).find(c.expect), std::string::npos)
        << c.path << "\n" << *resp;
  }
  EXPECT_GE(f.server->requests_served(), cases.size());
}

TEST(HttpServerTest, UnknownPathIs404AndQueryStringsAreStripped) {
  ServerFixture f;
  Result<std::string> resp = HttpGet(f.server->port(), "/nope");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_NE(StatusLine(*resp).find("404"), std::string::npos) << *resp;
  // The 404 body is machine-parseable JSON listing the valid endpoints.
  EXPECT_NE(Headers(*resp).find("Content-Type: application/json"),
            std::string::npos)
      << *resp;
  EXPECT_NE(Body(*resp).find("\"code\": 404"), std::string::npos) << *resp;
  EXPECT_NE(Body(*resp).find("\"endpoints\""), std::string::npos) << *resp;
  EXPECT_NE(Body(*resp).find("/spans"), std::string::npos) << *resp;

  resp = HttpGet(f.server->port(), "/healthz?verbose=1");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_NE(StatusLine(*resp).find("200"), std::string::npos) << *resp;
}

TEST(HttpServerTest, ErrorResponsesCarryJsonBodies) {
  ServerFixture f;
  // 405 and 400 via the pure router.
  std::string r405 = f.server->HandleRequest("POST /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(r405.find("\"code\": 405"), std::string::npos) << r405;
  EXPECT_NE(r405.find("application/json"), std::string::npos) << r405;
  std::string r400 = f.server->HandleRequest("garbage");
  EXPECT_NE(r400.find("\"code\": 400"), std::string::npos) << r400;
  EXPECT_NE(r400.find("application/json"), std::string::npos) << r400;
}

TEST(HttpServerTest, EveryEndpointDeclaresItsContentType) {
  ServerFixture f;
  struct Case {
    const char* path;
    const char* content_type;
  };
  const std::vector<Case> cases = {
      {"/metrics", "Content-Type: text/plain; version=0.0.4"},
      {"/metrics.json", "Content-Type: application/json"},
      {"/traces", "Content-Type: application/json"},
      {"/spans", "Content-Type: application/json"},
      {"/spans/window/1", "Content-Type: application/json"},
      {"/profile", "Content-Type: text/plain; charset=utf-8"},
      {"/profile?format=phases", "Content-Type: application/json"},
      {"/exemplars", "Content-Type: application/json"},
      {"/windows", "Content-Type: application/json"},
      {"/healthz", "Content-Type: application/json"},
      {"/timeseries", "Content-Type: application/json"},
      {"/alerts", "Content-Type: application/json"},
      {"/forensics", "Content-Type: application/json"},
      {"/dashboard", "Content-Type: text/html; charset=utf-8"},
  };
  for (const Case& c : cases) {
    std::string req = std::string("GET ") + c.path + " HTTP/1.1\r\n\r\n";
    std::string resp = f.server->HandleRequest(req);
    EXPECT_NE(resp.find("200"), std::string::npos) << c.path << "\n" << resp;
    EXPECT_NE(resp.find(c.content_type), std::string::npos)
        << c.path << "\n" << resp;
  }
}

TEST(HttpServerTest, SpanAndProfileParametersAreValidated) {
  ServerFixture f;
  // Non-numeric path parameter / query parameter -> 400 with a JSON body.
  std::string bad_seq =
      f.server->HandleRequest("GET /spans/window/abc HTTP/1.1\r\n\r\n");
  EXPECT_NE(bad_seq.find("400"), std::string::npos) << bad_seq;
  EXPECT_NE(bad_seq.find("\"code\": 400"), std::string::npos) << bad_seq;
  std::string bad_seconds =
      f.server->HandleRequest("GET /profile?seconds=abc HTTP/1.1\r\n\r\n");
  EXPECT_NE(bad_seconds.find("400"), std::string::npos) << bad_seconds;
  // Valid parameters parse: an unknown window serves an empty span list.
  std::string empty =
      f.server->HandleRequest("GET /spans/window/999 HTTP/1.1\r\n\r\n");
  EXPECT_NE(empty.find("200"), std::string::npos) << empty;
  EXPECT_NE(empty.find("\"spans\": []"), std::string::npos) << empty;
  std::string ok_seconds =
      f.server->HandleRequest("GET /profile?seconds=5 HTTP/1.1\r\n\r\n");
  EXPECT_NE(ok_seconds.find("200"), std::string::npos) << ok_seconds;
}

TEST(HttpServerTest, RequestRouting) {
  // HandleRequest is the pure request-line parser; exercise it without
  // sockets.
  ServerFixture f;
  EXPECT_NE(f.server->HandleRequest("GET /healthz HTTP/1.1\r\n\r\n")
                .find("200"),
            std::string::npos);
  EXPECT_NE(f.server->HandleRequest("HEAD /healthz HTTP/1.1\r\n\r\n")
                .find("200"),
            std::string::npos);
  EXPECT_NE(f.server->HandleRequest("POST /healthz HTTP/1.1\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(f.server->HandleRequest("garbage").find("400"),
            std::string::npos);
  EXPECT_NE(f.server->HandleRequest("GET /healthz SPDY/9\r\n\r\n")
                .find("400"),
            std::string::npos);
}

TEST(HttpServerTest, HealthEndpointReflectsHealthyCallback) {
  HttpServerOptions opts;
  std::atomic<bool> healthy{true};
  opts.healthy = [&healthy] { return healthy.load(); };
  opts.health_json = [] { return std::string("{\"status\": \"custom\"}\n"); };
  ServerFixture f(opts);

  Result<std::string> resp = HttpGet(f.server->port(), "/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(StatusLine(*resp).find("200"), std::string::npos);
  EXPECT_NE(Body(*resp).find("custom"), std::string::npos);

  healthy.store(false);
  resp = HttpGet(f.server->port(), "/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(StatusLine(*resp).find("503"), std::string::npos) << *resp;
}

TEST(HttpServerTest, OversizeRequestRejectedWith400) {
  HttpServerOptions opts;
  opts.max_request_bytes = 64;
  ServerFixture f(opts);
  std::string long_path(256, 'a');
  Result<std::string> resp =
      HttpGet(f.server->port(), "/" + long_path);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_NE(StatusLine(*resp).find("400"), std::string::npos) << *resp;
}

// Opens a loopback TCP connection and holds it without sending anything —
// occupies one of the server's connection slots.
int ConnectAndHold(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(HttpServerTest, ConnectionLimitRejectsExcessClients) {
  HttpServerOptions opts;
  opts.max_connections = 2;
  ServerFixture f(opts);
  // Hold every slot open with idle connections, then a further client must
  // be turned away with a best-effort 503.
  int held0 = ConnectAndHold(f.server->port());
  int held1 = ConnectAndHold(f.server->port());
  ASSERT_GE(held0, 0);
  ASSERT_GE(held1, 0);
  // Poll until a rejection is observed: the held sockets are only counted
  // against the cap once the serving thread accepts them.
  bool saw_503 = false;
  std::string rejection;
  for (int attempt = 0; attempt < 50 && !saw_503; ++attempt) {
    Result<std::string> resp = HttpGet(f.server->port(), "/healthz", 1000);
    if (resp.ok() && StatusLine(*resp).find("503") != std::string::npos) {
      saw_503 = true;
      rejection = *resp;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(saw_503);
  // The rejection is machine-parseable and tells the scraper when to come
  // back: JSON error body plus a Retry-After header.
  EXPECT_NE(Headers(rejection).find("Retry-After: 1"), std::string::npos)
      << rejection;
  EXPECT_NE(Body(rejection).find("\"code\": 503"), std::string::npos)
      << rejection;
  EXPECT_GE(f.server->connections_rejected(), 1u);
  // Releasing the slots restores service.
  ::close(held0);
  ::close(held1);
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    Result<std::string> resp = HttpGet(f.server->port(), "/healthz", 1000);
    if (resp.ok() && StatusLine(*resp).find("200") != std::string::npos) {
      recovered = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
}

TEST(HttpServerTest, StopWhileClientsAreConnected) {
  ServerFixture f;
  std::atomic<bool> go{true};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      while (go.load()) {
        (void)HttpGet(f.server->port(), "/metrics", 500);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  f.server->Stop();  // must return promptly despite in-flight clients
  EXPECT_FALSE(f.server->running());
  go.store(false);
  for (std::thread& t : threads) t.join();
}

TEST(HttpServerTest, PortAlreadyInUseFailsCleanly) {
  ServerFixture f;
  HttpServerOptions opts;
  opts.port = f.server->port();
  HttpServer second(opts);
  Status s = second.Start();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(second.running());
}

// ---------- flight-recorder stack routes ----------

TEST(HttpServerTest, FlightRoutesServeDisabledStubsWithoutSources) {
  // A server with no timeseries/alerts/flight wired must keep the routes
  // present (scrapers should not 404) but say they are off.
  ServerFixture f;
  for (const char* path : {"/timeseries", "/alerts"}) {
    Result<std::string> resp = HttpGet(f.server->port(), path);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_NE(StatusLine(*resp).find("200"), std::string::npos) << *resp;
    EXPECT_NE(Body(*resp).find("\"enabled\": false"), std::string::npos)
        << path << "\n" << *resp;
  }
  Result<std::string> forensics = HttpGet(f.server->port(), "/forensics");
  ASSERT_TRUE(forensics.ok());
  EXPECT_NE(Body(*forensics).find("\"enabled\": false"), std::string::npos)
      << *forensics;
  EXPECT_NE(Body(*forensics).find("\"report\": null"), std::string::npos)
      << *forensics;
  // The dashboard is static HTML and always serves; it degrades
  // client-side when the JSON endpoints report disabled.
  Result<std::string> dash = HttpGet(f.server->port(), "/dashboard");
  ASSERT_TRUE(dash.ok());
  EXPECT_NE(StatusLine(*dash).find("200"), std::string::npos) << *dash;
  EXPECT_NE(Headers(*dash).find("Content-Type: text/html"),
            std::string::npos)
      << *dash;
  EXPECT_NE(Body(*dash).find("streamop dashboard"), std::string::npos);
}

TEST(HttpServerTest, TimeseriesAndAlertRoutesServeLiveData) {
  obs::TimeSeries ts({.capacity = 16, .max_series = 32, .max_points = 32,
                      .max_bucket_deltas = 64, .interval_ms = 100});
  obs::AlertEngine alerts;
  obs::AlertRule rule;
  rule.name = "test_gauge_high";
  rule.metric = "streamop_test_gauge";
  rule.threshold = 10.0;
  rule.severity = obs::AlertSeverity::kCritical;
  alerts.AddRule(rule);

  HttpServerOptions opts;
  opts.timeseries = &ts;
  opts.alerts = &alerts;
  ServerFixture f(opts);

  f.registry.GetCounter("streamop_test_total")->Add(7);
  f.registry.GetGauge("streamop_test_gauge")->Set(3.0);
  uint64_t t_ns = 1000000000ull;
  for (int i = 0; i < 3; ++i) {
    f.registry.GetCounter("streamop_test_total")->Add(5);
    ts.Scrape(f.registry, t_ns += 100000000ull);
    alerts.Evaluate(ts, t_ns);
  }

  Result<std::string> list = HttpGet(f.server->port(), "/timeseries");
  ASSERT_TRUE(list.ok());
  EXPECT_NE(Body(*list).find("\"streamop_test_total\""), std::string::npos)
      << *list;
  EXPECT_NE(Body(*list).find("\"interval_ms\": 100"), std::string::npos)
      << *list;

  Result<std::string> range = HttpGet(
      f.server->port(), "/timeseries?metric=streamop_test_total&range=60");
  ASSERT_TRUE(range.ok());
  EXPECT_NE(StatusLine(*range).find("200"), std::string::npos) << *range;
  EXPECT_NE(Body(*range).find("\"points\""), std::string::npos) << *range;

  Result<std::string> bad = HttpGet(
      f.server->port(), "/timeseries?metric=streamop_test_total&range=abc");
  ASSERT_TRUE(bad.ok());
  EXPECT_NE(StatusLine(*bad).find("400"), std::string::npos) << *bad;

  Result<std::string> al = HttpGet(f.server->port(), "/alerts");
  ASSERT_TRUE(al.ok());
  EXPECT_NE(Body(*al).find("\"test_gauge_high\""), std::string::npos) << *al;
  EXPECT_NE(Body(*al).find("\"inactive\""), std::string::npos) << *al;
}

TEST(HttpServerTest, CriticalAlertFlips503WithRetryAfter) {
  obs::TimeSeries ts({.capacity = 16, .max_series = 32, .max_points = 32,
                      .max_bucket_deltas = 64, .interval_ms = 100});
  obs::AlertEngine alerts;
  obs::AlertRule rule;
  rule.name = "test_gauge_high";
  rule.metric = "streamop_test_gauge";
  rule.threshold = 10.0;
  rule.severity = obs::AlertSeverity::kCritical;
  alerts.AddRule(rule);

  HttpServerOptions opts;
  opts.timeseries = &ts;
  opts.alerts = &alerts;
  // The runtime's healthy() consults critical_firing(); mirror that here.
  opts.healthy = [&alerts] { return !alerts.critical_firing(); };
  ServerFixture f(opts);

  Result<std::string> ok = HttpGet(f.server->port(), "/healthz");
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(StatusLine(*ok).find("200"), std::string::npos) << *ok;

  f.registry.GetGauge("streamop_test_gauge")->Set(42.0);
  ts.Scrape(f.registry, 1000000000ull);
  alerts.Evaluate(ts, 1000000000ull);
  ASSERT_TRUE(alerts.critical_firing());

  Result<std::string> sick = HttpGet(f.server->port(), "/healthz");
  ASSERT_TRUE(sick.ok());
  EXPECT_NE(StatusLine(*sick).find("503"), std::string::npos) << *sick;
  EXPECT_NE(Headers(*sick).find("Retry-After: 2"), std::string::npos)
      << *sick;
}

TEST(HttpServerTest, ForensicsRouteCarriesSegmentStatusAndLoadedReport) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "http_forensics_route";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::TimeSeries ts({.capacity = 16, .max_series = 32, .max_points = 32,
                      .max_bucket_deltas = 64, .interval_ms = 100});
  obs::AlertEngine alerts;
  obs::FlightRecorder flight({.dir = dir.string()});

  HttpServerOptions opts;
  opts.timeseries = &ts;
  opts.alerts = &alerts;
  opts.flight_recorder = &flight;
  ServerFixture f(opts);

  f.registry.GetCounter("streamop_test_total")->Add(9);
  ts.Scrape(f.registry, 1000000000ull);
  alerts.Evaluate(ts, 1000000000ull);
  ASSERT_TRUE(flight.Spill(ts, &alerts).ok());

  Result<std::string> resp = HttpGet(f.server->port(), "/forensics");
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(Body(*resp).find("\"enabled\": true"), std::string::npos)
      << *resp;
  EXPECT_NE(Body(*resp).find("\"spills\": 1"), std::string::npos) << *resp;
  EXPECT_NE(Body(*resp).find("flight.seg"), std::string::npos) << *resp;

  // A loaded pre-crash report is surfaced through the forensics_json hook
  // exactly as TwoLevelRuntime wires it.
  Result<obs::ForensicReport> loaded =
      obs::FlightRecorder::Load(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  HttpServerOptions opts2;
  opts2.flight_recorder = &flight;
  obs::ForensicReport report = *loaded;
  opts2.forensics_json = [&report] { return report.ToJson(); };
  ServerFixture f2(opts2);
  Result<std::string> resp2 = HttpGet(f2.server->port(), "/forensics");
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(Body(*resp2).find("\"report\": null"), std::string::npos)
      << *resp2;
  EXPECT_NE(Body(*resp2).find("\"scrapes\": 1"), std::string::npos) << *resp2;
  fs::remove_all(dir);
}

// ---------- runtime integration ----------

TEST(HttpServerRuntimeTest, TwoLevelRuntimeServesHealthAndMetrics) {
  obs::MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 3);
  auto low = CompileQuery(
      "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
      "FROM PKT",
      Catalog::Default());
  auto high = CompileQuery(
      "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb",
      Catalog::Default());
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  RuntimeOptions options;
  options.registry = &reg;
  options.http_port = 0;  // ephemeral
  TwoLevelRuntime rt(*low, {*high}, options);
  ASSERT_NE(rt.http_server(), nullptr) << rt.http_status().ToString();

  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  Result<std::string> health = HttpGet(rt.http_server()->port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(StatusLine(*health).find("200"), std::string::npos) << *health;
  EXPECT_NE(Body(*health).find("\"watchdog_fired\": false"),
            std::string::npos)
      << *health;

  Result<std::string> metrics = HttpGet(rt.http_server()->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(Body(*metrics).find("streamop_runtime_shed_fraction"),
            std::string::npos)
      << *metrics;
}

TEST(HttpServerRuntimeTest, DisabledByDefault) {
  auto low = CompileQuery(
      "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
      "FROM PKT",
      Catalog::Default());
  ASSERT_TRUE(low.ok());
  TwoLevelRuntime rt(*low, {});
  EXPECT_EQ(rt.http_server(), nullptr);
  EXPECT_TRUE(rt.http_status().ok());
}

}  // namespace
}  // namespace streamop
