// Network/pcap ingestion tests (DESIGN.md §11): the wire protocol, the
// pcap reader, the socket sources' reconnect/backoff and sequence
// accounting against an adversarial TraceSender, and — the central claims —
// crash recovery over resumable offsets: SIGKILL a consumer mid-stream and
// prove the restarted run seeks (pcap) or re-HELLOs (TCP) to the
// checkpointed offset and emits output byte-identical to the reference
// suffix, with any loss booked as gaps, never silent.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/runtime.h"
#include "net/pcap_format.h"
#include "net/trace_generator.h"
#include "net/trace_sender.h"
#include "net/wire.h"
#include "query/query.h"
#include "stream/fault_injection.h"
#include "stream/pcap_reader.h"
#include "stream/socket_source.h"

namespace streamop {
namespace {

namespace fs = std::filesystem;

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

constexpr char kAggQuery[] =
    "SELECT tb, srcIP, count(*), sum(len) FROM PKT GROUP BY time/5 as tb, "
    "srcIP";

bool SameRecord(const PacketRecord& a, const PacketRecord& b) {
  return a.ts_ns == b.ts_ns && a.src_ip == b.src_ip && a.dst_ip == b.dst_ip &&
         a.src_port == b.src_port && a.dst_port == b.dst_port &&
         a.len == b.len && a.proto == b.proto;
}

// True when `sub` appears in `full` in order (at-most-once, order
// preserved: what a lossy-but-honest UDP ingest must deliver).
bool IsSubsequence(const std::vector<PacketRecord>& sub,
                   const std::vector<PacketRecord>& full) {
  size_t j = 0;
  for (const PacketRecord& p : full) {
    if (j < sub.size() && SameRecord(sub[j], p)) ++j;
  }
  return j == sub.size();
}

// Reads until kEnd (or a deadline, so a wedged source fails the assertion
// instead of hanging the test binary).
std::vector<PacketRecord> DrainAll(ResumableSource& src,
                                   int deadline_sec = 30) {
  std::vector<PacketRecord> buf(256);
  std::vector<PacketRecord> all;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_sec);
  for (;;) {
    size_t n = 0;
    const auto r = src.Read(buf.data(), buf.size(), &n);
    all.insert(all.end(), buf.begin(), buf.begin() + n);
    if (r == ResumableSource::ReadResult::kEnd) break;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "source did not end within " << deadline_sec << "s";
      break;
    }
  }
  return all;
}

std::vector<std::string> RowsAsStrings(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      s += t[i].ToString();
      s += '\t';
    }
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireTest, RecordRoundTrip) {
  PacketRecord p{};
  p.ts_ns = 0x0123456789abcdefULL;
  p.src_ip = 0xc0a80001;
  p.dst_ip = 0x08080808;
  p.src_port = 443;
  p.dst_port = 51515;
  p.len = 1337;
  p.proto = kProtoTcp;
  uint8_t wire[kWireRecordSize];
  EncodeWireRecord(p, wire);
  PacketRecord q{};
  DecodeWireRecord(wire, &q);
  EXPECT_TRUE(SameRecord(p, q));
}

TEST(WireTest, FrameHeaderRejectsGarbage) {
  PacketRecord rec{};
  rec.len = 100;
  std::vector<uint8_t> frame(kFrameHeaderSize + kWireRecordSize);
  BuildFrame(FrameType::kData, 7, &rec, 1, frame.data());

  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), frame.size(), &h));
  EXPECT_EQ(h.type, FrameType::kData);
  EXPECT_EQ(h.seq, 7u);
  EXPECT_EQ(h.count, 1u);

  // Bad magic.
  std::vector<uint8_t> bad = frame;
  bad[0] ^= 0xff;
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size(), &h));
  // Unknown type.
  bad = frame;
  bad[4] = 99;
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size(), &h));
  // DATA count inconsistent with payload_len.
  bad = frame;
  bad[6] = 2;  // count = 2 but payload_len still covers one record
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size(), &h));
  // Control frames must be empty.
  uint8_t ctrl[kFrameHeaderSize];
  BuildFrame(FrameType::kHello, 3, nullptr, 0, ctrl);
  ASSERT_TRUE(DecodeFrameHeader(ctrl, sizeof(ctrl), &h));
  EXPECT_EQ(h.type, FrameType::kHello);
  ctrl[16] = 24;  // claim a payload on a control frame
  EXPECT_FALSE(DecodeFrameHeader(ctrl, sizeof(ctrl), &h));
  // Short buffer.
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), kFrameHeaderSize - 1, &h));
}

TEST(WireTest, PayloadCrcDetectsCorruption) {
  std::vector<PacketRecord> recs(3);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i].ts_ns = i;
    recs[i].len = static_cast<uint16_t>(100 + i);
  }
  std::vector<uint8_t> frame(kFrameHeaderSize +
                             recs.size() * kWireRecordSize);
  BuildFrame(FrameType::kData, 0, recs.data(), recs.size(), frame.data());
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), frame.size(), &h));
  EXPECT_TRUE(VerifyFramePayload(h, frame.data() + kFrameHeaderSize));
  frame[kFrameHeaderSize + 5] ^= 0x01;
  EXPECT_FALSE(VerifyFramePayload(h, frame.data() + kFrameHeaderSize));
}

// ---------------------------------------------------------------------------
// Pcap reader

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::path(::testing::TempDir()) /
             ("pcap_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()) +
              ".pcap"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  std::string path_;
};

TEST_F(PcapTest, NanosecondRawIpRoundTripsExactly) {
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 11);
  ASSERT_TRUE(WritePcap(trace, path_).ok());

  PcapReader reader(PcapReaderConfig{path_});
  ASSERT_TRUE(reader.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(reader);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[i])) << "record " << i;
  }
  EXPECT_TRUE(reader.last_status().ok());
  EXPECT_EQ(reader.stats().malformed_frames, 0u);
  EXPECT_EQ(reader.offset_lag(), 0u);
}

TEST_F(PcapTest, MicrosecondEthernetSwappedIsTolerated) {
  // A foreign-endian, microsecond, Ethernet-framed capture: everything a
  // real capture tool might hand us. Timestamps lose sub-microsecond
  // precision; every other field must survive exactly.
  Trace trace = TraceGenerator::MakeResearchFeed(1.0, 12);
  WritePcapOptions opt;
  opt.nanosecond = false;
  opt.ethernet = true;
  opt.swap_byte_order = true;
  ASSERT_TRUE(WritePcap(trace, path_, opt).ok());

  PcapReader reader(PcapReaderConfig{path_});
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_TRUE(reader.header().swapped);
  EXPECT_FALSE(reader.header().nanosecond);
  EXPECT_EQ(reader.header().linktype, kLinkTypeEthernet);
  const std::vector<PacketRecord> got = DrainAll(reader);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const PacketRecord& a = got[i];
    const PacketRecord& b = trace.packets()[i];
    EXPECT_EQ(a.ts_ns / 1000, b.ts_ns / 1000) << "record " << i;
    EXPECT_EQ(a.src_ip, b.src_ip);
    EXPECT_EQ(a.dst_ip, b.dst_ip);
    EXPECT_EQ(a.src_port, b.src_port);
    EXPECT_EQ(a.dst_port, b.dst_port);
    EXPECT_EQ(a.len, b.len);
    EXPECT_EQ(a.proto, b.proto);
  }
}

TEST_F(PcapTest, TruncatedMidRecordIsACleanEnd) {
  Trace trace = TraceGenerator::MakeResearchFeed(1.0, 13);
  ASSERT_GT(trace.size(), 50u);
  WritePcapOptions opt;
  opt.truncate_after_records = 50;
  opt.truncate_mid_record = 9;  // half a record header
  ASSERT_TRUE(WritePcap(trace, path_, opt).ok());

  PcapReader reader(PcapReaderConfig{path_});
  ASSERT_TRUE(reader.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(reader);
  EXPECT_EQ(got.size(), 50u);
  EXPECT_TRUE(reader.last_status().ok()) << "a torn tail is not an error";
}

TEST_F(PcapTest, SeekResumeReadsTheIdenticalTail) {
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 14);
  ASSERT_TRUE(WritePcap(trace, path_).ok());

  // First pass: consume a prefix and note the durable offset.
  PcapReader first(PcapReaderConfig{path_});
  ASSERT_TRUE(first.Open().ok());
  std::vector<PacketRecord> buf(100);
  size_t n = 0;
  ASSERT_EQ(first.Read(buf.data(), buf.size(), &n),
            ResumableSource::ReadResult::kRecords);
  ASSERT_EQ(n, 100u);
  const uint64_t offset = first.durable_offset();
  ASSERT_GT(offset, 0u);

  // Second pass: a fresh reader seeks to the offset (the restore path) and
  // must read byte-identical records from there on.
  PcapReader resumed(PcapReaderConfig{path_});
  ASSERT_TRUE(resumed.SeekTo(offset).ok());
  ASSERT_TRUE(resumed.Open().ok());
  EXPECT_EQ(resumed.stats().resume_offset, offset);
  const std::vector<PacketRecord> tail = DrainAll(resumed);
  ASSERT_EQ(tail.size(), trace.size() - 100);
  for (size_t i = 0; i < tail.size(); ++i) {
    ASSERT_TRUE(SameRecord(tail[i], trace.packets()[100 + i]))
        << "record " << i;
  }
}

TEST_F(PcapTest, SeekBeyondTheFileFailsOpen) {
  Trace trace = TraceGenerator::MakeResearchFeed(0.5, 15);
  ASSERT_TRUE(WritePcap(trace, path_).ok());
  PcapReader reader(PcapReaderConfig{path_});
  ASSERT_TRUE(reader.SeekTo(1ull << 40).ok());  // recorded, applied at Open
  EXPECT_FALSE(reader.Open().ok());
}

// ---------------------------------------------------------------------------
// Socket sources against a (possibly adversarial) TraceSender

struct SenderRun {
  TraceSender sender;
  std::thread thread;
  Status status = Status::OK();

  explicit SenderRun(TraceSenderConfig cfg) : sender(std::move(cfg)) {}
  ~SenderRun() {
    sender.RequestStop();
    if (thread.joinable()) thread.join();
  }
  void StartUdp(uint16_t port) {
    thread = std::thread(
        [this, port] { status = sender.RunUdp("127.0.0.1", port); });
  }
  void StartTcpBound() {
    thread = std::thread([this] { status = sender.ServeTcp(); });
  }
};

TraceSenderConfig SenderConfigFor(const Trace& trace) {
  TraceSenderConfig cfg;
  cfg.records = trace.packets();
  cfg.handshake_timeout_ms = 20000;
  return cfg;
}

SocketSourceConfig FastBackoff(SocketSourceConfig cfg) {
  cfg.read_timeout_ms = 50;
  cfg.backoff_initial_ms = 5;
  cfg.backoff_max_ms = 50;
  return cfg;
}

TEST(UdpSourceTest, DeliversEverythingInOrder) {
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 21);
  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kUdp;
  cfg.port = 0;  // ephemeral; read back after Open
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  SenderRun run(SenderConfigFor(trace));
  run.StartUdp(src.bound_port());

  const std::vector<PacketRecord> got = DrainAll(src);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[i])) << "record " << i;
  }
  EXPECT_TRUE(src.last_status().ok());
  EXPECT_EQ(src.stats().gaps, 0u);
  EXPECT_EQ(src.stats().duplicate_records, 0u);
  EXPECT_EQ(src.durable_offset(), trace.size());
}

TEST(UdpSourceTest, DroppedFramesAreBookedAsGapsNeverSilent) {
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 22);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.drop_every_nth_frame = 3;

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kUdp;
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  SenderRun run(scfg);
  run.StartUdp(src.bound_port());

  const std::vector<PacketRecord> got = DrainAll(src);
  const SourceIngestStats& st = src.stats();
  EXPECT_GT(st.gaps, 0u);
  EXPECT_LT(got.size(), trace.size());
  // The accounting invariant: every record is either delivered or booked
  // in a gap — delivery is at-most-once with loss always counted.
  EXPECT_EQ(st.records + st.gap_records, trace.size());
  EXPECT_TRUE(IsSubsequence(got, trace.packets()));
  EXPECT_EQ(src.durable_offset(), trace.size());
}

TEST(UdpSourceTest, CorruptFramesAreQuarantined) {
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 23);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.corrupt_every_nth_frame = 4;

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kUdp;
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  SenderRun run(scfg);
  run.StartUdp(src.bound_port());

  const std::vector<PacketRecord> got = DrainAll(src);
  const SourceIngestStats& st = src.stats();
  EXPECT_GT(st.malformed_frames, 0u);
  EXPECT_EQ(st.records + st.gap_records, trace.size());
  EXPECT_TRUE(IsSubsequence(got, trace.packets()));
}

TEST(TcpSourceTest, DeliversEverythingInOrder) {
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 31);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.records_per_frame = 512;
  SenderRun run(scfg);
  ASSERT_TRUE(run.sender.BindTcp(0).ok());
  run.StartTcpBound();

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = run.sender.tcp_port();
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(src);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[i])) << "record " << i;
  }
  EXPECT_TRUE(src.last_status().ok());
  EXPECT_EQ(src.stats().gaps, 0u);
}

TEST(TcpSourceTest, ReconnectAfterKillsResumesLossless) {
  // The producer slams the connection shut every 4 frames; HELLO carries
  // the durable offset, the replay buffer is unlimited, so reconnect +
  // resume must deliver the complete stream with zero loss.
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 32);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.records_per_frame = 64;
  scfg.kill_connection_after_frames = 4;
  SenderRun run(scfg);
  ASSERT_TRUE(run.sender.BindTcp(0).ok());
  run.StartTcpBound();

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = run.sender.tcp_port();
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(src);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[i])) << "record " << i;
  }
  EXPECT_GT(src.stats().reconnects, 0u);
  EXPECT_EQ(src.stats().gaps, 0u);
  EXPECT_TRUE(src.last_status().ok());
}

TEST(TcpSourceTest, TornFinalFrameIsDiscardedNotParsed) {
  // The connection dies halfway through a frame: the consumer must drop
  // the partial bytes, reconnect, and re-fetch — full delivery, no
  // half-parsed garbage records.
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 33);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.records_per_frame = 64;
  scfg.kill_connection_after_frames = 5;
  scfg.kill_mid_frame = true;
  SenderRun run(scfg);
  ASSERT_TRUE(run.sender.BindTcp(0).ok());
  run.StartTcpBound();

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = run.sender.tcp_port();
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(src);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[i])) << "record " << i;
  }
  EXPECT_GT(src.stats().reconnects, 0u);
  EXPECT_TRUE(src.last_status().ok());
}

TEST(TcpSourceTest, ConnectRefusedExhaustsBoundedBackoff) {
  // Find a port with nothing listening by binding and immediately closing.
  TraceSenderConfig probe_cfg;
  uint16_t dead_port = 0;
  {
    TraceSender probe(probe_cfg);
    ASSERT_TRUE(probe.BindTcp(0).ok());
    dead_port = probe.tcp_port();
  }
  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = dead_port;
  cfg.max_reconnect_attempts = 3;
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(src, 10);
  EXPECT_TRUE(got.empty());
  EXPECT_FALSE(src.last_status().ok());
  EXPECT_GE(src.stats().reconnects, 3u);
}

TEST(TcpSourceTest, ProducerCrashWithoutFinEndsWithError) {
  // A producer that vanishes after the last record (no FIN) looks exactly
  // like a crash: the consumer must deliver everything it received, then
  // exhaust its reconnect budget and surface an error — not hang, not
  // pretend the stream ended cleanly.
  Trace trace = TraceGenerator::MakeResearchFeed(1.0, 34);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.records_per_frame = 128;
  scfg.send_fin = false;
  SenderRun run(scfg);
  ASSERT_TRUE(run.sender.BindTcp(0).ok());
  run.StartTcpBound();

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = run.sender.tcp_port();
  cfg.max_reconnect_attempts = 2;
  SocketSource src(cfg);
  ASSERT_TRUE(src.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(src, 20);
  EXPECT_EQ(got.size(), trace.size());
  EXPECT_FALSE(src.last_status().ok());
}

TEST(TcpSourceTest, ReplayWindowLimitForcesABookedGap) {
  // Consumer A drains part of the stream and disappears; consumer B
  // resumes from offset 0 but the producer's replay window has moved on.
  // The ACK lands beyond the HELLO and B must book the difference as a
  // gap — at-most-once, with the loss on the record, never replayed
  // silently out of thin air.
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 35);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.records_per_frame = 64;
  scfg.replay_window = 128;
  scfg.linger_ms = 20000;
  SenderRun run(scfg);
  ASSERT_TRUE(run.sender.BindTcp(0).ok());
  run.StartTcpBound();

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = run.sender.tcp_port();
  {
    SocketSource first(cfg);
    ASSERT_TRUE(first.Open().ok());
    std::vector<PacketRecord> buf(256);
    size_t n = 0;
    // Consume at least one batch so the producer's high water advances.
    for (int i = 0; i < 1000 && n == 0; ++i) {
      if (first.Read(buf.data(), buf.size(), &n) ==
          ResumableSource::ReadResult::kEnd) {
        break;
      }
    }
    ASSERT_GT(n, 0u) << "first consumer never received a batch";
  }  // first consumer vanishes mid-stream

  SocketSource second(cfg);
  ASSERT_TRUE(second.SeekTo(0).ok());
  ASSERT_TRUE(second.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(second);
  const SourceIngestStats& st = second.stats();
  EXPECT_GE(st.gaps, 1u) << "the clamped resume must be booked as a gap";
  EXPECT_EQ(st.records + st.gap_records, trace.size());
  ASSERT_FALSE(got.empty());
  // Whatever was delivered is the exact tail of the trace.
  const size_t start = trace.size() - got.size();
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[start + i]))
        << "record " << i;
  }
}

TEST(FaultWrapperTest, InjectedDisconnectsStillDeliverEverything) {
  // FaultyResumableSource yanks the connection every 400 delivered
  // records; TCP resume is lossless, so adversity must not change what the
  // engine sees.
  Trace trace = TraceGenerator::MakeResearchFeed(2.0, 36);
  TraceSenderConfig scfg = SenderConfigFor(trace);
  scfg.records_per_frame = 64;
  SenderRun run(scfg);
  ASSERT_TRUE(run.sender.BindTcp(0).ok());
  run.StartTcpBound();

  SocketSourceConfig cfg = FastBackoff({});
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = run.sender.tcp_port();
  SocketSource inner(cfg);
  ResumableFaultConfig fc;
  fc.disconnect_every_records = 400;
  FaultyResumableSource src(&inner, fc);
  ASSERT_TRUE(src.Open().ok());
  const std::vector<PacketRecord> got = DrainAll(src);
  ASSERT_EQ(got.size(), trace.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(SameRecord(got[i], trace.packets()[i])) << "record " << i;
  }
  EXPECT_GT(inner.stats().reconnects, 0u);
}

// ---------------------------------------------------------------------------
// Runtime integration: RunSource vs in-process Run

TEST(RunSourceTest, PcapIngestMatchesInProcessRunByteForByte) {
  Trace trace = TraceGenerator::MakeResearchFeed(6.0, 42);
  const std::string path =
      (fs::path(::testing::TempDir()) / "run_source_eq.pcap").string();
  ASSERT_TRUE(WritePcap(trace, path).ok());

  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());

  std::vector<std::string> reference;
  {
    TwoLevelRuntime ref(*low, {*high});
    ASSERT_TRUE(ref.Run(trace).ok());
    reference = RowsAsStrings(ref.high_node(0).DrainOutput());
  }
  TwoLevelRuntime rt(*low, {*high});
  PcapReader reader(PcapReaderConfig{path});
  auto report = rt.RunSource(reader);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(RowsAsStrings(rt.high_node(0).DrainOutput()), reference);
  ASSERT_EQ(report->sources.size(), 1u);
  EXPECT_TRUE(report->sources[0].clean_end);
  EXPECT_FALSE(report->sources[0].resumed_from_offset);
  EXPECT_EQ(report->sources[0].stats.records, trace.size());
  EXPECT_EQ(report->packets, trace.size());
  fs::remove(path);
}

TEST(RunSourceTest, MaxRecordsBoundsALiveRun) {
  Trace trace = TraceGenerator::MakeResearchFeed(6.0, 43);
  ASSERT_GT(trace.size(), 2000u);
  const std::string path =
      (fs::path(::testing::TempDir()) / "run_source_cap.pcap").string();
  ASSERT_TRUE(WritePcap(trace, path).ok());

  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());
  RuntimeOptions opt;
  opt.source_max_records = 1000;
  TwoLevelRuntime rt(*low, {*high}, opt);
  PcapReader reader(PcapReaderConfig{path});
  auto report = rt.RunSource(reader);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The cap is checked at batch boundaries, so the run stops within one
  // batch of the limit.
  EXPECT_GE(report->packets, 1000u);
  EXPECT_LT(report->packets, 1000u + opt.batch_size);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Crash recovery over resumable offsets (fork + SIGKILL, no cleanup)

class NetSourceCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("netcrash_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

size_t CountSnapshots(const fs::path& dir) {
  if (!fs::exists(dir)) return 0;
  size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.find(".ckpt.") != std::string::npos &&
        name.rfind(".tmp") == std::string::npos) {
      ++n;
    }
  }
  return n;
}

RuntimeOptions CheckpointedSourceOptions(const std::string& dir) {
  RuntimeOptions opt;
  opt.checkpoint.dir = dir;
  opt.checkpoint.every_n_windows = 1;
  opt.batch_size = 128;  // small ingest batches = frequent snapshot points
  return opt;
}

// Waits until `min_snapshots` checkpoint files exist, then SIGKILLs the
// child. False when the child finished first (callers skip — the machine
// outran the throttle).
bool WaitForSnapshotsThenKill(pid_t pid, const fs::path& ckpt_dir,
                              size_t min_snapshots) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool killed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (CountSnapshots(ckpt_dir) >= min_snapshots) {
      ::kill(pid, SIGKILL);
      killed = true;
      break;
    }
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!killed) ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return killed && WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
}

std::vector<std::string> ReferenceRows(const Trace& trace) {
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  EXPECT_TRUE(low.ok() && high.ok());
  TwoLevelRuntime ref(*low, {*high});
  EXPECT_TRUE(ref.Run(trace).ok());
  return RowsAsStrings(ref.high_node(0).DrainOutput());
}

TEST_F(NetSourceCrashTest, SigkillPcapIngestResumesByteIdentically) {
  Trace trace = TraceGenerator::MakeResearchFeed(30.0, 42);
  const std::string pcap_path = (dir_ / "stream.pcap").string();
  ASSERT_TRUE(WritePcap(trace, pcap_path).ok());
  const fs::path ckpt = dir_ / "ckpt";
  fs::create_directories(ckpt);

  const pid_t pid = fork();
  if (pid == 0) {
    auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
    auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
    if (!low.ok() || !high.ok()) _exit(3);
    TwoLevelRuntime rt(*low, {*high},
                       CheckpointedSourceOptions(ckpt.string()));
    PcapReader inner(PcapReaderConfig{pcap_path});
    ResumableFaultConfig fc;  // throttle so the parent can kill mid-file
    fc.stall_every_reads = 1;
    fc.stall_ms = 4;
    FaultyResumableSource src(&inner, fc);
    auto report = rt.RunSource(src);
    _exit(report.ok() ? 0 : 4);
  }
  if (!WaitForSnapshotsThenKill(pid, ckpt, 2)) {
    GTEST_SKIP() << "child completed before SIGKILL";
  }
  ASSERT_GE(CountSnapshots(ckpt), 1u);

  const std::vector<std::string> reference = ReferenceRows(trace);
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());
  TwoLevelRuntime rt(*low, {*high},
                     CheckpointedSourceOptions(ckpt.string()));
  ASSERT_TRUE(rt.recovered()) << "no valid snapshot was restored";
  PcapReader reader(PcapReaderConfig{pcap_path});
  auto report = rt.RunSource(reader);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->sources.size(), 1u);
  EXPECT_TRUE(report->sources[0].resumed_from_offset)
      << "recovery should seek the pcap, not replay from byte 0";
  EXPECT_GT(report->sources[0].stats.resume_offset, 0u);
  // The re-seeked run read strictly fewer records than the whole capture.
  EXPECT_LT(report->packets, trace.size());

  const std::vector<std::string> recovered =
      RowsAsStrings(rt.high_node(0).DrainOutput());
  ASSERT_LE(recovered.size(), reference.size());
  const std::vector<std::string> tail(reference.end() - recovered.size(),
                                      reference.end());
  EXPECT_EQ(recovered, tail);
}

TEST_F(NetSourceCrashTest, SigkillTcpIngestResumesViaHelloByteIdentically) {
  Trace trace = TraceGenerator::MakeResearchFeed(30.0, 42);
  const fs::path ckpt = dir_ / "ckpt";
  fs::create_directories(ckpt);

  // The producer is a separate *process* (forked before anything else is
  // multithreaded): it survives the consumer's SIGKILL, lingers, and serves
  // the restarted consumer's resume handshake.
  TraceSenderConfig scfg;
  scfg.records = trace.packets();
  scfg.records_per_frame = 61;
  scfg.records_per_sec = static_cast<double>(trace.size()) / 6.0;
  scfg.handshake_timeout_ms = 60000;
  scfg.linger_ms = 120000;
  TraceSender sender(std::move(scfg));
  ASSERT_TRUE(sender.BindTcp(0).ok());
  const uint16_t port = sender.tcp_port();
  const pid_t producer = fork();
  if (producer == 0) {
    sender.ServeTcp();
    _exit(0);
  }

  SocketSourceConfig cfg;
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.port = port;
  cfg.read_timeout_ms = 50;

  const pid_t consumer = fork();
  if (consumer == 0) {
    auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
    auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
    if (!low.ok() || !high.ok()) _exit(3);
    TwoLevelRuntime rt(*low, {*high},
                       CheckpointedSourceOptions(ckpt.string()));
    SocketSource src(cfg);
    auto report = rt.RunSource(src);
    _exit(report.ok() ? 0 : 4);
  }
  const bool killed = WaitForSnapshotsThenKill(consumer, ckpt, 2);
  if (!killed) {
    ::kill(producer, SIGKILL);
    ::waitpid(producer, nullptr, 0);
    GTEST_SKIP() << "consumer completed before SIGKILL";
  }

  // Restarted consumer: restores operator state + offset, re-HELLOs at the
  // offset; the producer's unlimited replay makes the resume lossless, so
  // the recovered output must be a byte-identical reference suffix.
  const std::vector<std::string> reference = ReferenceRows(trace);
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());
  TwoLevelRuntime rt(*low, {*high},
                     CheckpointedSourceOptions(ckpt.string()));
  ASSERT_TRUE(rt.recovered()) << "no valid snapshot was restored";
  SocketSource src(cfg);
  auto report = rt.RunSource(src);
  ::kill(producer, SIGKILL);
  ::waitpid(producer, nullptr, 0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->sources.size(), 1u);
  EXPECT_TRUE(report->sources[0].resumed_from_offset);
  EXPECT_GT(report->sources[0].stats.resume_offset, 0u);
  EXPECT_EQ(report->sources[0].stats.gaps, 0u)
      << "an unlimited replay window must make the resume lossless";

  const std::vector<std::string> recovered =
      RowsAsStrings(rt.high_node(0).DrainOutput());
  ASSERT_LE(recovered.size(), reference.size());
  const std::vector<std::string> tail(reference.end() - recovered.size(),
                                      reference.end());
  EXPECT_EQ(recovered, tail);
}

}  // namespace
}  // namespace streamop
