// Bytecode compiler + interpreter coverage: golden program dumps pin the
// compiled form of representative expressions, and a randomized
// differential harness proves that both the row-mode and batch-mode
// interpreters agree bit-for-bit with the tree-walk Evaluate() — including
// short-circuit evaluation, division-by-zero errors and mixed-type
// coercions. The batched hot path is only allowed to exist because of the
// equivalences tested here.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "expr/evaluator.h"
#include "expr/program.h"
#include "expr/scalar_function.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"
#include "tuple/value.h"

namespace streamop {
namespace {

ExprPtr Scalar(const std::string& name, std::vector<ExprPtr> args) {
  ExprPtr e = Expr::Call(name, std::move(args));
  e->kind = ExprKind::kScalarCall;
  e->scalar = ScalarFunctionRegistry::Global().Find(name);
  EXPECT_NE(e->scalar, nullptr) << name;
  return e;
}

// `len > 100` over the PKT schema (len = slot 7).
ExprPtr LenGt100() {
  return Expr::Binary(BinaryOp::kGt, Expr::InputRef("len", 7),
                      Expr::Literal(Value::UInt(100)));
}

TEST(ExprProgramTest, GoldenDumpSimpleComparison) {
  auto prog = ExprProgram::TryCompile(LenGt100().get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->ToString(),
            "0: load_input[7]\n"
            "1: push_lit[0] ; 100\n"
            "2: gt\n");
  EXPECT_TRUE(prog->batchable());
  EXPECT_TRUE(prog->reads_input());
  EXPECT_FALSE(prog->reads_group_by());
  EXPECT_EQ(prog->identity_input_slot(), -1);
}

TEST(ExprProgramTest, GoldenDumpShortCircuitAnd) {
  // proto = 6 AND NOT (srcPort = 80 OR destPort = 80): the fuzz seed's
  // predicate shape; probes carry jump targets past their matching ends.
  ExprPtr e = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kEq, Expr::InputRef("proto", 6),
                   Expr::Literal(Value::UInt(6))),
      Expr::Unary(
          UnaryOp::kNot,
          Expr::Binary(
              BinaryOp::kOr,
              Expr::Binary(BinaryOp::kEq, Expr::InputRef("srcPort", 4),
                           Expr::Literal(Value::UInt(80))),
              Expr::Binary(BinaryOp::kEq, Expr::InputRef("destPort", 5),
                           Expr::Literal(Value::UInt(80))))));
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->ToString(),
            "0: load_input[6]\n"
            "1: push_lit[0] ; 6\n"
            "2: eq\n"
            "3: and_probe ->14\n"
            "4: load_input[4]\n"
            "5: push_lit[1] ; 80\n"
            "6: eq\n"
            "7: or_probe ->12\n"
            "8: load_input[5]\n"
            "9: push_lit[2] ; 80\n"
            "10: eq\n"
            "11: or_end\n"
            "12: not\n"
            "13: and_end\n");
}

TEST(ExprProgramTest, GoldenDumpGroupByArithmetic) {
  // time/20: the window-id expression of every steady-state benchmark.
  ExprPtr e = Expr::Binary(BinaryOp::kDiv, Expr::InputRef("time", 0),
                           Expr::Literal(Value::UInt(20)));
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->ToString(),
            "0: load_input[0]\n"
            "1: push_lit[0] ; 20\n"
            "2: div\n");
}

TEST(ExprProgramTest, GoldenDumpScalarCall) {
  ExprPtr e = Scalar("UMAX", {Expr::InputRef("len", 7),
                              Expr::Literal(Value::UInt(1000))});
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->ToString(),
            "0: load_input[7]\n"
            "1: push_lit[0] ; 1000\n"
            "2: scall UMAX/2\n");
  EXPECT_TRUE(prog->batchable());  // all builtins are pure
}

TEST(ExprProgramTest, IdentityInputSlotDetected) {
  ExprPtr e = Expr::InputRef("srcIP", 2);
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->identity_input_slot(), 2);
}

TEST(ExprProgramTest, AggAndSuperAggRefsCompileButAreNotBatchable) {
  ExprPtr e = Expr::Binary(BinaryOp::kGt, Expr::AggregateRef(0),
                           Expr::SuperAggRef(1));
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->ToString(),
            "0: load_agg[0]\n"
            "1: load_super[1]\n"
            "2: gt\n");
  EXPECT_FALSE(prog->batchable());
  EXPECT_TRUE(prog->reads_agg());
  EXPECT_TRUE(prog->reads_superagg());
}

TEST(ExprProgramTest, UnanalyzedCallDoesNotCompile) {
  ExprPtr e = Expr::Call("sum", {Expr::InputRef("len", 7)});
  EXPECT_FALSE(ExprProgram::TryCompile(e.get()).has_value());
  EXPECT_FALSE(ExprProgram::TryCompile(nullptr).has_value());
}

TEST(ExprProgramTest, UnresolvedColumnDoesNotCompile) {
  ExprPtr e = Expr::Column("len");  // never analyzed: slot = -1
  EXPECT_FALSE(ExprProgram::TryCompile(e.get()).has_value());
}

// ---------------------------------------------------------------------------
// Differential: random expressions, three interpreters, identical results.

struct RandomExprGen {
  Pcg64 rng;
  explicit RandomExprGen(uint64_t seed) : rng(seed, 0x9e3779b9ULL) {}

  ExprPtr Leaf() {
    switch (rng.NextBounded(8)) {
      case 0:
        return Expr::Literal(Value::UInt(rng.NextBounded(200)));
      case 1:
        return Expr::Literal(Value::Int(
            static_cast<int64_t>(rng.NextBounded(200)) - 100));
      case 2:
        return Expr::Literal(
            Value::Double(static_cast<double>(rng.NextBounded(400)) / 8.0));
      case 3:
        return Expr::Literal(Value::Bool(rng.NextBounded(2) != 0));
      case 4:
        // Zero shows up often enough to exercise division errors and
        // short-circuit guards.
        return Expr::Literal(Value::UInt(0));
      default: {
        int slot = static_cast<int>(rng.NextBounded(8));
        return Expr::InputRef("c" + std::to_string(slot), slot);
      }
    }
  }

  ExprPtr Gen(int depth) {
    if (depth <= 0 || rng.NextBounded(4) == 0) return Leaf();
    switch (rng.NextBounded(10)) {
      case 0:
        return Expr::Unary(rng.NextBounded(2) ? UnaryOp::kNot : UnaryOp::kNeg,
                           Gen(depth - 1));
      case 1:
        return Expr::Binary(BinaryOp::kAnd, Gen(depth - 1), Gen(depth - 1));
      case 2:
        return Expr::Binary(BinaryOp::kOr, Gen(depth - 1), Gen(depth - 1));
      case 3: {
        const char* fns[] = {"UMAX", "UMIN", "DMAX", "DMIN", "ABS"};
        const char* fn = fns[rng.NextBounded(5)];
        if (std::string(fn) == "ABS") return Scalar(fn, {Gen(depth - 1)});
        return Scalar(fn, {Gen(depth - 1), Gen(depth - 1)});
      }
      default: {
        BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                          BinaryOp::kDiv, BinaryOp::kMod, BinaryOp::kEq,
                          BinaryOp::kNe, BinaryOp::kLt,  BinaryOp::kLe,
                          BinaryOp::kGt, BinaryOp::kGe};
        return Expr::Binary(ops[rng.NextBounded(11)], Gen(depth - 1),
                            Gen(depth - 1));
      }
    }
  }
};

// A canonical rendering that distinguishes type and payload ("UINT:5" vs
// "INT:5"); NaN renders identically everywhere.
std::string Render(const Result<Value>& r) {
  if (!r.ok()) return "<error>";
  return std::string(FieldTypeToString(r->type())) + ":" + r->ToString();
}

TEST(ExprProgramTest, DifferentialRandomExpressionsRowAndBatch) {
  constexpr size_t kRows = 64;
  constexpr int kIters = 400;

  // A batch of varied rows: mostly uints (the packet case), with doubles,
  // ints, bools and nulls mixed in to stress the coercion lanes.
  TupleBatch batch(8, kRows);
  std::vector<Tuple> rows;
  Pcg64 data_rng(0xdeadULL, 0xbeefULL);
  for (size_t i = 0; i < kRows; ++i) {
    std::vector<Value> vals;
    for (size_t c = 0; c < 8; ++c) {
      switch (data_rng.NextBounded(10)) {
        case 0:
          vals.push_back(Value::Double(
              static_cast<double>(data_rng.NextBounded(1000)) / 4.0));
          break;
        case 1:
          vals.push_back(Value::Int(
              static_cast<int64_t>(data_rng.NextBounded(1000)) - 500));
          break;
        case 2:
          vals.push_back(Value::Bool(data_rng.NextBounded(2) != 0));
          break;
        case 3:
          vals.push_back(Value::Null());
          break;
        default:
          vals.push_back(Value::UInt(data_rng.NextBounded(300)));
          break;
      }
    }
    Tuple t(std::move(vals));
    batch.AppendTuple(t);
    rows.push_back(std::move(t));
  }

  RandomExprGen gen(0x5eedULL);
  ExprProgram::BatchScratch scratch;
  size_t compiled = 0;
  for (int iter = 0; iter < kIters; ++iter) {
    ExprPtr e = gen.Gen(4);
    auto prog = ExprProgram::TryCompile(e.get());
    ASSERT_TRUE(prog.has_value()) << e->ToString();
    ++compiled;

    // Tree walk per row = ground truth.
    std::vector<std::string> want;
    bool any_error = false;
    for (size_t i = 0; i < kRows; ++i) {
      EvalContext ctx;
      ctx.input = &rows[i];
      Result<Value> r = Evaluate(*e, ctx);
      any_error |= !r.ok();
      want.push_back(Render(r));
    }

    // Row mode over the materialized tuples and over batch lanes.
    for (size_t i = 0; i < kRows; ++i) {
      ExprProgram::RowContext rc;
      rc.input = &rows[i];
      EXPECT_EQ(Render(prog->EvalRow(rc)), want[i])
          << "row-mode(tuple) " << e->ToString() << " row " << i;
      ExprProgram::RowContext bc;
      bc.batch = &batch;
      bc.row = i;
      EXPECT_EQ(Render(prog->EvalRow(bc)), want[i])
          << "row-mode(batch) " << e->ToString() << " row " << i;
    }

    // Batch mode: must fail iff any lane fails, else agree on every lane.
    scratch.Reset();
    VecCol out;
    ExprProgram::BatchContext bctx;
    bctx.batch = &batch;
    Status s = prog->EvalBatch(bctx, &scratch, &out);
    EXPECT_EQ(s.ok(), !any_error) << e->ToString() << " " << s.ToString();
    if (s.ok()) {
      for (size_t i = 0; i < kRows; ++i) {
        Value v = MaterializeRawValue(out.type[i], out.raw[i]);
        EXPECT_EQ(Render(Result<Value>(std::move(v))), want[i])
            << "batch-mode " << e->ToString() << " row " << i;
      }
    }
  }
  EXPECT_EQ(compiled, static_cast<size_t>(kIters));
}

// Lane-wise short-circuit: a guard that masks out the error lanes means
// the batch must evaluate cleanly, exactly as tuple-at-a-time would.
TEST(ExprProgramTest, BatchShortCircuitSuppressesGuardedDivisionByZero) {
  // c1 != 0 AND c0 / c1 > 1
  ExprPtr guard =
      Expr::Binary(BinaryOp::kNe, Expr::InputRef("c1", 1),
                   Expr::Literal(Value::UInt(0)));
  ExprPtr div = Expr::Binary(
      BinaryOp::kGt,
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("c0", 0),
                   Expr::InputRef("c1", 1)),
      Expr::Literal(Value::UInt(1)));
  ExprPtr e = Expr::Binary(BinaryOp::kAnd, std::move(guard), div->Clone());
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());

  TupleBatch batch(2, 4);
  batch.AppendTuple(Tuple({Value::UInt(10), Value::UInt(2)}));   // true
  batch.AppendTuple(Tuple({Value::UInt(10), Value::UInt(0)}));   // guarded
  batch.AppendTuple(Tuple({Value::UInt(10), Value::UInt(20)}));  // false
  batch.AppendTuple(Tuple({Value::UInt(10), Value::UInt(0)}));   // guarded

  ExprProgram::BatchScratch scratch;
  VecCol out;
  ExprProgram::BatchContext ctx;
  ctx.batch = &batch;
  ASSERT_TRUE(prog->EvalBatch(ctx, &scratch, &out).ok());
  EXPECT_EQ(out.raw[0], 1u);
  EXPECT_EQ(out.raw[1], 0u);
  EXPECT_EQ(out.raw[2], 0u);
  EXPECT_EQ(out.raw[3], 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out.type[i], static_cast<uint8_t>(FieldType::kBool));
  }

  // Unguarded, the zero lane must abort the batch — the caller then
  // replays per-row to position the error exactly.
  auto div_only = ExprProgram::TryCompile(div.get());
  ASSERT_TRUE(div_only.has_value());
  scratch.Reset();
  Status s = div_only->EvalBatch(ctx, &scratch, &out);
  EXPECT_FALSE(s.ok());

  // ...but lanes masked out by the selection vector never evaluate.
  batch.set_selected(1, false);
  batch.set_selected(3, false);
  scratch.Reset();
  EXPECT_TRUE(div_only->EvalBatch(ctx, &scratch, &out).ok());
}

TEST(ExprProgramTest, GroupByRefsReadKeyColumns) {
  // tb % 2 = 0 where tb is group-by slot 0.
  ExprPtr e = Expr::Binary(
      BinaryOp::kEq,
      Expr::Binary(BinaryOp::kMod, Expr::GroupByRef("tb", 0),
                   Expr::Literal(Value::UInt(2))),
      Expr::Literal(Value::UInt(0)));
  auto prog = ExprProgram::TryCompile(e.get());
  ASSERT_TRUE(prog.has_value());
  EXPECT_TRUE(prog->reads_group_by());
  EXPECT_TRUE(prog->batchable());

  TupleBatch batch(1, 4);
  for (int i = 0; i < 4; ++i) batch.AppendTuple(Tuple({Value::UInt(i)}));
  VecCol tb;
  tb.raw = {5, 6, 7, 8};
  tb.type.assign(4, static_cast<uint8_t>(FieldType::kUInt));
  const VecCol* key_cols[] = {&tb};

  ExprProgram::BatchContext ctx;
  ctx.batch = &batch;
  ctx.key_cols = key_cols;
  ctx.num_key_cols = 1;
  ExprProgram::BatchScratch scratch;
  VecCol out;
  ASSERT_TRUE(prog->EvalBatch(ctx, &scratch, &out).ok());
  EXPECT_EQ(out.raw[0], 0u);
  EXPECT_EQ(out.raw[1], 1u);
  EXPECT_EQ(out.raw[2], 0u);
  EXPECT_EQ(out.raw[3], 1u);

  // Row mode against the same key columns.
  for (size_t i = 0; i < 4; ++i) {
    ExprProgram::RowContext rc;
    rc.batch = &batch;
    rc.row = i;
    rc.key_cols = key_cols;
    rc.num_key_cols = 1;
    auto r = prog->EvalRow(rc);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->bool_value(), i % 2 == 1);  // tb=5,6,7,8 -> odd lanes even
  }
}

}  // namespace
}  // namespace streamop
