// Strict durability sweep (DESIGN.md §10): grids query × sampler ×
// overload × checkpoint-fault × kill-point and, for every cell, SIGKILLs a
// checkpointing child mid-stream, optionally corrupts the newest snapshot,
// recovers, and asserts the recovered output is a byte-identical suffix of
// an uninterrupted reference run. Any injected fault must be *detected*
// (counted as corrupt-skipped) — a silent restore of corrupted state is a
// failure even when the output happens to match.
//
// Results land in a CSV; every failing cell also gets a fail bundle
// (checkpoint dir copy, expected/actual rows, repro command with all
// seeds) under <out-dir>/fail_<cell>/, so a red cell is replayable with
//   strict_sweep --only=<cell> --out-dir=/tmp/repro
//
// Exit status: 0 when no cell fails (skips are fine — they mean the
// machine outran the kill throttle), 1 otherwise.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/runtime.h"
#include "net/pcap_format.h"
#include "net/trace_generator.h"
#include "net/trace_sender.h"
#include "query/query.h"
#include "stream/fault_injection.h"
#include "stream/pcap_reader.h"
#include "stream/socket_source.h"

namespace streamop {
namespace {

namespace fs = std::filesystem;

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

// Query/sampler axis: each scenario exercises a different durable-state
// shape — per-group hash aggregates at two cardinalities, and the paper's
// dynamic subset-sum operator (threshold z, RNG stream, supergroup
// partials, cleaning phase).
struct QueryScenario {
  const char* name;
  const char* sampler;
  const char* sql;
};

constexpr QueryScenario kQueries[] = {
    {"agg-fine", "hash-agg",
     "SELECT tb, srcIP, count(*), sum(len) FROM PKT "
     "GROUP BY time/5 as tb, srcIP"},
    {"agg-coarse", "hash-agg",
     "SELECT tb, proto, count(*), sum(len) FROM PKT "
     "GROUP BY time/5 as tb, proto"},
    {"subsetsum", "threshold",
     R"(SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
        FROM PKTS
        WHERE ssample(len, 500, 2, 10) = TRUE
        GROUP BY time/5 as tb, srcIP, destIP, ts_ns
        HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
        CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
        CLEANING BY ssclean_with(sum(len)) = TRUE)"},
};

// Overload axis: steady arrival vs. seeded burst compression (the same
// faulty trace feeds reference and recovery runs, so byte-identity holds).
struct OverloadScenario {
  const char* name;
  double p_burst_start;
};

constexpr OverloadScenario kOverloads[] = {
    {"steady", 0.0},
    {"burst", 0.002},
};

// Checkpoint-file fault axis (stream/fault_injection.h).
struct FaultScenario {
  const char* name;
  bool inject;
  CheckpointFault kind;
};

constexpr FaultScenario kFaults[] = {
    {"none", false, CheckpointFault::kTruncate},
    {"truncate", true, CheckpointFault::kTruncate},
    {"bitflip", true, CheckpointFault::kBitFlip},
    {"stale", true, CheckpointFault::kStaleVersion},
};

// Kill-point axis: SIGKILL after N snapshots, or a clean run + restart.
struct KillScenario {
  const char* name;
  size_t kill_after_snapshots;  // 0 = clean run, no kill
};

constexpr KillScenario kKills[] = {
    {"kill1", 1},
    {"kill2", 2},
    {"clean", 0},
};

// Ingest-source axis (DESIGN.md §11): besides the in-process trace, kill
// cells also run over real resumable sources — a pcap file (recovery must
// seek to the checkpointed byte offset) and a live TCP producer (recovery
// must re-HELLO at the checkpointed record offset). Source cells run on
// the steady overload with no checkpoint-file fault: the axis under test
// is the offset resume itself.
constexpr const char* kSources[] = {"pcap", "tcp"};

// The --smoke slice: a handful of cells covering every axis value at
// least once, bounded enough for a CI gate.
constexpr const char* kSmokeCells[] = {
    "agg-fine.steady.none.kill1",    "subsetsum.steady.bitflip.kill2",
    "agg-coarse.burst.truncate.kill1", "subsetsum.burst.stale.clean",
    "agg-fine.steady.none.clean",    "src-pcap.agg-fine.kill1",
};

struct SweepArgs {
  bool smoke = false;
  bool list = false;
  std::string only;
  std::string out_dir = "strict_sweep_out";
  double duration_sec = 20.0;
  uint64_t trace_seed = 42;
  uint64_t compile_seed = 3;
};

struct Cell {
  const QueryScenario* query;
  const OverloadScenario* overload_s;
  const FaultScenario* fault;
  const KillScenario* kill;
  size_t index;  // position in the full grid — seeds fault injection
  const char* source = "trace";  // trace | pcap | tcp

  std::string id() const {
    if (std::strcmp(source, "trace") != 0) {
      return std::string("src-") + source + "." + query->name + "." +
             kill->name;
    }
    return std::string(query->name) + "." + overload_s->name + "." +
           fault->name + "." + kill->name;
  }
  uint64_t fault_seed() const { return 1000 + index; }
};

struct CellResult {
  std::string status = "PASS";  // PASS | FAIL | SKIP
  std::string note;
  size_t snapshots = 0;
  uint64_t corrupt_skipped = 0;
  bool recovered = false;
  uint64_t recovered_windows = 0;
  size_t ref_rows = 0;
  size_t recovered_rows = 0;
  uint64_t elapsed_ms = 0;
};

std::vector<std::string> RowsAsStrings(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      s += t[i].ToString();
      s += '\t';
    }
    out.push_back(std::move(s));
  }
  return out;
}

RuntimeOptions CheckpointedOptions(const std::string& dir) {
  RuntimeOptions opt;
  opt.checkpoint.dir = dir;
  opt.checkpoint.every_n_windows = 1;
  return opt;
}

size_t CountSnapshots(const fs::path& dir) {
  if (!fs::exists(dir)) return 0;
  size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.find(".ckpt.") != std::string::npos &&
        name.rfind(".tmp") == std::string::npos) {
      ++n;
    }
  }
  return n;
}

fs::path NewestSnapshot(const fs::path& dir) {
  fs::path newest;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.find(".ckpt.") == std::string::npos ||
        name.rfind(".tmp") != std::string::npos) {
      continue;
    }
    if (newest.empty() || e.path().filename() > newest.filename()) {
      newest = e.path();
    }
  }
  return newest;
}

// Waits until `min_snapshots` snapshot files exist, then SIGKILLs `pid`.
// Returns false when the child finished first (cell becomes a SKIP).
bool WaitForSnapshotsThenKill(pid_t pid, const fs::path& ckpt_dir,
                              size_t min_snapshots) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool killed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (CountSnapshots(ckpt_dir) >= min_snapshots) {
      ::kill(pid, SIGKILL);
      killed = true;
      break;
    }
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!killed) ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return killed && WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
}

// Forks a child running the checkpointed two-level pipeline with a
// throttled consumer, SIGKILLs it once `kill_after` snapshots exist.
// Returns false when the child finished first (cell becomes a SKIP).
bool RunChildAndKill(const Trace& trace, const Cell& cell,
                     const SweepArgs& args, const fs::path& ckpt_dir) {
  const pid_t pid = fork();
  if (pid == 0) {
    auto low = CompileQuery(kPassThroughLow, Catalog::Default(),
                            {.seed = args.compile_seed});
    auto high = CompileQuery(cell.query->sql, Catalog::Default(),
                             {.seed = args.compile_seed});
    if (!low.ok() || !high.ok()) _exit(3);
    RuntimeOptions opt = CheckpointedOptions(ckpt_dir.string());
    ConsumerStallSpec stall;
    stall.stall_at_batch = 0;
    stall.per_batch_ms = 4;
    opt.consumer_stall_hook = MakeConsumerStallHook(stall);
    TwoLevelRuntime rt(*low, {*high}, opt);
    auto report = rt.RunThreaded(trace);
    _exit(report.ok() ? 0 : 4);
  }
  return WaitForSnapshotsThenKill(pid, ckpt_dir,
                                  cell.kill->kill_after_snapshots);
}

void WriteFailBundle(const fs::path& out_dir, const Cell& cell,
                     const SweepArgs& args, const fs::path& ckpt_dir,
                     const CellResult& result,
                     const std::vector<std::string>& expected_tail,
                     const std::vector<std::string>& recovered) {
  const fs::path bundle = out_dir / ("fail_" + cell.id());
  std::error_code ec;
  fs::remove_all(bundle, ec);
  fs::create_directories(bundle, ec);
  if (fs::exists(ckpt_dir)) {
    fs::copy(ckpt_dir, bundle / "checkpoints",
             fs::copy_options::recursive, ec);
  }
  {
    std::ofstream f(bundle / "repro.txt");
    f << "cell: " << cell.id() << "\n"
      << "note: " << result.note << "\n"
      << "trace_seed: " << args.trace_seed << "\n"
      << "compile_seed: " << args.compile_seed << "\n"
      << "fault_seed: " << cell.fault_seed() << "\n"
      << "duration_sec: " << args.duration_sec << "\n"
      << "repro: strict_sweep --only=" << cell.id()
      << " --duration=" << args.duration_sec
      << " --trace-seed=" << args.trace_seed
      << " --out-dir=/tmp/strict_sweep_repro\n";
  }
  {
    std::ofstream f(bundle / "expected_tail.txt");
    for (const auto& r : expected_tail) f << r << "\n";
  }
  {
    std::ofstream f(bundle / "recovered.txt");
    for (const auto& r : recovered) f << r << "\n";
  }
}

CellResult RunCell(const Cell& cell, const Trace& trace,
                   const std::vector<std::string>& reference,
                   const SweepArgs& args, const fs::path& out_dir) {
  CellResult result;
  const auto start = std::chrono::steady_clock::now();
  const fs::path ckpt_dir = out_dir / ("ckpt_" + cell.id());
  std::error_code ec;
  fs::remove_all(ckpt_dir, ec);
  fs::create_directories(ckpt_dir, ec);

  auto low = CompileQuery(kPassThroughLow, Catalog::Default(),
                          {.seed = args.compile_seed});
  auto high = CompileQuery(cell.query->sql, Catalog::Default(),
                           {.seed = args.compile_seed});
  if (!low.ok() || !high.ok()) {
    result.status = "FAIL";
    result.note = "query compilation failed";
    return result;
  }

  std::vector<std::string> expected_tail;
  std::vector<std::string> recovered_rows;
  const auto fail = [&](const std::string& note) {
    result.status = "FAIL";
    result.note = note;
    WriteFailBundle(out_dir, cell, args, ckpt_dir, result, expected_tail,
                    recovered_rows);
  };

  // Phase 1: produce snapshots — SIGKILL a throttled child mid-stream, or
  // run cleanly to completion for the restart cells.
  if (cell.kill->kill_after_snapshots > 0) {
    if (!RunChildAndKill(trace, cell, args, ckpt_dir)) {
      result.status = "SKIP";
      result.note = "child finished before SIGKILL";
      return result;
    }
  } else {
    TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(ckpt_dir.string()));
    auto report = rt.RunThreaded(trace);
    if (!report.ok()) {
      fail("clean checkpointed run failed: " + report.status().ToString());
      return result;
    }
  }
  result.snapshots = CountSnapshots(ckpt_dir);
  if (result.snapshots == 0) {
    fail("no snapshot was produced");
    return result;
  }

  // Phase 2: corrupt the newest snapshot (recovery must detect it and fall
  // back to the next-oldest valid one, or start fresh).
  if (cell.fault->inject) {
    const fs::path target = NewestSnapshot(ckpt_dir);
    if (target.empty() ||
        !InjectCheckpointFault(target.string(), cell.fault->kind,
                               cell.fault_seed())) {
      fail("could not inject checkpoint fault");
      return result;
    }
  }

  // Phase 3: recover and replay the same trace.
  TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(ckpt_dir.string()));
  result.recovered = rt.recovered();
  result.recovered_windows = rt.recovered_windows();
  auto report = rt.RunThreaded(trace);
  if (!report.ok()) {
    fail("recovery run failed: " + report.status().ToString());
    return result;
  }
  result.corrupt_skipped = report->checkpoint_corrupt_skipped;
  recovered_rows = RowsAsStrings(rt.high_node(0).DrainOutput());
  result.recovered_rows = recovered_rows.size();
  result.ref_rows = reference.size();
  result.elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  // Every injected fault must be detected; a pristine dir must produce no
  // false positives.
  if (cell.fault->inject && result.corrupt_skipped == 0) {
    fail("injected fault was not detected (silent restore)");
    return result;
  }
  if (!cell.fault->inject && result.corrupt_skipped != 0) {
    fail("pristine snapshot flagged as corrupt");
    return result;
  }

  // The recovered output must be a byte-identical suffix of the reference:
  // shorter when a snapshot was restored, the full reference when every
  // snapshot was rejected and the run started fresh.
  if (recovered_rows.size() > reference.size()) {
    fail("recovered run emitted more rows than the reference");
    return result;
  }
  expected_tail.assign(reference.end() - recovered_rows.size(),
                       reference.end());
  if (recovered_rows != expected_tail) {
    fail("recovered output diverges from the reference suffix");
    return result;
  }
  fs::remove_all(ckpt_dir, ec);  // passing cells leave no debris
  return result;
}

// A source cell drives the SAME trace through a real ResumableSource
// (pcap file or live TCP producer), SIGKILLs the checkpointed consumer
// mid-ingest, and recovers over a fresh source instance: the restored run
// must seek/re-HELLO to the checkpointed offset (resumed_from_offset) and
// its output must be a byte-identical suffix of the in-process reference.
CellResult RunSourceCell(const Cell& cell, const Trace& trace,
                         const std::vector<std::string>& reference,
                         const SweepArgs& args, const fs::path& out_dir) {
  CellResult result;
  const auto start = std::chrono::steady_clock::now();
  const fs::path ckpt_dir = out_dir / ("ckpt_" + cell.id());
  std::error_code ec;
  fs::remove_all(ckpt_dir, ec);
  fs::create_directories(ckpt_dir, ec);

  auto low = CompileQuery(kPassThroughLow, Catalog::Default(),
                          {.seed = args.compile_seed});
  auto high = CompileQuery(cell.query->sql, Catalog::Default(),
                           {.seed = args.compile_seed});
  if (!low.ok() || !high.ok()) {
    result.status = "FAIL";
    result.note = "query compilation failed";
    return result;
  }

  std::vector<std::string> expected_tail;
  std::vector<std::string> recovered_rows;
  const auto fail = [&](const std::string& note) {
    result.status = "FAIL";
    result.note = note;
    WriteFailBundle(out_dir, cell, args, ckpt_dir, result, expected_tail,
                    recovered_rows);
  };

  const bool is_pcap = std::strcmp(cell.source, "pcap") == 0;
  const fs::path pcap_path = out_dir / (cell.id() + ".pcap");
  std::unique_ptr<TraceSender> sender;
  pid_t producer = -1;
  SocketSourceConfig sock_cfg;
  const auto cleanup = [&] {
    if (producer > 0) {
      ::kill(producer, SIGKILL);
      ::waitpid(producer, nullptr, 0);
      producer = -1;
    }
    fs::remove(pcap_path, ec);
  };

  if (is_pcap) {
    Status wrote = WritePcap(trace, pcap_path.string());
    if (!wrote.ok()) {
      fail("pcap write failed: " + wrote.ToString());
      return result;
    }
  } else {
    // The producer is a separate process (forked while this process is
    // still single-threaded): it survives the consumer's SIGKILL, lingers,
    // and serves the restarted consumer's resume handshake. Throttled so
    // the trace is still mid-flight when the consumer dies.
    TraceSenderConfig scfg;
    scfg.records = trace.packets();
    scfg.records_per_frame = 61;
    scfg.records_per_sec = static_cast<double>(trace.size()) / 6.0;
    scfg.handshake_timeout_ms = 60000;
    scfg.linger_ms = 120000;
    sender = std::make_unique<TraceSender>(std::move(scfg));
    Status bound = sender->BindTcp(0);
    if (!bound.ok()) {
      fail("tcp bind failed: " + bound.ToString());
      return result;
    }
    producer = fork();
    if (producer == 0) {
      sender->ServeTcp();
      _exit(0);
    }
    sock_cfg.mode = SocketSourceConfig::Mode::kTcp;
    sock_cfg.port = sender->tcp_port();
    sock_cfg.read_timeout_ms = 50;
  }

  RuntimeOptions opt = CheckpointedOptions(ckpt_dir.string());
  opt.batch_size = 128;  // small ingest batches = frequent snapshot points

  // Phase 1: fork the consumer, SIGKILL it once enough snapshots exist.
  const pid_t consumer = fork();
  if (consumer == 0) {
    TwoLevelRuntime rt(*low, {*high}, opt);
    if (is_pcap) {
      PcapReader inner(PcapReaderConfig{pcap_path.string()});
      ResumableFaultConfig fc;  // throttle so the parent can kill mid-file
      fc.stall_every_reads = 1;
      fc.stall_ms = 4;
      FaultyResumableSource src(&inner, fc);
      auto report = rt.RunSource(src);
      _exit(report.ok() ? 0 : 4);
    }
    SocketSource src(sock_cfg);
    auto report = rt.RunSource(src);
    _exit(report.ok() ? 0 : 4);
  }
  if (!WaitForSnapshotsThenKill(consumer, ckpt_dir,
                                cell.kill->kill_after_snapshots)) {
    cleanup();
    result.status = "SKIP";
    result.note = "consumer finished before SIGKILL";
    return result;
  }
  result.snapshots = CountSnapshots(ckpt_dir);
  if (result.snapshots == 0) {
    cleanup();
    fail("no snapshot was produced");
    return result;
  }

  // Phase 2: recover over a fresh source instance.
  TwoLevelRuntime rt(*low, {*high}, opt);
  result.recovered = rt.recovered();
  result.recovered_windows = rt.recovered_windows();
  Result<RunReport> report = [&]() -> Result<RunReport> {
    if (is_pcap) {
      PcapReader reader(PcapReaderConfig{pcap_path.string()});
      return rt.RunSource(reader);
    }
    SocketSource src(sock_cfg);
    return rt.RunSource(src);
  }();
  cleanup();
  if (!report.ok()) {
    fail("recovery run failed: " + report.status().ToString());
    return result;
  }
  result.corrupt_skipped = report->checkpoint_corrupt_skipped;
  recovered_rows = RowsAsStrings(rt.high_node(0).DrainOutput());
  result.recovered_rows = recovered_rows.size();
  result.ref_rows = reference.size();
  result.elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  if (!result.recovered) {
    fail("no snapshot was restored");
    return result;
  }
  if (result.corrupt_skipped != 0) {
    fail("pristine snapshot flagged as corrupt");
    return result;
  }
  if (report->sources.size() != 1) {
    fail("recovery run reported no ingest source");
    return result;
  }
  if (!report->sources[0].resumed_from_offset) {
    fail("recovery replayed from the start instead of seeking the source");
    return result;
  }
  if (!report->sources[0].clean_end) {
    fail("recovered ingest ended with an error: " +
         report->sources[0].error);
    return result;
  }

  if (recovered_rows.size() > reference.size()) {
    fail("recovered run emitted more rows than the reference");
    return result;
  }
  expected_tail.assign(reference.end() - recovered_rows.size(),
                       reference.end());
  if (recovered_rows != expected_tail) {
    fail("recovered output diverges from the reference suffix");
    return result;
  }
  fs::remove_all(ckpt_dir, ec);
  return result;
}

int Run(const SweepArgs& args) {
  // Build the full grid.
  std::vector<Cell> cells;
  size_t index = 0;
  for (const auto& q : kQueries) {
    for (const auto& o : kOverloads) {
      for (const auto& f : kFaults) {
        for (const auto& k : kKills) {
          cells.push_back(Cell{&q, &o, &f, &k, index++});
        }
      }
    }
  }
  // Source cells: {agg-fine, subsetsum} × {pcap, tcp} × kill points, on
  // the steady overload with no checkpoint-file fault.
  for (const char* src : kSources) {
    for (const auto& q : kQueries) {
      if (std::strcmp(q.name, "agg-coarse") == 0) continue;
      for (const auto& k : kKills) {
        if (k.kill_after_snapshots == 0) continue;
        cells.push_back(
            Cell{&q, &kOverloads[0], &kFaults[0], &k, index++, src});
      }
    }
  }
  if (args.smoke) {
    std::vector<Cell> slice;
    for (const Cell& c : cells) {
      for (const char* id : kSmokeCells) {
        if (c.id() == id) slice.push_back(c);
      }
    }
    cells = std::move(slice);
  }
  if (!args.only.empty()) {
    std::vector<Cell> slice;
    for (const Cell& c : cells) {
      if (c.id() == args.only) slice.push_back(c);
    }
    if (slice.empty()) {
      std::fprintf(stderr, "strict_sweep: unknown cell '%s'\n",
                   args.only.c_str());
      return 2;
    }
    cells = std::move(slice);
  }
  if (args.list) {
    for (const Cell& c : cells) std::printf("%s\n", c.id().c_str());
    return 0;
  }

  const fs::path out_dir(args.out_dir);
  std::error_code ec;
  fs::create_directories(out_dir, ec);

  // Per-overload traces and per-(query, overload) references are shared
  // across fault/kill cells.
  std::map<std::string, Trace> traces;
  for (const auto& o : kOverloads) {
    Trace t = TraceGenerator::MakeResearchFeed(args.duration_sec,
                                               args.trace_seed);
    if (o.p_burst_start > 0.0) {
      FaultInjectionConfig fc;
      fc.seed = args.trace_seed;
      fc.p_burst_start = o.p_burst_start;
      fc.burst_packets = 1024;
      fc.burst_compression = 50.0;
      t = InjectFaults(t, fc);
    }
    traces.emplace(o.name, std::move(t));
  }
  std::map<std::string, std::vector<std::string>> references;
  for (const auto& q : kQueries) {
    for (const auto& o : kOverloads) {
      const std::string key = std::string(q.name) + "." + o.name;
      bool needed = false;
      for (const Cell& c : cells) {
        if (c.query == &q && c.overload_s == &o) needed = true;
      }
      if (!needed) continue;
      auto low = CompileQuery(kPassThroughLow, Catalog::Default(),
                              {.seed = args.compile_seed});
      auto high = CompileQuery(q.sql, Catalog::Default(),
                               {.seed = args.compile_seed});
      if (!low.ok() || !high.ok()) {
        std::fprintf(stderr, "strict_sweep: reference compile failed (%s)\n",
                     key.c_str());
        return 2;
      }
      TwoLevelRuntime ref(*low, {*high});
      auto report = ref.Run(traces.at(o.name));
      if (!report.ok()) {
        std::fprintf(stderr, "strict_sweep: reference run failed (%s): %s\n",
                     key.c_str(), report.status().ToString().c_str());
        return 2;
      }
      references.emplace(key,
                         RowsAsStrings(ref.high_node(0).DrainOutput()));
    }
  }

  std::ofstream csv(out_dir / "results.csv");
  csv << "cell,source,query,sampler,overload,fault,kill_point,status,"
         "snapshots,corrupt_skipped,recovered,recovered_windows,ref_rows,"
         "recovered_rows,fault_seed,elapsed_ms,note\n";

  size_t passed = 0, failed = 0, skipped = 0;
  for (const Cell& cell : cells) {
    const std::string key =
        std::string(cell.query->name) + "." + cell.overload_s->name;
    const bool is_source_cell = std::strcmp(cell.source, "trace") != 0;
    const CellResult r =
        is_source_cell
            ? RunSourceCell(cell, traces.at(cell.overload_s->name),
                            references.at(key), args, out_dir)
            : RunCell(cell, traces.at(cell.overload_s->name),
                      references.at(key), args, out_dir);
    csv << cell.id() << ',' << cell.source << ',' << cell.query->name << ','
        << cell.query->sampler << ',' << cell.overload_s->name << ','
        << cell.fault->name << ',' << cell.kill->name << ',' << r.status
        << ',' << r.snapshots << ',' << r.corrupt_skipped << ','
        << (r.recovered ? 1 : 0) << ',' << r.recovered_windows << ','
        << r.ref_rows << ',' << r.recovered_rows << ','
        << cell.fault_seed() << ',' << r.elapsed_ms << ",\"" << r.note
        << "\"\n";
    csv.flush();
    std::fprintf(stderr, "[%s] %s%s%s\n", r.status.c_str(),
                 cell.id().c_str(), r.note.empty() ? "" : " — ",
                 r.note.c_str());
    if (r.status == "PASS") {
      ++passed;
    } else if (r.status == "SKIP") {
      ++skipped;
    } else {
      ++failed;
    }
  }
  std::fprintf(stderr,
               "strict_sweep: %zu passed, %zu failed, %zu skipped "
               "(results: %s)\n",
               passed, failed, skipped,
               (out_dir / "results.csv").string().c_str());
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace streamop

int main(int argc, char** argv) {
  streamop::SweepArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&a](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      if (a.compare(0, n, flag) == 0 && a.size() > n && a[n] == '=') {
        return a.c_str() + n + 1;
      }
      return nullptr;
    };
    if (a == "--smoke") {
      args.smoke = true;
    } else if (a == "--list") {
      args.list = true;
    } else if (const char* v = value("--only")) {
      args.only = v;
    } else if (const char* v = value("--out-dir")) {
      args.out_dir = v;
    } else if (const char* v = value("--duration")) {
      args.duration_sec = std::atof(v);
    } else if (const char* v = value("--trace-seed")) {
      args.trace_seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: strict_sweep [--smoke] [--list] [--only=CELL]\n"
                   "                    [--out-dir=DIR] [--duration=SEC]\n"
                   "                    [--trace-seed=N]\n");
      return 2;
    }
  }
  return streamop::Run(args);
}
