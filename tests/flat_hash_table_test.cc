// FlatHashTable: insert/find/erase round-trips, backward-shift deletion
// correctness under churn, growth across rehashes, and the
// erase-while-iterating pattern RunCleaningPhase / LossyCounting::Prune /
// DistinctSampler::RaiseLevel rely on. Every scenario is cross-checked
// against std::unordered_map as the reference model.

#include "common/flat_hash_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuple/tuple.h"
#include "tuple/value.h"

namespace streamop {
namespace {

TEST(FlatHashTableTest, EmptyTable) {
  FlatHashTable<uint64_t, int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(42), t.end());
  EXPECT_EQ(t.count(42), 0u);
  EXPECT_EQ(t.erase(42), 0u);
  EXPECT_EQ(t.begin(), t.end());
}

TEST(FlatHashTableTest, InsertFindEraseRoundTrip) {
  FlatHashTable<uint64_t, std::string> t;
  auto [it, inserted] = t.try_emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "one");
  // Duplicate insert is a no-op that returns the existing entry.
  auto [it2, inserted2] = t.try_emplace(1, "uno");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, "one");
  EXPECT_EQ(t.size(), 1u);

  t[2] = "two";
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(2)->second, "two");

  EXPECT_EQ(t.erase(1), 1u);
  EXPECT_EQ(t.find(1), t.end());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(2)->second, "two");
}

TEST(FlatHashTableTest, OperatorBracketDefaultConstructs) {
  FlatHashTable<uint64_t, uint64_t> t;
  EXPECT_EQ(t[7], 0u);
  ++t[7];
  ++t[7];
  EXPECT_EQ(t[7], 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatHashTableTest, GrowthAcrossRehashPreservesEntries) {
  FlatHashTable<uint64_t, uint64_t> t;
  const uint64_t kN = 10000;  // forces many doublings from capacity 16
  for (uint64_t i = 0; i < kN; ++i) t.try_emplace(i, i * i);
  EXPECT_EQ(t.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    auto it = t.find(i);
    ASSERT_NE(it, t.end()) << i;
    EXPECT_EQ(it->second, i * i);
  }
  EXPECT_EQ(t.find(kN), t.end());
}

TEST(FlatHashTableTest, ReservePreventsRehash) {
  FlatHashTable<uint64_t, int> t;
  t.reserve(1000);
  size_t cap = t.capacity();
  EXPECT_GE(cap, 1000u * 4 / 3);
  for (uint64_t i = 0; i < 1000; ++i) t.try_emplace(i, 0);
  EXPECT_EQ(t.capacity(), cap);  // no growth happened
}

TEST(FlatHashTableTest, ClearKeepsCapacity) {
  FlatHashTable<uint64_t, int> t;
  for (uint64_t i = 0; i < 100; ++i) t.try_emplace(i, 1);
  size_t cap = t.capacity();
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.capacity(), cap);
  EXPECT_EQ(t.find(5), t.end());
  // Reusable after clear.
  t.try_emplace(5, 9);
  EXPECT_EQ(t.find(5)->second, 9);
}

// An adversarial hash that maps everything to a handful of home slots,
// producing maximal probe-chain overlap — the regime where backward-shift
// deletion bugs (orphaned chain members) show up immediately.
struct CollidingHash {
  size_t operator()(uint64_t k) const { return k % 3; }
};

TEST(FlatHashTableTest, BackwardShiftKeepsChainsReachable) {
  FlatHashTable<uint64_t, uint64_t, CollidingHash> t;
  for (uint64_t i = 0; i < 64; ++i) t.try_emplace(i, i);
  // Erase from the middle of the chains in several orders.
  for (uint64_t i = 0; i < 64; i += 3) EXPECT_EQ(t.erase(i), 1u);
  for (uint64_t i = 0; i < 64; ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(t.find(i), t.end()) << i;
    } else {
      ASSERT_NE(t.find(i), t.end()) << i;
      EXPECT_EQ(t.find(i)->second, i);
    }
  }
}

TEST(FlatHashTableTest, RandomChurnMatchesUnorderedMap) {
  FlatHashTable<uint64_t, uint64_t> t;
  std::unordered_map<uint64_t, uint64_t> ref;
  std::mt19937_64 rng(12345);
  for (int step = 0; step < 200000; ++step) {
    uint64_t key = rng() % 512;  // small key space => constant churn
    switch (rng() % 3) {
      case 0: {
        uint64_t v = rng();
        bool ti = t.try_emplace(key, v).second;
        bool ri = ref.try_emplace(key, v).second;
        EXPECT_EQ(ti, ri);
        break;
      }
      case 1:
        EXPECT_EQ(t.erase(key), ref.erase(key));
        break;
      default: {
        auto it = t.find(key);
        auto rit = ref.find(key);
        ASSERT_EQ(it == t.end(), rit == ref.end()) << key;
        if (rit != ref.end()) EXPECT_EQ(it->second, rit->second);
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  // Full sweep at the end: every surviving entry, and nothing else.
  size_t seen = 0;
  for (const auto& [k, v] : t) {
    auto rit = ref.find(k);
    ASSERT_NE(rit, ref.end()) << k;
    EXPECT_EQ(v, rit->second);
    ++seen;
  }
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatHashTableTest, EraseWhileIteratingVisitsEverySurvivor) {
  // The RunCleaningPhase / Prune pattern: sweep the table, erasing entries
  // that fail a predicate. The predicate is idempotent (depends only on the
  // key), so the flat table's possible double-visit on array wrap is
  // harmless; what must hold is that no entry is skipped.
  FlatHashTable<uint64_t, uint64_t> t;
  for (uint64_t i = 0; i < 1000; ++i) t.try_emplace(i, i);
  for (auto it = t.begin(); it != t.end();) {
    if (it->first % 2 == 0) {
      it = t.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(t.size(), 500u);
  for (uint64_t i = 0; i < 1000; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(t.find(i), t.end()) << i;
    } else {
      ASSERT_NE(t.find(i), t.end()) << i;
    }
  }
}

TEST(FlatHashTableTest, EraseWhileIteratingUnderCollisions) {
  FlatHashTable<uint64_t, uint64_t, CollidingHash> t;
  for (uint64_t i = 0; i < 100; ++i) t.try_emplace(i, i);
  for (auto it = t.begin(); it != t.end();) {
    if (it->first < 50) {
      it = t.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(t.size(), 50u);
  for (uint64_t i = 50; i < 100; ++i) ASSERT_NE(t.find(i), t.end()) << i;
}

TEST(FlatHashTableTest, MoveResetsSource) {
  FlatHashTable<uint64_t, int> a;
  a.try_emplace(1, 10);
  a.try_emplace(2, 20);
  FlatHashTable<uint64_t, int> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.find(1)->second, 10);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): reset spec
  a.try_emplace(3, 30);     // source reusable (the §6.4 table swap needs it)
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(FlatHashTableTest, GroupKeyKeysUseCachedHash) {
  // The operator's tables: GroupKey keys hashed via GroupKeyHash (the
  // cached hash). Scratch-probe then insert-a-copy must behave like a
  // plain map.
  FlatHashTable<GroupKey, uint64_t, GroupKeyHash> t;
  GroupKey scratch;
  for (uint64_t i = 0; i < 300; ++i) {
    scratch.Clear();
    scratch.Append(Value::UInt(i % 20));
    scratch.Append(Value::String("k" + std::to_string(i % 15)));
    auto it = t.find(scratch);
    if (it == t.end()) {
      t.emplace(scratch, uint64_t{1});
    } else {
      ++it->second;
    }
  }
  EXPECT_EQ(t.size(), 60u);  // lcm(20, 15)
  uint64_t total = 0;
  for (const auto& [k, v] : t) total += v;
  EXPECT_EQ(total, 300u);
}

TEST(FlatHashTableTest, ZeroHashKeyIsStorable) {
  // A key whose hash is 0 must not be confused with the empty-slot marker.
  struct ZeroHash {
    size_t operator()(uint64_t) const { return 0; }
  };
  FlatHashTable<uint64_t, int, ZeroHash> t;
  t.try_emplace(0, 1);
  t.try_emplace(1, 2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(0)->second, 1);
  EXPECT_EQ(t.find(1)->second, 2);
  EXPECT_EQ(t.erase(0), 1u);
  EXPECT_EQ(t.find(1)->second, 2);
}

}  // namespace
}  // namespace streamop
