// Unit tests for src/net: packet records, rate models, trace generation
// and the binary trace format.

#include <gtest/gtest.h>

#include <cstdio>

#include "net/packet.h"
#include "net/rate_model.h"
#include "net/trace_generator.h"

namespace streamop {
namespace {

TEST(PacketTest, LayoutAndSeconds) {
  PacketRecord p{};
  p.ts_ns = 3'500'000'000ULL;
  EXPECT_EQ(p.ts_sec(), 3u);
  EXPECT_EQ(sizeof(PacketRecord), 24u);
}

TEST(PacketTest, ToStringRendersAddresses) {
  PacketRecord p{};
  p.ts_ns = 1'000'000'001ULL;
  p.src_ip = 0x0a000001;
  p.dst_ip = 0xc0a80001;
  p.src_port = 1234;
  p.dst_port = 80;
  p.proto = kProtoTcp;
  p.len = 1500;
  std::string s = p.ToString();
  EXPECT_NE(s.find("10.0.0.1:1234"), std::string::npos);
  EXPECT_NE(s.find("192.168.0.1:80"), std::string::npos);
  EXPECT_NE(s.find("len=1500"), std::string::npos);
}

TEST(FlowKeyTest, EqualityAndHash) {
  PacketRecord p{};
  p.src_ip = 1;
  p.dst_ip = 2;
  p.src_port = 3;
  p.dst_port = 4;
  p.proto = kProtoUdp;
  FlowKey a = FlowKeyOf(p);
  FlowKey b = FlowKeyOf(p);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  p.dst_port = 5;
  FlowKey c = FlowKeyOf(p);
  EXPECT_FALSE(a == c);
}

TEST(RateModelTest, ConstantWithoutJitter) {
  ConstantRateModel m(1000.0);
  Pcg64 rng(1);
  EXPECT_DOUBLE_EQ(m.RateAt(0.0, rng), 1000.0);
  EXPECT_DOUBLE_EQ(m.RateAt(100.0, rng), 1000.0);
}

TEST(RateModelTest, ConstantJitterStaysPositive) {
  ConstantRateModel m(1000.0, 0.5);
  Pcg64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(m.RateAt(i, rng), 0.0);
  }
}

TEST(RateModelTest, MarkovBurstSwitchesStates) {
  MarkovBurstRateModel::Params p;
  p.high_rate_pps = 10000;
  p.low_rate_pps = 1000;
  p.mean_high_holding_sec = 5;
  p.mean_low_holding_sec = 5;
  p.within_state_spread = 0.0;
  MarkovBurstRateModel m(p);
  Pcg64 rng(3);
  bool saw_high = false, saw_low = false;
  for (double t = 0; t < 300; t += 1.0) {
    double r = m.RateAt(t, rng);
    if (r > 5000) saw_high = true;
    if (r < 5000) saw_low = true;
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
}

TEST(RateModelTest, SinusoidalOscillatesAndStaysPositive) {
  SinusoidalRateModel m(100.0, 500.0, 60.0);  // amplitude > base
  Pcg64 rng(4);
  double mn = 1e18, mx = 0;
  for (double t = 0; t < 60; t += 0.5) {
    double r = m.RateAt(t, rng);
    mn = std::min(mn, r);
    mx = std::max(mx, r);
  }
  EXPECT_GE(mn, 1.0);  // clamped at 1
  EXPECT_GT(mx, 500.0);
}

TEST(TraceGeneratorTest, DeterministicGivenSeed) {
  Trace a = TraceGenerator::MakeResearchFeed(5.0, 99);
  Trace b = TraceGenerator::MakeResearchFeed(5.0, 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < std::min<size_t>(a.size(), 100); ++i) {
    EXPECT_EQ(a.at(i).ts_ns, b.at(i).ts_ns);
    EXPECT_EQ(a.at(i).src_ip, b.at(i).src_ip);
  }
}

TEST(TraceGeneratorTest, SeedsChangeTrace) {
  Trace a = TraceGenerator::MakeResearchFeed(5.0, 1);
  Trace b = TraceGenerator::MakeResearchFeed(5.0, 2);
  EXPECT_NE(a.size(), b.size());
}

TEST(TraceGeneratorTest, TimestampsMonotone) {
  Trace t = TraceGenerator::MakeResearchFeed(10.0, 5);
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t.at(i).ts_ns, t.at(i - 1).ts_ns);
  }
}

TEST(TraceGeneratorTest, ResearchFeedRateInBand) {
  Trace t = TraceGenerator::MakeResearchFeed(30.0, 7);
  double pps = static_cast<double>(t.size()) / 30.0;
  // 3k-15k pkt/s band with spread; allow generous margins.
  EXPECT_GT(pps, 1000.0);
  EXPECT_LT(pps, 25000.0);
}

TEST(TraceGeneratorTest, DataCenterFeedNearNominal) {
  Trace t = TraceGenerator::MakeDataCenterFeed(5.0, 7);
  double pps = static_cast<double>(t.size()) / 5.0;
  EXPECT_NEAR(pps, 100000.0, 10000.0);
}

TEST(TraceGeneratorTest, LengthsInModeledRanges) {
  Trace t = TraceGenerator::MakeResearchFeed(3.0, 11);
  for (const PacketRecord& p : t.packets()) {
    bool small = p.len >= 40 && p.len <= 52;
    bool mid = p.len >= 400 && p.len <= 700;
    bool big = p.len >= 1400 && p.len <= 1500;
    EXPECT_TRUE(small || mid || big) << p.len;
  }
}

TEST(TraceGeneratorTest, AddressesInConfiguredPools) {
  TraceGenConfig cfg;
  cfg.duration_sec = 2.0;
  cfg.num_src_addrs = 10;
  cfg.num_dst_addrs = 20;
  TraceGenerator gen(cfg);
  ConstantRateModel rate(5000.0);
  Trace t = gen.Generate(rate);
  ASSERT_GT(t.size(), 0u);
  for (const PacketRecord& p : t.packets()) {
    EXPECT_GE(p.src_ip, cfg.src_base);
    EXPECT_LT(p.src_ip, cfg.src_base + 10);
    EXPECT_GE(p.dst_ip, cfg.dst_base);
    EXPECT_LT(p.dst_ip, cfg.dst_base + 20);
  }
}

TEST(TraceTest, WindowAggregatesMatchManualSums) {
  Trace t = TraceGenerator::MakeResearchFeed(7.0, 13);
  auto bytes = t.BytesPerWindow(2);
  auto counts = t.PacketsPerWindow(2);
  uint64_t total_b = 0, total_c = 0;
  for (uint64_t b : bytes) total_b += b;
  for (uint64_t c : counts) total_c += c;
  EXPECT_EQ(total_b, t.TotalBytes());
  EXPECT_EQ(total_c, t.size());
  EXPECT_EQ(counts.size(), bytes.size());
}

TEST(TraceTest, EmptyTrace) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.TotalBytes(), 0u);
  EXPECT_DOUBLE_EQ(t.DurationSec(), 0.0);
  EXPECT_TRUE(t.BytesPerWindow(10).empty());
}

TEST(TraceTest, SaveLoadRoundTrip) {
  Trace t = TraceGenerator::MakeResearchFeed(2.0, 17);
  std::string path = testing::TempDir() + "/streamop_trace_test.bin";
  ASSERT_TRUE(t.SaveTo(path).ok());
  Result<Trace> loaded = Trace::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(loaded->at(i).ts_ns, t.at(i).ts_ns);
    EXPECT_EQ(loaded->at(i).len, t.at(i).len);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/streamop_bad_trace.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  Result<Trace> r = Trace::LoadFrom(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails) {
  Result<Trace> r = Trace::LoadFrom("/nonexistent/path/t.bin");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace streamop
