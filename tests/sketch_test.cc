// Tests for the extension sketches: the Greenwald-Khanna quantile summary
// (§8's contrast case, exposed as the quantile()/median() aggregate) and
// Gibbons' distinct sampler (the fifth algorithm package).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "sampling/distinct.h"
#include "sampling/gk_quantile.h"

namespace streamop {
namespace {

// ---------- GkQuantileSketch ----------

// Distance from target rank to the rank *interval* the value v occupies in
// the sorted data (duplicated values span [lower_bound, upper_bound]).
double RankIntervalError(const std::vector<double>& sorted, double v,
                         double target) {
  double lo = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  double hi = static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  if (target < lo) return lo - target;
  if (target > hi) return target - hi;
  return 0.0;
}

void CheckRankErrors(const std::vector<double>& data, double eps) {
  GkQuantileSketch sk(eps);
  for (double v : data) sk.Insert(v);
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(data.size());
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double q = sk.Query(phi);
    // Allow 2*eps*n slack: eps from the sketch invariant plus discreteness.
    EXPECT_LE(RankIntervalError(sorted, q, phi * n), 2.0 * eps * n + 2.0)
        << "phi=" << phi << " eps=" << eps << " n=" << n;
  }
}

TEST(GkQuantileTest, UniformRandomStream) {
  Pcg64 rng(3);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(rng.NextDouble() * 1e6);
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, SortedAndReversedStreams) {
  std::vector<double> asc, desc;
  for (int i = 0; i < 20000; ++i) {
    asc.push_back(static_cast<double>(i));
    desc.push_back(static_cast<double>(20000 - i));
  }
  CheckRankErrors(asc, 0.01);
  CheckRankErrors(desc, 0.01);
}

TEST(GkQuantileTest, HeavyTailedStream) {
  Pcg64 rng(5);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(rng.NextPareto(1.2, 1.0));
  CheckRankErrors(data, 0.005);
}

TEST(GkQuantileTest, ManyDuplicates) {
  Pcg64 rng(7);
  std::vector<double> data;
  for (int i = 0; i < 30000; ++i) {
    data.push_back(static_cast<double>(rng.NextBounded(5)));
  }
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, SummaryStaysSublinear) {
  GkQuantileSketch sk(0.01);
  Pcg64 rng(9);
  for (int i = 0; i < 200000; ++i) sk.Insert(rng.NextDouble());
  EXPECT_EQ(sk.count(), 200000u);
  // GK space is O((1/eps) log(eps n)) ~ a few hundred entries at eps=0.01.
  EXPECT_LT(sk.summary_size(), 2000u);
}

TEST(GkQuantileTest, SmallStreamsExact) {
  GkQuantileSketch sk(0.01);
  EXPECT_DOUBLE_EQ(sk.Query(0.5), 0.0);  // empty
  sk.Insert(42.0);
  EXPECT_DOUBLE_EQ(sk.Query(0.0), 42.0);
  EXPECT_DOUBLE_EQ(sk.Query(1.0), 42.0);
  sk.Insert(10.0);
  sk.Insert(99.0);
  double med = sk.Query(0.5);
  EXPECT_GE(med, 10.0);
  EXPECT_LE(med, 99.0);
}

TEST(GkQuantileTest, ClearResets) {
  GkQuantileSketch sk(0.01);
  sk.Insert(1.0);
  sk.Clear();
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.summary_size(), 0u);
}

TEST(GkQuantileTest, EpsilonClamped) {
  GkQuantileSketch bad1(-1.0), bad2(5.0);
  EXPECT_GT(bad1.eps(), 0.0);
  EXPECT_LE(bad2.eps(), 0.5);
}

// ---------- DistinctSampler ----------

TEST(DistinctSamplerTest, ExactBelowCapacity) {
  DistinctSampler ds(128);
  for (uint64_t i = 0; i < 100; ++i) {
    ds.Offer(i);
    ds.Offer(i);  // duplicates must not grow the sample
  }
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.level(), 0u);
  EXPECT_DOUBLE_EQ(ds.EstimateDistinctCount(), 100.0);
}

TEST(DistinctSamplerTest, CapacityRespected) {
  DistinctSampler ds(64);
  for (uint64_t i = 0; i < 100000; ++i) {
    ds.Offer(i);
    EXPECT_LE(ds.size(), 64u);
  }
  EXPECT_GT(ds.level(), 5u);
}

class DistinctCountAccuracyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DistinctCountAccuracyTest, EstimateWithinBand) {
  const uint64_t distinct = GetParam();
  // Average over several hash seeds: the estimator is unbiased but has
  // ~1/sqrt(capacity) relative deviation per run.
  double total = 0.0;
  const int kRuns = 16;
  for (int run = 0; run < kRuns; ++run) {
    DistinctSampler ds(512, static_cast<uint64_t>(run) * 7919 + 1);
    Pcg64 rng(static_cast<uint64_t>(run) + 100);
    for (uint64_t i = 0; i < distinct; ++i) {
      uint64_t e = i;
      // Each element appears 1-4 times.
      uint64_t reps = 1 + rng.NextBounded(4);
      for (uint64_t r = 0; r < reps; ++r) ds.Offer(e);
    }
    total += ds.EstimateDistinctCount();
  }
  double mean = total / kRuns;
  EXPECT_NEAR(mean, static_cast<double>(distinct),
              0.10 * static_cast<double>(distinct));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistinctCountAccuracyTest,
                         testing::Values(1000, 10000, 100000));

TEST(DistinctSamplerTest, RarityEstimate) {
  // 3000 singletons + 3000 elements appearing 5 times: rarity = 0.5.
  DistinctSampler ds(512, 12345);
  for (uint64_t i = 0; i < 3000; ++i) ds.Offer(i);
  for (uint64_t i = 3000; i < 6000; ++i) {
    for (int r = 0; r < 5; ++r) ds.Offer(i);
  }
  EXPECT_NEAR(ds.EstimateRarity(), 0.5, 0.12);
}

TEST(DistinctSamplerTest, SampleIsUniformOverDistinct) {
  // Skewed occurrence counts must NOT skew the distinct-element sample:
  // element 0 appears 10000 times, the rest once. Its inclusion frequency
  // across seeds equals everyone else's (~capacity/distinct).
  const uint64_t kDistinct = 4000;
  const int kRuns = 400;
  int heavy_in = 0;
  double mean_size = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    DistinctSampler ds(256, static_cast<uint64_t>(run) + 1);
    for (int r = 0; r < 10000; ++r) ds.Offer(0);
    for (uint64_t i = 1; i < kDistinct; ++i) ds.Offer(i);
    if (ds.sample().count(0) > 0) ++heavy_in;
    mean_size += static_cast<double>(ds.size());
  }
  mean_size /= kRuns;
  double expected_p = mean_size / static_cast<double>(kDistinct);
  double got_p = static_cast<double>(heavy_in) / kRuns;
  EXPECT_NEAR(got_p, expected_p, 0.1);
}

TEST(DistinctSamplerTest, CountsTrackOccurrences) {
  DistinctSampler ds(64);
  for (int r = 0; r < 7; ++r) ds.Offer(42);
  auto it = ds.sample().find(42);
  ASSERT_NE(it, ds.sample().end());
  EXPECT_EQ(it->second, 7u);
}

TEST(DistinctSamplerTest, ClearResets) {
  DistinctSampler ds(8);
  for (uint64_t i = 0; i < 1000; ++i) ds.Offer(i);
  ds.Clear();
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_EQ(ds.level(), 0u);
}

TEST(HashLevelTest, TrailingZeros) {
  EXPECT_EQ(HashLevel(1), 0u);
  EXPECT_EQ(HashLevel(2), 1u);
  EXPECT_EQ(HashLevel(8), 3u);
  EXPECT_EQ(HashLevel(0), 64u);
  EXPECT_EQ(HashLevel(uint64_t{1} << 63), 63u);
}

}  // namespace
}  // namespace streamop
