// Tests for the extension sketches: the Greenwald-Khanna quantile summary
// (§8's contrast case, exposed as the quantile()/median() aggregate) and
// Gibbons' distinct sampler (the fifth algorithm package).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "sampling/distinct.h"
#include "sampling/gk_quantile.h"

namespace streamop {
namespace {

// ---------- GkQuantileSketch ----------

// Distance from target rank to the rank *interval* the value v occupies in
// the sorted data (duplicated values span [lower_bound, upper_bound]).
double RankIntervalError(const std::vector<double>& sorted, double v,
                         double target) {
  double lo = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  double hi = static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  if (target < lo) return lo - target;
  if (target > hi) return target - hi;
  return 0.0;
}

void CheckRankErrors(const std::vector<double>& data, double eps) {
  GkQuantileSketch sk(eps);
  for (double v : data) sk.Insert(v);
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(data.size());
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double q = sk.Query(phi);
    // Allow 2*eps*n slack: eps from the sketch invariant plus discreteness.
    EXPECT_LE(RankIntervalError(sorted, q, phi * n), 2.0 * eps * n + 2.0)
        << "phi=" << phi << " eps=" << eps << " n=" << n;
  }
}

TEST(GkQuantileTest, UniformRandomStream) {
  Pcg64 rng(3);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(rng.NextDouble() * 1e6);
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, SortedAndReversedStreams) {
  std::vector<double> asc, desc;
  for (int i = 0; i < 20000; ++i) {
    asc.push_back(static_cast<double>(i));
    desc.push_back(static_cast<double>(20000 - i));
  }
  CheckRankErrors(asc, 0.01);
  CheckRankErrors(desc, 0.01);
}

TEST(GkQuantileTest, HeavyTailedStream) {
  Pcg64 rng(5);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) data.push_back(rng.NextPareto(1.2, 1.0));
  CheckRankErrors(data, 0.005);
}

TEST(GkQuantileTest, ManyDuplicates) {
  Pcg64 rng(7);
  std::vector<double> data;
  for (int i = 0; i < 30000; ++i) {
    data.push_back(static_cast<double>(rng.NextBounded(5)));
  }
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, SummaryStaysSublinear) {
  GkQuantileSketch sk(0.01);
  Pcg64 rng(9);
  for (int i = 0; i < 200000; ++i) sk.Insert(rng.NextDouble());
  EXPECT_EQ(sk.count(), 200000u);
  // GK space is O((1/eps) log(eps n)) ~ a few hundred entries at eps=0.01.
  EXPECT_LT(sk.summary_size(), 2000u);
}

TEST(GkQuantileTest, SmallStreamsExact) {
  GkQuantileSketch sk(0.01);
  EXPECT_DOUBLE_EQ(sk.Query(0.5), 0.0);  // empty
  sk.Insert(42.0);
  EXPECT_DOUBLE_EQ(sk.Query(0.0), 42.0);
  EXPECT_DOUBLE_EQ(sk.Query(1.0), 42.0);
  sk.Insert(10.0);
  sk.Insert(99.0);
  double med = sk.Query(0.5);
  EXPECT_GE(med, 10.0);
  EXPECT_LE(med, 99.0);
}

TEST(GkQuantileTest, ClearResets) {
  GkQuantileSketch sk(0.01);
  sk.Insert(1.0);
  sk.Clear();
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.summary_size(), 0u);
}

TEST(GkQuantileTest, EpsilonClamped) {
  GkQuantileSketch bad1(-1.0), bad2(5.0);
  EXPECT_GT(bad1.eps(), 0.0);
  EXPECT_LE(bad2.eps(), 0.5);
}

// Adversarial insertion orders: the same multiset arriving in orders that
// stress the summary differently (new minima/maxima force border entries;
// converging extremes churn the interior) must all satisfy the rank bound.
TEST(GkQuantileTest, ZigzagExtremesStream) {
  // 0, n-1, 1, n-2, ... — every insert lands at the current border of the
  // summary, alternating ends.
  std::vector<double> data;
  const int n = 30000;
  for (int i = 0; i < n / 2; ++i) {
    data.push_back(static_cast<double>(i));
    data.push_back(static_cast<double>(n - 1 - i));
  }
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, OrganPipeStream) {
  // Ascending then descending: the descending half replays values into a
  // summary already compressed for the ascending prefix.
  std::vector<double> data;
  const int n = 15000;
  for (int i = 0; i < n; ++i) data.push_back(static_cast<double>(i));
  for (int i = n - 1; i >= 0; --i) data.push_back(static_cast<double>(i));
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, SawtoothStream) {
  // Repeated short ascending runs: every run re-inserts small values below
  // most of the summary, stressing interior insertion + merge.
  std::vector<double> data;
  for (int rep = 0; rep < 300; ++rep) {
    for (int i = 0; i < 100; ++i) data.push_back(static_cast<double>(i));
  }
  CheckRankErrors(data, 0.01);
}

TEST(GkQuantileTest, InsertionOrderDoesNotBreakTheBound) {
  // The identical multiset in four different orders: all queries stay
  // within the rank-error bound regardless of arrival order.
  Pcg64 rng(13);
  std::vector<double> base;
  for (int i = 0; i < 20000; ++i) base.push_back(rng.NextPareto(1.5, 1.0));

  std::vector<double> sorted = base;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> reversed = sorted;
  std::reverse(reversed.begin(), reversed.end());
  std::vector<double> outside_in;  // max, min, 2nd max, 2nd min, ...
  for (size_t i = 0; i < sorted.size() / 2; ++i) {
    outside_in.push_back(sorted[sorted.size() - 1 - i]);
    outside_in.push_back(sorted[i]);
  }
  CheckRankErrors(base, 0.01);
  CheckRankErrors(sorted, 0.01);
  CheckRankErrors(reversed, 0.01);
  CheckRankErrors(outside_in, 0.01);
}

// Compress-path coverage: the merges must actually fire (sublinear
// summary) and must never lose the stream extremes.
TEST(GkQuantileTest, CompressFiresOnAdversarialOrdersAndKeepsExtremes) {
  const int n = 100000;
  struct Case {
    const char* name;
    double (*value)(int i, int n);
  } cases[] = {
      {"ascending", [](int i, int) { return static_cast<double>(i); }},
      {"descending", [](int i, int nn) { return static_cast<double>(nn - i); }},
      {"zigzag",
       [](int i, int nn) {
         return static_cast<double>(i % 2 == 0 ? i / 2 : nn - 1 - i / 2);
       }},
  };
  for (const Case& c : cases) {
    GkQuantileSketch sk(0.01);
    for (int i = 0; i < n; ++i) sk.Insert(c.value(i, n));
    EXPECT_EQ(sk.count(), static_cast<uint64_t>(n)) << c.name;
    // Without Compress the summary would hold all n entries.
    EXPECT_LT(sk.summary_size(), static_cast<size_t>(n) / 20) << c.name;
    // phi=0 / phi=1 must return the true extremes: compression merges
    // interior entries only.
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < n; ++i) {
      lo = std::min(lo, c.value(i, n));
      hi = std::max(hi, c.value(i, n));
    }
    EXPECT_DOUBLE_EQ(sk.Query(0.0), lo) << c.name;
    EXPECT_DOUBLE_EQ(sk.Query(1.0), hi) << c.name;
  }
}

TEST(GkQuantileTest, CompressKeepsSpaceBoundedUnderContinuousInsertion) {
  // The invariant g + delta <= 2*eps*n must keep space O((1/eps) log(eps n))
  // as n grows 100x; track the high-water mark between checkpoints.
  GkQuantileSketch sk(0.02);
  Pcg64 rng(17);
  size_t hwm = 0;
  for (int i = 1; i <= 500000; ++i) {
    sk.Insert(rng.NextDouble() * 1e9);
    if (i % 1000 == 0) hwm = std::max(hwm, sk.summary_size());
  }
  // At eps=0.02 a few hundred entries suffice; 1/eps * log2(eps*n) ~ 660.
  EXPECT_LT(hwm, 1500u);
  EXPECT_GT(sk.summary_size(), 10u);  // sanity: not trivially collapsed
}

// ---------- DistinctSampler ----------

TEST(DistinctSamplerTest, ExactBelowCapacity) {
  DistinctSampler ds(128);
  for (uint64_t i = 0; i < 100; ++i) {
    ds.Offer(i);
    ds.Offer(i);  // duplicates must not grow the sample
  }
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.level(), 0u);
  EXPECT_DOUBLE_EQ(ds.EstimateDistinctCount(), 100.0);
}

TEST(DistinctSamplerTest, CapacityRespected) {
  DistinctSampler ds(64);
  for (uint64_t i = 0; i < 100000; ++i) {
    ds.Offer(i);
    EXPECT_LE(ds.size(), 64u);
  }
  EXPECT_GT(ds.level(), 5u);
}

class DistinctCountAccuracyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DistinctCountAccuracyTest, EstimateWithinBand) {
  const uint64_t distinct = GetParam();
  // Average over several hash seeds: the estimator is unbiased but has
  // ~1/sqrt(capacity) relative deviation per run.
  double total = 0.0;
  const int kRuns = 16;
  for (int run = 0; run < kRuns; ++run) {
    DistinctSampler ds(512, static_cast<uint64_t>(run) * 7919 + 1);
    Pcg64 rng(static_cast<uint64_t>(run) + 100);
    for (uint64_t i = 0; i < distinct; ++i) {
      uint64_t e = i;
      // Each element appears 1-4 times.
      uint64_t reps = 1 + rng.NextBounded(4);
      for (uint64_t r = 0; r < reps; ++r) ds.Offer(e);
    }
    total += ds.EstimateDistinctCount();
  }
  double mean = total / kRuns;
  EXPECT_NEAR(mean, static_cast<double>(distinct),
              0.10 * static_cast<double>(distinct));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistinctCountAccuracyTest,
                         testing::Values(1000, 10000, 100000));

TEST(DistinctSamplerTest, RarityEstimate) {
  // 3000 singletons + 3000 elements appearing 5 times: rarity = 0.5.
  DistinctSampler ds(512, 12345);
  for (uint64_t i = 0; i < 3000; ++i) ds.Offer(i);
  for (uint64_t i = 3000; i < 6000; ++i) {
    for (int r = 0; r < 5; ++r) ds.Offer(i);
  }
  EXPECT_NEAR(ds.EstimateRarity(), 0.5, 0.12);
}

TEST(DistinctSamplerTest, SampleIsUniformOverDistinct) {
  // Skewed occurrence counts must NOT skew the distinct-element sample:
  // element 0 appears 10000 times, the rest once. Its inclusion frequency
  // across seeds equals everyone else's (~capacity/distinct).
  const uint64_t kDistinct = 4000;
  const int kRuns = 400;
  int heavy_in = 0;
  double mean_size = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    DistinctSampler ds(256, static_cast<uint64_t>(run) + 1);
    for (int r = 0; r < 10000; ++r) ds.Offer(0);
    for (uint64_t i = 1; i < kDistinct; ++i) ds.Offer(i);
    if (ds.sample().count(0) > 0) ++heavy_in;
    mean_size += static_cast<double>(ds.size());
  }
  mean_size /= kRuns;
  double expected_p = mean_size / static_cast<double>(kDistinct);
  double got_p = static_cast<double>(heavy_in) / kRuns;
  EXPECT_NEAR(got_p, expected_p, 0.1);
}

TEST(DistinctSamplerTest, CountsTrackOccurrences) {
  DistinctSampler ds(64);
  for (int r = 0; r < 7; ++r) ds.Offer(42);
  auto it = ds.sample().find(42);
  ASSERT_NE(it, ds.sample().end());
  EXPECT_EQ(it->second, 7u);
}

TEST(DistinctSamplerTest, ClearResets) {
  DistinctSampler ds(8);
  for (uint64_t i = 0; i < 1000; ++i) ds.Offer(i);
  ds.Clear();
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_EQ(ds.level(), 0u);
}

TEST(HashLevelTest, TrailingZeros) {
  EXPECT_EQ(HashLevel(1), 0u);
  EXPECT_EQ(HashLevel(2), 1u);
  EXPECT_EQ(HashLevel(8), 3u);
  EXPECT_EQ(HashLevel(0), 64u);
  EXPECT_EQ(HashLevel(uint64_t{1} << 63), 63u);
}

}  // namespace
}  // namespace streamop
