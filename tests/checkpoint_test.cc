// Durability tests (DESIGN.md §10): serialize/restore round-trips for every
// sampler and sketch, operator-level durable-state round-trips with
// continued-output byte-identity, and the checkpoint manager's corruption
// handling — every torn, bit-flipped or stale snapshot must be detected and
// skipped in favour of the next-oldest valid one, never silently restored.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "core/sampling_operator.h"
#include "engine/checkpoint.h"
#include "engine/load_shed.h"
#include "engine/query_node.h"
#include "net/trace_generator.h"
#include "obs/exemplar.h"
#include "query/query.h"
#include "sampling/bernoulli.h"
#include "sampling/distinct.h"
#include "sampling/gk_quantile.h"
#include "sampling/kmv.h"
#include "sampling/lossy_counting.h"
#include "sampling/priority.h"
#include "sampling/reservoir.h"
#include "sampling/subset_sum.h"
#include "sampling/threshold_core.h"
#include "stream/fault_injection.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

namespace fs = std::filesystem;

// Serialized bytes of any sampler with a SerializeTo hook — the canonical
// state-equality witness (covers RNG stream position, heaps, tables).
template <typename S>
std::string Bytes(const S& s) {
  ByteWriter w;
  s.SerializeTo(w);
  return w.Release();
}

// Round-trip discipline used below: (1) restoring into a differently
// configured instance reproduces the exact serialized state, and (2) both
// instances evolve byte-identically afterwards — the restored sampler
// continues the original's RNG stream, not a fresh one.
template <typename S, typename Evolve>
void ExpectRoundTrip(const S& original, S* target, Evolve evolve) {
  const std::string before = Bytes(original);
  ByteReader r(before);
  target->RestoreFrom(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(Bytes(*target), before);

  S continued = original;  // copy: evolve both from the same state
  evolve(&continued);
  evolve(target);
  EXPECT_EQ(Bytes(*target), Bytes(continued));
}

TEST(SamplerSerdeTest, Pcg64ResumesStream) {
  Pcg64 a(42, 7);
  for (int i = 0; i < 100; ++i) a.Next64();
  Pcg64 b(1, 1);
  const std::string state = Bytes(a);
  ByteReader r(state);
  b.RestoreFrom(r);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(SamplerSerdeTest, ReservoirControl) {
  ReservoirControl a(50, ReservoirControl::Mode::kSkip, 9);
  for (int i = 0; i < 5000; ++i) a.Offer();
  ReservoirControl b(1, ReservoirControl::Mode::kPerRecord, 1);
  ExpectRoundTrip(a, &b, [](ReservoirControl* c) {
    for (int i = 0; i < 3000; ++i) {
      if (c->Offer()) c->ReplaceIndex();
    }
  });
}

TEST(SamplerSerdeTest, ReservoirSampler) {
  ReservoirSampler<uint64_t> a(32, 5);
  for (uint64_t i = 0; i < 2000; ++i) a.Offer(i);
  ReservoirSampler<uint64_t> b(1, 1);
  ExpectRoundTrip(a, &b, [](ReservoirSampler<uint64_t>* s) {
    for (uint64_t i = 2000; i < 5000; ++i) s->Offer(i);
  });
}

TEST(SamplerSerdeTest, CandidateReservoir) {
  CandidateReservoir<uint64_t> a(100, 20.0, 3);
  for (uint64_t i = 0; i < 30000; ++i) a.Offer(i);
  CandidateReservoir<uint64_t> b(1, 2.0, 1);
  ExpectRoundTrip(a, &b, [](CandidateReservoir<uint64_t>* s) {
    for (uint64_t i = 30000; i < 60000; ++i) s->Offer(i);
  });
}

TEST(SamplerSerdeTest, BackoffReservoir) {
  BackoffReservoir<uint64_t> a(100, 20.0, 11);
  for (uint64_t i = 0; i < 30000; ++i) a.Offer(i);
  BackoffReservoir<uint64_t> b(1, 2.0, 1);
  ExpectRoundTrip(a, &b, [](BackoffReservoir<uint64_t>* s) {
    for (uint64_t i = 30000; i < 60000; ++i) s->Offer(i);
  });
}

TEST(SamplerSerdeTest, KMinHashSketch) {
  KMinHashSketch a(64, 17);
  for (uint64_t i = 0; i < 10000; ++i) a.Offer(i * 2654435761u);
  KMinHashSketch b(4, 1);
  {
    const std::string state = Bytes(a);
    ByteReader r(state);
    b.RestoreFrom(r);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(a.EstimateDistinctCount(), b.EstimateDistinctCount());
  }
  ExpectRoundTrip(a, &b, [](KMinHashSketch* s) {
    for (uint64_t i = 10000; i < 20000; ++i) s->Offer(i * 2654435761u);
  });
}

TEST(SamplerSerdeTest, GkQuantileSketch) {
  GkQuantileSketch a(0.01);
  Pcg64 rng(1);
  for (int i = 0; i < 20000; ++i) a.Insert(rng.NextDouble() * 1e6);
  GkQuantileSketch b(0.5);
  ExpectRoundTrip(a, &b, [](GkQuantileSketch* s) {
    Pcg64 more(2);
    for (int i = 0; i < 5000; ++i) s->Insert(more.NextDouble() * 1e6);
  });
}

TEST(SamplerSerdeTest, LossyCounting) {
  LossyCounting<uint64_t> a(0.001);
  Pcg64 rng(3);
  for (int i = 0; i < 50000; ++i) a.Offer(rng.NextBounded(200));
  LossyCounting<uint64_t> b(0.5);
  ExpectRoundTrip(a, &b, [](LossyCounting<uint64_t>* s) {
    Pcg64 more(4);
    for (int i = 0; i < 20000; ++i) s->Offer(more.NextBounded(200));
  });
}

TEST(SamplerSerdeTest, BasicSubsetSum) {
  BasicSubsetSumSampler<uint64_t> a(50.0, ThresholdMode::kCounter, 21);
  Pcg64 rng(5);
  for (uint64_t i = 0; i < 20000; ++i) {
    a.Offer(i, static_cast<double>(1 + rng.NextBounded(1500)));
  }
  BasicSubsetSumSampler<uint64_t> b(1.0, ThresholdMode::kCounter, 1);
  ExpectRoundTrip(a, &b, [](BasicSubsetSumSampler<uint64_t>* s) {
    Pcg64 more(6);
    for (uint64_t i = 0; i < 5000; ++i) {
      s->Offer(i, static_cast<double>(1 + more.NextBounded(1500)));
    }
  });
}

TEST(SamplerSerdeTest, DynamicSubsetSum) {
  DynamicSubsetSumSampler<uint64_t>::Options opt;
  opt.target_samples = 200;
  opt.initial_z = 10.0;
  opt.relaxed = true;
  opt.seed = 13;
  DynamicSubsetSumSampler<uint64_t> a(opt);
  Pcg64 rng(7);
  for (uint64_t i = 0; i < 30000; ++i) {
    a.Offer(i, static_cast<double>(1 + rng.NextBounded(1500)));
  }
  DynamicSubsetSumSampler<uint64_t>::Options other;
  other.target_samples = 5;
  DynamicSubsetSumSampler<uint64_t> b(other);
  ExpectRoundTrip(a, &b, [](DynamicSubsetSumSampler<uint64_t>* s) {
    Pcg64 more(8);
    for (uint64_t i = 0; i < 10000; ++i) {
      s->Offer(i, static_cast<double>(1 + more.NextBounded(1500)));
    }
  });
}

TEST(SamplerSerdeTest, BernoulliSampler) {
  BernoulliSampler<uint64_t> a(0.25, 31);
  for (uint64_t i = 0; i < 5000; ++i) a.Offer(i);
  BernoulliSampler<uint64_t> b(0.9, 1);
  ExpectRoundTrip(a, &b, [](BernoulliSampler<uint64_t>* s) {
    for (uint64_t i = 5000; i < 10000; ++i) s->Offer(i);
  });
}

TEST(SamplerSerdeTest, SystematicSampler) {
  SystematicSampler<uint64_t> a(7, 33);
  for (uint64_t i = 0; i < 1000; ++i) a.Offer(i);
  SystematicSampler<uint64_t> b(2, 1);
  ExpectRoundTrip(a, &b, [](SystematicSampler<uint64_t>* s) {
    for (uint64_t i = 1000; i < 2000; ++i) s->Offer(i);
  });
}

TEST(SamplerSerdeTest, PrioritySampler) {
  PrioritySampler<uint64_t> a(64, 37);
  Pcg64 rng(9);
  for (uint64_t i = 0; i < 20000; ++i) {
    a.Offer(i, static_cast<double>(1 + rng.NextBounded(1500)));
  }
  PrioritySampler<uint64_t> b(2, 1);
  ExpectRoundTrip(a, &b, [](PrioritySampler<uint64_t>* s) {
    Pcg64 more(10);
    for (uint64_t i = 0; i < 5000; ++i) {
      s->Offer(i, static_cast<double>(1 + more.NextBounded(1500)));
    }
  });
}

TEST(SamplerSerdeTest, DistinctSampler) {
  DistinctSampler a(256, 41);
  for (uint64_t i = 0; i < 10000; ++i) a.Offer(i % 700);
  DistinctSampler b(4, 1);
  ExpectRoundTrip(a, &b, [](DistinctSampler* s) {
    for (uint64_t i = 0; i < 5000; ++i) s->Offer(i % 900);
  });
}

TEST(SamplerSerdeTest, ThresholdSamplerCore) {
  ThresholdSamplerCore a(25.0, ThresholdMode::kProbabilistic, 43);
  Pcg64 rng(11);
  for (int i = 0; i < 20000; ++i) {
    a.Offer(static_cast<double>(1 + rng.NextBounded(1500)));
  }
  ThresholdSamplerCore b(1.0, ThresholdMode::kCounter, 1);
  ExpectRoundTrip(a, &b, [](ThresholdSamplerCore* s) {
    Pcg64 more(12);
    for (int i = 0; i < 5000; ++i) {
      s->Offer(static_cast<double>(1 + more.NextBounded(1500)));
    }
  });
}

TEST(SamplerSerdeTest, LoadShedController) {
  LoadShedConfig cfg;
  cfg.enabled = true;
  cfg.seed = 47;
  LoadShedController a(cfg);
  for (int i = 0; i < 200; ++i) {
    a.Tick(900 + i % 100, 1000, i % 7);
    for (int j = 0; j < 50; ++j) a.Admit();
  }
  LoadShedConfig other;
  other.enabled = true;
  other.seed = 1;
  LoadShedController b(other);
  const std::string before = Bytes(a);
  ByteReader r(before);
  b.RestoreFrom(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bytes(b), before);
  EXPECT_EQ(a.weight(), b.weight());
  // Continued evolution is identical: same ticks, same admission draws.
  for (int i = 0; i < 50; ++i) {
    a.Tick(500, 1000, 0);
    b.Tick(500, 1000, 0);
    for (int j = 0; j < 20; ++j) EXPECT_EQ(a.Admit(), b.Admit());
  }
  EXPECT_EQ(Bytes(a), Bytes(b));
}

TEST(SamplerSerdeTest, ExemplarStoreRoundTrip) {
  obs::ExemplarStore a(123);
  a.set_enabled(true);
  for (uint64_t i = 0; i < 500; ++i) {
    obs::Exemplar ex;
    ex.ts_ns = i;
    ex.value = static_cast<double>(i);
    ex.dims[0] = i;
    ex.ndims = 1;
    a.Offer(obs::ExemplarStore::kShedDrop, ex);
    a.OfferLatency(i % 8, ex);
  }
  obs::ExemplarStore b(1);
  b.set_enabled(true);
  const std::string before = Bytes(a);
  ByteReader r(before);
  b.RestoreFrom(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Bytes(b), before);
}

// --- Operator-level durable state ---------------------------------------

SchemaPtr TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<Field>{{"t", FieldType::kUInt, Ordering::kIncreasing},
                              {"k", FieldType::kUInt, Ordering::kNone},
                              {"v", FieldType::kUInt, Ordering::kNone}});
}

Tuple Row(uint64_t t, uint64_t k, uint64_t v) {
  return Tuple({Value::UInt(t), Value::UInt(k), Value::UInt(v)});
}

// SELECT tb, k, sum(v), count(*) FROM S GROUP BY t/10 as tb, k.
std::shared_ptr<SamplingQueryPlan> MakeAggregationPlan() {
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};
  AggregateSpec sum_spec;
  sum_spec.kind = AggregateKind::kSum;
  sum_spec.arg = Expr::InputRef("v", 2);
  sum_spec.display = "sum(v)";
  AggregateSpec cnt_spec;
  cnt_spec.kind = AggregateKind::kCount;
  cnt_spec.star = true;
  cnt_spec.display = "count(*)";
  plan->aggregates = {sum_spec, cnt_spec};
  plan->select_exprs = {Expr::GroupByRef("tb", 0), Expr::GroupByRef("k", 1),
                        Expr::AggregateRef(0), Expr::AggregateRef(1)};
  plan->output_names = {"tb", "k", "sum_v", "cnt"};
  return plan;
}

std::vector<std::string> RowsAsStrings(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      s += t[i].ToString();
      s += '\t';
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(OperatorCheckpointTest, MidWindowRoundTripContinuesByteIdentically) {
  auto plan = MakeAggregationPlan();
  SamplingOperator a(plan);
  std::vector<Tuple> prefix, suffix;
  Pcg64 rng(19);
  for (uint64_t i = 0; i < 57; ++i) {
    prefix.push_back(Row(i, rng.NextBounded(5), rng.NextBounded(100)));
  }
  for (uint64_t i = 57; i < 200; ++i) {
    suffix.push_back(Row(i, rng.NextBounded(5), rng.NextBounded(100)));
  }
  for (const Tuple& t : prefix) ASSERT_TRUE(a.Process(t).ok());
  const std::vector<Tuple> already = a.DrainOutput();  // pre-snapshot rows

  ByteWriter w;
  a.SerializeDurableState(w);
  SamplingOperator b(plan);
  ByteReader r(w.data());
  ASSERT_TRUE(b.RestoreDurableState(r));
  EXPECT_EQ(b.recovery_skip_remaining(), prefix.size());
  EXPECT_TRUE(b.recovering());

  // The restored operator replays the full stream; the prefix is skipped
  // positionally, then both process the suffix from identical state.
  for (const Tuple& t : prefix) ASSERT_TRUE(b.Process(t).ok());
  EXPECT_FALSE(b.recovering());
  for (const Tuple& t : suffix) {
    ASSERT_TRUE(a.Process(t).ok());
    ASSERT_TRUE(b.Process(t).ok());
  }
  ASSERT_TRUE(a.FinishStream().ok());
  ASSERT_TRUE(b.FinishStream().ok());

  // b's replay emits nothing for already-flushed windows; output after the
  // snapshot point must be byte-identical to the uninterrupted run's.
  std::vector<Tuple> a_rows = a.DrainOutput();
  std::vector<Tuple> b_rows = b.DrainOutput();
  EXPECT_EQ(RowsAsStrings(a_rows), RowsAsStrings(b_rows));

  // Durable state converges too (same groups, same counters).
  ByteWriter wa, wb;
  a.SerializeDurableState(wa);
  b.SerializeDurableState(wb);
  EXPECT_EQ(wa.data(), wb.data());
}

TEST(OperatorCheckpointTest, RestoreRejectsMismatchedPlan) {
  SamplingOperator a(MakeAggregationPlan());
  for (uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(a.Process(Row(i, 1, 2)).ok());
  ByteWriter w;
  a.SerializeDurableState(w);

  // A plan with a different aggregate list must refuse the snapshot.
  auto other = MakeAggregationPlan();
  other->aggregates.pop_back();
  other->select_exprs.pop_back();
  other->output_names.pop_back();
  SamplingOperator b(other);
  ByteReader r(w.data());
  EXPECT_FALSE(b.RestoreDurableState(r));
  EXPECT_EQ(b.recovery_skip_remaining(), 0u);

  // The rejecting operator still works from scratch.
  ASSERT_TRUE(b.Process(Row(1, 1, 2)).ok());
  ASSERT_TRUE(b.FinishStream().ok());
  EXPECT_EQ(b.DrainOutput().size(), 1u);
}

TEST(OperatorCheckpointTest, RestoreRejectsCorruptPayloadWithoutCrashing) {
  SamplingOperator a(MakeAggregationPlan());
  Pcg64 rng(23);
  for (uint64_t i = 0; i < 95; ++i) {
    ASSERT_TRUE(
        a.Process(Row(i, rng.NextBounded(5), rng.NextBounded(100))).ok());
  }
  ByteWriter w;
  a.SerializeDurableState(w);
  std::string payload = w.Release();

  // Truncations at every prefix length and scattered bit flips must fail
  // the restore (sticky-failure reader + count guards), never crash, and
  // leave the operator in a clean, usable state.
  SamplingOperator b(MakeAggregationPlan());
  for (size_t cut = 0; cut < payload.size(); cut += 97) {
    ByteReader r(payload.data(), cut);
    EXPECT_FALSE(b.RestoreDurableState(r)) << "cut at " << cut;
  }
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    std::string bad = payload;
    Pcg64 flip(seed);
    const size_t bit = flip.NextBounded(bad.size() * 8);
    bad[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(bad[bit / 8]) ^ (1u << (bit % 8)));
    ByteReader r(bad);
    b.RestoreDurableState(r);  // may succeed only if the flip was benign
  }
  ByteReader good(payload);
  ASSERT_TRUE(b.RestoreDurableState(good));
  for (uint64_t i = 0; i < 95; ++i) {
    ASSERT_TRUE(b.Process(Row(100, 1, 0)).ok());  // burn the replay skip
  }
  ASSERT_TRUE(b.Process(Row(200, 1, 2)).ok());
  ASSERT_TRUE(b.FinishStream().ok());
}

TEST(OperatorCheckpointTest, SfunQueryRoundTripMatchesUninterruptedRun) {
  // The full SFUN path: subset-sum sampling with threshold state, cleaning
  // phases and supergroup hand-off, from compiled SQL over a real trace.
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 42);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 500, 2, 10) = TRUE
      GROUP BY time/10 as tb, srcIP, destIP, ts_ns
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                         Catalog::Default(), {.seed = 7});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();

  QueryNode node_a("a", *cq);
  QueryNode node_b("b", *cq);
  SamplingOperator* a = node_a.sampling_operator();
  SamplingOperator* b = node_b.sampling_operator();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  std::vector<Tuple> rows;
  {
    TraceTupleSource src(&trace);
    Tuple t;
    while (src.Next(&t)) rows.push_back(t);
  }
  const size_t half = rows.size() / 2;
  for (size_t i = 0; i < half; ++i) ASSERT_TRUE(a->Process(rows[i]).ok());
  ByteWriter w;
  a->SerializeDurableState(w);
  ByteReader r(w.data());
  ASSERT_TRUE(b->RestoreDurableState(r));
  EXPECT_EQ(b->recovery_skip_remaining(), half);
  EXPECT_EQ(b->restore_states_skipped(), 0u)
      << "every SFUN must have serialize/restore hooks";

  for (size_t i = 0; i < rows.size(); ++i) {
    if (i >= half) ASSERT_TRUE(a->Process(rows[i]).ok());
    ASSERT_TRUE(b->Process(rows[i]).ok());
  }
  ASSERT_TRUE(a->FinishStream().ok());
  ASSERT_TRUE(b->FinishStream().ok());

  std::vector<Tuple> a_all = a->DrainOutput();
  std::vector<Tuple> b_rows = b->DrainOutput();
  // a's output spans the whole stream; b's only the windows flushed after
  // the snapshot point. b's rows must be a byte-identical suffix of a's.
  ASSERT_LE(b_rows.size(), a_all.size());
  std::vector<Tuple> a_tail(a_all.end() - b_rows.size(), a_all.end());
  EXPECT_EQ(RowsAsStrings(a_tail), RowsAsStrings(b_rows));
}

// --- Checkpoint manager: framing, corruption, retention ------------------

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CheckpointConfig Config() {
    CheckpointConfig cfg;
    cfg.dir = dir_.string();
    cfg.node = "node";
    cfg.retry_backoff_ms = 0;
    return cfg;
  }

  size_t NumSnapshots() const {
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().filename().string().find(".ckpt.") != std::string::npos) {
        ++n;
      }
    }
    return n;
  }

  std::string NewestSnapshotPath() const {
    std::string best;
    for (const auto& e : fs::directory_iterator(dir_)) {
      const std::string p = e.path().string();
      if (p.find(".ckpt.") == std::string::npos) continue;
      if (p > best) best = p;
    }
    return best;
  }

  fs::path dir_;
};

TEST_F(CheckpointDirTest, FrameVerifyRoundTrip) {
  const std::string payload = "the quick brown fox";
  const std::string framed = CheckpointManager::FrameSnapshot(42, payload);
  ASSERT_EQ(framed.size(), CheckpointManager::kHeaderSize + payload.size());
  LoadedCheckpoint out;
  std::string why;
  ASSERT_TRUE(CheckpointManager::VerifySnapshot(framed, &out, &why)) << why;
  EXPECT_EQ(out.payload, payload);
  EXPECT_EQ(out.windows_flushed, 42u);
}

TEST_F(CheckpointDirTest, CreatesMissingDirectory) {
  // A checkpoint dir that does not exist yet (fresh deploy, `--checkpoint-
  // dir` pointing at a new path) is created on first write, nested
  // components included — only an *unwritable* dir degrades.
  CheckpointConfig cfg = Config();
  cfg.dir = (dir_ / "auto" / "nested").string();
  CheckpointManager mgr(cfg);
  ASSERT_TRUE(mgr.Write(1, "state-at-1"));
  EXPECT_FALSE(mgr.degraded());
  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, "state-at-1");
}

TEST_F(CheckpointDirTest, WriteThenLoadLatest) {
  CheckpointManager mgr(Config());
  ASSERT_TRUE(mgr.Write(1, "state-at-1"));
  ASSERT_TRUE(mgr.Write(2, "state-at-2"));
  EXPECT_EQ(mgr.writes(), 2u);
  EXPECT_GT(mgr.last_bytes(), 0u);
  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->windows_flushed, 2u);
  EXPECT_EQ(loaded->payload, "state-at-2");
  EXPECT_EQ(mgr.corrupt_skipped(), 0u);
}

TEST_F(CheckpointDirTest, EveryTruncationIsDetected) {
  CheckpointManager mgr(Config());
  ASSERT_TRUE(mgr.Write(1, std::string(2000, 'x')));
  const std::string path = NewestSnapshotPath();
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    fs::copy_file(path, path + ".orig",
                  fs::copy_options::overwrite_existing);
    ASSERT_TRUE(
        InjectCheckpointFault(path, CheckpointFault::kTruncate, seed));
    auto loaded = mgr.LoadLatest();
    EXPECT_FALSE(loaded.has_value()) << "seed " << seed;
    fs::copy_file(path + ".orig", path,
                  fs::copy_options::overwrite_existing);
  }
  EXPECT_EQ(mgr.corrupt_skipped(), 25u);
  EXPECT_TRUE(mgr.LoadLatest().has_value());  // pristine copy still loads
}

TEST_F(CheckpointDirTest, EveryBitFlipIsDetected) {
  CheckpointManager mgr(Config());
  ASSERT_TRUE(mgr.Write(1, std::string(2000, 'y')));
  const std::string path = NewestSnapshotPath();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    fs::copy_file(path, path + ".orig",
                  fs::copy_options::overwrite_existing);
    ASSERT_TRUE(InjectCheckpointFault(path, CheckpointFault::kBitFlip, seed));
    EXPECT_FALSE(mgr.LoadLatest().has_value()) << "seed " << seed;
    fs::copy_file(path + ".orig", path,
                  fs::copy_options::overwrite_existing);
  }
  EXPECT_EQ(mgr.corrupt_skipped(), 50u);
}

TEST_F(CheckpointDirTest, StaleVersionIsSkippedNotRestored) {
  CheckpointManager mgr(Config());
  ASSERT_TRUE(mgr.Write(1, "future-format"));
  const std::string path = NewestSnapshotPath();
  ASSERT_TRUE(
      InjectCheckpointFault(path, CheckpointFault::kStaleVersion, 7));

  // Both CRCs still verify, so the only possible rejection is the version
  // check — assert the reason explicitly through VerifySnapshot.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  LoadedCheckpoint out;
  std::string why;
  EXPECT_FALSE(CheckpointManager::VerifySnapshot(bytes, &out, &why));
  EXPECT_EQ(why, "version mismatch");
  EXPECT_FALSE(mgr.LoadLatest().has_value());
  EXPECT_EQ(mgr.corrupt_skipped(), 1u);
}

TEST_F(CheckpointDirTest, CorruptNewestFallsBackToOlderValid) {
  CheckpointManager mgr(Config());
  ASSERT_TRUE(mgr.Write(1, "one"));
  ASSERT_TRUE(mgr.Write(2, "two"));
  ASSERT_TRUE(mgr.Write(3, "three"));
  ASSERT_TRUE(
      InjectCheckpointFault(NewestSnapshotPath(), CheckpointFault::kBitFlip,
                            3));
  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->windows_flushed, 2u);
  EXPECT_EQ(loaded->payload, "two");
  EXPECT_EQ(mgr.corrupt_skipped(), 1u);
}

TEST_F(CheckpointDirTest, AllSnapshotsCorruptMeansFreshStart) {
  CheckpointManager mgr(Config());
  ASSERT_TRUE(mgr.Write(1, "one"));
  ASSERT_TRUE(mgr.Write(2, "two"));
  for (const auto& e : fs::directory_iterator(dir_)) {
    ASSERT_TRUE(InjectCheckpointFault(e.path().string(),
                                      CheckpointFault::kTruncate, 5));
  }
  EXPECT_FALSE(mgr.LoadLatest().has_value());
  EXPECT_EQ(mgr.corrupt_skipped(), 2u);
}

TEST_F(CheckpointDirTest, RetentionKeepsNewestK) {
  CheckpointConfig cfg = Config();
  cfg.retain = 2;
  CheckpointManager mgr(cfg);
  for (uint64_t wdw = 1; wdw <= 6; ++wdw) {
    ASSERT_TRUE(mgr.Write(wdw, "w" + std::to_string(wdw)));
  }
  EXPECT_EQ(NumSnapshots(), 2u);
  auto loaded = mgr.LoadLatest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->windows_flushed, 6u);
}

TEST_F(CheckpointDirTest, CadenceEveryNWindows) {
  CheckpointConfig cfg = Config();
  cfg.every_n_windows = 3;
  CheckpointManager mgr(cfg);
  EXPECT_FALSE(mgr.ShouldWrite(1));
  EXPECT_FALSE(mgr.ShouldWrite(2));
  EXPECT_TRUE(mgr.ShouldWrite(3));
  EXPECT_FALSE(mgr.ShouldWrite(4));
  EXPECT_TRUE(mgr.ShouldWrite(6));
}

TEST_F(CheckpointDirTest, UnwritableDirDegradesWithoutAborting) {
  // A merely *missing* dir is auto-created; to make one genuinely
  // unwritable (even for root) put a regular file where a path component
  // must go — mkdir then fails with ENOTDIR.
  { std::ofstream blocker(dir_ / "blocker"); }
  CheckpointConfig cfg = Config();
  cfg.dir = (dir_ / "blocker" / "sub").string();
  cfg.max_retries = 2;
  CheckpointManager mgr(cfg);
  EXPECT_FALSE(mgr.Write(1, "doomed"));
  EXPECT_TRUE(mgr.degraded());
  EXPECT_EQ(mgr.failures(), 1u);
  EXPECT_EQ(mgr.writes(), 0u);
  // Repeated failures keep counting; the manager never throws or exits.
  EXPECT_FALSE(mgr.Write(2, "doomed"));
  EXPECT_EQ(mgr.failures(), 2u);
}

TEST_F(CheckpointDirTest, SuccessfulWriteClearsDegraded) {
  // Start degraded (a file blocks the checkpoint path), then clear the
  // blockage: the degraded flag is sticky only until the first good write.
  { std::ofstream blocker(dir_ / "blocker"); }
  CheckpointConfig bad = Config();
  bad.dir = (dir_ / "blocker" / "sub").string();
  bad.max_retries = 0;
  CheckpointManager mgr_bad(bad);
  EXPECT_FALSE(mgr_bad.Write(1, "x"));
  EXPECT_TRUE(mgr_bad.degraded());

  fs::remove(dir_ / "blocker");
  EXPECT_TRUE(mgr_bad.Write(2, "x"));
  EXPECT_FALSE(mgr_bad.degraded());
}

TEST_F(CheckpointDirTest, DisabledManagerIsInert) {
  CheckpointConfig cfg;  // empty dir: disabled
  CheckpointManager mgr(cfg);
  EXPECT_FALSE(mgr.enabled());
  EXPECT_FALSE(mgr.ShouldWrite(1));
  EXPECT_FALSE(mgr.Write(1, "x"));
  EXPECT_FALSE(mgr.LoadLatest().has_value());
}

}  // namespace
}  // namespace streamop
