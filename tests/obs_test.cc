// Tests for the observability layer (src/obs): counter/gauge/histogram
// primitives, the metric registry with its JSON + Prometheus exports, the
// bounded trace-event ring, and end-to-end instrumentation through the
// ring buffer, the runtimes and the sampling operator.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "obs/metrics.h"
#include "obs/trace_ring.h"
#include "query/query.h"
#include "stream/ring_buffer.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricRegistry;
using obs::TraceEvent;
using obs::TraceRing;

// ---------- primitives ----------

TEST(ObsCounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGaugeTest, SetAndSetMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.SetMax(1.0);  // below current: no change
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.SetMax(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

// ---------- histogram bucket math ----------

TEST(ObsHistogramTest, BucketBoundsContainTheirValues) {
  // Every probe value must land in a bucket whose [lb, ub) range holds it.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 64; ++v) probes.push_back(v);
  for (int p = 3; p < 63; ++p) {
    uint64_t b = 1ULL << p;
    probes.push_back(b - 1);
    probes.push_back(b);
    probes.push_back(b + 1);
    probes.push_back(b + b / 2);
  }
  probes.push_back(UINT64_MAX / 2);
  for (uint64_t v : probes) {
    size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kNumBuckets) << "v=" << v;
    uint64_t ub = Histogram::BucketUpperBound(i);
    uint64_t lb = i == 0 ? 0 : Histogram::BucketUpperBound(i - 1);
    EXPECT_GE(v, lb) << "v=" << v << " bucket=" << i;
    EXPECT_LT(v, ub) << "v=" << v << " bucket=" << i;
  }
}

TEST(ObsHistogramTest, BucketUpperBoundsStrictlyIncrease) {
  for (size_t i = 1; i < Histogram::kNumBuckets - 1; ++i) {
    EXPECT_LT(Histogram::BucketUpperBound(i - 1), Histogram::BucketUpperBound(i))
        << "bucket " << i;
  }
}

TEST(ObsHistogramTest, RelativeBucketWidthBounded) {
  // Log-linear with 4 sub-buckets per octave: width / lower-bound <= 25%
  // outside the exact linear region.
  for (size_t i = 2 * Histogram::kSubBuckets; i < 200; ++i) {
    uint64_t lb = Histogram::BucketUpperBound(i - 1);
    uint64_t ub = Histogram::BucketUpperBound(i);
    EXPECT_LE(ub - lb, lb / Histogram::kSubBuckets) << "bucket " << i;
  }
}

TEST(ObsHistogramTest, RecordAccumulatesCountSumMaxMean) {
  Histogram h;
  h.Record(1);
  h.Record(5);
  h.Record(100);
  h.Record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1106.0 / 4.0);
}

TEST(ObsHistogramTest, QuantilesBracketTheRecordedValues) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(10);
  for (int i = 0; i < 50; ++i) h.Record(1000);
  // The quantile estimate is the upper bound of the containing bucket, so
  // it can overshoot by at most one bucket width (<= 25%).
  uint64_t p25 = h.ValueAtQuantile(0.25);
  uint64_t p90 = h.ValueAtQuantile(0.90);
  EXPECT_GE(p25, 10u);
  EXPECT_LE(p25, 13u);
  EXPECT_GE(p90, 1000u);
  EXPECT_LE(p90, 1250u);
  // Extremes.
  EXPECT_GE(h.ValueAtQuantile(1.0), 1000u);
  EXPECT_GE(h.ValueAtQuantile(0.0), 10u);
  EXPECT_EQ(Histogram().ValueAtQuantile(0.5), 0u);  // empty
}

// ---------- registry ----------

TEST(MetricRegistryTest, RegistrationIsIdempotentPerNameAndLabels) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("streamop_test_total");
  Counter* b = reg.GetCounter("streamop_test_total");
  Counter* c = reg.GetCounter("streamop_test_total", "node=\"x\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

TEST(MetricRegistryTest, KindMismatchReturnsNull) {
  MetricRegistry reg;
  ASSERT_NE(reg.GetCounter("streamop_test_total"), nullptr);
  EXPECT_EQ(reg.GetGauge("streamop_test_total"), nullptr);
  EXPECT_EQ(reg.GetHistogram("streamop_test_total"), nullptr);
}

TEST(MetricRegistryTest, JsonSnapshotCarriesValues) {
  MetricRegistry reg;
  reg.GetCounter("streamop_test_total")->Add(42);
  reg.GetGauge("streamop_test_gauge")->Set(2.5);
  Histogram* h = reg.GetHistogram("streamop_test_ns", "node=\"a\"");
  h->Record(7);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"streamop_test_total\": 42"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"streamop_test_gauge\": 2.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("streamop_test_ns{node=\\\"a\\\"}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

// ---------- Prometheus round-trip ----------

// Minimal parser for the exposition format: returns sample name (with the
// label block verbatim) -> value, plus the # TYPE declarations.
struct PromParse {
  std::map<std::string, double> samples;
  std::map<std::string, std::string> types;  // family -> type
  std::vector<std::string> sample_order;
};

PromParse ParsePrometheus(const std::string& text) {
  PromParse out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string family, type;
      ls >> family >> type;
      EXPECT_EQ(out.types.count(family), 0u)
          << "duplicate # TYPE for " << family;
      out.types[family] = type;
      continue;
    }
    EXPECT_NE(line[0], '#') << "unexpected comment: " << line;
    // "name{labels} value" or "name value"; the value is after the last
    // space (label values never contain spaces in our naming scheme).
    size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    if (line[0] == '#' || sp == std::string::npos) continue;
    std::string key = line.substr(0, sp);
    double value = std::stod(line.substr(sp + 1));
    EXPECT_EQ(out.samples.count(key), 0u) << "duplicate sample: " << key;
    out.samples[key] = value;
    out.sample_order.push_back(key);
  }
  return out;
}

TEST(MetricRegistryTest, PrometheusRoundTrip) {
  MetricRegistry reg;
  reg.GetCounter("streamop_test_total")->Add(42);
  reg.GetCounter("streamop_test_total", "node=\"a\"")->Add(7);
  reg.GetGauge("streamop_test_load")->Set(0.625);
  Histogram* h = reg.GetHistogram("streamop_test_ns", "node=\"a\"");
  h->Record(1);
  h->Record(5);
  h->Record(100);
  h->Record(1000);

  PromParse p = ParsePrometheus(reg.ToPrometheus());

  // Types declared once per family.
  EXPECT_EQ(p.types.at("streamop_test_total"), "counter");
  EXPECT_EQ(p.types.at("streamop_test_load"), "gauge");
  EXPECT_EQ(p.types.at("streamop_test_ns"), "histogram");

  // Counter and gauge values survive the round trip.
  EXPECT_DOUBLE_EQ(p.samples.at("streamop_test_total"), 42.0);
  EXPECT_DOUBLE_EQ(p.samples.at("streamop_test_total{node=\"a\"}"), 7.0);
  EXPECT_DOUBLE_EQ(p.samples.at("streamop_test_load"), 0.625);

  // Histogram: _sum/_count round-trip, bucket series is cumulative and
  // monotone, and the +Inf bucket equals _count.
  EXPECT_DOUBLE_EQ(p.samples.at("streamop_test_ns_sum{node=\"a\"}"), 1106.0);
  EXPECT_DOUBLE_EQ(p.samples.at("streamop_test_ns_count{node=\"a\"}"), 4.0);
  double prev = 0.0;
  double inf_value = -1.0;
  size_t bucket_lines = 0;
  for (const std::string& key : p.sample_order) {
    if (key.rfind("streamop_test_ns_bucket{", 0) != 0) continue;
    ++bucket_lines;
    double v = p.samples.at(key);
    EXPECT_GE(v, prev) << "cumulative bucket series must be monotone: " << key;
    prev = v;
    if (key.find("le=\"+Inf\"") != std::string::npos) inf_value = v;
  }
  EXPECT_GE(bucket_lines, 5u);  // 4 occupied buckets + the +Inf bucket
  EXPECT_DOUBLE_EQ(inf_value, 4.0);
}

TEST(MetricRegistryTest, PrometheusBucketLinesReconstructExactBucketCounts) {
  // Differencing consecutive cumulative `_bucket` lines must reproduce the
  // histogram's native per-bucket counts exactly — the property the
  // time-series ring (obs/timeseries.h) relies on when it derives
  // interval-accurate quantiles from bucket deltas.
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("streamop_test_ns", "node=\"a\"");
  const uint64_t probes[] = {1, 1, 5, 64, 64, 64, 100, 4096, 4097, 1000000};
  for (uint64_t v : probes) h->Record(v);

  // Expected (upper bound, native count) pairs, ascending, occupied only.
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h->bucket_count(i) > 0) {
      expected.emplace_back(Histogram::BucketUpperBound(i), h->bucket_count(i));
    }
  }
  ASSERT_GE(expected.size(), 4u);

  PromParse p = ParsePrometheus(reg.ToPrometheus());
  std::vector<std::pair<uint64_t, uint64_t>> parsed;  // (le, delta)
  double prev_cum = 0.0;
  for (const std::string& key : p.sample_order) {
    if (key.rfind("streamop_test_ns_bucket{", 0) != 0) continue;
    const size_t le_pos = key.find("le=\"");
    ASSERT_NE(le_pos, std::string::npos) << key;
    const std::string le = key.substr(le_pos + 4, key.find('"', le_pos + 4) -
                                                      le_pos - 4);
    const double cum = p.samples.at(key);
    if (le == "+Inf") {
      EXPECT_DOUBLE_EQ(cum, static_cast<double>(h->count()));
      continue;
    }
    parsed.emplace_back(std::stoull(le),
                        static_cast<uint64_t>(cum - prev_cum));
    prev_cum = cum;
  }
  ASSERT_EQ(parsed.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(parsed[i].first, expected[i].first) << "bucket " << i;
    EXPECT_EQ(parsed[i].second, expected[i].second) << "bucket " << i;
  }
}

TEST(MetricRegistryTest, IngestMetricsCarryPerSourceLabels) {
  // Every streamop_ingest_* family is registered per source; two sources
  // must land in disjoint labeled series and export that way.
  MetricRegistry reg;
  obs::IngestSourceMetrics a = obs::IngestSourceMetrics::Create(reg, "udp:7");
  obs::IngestSourceMetrics b =
      obs::IngestSourceMetrics::Create(reg, "pcap:x.pcap");
  a.records->Add(10);
  a.gap_records->Add(3);
  b.records->Add(20);
  b.durable_offset->Set(512.0);
  EXPECT_NE(a.records, b.records);

  PromParse p = ParsePrometheus(reg.ToPrometheus());
  EXPECT_DOUBLE_EQ(
      p.samples.at("streamop_ingest_records_total{source=\"udp:7\"}"), 10.0);
  EXPECT_DOUBLE_EQ(
      p.samples.at("streamop_ingest_records_total{source=\"pcap:x.pcap\"}"),
      20.0);
  EXPECT_DOUBLE_EQ(
      p.samples.at("streamop_ingest_gap_records_total{source=\"udp:7\"}"),
      3.0);
  EXPECT_DOUBLE_EQ(
      p.samples.at("streamop_ingest_durable_offset{source=\"pcap:x.pcap\"}"),
      512.0);
  // The registry enumeration API the time-series scraper uses sees the
  // same labeled entries.
  size_t ingest_series = 0;
  reg.Visit([&](const obs::MetricRef& m) {
    if (m.name.rfind("streamop_ingest_", 0) == 0 && !m.labels.empty()) {
      ++ingest_series;
    }
  });
  EXPECT_EQ(ingest_series, 22u);  // 11 families x 2 sources
}

// ---------- trace ring ----------

TEST(TraceRingTest, DisabledRingRecordsNothing) {
  TraceRing ring(16);
  ring.Record("x", 1, 1);
  ring.Instant("y", 2);
  EXPECT_EQ(ring.events_recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, RecordsAndSortsByTimestamp) {
  TraceRing ring(16);
  ring.set_enabled(true);
  ring.Record("b", 200, 10);
  ring.Record("a", 100, 5);
  ring.Instant("c", 300, "z", 1.5);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_STREQ(events[2].name, "c");
  EXPECT_TRUE(events[2].instant);
  EXPECT_DOUBLE_EQ(events[2].arg, 1.5);
}

TEST(TraceRingTest, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  ring.set_enabled(true);
  for (uint64_t i = 0; i < 10; ++i) ring.Record("e", 100 + i, 1);
  EXPECT_EQ(ring.events_recorded(), 10u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Only the newest four survive.
  EXPECT_EQ(events.front().ts_ns, 106u);
  EXPECT_EQ(events.back().ts_ns, 109u);
}

TEST(TraceRingTest, MultipleWraparoundsRetainNewestCapacityEvents) {
  // Wrap the ring many times over: exactly the newest `capacity` events
  // survive, in timestamp order, with the total recorded count intact.
  TraceRing ring(8);
  ring.set_enabled(true);
  constexpr uint64_t kEvents = 1000;  // 125 full wraps
  for (uint64_t i = 0; i < kEvents; ++i) ring.Record("e", i, 1);
  EXPECT_EQ(ring.events_recorded(), kEvents);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, kEvents - 8 + i) << "slot " << i;
  }
}

TEST(TraceRingTest, ChromeTraceJsonShape) {
  TraceRing ring(16);
  ring.set_enabled(true);
  ring.Record("window_flush", 1000, 500);
  ring.Instant("ss_z_adjust_cleaning", 2000, "z", 42.0);
  std::string json = ring.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_flush\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"z\": 42"), std::string::npos) << json;
}

// ---------- concurrency (exercised under TSan in CI) ----------

TEST(ObsConcurrencyTest, ConcurrentMetricRecordingAndExport) {
  // Producers hammer counters, gauges and histograms while readers export
  // snapshots: no torn reads, no lost counts, no data races.
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_conc_total");
  Gauge* g = reg.GetGauge("streamop_conc_gauge");
  Histogram* h = reg.GetHistogram("streamop_conc_ns");
  constexpr int kProducers = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)reg.ToJson();
      (void)reg.ToPrometheus();
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kIters; ++i) {
        c->Add();
        g->Set(static_cast<double>(i));
        h->Record(static_cast<uint64_t>(p * kIters + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kProducers) * kIters);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kProducers) * kIters);
}

TEST(ObsConcurrencyTest, ConcurrentTraceRecordingAndSnapshots) {
  TraceRing ring(128);
  ring.set_enabled(true);
  constexpr int kProducers = 4;
  constexpr int kIters = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)ring.Snapshot();
      (void)ring.ToChromeTraceJson();
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kIters; ++i) {
        ring.Record("e", static_cast<uint64_t>(p) * kIters + i, 1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(ring.events_recorded(),
            static_cast<uint64_t>(kProducers) * kIters);
  EXPECT_EQ(ring.Snapshot().size(), 128u);
}

// ---------- ring buffer instrumentation ----------

TEST(RingBufferMetricsTest, CountsPushesPopsFailuresAndHwm) {
  MetricRegistry reg;
  const obs::RingBufferMetrics m = obs::RingBufferMetrics::Create(reg);
  RingBuffer<int> ring(3);  // usable capacity 3
  ring.AttachMetrics(&m);

  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_TRUE(ring.TryPush(3));
  EXPECT_FALSE(ring.TryPush(4));  // full
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_FALSE(ring.TryPop(&v));  // empty: not counted

  EXPECT_EQ(m.pushes->value(), 3u);
  EXPECT_EQ(m.push_failures->value(), 1u);
  EXPECT_EQ(m.pops->value(), 3u);
  EXPECT_DOUBLE_EQ(m.occupancy_hwm->value(), 3.0);
}

// ---------- stream source instrumentation ----------

TEST(SourceMetricsTest, TraceTupleSourceCountsProduction) {
  MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(1.0, 7);
  TraceTupleSource source(&trace);
  source.AttachMetrics(obs::SourceMetrics::Create(reg, "trace"));
  Tuple t;
  size_t n = 0;
  while (source.Next(&t)) ++n;
  EXPECT_EQ(n, trace.size());
  EXPECT_EQ(reg.GetCounter("streamop_source_tuples_total", "source=\"trace\"")
                ->value(),
            trace.size());
}

// ---------- end-to-end: runtimes populate the registry ----------

TEST(RuntimeMetricsTest, SingleQueryRunPopulatesOperatorAndRingMetrics) {
  MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(61.0, 42);
  auto cq = CompileQuery(
      "SELECT tb, srcIP, sum(len) FROM PKT GROUP BY time/20 as tb, srcIP",
      Catalog::Default(), {.seed = 1});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace, "q", &reg);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const std::string node = "node=\"q\"";
  EXPECT_EQ(reg.GetCounter("streamop_ring_pushes_total")->value(),
            trace.size());
  EXPECT_EQ(reg.GetCounter("streamop_ring_pops_total")->value(), trace.size());
  EXPECT_EQ(reg.GetCounter("streamop_operator_tuples_total", node)->value(),
            trace.size());
  EXPECT_GT(reg.GetCounter("streamop_operator_windows_total", node)->value(),
            0u);
  EXPECT_GT(reg.GetHistogram("streamop_node_batch_latency_ns", node)->count(),
            0u);
  EXPECT_GT(reg.GetHistogram("streamop_operator_flush_ns", node)->count(), 0u);
  EXPECT_GT(reg.GetGauge("streamop_operator_peak_groups", node)->value(), 0.0);

  // RunReport tuple totals agree with the registry counters.
  EXPECT_EQ(run->report.tuples_in, trace.size());
}

TEST(RuntimeMetricsTest, ThreadedRunOnTinyRingCountsRetries) {
  // A 2-slot ring guarantees the producer finds it full: the report (and
  // registry) must surface the overload instead of hiding it.
  MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 9);
  auto low = CompileQuery(
      "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
      "FROM PKT",
      Catalog::Default());
  auto high = CompileQuery("SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb",
                           Catalog::Default());
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  RuntimeOptions options;
  options.ring_capacity = 2;
  options.batch_size = 1;
  options.registry = &reg;
  TwoLevelRuntime rt(*low, {*high}, options);
  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->low.tuples_in, trace.size());
  EXPECT_GT(report->ring_producer_retries, 0u);
  EXPECT_GT(report->ring_push_failures, 0u);
  EXPECT_EQ(report->packets_dropped, 0u);  // default: retry, never drop
  EXPECT_GT(report->ring_occupancy_hwm, 0u);
  EXPECT_EQ(reg.GetCounter("streamop_runtime_producer_retries_total")->value(),
            report->ring_producer_retries);
}

TEST(RuntimeMetricsTest, DropOnOverloadAccountsForEveryPacket) {
  MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 13);
  auto low = CompileQuery(
      "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
      "FROM PKT",
      Catalog::Default());
  auto high = CompileQuery("SELECT tb, count(*) FROM PKT GROUP BY time/20 as tb",
                           Catalog::Default());
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  RuntimeOptions options;
  options.ring_capacity = 2;
  options.batch_size = 1;
  options.drop_on_overload = true;
  options.registry = &reg;
  TwoLevelRuntime rt(*low, {*high}, options);
  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Every packet is either consumed or counted as dropped — none vanish.
  EXPECT_EQ(report->low.tuples_in + report->packets_dropped, trace.size());
  EXPECT_EQ(reg.GetCounter("streamop_runtime_packets_dropped_total")->value(),
            report->packets_dropped);
}

TEST(RuntimeMetricsTest, SamplingQueryCountsSfunCallsAndZAdjustments) {
  // Subset-sum sampling drives the stateful-function counter (ssample is
  // called per admitted tuple) and, when the sampler overflows, the z
  // adjustment counter in the default registry.
  MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(59.0, 45);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKT
      WHERE ssample(len, 0, 2, 100, 10.0) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                         Catalog::Default(), {.seed = 4});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace, "ss", &reg);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const std::string node = "node=\"ss\"";
  EXPECT_GT(reg.GetCounter("streamop_operator_sfun_calls_total", node)->value(),
            0u);
  EXPECT_GT(
      reg.GetCounter("streamop_operator_cleaning_phases_total", node)->value(),
      0u);
  EXPECT_GT(reg.GetHistogram("streamop_operator_cleaning_ns", node)->count(),
            0u);
  // z adjustments go to the process-wide default registry (the SFUN package
  // has no per-operator handle).
  EXPECT_GT(MetricRegistry::Default()
                .GetCounter("streamop_sfun_z_adjustments_total")
                ->value(),
            0u);
}

}  // namespace
}  // namespace streamop
