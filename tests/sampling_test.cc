// Tests for src/sampling: threshold (subset-sum) sampling, reservoir
// variants, lossy counting, k-minimum-values sketches, and the uniform
// baselines — including parameterized statistical property sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/random.h"
#include "sampling/bernoulli.h"
#include "sampling/kmv.h"
#include "sampling/lossy_counting.h"
#include "sampling/priority.h"
#include "sampling/reservoir.h"
#include "sampling/subset_sum.h"
#include "sampling/threshold_core.h"

namespace streamop {
namespace {

// ---------- ThresholdSamplerCore ----------

TEST(ThresholdCoreTest, LargeItemsAlwaysSampledAtTrueWeight) {
  ThresholdSamplerCore core(100.0);
  ThresholdDecision d = core.Offer(150.0);
  EXPECT_TRUE(d.sampled);
  EXPECT_TRUE(d.was_large);
  EXPECT_DOUBLE_EQ(d.adjusted_weight, 150.0);
}

TEST(ThresholdCoreTest, SmallItemsSampledViaCounter) {
  ThresholdSamplerCore core(100.0);
  // 40+40+40 = 120 > 100 at the third item.
  EXPECT_FALSE(core.Offer(40.0).sampled);
  EXPECT_FALSE(core.Offer(40.0).sampled);
  ThresholdDecision d = core.Offer(40.0);
  EXPECT_TRUE(d.sampled);
  EXPECT_FALSE(d.was_large);
  EXPECT_DOUBLE_EQ(d.adjusted_weight, 100.0);  // adjusted up to z
  EXPECT_DOUBLE_EQ(core.counter(), 20.0);      // residual carries on
}

TEST(ThresholdCoreTest, EstimateWithinOneThresholdOfTruth) {
  // The counter-based scheme loses at most the final counter residue (< z).
  ThresholdSamplerCore core(500.0);
  double truth = 0.0, est = 0.0;
  Pcg64 rng(5);
  for (int i = 0; i < 10000; ++i) {
    double x = 40.0 + static_cast<double>(rng.NextBounded(1460));
    truth += x;
    ThresholdDecision d = core.Offer(x);
    if (d.sampled) est += d.adjusted_weight;
  }
  EXPECT_LE(std::fabs(truth - est), 500.0);
}

TEST(ThresholdCoreTest, SetZKeepsCounter) {
  ThresholdSamplerCore core(10.0);
  core.Offer(4.0);
  core.set_z(20.0);
  EXPECT_DOUBLE_EQ(core.counter(), 4.0);
  core.ResetCounter();
  EXPECT_DOUBLE_EQ(core.counter(), 0.0);
}

TEST(ZAdjustTest, ShrinksWhenUnderTarget) {
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 50, 100, 0), 50.0);
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 0, 100, 0), 1.0);  // floor 1/M
}

TEST(ZAdjustTest, GrowsWhenOverTarget) {
  // |S|=200, M=100, B=0: factor 2.
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 200, 100, 0), 200.0);
  // With B large items the raw shrink factor would be (200-50)/(100-50)=3,
  // but per-phase growth is capped at max(2, |S|/M) = 2 to avoid the
  // blow-up when B approaches M.
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 200, 100, 50), 200.0);
  // The cap scales with the overshoot: |S|=1000, M=100 allows up to 10x.
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 1000, 100, 50), 1000.0);
  // The explosive near-degenerate case stays bounded.
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 200, 100, 99), 200.0);
  // Never shrinks below z_old when |S| >= M.
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 100, 100, 0), 100.0);
}

TEST(ZAdjustTest, DegenerateTargets) {
  EXPECT_DOUBLE_EQ(AggressiveZAdjust(100.0, 10, 0, 0), 100.0);
}

// ---------- BasicSubsetSumSampler ----------

TEST(BasicSubsetSumTest, SampleSizeScalesInverselyWithZ) {
  Pcg64 rng(7);
  std::vector<double> weights;
  for (int i = 0; i < 20000; ++i) {
    weights.push_back(40.0 + static_cast<double>(rng.NextBounded(1460)));
  }
  // Both thresholds sit above the weight range, so every sample is a
  // "small" one and the counts scale as 1/z.
  BasicSubsetSumSampler<int> lo(2000.0), hi(20000.0);
  for (int i = 0; i < 20000; ++i) {
    lo.Offer(i, weights[static_cast<size_t>(i)]);
    hi.Offer(i, weights[static_cast<size_t>(i)]);
  }
  EXPECT_GT(lo.samples().size(), 5 * hi.samples().size());
}

TEST(BasicSubsetSumTest, PerColorSubsetSumsAccurate) {
  // R(C, x): 16 colors, estimate each color's sum from one joint sample.
  Pcg64 rng(11);
  constexpr int kColors = 16;
  std::vector<double> truth(kColors, 0.0);
  BasicSubsetSumSampler<int> sampler(300.0);
  for (int i = 0; i < 200000; ++i) {
    int color = static_cast<int>(rng.NextBounded(kColors));
    double x = 40.0 + static_cast<double>(rng.NextBounded(1460));
    truth[static_cast<size_t>(color)] += x;
    sampler.Offer(color, x);
  }
  std::vector<double> est(kColors, 0.0);
  for (const auto& ws : sampler.samples()) {
    est[static_cast<size_t>(ws.item)] += ws.adjusted_weight;
  }
  for (int c = 0; c < kColors; ++c) {
    EXPECT_NEAR(est[static_cast<size_t>(c)], truth[static_cast<size_t>(c)],
                0.05 * truth[static_cast<size_t>(c)])
        << "color " << c;
  }
}

TEST(BasicSubsetSumTest, ClearResets) {
  BasicSubsetSumSampler<int> s(10.0);
  s.Offer(1, 100.0);
  EXPECT_EQ(s.samples().size(), 1u);
  EXPECT_EQ(s.large_count(), 1u);
  s.Clear();
  EXPECT_TRUE(s.samples().empty());
  EXPECT_EQ(s.large_count(), 0u);
  EXPECT_DOUBLE_EQ(s.EstimateSum(), 0.0);
}

// ---------- DynamicSubsetSumSampler ----------

struct DynParam {
  uint64_t target;
  double beta;
};

class DynamicSubsetSumParamTest : public testing::TestWithParam<DynParam> {};

TEST_P(DynamicSubsetSumParamTest, SampleSizeControlAndAccuracy) {
  const DynParam p = GetParam();
  DynamicSubsetSumSampler<int>::Options opt;
  opt.target_samples = p.target;
  opt.beta = p.beta;
  opt.initial_z = 1.0;
  DynamicSubsetSumSampler<int> sampler(opt);

  Pcg64 rng(13);
  double truth = 0.0;
  const int kItems = 100000;
  for (int i = 0; i < kItems; ++i) {
    double x = 40.0 + static_cast<double>(rng.NextBounded(1460));
    truth += x;
    sampler.Offer(i, x);
    // Invariant: the retained sample never exceeds beta*N for long — one
    // Offer may land exactly one above the trigger before cleaning.
    EXPECT_LE(sampler.samples().size(),
              static_cast<size_t>(p.beta * static_cast<double>(p.target)) + 1);
  }
  SubsetSumWindowStats stats = sampler.EndWindow();
  EXPECT_LE(stats.final_sample_count, p.target);
  EXPECT_GT(stats.final_sample_count, p.target / 4);  // not degenerate
  EXPECT_GT(stats.cleaning_phases, 0u);
  EXPECT_NEAR(stats.estimated_sum, truth, 0.15 * truth);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DynamicSubsetSumParamTest,
                         testing::Values(DynParam{100, 2.0},
                                         DynParam{1000, 2.0},
                                         DynParam{1000, 1.5},
                                         DynParam{1000, 4.0},
                                         DynParam{5000, 2.0}));

TEST(DynamicSubsetSumTest, RelaxedCarryOverDividesThreshold) {
  DynamicSubsetSumSampler<int>::Options opt;
  opt.target_samples = 50;
  opt.initial_z = 1.0;
  opt.relaxed = true;
  opt.relax_factor = 10.0;
  DynamicSubsetSumSampler<int> sampler(opt);
  Pcg64 rng(17);
  for (int i = 0; i < 20000; ++i) {
    sampler.Offer(i, 40.0 + static_cast<double>(rng.NextBounded(1460)));
  }
  SubsetSumWindowStats stats = sampler.EndWindow();
  EXPECT_NEAR(sampler.z(), stats.final_z / 10.0, 1e-9);
}

TEST(DynamicSubsetSumTest, NonRelaxedCarriesThresholdUnchanged) {
  DynamicSubsetSumSampler<int>::Options opt;
  opt.target_samples = 50;
  opt.initial_z = 1.0;
  opt.relaxed = false;
  DynamicSubsetSumSampler<int> sampler(opt);
  Pcg64 rng(19);
  for (int i = 0; i < 20000; ++i) {
    sampler.Offer(i, 40.0 + static_cast<double>(rng.NextBounded(1460)));
  }
  SubsetSumWindowStats stats = sampler.EndWindow();
  EXPECT_DOUBLE_EQ(sampler.z(), stats.final_z);
}

TEST(DynamicSubsetSumTest, NonRelaxedUnderSamplesAfterLoadDrop) {
  // The Fig. 2/3 failure mode: a heavy window followed by a light one.
  DynamicSubsetSumSampler<int>::Options opt;
  opt.target_samples = 200;
  opt.initial_z = 1.0;
  opt.relaxed = false;
  DynamicSubsetSumSampler<int> nonrelaxed(opt);
  opt.relaxed = true;
  opt.relax_factor = 10.0;
  DynamicSubsetSumSampler<int> relaxed(opt);

  Pcg64 rng(23);
  auto run_window = [&](DynamicSubsetSumSampler<int>& s, int items) {
    for (int i = 0; i < items; ++i) {
      s.Offer(i, 40.0 + static_cast<double>(rng.NextBounded(1460)));
    }
    return s.EndWindow();
  };
  run_window(nonrelaxed, 200000);  // heavy window
  run_window(relaxed, 200000);
  SubsetSumWindowStats nr = run_window(nonrelaxed, 4000);  // 50x load drop
  SubsetSumWindowStats rx = run_window(relaxed, 4000);
  EXPECT_LT(nr.final_sample_count, rx.final_sample_count / 2);
}

TEST(DynamicSubsetSumTest, EstimateUnbiasedAcrossWindows) {
  DynamicSubsetSumSampler<int>::Options opt;
  opt.target_samples = 500;
  opt.initial_z = 1.0;
  opt.relaxed = true;
  DynamicSubsetSumSampler<int> sampler(opt);
  Pcg64 rng(29);
  double total_err = 0.0;
  int windows = 0;
  for (int w = 0; w < 10; ++w) {
    double truth = 0.0;
    for (int i = 0; i < 30000; ++i) {
      double x = 40.0 + static_cast<double>(rng.NextBounded(1460));
      truth += x;
      sampler.Offer(i, x);
    }
    SubsetSumWindowStats stats = sampler.EndWindow();
    total_err += (stats.estimated_sum - truth) / truth;
    ++windows;
  }
  // Mean signed relative error stays near zero (unbiasedness).
  EXPECT_LT(std::fabs(total_err / windows), 0.05);
}

// ---------- ReservoirControl / ReservoirSampler ----------

TEST(ReservoirControlTest, FirstNAlwaysAdmitted) {
  for (auto mode : {ReservoirControl::Mode::kPerRecord,
                    ReservoirControl::Mode::kSkip}) {
    ReservoirControl c(10, mode, 1);
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(c.Offer()) << "mode " << static_cast<int>(mode);
    }
  }
}

TEST(ReservoirControlTest, SkipModeAdmissionCountLogarithmic) {
  const uint64_t n = 100, N = 100000;
  ReservoirControl c(n, ReservoirControl::Mode::kSkip, 3);
  uint64_t admitted = 0;
  for (uint64_t i = 0; i < N; ++i) {
    if (c.Offer()) ++admitted;
  }
  // Expected admissions ~ n * (1 + ln(N/n)) ~ 100 * 7.9 ~ 790.
  double expected =
      static_cast<double>(n) *
      (1.0 + std::log(static_cast<double>(N) / static_cast<double>(n)));
  EXPECT_GT(admitted, expected * 0.5);
  EXPECT_LT(admitted, expected * 2.0);
}

TEST(ReservoirControlTest, ResetRestoresDeterminism) {
  ReservoirControl c(5, ReservoirControl::Mode::kSkip, 7);
  std::vector<bool> first;
  for (int i = 0; i < 1000; ++i) first.push_back(c.Offer());
  c.Reset();
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(c.Offer(), first[static_cast<size_t>(i)]);
}

class ReservoirUniformityTest
    : public testing::TestWithParam<ReservoirControl::Mode> {};

TEST_P(ReservoirUniformityTest, InclusionFrequenciesUniform) {
  // Every stream position should land in the final sample with equal
  // probability n/N; verify with a chi-square over many trials.
  const uint64_t n = 10, N = 200;
  const int kTrials = 4000;
  std::vector<uint64_t> inclusion(N, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<uint64_t> s(n, static_cast<uint64_t>(trial) + 1,
                                 GetParam());
    for (uint64_t i = 0; i < N; ++i) s.Offer(i);
    for (uint64_t v : s.sample()) ++inclusion[v];
  }
  // 199 dof; 99.99th percentile ~ 292. Use a generous bound.
  EXPECT_LT(ChiSquareUniform(inclusion), 300.0);
  // Every position was sampled at least once across 4000 trials.
  for (uint64_t i = 0; i < N; ++i) EXPECT_GT(inclusion[i], 0u) << i;
}

INSTANTIATE_TEST_SUITE_P(BothModes, ReservoirUniformityTest,
                         testing::Values(ReservoirControl::Mode::kPerRecord,
                                         ReservoirControl::Mode::kSkip));

TEST(ReservoirSamplerTest, SampleSizeNeverExceedsN) {
  ReservoirSampler<int> s(50, 9);
  for (int i = 0; i < 10000; ++i) {
    s.Offer(i);
    EXPECT_LE(s.sample().size(), 50u);
  }
  EXPECT_EQ(s.sample().size(), 50u);
  EXPECT_EQ(s.records_seen(), 10000u);
}

TEST(ReservoirSamplerTest, ShortStreamKeepsEverything) {
  ReservoirSampler<int> s(100, 9);
  for (int i = 0; i < 30; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 30u);
}

TEST(CandidateReservoirTest, WindowSampleHasTargetSize) {
  CandidateReservoir<int> r(100, 20.0, 31);
  for (int i = 0; i < 500000; ++i) r.Offer(i);
  std::vector<int> sample = r.EndWindow();
  EXPECT_EQ(sample.size(), 100u);
}

TEST(CandidateReservoirTest, CleaningTriggeredOnOverflow) {
  CandidateReservoir<int> r(10, 2.0, 37);  // tiny buffer: 20 candidates
  for (int i = 0; i < 100000; ++i) r.Offer(i);
  EXPECT_GT(r.stats().cleaning_phases, 0u);
  EXPECT_LE(r.candidates().size(), 20u);
  std::vector<int> sample = r.EndWindow();
  EXPECT_LE(sample.size(), 10u);
  EXPECT_EQ(r.candidates().size(), 0u);  // reset for next window
}

TEST(CandidateReservoirTest, EarlyPositionBiasIsReal) {
  // Documents a property of the paper's deferred-replacement scheme:
  // admission decays like n/t while survival is uniform, so early stream
  // positions are over-represented (EXPERIMENTS.md discusses this).
  const uint64_t n = 20, N = 2000;
  const int kTrials = 2000;
  uint64_t first_decile = 0, last_decile = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    CandidateReservoir<uint64_t> r(n, 4.0, static_cast<uint64_t>(trial) + 1);
    for (uint64_t i = 0; i < N; ++i) r.Offer(i);
    for (uint64_t v : r.EndWindow()) {
      if (v < N / 10) ++first_decile;
      if (v >= 9 * N / 10) ++last_decile;
    }
  }
  EXPECT_GT(first_decile, 2 * last_decile);
}

TEST(BackoffReservoirTest, WindowSampleHasTargetSize) {
  BackoffReservoir<int> r(100, 4.0, 31);
  for (int i = 0; i < 100000; ++i) r.Offer(i);
  EXPECT_GT(r.stats().cleaning_phases, 0u);
  EXPECT_LT(r.admission_probability(), 1.0);
  std::vector<int> sample = r.EndWindow();
  EXPECT_EQ(sample.size(), 100u);
  EXPECT_DOUBLE_EQ(r.admission_probability(), 1.0);  // reset per window
}

TEST(BackoffReservoirTest, ShortStreamKeepsEverything) {
  BackoffReservoir<int> r(100, 4.0, 33);
  for (int i = 0; i < 50; ++i) r.Offer(i);
  EXPECT_EQ(r.EndWindow().size(), 50u);
}

TEST(BackoffReservoirTest, InclusionIsUniform) {
  // The whole point of the backoff scheme: exact uniformity, in contrast
  // to CandidateReservoir's early-position bias.
  const uint64_t n = 20, N = 2000;
  const int kTrials = 4000;
  std::vector<uint64_t> inclusion(N, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    BackoffReservoir<uint64_t> r(n, 4.0, static_cast<uint64_t>(trial) + 1);
    for (uint64_t i = 0; i < N; ++i) r.Offer(i);
    for (uint64_t v : r.EndWindow()) ++inclusion[v];
  }
  // Compare first and last decile totals: uniform within a few percent.
  uint64_t first = 0, last = 0;
  for (uint64_t i = 0; i < N / 10; ++i) first += inclusion[i];
  for (uint64_t i = 9 * N / 10; i < N; ++i) last += inclusion[i];
  double ratio = static_cast<double>(first) / static_cast<double>(last);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
  // And a chi-square over all positions (1999 dof; 99.99th pct ~ 2290 for
  // this dof is far above; use mean-based bound ~ dof + 5*sqrt(2*dof)).
  EXPECT_LT(ChiSquareUniform(inclusion), 2000.0 + 5 * std::sqrt(2 * 1999.0));
}

TEST(CandidateReservoirTest, SampleElementsDistinct) {
  CandidateReservoir<int> r(50, 10.0, 41);
  for (int i = 0; i < 100000; ++i) r.Offer(i);
  std::vector<int> sample = r.EndWindow();
  std::sort(sample.begin(), sample.end());
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
              sample.end());
}

// ---------- LossyCounting ----------

TEST(LossyCountingTest, ExactWhenNoPruningNeeded) {
  LossyCounting<int> lc(0.1);  // bucket width 10
  for (int i = 0; i < 9; ++i) lc.Offer(7);
  EXPECT_EQ(lc.EstimateFrequency(7), 9u);
  EXPECT_EQ(lc.EstimateFrequency(8), 0u);
}

TEST(LossyCountingTest, NoFalseNegativesAtSupport) {
  // Guarantee: every element with true frequency >= s*N is returned.
  const double eps = 0.001, s = 0.01;
  LossyCounting<uint64_t> lc(eps);
  Pcg64 rng(43);
  ZipfDistribution zipf(1000, 1.2);
  std::map<uint64_t, uint64_t> truth;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    uint64_t e = zipf.Sample(rng);
    ++truth[e];
    lc.Offer(e);
  }
  auto result = lc.Query(s);
  std::set<uint64_t> reported;
  for (const auto& entry : result) reported.insert(entry.element);
  for (const auto& [e, f] : truth) {
    if (static_cast<double>(f) >= s * kN) {
      EXPECT_TRUE(reported.count(e) > 0) << "missed heavy hitter " << e;
    }
    // And nothing below (s - eps) * N is reported.
    if (static_cast<double>(f) < (s - eps) * kN) {
      EXPECT_TRUE(reported.count(e) == 0) << "false positive " << e;
    }
  }
}

TEST(LossyCountingTest, FrequencyUnderestimateBoundedByEpsN) {
  const double eps = 0.005;
  LossyCounting<uint64_t> lc(eps);
  Pcg64 rng(47);
  ZipfDistribution zipf(200, 1.0);
  std::map<uint64_t, uint64_t> truth;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    uint64_t e = zipf.Sample(rng);
    ++truth[e];
    lc.Offer(e);
  }
  for (const auto& [e, f] : truth) {
    uint64_t est = lc.EstimateFrequency(e);
    EXPECT_LE(est, f);  // lossy counting never overestimates
    if (est > 0) {
      EXPECT_GE(static_cast<double>(est),
                static_cast<double>(f) - eps * kN - 1);
    }
  }
}

class LossyCountingSpaceTest : public testing::TestWithParam<double> {};

TEST_P(LossyCountingSpaceTest, TableStaysSmall) {
  const double eps = GetParam();
  LossyCounting<uint64_t> lc(eps);
  Pcg64 rng(53);
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    lc.Offer(rng.NextBounded(100000));  // near-uniform: worst case
  }
  // Manku-Motwani bound: (1/eps) log(eps N).
  double bound = (1.0 / eps) * std::log(eps * kN) + 2.0 / eps;
  EXPECT_LT(static_cast<double>(lc.table_size()), bound);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, LossyCountingSpaceTest,
                         testing::Values(0.01, 0.005, 0.002));

TEST(LossyCountingTest, ClearResets) {
  LossyCounting<int> lc(0.1);
  lc.Offer(1);
  lc.Clear();
  EXPECT_EQ(lc.stream_length(), 0u);
  EXPECT_EQ(lc.table_size(), 0u);
  EXPECT_EQ(lc.current_bucket(), 1u);
}

// ---------- KMinHashSketch ----------

TEST(KmvTest, RetainsAtMostK) {
  KMinHashSketch sk(16);
  for (uint64_t i = 0; i < 1000; ++i) sk.Offer(i);
  EXPECT_EQ(sk.size(), 16u);
  auto vals = sk.MinValues();
  EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
}

TEST(KmvTest, DuplicatesDoNotGrowSketch) {
  KMinHashSketch sk(16);
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t i = 0; i < 8; ++i) sk.Offer(i);
  }
  EXPECT_EQ(sk.size(), 8u);
  EXPECT_DOUBLE_EQ(sk.EstimateDistinctCount(), 8.0);  // exact below k
}

class KmvDistinctCountTest : public testing::TestWithParam<uint64_t> {};

TEST_P(KmvDistinctCountTest, EstimateWithinRelativeError) {
  const uint64_t k = GetParam();
  KMinHashSketch sk(k);
  const uint64_t kDistinct = 50000;
  for (uint64_t i = 0; i < kDistinct; ++i) sk.Offer(i * 2654435761ULL);
  // KMV standard error ~ 1/sqrt(k-2); allow 5 sigma.
  double rel = 5.0 / std::sqrt(static_cast<double>(k) - 2.0);
  EXPECT_NEAR(sk.EstimateDistinctCount(), static_cast<double>(kDistinct),
              rel * static_cast<double>(kDistinct));
}

INSTANTIATE_TEST_SUITE_P(KSweep, KmvDistinctCountTest,
                         testing::Values(64, 256, 1024));

TEST(KmvTest, ResemblanceIdenticalSetsIsOne) {
  KMinHashSketch a(64), b(64);
  for (uint64_t i = 0; i < 10000; ++i) {
    a.Offer(i);
    b.Offer(i);
  }
  EXPECT_DOUBLE_EQ(a.EstimateResemblance(b), 1.0);
}

TEST(KmvTest, ResemblanceDisjointSetsIsZero) {
  KMinHashSketch a(64), b(64);
  for (uint64_t i = 0; i < 10000; ++i) {
    a.Offer(i);
    b.Offer(i + 1000000);
  }
  EXPECT_LT(a.EstimateResemblance(b), 0.05);
}

TEST(KmvTest, ResemblancePartialOverlapAccurate) {
  // |A| = |B| = 20000, |A ∩ B| = 10000 -> resemblance = 10000/30000 = 1/3.
  KMinHashSketch a(512), b(512);
  for (uint64_t i = 0; i < 20000; ++i) a.Offer(i);
  for (uint64_t i = 10000; i < 30000; ++i) b.Offer(i);
  EXPECT_NEAR(a.EstimateResemblance(b), 1.0 / 3.0, 0.08);
}

TEST(KmvTest, RarityEstimate) {
  // Half the distinct elements occur once, half occur 3 times.
  KMinHashSketch sk(256);
  for (uint64_t i = 0; i < 10000; ++i) sk.Offer(i);  // singletons
  for (uint64_t i = 10000; i < 20000; ++i) {
    sk.Offer(i);
    sk.Offer(i);
    sk.Offer(i);
  }
  EXPECT_NEAR(sk.EstimateRarity(), 0.5, 0.12);
}

TEST(KmvTest, EmptyAndClear) {
  KMinHashSketch sk(8);
  EXPECT_DOUBLE_EQ(sk.EstimateDistinctCount(), 0.0);
  EXPECT_DOUBLE_EQ(sk.EstimateRarity(), 0.0);
  sk.Offer(1);
  sk.Clear();
  EXPECT_EQ(sk.size(), 0u);
}

TEST(KmvTest, SketchesWithDifferentSeedsHashDifferently) {
  KMinHashSketch a(8, 1), b(8, 2);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Offer(i);
    b.Offer(i);
  }
  EXPECT_NE(a.MinValues(), b.MinValues());
}

// ---------- Bernoulli / Systematic ----------

TEST(BernoulliTest, KeepRateMatchesP) {
  BernoulliSampler<int> s(0.1, 59);
  for (int i = 0; i < 100000; ++i) s.Offer(i);
  double rate = static_cast<double>(s.sample().size()) / 100000.0;
  EXPECT_NEAR(rate, 0.1, 0.01);
  EXPECT_DOUBLE_EQ(s.InverseInclusionProbability(), 10.0);
}

TEST(BernoulliTest, HorvitzThompsonCountEstimate) {
  BernoulliSampler<int> s(0.25, 61);
  const int kN = 80000;
  for (int i = 0; i < kN; ++i) s.Offer(i);
  double est = static_cast<double>(s.sample().size()) *
               s.InverseInclusionProbability();
  EXPECT_NEAR(est, kN, 0.05 * kN);
}

TEST(SystematicTest, ExactOneInK) {
  SystematicSampler<int> s(10, 67);
  for (int i = 0; i < 1000; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 100u);
  // Consecutive kept elements are exactly k apart.
  for (size_t i = 1; i < s.sample().size(); ++i) {
    EXPECT_EQ(s.sample()[i] - s.sample()[i - 1], 10);
  }
}

TEST(SystematicTest, KZeroTreatedAsOne) {
  SystematicSampler<int> s(0, 67);
  for (int i = 0; i < 10; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 10u);
}

// ---------- PrioritySampler ----------

TEST(PriorityTest, KeepsAtMostK) {
  PrioritySampler<int> s(32, 71);
  for (int i = 0; i < 10000; ++i) s.Offer(i, 100.0);
  EXPECT_EQ(s.Samples().size(), 32u);
  EXPECT_GT(s.tau(), 0.0);
}

TEST(PriorityTest, FewItemsKeepsAll) {
  PrioritySampler<int> s(100, 73);
  for (int i = 0; i < 20; ++i) s.Offer(i, 5.0);
  EXPECT_EQ(s.Samples().size(), 20u);
  EXPECT_DOUBLE_EQ(s.tau(), 0.0);
  EXPECT_DOUBLE_EQ(s.EstimateSum(), 100.0);  // exact below k
}

TEST(PriorityTest, SumEstimateAccurateOnSkewedWeights) {
  Pcg64 rng(79);
  double mean_rel_err = 0.0;
  const int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    PrioritySampler<int> s(500, static_cast<uint64_t>(trial) * 13 + 1);
    double truth = 0.0;
    for (int i = 0; i < 50000; ++i) {
      double w = rng.NextPareto(1.5, 40.0);
      if (w > 100000.0) w = 100000.0;
      truth += w;
      s.Offer(i, w);
    }
    mean_rel_err += (s.EstimateSum() - truth) / truth;
  }
  EXPECT_LT(std::fabs(mean_rel_err / kTrials), 0.05);  // unbiased
}

}  // namespace
}  // namespace streamop
