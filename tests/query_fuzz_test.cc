// Parser/analyzer hardening: hostile and randomly mutated query texts must
// come back as error Statuses — never a crash, hang, or stack overflow.
// Runs under the ASan preset in CI, so any out-of-bounds access or leak on
// an error path fails loudly here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "query/query.h"

namespace streamop {
namespace {

Catalog TestCatalog() { return Catalog::Default(); }

// Compiling must always produce either a query or an error Status. The
// assertion is simply that we get *here* — no crash — plus, for inputs we
// know are invalid, that the result is an error rather than silent success.
void ExpectRejected(const std::string& sql) {
  auto cq = CompileQuery(sql, TestCatalog());
  EXPECT_FALSE(cq.ok()) << "accepted malformed query: " << sql;
}

TEST(QueryFuzzTest, DeeplyNestedParensReturnParseErrorNotStackOverflow) {
  // Well-formed but pathologically deep: 100k nesting levels would blow the
  // stack without the parser's depth guard.
  std::string sql = "SELECT ";
  sql.append(100000, '(');
  sql += "len";
  sql.append(100000, ')');
  sql += " FROM PKT";
  ExpectRejected(sql);

  // Unbalanced variant: deep opens, no closes.
  std::string open_only = "SELECT ";
  open_only.append(100000, '(');
  open_only += "len FROM PKT";
  ExpectRejected(open_only);
}

TEST(QueryFuzzTest, DeepUnaryChainsReturnParseError) {
  std::string nots = "SELECT len FROM PKT WHERE ";
  for (int i = 0; i < 100000; ++i) nots += "NOT ";
  nots += "len = 0";
  ExpectRejected(nots);

  std::string minuses = "SELECT ";
  minuses.append(100000, '-');
  minuses += "1 FROM PKT";
  ExpectRejected(minuses);
}

TEST(QueryFuzzTest, ModestNestingStillParses) {
  // The depth guard must not reject realistic queries.
  std::string sql = "SELECT ";
  sql.append(50, '(');
  sql += "len";
  sql.append(50, ')');
  sql += " FROM PKT";
  auto cq = CompileQuery(sql, TestCatalog());
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
}

TEST(QueryFuzzTest, TruncatedAndGarbageQueriesReturnErrors) {
  const char* cases[] = {
      "",
      ";",
      "SELECT",
      "SELECT FROM",
      "SELECT len",
      "SELECT len FROM",
      "SELECT len FROM PKT WHERE",
      "SELECT len FROM PKT GROUP BY",
      "SELECT len FROM PKT GROUP BY time/20 as tb HAVING",
      "SELECT len FROM PKT CLEANING",
      "SELECT len FROM PKT CLEANING WHEN",
      "FROM PKT SELECT len",
      "SELECT * FROM PKT",     // bare * outside an aggregate call
      "SELECT len FROM PKT )",
      "SELECT len, FROM PKT",
      "SELECT len FROM PKT WHERE len = ",
      "SELECT len FROM PKT WHERE = len",
      "SELECT len$ FROM PKT",  // $ outside a superaggregate call
      "SELECT len FROM NOT_A_STREAM",
      "SELECT no_such_column FROM PKT",
      "SELECT count(*) FROM PKT GROUP BY",
      "\0\0\0",
      "\xff\xfe garbage \x01",
      "SELECT 'unterminated FROM PKT",
      "SELECT \"len\" FROM PKT",
      "SELECT len FROM PKT;;;; SELECT len FROM PKT",
      "SELECT len/0e FROM PKT",
      "SELECT ((len) FROM PKT",
      "SELECT len)) FROM PKT",
  };
  for (const char* sql : cases) ExpectRejected(sql);
}

TEST(QueryFuzzTest, BadAggregateArgumentsReturnAnalysisErrors) {
  const char* cases[] = {
      // quantile's phi must be a numeric literal.
      "SELECT tb, quantile(len, 'half') FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, quantile(len, srcIP) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, quantile(len) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, quantile(len, 1.5) FROM PKT GROUP BY time/20 as tb",
      // kth_smallest's k must be an integer literal.
      "SELECT tb, kth_smallest(len, 'first') FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, kth_smallest(len, 0.5) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, kth_smallest(len, len) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, kth_smallest(len, 0) FROM PKT GROUP BY time/20 as tb",
      // Wrong arities and star misuse.
      "SELECT tb, sum(*) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, sum() FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, sum(len, len) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, count(len, len) FROM PKT GROUP BY time/20 as tb",
      "SELECT tb, no_such_fn(len) FROM PKT GROUP BY time/20 as tb",
      // Aggregates in illegal positions.
      "SELECT len FROM PKT WHERE sum(len) > 10",
      "SELECT tb FROM PKT GROUP BY sum(len) as tb",
  };
  for (const char* sql : cases) ExpectRejected(sql);
}

// Seeded random mutation fuzzing: start from valid queries and apply byte
// edits. Mutants may or may not compile — the only contract is that the
// compiler returns instead of crashing.
TEST(QueryFuzzTest, RandomByteMutationsNeverCrashTheCompiler) {
  const std::vector<std::string> seeds = {
      "SELECT time, srcIP, destIP, len FROM PKT WHERE len > 100",
      "SELECT tb, srcIP, count(*), sum$(len), count$(*) FROM PKT "
      "GROUP BY time/60 as tb, srcIP "
      "CLEANING WHEN count(*) % 100 = 0 CLEANING BY count(*) < 2",
      "SELECT tb, quantile(len, 0.5), kth_smallest(len, 3) FROM PKT "
      "GROUP BY time/20 as tb HAVING count(*) > 1",
      "SELECT tb, sum(len) FROM PKT WHERE proto = 6 AND NOT (srcPort = 80 "
      "OR destPort = 80) GROUP BY time/20 as tb SUPERGROUP BY tb",
  };
  Pcg64 rng(0xf022ULL, 0xbadc0deULL);
  const char kBytes[] =
      " \t\n()*$,;'\"=<>!%/+-0123456789abcXYZ_\x00\x7f\xff";
  for (int iter = 0; iter < 4000; ++iter) {
    std::string sql = seeds[rng.NextBounded(seeds.size())];
    int edits = 1 + static_cast<int>(rng.NextBounded(8));
    for (int e = 0; e < edits && !sql.empty(); ++e) {
      size_t pos = rng.NextBounded(sql.size());
      switch (rng.NextBounded(3)) {
        case 0:  // replace
          sql[pos] = kBytes[rng.NextBounded(sizeof(kBytes) - 1)];
          break;
        case 1:  // insert
          sql.insert(pos, 1, kBytes[rng.NextBounded(sizeof(kBytes) - 1)]);
          break;
        default:  // delete a span
          sql.erase(pos, 1 + rng.NextBounded(4));
          break;
      }
    }
    auto cq = CompileQuery(sql, TestCatalog());
    // Reaching this line is the assertion; use the result so it can't be
    // optimized away.
    (void)cq.ok();
  }
}

TEST(QueryFuzzTest, RandomTokenSoupNeverCrashesTheCompiler) {
  const std::vector<std::string> tokens = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "HAVING", "CLEANING",
      "WHEN",   "AND",   "OR",     "NOT",    "AS",    "PKT",    "len",
      "srcIP",  "time",  "count",  "sum",    "min",   "max",    "(",
      ")",      "*",     ",",      "/",      "+",     "-",      "=",
      "<",      ">",     "'str'",  "0.5",    "42",    "$",      ";",
  };
  Pcg64 rng(0xf055ULL, 0x50abULL);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string sql;
    int n = 1 + static_cast<int>(rng.NextBounded(24));
    for (int i = 0; i < n; ++i) {
      sql += tokens[rng.NextBounded(tokens.size())];
      sql += ' ';
    }
    auto cq = CompileQuery(sql, TestCatalog());
    (void)cq.ok();
  }
}

}  // namespace
}  // namespace streamop
