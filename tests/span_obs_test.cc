// Tests for the causal-span / profiler / exemplar observability pillar
// (src/obs/span.h, src/obs/profiler.h, src/obs/exemplar.h): SpanRing
// mechanics and exports, phase-cycle accounting and the SIGPROF sampler,
// exemplar reservoirs, ring wraparound under concurrent export (TSan
// coverage via the ObsConcurrencyTest.* names), and end-to-end span
// parent/child integrity across window boundaries through the operator.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/sampling_operator.h"
#include "obs/exemplar.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace_ring.h"
#include "tuple/tuple_batch.h"

namespace streamop {
namespace {

using obs::Exemplar;
using obs::ExemplarStore;
using obs::Profiler;
using obs::SpanContext;
using obs::SpanRecord;
using obs::SpanRing;
using obs::TraceRing;

// ---------- SpanRing mechanics ----------

TEST(SpanRingTest, EmitRoundTripsEveryField) {
  SpanRing ring(16);
  ring.set_enabled(true);
  SpanRecord r;
  r.name = "admission";
  r.parent_id = 7;
  r.window_seq = 3;
  r.ts_ns = 1000;
  r.dur_ns = 250;
  r.rows = 512;
  r.admitted = 480;
  r.shed_p = 0.25;
  r.max_weight = 4.0;
  const uint64_t id = ring.Emit(r);
  ASSERT_NE(id, 0u);

  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "admission");
  EXPECT_EQ(spans[0].span_id, id);
  EXPECT_EQ(spans[0].parent_id, 7u);
  EXPECT_EQ(spans[0].window_seq, 3u);
  EXPECT_EQ(spans[0].ts_ns, 1000u);
  EXPECT_EQ(spans[0].dur_ns, 250u);
  EXPECT_EQ(spans[0].rows, 512u);
  EXPECT_EQ(spans[0].admitted, 480u);
  EXPECT_DOUBLE_EQ(spans[0].shed_p, 0.25);
  EXPECT_DOUBLE_EQ(spans[0].max_weight, 4.0);
}

TEST(SpanRingTest, NextIdIsUniqueAndEmitHonorsPreallocatedIds) {
  SpanRing ring(16);
  ring.set_enabled(true);
  const uint64_t a = ring.NextId();
  const uint64_t b = ring.NextId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);

  SpanRecord r;
  r.name = "window";
  r.span_id = a;  // pre-allocated at window open
  EXPECT_EQ(ring.Emit(r), a);

  r.span_id = 0;  // fresh draw must not collide with a or b
  const uint64_t c = ring.Emit(r);
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
}

TEST(SpanRingTest, DisabledRingRecordsNothing) {
  SpanRing ring(16);
  SpanRecord r;
  r.name = "flush";
  EXPECT_EQ(ring.Emit(r), 0u);
  EXPECT_EQ(ring.spans_recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(SpanRingTest, WraparoundKeepsAtMostCapacitySpans) {
  SpanRing ring(8);
  ring.set_enabled(true);
  for (uint64_t i = 0; i < 20; ++i) {
    SpanRecord r;
    r.name = "flush";
    r.ts_ns = i;
    ring.Emit(r);
  }
  EXPECT_EQ(ring.spans_recorded(), 20u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.Snapshot().size(), 8u);
}

TEST(SpanRingTest, WindowJsonFiltersBySequence) {
  SpanRing ring(16);
  ring.set_enabled(true);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    SpanRecord r;
    r.name = "flush";
    r.window_seq = seq;
    r.ts_ns = seq * 100;
    ring.Emit(r);
  }
  const std::string two = ring.WindowJson(2);
  EXPECT_NE(two.find("\"window_seq\": 2"), std::string::npos);
  EXPECT_EQ(two.find("\"window_seq\": 1,"), std::string::npos);
  EXPECT_EQ(two.find("\"window_seq\": 3,"), std::string::npos);
  // A sequence never seen renders an empty list, still valid JSON.
  EXPECT_NE(ring.WindowJson(99).find("\"spans\": []"), std::string::npos);
}

TEST(SpanRingTest, JsonExportsAreWellFormedWhenEmptyAndWhenFull) {
  SpanRing ring(4);
  EXPECT_NE(ring.ToJson().find("\"spans\": []"), std::string::npos);
  EXPECT_NE(ring.ToChromeTraceJson().find("\"traceEvents\": ["),
            std::string::npos);

  ring.set_enabled(true);
  SpanRecord r;
  r.name = "batch_select";
  r.window_seq = 5;
  ring.Emit(r);
  const std::string chrome = ring.ToChromeTraceJson();
  EXPECT_NE(chrome.find("\"name\": \"batch_select\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"window_seq\": 5"), std::string::npos);
}

// ---------- Profiler ----------

TEST(ProfilerTest, PhaseNamesCoverEveryPhase) {
  for (uint32_t p = 0; p < Profiler::kNumPhases; ++p) {
    EXPECT_STRNE(Profiler::PhaseName(p), nullptr);
    EXPECT_STRNE(Profiler::PhaseName(p), "");
  }
}

TEST(ProfilerTest, PhaseCyclesAccumulateAndExport) {
  Profiler prof;
  EXPECT_FALSE(prof.phase_accounting_enabled());
  prof.set_phase_accounting(true);
  EXPECT_TRUE(prof.phase_accounting_enabled());
  prof.AddPhaseCycles(Profiler::kAdmission, 100);
  prof.AddPhaseCycles(Profiler::kAdmission, 50);
  prof.AddPhaseCycles(Profiler::kFlush, 7);
  prof.AddPhaseCycles(Profiler::kNumPhases, 999);  // out of range: dropped
  EXPECT_EQ(prof.phase_cycles(Profiler::kAdmission), 150u);
  EXPECT_EQ(prof.phase_cycles(Profiler::kFlush), 7u);
  EXPECT_EQ(prof.phase_cycles(Profiler::kNumPhases), 0u);

  const std::string json = prof.PhasesJson();
  EXPECT_NE(json.find("\"phase_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"admission\": 150"), std::string::npos);
  EXPECT_NE(json.find("\"ring_drain\""), std::string::npos);
  EXPECT_NE(json.find("\"quality_report\""), std::string::npos);
}

TEST(ProfilerTest, OnlyOneProfilerRunsAtATime) {
  Profiler a;
  Profiler b;
  ASSERT_TRUE(a.Start().ok());
  EXPECT_TRUE(a.running());
  EXPECT_TRUE(a.Start().ok());  // idempotent on the same instance
  EXPECT_FALSE(b.Start().ok());  // the handler targets one process-wide
  a.Stop();
  a.Stop();  // idempotent
  EXPECT_FALSE(a.running());
  EXPECT_TRUE(b.Start().ok());  // slot freed
  b.Stop();
}

TEST(ProfilerTest, SamplerCapturesStacksAndFoldsThem) {
  Profiler prof;
  ASSERT_TRUE(prof.Start().ok());
  // ITIMER_PROF counts consumed CPU time, so burn some; at 97 Hz a few
  // tens of milliseconds of CPU yields samples.
  volatile uint64_t sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (prof.samples_recorded() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i) * i;
  }
  prof.Stop();
  ASSERT_GT(prof.samples_recorded(), 0u) << "no SIGPROF samples after 10s";

  const std::string folded = prof.Folded(0);
  ASSERT_FALSE(folded.empty());
  // Every line is "frame[;frame...] count".
  const size_t nl = folded.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const std::string line = folded.substr(0, nl);
  const size_t sp = line.rfind(' ');
  ASSERT_NE(sp, std::string::npos);
  EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u);
}

// ---------- ExemplarStore ----------

TEST(ExemplarStoreTest, LatencyBandsAreMonotonic) {
  uint32_t prev = 0;
  for (uint64_t ns = 1; ns < (1ULL << 40); ns *= 2) {
    const uint32_t band = ExemplarStore::LatencyBand(ns);
    ASSERT_LT(band, ExemplarStore::kLatencyBands);
    EXPECT_GE(band, prev) << "ns=" << ns;
    prev = band;
  }
  for (uint32_t b = 1; b + 1 < ExemplarStore::kLatencyBands; ++b) {
    EXPECT_GT(ExemplarStore::LatencyBandUpperNs(b),
              ExemplarStore::LatencyBandUpperNs(b - 1));
  }
  EXPECT_EQ(ExemplarStore::LatencyBandUpperNs(ExemplarStore::kLatencyBands - 1),
            UINT64_MAX);
  // A latency inside band b must not exceed the band's upper bound.
  const uint64_t probe = 123456;
  const uint32_t band = ExemplarStore::LatencyBand(probe);
  EXPECT_LE(probe, ExemplarStore::LatencyBandUpperNs(band));
  if (band > 0) EXPECT_GT(probe, ExemplarStore::LatencyBandUpperNs(band - 1));
}

TEST(ExemplarStoreTest, DisabledStoreDropsOffers) {
  ExemplarStore store;
  Exemplar e;
  e.value = 1.0;
  store.Offer(ExemplarStore::kShedDrop, e);
  store.OfferLatency(5000, e);
  EXPECT_EQ(store.offered(ExemplarStore::kShedDrop), 0u);
  for (uint32_t b = 0; b < ExemplarStore::kLatencyBands; ++b) {
    EXPECT_EQ(store.latency_offered(b), 0u);
  }
}

TEST(ExemplarStoreTest, ReservoirCapsAtSlotsButCountsEveryOffer) {
  ExemplarStore store;
  store.set_enabled(true);
  for (uint64_t i = 0; i < 100; ++i) {
    Exemplar e;
    e.ts_ns = i;
    e.value = static_cast<double>(i);
    e.dims = {i, i + 1, 0, 0};
    e.ndims = 2;
    store.Offer(ExemplarStore::kLateTuple, e);
  }
  EXPECT_EQ(store.offered(ExemplarStore::kLateTuple), 100u);
  std::vector<Exemplar> kept = store.Snapshot(ExemplarStore::kLateTuple);
  EXPECT_EQ(kept.size(), ExemplarStore::kSlotsPerReservoir);
  for (const Exemplar& e : kept) EXPECT_LT(e.ts_ns, 100u);
}

TEST(ExemplarStoreTest, LatencyOffersLandInTheirBand) {
  ExemplarStore store;
  store.set_enabled(true);
  const uint64_t lat_ns = 5000;  // 5us
  Exemplar e;
  e.window_seq = 9;
  store.OfferLatency(lat_ns, e);
  const uint32_t band = ExemplarStore::LatencyBand(lat_ns);
  EXPECT_EQ(store.latency_offered(band), 1u);
  std::vector<Exemplar> kept = store.LatencySnapshot(band);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].value, static_cast<double>(lat_ns));  // stamped
  EXPECT_EQ(kept[0].window_seq, 9u);
}

TEST(ExemplarStoreTest, ToJsonListsEveryBandAndCounter) {
  ExemplarStore store;
  store.set_enabled(true);
  Exemplar e;
  e.value = 0.5;
  store.Offer(ExemplarStore::kShedDrop, e);
  store.OfferLatency(2000, e);
  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"latency_bands\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_drop\""), std::string::npos);
  EXPECT_NE(json.find("\"late_tuple\""), std::string::npos);
  EXPECT_NE(json.find("\"malformed\""), std::string::npos);
  EXPECT_NE(json.find("\"offered\": 1"), std::string::npos);
}

// ---------- concurrency (run under TSan via the ObsConcurrency name) ----

TEST(ObsConcurrencyTest, TraceRingWraparoundDuringConcurrentExport) {
  // A ring far smaller than the write volume, so every writer wraps many
  // times while a reader exports: the slot stores must never race the
  // snapshot loads (torn events are filtered, not UB).
  TraceRing ring(64);
  ring.set_enabled(true);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<obs::TraceEvent> snap = ring.Snapshot();
      EXPECT_LE(snap.size(), ring.capacity());
      const std::string json = ring.ToChromeTraceJson();
      EXPECT_NE(json.find("traceEvents"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        if (i % 7 == 0) {
          ring.Instant("wrap_i", static_cast<uint64_t>(w) * kPerWriter + i,
                       "z", static_cast<double>(i));
        } else {
          ring.Record("wrap_x", static_cast<uint64_t>(w) * kPerWriter + i, 5);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.events_recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(ring.Snapshot().size(), ring.capacity());
}

TEST(ObsConcurrencyTest, SpanRingEmitRacesEveryExportPath) {
  SpanRing ring(64);
  ring.set_enabled(true);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<SpanRecord> snap = ring.Snapshot();
      EXPECT_LE(snap.size(), ring.capacity());
      ring.ToJson();
      ring.ToChromeTraceJson();
      ring.WindowJson(1);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        SpanRecord r;
        r.name = (i % 2 == 0) ? "admission" : "flush";
        r.parent_id = static_cast<uint64_t>(w) + 1;
        r.window_seq = static_cast<uint64_t>(i % 3) + 1;
        r.ts_ns = static_cast<uint64_t>(w) * kPerWriter + i;
        r.dur_ns = 3;
        r.rows = static_cast<uint64_t>(i);
        ring.Emit(r);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(ring.spans_recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

// ---------- end-to-end span integrity through the operator ----------

// Test schema: S(t increasing, k, v) — same shape operator_test uses.
SchemaPtr TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<Field>{{"t", FieldType::kUInt, Ordering::kIncreasing},
                              {"k", FieldType::kUInt, Ordering::kNone},
                              {"v", FieldType::kUInt, Ordering::kNone}});
}

Tuple Row(uint64_t t, uint64_t k, uint64_t v) {
  return Tuple({Value::UInt(t), Value::UInt(k), Value::UInt(v)});
}

// SELECT tb, k, sum(v) FROM S GROUP BY t/10 as tb, k.
std::shared_ptr<SamplingQueryPlan> MakePlan() {
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};
  AggregateSpec sum_spec;
  sum_spec.kind = AggregateKind::kSum;
  sum_spec.arg = Expr::InputRef("v", 2);
  sum_spec.display = "sum(v)";
  plan->aggregates = {sum_spec};
  plan->select_exprs = {Expr::GroupByRef("tb", 0), Expr::GroupByRef("k", 1),
                        Expr::AggregateRef(0)};
  plan->output_names = {"tb", "k", "sum_v"};
  return plan;
}

// Indexes the "window" root spans by sequence and checks the invariants
// every closed window must satisfy; returns the roots for further asserts.
std::map<uint64_t, SpanRecord> CheckIntegrity(
    const std::vector<SpanRecord>& spans, uint64_t expect_windows) {
  std::map<uint64_t, SpanRecord> roots;
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) != "window") continue;
    EXPECT_EQ(s.parent_id, 0u) << "window roots must be roots";
    EXPECT_NE(s.span_id, 0u);
    EXPECT_TRUE(roots.emplace(s.window_seq, s).second)
        << "duplicate window root for seq " << s.window_seq;
  }
  EXPECT_EQ(roots.size(), expect_windows);
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == "window") continue;
    if (s.window_seq == 0) {
      ADD_FAILURE() << s.name << " span outside any window";
      continue;
    }
    auto it = roots.find(s.window_seq);
    if (it == roots.end()) {
      ADD_FAILURE() << s.name << " references unknown window " << s.window_seq;
      continue;
    }
    const SpanRecord& root = it->second;
    EXPECT_EQ(s.parent_id, root.span_id)
        << s.name << " must parent under its window root";
    // The root covers open -> flush. Window-scoped phases start within it;
    // batch-level spans (batch_select/admission/ring_drain) may begin
    // before the window they end up attributed to was opened.
    const std::string name = s.name;
    if (name == "clean" || name == "flush" || name == "quality_report") {
      EXPECT_GE(s.ts_ns, root.ts_ns) << name;
      EXPECT_LE(s.ts_ns, root.ts_ns + root.dur_ns) << name;
    }
  }
  return roots;
}

TEST(SpanIntegrityTest, RowPathParentsEveryPhaseUnderItsWindow) {
  SpanRing ring(256);
  ring.set_enabled(true);
  SamplingOperator op(MakePlan());
  op.set_span_ring(&ring);
  // Three windows: t in [0,10), [10,20), [20,30).
  for (uint64_t t : {1u, 5u, 9u, 12u, 15u, 21u}) {
    ASSERT_TRUE(op.Process(Row(t, t % 2, t)).ok());
  }
  ASSERT_TRUE(op.FinishStream().ok());
  EXPECT_EQ(op.window_seq(), 3u);

  std::vector<SpanRecord> spans = ring.Snapshot();
  std::map<uint64_t, SpanRecord> roots = CheckIntegrity(spans, 3);
  // Sequences are 1-based and contiguous.
  EXPECT_TRUE(roots.count(1) && roots.count(2) && roots.count(3));
  // Each lifecycle recorded at least its flush phase.
  std::map<uint64_t, int> flushes;
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == "flush") ++flushes[s.window_seq];
  }
  EXPECT_EQ(flushes.size(), 3u);
}

TEST(SpanIntegrityTest, BatchPathReportsContextAndParentsPhaseSpans) {
  SpanRing ring(256);
  ring.set_enabled(true);
  Profiler prof;
  prof.set_phase_accounting(true);
  SamplingOperator op(MakePlan());
  op.set_span_ring(&ring);
  op.set_profiler(&prof);

  // One batch straddling two window boundaries (t/10: 0 -> 1 -> 2).
  TupleBatch batch(3, 32);
  for (uint64_t t : {1u, 2u, 9u, 11u, 15u, 22u, 25u}) {
    batch.AppendTuple(Row(t, t % 3, t));
  }
  SpanContext ctx;
  ctx.shed_p = 0.5;
  ctx.rows = batch.num_rows();
  ASSERT_TRUE(op.ProcessBatch(batch, 2.0, &ctx).ok());
  // Back-report: the batch last fed window 3, whose root id is already
  // reserved (the window is still open).
  EXPECT_EQ(ctx.window_seq, 3u);
  EXPECT_NE(ctx.window_span_id, 0u);
  ASSERT_TRUE(op.FinishStream().ok());

  std::vector<SpanRecord> spans = ring.Snapshot();
  std::map<uint64_t, SpanRecord> roots = CheckIntegrity(spans, 3);
  EXPECT_EQ(roots[3].span_id, ctx.window_span_id);

  int batch_selects = 0, admissions = 0;
  for (const SpanRecord& s : spans) {
    const std::string name = s.name;
    if (name == "batch_select") {
      ++batch_selects;
      EXPECT_EQ(s.rows, 7u);
      EXPECT_DOUBLE_EQ(s.shed_p, 0.5);  // threaded from the SpanContext
    } else if (name == "admission") {
      ++admissions;
    }
  }
  EXPECT_EQ(batch_selects, 1);
  EXPECT_EQ(admissions, 1);
  // Phase accounting saw the batch phases tick.
  EXPECT_GT(prof.phase_cycles(Profiler::kBatchSelect), 0u);
  EXPECT_GT(prof.phase_cycles(Profiler::kAdmission), 0u);
  EXPECT_GT(prof.phase_cycles(Profiler::kFlush), 0u);
}

TEST(SpanIntegrityTest, SpansDisabledLeavesRingEmptyAndContextZero) {
  SpanRing ring(16);  // never enabled
  SamplingOperator op(MakePlan());
  op.set_span_ring(&ring);
  TupleBatch batch(3, 8);
  batch.AppendTuple(Row(1, 1, 1));
  SpanContext ctx;
  ctx.rows = 1;
  ASSERT_TRUE(op.ProcessBatch(batch, 1.0, &ctx).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  EXPECT_EQ(ring.spans_recorded(), 0u);
  EXPECT_EQ(ctx.window_span_id, 0u);  // no root reserved when disabled
  EXPECT_EQ(ctx.window_seq, 1u);      // the lifecycle count still advances
}

}  // namespace
}  // namespace streamop
