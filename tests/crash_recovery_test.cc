// Crash-recovery tests (DESIGN.md §10): a forked child runs the two-level
// pipeline with checkpointing and is SIGKILLed mid-stream — no atexit
// hooks, no flushes, a real crash. A fresh runtime pointed at the same
// checkpoint dir must restore the newest valid snapshot and, replaying the
// same trace, produce output byte-identical to what an uninterrupted run
// emits for the post-snapshot windows.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"
#include "stream/fault_injection.h"

namespace streamop {
namespace {

namespace fs = std::filesystem;

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

constexpr char kAggQuery[] =
    "SELECT tb, srcIP, count(*), sum(len) FROM PKT GROUP BY time/5 as tb, "
    "srcIP";

// The paper's dynamic subset-sum query: sampler state (threshold z, RNG,
// per-group partials) must survive the crash for the estimates to land.
constexpr char kSubsetSumQuery[] = R"(
    SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
    FROM PKTS
    WHERE ssample(len, 500, 2, 10) = TRUE
    GROUP BY time/5 as tb, srcIP, destIP, ts_ns
    HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
    CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
    CLEANING BY ssclean_with(sum(len)) = TRUE
)";

std::vector<std::string> RowsAsStrings(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string s;
    for (size_t i = 0; i < t.size(); ++i) {
      s += t[i].ToString();
      s += '\t';
    }
    out.push_back(std::move(s));
  }
  return out;
}

RuntimeOptions CheckpointedOptions(const std::string& dir) {
  RuntimeOptions opt;
  opt.checkpoint.dir = dir;
  opt.checkpoint.every_n_windows = 1;
  return opt;
}

size_t CountSnapshots(const fs::path& dir) {
  if (!fs::exists(dir)) return 0;
  size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.find(".ckpt.") != std::string::npos &&
        name.rfind(".tmp") == std::string::npos) {
      ++n;
    }
  }
  return n;
}

// Forks a child that runs the checkpointed pipeline (throttled so windows
// flush over wall-clock seconds), waits for `kill_after_snapshots`
// snapshot files, then SIGKILLs it. Returns false if the child finished
// before it could be killed (the caller should treat that as a skip, not a
// failure — it means the machine outran the throttle).
bool RunChildAndKill(const Trace& trace, const std::string& high_sql,
                     const fs::path& dir, size_t kill_after_snapshots) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: run to completion unless killed. Everything is stack-local;
    // SIGKILL means no destructors, no fsync beyond the checkpoints' own.
    auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
    auto high = CompileQuery(high_sql, Catalog::Default(), {.seed = 3});
    if (!low.ok() || !high.ok()) _exit(3);
    RuntimeOptions opt = CheckpointedOptions(dir.string());
    // Throttle the consumer so the ~6 windows take a few seconds: the
    // parent kills us long before the final window.
    ConsumerStallSpec stall;
    stall.stall_at_batch = 0;
    stall.per_batch_ms = 4;
    opt.consumer_stall_hook = MakeConsumerStallHook(stall);
    TwoLevelRuntime rt(*low, {*high}, opt);
    auto report = rt.RunThreaded(trace);
    _exit(report.ok() ? 0 : 4);
  }

  // Parent: wait for enough snapshots, then kill without warning.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool killed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (CountSnapshots(dir) >= kill_after_snapshots) {
      ::kill(pid, SIGKILL);
      killed = true;
      break;
    }
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) {
      return false;  // child finished before we could kill it
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!killed) ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return killed && WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("crash_" + std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

void ExpectRecoveredSuffixMatchesReference(const Trace& trace,
                                           const std::string& high_sql,
                                           const fs::path& dir) {
  // Reference: the same queries, same seed, uninterrupted, no checkpoints.
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(high_sql, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok()) << low.status().ToString();
  ASSERT_TRUE(high.ok()) << high.status().ToString();
  std::vector<std::string> reference;
  {
    TwoLevelRuntime ref(*low, {*high});
    auto report = ref.Run(trace);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    reference = RowsAsStrings(ref.high_node(0).DrainOutput());
  }

  // Recovery: restore from the killed run's snapshots and replay.
  TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(dir.string()));
  ASSERT_TRUE(rt.recovered()) << "no valid snapshot was restored";
  const uint64_t watermark = rt.recovered_windows();
  EXPECT_GE(watermark, 1u);
  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->recovered);
  EXPECT_EQ(report->recovered_windows, watermark);
  EXPECT_EQ(report->checkpoint_corrupt_skipped, 0u);

  // The recovered run emits exactly the windows flushed after the restored
  // snapshot; determinism makes them byte-identical to the reference's
  // suffix. (Windows before the watermark were emitted by the killed
  // child before it died — at-most-once output, never duplicated here.)
  const std::vector<std::string> recovered =
      RowsAsStrings(rt.high_node(0).DrainOutput());
  ASSERT_LE(recovered.size(), reference.size());
  const std::vector<std::string> ref_tail(reference.end() - recovered.size(),
                                          reference.end());
  EXPECT_EQ(recovered, ref_tail);
}

TEST_F(CrashRecoveryTest, SigkillThenResumeAggregation) {
  Trace trace = TraceGenerator::MakeResearchFeed(30.0, 42);
  if (!RunChildAndKill(trace, kAggQuery, dir_, 2)) {
    GTEST_SKIP() << "child completed before SIGKILL; machine too fast for "
                    "the throttle";
  }
  ASSERT_GE(CountSnapshots(dir_), 1u);
  ExpectRecoveredSuffixMatchesReference(trace, kAggQuery, dir_);
}

TEST_F(CrashRecoveryTest, SigkillThenResumeSubsetSumSampling) {
  Trace trace = TraceGenerator::MakeResearchFeed(30.0, 42);
  if (!RunChildAndKill(trace, kSubsetSumQuery, dir_, 2)) {
    GTEST_SKIP() << "child completed before SIGKILL; machine too fast for "
                    "the throttle";
  }
  ExpectRecoveredSuffixMatchesReference(trace, kSubsetSumQuery, dir_);
}

TEST_F(CrashRecoveryTest, RecoveredEstimatesTrackGroundTruth) {
  // Quality gate on the recovered run: per-window subset-sum estimates for
  // the recovered windows stay within the same error envelope the paper's
  // operator delivers uninterrupted (±10% of true bytes per window).
  Trace trace = TraceGenerator::MakeResearchFeed(30.0, 42);
  if (!RunChildAndKill(trace, kSubsetSumQuery, dir_, 2)) {
    GTEST_SKIP() << "child completed before SIGKILL";
  }
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kSubsetSumQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());
  TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(dir_.string()));
  ASSERT_TRUE(rt.recovered());
  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto truth = trace.BytesPerWindow(5);
  std::vector<double> est(truth.size(), 0.0);
  std::vector<bool> seen(truth.size(), false);
  for (const Tuple& t : rt.high_node(0).DrainOutput()) {
    const uint64_t tb = t[0].AsUInt();
    ASSERT_LT(tb, truth.size());
    est[tb] += t[3].AsDouble();
    seen[tb] = true;
  }
  size_t checked = 0;
  for (size_t w = 0; w + 1 < truth.size(); ++w) {  // skip the partial tail
    if (!seen[w] || truth[w] == 0) continue;
    const double rel = std::fabs(est[w] - static_cast<double>(truth[w])) /
                       static_cast<double>(truth[w]);
    EXPECT_LT(rel, 0.10) << "recovered window " << w;
    ++checked;
  }
  EXPECT_GE(checked, 1u) << "recovery left no full window to verify";
}

TEST_F(CrashRecoveryTest, CleanRunThenRestartEmitsNothingTwice) {
  // A clean (non-crashed) run checkpoints through FinishStream; restarting
  // over the same trace must replay everything and emit zero duplicate
  // rows — exactly-once output across process restarts on a clean kill.
  Trace trace = TraceGenerator::MakeResearchFeed(20.0, 42);
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());
  size_t first_rows = 0;
  {
    TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(dir_.string()));
    auto report = rt.RunThreaded(trace);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->recovered);
    EXPECT_GT(report->checkpoints_written, 0u);
    first_rows = rt.high_node(0).DrainOutput().size();
    EXPECT_GT(first_rows, 0u);
  }
  {
    TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(dir_.string()));
    EXPECT_TRUE(rt.recovered());
    auto report = rt.RunThreaded(trace);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->recovered);
    EXPECT_EQ(rt.high_node(0).DrainOutput().size(), 0u);
  }
}

TEST_F(CrashRecoveryTest, CorruptedSnapshotsFallBackThenFreshStart) {
  // Corrupt every snapshot the killed run left: recovery must detect all
  // of them (counted, logged), restore nothing, and still run correctly
  // from scratch — never crash, never restore garbage.
  Trace trace = TraceGenerator::MakeResearchFeed(20.0, 42);
  auto low = CompileQuery(kPassThroughLow, Catalog::Default(), {.seed = 3});
  auto high = CompileQuery(kAggQuery, Catalog::Default(), {.seed = 3});
  ASSERT_TRUE(low.ok() && high.ok());
  {
    TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(dir_.string()));
    ASSERT_TRUE(rt.RunThreaded(trace).ok());
  }
  size_t corrupted = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ASSERT_TRUE(InjectCheckpointFault(
        e.path().string(),
        corrupted % 2 == 0 ? CheckpointFault::kBitFlip
                           : CheckpointFault::kStaleVersion,
        corrupted + 1));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  TwoLevelRuntime rt(*low, {*high}, CheckpointedOptions(dir_.string()));
  EXPECT_FALSE(rt.recovered());
  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->checkpoint_corrupt_skipped, corrupted);

  // Fresh start produced the full output, same as a reference run.
  TwoLevelRuntime ref(*low, {*high});
  ASSERT_TRUE(ref.Run(trace).ok());
  EXPECT_EQ(RowsAsStrings(rt.high_node(0).DrainOutput()),
            RowsAsStrings(ref.high_node(0).DrainOutput()));
}

}  // namespace
}  // namespace streamop
