// Chaos tests: seeded fault injection (bursts, malformed packets, timestamp
// regressions, consumer stalls) driven through the two-level runtime,
// asserting the overload paths shed load without bias (Horvitz–Thompson
// reweighting), terminate instead of deadlocking (watchdog + ring poison),
// and account for every anomaly (late_tuples, packets_malformed).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/sampling_operator.h"
#include "engine/load_shed.h"
#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"
#include "stream/fault_injection.h"
#include "stream/ring_buffer.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

Catalog TestCatalog() { return Catalog::Default(); }

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

constexpr char kWindowAggHigh[] =
    "SELECT tb, sum(len), count(*) FROM PKT GROUP BY time/20 as tb";

// ---------- AIMD controller ----------

TEST(LoadShedControllerTest, HoldsAtFullAdmissionWhileRingIsCool) {
  LoadShedConfig cfg;
  cfg.enabled = true;
  LoadShedController c(cfg);
  for (int i = 0; i < 100; ++i) c.Tick(10, 1024, 0);
  EXPECT_DOUBLE_EQ(c.probability(), 1.0);
  EXPECT_DOUBLE_EQ(c.min_probability_seen(), 1.0);
}

TEST(LoadShedControllerTest, MultiplicativeDecreaseAboveHighWatermark) {
  LoadShedConfig cfg;
  cfg.enabled = true;
  cfg.high_watermark = 0.75;
  cfg.decrease_factor = 0.5;
  cfg.min_probability = 0.1;
  LoadShedController c(cfg);
  c.Tick(800, 1024, 0);  // 78% occupancy
  EXPECT_DOUBLE_EQ(c.probability(), 0.5);
  c.Tick(800, 1024, 0);
  EXPECT_DOUBLE_EQ(c.probability(), 0.25);
  // Push failures alone trigger a decrease even at low occupancy.
  c.Tick(10, 1024, 5);
  EXPECT_DOUBLE_EQ(c.probability(), 0.125);
  // The floor bounds the worst-case weight.
  for (int i = 0; i < 20; ++i) c.Tick(1000, 1024, 0);
  EXPECT_DOUBLE_EQ(c.probability(), 0.1);
  EXPECT_DOUBLE_EQ(c.min_probability_seen(), 0.1);
}

TEST(LoadShedControllerTest, AdditiveRecoveryBelowLowWatermarkWithHysteresis) {
  LoadShedConfig cfg;
  cfg.enabled = true;
  cfg.high_watermark = 0.75;
  cfg.low_watermark = 0.40;
  cfg.decrease_factor = 0.5;
  cfg.increase_step = 0.05;
  LoadShedController c(cfg);
  c.Tick(900, 1024, 0);
  c.Tick(900, 1024, 0);
  EXPECT_DOUBLE_EQ(c.probability(), 0.25);
  // In the hysteresis band: hold.
  c.Tick(512, 1024, 0);  // 50%
  EXPECT_DOUBLE_EQ(c.probability(), 0.25);
  // Below the low watermark: additive recovery.
  c.Tick(100, 1024, 0);
  EXPECT_DOUBLE_EQ(c.probability(), 0.30);
  for (int i = 0; i < 20; ++i) c.Tick(100, 1024, 0);
  EXPECT_DOUBLE_EQ(c.probability(), 1.0);
  // History recorded every tick.
  EXPECT_EQ(c.history().size(), c.ticks());
}

TEST(LoadShedControllerTest, AdmitMatchesProbabilityStatistically) {
  LoadShedConfig cfg;
  cfg.enabled = true;
  cfg.seed = 99;
  cfg.decrease_factor = 0.25;
  cfg.min_probability = 0.25;
  LoadShedController c(cfg);
  // At p == 1.0 everything is admitted, no RNG involved.
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(c.Admit());
  c.Tick(1024, 1024, 0);  // drop to 0.25
  ASSERT_DOUBLE_EQ(c.probability(), 0.25);
  uint64_t before = c.admitted();
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) c.Admit();
  double rate = static_cast<double>(c.admitted() - before) / kDraws;
  EXPECT_NEAR(rate, 0.25, 0.02);  // ~9 sigma
  EXPECT_EQ(c.offered(), 1000u + kDraws);
  EXPECT_EQ(c.shed(), c.offered() - c.admitted());
}

// ---------- ring close / poison ----------

TEST(RingBufferCloseTest, CloseRejectsPushesButDrainsBufferedItems) {
  RingBuffer<int> ring(8);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.TryPush(3));  // EOS: rejected, not an overload failure
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_TRUE(ring.closed() && ring.empty());  // the consumer's EOS test
}

TEST(RingBufferCloseTest, PoisonAbandonsBufferedItems) {
  RingBuffer<int> ring(8);
  EXPECT_TRUE(ring.TryPush(1));
  ring.Poison();
  EXPECT_TRUE(ring.poisoned());
  EXPECT_TRUE(ring.closed());  // poison implies close
  int v = 0;
  EXPECT_FALSE(ring.TryPop(&v));   // buffered item abandoned
  EXPECT_FALSE(ring.TryPush(2));
}

// ---------- fault injection ----------

TEST(FaultInjectionTest, DeterministicGivenSeed) {
  Trace trace = TraceGenerator::MakeResearchFeed(5.0, 70);
  FaultInjectionConfig cfg;
  cfg.seed = 7;
  cfg.p_duplicate = 0.05;
  cfg.p_reorder = 0.05;
  cfg.p_truncate = 0.01;
  cfg.p_corrupt = 0.01;
  cfg.p_ts_backwards = 0.02;
  Trace a = InjectFaults(trace, cfg);
  Trace b = InjectFaults(trace, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).ts_ns, b.at(i).ts_ns) << i;
    EXPECT_EQ(a.at(i).src_ip, b.at(i).src_ip) << i;
    EXPECT_EQ(a.at(i).len, b.at(i).len) << i;
  }
  cfg.seed = 8;
  Trace c = InjectFaults(trace, cfg);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.at(i).ts_ns != c.at(i).ts_ns || a.at(i).len != c.at(i).len;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectionTest, InjectsEachConfiguredFaultKind) {
  Trace trace = TraceGenerator::MakeResearchFeed(5.0, 71);
  FaultInjectionConfig cfg;
  cfg.seed = 3;
  cfg.p_duplicate = 0.10;
  cfg.p_truncate = 0.05;
  cfg.p_ts_backwards = 0.05;
  cfg.ts_backwards_max_sec = 1.0;
  Trace faulty = InjectFaults(trace, cfg);
  EXPECT_GT(faulty.size(), trace.size());  // duplicates grow the trace
  size_t truncated = 0, regressions = 0;
  for (size_t i = 0; i < faulty.size(); ++i) {
    if (faulty.at(i).len < 20) ++truncated;
    if (i > 0 && faulty.at(i).ts_ns < faulty.at(i - 1).ts_ns) ++regressions;
  }
  EXPECT_GT(truncated, 0u);
  EXPECT_GT(regressions, 0u);
}

TEST(FaultInjectionTest, BurstCompressionSqueezesArrivals) {
  Trace trace = TraceGenerator::MakeResearchFeed(10.0, 72);
  FaultInjectionConfig cfg;
  cfg.seed = 5;
  cfg.p_burst_start = 0.001;
  cfg.burst_packets = 1000;
  cfg.burst_compression = 100.0;
  Trace faulty = InjectFaults(trace, cfg);
  ASSERT_EQ(faulty.size(), trace.size());
  // Compressed gaps: the faulty trace must contain many more packets that
  // arrive < 10 us after their predecessor than the original.
  auto tight_gaps = [](const Trace& t) {
    size_t n = 0;
    for (size_t i = 1; i < t.size(); ++i) {
      if (t.at(i).ts_ns >= t.at(i - 1).ts_ns &&
          t.at(i).ts_ns - t.at(i - 1).ts_ns < 10000) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(tight_gaps(faulty), tight_gaps(trace) + 100);
}

// ---------- end-to-end chaos ----------

// Malformed packets, duplicates, reordering and timestamp regressions all at
// once: both run modes must survive, agree with each other, and account for
// anomalies in the report.
TEST(ChaosTest, MalformedAndLatePacketsSurviveBothRunModes) {
  Trace clean = TraceGenerator::MakeResearchFeed(31.0, 73);
  FaultInjectionConfig fcfg;
  fcfg.seed = 11;
  fcfg.p_duplicate = 0.02;
  fcfg.p_reorder = 0.02;
  fcfg.p_truncate = 0.01;
  fcfg.p_ts_backwards = 0.005;
  fcfg.ts_backwards_max_sec = 25.0;  // far enough to cross a 20 s window
  Trace faulty = InjectFaults(clean, fcfg);

  auto make_rt = [&]() {
    auto low = CompileQuery(kPassThroughLow, TestCatalog());
    auto high = CompileQuery(kWindowAggHigh, TestCatalog());
    EXPECT_TRUE(low.ok() && high.ok());
    return std::make_unique<TwoLevelRuntime>(*low,
                                             std::vector<CompiledQuery>{*high});
  };

  auto seq = make_rt();
  auto seq_report = seq->Run(faulty);
  ASSERT_TRUE(seq_report.ok()) << seq_report.status().ToString();
  EXPECT_GT(seq_report->packets_malformed, 0u);
  EXPECT_GT(seq_report->late_tuples, 0u);

  auto par = make_rt();
  auto par_report = par->RunThreaded(faulty);
  ASSERT_TRUE(par_report.ok()) << par_report.status().ToString();
  EXPECT_EQ(par_report->packets_malformed, seq_report->packets_malformed);
  EXPECT_EQ(par_report->late_tuples, seq_report->late_tuples);

  // Unshedded runs stay deterministic even on a faulty feed.
  std::vector<Tuple> seq_out = seq->high_node(0).DrainOutput();
  std::vector<Tuple> par_out = par->high_node(0).DrainOutput();
  ASSERT_EQ(seq_out.size(), par_out.size());
  for (size_t i = 0; i < seq_out.size(); ++i) {
    EXPECT_EQ(seq_out[i], par_out[i]) << "row " << i;
  }
}

TEST(ChaosTest, LateTuplesClampIntoCurrentWindowWithExactCounts) {
  // Hand-built stream: window 0 gets 2 packets, window 1 gets 2 packets
  // plus one late straggler (timestamp from window 0), window 2 gets 1.
  auto pkt = [](uint64_t sec) {
    PacketRecord p{};
    p.ts_ns = sec * 1'000'000'000ULL;
    p.len = 100;
    return p;
  };
  Trace trace(std::vector<PacketRecord>{pkt(1), pkt(2), pkt(21), pkt(22),
                                        pkt(5), pkt(41)});
  auto cq = CompileQuery("SELECT tb, count(*) FROM PKT GROUP BY time/20 as tb",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_EQ(run->output.size(), 3u);
  EXPECT_EQ(run->output[0][1].AsUInt(), 2u);  // window 0
  EXPECT_EQ(run->output[1][1].AsUInt(), 3u);  // window 1 absorbs the late one
  EXPECT_EQ(run->output[2][1].AsUInt(), 1u);  // window 2
  ASSERT_EQ(run->windows.size(), 3u);
  EXPECT_EQ(run->windows[0].late_tuples, 0u);
  EXPECT_EQ(run->windows[1].late_tuples, 1u);
  EXPECT_EQ(run->windows[2].late_tuples, 0u);
}

// The acceptance scenario: a feed that overflows the ring. With shedding
// off and drop_on_overload on, packets are silently dropped and the sums
// biased low. With shedding on, occupancy is controlled via the Bernoulli
// gate and the reweighted estimates land within 5% of ground truth.
TEST(ChaosTest, SheddingRestoresAccuracyUnderOverload) {
  Trace trace = TraceGenerator::MakeResearchFeed(41.0, 74);
  auto truth_bytes = trace.BytesPerWindow(20);
  auto truth_counts = trace.PacketsPerWindow(20);

  // A deliberately slow consumer: ~1 ms stall per 256-packet batch caps
  // drain rate at ~256k pkt/s nominal, while the producer replays the trace
  // at memory speed into a 1k-slot ring — guaranteed sustained overload.
  auto make_options = [&]() {
    RuntimeOptions opt;
    opt.ring_capacity = 1024;
    opt.batch_size = 256;
    opt.stall_timeout_ms = 0;  // watchdog off: a loaded CI box + sanitizer
                               // slowdown must not abort this slow consumer
    ConsumerStallSpec stall;
    stall.stall_at_batch = 0;
    stall.per_batch_ms = 1;
    opt.consumer_stall_hook = MakeConsumerStallHook(stall);
    return opt;
  };

  // Baseline: overload with shedding off and Gigascope-style dropping.
  {
    auto low = CompileQuery(kPassThroughLow, TestCatalog());
    auto high = CompileQuery(kWindowAggHigh, TestCatalog());
    ASSERT_TRUE(low.ok() && high.ok());
    RuntimeOptions opt = make_options();
    opt.drop_on_overload = true;
    TwoLevelRuntime rt(*low, {*high}, opt);
    auto report = rt.RunThreaded(trace);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->packets_dropped, trace.size() / 10)
        << "overload too mild to demonstrate drop bias";
    uint64_t est_total = 0;
    for (const Tuple& t : rt.high_node(0).DrainOutput()) {
      est_total += t[1].AsUInt();
    }
    uint64_t truth_total = 0;
    for (uint64_t b : truth_bytes) truth_total += b;
    // Unweighted sums over a dropped feed are biased low.
    EXPECT_LT(static_cast<double>(est_total), 0.95 * truth_total);
  }

  // Shedding on: same overload, estimates reweighted by 1/p.
  {
    auto low = CompileQuery(kPassThroughLow, TestCatalog());
    auto high = CompileQuery(kWindowAggHigh, TestCatalog());
    ASSERT_TRUE(low.ok() && high.ok());
    RuntimeOptions opt = make_options();
    opt.shed.enabled = true;
    opt.shed.seed = 13;
    opt.shed.min_probability = 0.1;
    opt.shed.decrease_factor = 0.7;
    TwoLevelRuntime rt(*low, {*high}, opt);
    auto report = rt.RunThreaded(trace);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // Shedding actually engaged and is reported.
    EXPECT_TRUE(report->shedding_enabled);
    EXPECT_GT(report->tuples_shed, 0u);
    EXPECT_LT(report->shed_p_min, 1.0);
    EXPECT_GE(report->shed_p_min, opt.shed.min_probability - 1e-12);
    EXPECT_GT(report->shed_fraction, 0.0);
    EXPECT_EQ(report->packets_dropped, 0u);  // no silent drops
    EXPECT_EQ(report->tuples_offered, trace.size());

    std::map<uint64_t, double> est_bytes, est_counts;
    for (const Tuple& t : rt.high_node(0).DrainOutput()) {
      est_bytes[t[0].AsUInt()] += t[1].AsDouble();
      est_counts[t[0].AsUInt()] += t[2].AsDouble();
    }
    // Full windows only (the tail window is partial).
    for (size_t w = 0; w + 1 < truth_bytes.size(); ++w) {
      double tb = static_cast<double>(truth_bytes[w]);
      double tc = static_cast<double>(truth_counts[w]);
      EXPECT_NEAR(est_bytes[w], tb, 0.05 * tb) << "sum(len), window " << w;
      EXPECT_NEAR(est_counts[w], tc, 0.05 * tc) << "count(*), window " << w;
    }
  }
}

// A consumer that hangs forever mid-run: the watchdog must terminate the
// run with an error Status within its timeout — never a hang or deadlock —
// and the degradation summary must survive in last_report().
TEST(ChaosTest, ConsumerHangTriggersWatchdogWithinTimeout) {
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 75);
  auto low = CompileQuery(kPassThroughLow, TestCatalog());
  auto high = CompileQuery(kWindowAggHigh, TestCatalog());
  ASSERT_TRUE(low.ok() && high.ok());
  RuntimeOptions opt;
  opt.ring_capacity = 512;
  opt.batch_size = 128;
  opt.stall_timeout_ms = 200;
  ConsumerStallSpec stall;
  stall.stall_at_batch = 10;
  stall.stall_ms = UINT64_MAX;  // hang until aborted
  opt.consumer_stall_hook = MakeConsumerStallHook(stall);
  TwoLevelRuntime rt(*low, {*high}, opt);

  auto t0 = std::chrono::steady_clock::now();
  auto report = rt.RunThreaded(trace);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted)
      << report.status().ToString();
  // Terminates promptly: timeout + watchdog poll + thread-join slack.
  EXPECT_LT(elapsed, 5000);
  EXPECT_TRUE(rt.last_report().watchdog_fired);
  EXPECT_GT(rt.last_report().packets, 0u);
}

TEST(ChaosTest, ProducerBackoffSurfacesInReport) {
  Trace trace = TraceGenerator::MakeResearchFeed(11.0, 76);
  auto low = CompileQuery(kPassThroughLow, TestCatalog());
  auto high = CompileQuery(kWindowAggHigh, TestCatalog());
  ASSERT_TRUE(low.ok() && high.ok());
  RuntimeOptions opt;
  opt.ring_capacity = 256;
  opt.batch_size = 64;
  opt.stall_timeout_ms = 0;  // watchdog off (see above)
  // One long stall rather than a per-batch drip: the producer fails pushes
  // continuously for the full 2 s, so it must climb past the yield rungs
  // of the ladder into the sleep rungs even if the scheduler (a loaded CI
  // box, sanitizer slowdown) runs it only sporadically.
  ConsumerStallSpec stall;
  stall.stall_at_batch = 1;
  stall.stall_ms = 2000;
  opt.consumer_stall_hook = MakeConsumerStallHook(stall);
  TwoLevelRuntime rt(*low, {*high}, opt);
  auto report = rt.RunThreaded(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The producer outran the consumer: it must have slept, not busy-spun.
  EXPECT_GT(report->producer_backoff_sleeps, 0u);
  EXPECT_GT(report->producer_backoff_seconds, 0.0);
  // And no data was lost: every packet reached the low node.
  EXPECT_EQ(report->low.tuples_in, trace.size());
}

TEST(ChaosTest, FaultyStreamSourceReplaysDeterministically) {
  Trace trace = TraceGenerator::MakeResearchFeed(5.0, 77);
  FaultInjectionConfig cfg;
  cfg.seed = 21;
  cfg.p_duplicate = 0.05;
  cfg.p_truncate = 0.02;
  FaultyStreamSource src(&trace, cfg);
  std::vector<uint64_t> first_pass;
  Tuple t;
  while (src.Next(&t)) first_pass.push_back(t[1].AsUInt());  // ts_ns column
  EXPECT_EQ(first_pass.size(), src.faulty_trace().size());
  src.Reset();
  size_t i = 0;
  while (src.Next(&t)) {
    ASSERT_LT(i, first_pass.size());
    EXPECT_EQ(t[1].AsUInt(), first_pass[i]) << i;
    ++i;
  }
  EXPECT_EQ(i, first_pass.size());
}

// Weighted aggregation invariants, independent of threading: weight w makes
// count/sum scale exactly by w for a deterministic stream.
TEST(WeightedAggregationTest, WeightScalesSumAndCountExactly) {
  auto cq = CompileQuery(kWindowAggHigh, TestCatalog());
  ASSERT_TRUE(cq.ok());
  SamplingOperator op(cq->sampling);
  auto pkt = [](uint64_t sec, uint16_t len) {
    PacketRecord p{};
    p.ts_ns = sec * 1'000'000'000ULL;
    p.len = len;
    return PacketToTuple(p);
  };
  // Every tuple admitted with p = 0.25 -> weight 4.
  ASSERT_TRUE(op.Process(pkt(1, 100), 4.0).ok());
  ASSERT_TRUE(op.Process(pkt(2, 50), 4.0).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][1].AsDouble(), 600.0);  // (100+50) * 4
  EXPECT_DOUBLE_EQ(out[0][2].AsDouble(), 8.0);    // 2 * 4
}

TEST(WeightedAggregationTest, UnitWeightKeepsIntegerResults) {
  auto cq = CompileQuery(kWindowAggHigh, TestCatalog());
  ASSERT_TRUE(cq.ok());
  SamplingOperator op(cq->sampling);
  PacketRecord p{};
  p.ts_ns = 1'000'000'000ULL;
  p.len = 100;
  ASSERT_TRUE(op.Process(PacketToTuple(p), 1.0).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  // Exactly the unweighted integer path: results stay UInt.
  EXPECT_EQ(out[0][1].type(), FieldType::kUInt);
  EXPECT_EQ(out[0][1].AsUInt(), 100u);
  EXPECT_EQ(out[0][2].type(), FieldType::kUInt);
  EXPECT_EQ(out[0][2].AsUInt(), 1u);
}

TEST(WeightedAggregationTest, SumSuperaggIsReweighted) {
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, count(*), sum$(len), count$(*)
      FROM PKT
      GROUP BY time/60 as tb, srcIP
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SamplingOperator op(cq->sampling);
  auto pkt = [](uint32_t src, uint16_t len) {
    PacketRecord p{};
    p.ts_ns = 1'000'000'000ULL;
    p.src_ip = src;
    p.len = len;
    return PacketToTuple(p);
  };
  ASSERT_TRUE(op.Process(pkt(1, 100), 2.0).ok());
  ASSERT_TRUE(op.Process(pkt(2, 50), 2.0).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 2u);
  // sum$(len) = (100 + 50) * 2; count$(*) = 2 * 2 — same for both rows.
  for (const Tuple& t : out) {
    EXPECT_DOUBLE_EQ(t[3].AsDouble(), 300.0);
    EXPECT_DOUBLE_EQ(t[4].AsDouble(), 4.0);
  }
}

}  // namespace
}  // namespace streamop
