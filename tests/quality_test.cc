// Tests for per-window sample-quality reporting (src/obs/quality.h + the
// SamplingOperator::RecordWindowQuality hook): the bounded QualityRing, the
// JSON schema of WindowQualityReport, the per-estimator quality entries
// (subset-sum threshold bounds, reservoir coverage, KMV sample sizes), the
// worst-case quality gauges, and — the acceptance criterion — empirical
// coverage of the Horvitz–Thompson 95% confidence intervals against ground
// truth over 100+ windows of Bernoulli-subsampled traffic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/sampling_operator.h"
#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "query/query.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

using obs::EstimatorQuality;
using obs::QualityRing;
using obs::WindowQualityReport;

// ---------- ring semantics ----------

TEST(QualityRingTest, PushOverwritesOldestWhenFull) {
  QualityRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    WindowQualityReport r;
    r.seq = i;
    ring.Push(std::move(r));
  }
  EXPECT_EQ(ring.reports_recorded(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  std::vector<WindowQualityReport> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 4u);
  // Only the newest four survive, oldest first.
  EXPECT_EQ(got.front().seq, 6u);
  EXPECT_EQ(got.back().seq, 9u);
}

TEST(QualityRingTest, EnabledRequiresExplicitOptIn) {
  QualityRing ring(4);
  EXPECT_FALSE(ring.enabled());
  ring.set_enabled(true);
  EXPECT_EQ(ring.enabled(), obs::kStatsEnabled);
  ring.set_enabled(false);
  EXPECT_FALSE(ring.enabled());
}

TEST(QualityRingTest, JsonCarriesSchema) {
  QualityRing ring(8);
  WindowQualityReport r;
  r.node = "high0";
  r.seq = 3;
  r.window_id = "42";
  r.tuples_in = 100;
  r.tuples_admitted = 90;
  r.groups_output = 7;
  r.supergroups = 1;
  r.max_weight = 2.0;
  r.shed_p_min = 0.5;
  EstimatorQuality q;
  q.kind = "sum_ht";
  q.display = "sum$(len)";
  q.has_estimate = true;
  q.estimate = 1234.5;
  q.variance = 100.0;
  q.ci95 = 1.96 * 10.0;
  q.coverage = 0.25;
  q.threshold_z = 77.0;
  q.samples = 90;
  q.target = 100;
  r.estimators.push_back(q);
  ring.Push(std::move(r));

  std::string json = ring.ToJson();
  for (const char* needle :
       {"\"node\": \"high0\"", "\"seq\": 3", "\"window_id\": \"42\"",
        "\"tuples_in\": 100", "\"tuples_admitted\": 90",
        "\"groups_output\": 7", "\"supergroups\": 1", "\"truncated\": false",
        "\"max_weight\": 2", "\"shed_p_min\": 0.5", "\"kind\": \"sum_ht\"",
        "\"display\": \"sum$(len)\"", "\"estimate\": 1234.5",
        "\"variance\": 100", "\"coverage\": 0.25", "\"threshold_z\": 77",
        "\"samples\": 90", "\"target\": 100"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

TEST(QualityRingTest, JsonOmitsInapplicableFields) {
  // coverage < 0 means "not applicable" and must not serialize; non-finite
  // doubles become null instead of breaking the JSON.
  WindowQualityReport r;
  EstimatorQuality q;
  q.kind = "kmv";
  q.coverage = -1.0;
  q.variance = std::nan("");
  r.estimators.push_back(q);
  std::string json = obs::WindowQualityReportToJson(r);
  EXPECT_EQ(json.find("coverage"), std::string::npos) << json;
  EXPECT_NE(json.find("\"variance\": null"), std::string::npos) << json;
}

// ---------- operator-built reports ----------

// Test schema S(t increasing, k, v) and a plan computing sum$(v) per
// window: SELECT tb, sum$(v) FROM S GROUP BY t/10 as tb, k.
SchemaPtr TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<Field>{{"t", FieldType::kUInt, Ordering::kIncreasing},
                              {"k", FieldType::kUInt, Ordering::kNone},
                              {"v", FieldType::kUInt, Ordering::kNone}});
}

Tuple Row(uint64_t t, uint64_t k, uint64_t v) {
  return Tuple({Value::UInt(t), Value::UInt(k), Value::UInt(v)});
}

std::shared_ptr<SamplingQueryPlan> MakeHtSumPlan() {
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};

  // Shadow aggregate backing the subtractable sum$.
  AggregateSpec shadow;
  shadow.kind = AggregateKind::kSum;
  shadow.arg = Expr::InputRef("v", 2);
  shadow.display = "sum(v)";
  plan->aggregates = {shadow};

  SuperAggSpec total;
  total.kind = SuperAggKind::kSum;
  total.arg = Expr::InputRef("v", 2);
  total.shadow_agg_slot = 0;
  total.display = "sum$(v)";
  plan->superaggs = {total};

  plan->select_exprs = {Expr::GroupByRef("tb", 0), Expr::GroupByRef("k", 1),
                        Expr::SuperAggRef(0)};
  plan->output_names = {"tb", "k", "total"};
  return plan;
}

TEST(QualityReportTest, UnweightedWindowHasZeroVarianceAndFullAdmission) {
  QualityRing ring(64);
  ring.set_enabled(true);
  SamplingOperator op(MakeHtSumPlan());
  op.set_quality(&ring, "plain");
  ASSERT_TRUE(op.Process(Row(1, 1, 5)).ok());
  ASSERT_TRUE(op.Process(Row(2, 2, 7)).ok());
  ASSERT_TRUE(op.Process(Row(12, 1, 9)).ok());  // closes window 0
  ASSERT_TRUE(op.FinishStream().ok());

  std::vector<WindowQualityReport> reps = ring.Snapshot();
  ASSERT_EQ(reps.size(), 2u);
  const WindowQualityReport& w0 = reps[0];
  EXPECT_EQ(w0.node, "plain");
  EXPECT_EQ(w0.seq, 0u);
  EXPECT_EQ(w0.window_id, "0");
  EXPECT_EQ(w0.tuples_in, 2u);
  EXPECT_EQ(w0.tuples_admitted, 2u);
  EXPECT_DOUBLE_EQ(w0.max_weight, 1.0);
  EXPECT_DOUBLE_EQ(w0.shed_p_min, 1.0);
  ASSERT_EQ(w0.estimators.size(), 1u);
  const EstimatorQuality& q = w0.estimators[0];
  EXPECT_STREQ(q.kind, "sum_ht");
  EXPECT_EQ(q.display, "sum$(v)");
  EXPECT_TRUE(q.has_estimate);
  EXPECT_DOUBLE_EQ(q.estimate, 12.0);
  // No tuple was shed: the HT variance estimator is exactly zero.
  EXPECT_DOUBLE_EQ(q.variance, 0.0);
  EXPECT_DOUBLE_EQ(q.ci95, 0.0);
  EXPECT_EQ(reps[1].seq, 1u);
  EXPECT_EQ(reps[1].window_id, "1");
}

TEST(QualityReportTest, DisabledRingRecordsNothing) {
  QualityRing ring(64);  // never enabled
  SamplingOperator op(MakeHtSumPlan());
  op.set_quality(&ring, "off");
  ASSERT_TRUE(op.Process(Row(1, 1, 5)).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  EXPECT_EQ(ring.reports_recorded(), 0u);
}

// The acceptance criterion: run a subset-sum style estimation under
// Bernoulli subsampling (admission probability p, admitted tuples weighted
// 1/p — exactly the load-shedding contract) for 120+ windows, and check the
// per-window 95% confidence intervals against the exact per-window sums.
// Empirical coverage must land in [90%, 99%].
TEST(QualityReportTest, HtConfidenceIntervalsCoverGroundTruth) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  constexpr int kWindows = 120;
  constexpr int kTuplesPerWindow = 400;
  constexpr double kAdmitP = 0.6;

  QualityRing ring(2 * kWindows);
  ring.set_enabled(true);
  SamplingOperator op(MakeHtSumPlan());
  op.set_quality(&ring, "cov");

  Pcg64 rng(20260806);
  std::vector<double> truth(kWindows, 0.0);
  for (int w = 0; w < kWindows; ++w) {
    for (int i = 0; i < kTuplesPerWindow; ++i) {
      const uint64_t t = static_cast<uint64_t>(w) * 10 +
                         static_cast<uint64_t>(i) * 10 / kTuplesPerWindow;
      // Skewed packet-length-like values so the variance is non-trivial.
      const uint64_t v = 40 + rng.NextBounded(1460);
      truth[w] += static_cast<double>(v);
      if (rng.NextBernoulli(kAdmitP)) {
        ASSERT_TRUE(op.Process(Row(t, i % 8, v), 1.0 / kAdmitP).ok());
      }
    }
  }
  ASSERT_TRUE(op.FinishStream().ok());

  std::vector<WindowQualityReport> reps = ring.Snapshot();
  ASSERT_EQ(reps.size(), static_cast<size_t>(kWindows));
  int covered = 0;
  for (int w = 0; w < kWindows; ++w) {
    const WindowQualityReport& rep = reps[w];
    EXPECT_EQ(rep.seq, static_cast<uint64_t>(w));
    EXPECT_DOUBLE_EQ(rep.max_weight, 1.0 / kAdmitP);
    EXPECT_NEAR(rep.shed_p_min, kAdmitP, 1e-12);
    ASSERT_EQ(rep.estimators.size(), 1u) << "window " << w;
    const EstimatorQuality& q = rep.estimators[0];
    ASSERT_STREQ(q.kind, "sum_ht");
    ASSERT_TRUE(q.has_estimate);
    EXPECT_GT(q.variance, 0.0) << "window " << w;
    EXPECT_GT(q.ci95, 0.0) << "window " << w;
    if (std::fabs(q.estimate - truth[w]) <= q.ci95) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kWindows;
  EXPECT_GE(coverage, 0.90) << covered << "/" << kWindows;
  EXPECT_LE(coverage, 0.99) << covered << "/" << kWindows;
}

// ---------- SQL-compiled estimators report quality entries ----------

TEST(QualityReportTest, SubsetSumQueryReportsThresholdAndBounds) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  QualityRing ring(256);
  ring.set_enabled(true);
  obs::MetricRegistry reg;
  Trace trace = TraceGenerator::MakeResearchFeed(59.0, 45);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKT
      WHERE ssample(len, 100, 2, 100, 10.0) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                         Catalog::Default(), {.seed = 4});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SamplingOperator op(cq->sampling);
  op.set_metrics(obs::OperatorMetrics::Create(reg, "ss"));
  op.set_quality(&ring, "ss");
  TraceTupleSource source(&trace);
  Tuple t;
  while (source.Next(&t)) ASSERT_TRUE(op.Process(t).ok());
  ASSERT_TRUE(op.FinishStream().ok());

  std::vector<WindowQualityReport> reps = ring.Snapshot();
  ASSERT_GE(reps.size(), 2u);
  bool saw_subset_sum = false;
  bool saw_paired_sum = false;
  for (const WindowQualityReport& rep : reps) {
    double det_bound = 0.0;
    for (const EstimatorQuality& q : rep.estimators) {
      if (std::strcmp(q.kind, "subset_sum") == 0) {
        saw_subset_sum = true;
        EXPECT_GT(q.threshold_z, 0.0);
        EXPECT_EQ(q.target, 100u);
        // Counter mode (mode 0): deviation is deterministically <= z.
        EXPECT_DOUBLE_EQ(q.deterministic_bound, q.threshold_z);
        det_bound = q.deterministic_bound;
      }
    }
    // The supergroup's sum_ht CI is widened by the subset-sum bound.
    for (const EstimatorQuality& q : rep.estimators) {
      if (std::strcmp(q.kind, "sum_ht") == 0 && det_bound > 0.0 &&
          q.ci95 >= det_bound) {
        saw_paired_sum = true;
      }
    }
  }
  EXPECT_TRUE(saw_subset_sum);

  // Worst-case quality gauges refreshed on the last flush.
  obs::Gauge* z = reg.GetGauge("streamop_quality_threshold_z", "node=\"ss\"");
  ASSERT_NE(z, nullptr);
  EXPECT_GT(z->value(), 0.0);
  obs::Gauge* p_min =
      reg.GetGauge("streamop_quality_shed_p_min", "node=\"ss\"");
  ASSERT_NE(p_min, nullptr);
  EXPECT_DOUBLE_EQ(p_min->value(), 1.0);  // nothing shed in this run
  (void)saw_paired_sum;
}

TEST(QualityReportTest, ReservoirQueryReportsCoverage) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  QualityRing ring(256);
  ring.set_enabled(true);
  Trace trace = TraceGenerator::MakeResearchFeed(45.0, 7);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP
      FROM PKT
      WHERE rsample(100) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING rsfinal_clean(count_distinct$(*)) = TRUE
      CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY rsclean_with() = TRUE
  )",
                         Catalog::Default(), {.seed = 11});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SamplingOperator op(cq->sampling);
  op.set_quality(&ring, "rs");
  TraceTupleSource source(&trace);
  Tuple t;
  while (source.Next(&t)) ASSERT_TRUE(op.Process(t).ok());
  ASSERT_TRUE(op.FinishStream().ok());

  bool saw_reservoir = false;
  for (const WindowQualityReport& rep : ring.Snapshot()) {
    for (const EstimatorQuality& q : rep.estimators) {
      if (std::strcmp(q.kind, "reservoir") != 0) continue;
      saw_reservoir = true;
      EXPECT_EQ(q.target, 100u);
      EXPECT_GE(q.coverage, 0.0);
      EXPECT_LE(q.coverage, 1.0);
      EXPECT_DOUBLE_EQ(q.rel_error, 1.0 / std::sqrt(100.0));
    }
  }
  EXPECT_TRUE(saw_reservoir);
}

TEST(QualityReportTest, KmvSuperaggReportsSampleSize) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  QualityRing ring(256);
  ring.set_enabled(true);
  Trace trace = TraceGenerator::MakeResearchFeed(45.0, 21);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, HX
      FROM PKT
      WHERE HX <= Kth_smallest_value$(HX, 50)
      GROUP BY time/20 as tb, srcIP, H(destIP) as HX
      SUPERGROUP BY tb, srcIP
      HAVING HX <= Kth_smallest_value$(HX, 50)
      CLEANING WHEN count_distinct$(*) >= 50
      CLEANING BY HX <= Kth_smallest_value$(HX, 50)
  )",
                         Catalog::Default(), {.seed = 8});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SamplingOperator op(cq->sampling);
  op.set_quality(&ring, "mh");
  TraceTupleSource source(&trace);
  Tuple t;
  while (source.Next(&t)) ASSERT_TRUE(op.Process(t).ok());
  ASSERT_TRUE(op.FinishStream().ok());

  bool saw_kmv = false;
  for (const WindowQualityReport& rep : ring.Snapshot()) {
    EXPECT_GE(rep.supergroups, 1u);
    for (const EstimatorQuality& q : rep.estimators) {
      if (std::strcmp(q.kind, "kmv") != 0) continue;
      saw_kmv = true;
      EXPECT_EQ(q.target, 50u);
      EXPECT_LE(q.samples, 50u + 1u);  // multiset trimmed to k per update
      EXPECT_DOUBLE_EQ(q.rel_error, 1.0 / std::sqrt(50.0));
    }
  }
  EXPECT_TRUE(saw_kmv);
}

// Reports of high-cardinality supergroup queries stay bounded.
TEST(QualityReportTest, ReportTruncatesBeyondSupergroupCap) {
  if (!obs::kStatsEnabled) GTEST_SKIP() << "stats compiled out";
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};
  plan->supergroup_slots = {1};  // one supergroup per k
  AggregateSpec cnt;
  cnt.kind = AggregateKind::kCount;
  cnt.star = true;
  cnt.display = "count(*)";
  plan->aggregates = {cnt};
  SuperAggSpec cd;
  cd.kind = SuperAggKind::kCountDistinct;
  cd.display = "count_distinct$(*)";
  plan->superaggs = {cd};
  plan->select_exprs = {Expr::GroupByRef("tb", 0), Expr::GroupByRef("k", 1),
                        Expr::AggregateRef(0)};
  plan->output_names = {"tb", "k", "cnt"};

  QualityRing ring(8);
  ring.set_enabled(true);
  SamplingOperator op(plan);
  op.set_quality(&ring, "many");
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(op.Process(Row(1, k, 1)).ok());
  }
  ASSERT_TRUE(op.FinishStream().ok());

  std::vector<WindowQualityReport> reps = ring.Snapshot();
  ASSERT_EQ(reps.size(), 1u);
  EXPECT_EQ(reps[0].supergroups, 40u);
  EXPECT_TRUE(reps[0].truncated);
}

}  // namespace
}  // namespace streamop
