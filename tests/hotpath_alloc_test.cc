// Zero-allocation guarantee of the steady-state per-tuple hot path: once
// every group exists and no window boundary or cleaning phase fires,
// SamplingOperator::Process must not touch the heap (ISSUE 1 acceptance
// criterion). Verified by replacing the global allocator with a counting
// one and asserting a zero delta across a steady-state burst.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "core/sampling_operator.h"
#include "net/packet.h"
#include "obs/alerts.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace_ring.h"
#include "query/query.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"
#include "tuple/value.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

// Counting global allocator. Only the allocation side is counted — the
// steady-state invariant is "no heap traffic", and every free implies a
// prior counted allocation.
void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) /
                                       static_cast<std::size_t>(a) *
                                       static_cast<std::size_t>(a))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace streamop {
namespace {

// Packet-shaped tuples over a fixed key grid within one window (time
// pinned), mirroring the steady-state benchmark.
std::vector<Tuple> SteadyStateTuples(size_t count, uint64_t num_src,
                                     uint64_t num_dst) {
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t src = 0x0a000000ULL + (i % num_src);
    uint64_t dst = 0xc0a80000ULL + ((i / num_src) % num_dst);
    uint64_t len = 40 + (i * 97) % 1460;
    tuples.push_back(Tuple({Value::UInt(100), Value::UInt(i * 1000),
                            Value::UInt(src), Value::UInt(dst),
                            Value::UInt(1234), Value::UInt(80), Value::UInt(6),
                            Value::UInt(len)}));
  }
  return tuples;
}

uint64_t SteadyStateAllocationDelta(const std::string& sql,
                                    bool with_metrics = false) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 3});
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->kind, CompiledQueryKind::kSampling);
  SamplingOperator op(cq->sampling);
  if (with_metrics) {
    // Registry + rings allocate at registration/construction time, never
    // after — everything below happens before the measured burst. Spans,
    // exemplar reservoirs and phase-cycle accounting ride along so the
    // whole third pillar is covered by the zero-delta.
    op.set_metrics(obs::OperatorMetrics::Create(
        obs::MetricRegistry::Default(), "hotpath"));
    obs::TraceRing::Default().set_enabled(true);
    op.set_trace_ring(&obs::TraceRing::Default());
    obs::SpanRing::Default().set_enabled(true);
    op.set_span_ring(&obs::SpanRing::Default());
    obs::ExemplarStore::Default().set_enabled(true);
    op.set_exemplars(&obs::ExemplarStore::Default());
    obs::Profiler::Default().set_phase_accounting(true);
    op.set_profiler(&obs::Profiler::Default());
  }
  std::vector<Tuple> tuples = SteadyStateTuples(2048, 32, 16);
  // Warm-up: create every group (and let scratch buffers reach capacity).
  size_t failures = 0;
  for (const Tuple& t : tuples) failures += !op.Process(t).ok();
  EXPECT_EQ(failures, 0u);
  const size_t groups_before = op.num_groups();

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const Tuple& t : tuples) failures += !op.Process(t).ok();
  uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(op.num_groups(), groups_before);  // steady state: no new groups
  return after - before;
}

TEST(HotPathAllocTest, GroupedAggregationSteadyStateAllocatesNothing) {
  EXPECT_EQ(SteadyStateAllocationDelta(
                "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
                "GROUP BY time/20 as tb, srcIP, destIP"),
            0u);
}

TEST(HotPathAllocTest, GroupedSamplingSteadyStateAllocatesNothing) {
  // The paper's subset-sum shape: stateful WHERE admission, superaggregate
  // maintenance and a per-tuple CLEANING WHEN check. The target is set high
  // enough that no cleaning phase fires inside the measured burst.
  EXPECT_EQ(SteadyStateAllocationDelta(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 1000000000, 2, 10, 0.5) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )"),
            0u);
}

// The same invariant must hold with the full observability layer attached:
// counters, sampled phase timers and the trace ring are all fixed-size and
// heap-free after registration (the tentpole's hot-path criterion).
TEST(HotPathAllocTest, InstrumentedSteadyStateAllocatesNothing) {
  EXPECT_EQ(SteadyStateAllocationDelta(
                "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
                "GROUP BY time/20 as tb, srcIP, destIP",
                /*with_metrics=*/true),
            0u);
}

TEST(HotPathAllocTest, InstrumentedSamplingSteadyStateAllocatesNothing) {
  EXPECT_EQ(SteadyStateAllocationDelta(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 1000000000, 2, 10, 0.5) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                                       /*with_metrics=*/true),
            0u);
}

// The batched hot path (DESIGN.md §9) carries the same guarantee: once the
// operator's columnar scratch (key columns, WHERE column, aggregate-argument
// columns, program stacks) has reached capacity, ProcessBatch must not touch
// the heap in steady state. A zero delta here also proves the expression
// programs are compiled exactly once, at construction — compilation
// allocates, so any per-batch recompilation would show up immediately.
uint64_t SteadyStateBatchAllocationDelta(const std::string& sql,
                                         bool with_metrics = false) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 3});
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->kind, CompiledQueryKind::kSampling);
  SamplingOperator op(cq->sampling);
  if (with_metrics) {
    op.set_metrics(obs::OperatorMetrics::Create(
        obs::MetricRegistry::Default(), "hotpath_batch"));
    obs::TraceRing::Default().set_enabled(true);
    op.set_trace_ring(&obs::TraceRing::Default());
    obs::SpanRing::Default().set_enabled(true);
    op.set_span_ring(&obs::SpanRing::Default());
    obs::ExemplarStore::Default().set_enabled(true);
    op.set_exemplars(&obs::ExemplarStore::Default());
    obs::Profiler::Default().set_phase_accounting(true);
    op.set_profiler(&obs::Profiler::Default());
  }
  std::vector<Tuple> tuples = SteadyStateTuples(2048, 32, 16);
  // Pre-build the batches outside the measured region, as the runtime's
  // reused ring-drain batch would be.
  std::vector<TupleBatch> batches;
  for (size_t i = 0; i < tuples.size(); i += 512) {
    batches.emplace_back(tuples.front().size(), 512);
    for (size_t j = i; j < i + 512; ++j) batches.back().AppendTuple(tuples[j]);
  }
  // Warm-up: create every group and let the columnar scratch reach capacity.
  for (const TupleBatch& b : batches) {
    Status s = op.ProcessBatch(b);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  const size_t groups_before = op.num_groups();

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  size_t failures = 0;
  for (const TupleBatch& b : batches) failures += !op.ProcessBatch(b).ok();
  uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(op.num_groups(), groups_before);  // steady state: no new groups
  return after - before;
}

TEST(HotPathAllocTest, BatchedGroupedAggregationSteadyStateAllocatesNothing) {
  EXPECT_EQ(SteadyStateBatchAllocationDelta(
                "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
                "GROUP BY time/20 as tb, srcIP, destIP"),
            0u);
}

TEST(HotPathAllocTest, BatchedGroupedSamplingSteadyStateAllocatesNothing) {
  // Stateful WHERE: the batch loop drops to compiled row mode per lane for
  // ssample, which must be as heap-free as the tree walk it replaces.
  EXPECT_EQ(SteadyStateBatchAllocationDelta(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 1000000000, 2, 10, 0.5) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )"),
            0u);
}

TEST(HotPathAllocTest, BatchedInstrumentedSteadyStateAllocatesNothing) {
  EXPECT_EQ(SteadyStateBatchAllocationDelta(
                "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
                "GROUP BY time/20 as tb, srcIP, destIP",
                /*with_metrics=*/true),
            0u);
}

// Refilling a reused batch from packets (the runtime's ring-drain loop)
// must also be allocation-free once the batch owns its capacity.
TEST(HotPathAllocTest, BatchRefillFromPacketsAllocatesNothing) {
  TupleBatch batch(8, 512);
  PacketRecord p{};
  p.ts_ns = 100ULL * 1000000000ULL;
  p.src_ip = 0x0a000001;
  p.dst_ip = 0xc0a80001;
  p.src_port = 1234;
  p.dst_port = 80;
  p.proto = 6;
  p.len = 512;
  for (int i = 0; i < 512; ++i) batch.AppendPacket(p);  // reach capacity
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 8; ++pass) {
    batch.Clear();
    for (int i = 0; i < 512; ++i) batch.AppendPacket(p);
  }
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

// The flight-recorder stack rides along without reintroducing heap
// traffic: with the registry being scraped into the time-series ring and
// every built-in alert rule evaluated between bursts, the steady-state
// delta must still be zero. The spill itself is checkpoint-cadence disk
// I/O and allocates by design, so it happens outside the measured region;
// inside it only the cadence gate (the per-tick cost) runs.
TEST(HotPathAllocTest, TimeseriesAlertsAndFlightGateStayAllocationFree) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "hotpath_flight_gate";
  fs::remove_all(dir);
  fs::create_directories(dir);

  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(
      "SELECT tb, srcIP, destIP, sum(len), count(*) FROM PKTS "
      "GROUP BY time/20 as tb, srcIP, destIP",
      catalog, {.seed = 3});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SamplingOperator op(cq->sampling);
  obs::MetricRegistry reg;
  op.set_metrics(obs::OperatorMetrics::Create(reg, "hotpath_ts"));

  obs::TimeSeries ts(
      {.capacity = 32, .max_series = 128, .max_points = 128,
       .max_bucket_deltas = 1024, .interval_ms = 100});
  obs::AlertEngine alerts(
      obs::AlertEngine::Options{.quality_ci_target = 0.05});
  alerts.AddBuiltinRules();
  obs::FlightRecorder flight(
      {.dir = dir.string(), .spill_every_n_ticks = 1ull << 40});

  std::vector<Tuple> tuples = SteadyStateTuples(2048, 32, 16);
  uint64_t t_ns = 1000000000ull;
  const uint64_t step_ns = 100ull * 1000 * 1000;
  uint64_t tick = 0;
  // Warm-up: create every group, let the ring learn every series (the
  // one-time descriptor allocations), run the state machines once and
  // take the allocating spill now rather than in the measured region.
  for (const Tuple& t : tuples) ASSERT_TRUE(op.Process(t).ok());
  for (int i = 0; i < 4; ++i) {
    ts.Scrape(reg, t_ns += step_ns);
    alerts.Evaluate(ts, t_ns);
    flight.MaybeSpill(ts, &alerts, ++tick);
  }
  flight.RequestSpill();
  flight.MaybeSpill(ts, &alerts, ++tick);
  ASSERT_EQ(flight.spills(), 1u);

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  size_t failures = 0;
  for (size_t burst = 0; burst < 4; ++burst) {
    for (size_t i = burst * 512; i < (burst + 1) * 512; ++i) {
      failures += !op.Process(tuples[i]).ok();
    }
    ts.Scrape(reg, t_ns += step_ns);
    alerts.Evaluate(ts, t_ns);
    flight.MaybeSpill(ts, &alerts, ++tick);  // cadence gate only: no spill
  }
  uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(flight.spills(), 1u);  // the gate never spilled mid-burst
  EXPECT_GE(ts.scrapes(), 8u);
  fs::remove_all(dir);
}

// The counting allocator itself must work, or the zero-deltas above would
// be vacuously true.
TEST(HotPathAllocTest, CounterObservesAllocations) {
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::vector<uint64_t>* v = new std::vector<uint64_t>(1000);
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  delete v;
  EXPECT_GE(after - before, 2u);  // the vector object + its buffer
}

}  // namespace
}  // namespace streamop
