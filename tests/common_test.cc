// Unit tests for src/common: Status/Result, PCG random + distributions,
// hashing and string utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace streamop {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad z");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad z");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad z");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::AnalysisError("x").code(), StatusCode::kAnalysisError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_EQ(t, s);
  EXPECT_EQ(t.message(), "missing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  STREAMOP_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

// ---------- Pcg64 ----------

TEST(Pcg64Test, Deterministic) {
  Pcg64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Pcg64Test, DifferentSeedsDiffer) {
  Pcg64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Pcg64Test, DoubleInUnitInterval) {
  Pcg64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg64Test, DoubleOpenNeverZero) {
  Pcg64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleOpen(), 0.0);
  }
}

TEST(Pcg64Test, BoundedRespectsBound) {
  Pcg64 rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg64Test, BoundedIsRoughlyUniform) {
  Pcg64 rng(13);
  std::vector<uint64_t> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  // chi-square with 9 dof: 99.9th percentile ~ 27.9
  EXPECT_LT(ChiSquareUniform(counts), 27.9);
}

TEST(Pcg64Test, BernoulliMatchesProbability) {
  Pcg64 rng(17);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  double p = static_cast<double>(hits) / kDraws;
  EXPECT_NEAR(p, 0.3, 0.01);
}

TEST(Pcg64Test, ExponentialMean) {
  Pcg64 rng(19);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / kDraws, 0.25, 0.01);
}

TEST(Pcg64Test, ParetoMinimumRespected) {
  Pcg64 rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(1.5, 2.0), 2.0);
  }
}

TEST(Pcg64Test, GaussianMoments) {
  Pcg64 rng(29);
  double sum = 0.0, sq = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Pcg64Test, GeometricMean) {
  // Mean of failures-before-success is (1-p)/p.
  Pcg64 rng(31);
  double p = 0.2;
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.NextGeometric(p));
  }
  EXPECT_NEAR(sum / kDraws, (1 - p) / p, 0.1);
}

TEST(Pcg64Test, GeometricDegenerateCases) {
  Pcg64 rng(37);
  EXPECT_EQ(rng.NextGeometric(1.0), 0u);
  EXPECT_EQ(rng.NextGeometric(1.5), 0u);
  EXPECT_EQ(rng.NextGeometric(0.0), UINT64_MAX);
}

// ---------- Zipf ----------

TEST(ZipfTest, RankZeroMostFrequent) {
  ZipfDistribution zipf(100, 1.2);
  Pcg64 rng(41);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(50, 0.9);
  double total = 0.0;
  for (uint64_t k = 0; k < 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.Pmf(50), 0.0);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfDistribution zipf(20, 1.0);
  Pcg64 rng(43);
  std::vector<uint64_t> counts(20, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t k = 0; k < 20; ++k) {
    double expected = zipf.Pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 5);
  }
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(7, 2.0);
  Pcg64 rng(47);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

// ---------- Hashing ----------

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);  // bijective mix: no collisions on distinct in
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashTest, HashStringBasics) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, SeededHashFamiliesDiffer) {
  int same = 0;
  for (uint64_t x = 0; x < 100; ++x) {
    if (SeededHash64(x, 1) == SeededHash64(x, 2)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(HashTest, HashToUnitInRange) {
  for (uint64_t x = 0; x < 1000; ++x) {
    double u = HashToUnit(Mix64(x));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---------- String utilities ----------

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("a1B2"), "a1b2");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, FormatIpv4) {
  EXPECT_EQ(FormatIpv4(0x0a000001), "10.0.0.1");
  EXPECT_EQ(FormatIpv4(0xffffffff), "255.255.255.255");
  EXPECT_EQ(FormatIpv4(0), "0.0.0.0");
}

TEST(StringUtilTest, ParseIpv4RoundTrip) {
  uint32_t addr = 0;
  ASSERT_TRUE(ParseIpv4("192.168.1.42", &addr));
  EXPECT_EQ(FormatIpv4(addr), "192.168.1.42");
}

TEST(StringUtilTest, ParseIpv4Rejections) {
  uint32_t addr = 0;
  EXPECT_FALSE(ParseIpv4("", &addr));
  EXPECT_FALSE(ParseIpv4("1.2.3", &addr));
  EXPECT_FALSE(ParseIpv4("1.2.3.4.5", &addr));
  EXPECT_FALSE(ParseIpv4("1.2.3.256", &addr));
  EXPECT_FALSE(ParseIpv4("a.b.c.d", &addr));
  EXPECT_FALSE(ParseIpv4("1..2.3", &addr));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
}

// ---------- ChiSquare helper ----------

TEST(ChiSquareTest, ZeroForPerfectUniform) {
  EXPECT_DOUBLE_EQ(ChiSquareUniform({10, 10, 10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareUniform({}), 0.0);
}

TEST(ChiSquareTest, PositiveForSkew) {
  EXPECT_GT(ChiSquareUniform({100, 0, 0, 0}), 0.0);
}

}  // namespace
}  // namespace streamop
