// Tests for the flight-recorder observability stack (src/obs): the
// delta-encoded metrics time-series ring (hand-computed scrape sequences,
// wraparound, gauge carry-forward, histogram bucket deltas), the SLO alert
// engine (rule parser, pending -> firing -> resolved state machine with
// hysteresis, rate/burn expressions), the CRC-guarded flight segment
// (spill/load round-trip, corruption rejection) and a forked-and-SIGKILLed
// child whose pre-crash telemetry must survive as a readable forensic
// report with a fired alert.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "obs/alerts.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "query/query.h"

namespace streamop {
namespace {

namespace fs = std::filesystem;

using obs::AlertEngine;
using obs::AlertRule;
using obs::AlertSeverity;
using obs::AlertState;
using obs::AlertStatus;
using obs::AlertTransition;
using obs::Counter;
using obs::FlightRecorder;
using obs::FlightRecorderOptions;
using obs::ForensicReport;
using obs::Gauge;
using obs::Histogram;
using obs::MetricRegistry;
using obs::SeriesKind;
using obs::TimeSeries;
using obs::TimeSeriesOptions;
using obs::TimeSeriesPoint;

constexpr uint64_t kNs = 1;
constexpr uint64_t kMs = 1000000 * kNs;
constexpr uint64_t kT0 = 1000000000ull;  // synthetic epoch
constexpr uint64_t kStep = 100 * kMs;    // synthetic scrape period

TimeSeriesOptions SmallRing(size_t capacity) {
  TimeSeriesOptions o;
  o.capacity = capacity;
  o.max_series = 64;
  o.max_points = 64;
  o.max_bucket_deltas = 256;
  o.interval_ms = 100;
  return o;
}

// ---------- time-series ring: hand-computed scrapes ----------

TEST(TimeSeriesTest, CounterDeltasMatchHandComputedScrapes) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  TimeSeries ts(SmallRing(8));

  // Scrape values 5, 12, 12 (no move), 20.
  c->Add(5);
  ts.Scrape(reg, kT0 + 0 * kStep);
  c->Add(7);
  ts.Scrape(reg, kT0 + 1 * kStep);
  ts.Scrape(reg, kT0 + 2 * kStep);
  c->Add(8);
  ts.Scrape(reg, kT0 + 3 * kStep);

  const std::vector<TimeSeriesPoint> pts = ts.Window("streamop_test_total", 8);
  ASSERT_EQ(pts.size(), 4u);
  // Cumulative reconstruction: 5, 12, 12, 20 with deltas 5, 7, 0, 8.
  EXPECT_DOUBLE_EQ(pts[0].value, 5.0);
  EXPECT_DOUBLE_EQ(pts[0].delta, 5.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 12.0);
  EXPECT_DOUBLE_EQ(pts[1].delta, 7.0);
  EXPECT_DOUBLE_EQ(pts[2].value, 12.0);
  EXPECT_DOUBLE_EQ(pts[2].delta, 0.0);
  EXPECT_DOUBLE_EQ(pts[3].value, 20.0);
  EXPECT_DOUBLE_EQ(pts[3].delta, 8.0);
  EXPECT_EQ(pts[0].t_ns, kT0);
  EXPECT_EQ(pts[3].t_ns, kT0 + 3 * kStep);
  EXPECT_DOUBLE_EQ(ts.LatestValue("streamop_test_total"), 20.0);
}

TEST(TimeSeriesTest, WraparoundFoldsDeltasIntoBaseExactly) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  TimeSeries ts(SmallRing(4));

  // 10 scrapes, scrape k adds k+1: cumulative after k is (k+1)(k+2)/2.
  for (uint64_t k = 0; k < 10; ++k) {
    c->Add(k + 1);
    ts.Scrape(reg, kT0 + k * kStep);
  }
  EXPECT_DOUBLE_EQ(ts.LatestValue("streamop_test_total"), 55.0);

  // Only 4 intervals are retained (scrapes 6..9); reconstruction must use
  // the folded base (value after scrape 5 = 21) and stay exact.
  const std::vector<TimeSeriesPoint> pts = ts.Window("streamop_test_total", 99);
  ASSERT_EQ(pts.size(), 4u);
  double expect = 21.0;
  for (size_t i = 0; i < 4; ++i) {
    const double delta = static_cast<double>(6 + i + 1);
    expect += delta;
    EXPECT_DOUBLE_EQ(pts[i].delta, delta) << "interval " << i;
    EXPECT_DOUBLE_EQ(pts[i].value, expect) << "interval " << i;
    EXPECT_EQ(pts[i].t_ns, kT0 + (6 + i) * kStep);
  }
}

TEST(TimeSeriesTest, GaugeCarryForwardAcrossSparseIntervalsAndEviction) {
  MetricRegistry reg;
  Gauge* g = reg.GetGauge("streamop_test_gauge");
  TimeSeries ts(SmallRing(4));

  g->Set(5.0);
  ts.Scrape(reg, kT0);  // the only interval holding a point
  for (uint64_t k = 1; k < 7; ++k) {
    ts.Scrape(reg, kT0 + k * kStep);  // unchanged: sparse, no points
  }
  // The interval that carried the value has been evicted; the fold must
  // have moved it into the series base.
  const std::vector<TimeSeriesPoint> pts = ts.Window("streamop_test_gauge", 99);
  ASSERT_EQ(pts.size(), 4u);
  for (const TimeSeriesPoint& p : pts) EXPECT_DOUBLE_EQ(p.value, 5.0);
  EXPECT_DOUBLE_EQ(ts.LatestValue("streamop_test_gauge"), 5.0);

  g->Set(9.5);
  ts.Scrape(reg, kT0 + 7 * kStep);
  EXPECT_DOUBLE_EQ(ts.LatestValue("streamop_test_gauge"), 9.5);
  const std::vector<TimeSeriesPoint> pts2 =
      ts.Window("streamop_test_gauge", 2);
  ASSERT_EQ(pts2.size(), 2u);
  EXPECT_DOUBLE_EQ(pts2[0].value, 5.0);
  EXPECT_DOUBLE_EQ(pts2[1].value, 9.5);
}

TEST(TimeSeriesTest, RateUsesCoveredSpanAndExcludesOldestDelta) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  TimeSeries ts(SmallRing(8));

  // +10 per 100ms scrape => 100/s. The oldest retained interval's covering
  // span is unknown, so its delta must not be counted.
  for (uint64_t k = 0; k < 5; ++k) {
    c->Add(10);
    ts.Scrape(reg, kT0 + k * kStep);
  }
  // Window covers everything: 4 counted deltas over 4 steps.
  EXPECT_NEAR(ts.Rate("streamop_test_total", 60.0), 100.0, 1e-9);
  // Narrow window: only the newest ~2 intervals are included, span runs
  // from their predecessor — still exactly 100/s.
  EXPECT_NEAR(ts.Rate("streamop_test_total", 0.25), 100.0, 1e-9);
  // A single retained interval cannot produce a rate.
  TimeSeries fresh(SmallRing(8));
  c->Add(1);
  fresh.Scrape(reg, kT0);
  EXPECT_TRUE(std::isnan(fresh.Rate("streamop_test_total", 60.0)));
}

TEST(TimeSeriesTest, RateAggregatesAcrossLabeledSeriesByBareName) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("streamop_ingest_gap_records_total",
                              "source=\"udp:1\"");
  Counter* b = reg.GetCounter("streamop_ingest_gap_records_total",
                              "source=\"udp:2\"");
  TimeSeries ts(SmallRing(8));
  for (uint64_t k = 0; k < 4; ++k) {
    a->Add(3);
    b->Add(7);
    ts.Scrape(reg, kT0 + k * kStep);
  }
  // 10 per 100ms across both sources => 100/s under the bare name.
  EXPECT_NEAR(ts.Rate("streamop_ingest_gap_records_total", 60.0), 100.0,
              1e-9);
  // Exact keys still resolve individually.
  EXPECT_NEAR(
      ts.Rate("streamop_ingest_gap_records_total{source=\"udp:1\"}", 60.0),
      30.0, 1e-9);
  EXPECT_DOUBLE_EQ(
      ts.LatestValue("streamop_ingest_gap_records_total{source=\"udp:2\"}"),
      28.0);
}

TEST(TimeSeriesTest, HistogramBucketDeltasYieldIntervalAccurateQuantiles) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("streamop_test_lat_ns");
  TimeSeries ts(SmallRing(8));

  for (int i = 0; i < 3; ++i) h->Record(100);
  ts.Scrape(reg, kT0);
  for (int i = 0; i < 5; ++i) h->Record(1000000);
  ts.Scrape(reg, kT0 + kStep);

  // The histogram decomposes into _count/_sum counter series.
  EXPECT_DOUBLE_EQ(ts.LatestValue("streamop_test_lat_ns_count"), 8.0);
  EXPECT_DOUBLE_EQ(ts.LatestValue("streamop_test_lat_ns_sum"),
                   3.0 * 100 + 5.0 * 1000000);

  // Quantiles over the whole window: 8 samples, 3 at ~100, 5 at ~1M.
  const double low_ub = static_cast<double>(
      Histogram::BucketUpperBound(Histogram::BucketIndex(100)));
  const double high_ub = static_cast<double>(
      Histogram::BucketUpperBound(Histogram::BucketIndex(1000000)));
  EXPECT_DOUBLE_EQ(ts.HistogramQuantile("streamop_test_lat_ns", 60.0, 0.3),
                   low_ub);
  EXPECT_DOUBLE_EQ(ts.HistogramQuantile("streamop_test_lat_ns", 60.0, 0.9),
                   high_ub);
  // Narrow window covering only the newest interval: every sample there is
  // ~1M, so even the low quantile jumps to the high bucket — the
  // interval-accurate behaviour a cumulative histogram cannot give.
  EXPECT_DOUBLE_EQ(ts.HistogramQuantile("streamop_test_lat_ns", 0.05, 0.3),
                   high_ub);
  EXPECT_TRUE(std::isnan(ts.HistogramQuantile("streamop_absent", 60.0, 0.5)));
}

TEST(TimeSeriesTest, OverflowDropsArePerIntervalAndCounted) {
  TimeSeriesOptions o = SmallRing(4);
  o.max_points = 16;  // constructor floor
  MetricRegistry reg;
  std::vector<Counter*> cs;
  for (int i = 0; i < 24; ++i) {
    cs.push_back(
        reg.GetCounter("streamop_test_total", "i=\"" + std::to_string(i) +
                                                  "\""));
  }
  TimeSeries ts(o);
  for (Counter* c : cs) c->Add(1);
  ts.Scrape(reg, kT0);
  // 24 moving counters into 16 point slots: 8 dropped, counted, no crash.
  EXPECT_EQ(ts.dropped_points(), 8u);
  EXPECT_EQ(ts.num_series(), 24u);
}

TEST(TimeSeriesTest, SeriesBeyondMaxSeriesAreDroppedAndCounted) {
  TimeSeriesOptions o = SmallRing(4);
  o.max_series = 3;
  MetricRegistry reg;
  for (int i = 0; i < 5; ++i) {
    reg.GetCounter("streamop_test_total",
                   "i=\"" + std::to_string(i) + "\"")->Add(1);
  }
  TimeSeries ts(o);
  ts.Scrape(reg, kT0);
  EXPECT_EQ(ts.num_series(), 3u);
  EXPECT_EQ(ts.dropped_series(), 2u);
}

TEST(TimeSeriesTest, JsonEndpointsCarrySeriesAndPoints) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  TimeSeries ts(SmallRing(8));
  c->Add(5);
  ts.Scrape(reg, kT0);
  c->Add(5);
  ts.Scrape(reg, kT0 + kStep);

  const std::string list = ts.SeriesListJson();
  EXPECT_NE(list.find("\"streamop_test_total\""), std::string::npos) << list;
  EXPECT_NE(list.find("\"kind\": \"counter\""), std::string::npos) << list;
  EXPECT_NE(list.find("\"scrapes\": 2"), std::string::npos) << list;

  const std::string range = ts.RangeJson("streamop_test_total", 60.0);
  EXPECT_NE(range.find("\"points\": [["), std::string::npos) << range;
  // Second point: cumulative 10 at rate 5 per 0.1s = 50/s.
  EXPECT_NE(range.find(", 10, 50]"), std::string::npos) << range;
}

// ---------- alert rule parser ----------

TEST(AlertRuleParserTest, ParsesFullRule) {
  auto r = AlertEngine::ParseRuleLine(
      "alert shed_high if value(streamop_runtime_shed_fraction) > 0.05 "
      "for 3 resolve 2 clear 0.01 over 30 severity critical");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->name, "shed_high");
  EXPECT_EQ(r->expr, AlertRule::Expr::kValue);
  EXPECT_EQ(r->metric, "streamop_runtime_shed_fraction");
  EXPECT_EQ(r->cmp, AlertRule::Cmp::kGt);
  EXPECT_DOUBLE_EQ(r->threshold, 0.05);
  EXPECT_EQ(r->for_intervals, 3u);
  EXPECT_EQ(r->resolve_intervals, 2u);
  EXPECT_TRUE(r->has_clear_threshold);
  EXPECT_DOUBLE_EQ(r->clear_threshold, 0.01);
  EXPECT_DOUBLE_EQ(r->window_s, 30.0);
  EXPECT_EQ(r->severity, AlertSeverity::kCritical);
}

TEST(AlertRuleParserTest, ParsesBurnWithSpacedOperands) {
  auto r = AlertEngine::ParseRuleLine(
      "alert err_budget if burn(streamop_err_total, streamop_req_total) "
      ">= 0.1 severity warning");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r->expr, AlertRule::Expr::kBurn);
  EXPECT_EQ(r->metric, "streamop_err_total");
  EXPECT_EQ(r->denom_metric, "streamop_req_total");
  EXPECT_EQ(r->cmp, AlertRule::Cmp::kGe);
}

TEST(AlertRuleParserTest, RejectsMalformedRules) {
  const char* bad[] = {
      "warn x if value(m) > 1 severity info",       // not 'alert'
      "alert x value(m) > 1 severity info",         // missing 'if'
      "alert x if frob(m) > 1 severity info",       // unknown expr
      "alert x if value(m) ~ 1 severity info",      // unknown comparator
      "alert x if value(m) > nope severity info",   // bad threshold
      "alert x if value(m) > 1 severity shouting",  // bad severity
      "alert x if value(m) > 1",                    // missing severity
      "alert x if burn(m) > 1 severity info",       // burn needs two args
      "alert x if value(m) > 1 for 0 severity info",  // zero 'for'
  };
  for (const char* line : bad) {
    EXPECT_FALSE(AlertEngine::ParseRuleLine(line).ok()) << line;
  }
}

TEST(AlertRuleParserTest, RuleTextSkipsCommentsAndNamesBadLines) {
  AlertEngine eng;
  Status ok = eng.AddRulesFromText(
      "# comment only\n"
      "\n"
      "alert a if value(m) > 1 severity info  # trailing comment\n"
      "alert b if rate(n) > 5 over 20 severity warning\n");
  EXPECT_TRUE(ok.ok()) << ok.message();
  EXPECT_EQ(eng.num_rules(), 2u);

  AlertEngine eng2;
  Status bad = eng2.AddRulesFromText(
      "alert a if value(m) > 1 severity info\n"
      "alert broken if nope\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("line 2"), std::string::npos) << bad.message();
  EXPECT_EQ(eng2.num_rules(), 1u);  // earlier lines still installed
}

// ---------- alert state machine ----------

class StateMachineFixture {
 public:
  StateMachineFixture() : ts_(SmallRing(16)) {
    gauge_ = reg_.GetGauge("streamop_test_gauge");
    AlertRule r;
    r.name = "g_high";
    r.expr = AlertRule::Expr::kValue;
    r.metric = "streamop_test_gauge";
    r.cmp = AlertRule::Cmp::kGt;
    r.threshold = 10.0;
    r.clear_threshold = 5.0;  // hysteresis
    r.has_clear_threshold = true;
    r.for_intervals = 2;
    r.resolve_intervals = 2;
    r.severity = AlertSeverity::kCritical;
    engine_.AddRule(r);
  }

  AlertState Step(double gauge_value) {
    gauge_->Set(gauge_value);
    ts_.Scrape(reg_, t_);
    engine_.Evaluate(ts_, t_);
    t_ += kStep;
    return engine_.Snapshot()[0].state;
  }

  MetricRegistry reg_;
  Gauge* gauge_ = nullptr;
  TimeSeries ts_;
  AlertEngine engine_;
  uint64_t t_ = kT0;
};

TEST(AlertStateMachineTest, PendingFiringResolvedWithHysteresis) {
  StateMachineFixture f;
  EXPECT_EQ(f.Step(3.0), AlertState::kInactive);   // below threshold
  EXPECT_EQ(f.Step(20.0), AlertState::kPending);   // 1st true < for 2
  EXPECT_EQ(f.Step(20.0), AlertState::kFiring);    // 2nd true -> firing
  EXPECT_TRUE(f.engine_.critical_firing());
  EXPECT_EQ(f.engine_.Summary().firing, 1u);

  // Hysteresis: 7 is below the firing threshold (10) but above the clear
  // threshold (5) — the alert must NOT resolve.
  EXPECT_EQ(f.Step(7.0), AlertState::kFiring);
  EXPECT_EQ(f.Step(7.0), AlertState::kFiring);
  // Truly clear, but resolve needs 2 consecutive clear evals.
  EXPECT_EQ(f.Step(3.0), AlertState::kFiring);
  EXPECT_EQ(f.Step(3.0), AlertState::kInactive);
  EXPECT_FALSE(f.engine_.critical_firing());

  // A clear interval mid-way resets the resolve count.
  EXPECT_EQ(f.Step(20.0), AlertState::kPending);
  EXPECT_EQ(f.Step(20.0), AlertState::kFiring);
  EXPECT_EQ(f.Step(3.0), AlertState::kFiring);   // clear #1
  EXPECT_EQ(f.Step(20.0), AlertState::kFiring);  // re-crossed: reset
  EXPECT_EQ(f.Step(3.0), AlertState::kFiring);   // clear #1 again
  EXPECT_EQ(f.Step(3.0), AlertState::kInactive);

  const std::vector<AlertStatus> snap = f.engine_.Snapshot();
  EXPECT_EQ(snap[0].times_fired, 2u);

  // The transition log replays the whole story, oldest first.
  const std::vector<AlertTransition> log = f.engine_.Transitions();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0].from, AlertState::kInactive);
  EXPECT_EQ(log[0].to, AlertState::kPending);
  EXPECT_EQ(log[1].to, AlertState::kFiring);
  EXPECT_EQ(log[2].from, AlertState::kFiring);
  EXPECT_EQ(log[2].to, AlertState::kInactive);
  EXPECT_EQ(log[5].to, AlertState::kInactive);
}

TEST(AlertStateMachineTest, PendingFallsBackToInactiveWhenConditionClears) {
  StateMachineFixture f;
  EXPECT_EQ(f.Step(20.0), AlertState::kPending);
  EXPECT_EQ(f.Step(3.0), AlertState::kInactive);  // never fired
  EXPECT_EQ(f.engine_.Snapshot()[0].times_fired, 0u);
}

TEST(AlertEngineTest, RateAndBurnRulesEvaluateOverTheRing) {
  MetricRegistry reg;
  Counter* err = reg.GetCounter("streamop_err_total");
  Counter* req = reg.GetCounter("streamop_req_total");
  TimeSeries ts(SmallRing(16));
  AlertEngine eng;
  ASSERT_TRUE(eng.AddRulesFromText(
                     "alert err_rate if rate(streamop_err_total) > 40 "
                     "over 60 severity warning\n"
                     "alert err_burn if burn(streamop_err_total, "
                     "streamop_req_total) > 0.05 over 60 severity critical\n")
                  .ok());
  uint64_t t = kT0;
  for (int k = 0; k < 4; ++k) {
    err->Add(5);    // 50/s at 100ms scrapes
    req->Add(50);   // 500/s -> burn fraction 0.1
    ts.Scrape(reg, t);
    eng.Evaluate(ts, t);
    t += kStep;
  }
  const std::vector<AlertStatus> snap = eng.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].state, AlertState::kFiring) << "rate rule";
  EXPECT_NEAR(snap[0].last_value, 50.0, 1e-6);
  EXPECT_EQ(snap[1].state, AlertState::kFiring) << "burn rule";
  EXPECT_NEAR(snap[1].last_value, 0.1, 1e-6);
  EXPECT_TRUE(eng.critical_firing());

  const std::string json = eng.ToJson();
  EXPECT_NE(json.find("\"critical_firing\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("burn(streamop_err_total"), std::string::npos) << json;
}

TEST(AlertEngineTest, BuiltinRulesCoverTheEngineSlos) {
  AlertEngine eng;
  eng.AddBuiltinRules();
  const std::vector<AlertStatus> snap = eng.Snapshot();
  std::vector<std::string> names;
  for (const AlertStatus& st : snap) names.push_back(st.rule.name);
  for (const char* want :
       {"shed_fraction_high", "shed_fraction_critical", "ring_push_failures",
        "ingest_gap_records", "ingest_duplicates", "late_tuples",
        "checkpoint_degraded", "checkpoint_age", "watchdog_fired"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
  }
  // The accuracy-SLO rule appears only with a target configured.
  AlertEngine::Options opt;
  opt.quality_ci_target = 123.0;
  AlertEngine with_quality(opt);
  with_quality.AddBuiltinRules();
  EXPECT_EQ(with_quality.num_rules(), eng.num_rules() + 1);
}

// ---------- concurrency (named for the TSan CI regex) ----------

TEST(ObsConcurrencyTest, ScrapeVsExportVsEvaluate) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  Gauge* g = reg.GetGauge("streamop_test_gauge");
  Histogram* h = reg.GetHistogram("streamop_test_lat_ns");
  TimeSeries ts(SmallRing(16));
  AlertEngine eng;
  eng.AddBuiltinRules();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      c->Add(3);
      g->Set(static_cast<double>(i % 100));
      h->Record(i % 4096);
      ++i;
    }
  });
  std::thread scraper([&] {
    uint64_t t = kT0;
    for (int k = 0; k < 400; ++k) {
      ts.Scrape(reg, t);
      eng.Evaluate(ts, t);
      t += kStep;
    }
  });
  std::thread reader([&] {
    for (int k = 0; k < 200; ++k) {
      (void)ts.SeriesListJson();
      (void)ts.RangeJson("streamop_test_total", 60.0);
      (void)ts.Rate("streamop_test_total", 10.0);
      (void)ts.MaxValue("streamop_test_gauge");
      (void)eng.ToJson();
      (void)eng.Summary();
    }
  });
  scraper.join();
  reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(ts.scrapes(), 400u);
  EXPECT_EQ(eng.evaluations(), 400u);
}

// ---------- flight recorder ----------

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("flight_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FlightRecorderTest, SpillLoadRoundTrip) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  Gauge* g = reg.GetGauge("streamop_runtime_shed_fraction");
  TimeSeries ts(SmallRing(16));
  AlertEngine eng;
  eng.AddBuiltinRules();
  uint64_t t = kT0;
  for (int k = 0; k < 6; ++k) {
    c->Add(10);
    g->Set(0.6);  // above shed_fraction_critical's 0.5 for 2 -> fires
    ts.Scrape(reg, t);
    eng.Evaluate(ts, t);
    t += kStep;
  }
  ASSERT_TRUE(eng.critical_firing());

  FlightRecorderOptions fopt;
  fopt.dir = dir_.string();
  FlightRecorder rec(fopt);
  ASSERT_TRUE(rec.Spill(ts, &eng).ok());
  EXPECT_EQ(rec.spills(), 1u);

  auto loaded = FlightRecorder::Load(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const ForensicReport& r = *loaded;
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.scrapes, 6u);
  EXPECT_GE(r.fired_alerts(), 1u);
  bool found_series = false, found_alert = false, found_transition = false;
  for (const auto& row : r.rows) {
    if (row.key == "streamop_test_total") {
      found_series = true;
      ASSERT_FALSE(row.values.empty());
      // Counters are pre-rendered as rates: 10 per 100ms = 100/s.
      EXPECT_NEAR(row.values.back(), 100.0, 1e-6);
    }
  }
  for (const auto& a : r.alerts) {
    if (a.name == "shed_fraction_critical") {
      found_alert = true;
      EXPECT_EQ(a.state, "firing");
      EXPECT_EQ(a.severity, "critical");
      EXPECT_GE(a.times_fired, 1u);
    }
  }
  for (const auto& tr : r.transitions) {
    if (tr.rule == "shed_fraction_critical" && tr.to == "firing") {
      found_transition = true;
    }
  }
  EXPECT_TRUE(found_series);
  EXPECT_TRUE(found_alert);
  EXPECT_TRUE(found_transition);

  // Both render paths must mention the fired alert.
  EXPECT_NE(r.ToText().find("shed_fraction_critical"), std::string::npos);
  EXPECT_NE(r.ToJson().find("shed_fraction_critical"), std::string::npos);
}

TEST_F(FlightRecorderTest, CorruptAndTruncatedSegmentsAreRejected) {
  MetricRegistry reg;
  reg.GetCounter("streamop_test_total")->Add(7);
  TimeSeries ts(SmallRing(8));
  ts.Scrape(reg, kT0);
  ts.Scrape(reg, kT0 + kStep);
  FlightRecorderOptions fopt;
  fopt.dir = dir_.string();
  FlightRecorder rec(fopt);
  ASSERT_TRUE(rec.Spill(ts, nullptr).ok());
  const std::string path = rec.segment_path();

  // Pristine copy loads.
  ASSERT_TRUE(FlightRecorder::Load(dir_.string()).ok());

  // Flip one payload byte: payload CRC must reject it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(FlightRecorder::kHeaderSize + 5);
    char b = 0;
    f.seekg(FlightRecorder::kHeaderSize + 5);
    f.read(&b, 1);
    b ^= 0x40;
    f.seekp(FlightRecorder::kHeaderSize + 5);
    f.write(&b, 1);
  }
  EXPECT_FALSE(FlightRecorder::Load(dir_.string()).ok());

  // Rewrite, then truncate mid-payload: torn write must be rejected.
  ASSERT_TRUE(rec.Spill(ts, nullptr).ok());
  ASSERT_TRUE(FlightRecorder::Load(dir_.string()).ok());
  fs::resize_file(path, fs::file_size(path) - 7);
  EXPECT_FALSE(FlightRecorder::Load(dir_.string()).ok());

  // Empty dir: NotFound, not an error that looks like corruption.
  fs::remove(path);
  auto missing = FlightRecorder::Load(dir_.string());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(FlightRecorderTest, MaybeSpillHonoursCadenceAndRequests) {
  MetricRegistry reg;
  reg.GetCounter("streamop_test_total")->Add(1);
  TimeSeries ts(SmallRing(8));
  ts.Scrape(reg, kT0);
  FlightRecorderOptions fopt;
  fopt.dir = dir_.string();
  fopt.spill_every_n_ticks = 4;
  FlightRecorder rec(fopt);
  rec.MaybeSpill(ts, nullptr, 1);
  rec.MaybeSpill(ts, nullptr, 2);
  EXPECT_EQ(rec.spills(), 0u);  // off-cadence, no request
  rec.MaybeSpill(ts, nullptr, 4);
  EXPECT_EQ(rec.spills(), 1u);  // cadence hit
  rec.RequestSpill();
  rec.MaybeSpill(ts, nullptr, 5);
  EXPECT_EQ(rec.spills(), 2u);  // explicit request, off-cadence
  rec.MaybeSpill(ts, nullptr, 6);
  EXPECT_EQ(rec.spills(), 2u);  // request consumed
}

// ---------- SIGKILL forensics: the tentpole end-to-end guarantee ----------

// The child drives the whole stack the way the runtime's sampler does —
// scrape, evaluate, spill — while its telemetry degrades (ingest gaps, a
// fired watchdog). SIGKILL means no destructors and no final flush: only
// what the cadence spills already persisted can survive.
bool RunForensicsChildAndKill(const std::string& dir) {
  const pid_t pid = fork();
  if (pid == 0) {
    MetricRegistry reg;
    Counter* gaps = reg.GetCounter("streamop_ingest_gap_records_total",
                                   "source=\"udp:9999\"");
    Gauge* watchdog = reg.GetGauge("streamop_runtime_watchdog_fired");
    TimeSeries ts(SmallRing(32));
    AlertEngine eng;
    eng.AddBuiltinRules();
    FlightRecorderOptions fopt;
    fopt.dir = dir;
    fopt.spill_every_n_ticks = 1;  // every tick, so the parent can kill fast
    FlightRecorder rec(fopt);
    uint64_t t = kT0;
    for (uint64_t k = 0;; ++k) {
      gaps->Add(25);        // pre-crash gap spike -> ingest_gap_records fires
      watchdog->Set(1.0);   // critical watchdog_fired
      ts.Scrape(reg, t);
      eng.Evaluate(ts, t);
      rec.MaybeSpill(ts, &eng, k);
      t += kStep;
      ::usleep(2000);
    }
  }
  // Wait until at least one complete segment exists, give the child a few
  // more spill rounds, then kill it dead.
  const std::string seg = dir + "/flight.seg";
  bool seen = false;
  for (int i = 0; i < 500; ++i) {
    std::error_code ec;
    if (fs::exists(seg, ec) && fs::file_size(seg, ec) > 0) {
      seen = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (seen) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return seen && WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
}

TEST_F(FlightRecorderTest, SegmentSurvivesSigkillWithFiredAlerts) {
  ASSERT_TRUE(RunForensicsChildAndKill(dir_.string()))
      << "child never produced a segment";

  auto loaded = FlightRecorder::Load(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const ForensicReport& r = *loaded;
  ASSERT_TRUE(r.valid);
  EXPECT_GE(r.scrapes, 1u);
  EXPECT_GE(r.fired_alerts(), 1u) << r.ToText();

  bool watchdog_fired = false, gaps_recorded = false;
  for (const auto& a : r.alerts) {
    if (a.name == "watchdog_fired" && a.state == "firing") {
      watchdog_fired = true;
    }
  }
  for (const auto& row : r.rows) {
    if (row.key ==
        "streamop_ingest_gap_records_total{source=\"udp:9999\"}") {
      gaps_recorded = true;
      ASSERT_FALSE(row.values.empty());
    }
  }
  EXPECT_TRUE(watchdog_fired) << r.ToText();
  EXPECT_TRUE(gaps_recorded) << r.ToText();

  // The human-readable report is actually readable.
  const std::string text = r.ToText();
  EXPECT_NE(text.find("pre-crash forensics"), std::string::npos);
  EXPECT_NE(text.find("watchdog_fired"), std::string::npos);

  // The runtime's recovery path surfaces the same report: a fresh runtime
  // pointed at the flight dir loads the segment at construction.
  Catalog catalog = Catalog::Default();
  auto low = CompileQuery(
      "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
      "FROM PKT",
      catalog, {.seed = 1});
  auto high = CompileQuery(
      "SELECT tb, count(*) FROM PKT GROUP BY time/5 as tb", catalog,
      {.seed = 1});
  ASSERT_TRUE(low.ok() && high.ok());
  RuntimeOptions opt;
  opt.flight.dir = dir_.string();
  opt.timeseries.interval_ms = 50;
  TwoLevelRuntime rt(*low, {*high}, opt);
  EXPECT_TRUE(rt.forensic_report().valid);
  EXPECT_GE(rt.forensic_report().fired_alerts(), 1u);
  EXPECT_NE(rt.forensic_report().ToJson().find("watchdog_fired"),
            std::string::npos);
}

// ---------- sampler ----------

TEST(TimeSeriesSamplerTest, ThreadedSamplerScrapesAndStops) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("streamop_test_total");
  TimeSeries ts(SmallRing(16));
  obs::TimeSeriesSampler::Options opt;
  opt.interval_ms = 5;
  opt.registry = &reg;
  opt.timeseries = &ts;
  obs::TimeSeriesSampler sampler(opt);
  ASSERT_TRUE(sampler.Start().ok());
#ifndef STREAMOP_NO_STATS
  EXPECT_TRUE(sampler.running());
  for (int i = 0; i < 100 && ts.scrapes() < 3; ++i) {
    c->Add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ts.scrapes(), 3u);
#endif
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  const uint64_t after = ts.scrapes();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(ts.scrapes(), after);  // really stopped
}

}  // namespace
}  // namespace streamop
