// Tests for src/core: the sampling operator's evaluation loop (§6.4) with
// hand-assembled plans — window semantics, grouping, aggregates,
// supergroups, superaggregates, cleaning phases, and SFUN state hand-off —
// plus the superaggregate state machine in isolation.

#include <gtest/gtest.h>

#include "core/sampling_operator.h"
#include "core/sfun_subset_sum.h"
#include "core/superagg.h"
#include "expr/stateful.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

// Test schema: S(t increasing, k, v).
SchemaPtr TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<Field>{{"t", FieldType::kUInt, Ordering::kIncreasing},
                              {"k", FieldType::kUInt, Ordering::kNone},
                              {"v", FieldType::kUInt, Ordering::kNone}});
}

Tuple Row(uint64_t t, uint64_t k, uint64_t v) {
  return Tuple({Value::UInt(t), Value::UInt(k), Value::UInt(v)});
}

// Base plan: SELECT tb, k, sum(v), count(*) FROM S GROUP BY t/10 as tb, k.
std::shared_ptr<SamplingQueryPlan> MakeAggregationPlan() {
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};

  AggregateSpec sum_spec;
  sum_spec.kind = AggregateKind::kSum;
  sum_spec.arg = Expr::InputRef("v", 2);
  sum_spec.display = "sum(v)";
  AggregateSpec cnt_spec;
  cnt_spec.kind = AggregateKind::kCount;
  cnt_spec.star = true;
  cnt_spec.display = "count(*)";
  plan->aggregates = {sum_spec, cnt_spec};

  plan->select_exprs = {Expr::GroupByRef("tb", 0), Expr::GroupByRef("k", 1),
                        Expr::AggregateRef(0), Expr::AggregateRef(1)};
  plan->output_names = {"tb", "k", "sum_v", "cnt"};
  return plan;
}

TEST(SamplingOperatorTest, PlainAggregationPerWindow) {
  SamplingOperator op(MakeAggregationPlan());
  // Window 0 (t in [0,10)): k=1 gets 5+7, k=2 gets 3.
  ASSERT_TRUE(op.Process(Row(1, 1, 5)).ok());
  ASSERT_TRUE(op.Process(Row(2, 2, 3)).ok());
  ASSERT_TRUE(op.Process(Row(9, 1, 7)).ok());
  // Window 1: k=1 gets 100.
  ASSERT_TRUE(op.Process(Row(12, 1, 100)).ok());
  ASSERT_TRUE(op.FinishStream().ok());

  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 3u);
  std::map<std::pair<uint64_t, uint64_t>, std::pair<uint64_t, uint64_t>> got;
  for (const Tuple& t : out) {
    got[{t[0].AsUInt(), t[1].AsUInt()}] = {t[2].AsUInt(), t[3].AsUInt()};
  }
  using UPair = std::pair<uint64_t, uint64_t>;
  UPair key01{0, 1}, key02{0, 2}, key11{1, 1};
  EXPECT_EQ(got[key01], UPair(12, 2));
  EXPECT_EQ(got[key02], UPair(3, 1));
  EXPECT_EQ(got[key11], UPair(100, 1));
}

TEST(SamplingOperatorTest, WindowBoundaryOnOrderedChange) {
  SamplingOperator op(MakeAggregationPlan());
  ASSERT_TRUE(op.Process(Row(0, 1, 1)).ok());
  EXPECT_TRUE(op.DrainOutput().empty());  // window still open
  ASSERT_TRUE(op.Process(Row(10, 1, 1)).ok());  // t/10 changes 0 -> 1
  EXPECT_EQ(op.DrainOutput().size(), 1u);  // window 0 flushed
  EXPECT_EQ(op.window_stats().size(), 1u);
  ASSERT_TRUE(op.FinishStream().ok());
  EXPECT_EQ(op.DrainOutput().size(), 1u);
}

TEST(SamplingOperatorTest, WhereFiltersTuples) {
  auto plan = MakeAggregationPlan();
  // WHERE v >= 10
  plan->where = Expr::Binary(BinaryOp::kGe, Expr::InputRef("v", 2),
                             Expr::Literal(Value::UInt(10)));
  SamplingOperator op(plan);
  ASSERT_TRUE(op.Process(Row(1, 1, 5)).ok());   // filtered
  ASSERT_TRUE(op.Process(Row(2, 1, 50)).ok());  // kept
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][2].AsUInt(), 50u);
  ASSERT_EQ(op.window_stats().size(), 1u);
  EXPECT_EQ(op.window_stats()[0].tuples_in, 2u);
  EXPECT_EQ(op.window_stats()[0].tuples_admitted, 1u);
}

TEST(SamplingOperatorTest, HavingPrunesGroups) {
  auto plan = MakeAggregationPlan();
  // HAVING sum(v) > 10
  plan->having = Expr::Binary(BinaryOp::kGt, Expr::AggregateRef(0),
                              Expr::Literal(Value::UInt(10)));
  SamplingOperator op(plan);
  ASSERT_TRUE(op.Process(Row(1, 1, 5)).ok());
  ASSERT_TRUE(op.Process(Row(1, 2, 50)).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1].AsUInt(), 2u);
  EXPECT_EQ(op.window_stats()[0].groups_output, 1u);
  EXPECT_EQ(op.window_stats()[0].tuples_output, 1u);  // HAVING pruned k=1
}

TEST(SamplingOperatorTest, WindowStatsCountTuplesOutput) {
  SamplingOperator op(MakeAggregationPlan());
  // Window 0: three groups -> three output rows; window 1: one group.
  ASSERT_TRUE(op.Process(Row(1, 1, 1)).ok());
  ASSERT_TRUE(op.Process(Row(2, 2, 1)).ok());
  ASSERT_TRUE(op.Process(Row(3, 3, 1)).ok());
  ASSERT_TRUE(op.Process(Row(11, 1, 1)).ok());  // flushes window 0
  ASSERT_TRUE(op.FinishStream().ok());
  ASSERT_EQ(op.window_stats().size(), 2u);
  EXPECT_EQ(op.window_stats()[0].tuples_output, 3u);
  EXPECT_EQ(op.window_stats()[1].tuples_output, 1u);
  // Without HAVING, every surviving group emits exactly one row.
  EXPECT_EQ(op.window_stats()[0].tuples_output,
            op.window_stats()[0].groups_output);
  EXPECT_EQ(op.DrainOutput().size(), 4u);
}

// Adds count_distinct$ over the default (ALL) supergroup plus a cleaning
// pair: trigger when more than `limit` groups are live, keep groups with
// count(*) >= 2.
void AddCleaning(std::shared_ptr<SamplingQueryPlan>& plan, uint64_t limit) {
  SuperAggSpec cd;
  cd.kind = SuperAggKind::kCountDistinct;
  cd.display = "count_distinct$(*)";
  plan->superaggs = {cd};
  plan->cleaning_when = Expr::Binary(BinaryOp::kGt, Expr::SuperAggRef(0),
                                     Expr::Literal(Value::UInt(limit)));
  plan->cleaning_by = Expr::Binary(BinaryOp::kGe, Expr::AggregateRef(1),
                                   Expr::Literal(Value::UInt(2)));
}

TEST(SamplingOperatorTest, CleaningPhaseRemovesGroups) {
  auto plan = MakeAggregationPlan();
  AddCleaning(plan, 3);
  SamplingOperator op(plan);
  // Create groups k=1..3 (one tuple each), then repeat k=1 (count 2), then
  // k=4 pushes the live count to 4 > 3 -> cleaning keeps only count>=2.
  ASSERT_TRUE(op.Process(Row(1, 1, 1)).ok());
  ASSERT_TRUE(op.Process(Row(1, 2, 1)).ok());
  ASSERT_TRUE(op.Process(Row(1, 3, 1)).ok());
  ASSERT_TRUE(op.Process(Row(1, 1, 1)).ok());
  EXPECT_EQ(op.num_groups(), 3u);
  ASSERT_TRUE(op.Process(Row(1, 4, 1)).ok());  // trigger
  // Survivors: k=1 (count 2). k=2,3 removed; k=4 arrived with count 1 and
  // is removed by the same pass (it was inserted before the trigger check).
  EXPECT_EQ(op.num_groups(), 1u);
  ASSERT_TRUE(op.FinishStream().ok());
  ASSERT_EQ(op.window_stats().size(), 1u);
  EXPECT_EQ(op.window_stats()[0].cleaning_phases, 1u);
  EXPECT_EQ(op.window_stats()[0].groups_removed, 3u);
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1].AsUInt(), 1u);
}

TEST(SamplingOperatorTest, CountDistinctTracksRemovals) {
  auto plan = MakeAggregationPlan();
  AddCleaning(plan, 2);
  // SELECT also exposes count_distinct$ to observe it at flush.
  plan->select_exprs.push_back(Expr::SuperAggRef(0));
  plan->output_names.push_back("cd");
  SamplingOperator op(plan);
  ASSERT_TRUE(op.Process(Row(1, 1, 1)).ok());
  ASSERT_TRUE(op.Process(Row(1, 1, 1)).ok());
  ASSERT_TRUE(op.Process(Row(1, 2, 1)).ok());
  ASSERT_TRUE(op.Process(Row(1, 3, 1)).ok());  // 3 > 2: clean, keep k=1 only
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][4].AsUInt(), 1u);  // count_distinct$ after removals
}

TEST(SamplingOperatorTest, SupergroupPartitionsCleaning) {
  // Supergroup on k's parity: cleaning in one supergroup must not touch
  // groups of the other.
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(100))),
      Expr::Binary(BinaryOp::kMod, Expr::InputRef("k", 1),
                   Expr::Literal(Value::UInt(2))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "parity", "k"};
  plan->group_by_ordered = {true, false, false};
  plan->supergroup_slots = {1};  // parity

  AggregateSpec cnt;
  cnt.kind = AggregateKind::kCount;
  cnt.star = true;
  cnt.display = "count(*)";
  plan->aggregates = {cnt};

  SuperAggSpec cd;
  cd.kind = SuperAggKind::kCountDistinct;
  cd.display = "count_distinct$(*)";
  plan->superaggs = {cd};

  plan->select_exprs = {Expr::GroupByRef("parity", 1), Expr::GroupByRef("k", 2),
                        Expr::AggregateRef(0)};
  plan->output_names = {"parity", "k", "cnt"};
  // Trigger cleaning when a supergroup holds > 2 groups; remove everything
  // (CLEANING BY FALSE).
  plan->cleaning_when = Expr::Binary(BinaryOp::kGt, Expr::SuperAggRef(0),
                                     Expr::Literal(Value::UInt(2)));
  plan->cleaning_by = Expr::Literal(Value::Bool(false));

  SamplingOperator op(plan);
  // Even supergroup: k=0,2,4 (third insert trips the cleaner, wiping evens).
  // Odd supergroup: k=1,3 stays at 2 groups — untouched.
  for (uint64_t k : {0, 1, 2, 3, 4}) {
    ASSERT_TRUE(op.Process(Row(1, k, 1)).ok());
  }
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 2u);
  for (const Tuple& t : out) {
    EXPECT_EQ(t[0].AsUInt(), 1u) << "only odd supergroup should survive";
  }
}

TEST(SamplingOperatorTest, KthSmallestSuperaggregate) {
  // SELECT tb, k FROM S GROUP BY t/10 tb, k WHERE k <= kth_smallest$(k, 2):
  // admits groups while their k is within the 2 smallest seen.
  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};
  AggregateSpec cnt;
  cnt.kind = AggregateKind::kCount;
  cnt.star = true;
  cnt.display = "count(*)";
  plan->aggregates = {cnt};

  SuperAggSpec kth;
  kth.kind = SuperAggKind::kKthSmallest;
  kth.group_by_slot = 1;
  kth.k = 2;
  kth.display = "kth_smallest$(k, 2)";
  plan->superaggs = {kth};

  plan->where = Expr::Binary(BinaryOp::kLe, Expr::GroupByRef("k", 1),
                             Expr::SuperAggRef(0));
  plan->having = Expr::Binary(BinaryOp::kLe, Expr::GroupByRef("k", 1),
                              Expr::SuperAggRef(0));
  plan->cleaning_when = Expr::Binary(BinaryOp::kGt, Expr::SuperAggRef(0),
                                     Expr::Literal(Value::UInt(1000)));
  plan->cleaning_by = Expr::Literal(Value::Bool(true));
  plan->select_exprs = {Expr::GroupByRef("k", 1)};
  plan->output_names = {"k"};

  SamplingOperator op(plan);
  // ks arrive in decreasing order; the final 2-smallest are 2 and 4.
  for (uint64_t k : {20, 10, 8, 6, 4, 2}) {
    ASSERT_TRUE(op.Process(Row(1, k, 1)).ok());
  }
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  std::set<uint64_t> ks;
  for (const Tuple& t : out) ks.insert(t[0].AsUInt());
  EXPECT_TRUE(ks.count(2) == 1);
  EXPECT_TRUE(ks.count(4) == 1);
  // Larger ks were admitted while the sketch was filling but must fail the
  // HAVING clause at window end.
  EXPECT_TRUE(ks.count(20) == 0);
}

TEST(SamplingOperatorTest, SumSuperaggregateWithShadowSubtraction) {
  auto plan = MakeAggregationPlan();
  // sum$(v) with shadow on aggregate slot 0 (sum(v)); cleaning removes
  // single-tuple groups when more than 2 groups are live.
  SuperAggSpec cd;
  cd.kind = SuperAggKind::kCountDistinct;
  cd.display = "count_distinct$(*)";
  SuperAggSpec ssum;
  ssum.kind = SuperAggKind::kSum;
  ssum.arg = Expr::InputRef("v", 2);
  ssum.shadow_agg_slot = 0;  // sum(v) already present in aggregates[0]
  ssum.display = "sum$(v)";
  plan->superaggs = {cd, ssum};
  plan->cleaning_when = Expr::Binary(BinaryOp::kGt, Expr::SuperAggRef(0),
                                     Expr::Literal(Value::UInt(2)));
  plan->cleaning_by = Expr::Binary(BinaryOp::kGe, Expr::AggregateRef(1),
                                   Expr::Literal(Value::UInt(2)));
  plan->select_exprs.push_back(Expr::SuperAggRef(1));
  plan->output_names.push_back("supersum");

  SamplingOperator op(plan);
  ASSERT_TRUE(op.Process(Row(1, 1, 10)).ok());
  ASSERT_TRUE(op.Process(Row(1, 1, 10)).ok());
  ASSERT_TRUE(op.Process(Row(1, 2, 7)).ok());
  ASSERT_TRUE(op.Process(Row(1, 3, 5)).ok());  // trigger: k=2, k=3 removed
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);
  // sum$ saw 10+10+7+5 = 32, minus removed shadows 7 and 5 -> 20.
  EXPECT_EQ(out[0][4].AsUInt(), 20u);
}

TEST(SamplingOperatorTest, SfunStateCarriesAcrossWindows) {
  EnsureBuiltinSfunPackagesRegistered();
  const SfunStateDef* state =
      SfunRegistry::Global().FindState("subsetsum_sampling_state");
  ASSERT_NE(state, nullptr);
  const SfunDef* ssample = SfunRegistry::Global().FindFunction("ssample");
  const SfunDef* ssthreshold =
      SfunRegistry::Global().FindFunction("ssthreshold");
  const SfunDef* ssdo_clean = SfunRegistry::Global().FindFunction("ssdo_clean");
  const SfunDef* ssclean_with =
      SfunRegistry::Global().FindFunction("ssclean_with");

  auto plan = std::make_shared<SamplingQueryPlan>();
  plan->input_schema = TestSchema();
  plan->group_by_exprs = {
      Expr::Binary(BinaryOp::kDiv, Expr::InputRef("t", 0),
                   Expr::Literal(Value::UInt(10))),
      Expr::InputRef("k", 1)};
  plan->group_by_names = {"tb", "k"};
  plan->group_by_ordered = {true, false};
  plan->sfun_states = {state};

  AggregateSpec sum_spec;
  sum_spec.kind = AggregateKind::kSum;
  sum_spec.arg = Expr::InputRef("v", 2);
  sum_spec.display = "sum(v)";
  plan->aggregates = {sum_spec};

  SuperAggSpec cd;
  cd.kind = SuperAggKind::kCountDistinct;
  cd.display = "count_distinct$(*)";
  plan->superaggs = {cd};

  auto SfunCall = [&](const SfunDef* def, std::vector<ExprPtr> args) {
    ExprPtr e = Expr::Call(def->name, std::move(args));
    e->kind = ExprKind::kStatefulCall;
    e->sfun = def;
    e->sfun_state_slot = 0;
    return e;
  };

  // WHERE ssample(v, 4) = TRUE, with a tiny target to force cleaning.
  plan->where =
      Expr::Binary(BinaryOp::kEq,
                   SfunCall(ssample, {Expr::InputRef("v", 2),
                                      Expr::Literal(Value::UInt(4))}),
                   Expr::Literal(Value::Bool(true)));
  plan->cleaning_when =
      Expr::Binary(BinaryOp::kEq, SfunCall(ssdo_clean, {Expr::SuperAggRef(0)}),
                   Expr::Literal(Value::Bool(true)));
  plan->cleaning_by =
      Expr::Binary(BinaryOp::kEq, SfunCall(ssclean_with, {Expr::AggregateRef(0)}),
                   Expr::Literal(Value::Bool(true)));
  plan->select_exprs = {Expr::GroupByRef("tb", 0), SfunCall(ssthreshold, {})};
  plan->output_names = {"tb", "z"};

  SamplingOperator op(plan);
  // Window 0: many tuples -> z grows well above the initial 1.0.
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(op.Process(Row(1, i, 100 + (i % 900))).ok());
  }
  // Window 1: one tuple; its state must inherit window 0's threshold, so
  // the first ssample call rejects a small tuple (v < carried z).
  ASSERT_TRUE(op.Process(Row(11, 0, 1)).ok());
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_GE(out.size(), 1u);
  double z_win0 = out[0][1].AsDouble();
  EXPECT_GT(z_win0, 100.0);  // threshold adapted upward
  ASSERT_EQ(op.window_stats().size(), 2u);
  EXPECT_GT(op.window_stats()[0].cleaning_phases, 0u);
  EXPECT_EQ(op.window_stats()[1].tuples_admitted, 0u);  // carried z rejects
}

TEST(SamplingOperatorTest, NoGroupByOrderedMeansSingleWindow) {
  auto plan = MakeAggregationPlan();
  plan->group_by_ordered = {false, false};  // nothing ordered
  SamplingOperator op(plan);
  ASSERT_TRUE(op.Process(Row(1, 1, 1)).ok());
  ASSERT_TRUE(op.Process(Row(500, 1, 1)).ok());  // still the same window
  EXPECT_TRUE(op.DrainOutput().empty());
  ASSERT_TRUE(op.FinishStream().ok());
  EXPECT_EQ(op.window_stats().size(), 1u);
}

TEST(SamplingOperatorTest, RunToCompletionDriver) {
  auto plan = MakeAggregationPlan();
  SchemaPtr schema = TestSchema();
  std::vector<Tuple> rows = {Row(1, 1, 5), Row(2, 1, 5), Row(11, 2, 3)};
  VectorTupleSource src(schema, rows);
  SamplingOperator op(plan);
  Result<std::vector<Tuple>> out = RunToCompletion(op, src);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

// ---------- SuperAggState in isolation ----------

TEST(SuperAggStateTest, CountDistinctAddRemove) {
  SuperAggSpec spec;
  spec.kind = SuperAggKind::kCountDistinct;
  SuperAggState st(&spec);
  GroupKey g1({Value::UInt(1)}), g2({Value::UInt(2)});
  st.OnGroupCreated(g1);
  st.OnGroupCreated(g2);
  EXPECT_EQ(st.Final(), Value::UInt(2));
  st.OnGroupRemoved(g1, Value::Null());
  EXPECT_EQ(st.Final(), Value::UInt(1));
  st.OnGroupRemoved(g2, Value::Null());
  st.OnGroupRemoved(g2, Value::Null());  // double-remove stays at 0
  EXPECT_EQ(st.Final(), Value::UInt(0));
}

TEST(SuperAggStateTest, KthSmallestWithDuplicatesAndRemoval) {
  SuperAggSpec spec;
  spec.kind = SuperAggKind::kKthSmallest;
  spec.group_by_slot = 0;
  spec.k = 2;
  SuperAggState st(&spec);
  EXPECT_EQ(st.Final(), Value::UInt(UINT64_MAX));  // below k: everything passes
  st.OnGroupCreated(GroupKey({Value::UInt(5)}));
  st.OnGroupCreated(GroupKey({Value::UInt(5)}));  // duplicate value
  EXPECT_EQ(st.Final(), Value::UInt(5));
  st.OnGroupCreated(GroupKey({Value::UInt(3)}));
  EXPECT_EQ(st.Final(), Value::UInt(5));  // 2nd smallest of {3,5,5}
  st.OnGroupRemoved(GroupKey({Value::UInt(5)}), Value::Null());
  EXPECT_EQ(st.Final(), Value::UInt(5));  // {3,5}
  st.OnGroupRemoved(GroupKey({Value::UInt(5)}), Value::Null());
  EXPECT_EQ(st.Final(), Value::UInt(UINT64_MAX));  // {3}: below k again
}

TEST(SuperAggStateTest, FirstIsInsensitiveToRemoval) {
  SuperAggSpec spec;
  spec.kind = SuperAggKind::kFirst;
  spec.arg = Expr::InputRef("v", 0);
  SuperAggState st(&spec);
  EXPECT_TRUE(st.Final().is_null());
  st.OnTuple(Value::UInt(9));
  st.OnTuple(Value::UInt(5));
  EXPECT_EQ(st.Final(), Value::UInt(9));
  st.OnGroupRemoved(GroupKey(std::vector<Value>{}), Value::UInt(9));
  EXPECT_EQ(st.Final(), Value::UInt(9));
}

TEST(SuperAggStateTest, KthLargestWithRemoval) {
  SuperAggSpec spec;
  spec.kind = SuperAggKind::kKthLargest;
  spec.group_by_slot = 0;
  spec.k = 2;
  SuperAggState st(&spec);
  EXPECT_EQ(st.Final(), Value::UInt(0));  // below k: nothing excluded
  st.OnGroupCreated(GroupKey({Value::Double(5.0)}));
  st.OnGroupCreated(GroupKey({Value::Double(9.0)}));
  st.OnGroupCreated(GroupKey({Value::Double(7.0)}));
  EXPECT_EQ(st.Final(), Value::Double(7.0));  // 2nd largest of {5,7,9}
  st.OnGroupRemoved(GroupKey({Value::Double(9.0)}), Value::Null());
  EXPECT_EQ(st.Final(), Value::Double(5.0));  // {5,7}
}

TEST(SuperAggStateTest, LookupNames) {
  SuperAggKind k;
  EXPECT_TRUE(LookupSuperAggKind("count_distinct", &k));
  EXPECT_EQ(k, SuperAggKind::kCountDistinct);
  EXPECT_TRUE(LookupSuperAggKind("Kth_smallest_value", &k));
  EXPECT_EQ(k, SuperAggKind::kKthSmallest);
  EXPECT_TRUE(LookupSuperAggKind("kth_largest_value", &k));
  EXPECT_EQ(k, SuperAggKind::kKthLargest);
  EXPECT_TRUE(LookupSuperAggKind("sum", &k));
  EXPECT_FALSE(LookupSuperAggKind("median", &k));
}

// ---------- Subset-sum SFUN state unit behaviour ----------

TEST(SubsetSumSfunTest, StateInitCarriesConfigAndRelaxesZ) {
  EnsureBuiltinSfunPackagesRegistered();
  const SfunStateDef* def =
      SfunRegistry::Global().FindState("subsetsum_sampling_state");
  ASSERT_NE(def, nullptr);

  alignas(std::max_align_t) unsigned char old_mem[sizeof(SubsetSumSfunState)];
  alignas(std::max_align_t) unsigned char new_mem[sizeof(SubsetSumSfunState)];
  def->init(old_mem, nullptr, 1);
  auto* old_state = reinterpret_cast<SubsetSumSfunState*>(old_mem);
  old_state->target = 500;
  old_state->beta = 3.0;
  old_state->relax_factor = 10.0;
  old_state->admit.set_z(400.0);

  def->init(new_mem, old_mem, 2);
  auto* new_state = reinterpret_cast<SubsetSumSfunState*>(new_mem);
  EXPECT_EQ(new_state->target, 500u);
  EXPECT_DOUBLE_EQ(new_state->beta, 3.0);
  EXPECT_DOUBLE_EQ(new_state->admit.z(), 40.0);  // 400 / relax_factor
  EXPECT_EQ(new_state->cleanings_this_window, 0u);

  def->destroy(old_mem);
  def->destroy(new_mem);
}

TEST(SubsetSumSfunTest, NonRelaxedCarriesZVerbatim) {
  EnsureBuiltinSfunPackagesRegistered();
  const SfunStateDef* def =
      SfunRegistry::Global().FindState("subsetsum_sampling_state");
  alignas(std::max_align_t) unsigned char old_mem[sizeof(SubsetSumSfunState)];
  alignas(std::max_align_t) unsigned char new_mem[sizeof(SubsetSumSfunState)];
  def->init(old_mem, nullptr, 1);
  auto* old_state = reinterpret_cast<SubsetSumSfunState*>(old_mem);
  old_state->target = 100;
  old_state->relax_factor = 1.0;
  old_state->admit.set_z(250.0);
  def->init(new_mem, old_mem, 2);
  auto* new_state = reinterpret_cast<SubsetSumSfunState*>(new_mem);
  EXPECT_DOUBLE_EQ(new_state->admit.z(), 250.0);
  def->destroy(old_mem);
  def->destroy(new_mem);
}

}  // namespace
}  // namespace streamop
