// Determinism regression: a fixed-seed subset-sum query over a fixed trace
// must emit byte-identical output — rows AND window stats — run after run
// and build after build. This pins down the invariant that no result ever
// depends on hash-table iteration order: the flat tables' slot order shifts
// with capacity and churn, so any leak of iteration order into output would
// show up here immediately. The golden checksum below was captured from the
// seed implementation (std::unordered_map tables, per-call key hashing)
// before the flat-table swap; the current build must reproduce it exactly.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"

namespace streamop {
namespace {

// The paper's dynamic subset-sum query (§6.1) at a small target so cleaning
// phases fire within the trace, exercising RemoveGroup / backward-shift
// deletion on the live tables.
std::string SubsetSumSql(uint64_t n, double relax) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, %llu, 2, %g) = TRUE
      GROUP BY time/2 as tb, srcIP, destIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                static_cast<unsigned long long>(n), relax);
  return buf;
}

// Canonical serialization of a run: every output row in emission order,
// then every window's statistics. Byte-for-byte comparable across builds.
std::string Canonicalize(const SingleRunResult& run) {
  std::string out;
  for (const Tuple& t : run.output) {
    out += t.ToString();
    out += '\n';
  }
  for (const WindowStats& w : run.windows) {
    out += "window";
    for (const Value& v : w.window_id) {
      out += ' ';
      out += v.ToString();
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " in=%llu adm=%llu created=%llu removed=%llu peak=%llu "
                  "cleanings=%llu out=%llu\n",
                  static_cast<unsigned long long>(w.tuples_in),
                  static_cast<unsigned long long>(w.tuples_admitted),
                  static_cast<unsigned long long>(w.groups_created),
                  static_cast<unsigned long long>(w.groups_removed),
                  static_cast<unsigned long long>(w.peak_groups),
                  static_cast<unsigned long long>(w.cleaning_phases),
                  static_cast<unsigned long long>(w.groups_output));
    out += buf;
  }
  return out;
}

// FNV-1a 64 over the canonical serialization; stable across platforms.
uint64_t Checksum(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string RunOnce() {
  Trace trace = TraceGenerator::MakeResearchFeed(8.0, 11);
  Catalog catalog = Catalog::Default();
  auto cq = CompileQuery(SubsetSumSql(100, 10.0), catalog, {.seed = 7});
  EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return Canonicalize(*run);
}

TEST(DeterminismTest, RepeatedRunsAreByteIdentical) {
  std::string a = RunOnce();
  std::string b = RunOnce();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, OutputMatchesSeedImplementationGolden) {
  // Captured from the pre-flat-table implementation (see header comment).
  // If this changes, either output became iteration-order-dependent (a bug)
  // or query semantics intentionally changed — in the latter case re-derive
  // the golden from the previous implementation and update both in one
  // reviewed change.
  constexpr uint64_t kGoldenChecksum = 0xc7a612b53a0002e1ULL;
  constexpr size_t kGoldenLength = 13913;
  std::string got = RunOnce();
  EXPECT_EQ(got.size(), kGoldenLength);
  EXPECT_EQ(Checksum(got), kGoldenChecksum);
}

}  // namespace
}  // namespace streamop
