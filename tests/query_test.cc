// Tests for src/query: lexer, parser, analyzer (resolution, clause
// placement, supergroup validation, error reporting), and the selection
// operator.

#include <gtest/gtest.h>

#include "query/lexer.h"
#include "query/parser.h"
#include "query/query.h"
#include "query/selection_operator.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

// ---------- Lexer ----------

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = Lex("SELECT select SeLeCt");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 4u);  // 3 + EOF
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*toks)[static_cast<size_t>(i)].kind, TokenKind::kSelect);
  }
}

TEST(LexerTest, GroupByFusedForm) {
  auto toks = Lex("GROUP_BY x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kGroup);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kBy);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, DollarSuffixMarksSuperaggregate) {
  auto toks = Lex("count_distinct$(*)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdentifier);
  EXPECT_TRUE((*toks)[0].has_dollar);
  EXPECT_EQ((*toks)[0].text, "count_distinct");
}

TEST(LexerTest, NumbersAndOperators) {
  auto toks = Lex("1 2.5 1e3 <= >= <> != = < >");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*toks)[0].int_value, 1u);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*toks)[1].float_value, 2.5);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*toks)[2].float_value, 1000.0);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kLe);
  EXPECT_EQ((*toks)[4].kind, TokenKind::kGe);
  EXPECT_EQ((*toks)[5].kind, TokenKind::kNe);
  EXPECT_EQ((*toks)[6].kind, TokenKind::kNe);
  EXPECT_EQ((*toks)[7].kind, TokenKind::kEq);
  EXPECT_EQ((*toks)[8].kind, TokenKind::kLt);
  EXPECT_EQ((*toks)[9].kind, TokenKind::kGt);
}

TEST(LexerTest, StringsAndComments) {
  auto toks = Lex("'hello world' -- a comment\n 'x'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*toks)[0].text, "hello world");
  EXPECT_EQ((*toks)[1].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*toks)[1].text, "x");
}

TEST(LexerTest, ErrorsOnBadInput) {
  EXPECT_EQ(Lex("'unterminated").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a ? b").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("a ! b").status().code(), StatusCode::kParseError);
}

// ---------- Parser ----------

TEST(ParserTest, MinimalSelect) {
  auto q = ParseQuery("SELECT srcIP FROM PKT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->from, "PKT");
  ASSERT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->select[0].expr->column_name, "srcIP");
  EXPECT_EQ(q->where, nullptr);
}

TEST(ParserTest, FullSamplingQueryShape) {
  auto q = ParseQuery(R"(
      SELECT tb, srcIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 100) = TRUE
      GROUP BY time/20 as tb, srcIP
      SUPERGROUP BY tb
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE;
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 3u);
  EXPECT_EQ(q->group_by.size(), 2u);
  EXPECT_EQ(q->group_by[0].alias, "tb");
  ASSERT_EQ(q->supergroup.size(), 1u);
  EXPECT_EQ(q->supergroup[0], "tb");
  EXPECT_NE(q->where, nullptr);
  EXPECT_NE(q->having, nullptr);
  EXPECT_NE(q->cleaning_when, nullptr);
  EXPECT_NE(q->cleaning_by, nullptr);
}

TEST(ParserTest, CleaningClausesInEitherOrder) {
  auto q = ParseQuery(
      "SELECT k FROM PKT GROUP BY srcIP as k "
      "CLEANING BY count(*) > 1 CLEANING WHEN count_distinct$(*) > 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->cleaning_when, nullptr);
  EXPECT_NE(q->cleaning_by, nullptr);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7 AND NOT 0 > 1");
  ASSERT_TRUE(e.ok());
  // Top node must be AND.
  EXPECT_EQ((*e)->kind, ExprKind::kBinary);
  EXPECT_EQ((*e)->bop, BinaryOp::kAnd);
  EXPECT_EQ((*e)->ToString(), "(((1 + (2 * 3)) = 7) AND NOT (0 > 1))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto e = ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->bop, BinaryOp::kMul);
}

TEST(ParserTest, UnaryMinusAndStarArg) {
  auto e = ParseExpression("-x + count(*)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->children[1]->star_arg, true);
}

TEST(ParserTest, Errors) {
  EXPECT_EQ(ParseQuery("SELECT FROM PKT").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("SELECT a PKT").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("FROM PKT SELECT x").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("SELECT a FROM PKT CLEANING x > 1").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery("SELECT a FROM PKT trailing garbage").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseQuery(
                "SELECT a FROM PKT GROUP BY b CLEANING WHEN 1 CLEANING WHEN 2")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseExpression("1 +").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseExpression("f(1,)").status().code(), StatusCode::kParseError);
  // '$' on a bare identifier is invalid.
  EXPECT_EQ(ParseExpression("x$ + 1").status().code(), StatusCode::kParseError);
}

// ---------- Analyzer ----------

Catalog TestCatalog() { return Catalog::Default(); }

TEST(AnalyzerTest, CompilesPaperSubsetSumQuery) {
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 100) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, ts_ns
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  ASSERT_EQ(cq->kind, CompiledQueryKind::kSampling);
  const SamplingQueryPlan& plan = *cq->sampling;
  ASSERT_EQ(plan.group_by_exprs.size(), 4u);
  EXPECT_TRUE(plan.group_by_ordered[0]);   // time/20
  EXPECT_FALSE(plan.group_by_ordered[1]);  // srcIP
  EXPECT_FALSE(plan.group_by_ordered[3]);  // ts_ns (timestamp-ness cast away)
  EXPECT_EQ(plan.aggregates.size(), 1u);   // sum(len) deduped across clauses
  EXPECT_EQ(plan.superaggs.size(), 1u);    // count_distinct$(*) deduped
  EXPECT_EQ(plan.sfun_states.size(), 1u);  // one shared subset-sum state
  EXPECT_EQ(plan.output_names[3], "UMAX(sum(len), ssthreshold())");
}

TEST(AnalyzerTest, CompilesPaperHeavyHitterQuery) {
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, sum(len), count(*)
      FROM TCP
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN local_count(100) = TRUE
      CLEANING BY count(*) >= current_bucket() - first(current_bucket())
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  const SamplingQueryPlan& plan = *cq->sampling;
  // sum(len), count(*), first(current_bucket()).
  EXPECT_EQ(plan.aggregates.size(), 3u);
  EXPECT_EQ(plan.sfun_states.size(), 1u);  // heavy_hitter_state
}

TEST(AnalyzerTest, CompilesPaperMinHashQuery) {
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, HX
      FROM TCP
      WHERE HX <= Kth_smallest_value$(HX, 100)
      GROUP BY time/60 as tb, srcIP, H(destIP) as HX
      SUPERGROUP BY tb, srcIP
      HAVING HX <= Kth_smallest_value$(HX, 100)
      CLEANING WHEN count_distinct$(*) >= 100
      CLEANING BY HX <= Kth_smallest_value$(HX, 100)
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  const SamplingQueryPlan& plan = *cq->sampling;
  EXPECT_EQ(plan.superaggs.size(), 2u);  // kth_smallest$ + count_distinct$
  // The supergroup is (tb, srcIP); tb is ordered hence implicit, so only
  // srcIP remains in the key.
  ASSERT_EQ(plan.supergroup_slots.size(), 1u);
  EXPECT_EQ(plan.supergroup_slots[0], 1);
}

TEST(AnalyzerTest, CompilesPaperReservoirQuery) {
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP
      FROM TCP
      WHERE rsample(100) = TRUE
      GROUP BY time/60 as tb, srcIP, destIP
      HAVING rsfinal_clean(count_distinct$(*)) = TRUE
      CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY rsclean_with() = TRUE
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->sampling->sfun_states.size(), 1u);
}

TEST(AnalyzerTest, SelectionQueryWithoutGroupBy) {
  auto cq = CompileQuery(
      "SELECT srcIP, len FROM PKT WHERE len > 1000 AND proto = 6",
      TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->kind, CompiledQueryKind::kSelection);
  EXPECT_EQ(cq->selection->select_exprs.size(), 2u);
}

TEST(AnalyzerTest, SelectionWithStatefulPredicate) {
  // The Fig. 5 baseline: basic subset-sum sampling as a UDF in a selection.
  auto cq = CompileQuery(
      "SELECT time, srcIP, destIP, len FROM PKT "
      "WHERE ssample(len, 1000) = TRUE",
      TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->kind, CompiledQueryKind::kSelection);
  EXPECT_EQ(cq->selection->sfun_states.size(), 1u);
}

TEST(AnalyzerTest, ErrorUnknownStream) {
  EXPECT_EQ(CompileQuery("SELECT a FROM NOPE", TestCatalog()).status().code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorUnknownColumn) {
  EXPECT_EQ(
      CompileQuery("SELECT bogus FROM PKT GROUP BY srcIP", TestCatalog())
          .status()
          .code(),
      StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorUnknownFunction) {
  EXPECT_EQ(CompileQuery("SELECT frobnicate(len) FROM PKT", TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorSupergroupNotSubsetOfGroupBy) {
  auto st = CompileQuery(
                "SELECT srcIP FROM PKT GROUP BY time/60 as tb, srcIP "
                "SUPERGROUP BY destIP",
                TestCatalog())
                .status();
  EXPECT_EQ(st.code(), StatusCode::kAnalysisError);
  EXPECT_NE(st.message().find("SUPERGROUP"), std::string::npos);
}

TEST(AnalyzerTest, ErrorCleaningClausesMustPair) {
  EXPECT_EQ(CompileQuery("SELECT srcIP FROM PKT GROUP BY srcIP "
                         "CLEANING WHEN count_distinct$(*) > 5",
                         TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorAggregateInWhere) {
  EXPECT_EQ(CompileQuery(
                "SELECT srcIP FROM PKT WHERE sum(len) > 5 GROUP BY srcIP",
                TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorHavingWithoutGroupBy) {
  EXPECT_EQ(
      CompileQuery("SELECT srcIP FROM PKT HAVING count(*) > 1", TestCatalog())
          .status()
          .code(),
      StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorRawInputColumnInSelectOfGroupedQuery) {
  // `len` is not a group-by variable; SELECT of a grouped query cannot
  // reference raw input columns.
  EXPECT_EQ(CompileQuery("SELECT len FROM PKT GROUP BY srcIP", TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorDuplicateGroupByName) {
  EXPECT_EQ(CompileQuery(
                "SELECT srcIP FROM PKT GROUP BY srcIP, destIP as srcIP",
                TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorBadSuperaggregate) {
  EXPECT_EQ(CompileQuery("SELECT srcIP FROM PKT GROUP BY srcIP "
                         "HAVING median$(len) > 1",
                         TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(CompileQuery(
                "SELECT srcIP FROM PKT GROUP BY srcIP "
                "HAVING kth_smallest_value$(len, 10) > 1",  // len not a gb var
                TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, ErrorWrongArity) {
  EXPECT_EQ(CompileQuery("SELECT UMAX(len) FROM PKT", TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(CompileQuery("SELECT srcIP FROM PKT WHERE ssample() = TRUE",
                         TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
}

TEST(AnalyzerTest, GroupByVariableShadowsInputColumn) {
  // HAVING references tb (group-by var) — legal; raw `time` would not be.
  auto cq = CompileQuery(
      "SELECT tb FROM PKT GROUP BY time/60 as tb HAVING tb > 0",
      TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(
      CompileQuery("SELECT tb FROM PKT GROUP BY time/60 as tb HAVING time > 0",
                   TestCatalog())
          .status()
          .code(),
      StatusCode::kAnalysisError);
}

// ---------- SelectionOperator runtime ----------

TEST(SelectionOperatorTest, FiltersAndProjects) {
  auto cq = CompileQuery("SELECT len, len * 2 AS twice FROM PKT WHERE len > 100",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SelectionOperator op(cq->selection);

  PacketRecord small{};
  small.len = 50;
  PacketRecord big{};
  big.len = 200;
  Tuple out;
  Result<bool> r1 = op.Process(PacketToTuple(small), &out);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);
  Result<bool> r2 = op.Process(PacketToTuple(big), &out);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(*r2);
  EXPECT_EQ(out[0].AsUInt(), 200u);
  EXPECT_EQ(out[1].AsUInt(), 400u);
  EXPECT_EQ(op.tuples_in(), 2u);
  EXPECT_EQ(op.tuples_out(), 1u);
}

TEST(SelectionOperatorTest, StatefulBasicSubsetSum) {
  // Basic subset-sum in a selection: sampled weight estimates total bytes.
  auto cq = CompileQuery(
      "SELECT len FROM PKT WHERE ssample(len, 0, 2, 1, 5000.0) = TRUE",
      TestCatalog(), {.seed = 3});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SelectionOperator op(cq->selection);
  Pcg64 rng(5);
  double truth = 0.0;
  uint64_t kept = 0;
  double est = 0.0;
  for (int i = 0; i < 50000; ++i) {
    PacketRecord p{};
    p.len = static_cast<uint16_t>(40 + rng.NextBounded(1460));
    truth += p.len;
    Tuple out;
    Result<bool> r = op.Process(PacketToTuple(p), &out);
    ASSERT_TRUE(r.ok());
    if (*r) {
      ++kept;
      est += std::max<double>(out[0].AsDouble(), 5000.0);
    }
  }
  EXPECT_GT(kept, 1000u);
  EXPECT_LT(kept, 15000u);
  EXPECT_NEAR(est, truth, 0.03 * truth);
}

}  // namespace
}  // namespace streamop
