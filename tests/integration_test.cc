// End-to-end tests: the four paper queries (§6.6) compiled from SQL text
// and executed over synthetic traces, the two-level runtime, and
// cross-checks against ground truth computed directly from the trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/hash.h"
#include "engine/cascade.h"
#include "engine/runtime.h"
#include "net/flow_generator.h"
#include "net/trace_generator.h"
#include "query/query.h"
#include "sampling/distinct.h"
#include "sampling/kmv.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

Catalog TestCatalog() { return Catalog::Default(); }

// The paper's dynamic subset-sum query (§6.1), parameterized by target
// sample count and relaxation factor (1 = non-relaxed).
std::string SubsetSumSql(uint64_t n, double relax) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, %llu, 2, %g) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, ts_ns
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                static_cast<unsigned long long>(n), relax);
  return buf;
}

TEST(SubsetSumE2E, EstimatesWindowSumsOnBurstyFeed) {
  Trace trace = TraceGenerator::MakeResearchFeed(61.0, 42);
  auto cq = CompileQuery(SubsetSumSql(1000, 10.0), TestCatalog(), {.seed = 7});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto truth = trace.BytesPerWindow(20);
  std::vector<double> est(truth.size(), 0.0);
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    ASSERT_LT(tb, truth.size());
    est[tb] += t[3].AsDouble();
  }
  for (size_t w = 0; w + 1 < truth.size(); ++w) {  // skip the partial tail
    double rel = std::fabs(est[w] - static_cast<double>(truth[w])) /
                 static_cast<double>(truth[w]);
    EXPECT_LT(rel, 0.10) << "window " << w;
  }
}

TEST(SubsetSumE2E, SampleCountRespectsTarget) {
  Trace trace = TraceGenerator::MakeResearchFeed(61.0, 43);
  auto cq = CompileQuery(SubsetSumSql(500, 10.0), TestCatalog(), {.seed = 9});
  ASSERT_TRUE(cq.ok());
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (const WindowStats& ws : run->windows) {
    EXPECT_LE(ws.groups_output, 500u);
  }
  // Full windows of a busy feed reach (nearly) the target.
  ASSERT_GE(run->windows.size(), 3u);
  for (size_t i = 0; i + 1 < run->windows.size(); ++i) {
    EXPECT_GE(run->windows[i].groups_output, 400u) << "window " << i;
  }
}

TEST(SubsetSumE2E, RelaxedBeatsNonRelaxedAfterLoadDrops) {
  // Fig. 2/3: on a bursty feed the non-relaxed variant under-samples after
  // sharp load drops; the relaxed variant keeps its sample counts up.
  Trace trace = TraceGenerator::MakeResearchFeed(201.0, 44);
  auto relaxed_q =
      CompileQuery(SubsetSumSql(1000, 10.0), TestCatalog(), {.seed = 1});
  auto nonrelaxed_q =
      CompileQuery(SubsetSumSql(1000, 1.0), TestCatalog(), {.seed = 1});
  ASSERT_TRUE(relaxed_q.ok());
  ASSERT_TRUE(nonrelaxed_q.ok());
  auto relaxed = RunQueryOverTrace(*relaxed_q, trace);
  auto nonrelaxed = RunQueryOverTrace(*nonrelaxed_q, trace);
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(nonrelaxed.ok());

  uint64_t relaxed_total = 0, nonrelaxed_total = 0;
  for (const WindowStats& ws : relaxed->windows) {
    relaxed_total += ws.groups_output;
  }
  for (const WindowStats& ws : nonrelaxed->windows) {
    nonrelaxed_total += ws.groups_output;
  }
  EXPECT_GT(relaxed_total, nonrelaxed_total);

  // And the relaxed variant pays with more cleaning phases (Fig. 4).
  uint64_t relaxed_cleanings = 0, nonrelaxed_cleanings = 0;
  for (const WindowStats& ws : relaxed->windows) {
    relaxed_cleanings += ws.cleaning_phases;
  }
  for (const WindowStats& ws : nonrelaxed->windows) {
    nonrelaxed_cleanings += ws.cleaning_phases;
  }
  EXPECT_GT(relaxed_cleanings, nonrelaxed_cleanings);
}

TEST(HeavyHitterE2E, TopTalkersSurviveCleaning) {
  Trace trace = TraceGenerator::MakeResearchFeed(59.0, 45);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, sum(len), count(*)
      FROM TCP
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN local_count(1000) = TRUE
      CLEANING BY count(*) >= current_bucket() - first(current_bucket())
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Ground-truth packet counts per srcIP.
  std::map<uint32_t, uint64_t> truth;
  for (const PacketRecord& p : trace.packets()) ++truth[p.src_ip];
  std::vector<std::pair<uint64_t, uint32_t>> ranked;
  for (auto& [ip, cnt] : truth) ranked.push_back({cnt, ip});
  std::sort(ranked.rbegin(), ranked.rend());

  std::map<uint64_t, uint64_t> reported;  // srcIP -> estimated count
  for (const Tuple& t : run->output) {
    reported[t[1].AsUInt()] = t[3].AsUInt();
  }
  // Every top-10 talker (all far above the 1/1000 support implied by the
  // bucket width) must be reported, with its count within the eps*N bound.
  const double eps = 1.0 / 1000.0;
  const double n = static_cast<double>(trace.size());
  for (int i = 0; i < 10 && i < static_cast<int>(ranked.size()); ++i) {
    uint64_t ip = ranked[static_cast<size_t>(i)].second;
    uint64_t true_cnt = ranked[static_cast<size_t>(i)].first;
    ASSERT_TRUE(reported.count(ip) > 0) << "missed top talker " << i;
    EXPECT_LE(reported[ip], true_cnt);
    EXPECT_GE(static_cast<double>(reported[ip]),
              static_cast<double>(true_cnt) - eps * n - 1.0);
  }
  // The table was actually pruned: far fewer rows than distinct sources.
  EXPECT_LT(run->output.size(), truth.size());
}

TEST(MinHashE2E, ReportsKSmallestHashesPerSource) {
  // One source talking to 3000 distinct destinations in one window: the
  // query must output exactly the 100 smallest H(destIP) values.
  std::vector<PacketRecord> packets;
  Pcg64 rng(47);
  for (int i = 0; i < 20000; ++i) {
    PacketRecord p{};
    p.ts_ns = static_cast<uint64_t>(i) * 1000000ULL;  // all within 20 s
    p.src_ip = 0x0a000001;
    p.dst_ip = 0xc0a80000 + static_cast<uint32_t>(rng.NextBounded(3000));
    p.len = 100;
    p.proto = kProtoTcp;
    packets.push_back(p);
  }
  Trace trace(std::move(packets));

  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, HX
      FROM TCP
      WHERE HX <= Kth_smallest_value$(HX, 100)
      GROUP BY time/60 as tb, srcIP, H(destIP) as HX
      SUPERGROUP BY tb, srcIP
      HAVING HX <= Kth_smallest_value$(HX, 100)
      CLEANING WHEN count_distinct$(*) >= 150
      CLEANING BY HX <= Kth_smallest_value$(HX, 100)
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Expected: the 100 smallest H(destIP) over the distinct destinations.
  std::set<uint64_t> distinct_hashes;
  for (const PacketRecord& p : trace.packets()) {
    distinct_hashes.insert(SeededHash64(Value::UInt(p.dst_ip).Hash(), 0));
  }
  std::vector<uint64_t> expected(distinct_hashes.begin(),
                                 distinct_hashes.end());
  expected.resize(100);

  std::vector<uint64_t> got;
  for (const Tuple& t : run->output) got.push_back(t[2].AsUInt());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(ReservoirE2E, FixedSizeUniformSamplePerWindow) {
  Trace trace = TraceGenerator::MakeResearchFeed(59.0, 48);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP
      FROM TCP
      WHERE rsample(100, 2) = TRUE
      GROUP BY time/60 as tb, srcIP, destIP, ts_ns
      HAVING rsfinal_clean(count_distinct$(*)) = TRUE
      CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY rsclean_with() = TRUE
  )",
                         TestCatalog(), {.seed = 11});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GE(run->windows.size(), 1u);
  EXPECT_EQ(run->output.size(), 100u);  // one full window of 59 s
  EXPECT_GT(run->windows[0].cleaning_phases, 0u);
}

TEST(AggregationE2E, OperatorMatchesGroundTruth) {
  // The "actual" query of §7.1: per-window sum of packet lengths.
  Trace trace = TraceGenerator::MakeResearchFeed(41.0, 49);
  auto cq = CompileQuery(
      "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb", TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto truth = trace.BytesPerWindow(20);
  ASSERT_EQ(run->output.size(), truth.size());
  for (const Tuple& t : run->output) {
    EXPECT_EQ(t[1].AsUInt(), truth[t[0].AsUInt()]) << t.ToString();
  }
}

TEST(SampledFlowsE2E, BoundedGroupsAccurateEstimates) {
  // Â§8 extension: flow aggregation integrated with packet-level dynamic
  // subset-sum sampling survives a single-packet-flow flood with a bounded
  // group table and accurate per-window byte estimates.
  FlowTraceConfig cfg;
  cfg.duration_sec = 60.0;
  cfg.seed = 54;
  cfg.attack_enabled = true;
  cfg.attack_start_sec = 20.0;
  cfg.attack_duration_sec = 20.0;
  cfg.attack_flows_per_sec = 10000.0;
  Trace trace = GenerateFlowTrace(cfg);
  FlowWindowTruth truth = ComputeFlowTruth(trace, 20);
  ASSERT_GE(truth.flows_per_window.size(), 3u);
  // The flood window really does have an enormous flow count.
  EXPECT_GT(truth.flows_per_window[1], 20u * truth.flows_per_window[0]);

  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, srcPort, destPort, proto,
             UMAX(sum(UMAX(len, ssthreshold())), ssthreshold()), count(*)
      FROM PKT
      WHERE ssample(len, 500, 2, 10) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, srcPort, destPort, proto
      HAVING ssfinal_clean(sum(UMAX(len, ssthreshold())),
                           count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(UMAX(len, ssthreshold()))) = TRUE
  )",
                         TestCatalog(), {.seed = 15});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<double> est(truth.bytes_per_window.size(), 0.0);
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    ASSERT_LT(tb, est.size());
    est[tb] += t[6].AsDouble();
  }
  for (size_t w = 0; w < truth.bytes_per_window.size(); ++w) {
    double actual = static_cast<double>(truth.bytes_per_window[w]);
    if (actual == 0) continue;
    EXPECT_NEAR(est[w], actual, 0.15 * actual) << "window " << w;
  }
  // Bounded memory: the group table never grows far past beta*N even while
  // tens of thousands of flows pass by.
  for (const WindowStats& ws : run->windows) {
    EXPECT_LE(ws.peak_groups, 2u * 500u + 32u);
  }
}

TEST(SampledFlowsE2E, SsInitConfiguresWithoutFiltering) {
  // ssinit() latches the sampler config and admits everything.
  Trace trace = TraceGenerator::MakeResearchFeed(5.0, 56);
  auto cq = CompileQuery(R"(
      SELECT tb, count(*)
      FROM PKT
      WHERE ssinit(100) = TRUE
      GROUP BY time/20 as tb
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  uint64_t counted = 0;
  for (const Tuple& t : run->output) counted += t[1].AsUInt();
  EXPECT_EQ(counted, trace.size());
}

TEST(DistinctSamplingE2E, DistinctSourcesPerWindow) {
  // Gibbons' distinct sampling through the operator: the estimate
  // count_distinct$(*) * dsfactor() tracks the true number of distinct
  // sources, with the sample bounded by the capacity.
  Trace trace = TraceGenerator::MakeDataCenterFeed(8.0, 57);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, count(*), count_distinct$(*) * dsfactor()
      FROM PKT
      WHERE dssample(H(srcIP), 512) = TRUE
      GROUP BY time/4 as tb, srcIP
      CLEANING WHEN dsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY dsclean_with(H(srcIP)) = TRUE
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // True distinct sources per 4 s window.
  std::vector<std::set<uint32_t>> truth;
  for (const PacketRecord& p : trace.packets()) {
    uint64_t w = p.ts_sec() / 4;
    if (w >= truth.size()) truth.resize(w + 1);
    truth[w].insert(p.src_ip);
  }
  // Every output row of a window carries the same estimate; check one per
  // window, and check the sample stayed within capacity.
  std::map<uint64_t, double> est;
  std::map<uint64_t, uint64_t> rows;
  for (const Tuple& t : run->output) {
    est[t[0].AsUInt()] = t[3].AsDouble();
    ++rows[t[0].AsUInt()];
  }
  for (auto& [tb, e] : est) {
    ASSERT_LT(tb, truth.size());
    double actual = static_cast<double>(truth[tb].size());
    EXPECT_NEAR(e, actual, 0.30 * actual) << "window " << tb;
    EXPECT_LE(rows[tb], 512u);
  }
  // The pool is much larger than the capacity, so levels must have risen.
  ASSERT_FALSE(run->windows.empty());
  EXPECT_GT(run->windows[0].cleaning_phases, 0u);
}

TEST(QuantileAggregateE2E, MedianPacketLengthPerWindow) {
  Trace trace = TraceGenerator::MakeResearchFeed(39.0, 58);
  auto cq = CompileQuery(
      "SELECT tb, median(len), quantile(len, 0.9), count(*) "
      "FROM PKT GROUP BY time/20 as tb",
      TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GE(run->output.size(), 2u);

  // Exact per-window sorted lengths for rank checking.
  std::map<uint64_t, std::vector<double>> lens;
  for (const PacketRecord& p : trace.packets()) {
    lens[p.ts_sec() / 20].push_back(static_cast<double>(p.len));
  }
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    std::vector<double>& v = lens[tb];
    std::sort(v.begin(), v.end());
    double n = static_cast<double>(v.size());
    for (auto [col, phi] : {std::pair<int, double>{1, 0.5}, {2, 0.9}}) {
      double q = t[static_cast<size_t>(col)].AsDouble();
      // Duplicated lengths occupy a rank interval; measure distance to it.
      double lo = static_cast<double>(
          std::lower_bound(v.begin(), v.end(), q) - v.begin());
      double hi = static_cast<double>(
          std::upper_bound(v.begin(), v.end(), q) - v.begin());
      double target = phi * n;
      double err = target < lo ? lo - target : (target > hi ? target - hi : 0);
      EXPECT_LE(err, 0.02 * n + 2.0) << "window " << tb << " phi " << phi;
    }
  }
}

TEST(QuantileAggregateE2E, QuantileErrors) {
  EXPECT_EQ(CompileQuery("SELECT quantile(len) FROM PKT GROUP BY srcIP",
                         TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(CompileQuery("SELECT quantile(len, 1.5) FROM PKT GROUP BY srcIP",
                         TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(CompileQuery("SELECT quantile(len, srcIP) FROM PKT GROUP BY srcIP",
                         TestCatalog())
                .status()
                .code(),
            StatusCode::kAnalysisError);
  EXPECT_EQ(
      CompileQuery("SELECT median(*) FROM PKT GROUP BY srcIP", TestCatalog())
          .status()
          .code(),
      StatusCode::kAnalysisError);
}

TEST(CascadeE2E, HeavyHittersThenReservoir) {
  // §8 ongoing work: one sampling operator feeding another. Stage 0 finds
  // per-minute heavy sources (lossy counting); stage 1 draws a uniform
  // reservoir sample of 5 of them per window.
  Trace trace = TraceGenerator::MakeResearchFeed(59.0, 60);
  std::vector<std::string> sqls = {
      R"(SELECT tb, srcIP, count(*)
         FROM TCP
         GROUP BY time/60 as tb, srcIP
         CLEANING WHEN local_count(1000) = TRUE
         CLEANING BY count(*) >= current_bucket() - first(current_bucket()))",
      R"(SELECT tb2, srcIP
         FROM S0
         WHERE rsample(5, 2, 1) = TRUE
         GROUP BY tb as tb2, srcIP
         HAVING rsfinal_clean(count_distinct$(*)) = TRUE
         CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
         CLEANING BY rsclean_with() = TRUE)",
  };
  auto rt = CascadeRuntime::Create(sqls, TestCatalog(), {.seed = 3});
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  for (const PacketRecord& p : trace.packets()) {
    ASSERT_TRUE((*rt)->Push(PacketToTuple(p)).ok());
  }
  ASSERT_TRUE((*rt)->Finish().ok());
  std::vector<Tuple> out = (*rt)->DrainOutput();
  ASSERT_EQ(out.size(), 5u);  // one 60 s window, 5 uniform picks

  // Every sampled source must be one the heavy-hitter stage emitted
  // (lossy counting admits false positives below the support, so compare
  // against the stage-0 query re-run standalone, not against raw counts).
  auto hh_q = CompileQuery(sqls[0], TestCatalog());
  ASSERT_TRUE(hh_q.ok());
  auto hh_run = RunQueryOverTrace(*hh_q, trace);
  ASSERT_TRUE(hh_run.ok());
  std::set<uint64_t> emitted;
  for (const Tuple& t : hh_run->output) emitted.insert(t[1].AsUInt());
  for (const Tuple& t : out) {
    EXPECT_TRUE(emitted.count(t[1].AsUInt()) > 0) << t.ToString();
  }
  // And the reservoir picks are distinct sources.
  std::set<uint64_t> picked;
  for (const Tuple& t : out) picked.insert(t[1].AsUInt());
  EXPECT_EQ(picked.size(), out.size());
}

TEST(CascadeE2E, OrderingPropagatesThroughStages) {
  // The stage-0 output schema marks tb ordered, so stage 1 windows on it.
  std::vector<std::string> sqls = {
      "SELECT tb, srcIP, sum(len) FROM PKT GROUP BY time/20 as tb, srcIP",
      "SELECT tb2, count(*) FROM S0 GROUP BY tb as tb2",
  };
  auto rt = CascadeRuntime::Create(sqls, TestCatalog());
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  Trace trace = TraceGenerator::MakeResearchFeed(45.0, 61);
  for (const PacketRecord& p : trace.packets()) {
    ASSERT_TRUE((*rt)->Push(PacketToTuple(p)).ok());
  }
  ASSERT_TRUE((*rt)->Finish().ok());
  std::vector<Tuple> out = (*rt)->DrainOutput();
  // Three 20 s windows -> three stage-1 rows, each counting stage-0 groups.
  ASSERT_EQ(out.size(), 3u);
  for (const Tuple& t : out) EXPECT_GT(t[1].AsUInt(), 0u);
}

TEST(CascadeE2E, CreateErrors) {
  EXPECT_FALSE(CascadeRuntime::Create({}, TestCatalog()).ok());
  EXPECT_FALSE(
      CascadeRuntime::Create({"SELECT x FROM NOPE"}, TestCatalog()).ok());
  // Stage 1 referencing a stream that is not S0 or a base stream fails.
  EXPECT_FALSE(CascadeRuntime::Create({"SELECT len FROM PKT",
                                       "SELECT y FROM S7"},
                                      TestCatalog())
                   .ok());
}

TEST(PrioritySamplingE2E, ExactTopKByPriorityWithAccurateSums) {
  // Priority sampling [DLT 2004] modeled in the operator (the paper urges
  // readers to express further algorithms this way): each packet gets a
  // deterministic pseudo-priority PRIO(len, ts_ns) = len/u; cleaning keeps
  // the top N+1 priorities per window via kth_largest$; HAVING emits the
  // top N; the HT weight is max(len, tau) with tau the (N+1)th priority.
  Trace trace = TraceGenerator::MakeResearchFeed(41.0, 62);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, DMAX(FLOAT(len), kth_largest_value$(prio, 101))
      FROM PKT
      WHERE prio >= kth_largest_value$(prio, 101)
      GROUP BY time/20 as tb, srcIP, destIP, len, ts_ns,
               PRIO(len, ts_ns) as prio
      SUPERGROUP BY tb
      HAVING prio > kth_largest_value$(prio, 101)
      CLEANING WHEN count_distinct$(*) > 220
      CLEANING BY prio >= kth_largest_value$(prio, 101)
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto truth = trace.BytesPerWindow(20);
  std::map<uint64_t, uint64_t> rows;
  std::vector<double> est(truth.size(), 0.0);
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    ++rows[tb];
    ASSERT_LT(tb, truth.size());
    est[tb] += t[3].AsDouble();
  }
  double est_total = 0.0, truth_total = 0.0;
  for (size_t w = 0; w + 1 < truth.size(); ++w) {
    EXPECT_EQ(rows[w], 100u) << "window " << w;  // exactly the top N
    // Per-window priority-sampling error ~ 1/sqrt(N-1) ~ 10%; allow 4 sigma.
    EXPECT_NEAR(est[w], static_cast<double>(truth[w]),
                0.40 * static_cast<double>(truth[w]))
        << "window " << w;
    est_total += est[w];
    truth_total += static_cast<double>(truth[w]);
  }
  // Errors average out across windows (unbiasedness).
  EXPECT_NEAR(est_total, truth_total, 0.15 * truth_total);
}

TEST(SupergroupE2E, PerSourceThresholdsAdaptIndependently) {
  // SUPERGROUP BY srcIP gives every source its own sampler state: a light
  // source and a 10x heavier source must both hit the per-supergroup
  // sample target, with accurate per-source byte estimates.
  std::vector<PacketRecord> packets;
  Pcg64 rng(63);
  for (int w = 0; w < 2; ++w) {
    uint64_t base = static_cast<uint64_t>(w) * 20'000'000'000ULL;
    for (int i = 0; i < 5000; ++i) {  // heavy source A
      PacketRecord p{};
      p.ts_ns = base + static_cast<uint64_t>(i) * 3'000'000ULL;
      p.src_ip = 0x0a000001;
      p.dst_ip = 0xc0a80000 + static_cast<uint32_t>(rng.NextBounded(500));
      p.len = static_cast<uint16_t>(40 + rng.NextBounded(1460));
      packets.push_back(p);
    }
    for (int i = 0; i < 500; ++i) {  // light source B
      PacketRecord p{};
      p.ts_ns = base + static_cast<uint64_t>(i) * 30'000'000ULL + 1;
      p.src_ip = 0x0a000002;
      p.dst_ip = 0xc0a80000 + static_cast<uint32_t>(rng.NextBounded(500));
      p.len = static_cast<uint16_t>(40 + rng.NextBounded(1460));
      packets.push_back(p);
    }
  }
  std::sort(packets.begin(), packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.ts_ns < b.ts_ns;
            });
  Trace trace(std::move(packets));

  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKT
      WHERE ssample(len, 50, 2, 10) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, ts_ns
      SUPERGROUP BY tb, srcIP
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                         TestCatalog(), {.seed = 19});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Per (window, source) sample counts and estimates.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> samples;
  std::map<std::pair<uint64_t, uint64_t>, double> est;
  for (const Tuple& t : run->output) {
    auto key = std::make_pair(t[0].AsUInt(), t[1].AsUInt());
    ++samples[key];
    est[key] += t[3].AsDouble();
  }
  std::map<std::pair<uint64_t, uint64_t>, double> truth;
  for (const PacketRecord& p : trace.packets()) {
    truth[{p.ts_sec() / 20, p.src_ip}] += p.len;
  }
  for (auto& [key, n] : samples) {
    EXPECT_LE(n, 50u) << key.second;
    EXPECT_GE(n, 35u) << "source " << key.second
                      << " under-sampled in window " << key.first;
    EXPECT_NEAR(est[key], truth[key], 0.15 * truth[key]);
  }
  // Both sources present in both windows.
  EXPECT_EQ(samples.size(), 4u);
}

TEST(SuperaggE2E, SumAndFirstSuperaggregates) {
  // sum$(len) must track all admitted bytes of the supergroup and shrink
  // when cleaning removes groups (shadow subtraction); first$(len) holds
  // the first admitted value of the window.
  std::vector<Tuple> rows;
  SchemaPtr schema = MakePacketSchema();
  auto pkt = [](uint64_t sec, uint32_t src, uint16_t len) {
    PacketRecord p{};
    p.ts_ns = sec * 1'000'000'000ULL;
    p.src_ip = src;
    p.len = len;
    return PacketToTuple(p);
  };
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, count(*), sum$(len), first$(len)
      FROM PKT
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN count_distinct$(*) > 2
      CLEANING BY count(*) >= 2
  )",
                         TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  SamplingOperator op(cq->sampling);
  ASSERT_TRUE(op.Process(pkt(1, 1, 100)).ok());
  ASSERT_TRUE(op.Process(pkt(1, 1, 100)).ok());  // src 1: count 2
  ASSERT_TRUE(op.Process(pkt(2, 2, 50)).ok());   // src 2: count 1
  ASSERT_TRUE(op.Process(pkt(3, 3, 70)).ok());   // 3 groups -> clean
  ASSERT_TRUE(op.FinishStream().ok());
  std::vector<Tuple> out = op.DrainOutput();
  ASSERT_EQ(out.size(), 1u);  // only src 1 survives (count >= 2)
  EXPECT_EQ(out[0][1].AsUInt(), 1u);
  // sum$ = 100+100+50+70 minus removed shadows (50 + 70) = 200.
  EXPECT_EQ(out[0][3].AsUInt(), 200u);
  EXPECT_EQ(out[0][4].AsUInt(), 100u);  // first admitted len
  (void)rows;
  (void)schema;
}

TEST(ReservoirE2E, BernoulliBackoffModeUniformCount) {
  Trace trace = TraceGenerator::MakeResearchFeed(59.0, 64);
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, destIP
      FROM TCP
      WHERE rsample(100, 4, 1) = TRUE
      GROUP BY time/60 as tb, srcIP, destIP, ts_ns
      HAVING rsfinal_clean(count_distinct$(*)) = TRUE
      CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY rsclean_with() = TRUE
  )",
                         TestCatalog(), {.seed = 23});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.size(), 100u);
  ASSERT_FALSE(run->windows.empty());
  EXPECT_GT(run->windows[0].cleaning_phases, 0u);
}

// ---------- two-level runtime ----------

constexpr char kPassThroughLow[] =
    "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
    "FROM PKT";

TEST(TwoLevelE2E, PassThroughLowLevelPreservesResults) {
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 50);
  auto low = CompileQuery(kPassThroughLow, TestCatalog());
  auto high = CompileQuery(
      "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb", TestCatalog());
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  TwoLevelRuntime rt(*low, {*high});
  auto report = rt.Run(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->low.tuples_in, trace.size());
  EXPECT_EQ(report->low.tuples_out, trace.size());

  auto truth = trace.BytesPerWindow(20);
  std::vector<Tuple> out = rt.high_node(0).DrainOutput();
  ASSERT_EQ(out.size(), truth.size());
  for (const Tuple& t : out) {
    EXPECT_EQ(t[1].AsUInt(), truth[t[0].AsUInt()]);
  }
}

TEST(TwoLevelE2E, PreSamplingLowLevelReducesHighLoad) {
  // Fig. 6's mechanism: a basic-subset-sum low-level query (threshold z/10)
  // slashes the tuple volume reaching the high-level sampler while keeping
  // the estimate intact (weights adjusted via UMAX at the low level).
  Trace trace = TraceGenerator::MakeDataCenterFeed(10.0, 51);
  const double z_low = 800.0;
  char low_sql[512];
  std::snprintf(low_sql, sizeof(low_sql),
                "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, "
                "UMAX(len, %g) as len FROM PKT "
                "WHERE ssample(len, 0, 2, 1, %g) = TRUE",
                z_low, z_low);
  auto low = CompileQuery(low_sql, TestCatalog(), {.seed = 21});
  auto high =
      CompileQuery(SubsetSumSql(1000, 10.0), TestCatalog(), {.seed = 22});
  ASSERT_TRUE(low.ok()) << low.status().ToString();
  ASSERT_TRUE(high.ok());
  TwoLevelRuntime rt(*low, {*high});
  auto report = rt.Run(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Data reduction at the low level.
  EXPECT_LT(report->low.tuples_out, report->low.tuples_in / 2);

  // The end-to-end estimate still tracks the trace.
  auto truth = trace.BytesPerWindow(20);
  std::vector<double> est(truth.size(), 0.0);
  for (const Tuple& t : rt.high_node(0).DrainOutput()) {
    uint64_t tb = t[0].AsUInt();
    ASSERT_LT(tb, est.size());
    est[tb] += t[3].AsDouble();
  }
  for (size_t w = 0; w < truth.size(); ++w) {
    EXPECT_NEAR(est[w], static_cast<double>(truth[w]),
                0.10 * static_cast<double>(truth[w]))
        << "window " << w;
  }
}

TEST(TwoLevelE2E, MultipleHighLevelQueriesShareOneLowLevel) {
  Trace trace = TraceGenerator::MakeResearchFeed(21.0, 52);
  auto low = CompileQuery(kPassThroughLow, TestCatalog());
  auto agg = CompileQuery(
      "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb", TestCatalog());
  auto cnt = CompileQuery(
      "SELECT tb, count(*) FROM PKT GROUP BY time/20 as tb", TestCatalog());
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(cnt.ok());
  TwoLevelRuntime rt(*low, {*agg, *cnt});
  auto report = rt.Run(trace);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->high.size(), 2u);
  EXPECT_EQ(report->high[0].tuples_in, trace.size());
  EXPECT_EQ(report->high[1].tuples_in, trace.size());

  auto counts = trace.PacketsPerWindow(20);
  for (const Tuple& t : rt.high_node(1).DrainOutput()) {
    EXPECT_EQ(t[1].AsUInt(), counts[t[0].AsUInt()]);
  }
}

TEST(TwoLevelE2E, ThreadedRunMatchesSequentialRun) {
  // Pipeline parallelism must not change results: same queries, same trace,
  // Run() vs RunThreaded() produce identical output rows.
  Trace trace = TraceGenerator::MakeResearchFeed(31.0, 65);
  auto low = CompileQuery(kPassThroughLow, TestCatalog());
  auto high = CompileQuery(SubsetSumSql(500, 10.0), TestCatalog(), {.seed = 5});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());

  TwoLevelRuntime seq(*low, {*high});
  auto seq_report = seq.Run(trace);
  ASSERT_TRUE(seq_report.ok()) << seq_report.status().ToString();
  std::vector<Tuple> seq_out = seq.high_node(0).DrainOutput();

  // Fresh runtime (operators are stateful).
  auto low2 = CompileQuery(kPassThroughLow, TestCatalog());
  auto high2 =
      CompileQuery(SubsetSumSql(500, 10.0), TestCatalog(), {.seed = 5});
  TwoLevelRuntime par(*low2, {*high2});
  auto par_report = par.RunThreaded(trace);
  ASSERT_TRUE(par_report.ok()) << par_report.status().ToString();
  std::vector<Tuple> par_out = par.high_node(0).DrainOutput();

  ASSERT_EQ(seq_out.size(), par_out.size());
  for (size_t i = 0; i < seq_out.size(); ++i) {
    EXPECT_EQ(seq_out[i], par_out[i]) << "row " << i;
  }
  EXPECT_GT(par_report->pipeline_seconds, 0.0);
  EXPECT_EQ(par_report->low.tuples_in, trace.size());
}

TEST(DistinctSamplingE2E, QueryPathMatchesLibraryPath) {
  // The ds* stateful functions and the DistinctSampler library class must
  // retain the same distinct-element sample when driven by the same hash
  // stream (H(srcIP) with seed 0 == DistinctSampler's internal hash of
  // Value(srcIP).Hash() with seed 0).
  std::vector<PacketRecord> packets;
  Pcg64 rng(66);
  for (int i = 0; i < 30000; ++i) {
    PacketRecord p{};
    p.ts_ns = static_cast<uint64_t>(i) * 500000ULL;  // one 60 s window
    p.src_ip = 0x0a000000 + static_cast<uint32_t>(rng.NextBounded(5000));
    p.len = 100;
    packets.push_back(p);
  }
  Trace trace(std::move(packets));

  const uint64_t kCap = 256;
  char sql[512];
  std::snprintf(sql, sizeof(sql), R"(
      SELECT tb, srcIP, count(*)
      FROM PKT
      WHERE dssample(H(srcIP), %llu) = TRUE
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN dsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY dsclean_with(H(srcIP)) = TRUE
  )",
                static_cast<unsigned long long>(kCap));
  auto cq = CompileQuery(sql, TestCatalog());
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  DistinctSampler lib(kCap, /*hash_seed=*/0);
  for (const PacketRecord& p : trace.packets()) {
    lib.Offer(Value::UInt(p.src_ip).Hash());
  }
  std::set<uint64_t> lib_elems;
  for (const auto& [e, c] : lib.sample()) lib_elems.insert(e);
  std::set<uint64_t> query_elems;
  std::map<uint64_t, uint64_t> query_counts;
  for (const Tuple& t : run->output) {
    uint64_t e = Value::UInt(static_cast<uint32_t>(t[1].AsUInt())).Hash();
    query_elems.insert(e);
    query_counts[e] = t[2].AsUInt();
  }
  EXPECT_EQ(query_elems, lib_elems);
  // Occurrence counts agree too.
  for (const auto& [e, c] : lib.sample()) {
    auto it = query_counts.find(e);
    if (it != query_counts.end()) EXPECT_EQ(it->second, c);
  }
}

TEST(SupergroupE2E, TwoNonOrderedSupergroupVariables) {
  // SUPERGROUP BY (srcIP, proto): four independent sampler states.
  std::vector<PacketRecord> packets;
  Pcg64 rng(67);
  for (int i = 0; i < 8000; ++i) {
    PacketRecord p{};
    p.ts_ns = static_cast<uint64_t>(i) * 2'000'000ULL;
    p.src_ip = 0x0a000001 + static_cast<uint32_t>(i % 2);
    p.proto = (i % 4 < 2) ? kProtoTcp : kProtoUdp;
    p.dst_ip = static_cast<uint32_t>(rng.NextBounded(1u << 30));
    p.len = static_cast<uint16_t>(40 + rng.NextBounded(1460));
    packets.push_back(p);
  }
  Trace trace(std::move(packets));
  auto cq = CompileQuery(R"(
      SELECT tb, srcIP, proto, destIP
      FROM PKT
      WHERE rsample(10, 2, 1) = TRUE
      GROUP BY time/60 as tb, srcIP, proto, destIP, ts_ns
      SUPERGROUP BY tb, srcIP, proto
      HAVING rsfinal_clean(count_distinct$(*)) = TRUE
      CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY rsclean_with() = TRUE
  )",
                         TestCatalog(), {.seed = 29});
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Exactly 10 samples per (srcIP, proto) supergroup, 4 supergroups.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> per_sg;
  for (const Tuple& t : run->output) {
    ++per_sg[{t[1].AsUInt(), t[2].AsUInt()}];
  }
  ASSERT_EQ(per_sg.size(), 4u);
  for (auto& [key, n] : per_sg) EXPECT_EQ(n, 10u);
}

// ---------- runtime report ----------

TEST(RuntimeReportTest, CpuAccountingPlausible) {
  Trace trace = TraceGenerator::MakeResearchFeed(11.0, 53);
  auto cq = CompileQuery(
      "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb", TestCatalog());
  ASSERT_TRUE(cq.ok());
  auto run = RunQueryOverTrace(*cq, trace);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->report.cpu_seconds, 0.0);
  EXPECT_GT(run->report.cpu_percent, 0.0);
  EXPECT_NEAR(run->report.cpu_percent,
              100.0 * run->report.cpu_seconds / trace.DurationSec(), 1e-6);
}

}  // namespace
}  // namespace streamop
