// Unit tests for src/stream: the SPSC ring buffer (single- and
// multi-threaded) and the tuple sources.

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "net/trace_generator.h"
#include "stream/ring_buffer.h"
#include "stream/stream_source.h"

namespace streamop {
namespace {

TEST(RingBufferTest, CapacityRoundsToPowerOfTwo) {
  RingBuffer<int> rb(5);
  EXPECT_GE(rb.capacity(), 5u);
  RingBuffer<int> rb2(1);
  EXPECT_GE(rb2.capacity(), 1u);
}

TEST(RingBufferTest, PushPopFifoOrder) {
  RingBuffer<int> rb(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(rb.TryPush(i));
  EXPECT_EQ(rb.size(), 5u);
  int v;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rb.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.TryPop(&v));
}

TEST(RingBufferTest, FullBufferRejectsPush) {
  RingBuffer<int> rb(2);  // usable capacity >= 2
  size_t pushed = 0;
  while (rb.TryPush(1)) ++pushed;
  EXPECT_EQ(pushed, rb.capacity());
  int v;
  ASSERT_TRUE(rb.TryPop(&v));
  EXPECT_TRUE(rb.TryPush(2));  // space reclaimed
}

TEST(RingBufferTest, BatchOperations) {
  RingBuffer<int> rb(16);
  int in[10];
  std::iota(in, in + 10, 0);
  EXPECT_EQ(rb.PushBatch(in, 10), 10u);
  int out[10];
  EXPECT_EQ(rb.PopBatch(out, 10), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(RingBufferTest, WrapAroundManyTimes) {
  RingBuffer<uint64_t> rb(4);
  uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (rb.TryPush(next_in)) ++next_in;
    uint64_t v;
    while (rb.TryPop(&v)) {
      EXPECT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(RingBufferTest, SpscTwoThreads) {
  RingBuffer<uint64_t> rb(1024);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount;) {
      if (rb.TryPush(i)) ++i;
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    uint64_t v;
    if (rb.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(rb.empty());
}

TEST(StreamSourceTest, PacketToTupleFieldMapping) {
  PacketRecord p{};
  p.ts_ns = 2'500'000'000ULL;
  p.src_ip = 10;
  p.dst_ip = 20;
  p.src_port = 30;
  p.dst_port = 40;
  p.proto = 6;
  p.len = 99;
  Tuple t = PacketToTuple(p);
  SchemaPtr schema = MakePacketSchema();
  ASSERT_EQ(t.size(), schema->num_fields());
  EXPECT_EQ(t[schema->FieldIndex("time")].uint_value(), 2u);
  EXPECT_EQ(t[schema->FieldIndex("ts_ns")].uint_value(), 2'500'000'000ULL);
  EXPECT_EQ(t[schema->FieldIndex("srcIP")].uint_value(), 10u);
  EXPECT_EQ(t[schema->FieldIndex("destIP")].uint_value(), 20u);
  EXPECT_EQ(t[schema->FieldIndex("srcPort")].uint_value(), 30u);
  EXPECT_EQ(t[schema->FieldIndex("destPort")].uint_value(), 40u);
  EXPECT_EQ(t[schema->FieldIndex("proto")].uint_value(), 6u);
  EXPECT_EQ(t[schema->FieldIndex("len")].uint_value(), 99u);
}

TEST(StreamSourceTest, TraceSourceReplaysAll) {
  Trace trace = TraceGenerator::MakeResearchFeed(1.0, 3);
  TraceTupleSource src(&trace);
  Tuple t;
  size_t n = 0;
  while (src.Next(&t)) ++n;
  EXPECT_EQ(n, trace.size());
  EXPECT_FALSE(src.Next(&t));  // stays exhausted
}

TEST(StreamSourceTest, TraceSourceReset) {
  Trace trace = TraceGenerator::MakeResearchFeed(0.5, 3);
  TraceTupleSource src(&trace);
  Tuple t;
  size_t first = 0;
  while (src.Next(&t)) ++first;
  src.Reset();
  size_t second = 0;
  while (src.Next(&t)) ++second;
  EXPECT_EQ(first, second);
}

TEST(StreamSourceTest, VectorSource) {
  SchemaPtr schema = MakePacketSchema();
  std::vector<Tuple> tuples = {Tuple({Value::UInt(1)}),
                               Tuple({Value::UInt(2)})};
  VectorTupleSource src(schema, tuples);
  EXPECT_EQ(src.schema()->name(), "PKT");
  Tuple t;
  ASSERT_TRUE(src.Next(&t));
  EXPECT_EQ(t[0].uint_value(), 1u);
  ASSERT_TRUE(src.Next(&t));
  EXPECT_EQ(t[0].uint_value(), 2u);
  EXPECT_FALSE(src.Next(&t));
  src.Reset();
  ASSERT_TRUE(src.Next(&t));
  EXPECT_EQ(t[0].uint_value(), 1u);
}

}  // namespace
}  // namespace streamop
