// Min-hash signatures and set resemblance (§4.3 / §6.6): per source IP,
// sketch the set of destination addresses it talks to in each one-minute
// window, then estimate the Broder resemblance of consecutive windows —
// "is this host talking to the same peers as a minute ago?", a standard
// scan/anomaly signal.
//
// Two paths exercise the same sketch:
//   1. the §6.6 query through the sampling operator (k smallest H(destIP)
//      per (window, srcIP) supergroup), and
//   2. the KMinHashSketch library class fed directly,
// and the example cross-checks that both retain identical hash sets.

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"
#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"
#include "sampling/kmv.h"

using namespace streamop;

int main() {
  const uint64_t k = 64;

  // A feed where destination sets drift: reuse the research feed and focus
  // on its busiest sources.
  Trace trace = TraceGenerator::MakeResearchFeed(120.0, /*seed=*/23);
  std::printf("feed: %zu packets over %.0f s; k = %llu min-hashes per "
              "(minute, srcIP)\n\n",
              trace.size(), trace.DurationSec(),
              static_cast<unsigned long long>(k));

  Catalog catalog = Catalog::Default();
  char sql[512];
  std::snprintf(sql, sizeof(sql), R"(
      SELECT tb, srcIP, HX
      FROM TCP
      WHERE HX <= Kth_smallest_value$(HX, %llu)
      GROUP BY time/60 as tb, srcIP, H(destIP) as HX
      SUPERGROUP BY tb, srcIP
      HAVING HX <= Kth_smallest_value$(HX, %llu)
      CLEANING WHEN count_distinct$(*) >= %llu
      CLEANING BY HX <= Kth_smallest_value$(HX, %llu)
  )",
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(2 * k),
                static_cast<unsigned long long>(k));
  Result<CompiledQuery> cq = CompileQuery(sql, catalog);
  if (!cq.ok()) {
    std::fprintf(stderr, "compile error: %s\n", cq.status().ToString().c_str());
    return 1;
  }
  Result<SingleRunResult> run = RunQueryOverTrace(*cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run error: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // Signatures from the query output.
  std::map<std::pair<uint64_t, uint32_t>, std::set<uint64_t>> signatures;
  for (const Tuple& t : run->output) {
    signatures[{t[0].AsUInt(), static_cast<uint32_t>(t[1].AsUInt())}].insert(
        t[2].AsUInt());
  }

  // Library-side sketches for cross-checking and resemblance estimation.
  std::map<std::pair<uint64_t, uint32_t>, KMinHashSketch> sketches;
  for (const PacketRecord& p : trace.packets()) {
    auto key = std::make_pair(p.ts_sec() / 60, p.src_ip);
    auto [it, inserted] = sketches.try_emplace(key, k);
    it->second.Offer(Value::UInt(p.dst_ip).Hash());
  }

  // Cross-check: the query's retained hash set must equal the sketch's.
  size_t checked = 0, mismatched = 0;
  for (auto& [key, sig] : signatures) {
    auto it = sketches.find(key);
    if (it == sketches.end()) continue;
    std::vector<uint64_t> lib = it->second.MinValues();
    std::set<uint64_t> lib_set(lib.begin(), lib.end());
    ++checked;
    if (lib_set != sig) ++mismatched;
  }
  std::printf("cross-check: %zu (minute, srcIP) signatures, %zu mismatches "
              "between query path and library path\n\n",
              checked, mismatched);

  // Resemblance of consecutive minutes for the sources present in both.
  std::printf("%-16s %8s %8s %14s %16s\n", "srcIP", "minute", "minute+1",
              "resemblance", "distinct dests");
  int shown = 0;
  for (auto& [key, sk] : sketches) {
    auto next_key = std::make_pair(key.first + 1, key.second);
    auto it = sketches.find(next_key);
    if (it == sketches.end()) continue;
    if (sk.size() < k / 2) continue;  // only sources with enough fan-out
    double rho = sk.EstimateResemblance(it->second);
    std::printf("%-16s %8llu %8llu %14.3f %16.0f\n",
                FormatIpv4(key.second).c_str(),
                static_cast<unsigned long long>(key.first),
                static_cast<unsigned long long>(key.first + 1), rho,
                sk.EstimateDistinctCount());
    if (++shown >= 10) break;
  }
  return mismatched == 0 ? 0 : 1;
}
