// Heavy-hitters reporting: "which source addresses account for at least 1%
// of traffic, per minute?" — the §6.6 Manku-Motwani query as an
// application.
//
// The sampling operator evaluates lossy counting declaratively: grouping by
// source address counts packets; `local_count(w)` advances the bucket id
// every w tuples and triggers the cleaning phase; the CLEANING BY predicate
// prunes groups whose count cannot reach the support threshold. The HAVING
// step here is done in application code (threshold s on the reported
// counts), mirroring how the paper's users consume the result set.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/string_util.h"
#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"

using namespace streamop;

int main(int argc, char** argv) {
  const double support = argc > 1 ? std::atof(argv[1]) : 0.01;  // s = 1%
  const double epsilon = 0.001;  // bucket width w = 1/eps = 1000 tuples

  Trace trace = TraceGenerator::MakeResearchFeed(180.0, /*seed=*/11);
  std::printf("feed: %zu packets over %.0f s; reporting srcIPs with >= %.1f%% "
              "of packets per minute\n\n",
              trace.size(), trace.DurationSec(), 100 * support);

  Catalog catalog = Catalog::Default();
  char sql[512];
  std::snprintf(sql, sizeof(sql), R"(
      SELECT tb, srcIP, sum(len), count(*)
      FROM TCP
      GROUP BY time/60 as tb, srcIP
      CLEANING WHEN local_count(%d) = TRUE
      CLEANING BY count(*) >= current_bucket() - first(current_bucket())
  )",
                static_cast<int>(1.0 / epsilon));
  Result<CompiledQuery> cq = CompileQuery(sql, catalog);
  if (!cq.ok()) {
    std::fprintf(stderr, "compile error: %s\n", cq.status().ToString().c_str());
    return 1;
  }
  Result<SingleRunResult> run = RunQueryOverTrace(*cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run error: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // Packets per window (to apply the support threshold s*N per minute).
  std::vector<uint64_t> packets_per_min = trace.PacketsPerWindow(60);

  // Organize rows per window, filter by (s - eps) * N, sort by bytes.
  struct Row {
    uint32_t src;
    uint64_t bytes;
    uint64_t packets;
  };
  std::map<uint64_t, std::vector<Row>> per_window;
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    uint64_t n = tb < packets_per_min.size() ? packets_per_min[tb] : 0;
    double threshold = (support - epsilon) * static_cast<double>(n);
    if (static_cast<double>(t[3].AsUInt()) >= threshold) {
      per_window[tb].push_back(Row{static_cast<uint32_t>(t[1].AsUInt()),
                                   t[2].AsUInt(), t[3].AsUInt()});
    }
  }

  for (auto& [tb, rows] : per_window) {
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.bytes > b.bytes; });
    std::printf("minute %llu (%s packets): %zu heavy hitters\n",
                static_cast<unsigned long long>(tb),
                FormatWithCommas(packets_per_min[tb]).c_str(), rows.size());
    int shown = 0;
    for (const Row& r : rows) {
      if (++shown > 8) break;
      std::printf("   %-16s %10s bytes %8s pkts (%.2f%%)\n",
                  FormatIpv4(r.src).c_str(), FormatWithCommas(r.bytes).c_str(),
                  FormatWithCommas(r.packets).c_str(),
                  100.0 * static_cast<double>(r.packets) /
                      static_cast<double>(packets_per_min[tb]));
    }
  }
  return 0;
}
