// Uniform packet sampling with the reservoir query (§6.6): keep a fixed-
// size uniform sample of packets per minute and use it for downstream
// statistics — here, the mean packet length and the TCP fraction, compared
// against their exact values.
//
// Unlike subset-sum sampling (which optimizes *sum* estimates by biasing
// toward heavy packets), the reservoir sample is uniform over packets, so
// plain sample means are the right estimators. rsample's third argument
// selects the exactly-uniform Bernoulli-backoff admission (mode 1); the
// default mode reproduces the paper's skip-candidate scheme, which is
// biased toward early packets in each window (see EXPERIMENTS.md).

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"

using namespace streamop;

int main() {
  const int kSampleSize = 200;
  Trace trace = TraceGenerator::MakeResearchFeed(180.0, /*seed=*/31);
  std::printf("feed: %zu packets over %.0f s; %d uniform samples per minute\n\n",
              trace.size(), trace.DurationSec(), kSampleSize);

  Catalog catalog = Catalog::Default();
  char sql[512];
  std::snprintf(sql, sizeof(sql), R"(
      SELECT tb, len, proto
      FROM TCP
      WHERE rsample(%d, 4, 1) = TRUE
      GROUP BY time/60 as tb, srcIP, destIP, len, proto, ts_ns
      HAVING rsfinal_clean(count_distinct$(*)) = TRUE
      CLEANING WHEN rsdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY rsclean_with() = TRUE
  )",
                kSampleSize);
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 5});
  if (!cq.ok()) {
    std::fprintf(stderr, "compile error: %s\n", cq.status().ToString().c_str());
    return 1;
  }
  Result<SingleRunResult> run = RunQueryOverTrace(*cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run error: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // Exact per-minute statistics.
  struct Exact {
    double len_sum = 0;
    uint64_t tcp = 0;
    uint64_t n = 0;
  };
  std::map<uint64_t, Exact> exact;
  for (const PacketRecord& p : trace.packets()) {
    Exact& e = exact[p.ts_sec() / 60];
    e.len_sum += p.len;
    e.tcp += (p.proto == kProtoTcp) ? 1 : 0;
    ++e.n;
  }

  // Sampled per-minute statistics.
  struct Sampled {
    double len_sum = 0;
    uint64_t tcp = 0;
    uint64_t n = 0;
  };
  std::map<uint64_t, Sampled> sampled;
  for (const Tuple& t : run->output) {
    Sampled& s = sampled[t[0].AsUInt()];
    s.len_sum += t[1].AsDouble();
    s.tcp += (t[2].AsUInt() == kProtoTcp) ? 1 : 0;
    ++s.n;
  }

  std::printf("%-8s %10s | %12s %12s | %10s %10s\n", "minute", "samples",
              "mean len", "(exact)", "TCP frac", "(exact)");
  for (auto& [tb, s] : sampled) {
    const Exact& e = exact[tb];
    if (s.n == 0 || e.n == 0) continue;
    std::printf("%-8llu %10llu | %12.1f %12.1f | %10.3f %10.3f\n",
                static_cast<unsigned long long>(tb),
                static_cast<unsigned long long>(s.n),
                s.len_sum / static_cast<double>(s.n),
                e.len_sum / static_cast<double>(e.n),
                static_cast<double>(s.tcp) / static_cast<double>(s.n),
                static_cast<double>(e.tcp) / static_cast<double>(e.n));
  }
  std::printf(
      "\nnote: a uniform %d-packet sample pins per-minute means to a few "
      "percent; use subset-sum sampling instead when the target is byte "
      "*totals* under heavy-tailed packet sizes.\n",
      kSampleSize);
  return 0;
}
