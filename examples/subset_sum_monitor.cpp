// Traffic-volume monitoring with dynamic subset-sum sampling — the paper's
// motivating application (§7.1) as a runnable program.
//
// Runs three query sets simultaneously over one bursty feed, exactly as the
// paper's accuracy experiment does:
//   * the exact per-window byte count ("actual"),
//   * the relaxed dynamic subset-sum sampler (1000 samples / 20 s window),
//   * the non-relaxed sampler,
// then prints the per-window comparison and an error summary. The point of
// the exercise: 1000 samples stand in for hundreds of thousands of packets
// while keeping the sum estimate within a few percent — but only if the
// threshold carry-over is relaxed.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"

using namespace streamop;

namespace {

std::string SamplerSql(double relax_factor) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 1000, 2, %g, 0, 1) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, ts_ns
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )",
                relax_factor);
  return buf;
}

std::vector<double> RunEstimates(const std::string& sql, const Trace& trace,
                                 size_t windows) {
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 99});
  if (!cq.ok()) {
    std::fprintf(stderr, "compile error: %s\n", cq.status().ToString().c_str());
    std::exit(1);
  }
  Result<SingleRunResult> run = RunQueryOverTrace(*cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run error: %s\n", run.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> est(windows, 0.0);
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    if (tb < windows) est[tb] += t[3].AsDouble();
  }
  return est;
}

}  // namespace

int main(int argc, char** argv) {
  double duration = argc > 1 ? std::atof(argv[1]) : 301.0;
  Trace trace = TraceGenerator::MakeResearchFeed(duration, /*seed=*/2005);
  std::vector<uint64_t> actual = trace.BytesPerWindow(20);

  std::printf("monitoring %zu packets over %.0f s (20 s windows)\n\n",
              trace.size(), trace.DurationSec());

  std::vector<double> relaxed =
      RunEstimates(SamplerSql(10.0), trace, actual.size());
  std::vector<double> nonrelaxed =
      RunEstimates(SamplerSql(1.0), trace, actual.size());

  std::printf("%-8s %14s %14s %8s %14s %8s\n", "window", "actual MB",
              "relaxed MB", "err", "nonrelaxed MB", "err");
  double worst_rel = 0, worst_nonrel = 0;
  for (size_t w = 0; w + 1 < actual.size(); ++w) {
    double a = static_cast<double>(actual[w]);
    double er = a > 0 ? 100.0 * (relaxed[w] - a) / a : 0.0;
    double en = a > 0 ? 100.0 * (nonrelaxed[w] - a) / a : 0.0;
    worst_rel = std::max(worst_rel, std::fabs(er));
    worst_nonrel = std::max(worst_nonrel, std::fabs(en));
    std::printf("%-8zu %14.2f %14.2f %+7.1f%% %14.2f %+7.1f%%\n", w, a / 1e6,
                relaxed[w] / 1e6, er, nonrelaxed[w] / 1e6, en);
  }
  std::printf("\nworst-window error: relaxed %.1f%%, nonrelaxed %.1f%%\n",
              worst_rel, worst_nonrel);
  if (worst_nonrel > 1.5 * worst_rel) {
    std::printf(
        "the relaxed threshold carry-over (z/10 at window start) kept the "
        "sample representative through this trace's load drops.\n");
  } else {
    std::printf(
        "this run saw no sharp load drop, where the variants behave alike; "
        "longer runs (default 301 s) include drops that separate them.\n");
  }
  return 0;
}
