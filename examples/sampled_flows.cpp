// Sampled flows under a DDoS — the §8 extension as an application.
//
// Flow records (NetFlow-style: 5-tuple, bytes, packets) are the workhorse
// of network measurement, but building them requires one group per live
// flow — and a flood of single-packet flows (spoofed-source SYN flood)
// explodes that table. This program runs the *flow-integrated* dynamic
// subset-sum query: packets are threshold-sampled on the way in, admitted
// packets aggregate into flow groups carrying Horvitz-Thompson-adjusted
// byte weights, and cleaning phases re-threshold whole flows. The group
// table stays bounded at ~beta*N through the flood while heavy flows and
// per-window byte totals remain accurate.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "engine/runtime.h"
#include "net/flow_generator.h"
#include "query/query.h"

using namespace streamop;

int main() {
  FlowTraceConfig cfg;
  cfg.duration_sec = 80.0;
  cfg.seed = 7;
  cfg.attack_enabled = true;
  cfg.attack_start_sec = 30.0;
  cfg.attack_duration_sec = 20.0;
  cfg.attack_flows_per_sec = 15000.0;
  Trace trace = GenerateFlowTrace(cfg);
  FlowWindowTruth truth = ComputeFlowTruth(trace, 20);

  std::printf(
      "feed: %zu packets / %.0f s; spoofed single-packet-flow flood during "
      "[%.0f, %.0f) s\n\n",
      trace.size(), trace.DurationSec(), cfg.attack_start_sec,
      cfg.attack_start_sec + cfg.attack_duration_sec);

  const char* sql = R"(
      SELECT tb, srcIP, destIP, srcPort, destPort, proto,
             UMAX(sum(UMAX(len, ssthreshold())), ssthreshold()), count(*)
      FROM PKT
      WHERE ssample(len, 500, 2, 10) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, srcPort, destPort, proto
      HAVING ssfinal_clean(sum(UMAX(len, ssthreshold())),
                           count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(UMAX(len, ssthreshold()))) = TRUE
  )";
  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = 13});
  if (!cq.ok()) {
    std::fprintf(stderr, "compile error: %s\n", cq.status().ToString().c_str());
    return 1;
  }
  Result<SingleRunResult> run = RunQueryOverTrace(*cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "run error: %s\n", run.status().ToString().c_str());
    return 1;
  }

  std::vector<double> est(truth.bytes_per_window.size(), 0.0);
  std::vector<uint64_t> flow_samples(truth.bytes_per_window.size(), 0);
  for (const Tuple& t : run->output) {
    uint64_t tb = t[0].AsUInt();
    if (tb < est.size()) {
      est[tb] += t[6].AsDouble();
      ++flow_samples[tb];
    }
  }

  std::printf("%-8s %12s %14s | %12s %12s %8s\n", "window", "true flows",
              "peak groups", "flow samples", "est. MB", "err");
  for (size_t w = 0; w < truth.flows_per_window.size(); ++w) {
    double actual = static_cast<double>(truth.bytes_per_window[w]);
    uint64_t peak =
        w < run->windows.size() ? run->windows[w].peak_groups : 0;
    std::printf("%-8zu %12llu %14llu | %12llu %12.2f %+7.1f%%\n", w,
                static_cast<unsigned long long>(truth.flows_per_window[w]),
                static_cast<unsigned long long>(peak),
                static_cast<unsigned long long>(flow_samples[w]), est[w] / 1e6,
                actual > 0 ? 100.0 * (est[w] - actual) / actual : 0.0);
  }

  // The flood window's heaviest sampled flows are the legitimate elephants,
  // not attack mice.
  uint64_t flood_tb = static_cast<uint64_t>(cfg.attack_start_sec) / 20;
  std::vector<const Tuple*> flood_rows;
  for (const Tuple& t : run->output) {
    if (t[0].AsUInt() == flood_tb) flood_rows.push_back(&t);
  }
  std::sort(flood_rows.begin(), flood_rows.end(),
            [](const Tuple* a, const Tuple* b) {
              return (*a)[6].AsDouble() > (*b)[6].AsDouble();
            });
  std::printf("\nheaviest sampled flows during the flood window:\n");
  for (size_t i = 0; i < 5 && i < flood_rows.size(); ++i) {
    const Tuple& t = *flood_rows[i];
    std::printf("  %s:%llu -> %s:%llu  est %s bytes (%llu sampled pkts)\n",
                FormatIpv4(static_cast<uint32_t>(t[1].AsUInt())).c_str(),
                static_cast<unsigned long long>(t[3].AsUInt()),
                FormatIpv4(static_cast<uint32_t>(t[2].AsUInt())).c_str(),
                static_cast<unsigned long long>(t[4].AsUInt()),
                FormatWithCommas(static_cast<uint64_t>(t[6].AsDouble()))
                    .c_str(),
                static_cast<unsigned long long>(t[7].AsUInt()));
  }
  return 0;
}
