// streamop_send — replay a trace (saved or generated) to a streamop_cli
// consumer over the SOP1 wire protocol, as a real packet feed would arrive.
//
//   # terminal 1: consumer binds UDP and runs the query over live ingest
//   streamop_cli --udp-port 9400 --source-max-idle-ms 2000 --query "..."
//   # terminal 2: producer streams a saved capture at 50k records/s
//   streamop_send --udp 127.0.0.1:9400 --trace capture.bin --rate 50000
//
//   # TCP: the producer listens, the consumer dials out
//   streamop_send --tcp-listen 9401 --feed datacenter --duration 5
//   streamop_cli --tcp-connect 127.0.0.1:9401 --query "..."
//
// The fault flags (--drop-every, --corrupt-every, --kill-after, --no-fin)
// turn the sender into an adversarial producer for resilience drills.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "net/flow_generator.h"
#include "net/trace_generator.h"
#include "net/trace_sender.h"

using namespace streamop;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--udp <host:port> | --tcp-listen <port>) [options]\n"
      "  --trace <path>        replay a saved trace (default: generate)\n"
      "  --feed <name>         research | datacenter | ddos (default "
      "research)\n"
      "  --duration <sec>      generated feed duration (default 5)\n"
      "  --seed <n>            generator seed (default 42)\n"
      "  --rate <n>            records per second, 0 = unthrottled "
      "(default 0)\n"
      "  --records-per-frame <n>  batch size per DATA frame\n"
      "  --linger-ms <n>       keep serving resume handshakes after FIN\n"
      "  --replay-window <n>   limit how far back a resume may reach\n"
      "  --handshake-timeout-ms <n>  give up if no consumer appears "
      "(default 10000)\n"
      "  --drop-every <n>      drop every nth DATA frame (seq gap)\n"
      "  --corrupt-every <n>   corrupt every nth DATA frame (CRC reject)\n"
      "  --kill-after <n>      TCP: close the connection every n frames\n"
      "  --kill-mid-frame      with --kill-after: tear the final frame\n"
      "  --no-fin              end without FIN, like a crashing producer\n"
      "  (all options also accept --flag=value)\n",
      argv0);
}

struct Args {
  std::string udp;        // host:port
  int tcp_listen = -1;    // port, -1 = off
  std::string trace_path;
  std::string feed = "research";
  double duration = 5.0;
  uint64_t seed = 42;
  double rate = 0.0;
  size_t records_per_frame = 0;  // 0 = protocol default
  int linger_ms = 0;
  uint64_t replay_window = 0;
  int handshake_timeout_ms = 10000;
  uint64_t drop_every = 0;
  uint64_t corrupt_every = 0;
  uint64_t kill_after = 0;
  bool kill_mid_frame = false;
  bool send_fin = true;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (size_t eq = a.find('=');
        eq != std::string::npos && a.rfind("--", 0) == 0) {
      inline_value = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--udp") {
      if ((v = next()) == nullptr) return false;
      out->udp = v;
    } else if (a == "--tcp-listen") {
      if ((v = next()) == nullptr) return false;
      out->tcp_listen = std::atoi(v);
    } else if (a == "--trace") {
      if ((v = next()) == nullptr) return false;
      out->trace_path = v;
    } else if (a == "--feed") {
      if ((v = next()) == nullptr) return false;
      out->feed = v;
    } else if (a == "--duration") {
      if ((v = next()) == nullptr) return false;
      out->duration = std::atof(v);
    } else if (a == "--seed") {
      if ((v = next()) == nullptr) return false;
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--rate") {
      if ((v = next()) == nullptr) return false;
      out->rate = std::atof(v);
    } else if (a == "--records-per-frame") {
      if ((v = next()) == nullptr) return false;
      out->records_per_frame = static_cast<size_t>(std::atoll(v));
    } else if (a == "--linger-ms") {
      if ((v = next()) == nullptr) return false;
      out->linger_ms = std::atoi(v);
    } else if (a == "--replay-window") {
      if ((v = next()) == nullptr) return false;
      out->replay_window = std::strtoull(v, nullptr, 10);
    } else if (a == "--handshake-timeout-ms") {
      if ((v = next()) == nullptr) return false;
      out->handshake_timeout_ms = std::atoi(v);
    } else if (a == "--drop-every") {
      if ((v = next()) == nullptr) return false;
      out->drop_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--corrupt-every") {
      if ((v = next()) == nullptr) return false;
      out->corrupt_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--kill-after") {
      if ((v = next()) == nullptr) return false;
      out->kill_after = std::strtoull(v, nullptr, 10);
    } else if (a == "--kill-mid-frame") {
      out->kill_mid_frame = true;
    } else if (a == "--no-fin") {
      out->send_fin = false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  const bool udp = !args.udp.empty();
  const bool tcp = args.tcp_listen >= 0;
  if (udp == tcp) {  // exactly one transport must be selected
    Usage(argv[0]);
    return 2;
  }

  Trace trace;
  if (!args.trace_path.empty()) {
    Result<Trace> loaded = Trace::LoadFrom(args.trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else if (args.feed == "datacenter") {
    trace = TraceGenerator::MakeDataCenterFeed(args.duration, args.seed);
  } else if (args.feed == "ddos") {
    FlowTraceConfig cfg;
    cfg.duration_sec = args.duration;
    cfg.seed = args.seed;
    cfg.attack_enabled = true;
    cfg.attack_start_sec = args.duration / 3;
    cfg.attack_duration_sec = args.duration / 3;
    trace = GenerateFlowTrace(cfg);
  } else {
    trace = TraceGenerator::MakeResearchFeed(args.duration, args.seed);
  }
  std::fprintf(stderr, "sending %s records\n",
               FormatWithCommas(trace.size()).c_str());

  TraceSenderConfig cfg;
  cfg.records = trace.packets();
  if (args.records_per_frame > 0) {
    cfg.records_per_frame = args.records_per_frame;
  } else if (tcp) {
    cfg.records_per_frame = 512;  // TCP is framed, not MTU-bound
  }
  cfg.records_per_sec = args.rate;
  cfg.handshake_timeout_ms = args.handshake_timeout_ms;
  cfg.linger_ms = args.linger_ms;
  cfg.replay_window = args.replay_window;
  cfg.drop_every_nth_frame = args.drop_every;
  cfg.corrupt_every_nth_frame = args.corrupt_every;
  cfg.kill_connection_after_frames = args.kill_after;
  cfg.kill_mid_frame = args.kill_mid_frame;
  cfg.send_fin = args.send_fin;

  TraceSender sender(std::move(cfg));
  Status s;
  if (udp) {
    const size_t colon = args.udp.rfind(':');
    if (colon == std::string::npos || colon + 1 >= args.udp.size()) {
      std::fprintf(stderr, "--udp expects host:port, got '%s'\n",
                   args.udp.c_str());
      return 2;
    }
    const std::string host = args.udp.substr(0, colon);
    const uint16_t port =
        static_cast<uint16_t>(std::atoi(args.udp.c_str() + colon + 1));
    s = sender.RunUdp(host, port);
  } else {
    Status bound = sender.BindTcp(static_cast<uint16_t>(args.tcp_listen));
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "listening on port %u\n",
                 static_cast<unsigned>(sender.tcp_port()));
    s = sender.ServeTcp();
  }

  const TraceSenderStats& st = sender.stats();
  std::fprintf(
      stderr,
      "sender summary: frames=%llu records=%llu handshakes=%llu "
      "connections=%llu kills=%llu\n",
      static_cast<unsigned long long>(st.frames_sent.load()),
      static_cast<unsigned long long>(st.records_sent.load()),
      static_cast<unsigned long long>(st.handshakes.load()),
      static_cast<unsigned long long>(st.connections.load()),
      static_cast<unsigned long long>(st.kills.load()));
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
