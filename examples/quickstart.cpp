// Quickstart: compile a sampling query from text, run it over a synthetic
// packet trace, and print the sampled rows.
//
//   $ ./quickstart
//
// The query is the paper's dynamic subset-sum sampler (§6.1): collect ~100
// weight-representative packet samples per 20-second window, such that the
// sum of the UMAX(sum(len), ssthreshold()) column over any subset of the
// samples estimates that subset's true byte count.

#include <cstdio>

#include "common/string_util.h"
#include "engine/runtime.h"
#include "net/trace_generator.h"
#include "query/query.h"

using namespace streamop;

int main() {
  // 1. A catalog of input streams. Catalog::Default() pre-registers the
  //    packet schema under the names PKT / PKTS / TCP.
  Catalog catalog = Catalog::Default();

  // 2. Compile the query text into an executable plan.
  const char* sql = R"(
      SELECT tb, srcIP, destIP, UMAX(sum(len), ssthreshold())
      FROM PKTS
      WHERE ssample(len, 100) = TRUE
      GROUP BY time/20 as tb, srcIP, destIP, ts_ns
      HAVING ssfinal_clean(sum(len), count_distinct$(*)) = TRUE
      CLEANING WHEN ssdo_clean(count_distinct$(*)) = TRUE
      CLEANING BY ssclean_with(sum(len)) = TRUE
  )";
  Result<CompiledQuery> query = CompileQuery(sql, catalog, {.seed = 42});
  if (!query.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 3. A 60-second synthetic feed modeled on the paper's research-center
  //    link (bursty, 0.7k-15k packets/second).
  Trace trace = TraceGenerator::MakeResearchFeed(60.0, /*seed=*/7);
  std::printf("replaying %zu packets (%.1f MB over %.0f s)...\n\n",
              trace.size(),
              static_cast<double>(trace.TotalBytes()) / 1e6,
              trace.DurationSec());

  // 4. Run to completion and inspect the sample.
  Result<SingleRunResult> run = RunQueryOverTrace(*query, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %-16s %-16s %14s\n", "tb", "srcIP", "destIP",
              "est. weight");
  int shown = 0;
  for (const Tuple& row : run->output) {
    if (++shown > 12) break;
    std::printf("%-6llu %-16s %-16s %14.0f\n",
                static_cast<unsigned long long>(row[0].AsUInt()),
                FormatIpv4(static_cast<uint32_t>(row[1].AsUInt())).c_str(),
                FormatIpv4(static_cast<uint32_t>(row[2].AsUInt())).c_str(),
                row[3].AsDouble());
  }
  std::printf("... (%zu sampled rows total)\n\n", run->output.size());

  // 5. The per-window execution statistics the operator keeps.
  for (size_t w = 0; w < run->windows.size(); ++w) {
    const WindowStats& ws = run->windows[w];
    std::printf(
        "window %zu: %s tuples in, %llu admitted, %llu cleaning phases, "
        "%llu samples out\n",
        w, FormatWithCommas(ws.tuples_in).c_str(),
        static_cast<unsigned long long>(ws.tuples_admitted),
        static_cast<unsigned long long>(ws.cleaning_phases),
        static_cast<unsigned long long>(ws.groups_output));
  }
  return 0;
}
