// streamop_cli — run any query of the dialect over a synthetic feed or a
// saved trace, from the command line.
//
//   streamop_cli --query "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb"
//   streamop_cli --feed datacenter --duration 10 \
//                --query-file my_query.sql --limit 50
//   streamop_cli --trace capture.bin --query-file q.sql
//   streamop_cli --feed ddos --save-trace capture.bin   # just materialize
//
// Feeds: research (bursty 0.7k-15k pkt/s), datacenter (steady 100k pkt/s),
// ddos (flow-structured with a single-packet-flow flood).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "engine/runtime.h"
#include "net/flow_generator.h"
#include "net/trace_generator.h"
#include "query/query.h"

using namespace streamop;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --query <sql>         query text (or use --query-file)\n"
      "  --query-file <path>   read the query from a file\n"
      "  --feed <name>         research | datacenter | ddos (default "
      "research)\n"
      "  --duration <sec>      feed duration (default 60)\n"
      "  --seed <n>            generator + sampler seed (default 42)\n"
      "  --trace <path>        replay a saved trace instead of a feed\n"
      "  --save-trace <path>   write the generated trace and exit\n"
      "  --limit <n>           max rows to print (default 20)\n"
      "  --stats               print per-window operator statistics\n",
      argv0);
}

struct Args {
  std::string query;
  std::string query_file;
  std::string feed = "research";
  double duration = 60.0;
  uint64_t seed = 42;
  std::string trace_path;
  std::string save_trace;
  size_t limit = 20;
  bool stats = false;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--query") {
      const char* v = next();
      if (v == nullptr) return false;
      out->query = v;
    } else if (a == "--query-file") {
      const char* v = next();
      if (v == nullptr) return false;
      out->query_file = v;
    } else if (a == "--feed") {
      const char* v = next();
      if (v == nullptr) return false;
      out->feed = v;
    } else if (a == "--duration") {
      const char* v = next();
      if (v == nullptr) return false;
      out->duration = std::atof(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      out->trace_path = v;
    } else if (a == "--save-trace") {
      const char* v = next();
      if (v == nullptr) return false;
      out->save_trace = v;
    } else if (a == "--limit") {
      const char* v = next();
      if (v == nullptr) return false;
      out->limit = static_cast<size_t>(std::atoll(v));
    } else if (a == "--stats") {
      out->stats = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

Trace MakeFeed(const Args& args) {
  if (args.feed == "datacenter") {
    return TraceGenerator::MakeDataCenterFeed(args.duration, args.seed);
  }
  if (args.feed == "ddos") {
    FlowTraceConfig cfg;
    cfg.duration_sec = args.duration;
    cfg.seed = args.seed;
    cfg.attack_enabled = true;
    cfg.attack_start_sec = args.duration / 3;
    cfg.attack_duration_sec = args.duration / 3;
    return GenerateFlowTrace(cfg);
  }
  return TraceGenerator::MakeResearchFeed(args.duration, args.seed);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  // Acquire the input trace.
  Trace trace;
  if (!args.trace_path.empty()) {
    Result<Trace> loaded = Trace::LoadFrom(args.trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else {
    trace = MakeFeed(args);
  }
  std::fprintf(stderr, "trace: %s packets over %.1f s\n",
               FormatWithCommas(trace.size()).c_str(), trace.DurationSec());

  if (!args.save_trace.empty()) {
    Status s = trace.SaveTo(args.save_trace);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", args.save_trace.c_str());
    if (args.query.empty() && args.query_file.empty()) return 0;
  }

  // Acquire the query text.
  std::string sql = args.query;
  if (sql.empty() && !args.query_file.empty()) {
    std::ifstream in(args.query_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", args.query_file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    sql = ss.str();
  }
  if (sql.empty()) {
    Usage(argv[0]);
    return 2;
  }

  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = args.seed});
  if (!cq.ok()) {
    std::fprintf(stderr, "%s\n", cq.status().ToString().c_str());
    return 1;
  }
  Result<SingleRunResult> run = RunQueryOverTrace(*cq, trace);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  // Header + rows.
  SchemaPtr out_schema = cq->output_schema();
  for (size_t i = 0; i < out_schema->num_fields(); ++i) {
    std::printf("%s%s", i > 0 ? "\t" : "", out_schema->field(i).name.c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  for (const Tuple& t : run->output) {
    if (args.limit > 0 && shown++ >= args.limit) break;
    for (size_t i = 0; i < t.size(); ++i) {
      std::printf("%s%s", i > 0 ? "\t" : "", t[i].ToString().c_str());
    }
    std::printf("\n");
  }
  std::fprintf(stderr, "%zu row(s); %.2f%% CPU at stream rate\n",
               run->output.size(), run->report.cpu_percent);

  if (args.stats) {
    for (size_t w = 0; w < run->windows.size(); ++w) {
      const WindowStats& ws = run->windows[w];
      std::fprintf(stderr,
                   "window %zu: in=%llu admitted=%llu groups=%llu peak=%llu "
                   "cleanings=%llu removed=%llu out=%llu\n",
                   w, static_cast<unsigned long long>(ws.tuples_in),
                   static_cast<unsigned long long>(ws.tuples_admitted),
                   static_cast<unsigned long long>(ws.groups_created),
                   static_cast<unsigned long long>(ws.peak_groups),
                   static_cast<unsigned long long>(ws.cleaning_phases),
                   static_cast<unsigned long long>(ws.groups_removed),
                   static_cast<unsigned long long>(ws.groups_output));
    }
  }
  return 0;
}
