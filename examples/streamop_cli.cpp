// streamop_cli — run any query of the dialect over a synthetic feed or a
// saved trace, from the command line.
//
//   streamop_cli --query "SELECT tb, sum(len) FROM PKT GROUP BY time/20 as tb"
//   streamop_cli --feed datacenter --duration 10 \
//                --query-file my_query.sql --limit 50
//   streamop_cli --trace capture.bin --query-file q.sql
//   streamop_cli --feed ddos --save-trace capture.bin   # just materialize
//
// Feeds: research (bursty 0.7k-15k pkt/s), datacenter (steady 100k pkt/s),
// ddos (flow-structured with a single-packet-flow flood).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "engine/runtime.h"
#include "net/flow_generator.h"
#include "net/trace_generator.h"
#include "obs/alerts.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/trace_ring.h"
#include "query/query.h"
#include "stream/fault_injection.h"
#include "stream/pcap_reader.h"
#include "stream/socket_source.h"

using namespace streamop;

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --query <sql>         query text (or use --query-file)\n"
      "  --query-file <path>   read the query from a file\n"
      "  --feed <name>         research | datacenter | ddos (default "
      "research)\n"
      "  --duration <sec>      feed duration (default 60)\n"
      "  --seed <n>            generator + sampler seed (default 42)\n"
      "  --trace <path>        replay a saved trace instead of a feed\n"
      "  --save-trace <path>   write the generated trace and exit\n"
      "  --limit <n>           max rows to print (default 20)\n"
      "  --stats               print per-window operator statistics\n"
      "  --metrics-json <path> write a JSON metrics snapshot after the run\n"
      "  --metrics-prom <path> write Prometheus text exposition after the "
      "run\n"
      "  --trace-json <path>   write chrome://tracing JSON (window flushes,\n"
      "                        cleaning phases, subset-sum z adjustments)\n"
      "  --quality-json <path> write per-window sample-quality reports\n"
      "                        (error bounds, CIs) as JSON after the run\n"
      "  --spans-json <path>   write window-lifecycle spans (ring drain ->\n"
      "                        select -> admission -> flush trees) as JSON\n"
      "  --exemplars-json <path>  write reservoir-sampled telemetry\n"
      "                        exemplars (latency bands, shed/late/malformed)\n"
      "  --profile-folded <path>  run the SIGPROF sampler during the run and\n"
      "                        write folded stacks (pipe to flamegraph.pl)\n"
      "  --profile-hz <n>      sampler rate for --profile-folded / /profile\n"
      "                        (default 97)\n"
      "  --http-port <n>       serve /metrics, /metrics.json, /traces,\n"
      "                        /spans, /profile, /exemplars, /windows,\n"
      "                        /healthz on loopback (0 = ephemeral)\n"
      "  --serve-ms <n>        keep the HTTP server up for n ms after the\n"
      "                        run finishes (for scraping; default 0)\n"
      "  --metrics-interval-ms <n>  rewrite --metrics-json/--metrics-prom\n"
      "                        files every n ms during the run\n"
      "  --shed                run threaded with adaptive load shedding and\n"
      "                        print a degradation summary\n"
      "  --shed-high-watermark <f>  occupancy above which p decreases "
      "(default 0.75)\n"
      "  --shed-low-watermark <f>   occupancy below which p recovers "
      "(default 0.40)\n"
      "  --shed-min-p <f>      admission probability floor (default 0.1)\n"
      "  --stall-timeout-ms <n>  watchdog timeout for hung pipelines "
      "(default 10000; 0 = off)\n"
      "  --checkpoint-dir <path>  durable snapshots: write a versioned,\n"
      "                        CRC-guarded checkpoint of all sampler state\n"
      "                        at window flushes and restore the newest\n"
      "                        valid one at startup (runs the two-level\n"
      "                        pipeline)\n"
      "  --checkpoint-every-n-windows <n>  snapshot cadence (default 1)\n"
      "  --checkpoint-retain <n>  keep the newest n snapshots (default 3)\n"
      "  --fault-seed <n>      inject seeded faults into the trace "
      "(duplicates,\n"
      "                        reordering, truncation, timestamp "
      "regressions)\n"
      "  --udp-port <n>        ingest live records from a UDP producer\n"
      "                        (streamop_send) bound on this port\n"
      "  --tcp-connect <h:p>   ingest from a TCP producer at host:port,\n"
      "                        reconnecting with bounded backoff\n"
      "  --pcap <path>         ingest from a classic pcap capture file\n"
      "  --source-timeout-ms <n>  socket read timeout before a heartbeat-\n"
      "                        empty batch (default 100)\n"
      "  --source-max-idle-ms <n>  end the run after this much continuous\n"
      "                        idle time on the source (0 = run forever)\n"
      "  --source-max-records <n>  end the run after ingesting n records\n"
      "                        (0 = until the source ends)\n"
      "  --timeseries-interval-ms <n>  scrape the metric registry every n ms\n"
      "                        into the in-memory time-series ring and run\n"
      "                        the SLO alert engine over it (serves\n"
      "                        /timeseries, /alerts, /dashboard; runs the\n"
      "                        two-level pipeline)\n"
      "  --alert-rules <path>  install extra alert rules from a file (one\n"
      "                        rule per line; see docs/OBSERVABILITY.md)\n"
      "  --quality-ci-target <f>  fire the built-in accuracy-SLO rule when\n"
      "                        any estimator's 95%% CI half-width exceeds f\n"
      "  --flight-dir <path>   flight recorder: spill the telemetry tail to\n"
      "                        a CRC-guarded segment in this directory on\n"
      "                        cadence and at checkpoints; on startup load\n"
      "                        any pre-crash segment and print the forensic\n"
      "                        report\n"
      "  --dump-forensics      load the flight segment under --flight-dir,\n"
      "                        print the forensic report and exit\n"
      "  (all options also accept --flag=value)\n",
      argv0);
}

struct Args {
  std::string query;
  std::string query_file;
  std::string feed = "research";
  double duration = 60.0;
  uint64_t seed = 42;
  std::string trace_path;
  std::string save_trace;
  size_t limit = 20;
  bool stats = false;
  std::string metrics_json;
  std::string metrics_prom;
  std::string trace_json;
  std::string quality_json;
  std::string spans_json;
  std::string exemplars_json;
  std::string profile_folded;
  int profile_hz = 0;  // 0 = default rate (97 Hz)
  int http_port = -1;  // -1 = off, 0 = ephemeral
  uint64_t serve_ms = 0;
  uint64_t metrics_interval_ms = 0;
  bool shed = false;
  double shed_high_watermark = 0.75;
  double shed_low_watermark = 0.40;
  double shed_min_p = 0.1;
  uint64_t stall_timeout_ms = 10000;
  uint64_t fault_seed = 0;  // 0 = no fault injection
  std::string checkpoint_dir;
  uint64_t checkpoint_every = 1;
  uint64_t checkpoint_retain = 3;
  int udp_port = -1;  // -1 = off, 0 = ephemeral
  std::string tcp_connect;
  std::string pcap_path;
  uint64_t source_timeout_ms = 100;
  uint64_t source_max_idle_ms = 0;
  uint64_t source_max_records = 0;
  uint64_t timeseries_interval_ms = 0;  // 0 = time-series stack off
  std::string alert_rules_file;
  double quality_ci_target = 0.0;
  std::string flight_dir;
  bool dump_forensics = false;

  bool use_timeseries() const {
    return timeseries_interval_ms > 0 || !alert_rules_file.empty() ||
           !flight_dir.empty();
  }

  bool use_source() const {
    return udp_port >= 0 || !tcp_connect.empty() || !pcap_path.empty();
  }
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inline_value;
    bool has_inline = false;
    if (size_t eq = a.find('='); eq != std::string::npos && a.rfind("--", 0) == 0) {
      inline_value = a.substr(eq + 1);
      a = a.substr(0, eq);
      has_inline = true;
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--query") {
      const char* v = next();
      if (v == nullptr) return false;
      out->query = v;
    } else if (a == "--query-file") {
      const char* v = next();
      if (v == nullptr) return false;
      out->query_file = v;
    } else if (a == "--feed") {
      const char* v = next();
      if (v == nullptr) return false;
      out->feed = v;
    } else if (a == "--duration") {
      const char* v = next();
      if (v == nullptr) return false;
      out->duration = std::atof(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      out->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      out->trace_path = v;
    } else if (a == "--save-trace") {
      const char* v = next();
      if (v == nullptr) return false;
      out->save_trace = v;
    } else if (a == "--limit") {
      const char* v = next();
      if (v == nullptr) return false;
      out->limit = static_cast<size_t>(std::atoll(v));
    } else if (a == "--stats") {
      out->stats = true;
    } else if (a == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return false;
      out->metrics_json = v;
    } else if (a == "--metrics-prom") {
      const char* v = next();
      if (v == nullptr) return false;
      out->metrics_prom = v;
    } else if (a == "--trace-json") {
      const char* v = next();
      if (v == nullptr) return false;
      out->trace_json = v;
    } else if (a == "--quality-json") {
      const char* v = next();
      if (v == nullptr) return false;
      out->quality_json = v;
    } else if (a == "--spans-json") {
      const char* v = next();
      if (v == nullptr) return false;
      out->spans_json = v;
    } else if (a == "--exemplars-json") {
      const char* v = next();
      if (v == nullptr) return false;
      out->exemplars_json = v;
    } else if (a == "--profile-folded") {
      const char* v = next();
      if (v == nullptr) return false;
      out->profile_folded = v;
    } else if (a == "--profile-hz") {
      const char* v = next();
      if (v == nullptr) return false;
      out->profile_hz = std::atoi(v);
    } else if (a == "--http-port") {
      const char* v = next();
      if (v == nullptr) return false;
      out->http_port = std::atoi(v);
    } else if (a == "--serve-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->serve_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--metrics-interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->metrics_interval_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--shed") {
      out->shed = true;
    } else if (a == "--shed-high-watermark") {
      const char* v = next();
      if (v == nullptr) return false;
      out->shed_high_watermark = std::atof(v);
    } else if (a == "--shed-low-watermark") {
      const char* v = next();
      if (v == nullptr) return false;
      out->shed_low_watermark = std::atof(v);
    } else if (a == "--shed-min-p") {
      const char* v = next();
      if (v == nullptr) return false;
      out->shed_min_p = std::atof(v);
    } else if (a == "--stall-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->stall_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      out->fault_seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--checkpoint-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      out->checkpoint_dir = v;
    } else if (a == "--checkpoint-every-n-windows") {
      const char* v = next();
      if (v == nullptr) return false;
      out->checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--checkpoint-retain") {
      const char* v = next();
      if (v == nullptr) return false;
      out->checkpoint_retain = std::strtoull(v, nullptr, 10);
    } else if (a == "--udp-port") {
      const char* v = next();
      if (v == nullptr) return false;
      out->udp_port = std::atoi(v);
    } else if (a == "--tcp-connect") {
      const char* v = next();
      if (v == nullptr) return false;
      out->tcp_connect = v;
    } else if (a == "--pcap") {
      const char* v = next();
      if (v == nullptr) return false;
      out->pcap_path = v;
    } else if (a == "--source-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->source_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--source-max-idle-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->source_max_idle_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--source-max-records") {
      const char* v = next();
      if (v == nullptr) return false;
      out->source_max_records = std::strtoull(v, nullptr, 10);
    } else if (a == "--timeseries-interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->timeseries_interval_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--alert-rules") {
      const char* v = next();
      if (v == nullptr) return false;
      out->alert_rules_file = v;
    } else if (a == "--quality-ci-target") {
      const char* v = next();
      if (v == nullptr) return false;
      out->quality_ci_target = std::atof(v);
    } else if (a == "--flight-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      out->flight_dir = v;
    } else if (a == "--dump-forensics") {
      out->dump_forensics = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

// Builds the live-ingest source selected by --udp-port / --tcp-connect /
// --pcap. Returns nullptr (with a message) on a malformed endpoint.
std::unique_ptr<ResumableSource> MakeSource(const Args& args) {
  if (!args.pcap_path.empty()) {
    PcapReaderConfig cfg;
    cfg.path = args.pcap_path;
    return std::make_unique<PcapReader>(cfg);
  }
  SocketSourceConfig cfg;
  cfg.read_timeout_ms = args.source_timeout_ms;
  if (args.udp_port >= 0) {
    cfg.mode = SocketSourceConfig::Mode::kUdp;
    cfg.port = static_cast<uint16_t>(args.udp_port);
    return std::make_unique<SocketSource>(cfg);
  }
  const size_t colon = args.tcp_connect.rfind(':');
  if (colon == std::string::npos || colon + 1 >= args.tcp_connect.size()) {
    std::fprintf(stderr, "--tcp-connect expects host:port, got '%s'\n",
                 args.tcp_connect.c_str());
    return nullptr;
  }
  cfg.mode = SocketSourceConfig::Mode::kTcp;
  cfg.host = args.tcp_connect.substr(0, colon);
  cfg.port = static_cast<uint16_t>(
      std::atoi(args.tcp_connect.c_str() + colon + 1));
  return std::make_unique<SocketSource>(cfg);
}

Trace MakeFeed(const Args& args) {
  if (args.feed == "datacenter") {
    return TraceGenerator::MakeDataCenterFeed(args.duration, args.seed);
  }
  if (args.feed == "ddos") {
    FlowTraceConfig cfg;
    cfg.duration_sec = args.duration;
    cfg.seed = args.seed;
    cfg.attack_enabled = true;
    cfg.attack_start_sec = args.duration / 3;
    cfg.attack_duration_sec = args.duration / 3;
    return GenerateFlowTrace(cfg);
  }
  return TraceGenerator::MakeResearchFeed(args.duration, args.seed);
}

bool WriteFile(const std::string& path, const std::string& contents,
               const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  out << contents;
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return true;
}

// Rewrites the --metrics-json / --metrics-prom files every interval while a
// run executes, so long runs are observable from the filesystem without
// waiting for the final snapshot. Inert when the interval is 0 or neither
// path was given; the destructor stops the refresh thread.
class MetricsFileRefresher {
 public:
  MetricsFileRefresher(obs::MetricRegistry& registry, std::string json_path,
                       std::string prom_path, uint64_t interval_ms)
      : registry_(registry),
        json_path_(std::move(json_path)),
        prom_path_(std::move(prom_path)),
        interval_ms_(interval_ms) {
    if (interval_ms_ == 0 || (json_path_.empty() && prom_path_.empty())) {
      return;
    }
    thread_ = std::thread([this] { Loop(); });
  }

  ~MetricsFileRefresher() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stop_; })) {
        break;
      }
      lock.unlock();
      WriteOnce();
      lock.lock();
    }
  }

  void WriteOnce() {
    if (!json_path_.empty()) {
      std::ofstream out(json_path_);
      if (out) out << registry_.ToJson();
    }
    if (!prom_path_.empty()) {
      std::ofstream out(prom_path_);
      if (out) out << registry_.ToPrometheus();
    }
  }

  obs::MetricRegistry& registry_;
  std::string json_path_;
  std::string prom_path_;
  uint64_t interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  // Offline forensics: decode the flight segment and exit — the workflow
  // an operator runs right after a crash, before restarting anything.
  if (args.dump_forensics) {
    if (args.flight_dir.empty()) {
      std::fprintf(stderr, "--dump-forensics requires --flight-dir\n");
      return 2;
    }
    auto report = obs::FlightRecorder::Load(args.flight_dir);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::fputs(report->ToText().c_str(), stdout);
    return 0;
  }

  // Acquire the input: a live source (network/pcap) or an in-process trace.
  std::unique_ptr<ResumableSource> source;
  if (args.use_source()) {
    source = MakeSource(args);
    if (source == nullptr) return 2;
  }
  Trace trace;
  if (source != nullptr) {
    // Live ingest replaces the trace entirely; nothing to materialize.
  } else if (!args.trace_path.empty()) {
    Result<Trace> loaded = Trace::LoadFrom(args.trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else {
    trace = MakeFeed(args);
  }
  if (args.fault_seed != 0 && source == nullptr) {
    FaultInjectionConfig fcfg;
    fcfg.seed = args.fault_seed;
    fcfg.p_duplicate = 0.02;
    fcfg.p_reorder = 0.02;
    fcfg.p_truncate = 0.01;
    fcfg.p_ts_backwards = 0.005;
    fcfg.p_burst_start = 0.0005;
    trace = InjectFaults(trace, fcfg);
    std::fprintf(stderr, "fault injection: seed %llu\n",
                 static_cast<unsigned long long>(args.fault_seed));
  }
  if (source == nullptr) {
    std::fprintf(stderr, "trace: %s packets over %.1f s\n",
                 FormatWithCommas(trace.size()).c_str(), trace.DurationSec());
  }

  if (!args.save_trace.empty() && source == nullptr) {
    Status s = trace.SaveTo(args.save_trace);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", args.save_trace.c_str());
    if (args.query.empty() && args.query_file.empty()) return 0;
  }

  // Acquire the query text.
  std::string sql = args.query;
  if (sql.empty() && !args.query_file.empty()) {
    std::ifstream in(args.query_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", args.query_file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    sql = ss.str();
  }
  if (sql.empty()) {
    Usage(argv[0]);
    return 2;
  }

  Catalog catalog = Catalog::Default();
  Result<CompiledQuery> cq = CompileQuery(sql, catalog, {.seed = args.seed});
  if (!cq.ok()) {
    std::fprintf(stderr, "%s\n", cq.status().ToString().c_str());
    return 1;
  }

  // Metrics land in the process-wide default registry so operator-internal
  // instrumentation (e.g. subset-sum z adjustments) shows up in the same
  // snapshot. Tracing and quality reporting are off unless a sink (file or
  // HTTP endpoint) was requested.
  obs::MetricRegistry& registry = obs::MetricRegistry::Default();
  const bool want_http = args.http_port >= 0;
  if (!args.trace_json.empty() || want_http) {
    obs::TraceRing::Default().set_enabled(true);
  }
  if (!args.quality_json.empty() || want_http) {
    obs::QualityRing::Default().set_enabled(true);
  }
  if (!args.spans_json.empty() || want_http) {
    obs::SpanRing::Default().set_enabled(true);
  }
  if (!args.exemplars_json.empty() || want_http) {
    obs::ExemplarStore::Default().set_enabled(true);
  }
  // The sampling profiler + phase-cycle accounting: started when a folded
  // export or explicit rate was requested, and whenever the introspection
  // server is up (so /profile answers live). SIGPROF fires on consumed CPU
  // time and touches nothing the query reads, so results stay
  // byte-identical with it running.
  obs::Profiler& profiler = obs::Profiler::Default();
  const bool want_profile =
      !args.profile_folded.empty() || args.profile_hz > 0 || want_http;
  if (want_profile) {
    profiler.set_hz(args.profile_hz);
    profiler.set_phase_accounting(true);
    Status ps = profiler.Start();
    if (!ps.ok()) {
      std::fprintf(stderr, "profiler: %s\n", ps.ToString().c_str());
    }
  }

  // Header helper shared by both execution paths.
  SchemaPtr out_schema = cq->output_schema();
  auto print_rows = [&](const std::vector<Tuple>& rows) {
    for (size_t i = 0; i < out_schema->num_fields(); ++i) {
      std::printf("%s%s", i > 0 ? "\t" : "", out_schema->field(i).name.c_str());
    }
    std::printf("\n");
    size_t shown = 0;
    for (const Tuple& t : rows) {
      if (args.limit > 0 && shown++ >= args.limit) break;
      for (size_t i = 0; i < t.size(); ++i) {
        std::printf("%s%s", i > 0 ? "\t" : "", t[i].ToString().c_str());
      }
      std::printf("\n");
    }
  };

  // File exports run before any --serve-ms hold so an operator killing the
  // process while the server is being scraped still finds them on disk.
  bool io_ok = true;
  auto write_exports = [&] {
    if (!args.metrics_json.empty()) {
      io_ok &= WriteFile(args.metrics_json, registry.ToJson(), "metrics JSON");
    }
    if (!args.metrics_prom.empty()) {
      io_ok &= WriteFile(args.metrics_prom, registry.ToPrometheus(),
                         "Prometheus metrics");
    }
    if (!args.trace_json.empty()) {
      io_ok &= WriteFile(args.trace_json,
                         obs::TraceRing::Default().ToChromeTraceJson(),
                         "trace JSON");
    }
    if (!args.quality_json.empty()) {
      io_ok &= WriteFile(args.quality_json,
                         obs::QualityRing::Default().ToJson(), "quality JSON");
    }
    if (!args.spans_json.empty()) {
      io_ok &= WriteFile(args.spans_json, obs::SpanRing::Default().ToJson(),
                         "spans JSON");
    }
    if (!args.exemplars_json.empty()) {
      io_ok &= WriteFile(args.exemplars_json,
                         obs::ExemplarStore::Default().ToJson(),
                         "exemplars JSON");
    }
    if (!args.profile_folded.empty()) {
      io_ok &= WriteFile(args.profile_folded, profiler.Folded(0),
                         "folded profile");
    }
  };

  if (source != nullptr || args.shed || !args.checkpoint_dir.empty() ||
      args.use_timeseries()) {
    // Threaded two-level pipeline: a pass-through low node feeds the user's
    // query, with the AIMD shedding gate at the ring drain. Admitted tuples
    // are reweighted by 1/p, so sums and counts remain unbiased estimates.
    // Durable checkpoints also live here (the runtime owns the snapshot
    // cadence), so --checkpoint-dir routes through this path too.
    static constexpr char kPassThroughLow[] =
        "SELECT time, ts_ns, srcIP, destIP, srcPort, destPort, proto, len "
        "FROM PKT";
    Result<CompiledQuery> low =
        CompileQuery(kPassThroughLow, catalog, {.seed = args.seed});
    if (!low.ok()) {
      std::fprintf(stderr, "%s\n", low.status().ToString().c_str());
      return 1;
    }
    RuntimeOptions opt;
    opt.shed.enabled = args.shed;
    opt.shed.seed = args.seed;
    opt.shed.high_watermark = args.shed_high_watermark;
    opt.shed.low_watermark = args.shed_low_watermark;
    opt.shed.min_probability = args.shed_min_p;
    opt.stall_timeout_ms = args.stall_timeout_ms;
    opt.http_port = args.http_port;
    opt.checkpoint.dir = args.checkpoint_dir;
    opt.checkpoint.every_n_windows = args.checkpoint_every;
    opt.checkpoint.retain = args.checkpoint_retain;
    opt.source_max_idle_ms = args.source_max_idle_ms;
    opt.source_max_records = args.source_max_records;
    if (args.use_timeseries()) {
      opt.timeseries.interval_ms = args.timeseries_interval_ms;
      opt.quality_ci_target = args.quality_ci_target;
      opt.flight.dir = args.flight_dir;
      if (!args.alert_rules_file.empty()) {
        std::ifstream in(args.alert_rules_file);
        if (!in) {
          std::fprintf(stderr, "cannot read %s\n",
                       args.alert_rules_file.c_str());
          return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        opt.alert_rules = ss.str();
      }
    }
    TwoLevelRuntime rt(*low, {*cq}, opt);
    if (rt.recovered()) {
      std::fprintf(stderr, "recovered from checkpoint at window %llu\n",
                   static_cast<unsigned long long>(rt.recovered_windows()));
    }
    if (want_http) {
      if (rt.http_server() != nullptr) {
        std::fprintf(stderr, "introspection server on 127.0.0.1:%d\n",
                     rt.http_server()->port());
      } else {
        std::fprintf(stderr, "http server failed: %s\n",
                     rt.http_status().ToString().c_str());
      }
    }
    Result<RunReport> report = Status::Internal("run not started");
    {
      MetricsFileRefresher refresher(registry, args.metrics_json,
                                     args.metrics_prom,
                                     args.metrics_interval_ms);
      if (source != nullptr) {
        std::fprintf(stderr, "ingesting from %s\n",
                     source->describe().c_str());
        report = rt.RunSource(*source);
      } else {
        report = rt.RunThreaded(trace);
      }
    }
    const RunReport& r = report.ok() ? *report : rt.last_report();
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    } else {
      print_rows(rt.high_node(0).DrainOutput());
    }
    std::fprintf(
        stderr,
        "degradation summary: offered=%s shed=%s (%.2f%%) p=[%.3f, %.3f] "
        "late=%llu malformed=%llu backoff_sleeps=%llu (%.3f s) "
        "watchdog=%s\n",
        FormatWithCommas(r.tuples_offered).c_str(),
        FormatWithCommas(r.tuples_shed).c_str(), 100.0 * r.shed_fraction,
        r.shed_p_min, r.shed_p_max,
        static_cast<unsigned long long>(r.late_tuples),
        static_cast<unsigned long long>(r.packets_malformed),
        static_cast<unsigned long long>(r.producer_backoff_sleeps),
        r.producer_backoff_seconds, r.watchdog_fired ? "FIRED" : "ok");
    if (args.use_timeseries() && rt.alert_engine() != nullptr) {
      // Final tick: scrape the end-of-run registry state, give every rule
      // one last evaluation and (with a flight dir) spill the final tail.
      if (rt.flight_recorder() != nullptr) {
        rt.flight_recorder()->RequestSpill();
      }
      if (rt.sampler() != nullptr) rt.sampler()->TickOnce();
      const obs::AlertSummary as = rt.alert_engine()->Summary();
      std::fprintf(
          stderr,
          "alert summary: rules=%zu firing=%zu pending=%zu worst=%s "
          "scrapes=%llu%s\n",
          rt.alert_engine()->num_rules(), as.firing, as.pending,
          as.firing > 0 ? obs::AlertSeverityName(as.worst) : "none",
          static_cast<unsigned long long>(
              rt.timeseries() != nullptr ? rt.timeseries()->scrapes() : 0),
          rt.flight_recorder() == nullptr ? ""
          : rt.flight_recorder()->spills() > 0
              ? " (flight segment spilled)"
              : " (flight spill FAILED)");
    }
    if (!args.checkpoint_dir.empty()) {
      std::fprintf(
          stderr,
          "checkpoint summary: written=%llu failures=%llu "
          "corrupt_skipped=%llu degraded=%s recovered=%s\n",
          static_cast<unsigned long long>(r.checkpoints_written),
          static_cast<unsigned long long>(r.checkpoint_failures),
          static_cast<unsigned long long>(r.checkpoint_corrupt_skipped),
          r.checkpoint_degraded ? "yes" : "no", r.recovered ? "yes" : "no");
    }
    for (const SourceReport& s : r.sources) {
      std::fprintf(
          stderr,
          "ingest summary: %s resumed=%s end=%s offset=%llu lag=%llu "
          "frames=%llu records=%llu malformed_frames=%llu reconnects=%llu "
          "gaps=%llu (%llu records) dups=%llu heartbeats=%llu%s%s\n",
          s.source.c_str(), s.resumed_from_offset ? "yes" : "no",
          s.clean_end ? "clean" : "error",
          static_cast<unsigned long long>(s.durable_offset),
          static_cast<unsigned long long>(s.offset_lag),
          static_cast<unsigned long long>(s.stats.frames),
          static_cast<unsigned long long>(s.stats.records),
          static_cast<unsigned long long>(s.stats.malformed_frames),
          static_cast<unsigned long long>(s.stats.reconnects),
          static_cast<unsigned long long>(s.stats.gaps),
          static_cast<unsigned long long>(s.stats.gap_records),
          static_cast<unsigned long long>(s.stats.duplicate_records),
          static_cast<unsigned long long>(s.stats.heartbeats),
          s.error.empty() ? "" : " error=", s.error.c_str());
    }
    if (!report.ok()) return 1;
    write_exports();
    if (args.serve_ms > 0 && rt.http_server() != nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(args.serve_ms));
    }
  } else {
    // Single-node path: the runtime owns no server here, so stand one up
    // against the default registry and rings for the duration of main().
    std::unique_ptr<obs::HttpServer> server;
    if (want_http) {
      obs::HttpServerOptions hopt;
      hopt.port = args.http_port;
      hopt.registry = &registry;
      server = std::make_unique<obs::HttpServer>(hopt);
      Status s = server->Start();
      if (!s.ok()) {
        std::fprintf(stderr, "http server failed: %s\n",
                     s.ToString().c_str());
        server.reset();
      } else {
        std::fprintf(stderr, "introspection server on 127.0.0.1:%d\n",
                     server->port());
      }
    }
    Result<SingleRunResult> run = Status::Internal("run not started");
    {
      MetricsFileRefresher refresher(registry, args.metrics_json,
                                     args.metrics_prom,
                                     args.metrics_interval_ms);
      run = RunQueryOverTrace(*cq, trace, "query", &registry);
    }
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    print_rows(run->output);
    std::fprintf(stderr, "%zu row(s); %.2f%% CPU at stream rate\n",
                 run->output.size(), run->report.cpu_percent);

    if (args.stats) {
      for (size_t w = 0; w < run->windows.size(); ++w) {
        const WindowStats& ws = run->windows[w];
        std::fprintf(stderr,
                     "window %zu: in=%llu admitted=%llu late=%llu groups=%llu "
                     "peak=%llu cleanings=%llu removed=%llu out=%llu\n",
                     w, static_cast<unsigned long long>(ws.tuples_in),
                     static_cast<unsigned long long>(ws.tuples_admitted),
                     static_cast<unsigned long long>(ws.late_tuples),
                     static_cast<unsigned long long>(ws.groups_created),
                     static_cast<unsigned long long>(ws.peak_groups),
                     static_cast<unsigned long long>(ws.cleaning_phases),
                     static_cast<unsigned long long>(ws.groups_removed),
                     static_cast<unsigned long long>(ws.groups_output));
      }
    }
    write_exports();
    if (args.serve_ms > 0 && server != nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(args.serve_ms));
    }
  }

  if (want_profile) profiler.Stop();
  return io_ok ? 0 : 1;
}
