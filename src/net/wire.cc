#include "net/wire.h"

#include <cstring>

#include "common/serde.h"

namespace streamop {

namespace {

inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}

inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{p[i]} << (8 * i);
  return v;
}

inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

void EncodeFrameHeader(const FrameHeader& h, uint8_t* out) {
  PutU32(out, kWireMagic);
  out[4] = static_cast<uint8_t>(h.type);
  out[5] = h.flags;
  PutU16(out + 6, h.count);
  PutU64(out + 8, h.seq);
  PutU32(out + 16, h.payload_len);
  PutU32(out + 20, h.crc);
}

bool DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out) {
  if (size < kFrameHeaderSize) return false;
  if (GetU32(data) != kWireMagic) return false;
  const uint8_t type = data[4];
  if (type < static_cast<uint8_t>(FrameType::kData) ||
      type > static_cast<uint8_t>(FrameType::kFin)) {
    return false;
  }
  out->type = static_cast<FrameType>(type);
  out->flags = data[5];
  out->count = GetU16(data + 6);
  out->seq = GetU64(data + 8);
  out->payload_len = GetU32(data + 16);
  out->crc = GetU32(data + 20);
  if (out->payload_len > kMaxFramePayload) return false;
  if (out->type == FrameType::kData) {
    if (out->count > kMaxRecordsPerFrame) return false;
    if (static_cast<size_t>(out->count) * kWireRecordSize !=
        out->payload_len) {
      return false;
    }
  } else if (out->payload_len != 0 || out->count != 0) {
    // Control frames carry no payload in protocol version 1.
    return false;
  }
  return true;
}

void EncodeWireRecord(const PacketRecord& p, uint8_t* out) {
  PutU64(out, p.ts_ns);
  PutU32(out + 8, p.src_ip);
  PutU32(out + 12, p.dst_ip);
  PutU16(out + 16, p.src_port);
  PutU16(out + 18, p.dst_port);
  PutU16(out + 20, p.len);
  out[22] = p.proto;
  out[23] = p.pad;
}

void DecodeWireRecord(const uint8_t* data, PacketRecord* out) {
  out->ts_ns = GetU64(data);
  out->src_ip = GetU32(data + 8);
  out->dst_ip = GetU32(data + 12);
  out->src_port = GetU16(data + 16);
  out->dst_port = GetU16(data + 18);
  out->len = GetU16(data + 20);
  out->proto = data[22];
  out->pad = data[23];
}

size_t BuildFrame(FrameType type, uint64_t seq, const PacketRecord* records,
                  size_t count, uint8_t* out) {
  FrameHeader h;
  h.type = type;
  h.seq = seq;
  h.count = static_cast<uint16_t>(count);
  h.payload_len = static_cast<uint32_t>(count * kWireRecordSize);
  uint8_t* payload = out + kFrameHeaderSize;
  for (size_t i = 0; i < count; ++i) {
    EncodeWireRecord(records[i], payload + i * kWireRecordSize);
  }
  h.crc = count > 0 ? Crc32c(payload, h.payload_len) : 0;
  EncodeFrameHeader(h, out);
  return kFrameHeaderSize + h.payload_len;
}

bool VerifyFramePayload(const FrameHeader& h, const uint8_t* payload) {
  if (h.payload_len == 0) return h.crc == 0;
  return Crc32c(payload, h.payload_len) == h.crc;
}

}  // namespace streamop
