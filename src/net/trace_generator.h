// TraceGenerator: builds in-memory packet traces from a rate model, a Zipf
// address popularity model, and an empirical packet-length mixture.

#ifndef STREAMOP_NET_TRACE_GENERATOR_H_
#define STREAMOP_NET_TRACE_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/packet.h"
#include "net/rate_model.h"

namespace streamop {

/// A generated (or loaded) trace: a flat arena of PacketRecords sorted by
/// timestamp, plus summary statistics used as ground truth in tests.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<PacketRecord> packets)
      : packets_(std::move(packets)) {}

  const std::vector<PacketRecord>& packets() const { return packets_; }
  std::vector<PacketRecord>& mutable_packets() { return packets_; }
  size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }
  const PacketRecord& at(size_t i) const { return packets_[i]; }

  uint64_t TotalBytes() const;
  double DurationSec() const;

  /// Ground-truth sum of `len` per fixed window (window w covers
  /// [w*window_sec, (w+1)*window_sec)). Used by accuracy experiments.
  std::vector<uint64_t> BytesPerWindow(uint64_t window_sec) const;

  /// Ground-truth packet count per fixed window.
  std::vector<uint64_t> PacketsPerWindow(uint64_t window_sec) const;

  /// Binary save/load (little-endian PacketRecord array with a small
  /// header); lets benchmarks reuse one generated trace across runs.
  Status SaveTo(const std::string& path) const;
  static Result<Trace> LoadFrom(const std::string& path);

 private:
  std::vector<PacketRecord> packets_;
};

/// Configuration for synthetic trace generation.
struct TraceGenConfig {
  double duration_sec = 60.0;
  uint64_t seed = 42;

  // Address model: ranks drawn from Zipf(s) over the address pools.
  uint64_t num_src_addrs = 2000;
  uint64_t num_dst_addrs = 4000;
  double zipf_s = 1.1;
  uint32_t src_base = 0x0a000000;  // 10.0.0.0
  uint32_t dst_base = 0xc0a80000;  // 192.168.0.0

  // Length model: classic trimodal internet mix (small ACKs, mid-size,
  // MTU-size) with uniform smear inside each mode.
  double p_small = 0.50;   // ~40-52 B
  double p_medium = 0.25;  // ~400-700 B
  // remainder: ~1400-1500 B

  // Port model.
  uint16_t num_server_ports = 16;

  // Rate model tick: how often the instantaneous rate is re-sampled.
  double rate_tick_sec = 1.0;
};

/// Generates traces; the rate model is supplied by the caller so the same
/// address/length configuration can be paired with any load shape.
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGenConfig config);

  /// Generates a full trace using the supplied rate model.
  Trace Generate(RateModel& rate_model);

  /// Convenience: the "research center" feed of the paper — 5k-15k pkt/s,
  /// highly variable (Markov-modulated bursts).
  static Trace MakeResearchFeed(double duration_sec, uint64_t seed);

  /// Convenience: the "data center tap" — steady ~100k pkt/s.
  static Trace MakeDataCenterFeed(double duration_sec, uint64_t seed);

 private:
  uint16_t SampleLength(Pcg64& rng) const;

  TraceGenConfig cfg_;
  ZipfDistribution src_zipf_;
  ZipfDistribution dst_zipf_;
};

}  // namespace streamop

#endif  // STREAMOP_NET_TRACE_GENERATOR_H_
