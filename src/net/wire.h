// The streamop ingest wire protocol (DESIGN.md §11): how PacketRecords
// travel between a remote producer (streamop_send, a capture tap) and the
// engine's socket sources.
//
// Everything on the wire is a *frame*: a fixed 24-byte little-endian header
// followed by an optional payload of `count` 24-byte PacketRecords. Over
// UDP one datagram carries exactly one frame; over TCP frames are
// length-delimited by the header's payload_len, so a reader can re-sync
// only at connection granularity (a corrupt header forces a reconnect —
// cheaper and safer than scanning for magic bytes inside a byte stream).
//
// Sequence numbers count *records*, not frames: a DATA frame carries the
// sequence number of its first record, so a receiver can detect gaps,
// duplicates and reordering at record granularity, and the resume
// handshake (HELLO/ACK) can name an exact record offset to restart from.
//
// The handshake: a consumer that wants to (re)start at record offset S
// sends HELLO{seq=S}; the producer answers ACK{seq=T} where T is the
// offset it will actually stream from (T >= S when its replay buffer no
// longer reaches back to S — the receiver books T-S records as a gap and
// carries on: at-most-once delivery, never silent loss). HEARTBEAT frames
// carry the producer's head sequence so an idle consumer can report
// offset lag; FIN announces a clean end of stream.

#ifndef STREAMOP_NET_WIRE_H_
#define STREAMOP_NET_WIRE_H_

#include <cstddef>
#include <cstdint>

#include "net/packet.h"

namespace streamop {

/// Frame discriminator (header byte 4).
enum class FrameType : uint8_t {
  kData = 1,       // payload: count PacketRecords; seq = first record's seq
  kHello = 2,      // consumer -> producer: resume from seq
  kAck = 3,        // producer -> consumer: streaming resumes at seq
  kHeartbeat = 4,  // producer liveness; seq = producer head (next seq)
  kFin = 5,        // clean end of stream; seq = final head
};

/// Decoded frame header. 24 bytes on the wire, little-endian:
///   u32 magic | u8 type | u8 flags | u16 count | u64 seq | u32 payload_len
///   | u32 crc  (CRC-32C of the payload bytes; 0 for empty payloads)
struct FrameHeader {
  FrameType type = FrameType::kData;
  uint8_t flags = 0;
  uint16_t count = 0;        // records in a DATA payload
  uint64_t seq = 0;          // meaning depends on type (see FrameType)
  uint32_t payload_len = 0;  // bytes after the header
  uint32_t crc = 0;          // CRC-32C over the payload
};

constexpr uint32_t kWireMagic = 0x31504F53;  // "SOP1"
constexpr size_t kFrameHeaderSize = 24;
constexpr size_t kWireRecordSize = 24;  // serialized PacketRecord

/// Records per DATA frame such that a UDP frame stays under a typical
/// 1500-byte MTU (24 + 61*24 = 1488). TCP senders may use larger frames;
/// kMaxRecordsPerFrame bounds what any receiver must accept.
constexpr size_t kUdpRecordsPerFrame = 61;
constexpr size_t kMaxRecordsPerFrame = 2048;
constexpr size_t kMaxFramePayload = kMaxRecordsPerFrame * kWireRecordSize;

/// Serializes `h` into `out` (at least kFrameHeaderSize bytes).
void EncodeFrameHeader(const FrameHeader& h, uint8_t* out);

/// Decodes a frame header. Returns false on bad magic, unknown type, an
/// oversized payload_len, or a DATA count inconsistent with payload_len —
/// the caller quarantines the frame (UDP) or resets the connection (TCP).
bool DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out);

/// Serializes one PacketRecord as 24 little-endian bytes (field-by-field,
/// not a struct copy — the wire format is stable across ABIs).
void EncodeWireRecord(const PacketRecord& p, uint8_t* out);

/// Decodes 24 wire bytes into a PacketRecord.
void DecodeWireRecord(const uint8_t* data, PacketRecord* out);

/// Builds a complete frame (header + payload) into `out`, which must hold
/// kFrameHeaderSize + count * kWireRecordSize bytes. `records` may be
/// nullptr when count is 0. Returns the frame's total size.
size_t BuildFrame(FrameType type, uint64_t seq, const PacketRecord* records,
                  size_t count, uint8_t* out);

/// Verifies a frame payload against its header CRC.
bool VerifyFramePayload(const FrameHeader& h, const uint8_t* payload);

}  // namespace streamop

#endif  // STREAMOP_NET_WIRE_H_
