#include "net/trace_generator.h"

#include <cstdio>
#include <cstring>

namespace streamop {

namespace {

// Magic + version header for the binary trace format.
constexpr char kTraceMagic[8] = {'S', 'O', 'P', 'T', 'R', 'C', '0', '1'};

}  // namespace

uint64_t Trace::TotalBytes() const {
  uint64_t total = 0;
  for (const PacketRecord& p : packets_) total += p.len;
  return total;
}

double Trace::DurationSec() const {
  if (packets_.empty()) return 0.0;
  return static_cast<double>(packets_.back().ts_ns) * 1e-9;
}

std::vector<uint64_t> Trace::BytesPerWindow(uint64_t window_sec) const {
  std::vector<uint64_t> out;
  for (const PacketRecord& p : packets_) {
    uint64_t w = p.ts_sec() / window_sec;
    if (w >= out.size()) out.resize(w + 1, 0);
    out[w] += p.len;
  }
  return out;
}

std::vector<uint64_t> Trace::PacketsPerWindow(uint64_t window_sec) const {
  std::vector<uint64_t> out;
  for (const PacketRecord& p : packets_) {
    uint64_t w = p.ts_sec() / window_sec;
    if (w >= out.size()) out.resize(w + 1, 0);
    out[w] += 1;
  }
  return out;
}

Status Trace::SaveTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  uint64_t n = packets_.size();
  bool ok = std::fwrite(kTraceMagic, sizeof(kTraceMagic), 1, f) == 1 &&
            std::fwrite(&n, sizeof(n), 1, f) == 1 &&
            (n == 0 || std::fwrite(packets_.data(), sizeof(PacketRecord), n,
                                   f) == n);
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<Trace> Trace::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  uint64_t n = 0;
  if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
      std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0 ||
      std::fread(&n, sizeof(n), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("bad trace header: " + path);
  }
  std::vector<PacketRecord> packets(n);
  if (n > 0 && std::fread(packets.data(), sizeof(PacketRecord), n, f) != n) {
    std::fclose(f);
    return Status::IOError("truncated trace body: " + path);
  }
  std::fclose(f);
  return Trace(std::move(packets));
}

TraceGenerator::TraceGenerator(TraceGenConfig config)
    : cfg_(config),
      src_zipf_(config.num_src_addrs, config.zipf_s),
      dst_zipf_(config.num_dst_addrs, config.zipf_s) {}

uint16_t TraceGenerator::SampleLength(Pcg64& rng) const {
  double u = rng.NextDouble();
  if (u < cfg_.p_small) {
    return static_cast<uint16_t>(40 + rng.NextBounded(13));  // 40..52
  }
  if (u < cfg_.p_small + cfg_.p_medium) {
    return static_cast<uint16_t>(400 + rng.NextBounded(301));  // 400..700
  }
  return static_cast<uint16_t>(1400 + rng.NextBounded(101));  // 1400..1500
}

Trace TraceGenerator::Generate(RateModel& rate_model) {
  Pcg64 rng(cfg_.seed);
  std::vector<PacketRecord> packets;

  const uint64_t duration_ns =
      static_cast<uint64_t>(cfg_.duration_sec * 1e9);
  const uint64_t tick_ns = static_cast<uint64_t>(cfg_.rate_tick_sec * 1e9);

  uint64_t now_ns = 0;
  uint64_t tick_end_ns = 0;
  double rate = 1.0;

  // Rough reservation: average of first rate draw times duration.
  packets.reserve(static_cast<size_t>(
      rate_model.RateAt(0.0, rng) * cfg_.duration_sec * 1.1) + 16);

  while (now_ns < duration_ns) {
    if (now_ns >= tick_end_ns) {
      rate = rate_model.RateAt(static_cast<double>(now_ns) * 1e-9, rng);
      if (rate < 1.0) rate = 1.0;
      tick_end_ns += tick_ns;
      continue;
    }
    // Poisson arrivals at the current rate.
    double gap_sec = rng.NextExponential(rate);
    uint64_t gap_ns = static_cast<uint64_t>(gap_sec * 1e9) + 1;
    now_ns += gap_ns;
    if (now_ns >= duration_ns) break;
    if (now_ns >= tick_end_ns) continue;  // re-draw the rate first

    PacketRecord p;
    p.ts_ns = now_ns;
    p.src_ip = cfg_.src_base + static_cast<uint32_t>(src_zipf_.Sample(rng));
    p.dst_ip = cfg_.dst_base + static_cast<uint32_t>(dst_zipf_.Sample(rng));
    bool to_server = rng.NextBernoulli(0.5);
    uint16_t server_port = static_cast<uint16_t>(
        80 + rng.NextBounded(cfg_.num_server_ports));
    uint16_t client_port =
        static_cast<uint16_t>(1024 + rng.NextBounded(64000));
    p.src_port = to_server ? client_port : server_port;
    p.dst_port = to_server ? server_port : client_port;
    p.proto = rng.NextBernoulli(0.85) ? kProtoTcp : kProtoUdp;
    p.len = SampleLength(rng);
    packets.push_back(p);
  }
  return Trace(std::move(packets));
}

Trace TraceGenerator::MakeResearchFeed(double duration_sec, uint64_t seed) {
  TraceGenConfig cfg;
  cfg.duration_sec = duration_sec;
  cfg.seed = seed;
  TraceGenerator gen(cfg);
  // "5,000 to 15,000 packets per second, with a rate that is highly
  // variable": the high state covers the paper's band; the low state drops
  // well below it so that consecutive 20 s windows can differ by an order
  // of magnitude — the condition that exposes the non-relaxed threshold
  // carry-over failure of Fig. 2.
  MarkovBurstRateModel::Params p;
  p.high_rate_pps = 15000.0;
  p.low_rate_pps = 700.0;
  p.mean_high_holding_sec = 25.0;
  p.mean_low_holding_sec = 20.0;
  p.within_state_spread = 0.35;
  MarkovBurstRateModel rate(p);
  return gen.Generate(rate);
}

Trace TraceGenerator::MakeDataCenterFeed(double duration_sec, uint64_t seed) {
  TraceGenConfig cfg;
  cfg.duration_sec = duration_sec;
  cfg.seed = seed;
  cfg.num_src_addrs = 20000;
  cfg.num_dst_addrs = 20000;
  TraceGenerator gen(cfg);
  ConstantRateModel rate(100000.0, 0.02);
  return gen.Generate(rate);
}

}  // namespace streamop
