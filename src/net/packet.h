// PacketRecord: the fixed-width wire record produced by the synthetic
// traffic generators and replayed through the ring buffer. It stands in for
// the packet headers Gigascope sniffs off a NIC.

#ifndef STREAMOP_NET_PACKET_H_
#define STREAMOP_NET_PACKET_H_

#include <cstdint>
#include <string>

namespace streamop {

/// IP protocol numbers used by the generators.
enum IpProto : uint8_t {
  kProtoTcp = 6,
  kProtoUdp = 17,
  kProtoIcmp = 1,
};

/// One captured packet header. 24 bytes, trivially copyable; traces are
/// flat arrays of these, replayed without per-packet allocation.
struct PacketRecord {
  uint64_t ts_ns;     // nanoseconds since trace start
  uint32_t src_ip;
  uint32_t dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  uint16_t len;       // IP length in bytes (header + payload)
  uint8_t proto;
  uint8_t pad = 0;

  /// Timestamp in whole seconds (the `time` attribute of the PKT schema).
  uint64_t ts_sec() const { return ts_ns / 1000000000ULL; }

  std::string ToString() const;
};

static_assert(sizeof(PacketRecord) == 24, "PacketRecord layout drift");

/// 5-tuple flow key for flow-level aggregation.
struct FlowKey {
  uint32_t src_ip;
  uint32_t dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  uint8_t proto;

  bool operator==(const FlowKey& o) const {
    return src_ip == o.src_ip && dst_ip == o.dst_ip && src_port == o.src_port &&
           dst_port == o.dst_port && proto == o.proto;
  }

  uint64_t Hash() const;
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

inline FlowKey FlowKeyOf(const PacketRecord& p) {
  return FlowKey{p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto};
}

}  // namespace streamop

#endif  // STREAMOP_NET_PACKET_H_
