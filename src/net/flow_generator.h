// Flow-structured trace generation: packets grouped into flows with
// heavy-tailed sizes, plus an optional DDoS phase that floods the link with
// single-packet flows — the condition §8 of the paper describes, where a
// naive flow-aggregation query "requires an enormous number of groups,
// exhausts the available memory, and fails" while the flow-integrated
// sampling query keeps its group table bounded.

#ifndef STREAMOP_NET_FLOW_GENERATOR_H_
#define STREAMOP_NET_FLOW_GENERATOR_H_

#include <cstdint>

#include "net/trace_generator.h"

namespace streamop {

struct FlowTraceConfig {
  double duration_sec = 60.0;
  uint64_t seed = 42;

  // Legitimate traffic: flows arrive as a Poisson process; each flow's
  // packet count is Pareto (heavy-tailed: most flows are mice, a few are
  // elephants) and its packets are spaced exponentially.
  double flow_arrival_per_sec = 150.0;
  double pareto_alpha = 1.3;        // packet-count tail exponent
  double min_packets_per_flow = 2;  // Pareto location
  double max_packets_per_flow = 20000;
  double mean_packet_gap_sec = 0.02;

  // Address / port model for legitimate flows.
  uint64_t num_src_addrs = 500;
  uint64_t num_dst_addrs = 500;
  double zipf_s = 1.1;
  uint32_t src_base = 0x0a000000;  // 10.0.0.0
  uint32_t dst_base = 0xc0a80000;  // 192.168.0.0

  // Attack phase: single-packet flows with random spoofed sources and
  // random ports, at `attack_flows_per_sec`, active during
  // [attack_start_sec, attack_start_sec + attack_duration_sec).
  bool attack_enabled = false;
  double attack_start_sec = 20.0;
  double attack_duration_sec = 20.0;
  double attack_flows_per_sec = 20000.0;
  uint32_t attack_src_base = 0x2d000000;  // 45.0.0.0/8 spoof range
  uint32_t attack_dst = 0xc0a80001;       // the victim
};

/// Generates a time-sorted flow-structured trace.
Trace GenerateFlowTrace(const FlowTraceConfig& config);

/// Ground truth for flow experiments: number of distinct 5-tuple flows and
/// total bytes per fixed window.
struct FlowWindowTruth {
  std::vector<uint64_t> flows_per_window;
  std::vector<uint64_t> bytes_per_window;
};
FlowWindowTruth ComputeFlowTruth(const Trace& trace, uint64_t window_sec);

}  // namespace streamop

#endif  // STREAMOP_NET_FLOW_GENERATOR_H_
