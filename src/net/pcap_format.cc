#include "net/pcap_format.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace streamop {

namespace {

inline uint16_t Bswap16(uint16_t v) {
  return static_cast<uint16_t>((v >> 8) | (v << 8));
}

inline uint32_t Bswap32(uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}

// pcap headers are written in the capturing host's byte order; this
// codebase targets little-endian hosts (asserted by the serde layer), so
// "native" below means LE and `swapped` means the file is big-endian.
inline uint32_t ReadU32(const uint8_t* p, bool swapped) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return swapped ? Bswap32(v) : v;
}

inline uint16_t ReadU16(const uint8_t* p, bool swapped) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return swapped ? Bswap16(v) : v;
}

inline void WriteU32(std::string* out, uint32_t v, bool swapped) {
  if (swapped) v = Bswap32(v);
  out->append(reinterpret_cast<const char*>(&v), 4);
}

inline void WriteU16(std::string* out, uint16_t v, bool swapped) {
  if (swapped) v = Bswap16(v);
  out->append(reinterpret_cast<const char*>(&v), 2);
}

// Big-endian (network order) readers for the packet bytes themselves.
inline uint16_t ReadBe16(const uint8_t* p) {
  return static_cast<uint16_t>((uint16_t{p[0]} << 8) | p[1]);
}

inline uint32_t ReadBe32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | p[3];
}

inline void AppendBe16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v));
}

inline void AppendBe32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v >> 24));
  out->push_back(static_cast<char>(v >> 16));
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v));
}

}  // namespace

bool DecodePcapGlobalHeader(const uint8_t* data, PcapGlobalHeader* out) {
  uint32_t magic;
  std::memcpy(&magic, data, 4);
  switch (magic) {
    case kPcapMagicMicros:
      out->swapped = false;
      out->nanosecond = false;
      break;
    case kPcapMagicNanos:
      out->swapped = false;
      out->nanosecond = true;
      break;
    case 0xd4c3b2a1u:  // swapped microsecond magic
      out->swapped = true;
      out->nanosecond = false;
      break;
    case 0x4d3cb2a1u:  // swapped nanosecond magic
      out->swapped = true;
      out->nanosecond = true;
      break;
    default:
      return false;
  }
  out->magic = magic;
  out->version_major = ReadU16(data + 4, out->swapped);
  out->version_minor = ReadU16(data + 6, out->swapped);
  // Bytes 8..15: thiszone + sigfigs, always zero in practice; ignored.
  out->snaplen = ReadU32(data + 16, out->swapped);
  out->linktype = ReadU32(data + 20, out->swapped);
  return true;
}

void DecodePcapRecordHeader(const uint8_t* data, const PcapGlobalHeader& g,
                            PcapRecordHeader* out) {
  out->ts_sec = ReadU32(data, g.swapped);
  out->ts_frac = ReadU32(data + 4, g.swapped);
  out->incl_len = ReadU32(data + 8, g.swapped);
  out->orig_len = ReadU32(data + 12, g.swapped);
}

bool ExtractPacketFromCapture(const uint8_t* data, size_t caplen,
                              uint32_t linktype, uint64_t ts_ns,
                              PacketRecord* out) {
  size_t ip_off = 0;
  if (linktype == kLinkTypeEthernet) {
    if (caplen < 14) return false;
    uint16_t ethertype = ReadBe16(data + 12);
    ip_off = 14;
    if (ethertype == 0x8100) {  // one 802.1Q VLAN tag
      if (caplen < 18) return false;
      ethertype = ReadBe16(data + 16);
      ip_off = 18;
    }
    if (ethertype != 0x0800) return false;  // not IPv4
  } else if (linktype != kLinkTypeRawIp && linktype != kLinkTypeIpv4) {
    return false;
  }

  if (caplen < ip_off + 20) return false;  // IPv4 header not captured
  const uint8_t* ip = data + ip_off;
  if ((ip[0] >> 4) != 4) return false;  // not IPv4
  const size_t ihl = static_cast<size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20) return false;

  out->ts_ns = ts_ns;
  out->len = ReadBe16(ip + 2);  // IPv4 total length == the PKT len attribute
  out->proto = ip[9];
  out->src_ip = ReadBe32(ip + 12);
  out->dst_ip = ReadBe32(ip + 16);
  out->src_port = 0;
  out->dst_port = 0;
  out->pad = 0;
  if ((out->proto == kProtoTcp || out->proto == kProtoUdp) &&
      caplen >= ip_off + ihl + 4) {
    out->src_port = ReadBe16(ip + ihl);
    out->dst_port = ReadBe16(ip + ihl + 2);
  }
  return true;
}

Status WritePcap(const Trace& trace, const std::string& path,
                 const WritePcapOptions& options) {
  const bool sw = options.swap_byte_order;
  std::string out;
  out.reserve(kPcapGlobalHeaderSize +
              trace.size() * (kPcapRecordHeaderSize + 24));

  WriteU32(&out, options.nanosecond ? kPcapMagicNanos : kPcapMagicMicros, sw);
  WriteU16(&out, 2, sw);   // version major
  WriteU16(&out, 4, sw);   // version minor
  WriteU32(&out, 0, sw);   // thiszone
  WriteU32(&out, 0, sw);   // sigfigs
  WriteU32(&out, 65535, sw);
  WriteU32(&out, options.ethernet ? kLinkTypeEthernet : kLinkTypeRawIp, sw);

  int64_t written = 0;
  for (const PacketRecord& p : trace.packets()) {
    if (options.truncate_after_records >= 0 &&
        written >= options.truncate_after_records) {
      if (options.truncate_mid_record > 0) {
        // One more record, cut off mid-write: a torn capture tail the
        // reader must treat as end-of-file, not garbage input.
        std::string rec;
        WriteU32(&rec, static_cast<uint32_t>(p.ts_ns / 1000000000ull), sw);
        WriteU32(&rec, 0, sw);
        WriteU32(&rec, 24, sw);
        WriteU32(&rec, 24, sw);
        rec.append(24, '\0');
        out.append(rec.data(),
                   std::min(options.truncate_mid_record, rec.size()));
      }
      break;
    }
    ++written;

    // Capture bytes: a minimal IPv4 header plus, for TCP/UDP, the first 4
    // L4 bytes (the ports) — everything ExtractPacketFromCapture needs to
    // reconstruct the PacketRecord exactly.
    std::string pkt;
    if (options.ethernet) {
      pkt.append(12, '\0');        // zero MACs
      AppendBe16(&pkt, 0x0800);    // IPv4 ethertype
    }
    pkt.push_back(0x45);  // version 4, ihl 5
    pkt.push_back(0);     // tos
    AppendBe16(&pkt, p.len);
    AppendBe16(&pkt, 0);  // id
    AppendBe16(&pkt, 0);  // flags/fragment
    pkt.push_back(64);    // ttl
    pkt.push_back(static_cast<char>(p.proto));
    AppendBe16(&pkt, 0);  // checksum (not validated by the reader)
    AppendBe32(&pkt, p.src_ip);
    AppendBe32(&pkt, p.dst_ip);
    if (p.proto == kProtoTcp || p.proto == kProtoUdp) {
      AppendBe16(&pkt, p.src_port);
      AppendBe16(&pkt, p.dst_port);
    }

    const uint64_t sec = p.ts_ns / 1000000000ull;
    const uint64_t ns = p.ts_ns % 1000000000ull;
    WriteU32(&out, static_cast<uint32_t>(sec), sw);
    WriteU32(&out,
             static_cast<uint32_t>(options.nanosecond ? ns : ns / 1000), sw);
    WriteU32(&out, static_cast<uint32_t>(pkt.size()), sw);
    // orig_len claims the packet's on-the-wire size; len below 20 (fault-
    // injected truncation) is preserved so malformed packets stay
    // malformed through a pcap round trip.
    WriteU32(&out, p.len, sw);
    out.append(pkt);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t n = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = n == out.size() && std::fclose(f) == 0;
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace streamop
