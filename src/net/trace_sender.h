// TraceSender: the producer half of the ingest wire protocol (net/wire.h).
// Streams a Trace's PacketRecords to a consumer over UDP datagrams or a
// length-framed TCP connection, honoring the HELLO/ACK resume handshake so
// a consumer that restarts mid-stream can continue from its checkpointed
// record offset.
//
// One implementation serves three masters: the examples/streamop_send
// replay tool, the net_source tests (run in a background thread against a
// SocketSource in the same process), and the ingest benches. The fault
// knobs below exist for the latter two — a real replay tool leaves them 0.
//
// UDP session: the sender heartbeats toward the consumer's port until a
// HELLO{S} datagram comes back, answers ACK{T} (T = S clamped to the
// replay window), then streams DATA frames from record T, re-handshaking
// whenever another HELLO arrives (a restarted consumer). TCP session: the
// sender listens; each accepted connection must open with HELLO, gets its
// ACK, then receives DATA until the trace ends (FIN) or a fault kills the
// connection — the consumer reconnects and HELLOs again at its offset.

#ifndef STREAMOP_NET_TRACE_SENDER_H_
#define STREAMOP_NET_TRACE_SENDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/packet.h"
#include "net/wire.h"

namespace streamop {

struct TraceSenderConfig {
  /// Records to stream, in order; sequence number == index.
  std::vector<PacketRecord> records;
  /// Records per DATA frame. UDP senders should stay <= kUdpRecordsPerFrame
  /// (one frame per datagram, under the MTU); TCP may batch larger.
  size_t records_per_frame = kUdpRecordsPerFrame;
  /// Throttle, 0 = unthrottled. Crash tests throttle so the producer is
  /// still mid-trace when the consumer is killed and restarted.
  double records_per_sec = 0.0;
  /// Heartbeat cadence while waiting for a HELLO (UDP only).
  int heartbeat_interval_ms = 50;
  /// How long to wait for the first handshake before giving up.
  int handshake_timeout_ms = 10000;
  /// After the trace is fully sent (FIN), keep serving resume handshakes
  /// for this long — a consumer that restarts right at the end can still
  /// re-fetch its tail. 0 = exit immediately after FIN.
  int linger_ms = 0;
  /// How many records back from the furthest-sent position a resume may
  /// reach. 0 = unlimited (the whole trace is replayable). A small window
  /// forces ACK-beyond-HELLO responses, exercising the consumer's
  /// at-most-once gap accounting.
  uint64_t replay_window = 0;

  // ---- fault knobs (tests and benches only) ----
  /// Skip sending every Nth DATA frame while still advancing the sequence:
  /// the consumer sees a clean sequence gap. 0 = off.
  uint64_t drop_every_nth_frame = 0;
  /// Flip a payload byte in every Nth DATA frame: the consumer's CRC check
  /// quarantines it (and the skipped records surface as a gap). 0 = off.
  uint64_t corrupt_every_nth_frame = 0;
  /// TCP: close the connection after this many DATA frames on it, forcing
  /// the consumer through reconnect + resume. 0 = off.
  uint64_t kill_connection_after_frames = 0;
  /// TCP, with kill_connection_after_frames: send only the first half of
  /// the final frame before closing — a torn frame the consumer must
  /// discard, not parse.
  bool kill_mid_frame = false;
  /// Send the FIN frame when the trace completes (off = just stop, as a
  /// crashing producer would).
  bool send_fin = true;
};

/// Counters, readable while the sender runs on another thread.
struct TraceSenderStats {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> records_sent{0};
  std::atomic<uint64_t> handshakes{0};
  std::atomic<uint64_t> connections{0};  // TCP accepts
  std::atomic<uint64_t> kills{0};        // fault-injected closes
};

class TraceSender {
 public:
  explicit TraceSender(TraceSenderConfig config);
  ~TraceSender();

  TraceSender(const TraceSender&) = delete;
  TraceSender& operator=(const TraceSender&) = delete;

  /// Streams over UDP to host:port (numeric IPv4 or "localhost").
  /// Blocks until the trace is delivered (plus linger) or RequestStop().
  Status RunUdp(const std::string& host, uint16_t port);

  /// Binds + listens on `port` (0 = ephemeral; see tcp_port()). Split from
  /// ServeTcp() so tests can learn the port before starting the consumer.
  Status BindTcp(uint16_t port);
  uint16_t tcp_port() const { return tcp_port_; }

  /// Accept/handshake/stream loop. Blocks until the trace is delivered
  /// (plus linger) or RequestStop(). Requires BindTcp() first.
  Status ServeTcp();

  /// Convenience: BindTcp + ServeTcp.
  Status RunTcp(uint16_t port);

  /// Ask a running RunUdp/ServeTcp to return promptly (thread-safe).
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  const TraceSenderStats& stats() const { return stats_; }

 private:
  uint64_t ClampResume(uint64_t requested) const;
  bool ShouldDrop(uint64_t frame_index) const;
  size_t BuildDataFrame(uint64_t pos, uint64_t frame_index, uint8_t* out,
                        size_t* n_records) const;
  void RateLimitPause(size_t records_in_frame);
  void ServeConnection(int fd, bool* delivered);

  TraceSenderConfig config_;
  TraceSenderStats stats_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t tcp_port_ = 0;
  // Furthest record position ever streamed; the replay-window floor is
  // measured back from here.
  uint64_t high_water_ = 0;
  // Lifetime DATA-frame count, across connections: the drop/corrupt fault
  // moduli tick over it.
  uint64_t frame_counter_ = 0;
};

}  // namespace streamop

#endif  // STREAMOP_NET_TRACE_SENDER_H_
