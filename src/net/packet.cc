#include "net/packet.h"

#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"

namespace streamop {

std::string PacketRecord::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%llu.%09llu %s:%u > %s:%u proto=%u len=%u",
                static_cast<unsigned long long>(ts_ns / 1000000000ULL),
                static_cast<unsigned long long>(ts_ns % 1000000000ULL),
                FormatIpv4(src_ip).c_str(), src_port, FormatIpv4(dst_ip).c_str(),
                dst_port, proto, len);
  return buf;
}

uint64_t FlowKey::Hash() const {
  uint64_t h = Mix64((static_cast<uint64_t>(src_ip) << 32) | dst_ip);
  h = HashCombine(h, (static_cast<uint64_t>(src_port) << 32) |
                         (static_cast<uint64_t>(dst_port) << 16) | proto);
  return h;
}

}  // namespace streamop
