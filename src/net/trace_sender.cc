#include "net/trace_sender.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

namespace streamop {

namespace {

int64_t NowMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Status ResolveIpv4(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  const std::string addr = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, addr.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return Status::OK();
}

/// Blocking send of a whole buffer over a nonblocking TCP fd. Returns
/// false when the peer is gone (EPIPE/ECONNRESET) or `stop` flips.
bool SendAll(int fd, const uint8_t* data, size_t len,
             const std::atomic<bool>& stop) {
  size_t off = 0;
  while (off < len) {
    if (stop.load(std::memory_order_relaxed)) return false;
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer closed or hard error
  }
  return true;
}

/// Reads exactly `len` bytes within `timeout_ms`. Returns false on EOF,
/// timeout, or error.
bool RecvExact(int fd, uint8_t* data, size_t len, int timeout_ms,
               const std::atomic<bool>& stop) {
  size_t off = 0;
  const int64_t deadline = NowMs() + timeout_ms;
  while (off < len) {
    if (stop.load(std::memory_order_relaxed)) return false;
    const int64_t left = deadline - NowMs();
    if (left <= 0) return false;
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, static_cast<int>(std::min<int64_t>(left, 100)));
    if (r <= 0) continue;
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n == 0) {
      return false;  // peer closed
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return false;
    }
  }
  return true;
}

}  // namespace

TraceSender::TraceSender(TraceSenderConfig config)
    : config_(std::move(config)) {
  if (config_.records_per_frame == 0) config_.records_per_frame = 1;
  config_.records_per_frame =
      std::min(config_.records_per_frame, kMaxRecordsPerFrame);
}

TraceSender::~TraceSender() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

uint64_t TraceSender::ClampResume(uint64_t requested) const {
  const uint64_t total = config_.records.size();
  uint64_t floor = 0;
  if (config_.replay_window > 0 && high_water_ > config_.replay_window) {
    floor = high_water_ - config_.replay_window;
  }
  return std::min(std::max(requested, floor), total);
}

bool TraceSender::ShouldDrop(uint64_t frame_index) const {
  return config_.drop_every_nth_frame > 0 &&
         (frame_index + 1) % config_.drop_every_nth_frame == 0;
}

size_t TraceSender::BuildDataFrame(uint64_t pos, uint64_t frame_index,
                                   uint8_t* out, size_t* n_records) const {
  const uint64_t total = config_.records.size();
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(config_.records_per_frame, total - pos));
  const size_t len =
      BuildFrame(FrameType::kData, pos, config_.records.data() + pos, n, out);
  if (config_.corrupt_every_nth_frame > 0 && n > 0 &&
      (frame_index + 1) % config_.corrupt_every_nth_frame == 0) {
    out[kFrameHeaderSize] ^= 0xff;  // payload no longer matches the CRC
  }
  *n_records = n;
  return len;
}

void TraceSender::RateLimitPause(size_t records_in_frame) {
  if (config_.records_per_sec <= 0 || records_in_frame == 0) return;
  const double sec =
      static_cast<double>(records_in_frame) / config_.records_per_sec;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(sec);
  ts.tv_nsec = static_cast<long>((sec - static_cast<double>(ts.tv_sec)) * 1e9);
  nanosleep(&ts, nullptr);
}

Status TraceSender::RunUdp(const std::string& host, uint16_t port) {
  sockaddr_in dst;
  Status st = ResolveIpv4(host, port, &dst);
  if (!st.ok()) return st;

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return Status::IOError("udp socket: " + std::string(strerror(errno)));
  SetNonBlocking(fd);

  const uint64_t total = config_.records.size();
  std::vector<uint8_t> frame(kFrameHeaderSize +
                             config_.records_per_frame * kWireRecordSize);
  uint8_t ctrl[kFrameHeaderSize];
  uint64_t pos = 0;
  bool streaming = false;
  bool fin_sent = false;
  int64_t handshake_deadline = NowMs() + config_.handshake_timeout_ms;
  int64_t linger_deadline = -1;

  auto send_control = [&](FrameType type, uint64_t seq) {
    const size_t len = BuildFrame(type, seq, nullptr, 0, ctrl);
    (void)::sendto(fd, ctrl, len, 0, reinterpret_cast<sockaddr*>(&dst),
                   sizeof(dst));
  };

  // Drains incoming datagrams; a HELLO re-arms streaming from the
  // requested (clamped) offset.
  auto poll_hello = [&](int timeout_ms) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, timeout_ms) <= 0 || !(p.revents & POLLIN)) return;
    uint8_t in[kFrameHeaderSize + 64];
    for (;;) {
      const ssize_t n = ::recvfrom(fd, in, sizeof(in), MSG_DONTWAIT, nullptr,
                                   nullptr);
      if (n <= 0) break;
      FrameHeader h;
      if (DecodeFrameHeader(in, static_cast<size_t>(n), &h) &&
          h.type == FrameType::kHello) {
        pos = ClampResume(h.seq);
        send_control(FrameType::kAck, pos);
        streaming = true;
        fin_sent = false;
        linger_deadline = -1;
        stats_.handshakes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    if (!streaming) {
      send_control(FrameType::kHeartbeat, high_water_);
      poll_hello(config_.heartbeat_interval_ms);
      if (!streaming && stats_.handshakes.load(std::memory_order_relaxed) == 0 &&
          NowMs() > handshake_deadline) {
        ::close(fd);
        return Status::IOError("udp handshake timeout: no HELLO from consumer");
      }
    } else if (pos < total) {
      poll_hello(0);
      if (stop_.load(std::memory_order_relaxed)) break;
      size_t n = 0;
      const size_t len = BuildDataFrame(pos, frame_counter_, frame.data(), &n);
      if (!ShouldDrop(frame_counter_)) {
        (void)::sendto(fd, frame.data(), len, 0,
                       reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
        stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
        stats_.records_sent.fetch_add(n, std::memory_order_relaxed);
      }
      ++frame_counter_;
      pos += n;
      high_water_ = std::max(high_water_, pos);
      RateLimitPause(n);
    } else {
      if (!fin_sent && config_.send_fin) {
        send_control(FrameType::kFin, total);
        fin_sent = true;
      }
      if (linger_deadline < 0) linger_deadline = NowMs() + config_.linger_ms;
      const int64_t left = linger_deadline - NowMs();
      if (left <= 0) break;
      poll_hello(static_cast<int>(std::min<int64_t>(left, 50)));
    }
  }
  ::close(fd);
  return Status::OK();
}

Status TraceSender::BindTcp(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("tcp socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::IOError("tcp bind: " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  tcp_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 4) != 0) {
    const Status st =
        Status::IOError("tcp listen: " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  SetNonBlocking(listen_fd_);
  return Status::OK();
}

Status TraceSender::RunTcp(uint16_t port) {
  Status st = BindTcp(port);
  if (!st.ok()) return st;
  return ServeTcp();
}

void TraceSender::ServeConnection(int fd, bool* delivered) {
  // A connection opens with the consumer's HELLO naming its resume offset.
  uint8_t hdr[kFrameHeaderSize];
  if (!RecvExact(fd, hdr, kFrameHeaderSize, config_.handshake_timeout_ms,
                 stop_)) {
    return;
  }
  FrameHeader h;
  if (!DecodeFrameHeader(hdr, kFrameHeaderSize, &h) ||
      h.type != FrameType::kHello) {
    return;
  }
  uint64_t pos = ClampResume(h.seq);
  stats_.handshakes.fetch_add(1, std::memory_order_relaxed);
  uint8_t ctrl[kFrameHeaderSize];
  size_t clen = BuildFrame(FrameType::kAck, pos, nullptr, 0, ctrl);
  if (!SendAll(fd, ctrl, clen, stop_)) return;

  const uint64_t total = config_.records.size();
  std::vector<uint8_t> frame(kFrameHeaderSize +
                             config_.records_per_frame * kWireRecordSize);
  uint64_t frames_on_conn = 0;
  while (pos < total && !stop_.load(std::memory_order_relaxed)) {
    size_t n = 0;
    const size_t len = BuildDataFrame(pos, frame_counter_, frame.data(), &n);
    const bool drop = ShouldDrop(frame_counter_);
    ++frame_counter_;
    ++frames_on_conn;
    const bool kill_now = config_.kill_connection_after_frames > 0 &&
                          frames_on_conn >= config_.kill_connection_after_frames;
    if (!drop) {
      size_t send_len = len;
      if (kill_now && config_.kill_mid_frame) send_len = len / 2;
      if (!SendAll(fd, frame.data(), send_len, stop_)) return;
      stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
      stats_.records_sent.fetch_add(n, std::memory_order_relaxed);
    }
    pos += n;
    high_water_ = std::max(high_water_, pos);
    if (kill_now) {
      // Close abruptly; the consumer reconnects and resumes via HELLO.
      stats_.kills.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    RateLimitPause(n);
  }
  if (pos >= total) {
    if (config_.send_fin) {
      clen = BuildFrame(FrameType::kFin, total, nullptr, 0, ctrl);
      SendAll(fd, ctrl, clen, stop_);
    }
    *delivered = true;
  }
}

Status TraceSender::ServeTcp() {
  if (listen_fd_ < 0) {
    return Status::InvalidArgument("ServeTcp called before BindTcp");
  }
  bool delivered = false;
  int64_t linger_deadline = -1;
  const int64_t handshake_deadline = NowMs() + config_.handshake_timeout_ms;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (delivered) {
      if (linger_deadline < 0) linger_deadline = NowMs() + config_.linger_ms;
      if (NowMs() >= linger_deadline) break;
    } else if (stats_.connections.load(std::memory_order_relaxed) == 0 &&
               NowMs() > handshake_deadline) {
      return Status::IOError("tcp handshake timeout: no consumer connected");
    }
    pollfd p{listen_fd_, POLLIN, 0};
    if (::poll(&p, 1, 50) <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    SetNonBlocking(conn);
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(conn, &delivered);
    ::close(conn);
  }
  return Status::OK();
}

}  // namespace streamop
