// Rate models: instantaneous packet-arrival rates for the synthetic feeds.
//
// The paper evaluates on two live taps:
//   * a research-center link, 5k-15k pkt/s and "highly variable";
//   * a data-center tap, ~100k pkt/s with "much lower variability".
// We reproduce the first with a Markov-modulated (ON/OFF) Poisson process
// whose sharp load drops trigger exactly the non-relaxed under-sampling
// failure of Fig. 2, and the second with a near-constant rate.

#ifndef STREAMOP_NET_RATE_MODEL_H_
#define STREAMOP_NET_RATE_MODEL_H_

#include <memory>

#include "common/random.h"

namespace streamop {

/// Produces the target arrival rate (packets/second) as a function of time.
/// Stateful models advance in Tick(); rates are piecewise-constant over the
/// caller's tick interval.
class RateModel {
 public:
  virtual ~RateModel() = default;

  /// Rate (pkt/s) to use starting at time t_sec, holding until the next Tick.
  virtual double RateAt(double t_sec, Pcg64& rng) = 0;
};

/// Constant rate with optional multiplicative Gaussian jitter (re-drawn at
/// every tick). Models the data-center tap.
class ConstantRateModel : public RateModel {
 public:
  ConstantRateModel(double rate_pps, double jitter_frac = 0.0)
      : rate_(rate_pps), jitter_(jitter_frac) {}

  double RateAt(double /*t_sec*/, Pcg64& rng) override {
    if (jitter_ <= 0.0) return rate_;
    double f = 1.0 + jitter_ * rng.NextGaussian();
    if (f < 0.05) f = 0.05;
    return rate_ * f;
  }

 private:
  double rate_;
  double jitter_;
};

/// Two-state Markov-modulated rate: the process alternates between a high
/// and a low state with exponentially distributed holding times. Within a
/// state the rate is re-drawn uniformly around the state's mean, so the
/// trace is bursty at two time scales. Models the research-center link.
class MarkovBurstRateModel : public RateModel {
 public:
  struct Params {
    double high_rate_pps = 15000.0;
    double low_rate_pps = 3000.0;
    double mean_high_holding_sec = 15.0;
    double mean_low_holding_sec = 20.0;
    double within_state_spread = 0.25;  // +/- fraction around state mean
  };

  explicit MarkovBurstRateModel(Params p) : p_(p) {}

  double RateAt(double t_sec, Pcg64& rng) override {
    while (t_sec >= next_switch_sec_) {
      in_high_ = !in_high_;
      double hold = rng.NextExponential(
          1.0 / (in_high_ ? p_.mean_high_holding_sec : p_.mean_low_holding_sec));
      next_switch_sec_ += hold;
    }
    double mean = in_high_ ? p_.high_rate_pps : p_.low_rate_pps;
    double u = (rng.NextDouble() * 2.0 - 1.0) * p_.within_state_spread;
    return mean * (1.0 + u);
  }

 private:
  Params p_;
  bool in_high_ = true;
  double next_switch_sec_ = 0.0;
};

/// Sinusoidal diurnal-style rate; used by tests to exercise smooth drift.
class SinusoidalRateModel : public RateModel {
 public:
  SinusoidalRateModel(double base_pps, double amplitude_pps, double period_sec)
      : base_(base_pps), amp_(amplitude_pps), period_(period_sec) {}

  double RateAt(double t_sec, Pcg64& rng) override {
    (void)rng;
    double r = base_ + amp_ * std::sin(6.283185307179586 * t_sec / period_);
    return r < 1.0 ? 1.0 : r;
  }

 private:
  double base_;
  double amp_;
  double period_;
};

}  // namespace streamop

#endif  // STREAMOP_NET_RATE_MODEL_H_
