#include "net/flow_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/random.h"

namespace streamop {

Trace GenerateFlowTrace(const FlowTraceConfig& cfg) {
  Pcg64 rng(cfg.seed);
  ZipfDistribution src_zipf(cfg.num_src_addrs, cfg.zipf_s);
  ZipfDistribution dst_zipf(cfg.num_dst_addrs, cfg.zipf_s);

  std::vector<PacketRecord> packets;
  const double duration = cfg.duration_sec;

  auto sample_len = [&rng]() -> uint16_t {
    double u = rng.NextDouble();
    if (u < 0.5) return static_cast<uint16_t>(40 + rng.NextBounded(13));
    if (u < 0.75) return static_cast<uint16_t>(400 + rng.NextBounded(301));
    return static_cast<uint16_t>(1400 + rng.NextBounded(101));
  };

  // Legitimate flows.
  double t = 0.0;
  while (t < duration) {
    t += rng.NextExponential(cfg.flow_arrival_per_sec);
    if (t >= duration) break;
    double pkts_d = rng.NextPareto(cfg.pareto_alpha, cfg.min_packets_per_flow);
    if (pkts_d > cfg.max_packets_per_flow) pkts_d = cfg.max_packets_per_flow;
    uint64_t pkts = static_cast<uint64_t>(pkts_d);
    if (pkts == 0) pkts = 1;

    PacketRecord proto{};
    proto.src_ip = cfg.src_base + static_cast<uint32_t>(src_zipf.Sample(rng));
    proto.dst_ip = cfg.dst_base + static_cast<uint32_t>(dst_zipf.Sample(rng));
    proto.src_port = static_cast<uint16_t>(1024 + rng.NextBounded(64000));
    proto.dst_port = static_cast<uint16_t>(80 + rng.NextBounded(16));
    proto.proto = kProtoTcp;

    double pt = t;
    for (uint64_t i = 0; i < pkts && pt < duration; ++i) {
      PacketRecord p = proto;
      p.ts_ns = static_cast<uint64_t>(pt * 1e9);
      p.len = sample_len();
      packets.push_back(p);
      pt += rng.NextExponential(1.0 / cfg.mean_packet_gap_sec);
    }
  }

  // Attack: single-packet flows with spoofed sources and random ports.
  if (cfg.attack_enabled) {
    double at = cfg.attack_start_sec;
    const double attack_end =
        std::min(duration, cfg.attack_start_sec + cfg.attack_duration_sec);
    while (at < attack_end) {
      at += rng.NextExponential(cfg.attack_flows_per_sec);
      if (at >= attack_end) break;
      PacketRecord p{};
      p.ts_ns = static_cast<uint64_t>(at * 1e9);
      p.src_ip =
          cfg.attack_src_base + static_cast<uint32_t>(rng.NextBounded(1 << 24));
      p.dst_ip = cfg.attack_dst;
      p.src_port = static_cast<uint16_t>(rng.NextBounded(65536));
      p.dst_port = 80;
      p.proto = kProtoTcp;
      p.len = static_cast<uint16_t>(40 + rng.NextBounded(21));  // SYN-sized
      packets.push_back(p);
    }
  }

  std::sort(packets.begin(), packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.ts_ns < b.ts_ns;
            });
  return Trace(std::move(packets));
}

FlowWindowTruth ComputeFlowTruth(const Trace& trace, uint64_t window_sec) {
  FlowWindowTruth out;
  std::vector<std::unordered_set<uint64_t>> flows;
  for (const PacketRecord& p : trace.packets()) {
    uint64_t w = p.ts_sec() / window_sec;
    if (w >= flows.size()) {
      flows.resize(w + 1);
      out.bytes_per_window.resize(w + 1, 0);
    }
    flows[w].insert(FlowKeyOf(p).Hash());
    out.bytes_per_window[w] += p.len;
  }
  out.flows_per_window.reserve(flows.size());
  for (const auto& s : flows) out.flows_per_window.push_back(s.size());
  return out;
}

}  // namespace streamop
