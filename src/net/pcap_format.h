// Classic libpcap file format (the pre-pcapng container every capture tool
// still emits): a 24-byte global header followed by [16-byte record header
// + captured bytes] until EOF. Shared by the seekable reader
// (stream/pcap_reader.h) and the writer below, which materializes
// synthetic traces as real capture files for tests, benches and the CLI.
//
// Byte order is whatever the capturing host used: readers detect it from
// the magic (0xa1b2c3d4 straight, 0xd4c3b2a1 swapped; the 0xa1b23c4d /
// 0x4d3cb2a1 variants mean nanosecond-resolution timestamps) and byteswap
// every header field accordingly. The packet bytes themselves are network
// order as captured.

#ifndef STREAMOP_NET_PCAP_FORMAT_H_
#define STREAMOP_NET_PCAP_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/trace_generator.h"

namespace streamop {

constexpr uint32_t kPcapMagicMicros = 0xa1b2c3d4;
constexpr uint32_t kPcapMagicNanos = 0xa1b23c4d;
constexpr size_t kPcapGlobalHeaderSize = 24;
constexpr size_t kPcapRecordHeaderSize = 16;

// Link types the reader understands (http://www.tcpdump.org/linktypes.html).
constexpr uint32_t kLinkTypeEthernet = 1;    // 14-byte MAC header
constexpr uint32_t kLinkTypeRawIp = 101;     // packet starts at the IP header
constexpr uint32_t kLinkTypeIpv4 = 228;      // ditto, explicitly v4

/// Parsed global header, already byteswapped to host order.
struct PcapGlobalHeader {
  uint32_t magic = kPcapMagicNanos;
  uint16_t version_major = 2;
  uint16_t version_minor = 4;
  uint32_t snaplen = 65535;
  uint32_t linktype = kLinkTypeRawIp;
  bool swapped = false;       // file byte order != host byte order
  bool nanosecond = true;     // ts_frac is nanoseconds, not microseconds
};

/// Parsed per-record header, already byteswapped to host order.
struct PcapRecordHeader {
  uint32_t ts_sec = 0;
  uint32_t ts_frac = 0;   // micro- or nanoseconds per the global header
  uint32_t incl_len = 0;  // bytes captured (<= snaplen)
  uint32_t orig_len = 0;  // bytes on the wire
};

/// Decodes a global header from `data` (>= kPcapGlobalHeaderSize bytes).
/// Returns false when the magic is not a known pcap magic.
bool DecodePcapGlobalHeader(const uint8_t* data, PcapGlobalHeader* out);

/// Decodes a record header using the global header's byte order.
void DecodePcapRecordHeader(const uint8_t* data, const PcapGlobalHeader& g,
                            PcapRecordHeader* out);

/// Extracts a PacketRecord from one captured packet. Walks the link-layer
/// framing per `linktype` (Ethernet incl. one optional 802.1Q tag, or raw
/// IP), then the IPv4 header and — for TCP/UDP with enough captured bytes —
/// the L4 ports. `len` comes from the IPv4 total-length field (the PKT
/// schema's len attribute), not the capture lengths. Returns false when
/// the captured bytes don't reach a parseable IPv4 header (non-IP
/// ethertypes, IPv6, snaplen-truncated headers): such records are counted
/// by the reader, never guessed at.
bool ExtractPacketFromCapture(const uint8_t* data, size_t caplen,
                              uint32_t linktype, uint64_t ts_ns,
                              PacketRecord* out);

struct WritePcapOptions {
  /// Nanosecond-resolution timestamps (exact PacketRecord round trips).
  /// false writes the classic microsecond format — readers must tolerate
  /// the precision loss.
  bool nanosecond = true;
  /// Write Ethernet framing (kLinkTypeEthernet) instead of raw IP.
  bool ethernet = false;
  /// Write every header byteswapped (a foreign-endian capture), for
  /// exercising reader byte-order tolerance.
  bool swap_byte_order = false;
  /// After the first `truncate_after_records` records (if >= 0), stop —
  /// and if `truncate_mid_record` is set, write only this many bytes of
  /// one further record (a capture cut off mid-write).
  int64_t truncate_after_records = -1;
  size_t truncate_mid_record = 0;
};

/// Writes `trace` as a pcap file: one synthetic IPv4 header (+8 L4 bytes
/// carrying the ports) per packet, orig_len = PacketRecord::len. The
/// result round-trips through stream/pcap_reader back to the same
/// PacketRecords (timestamps exactly with nanosecond=true).
Status WritePcap(const Trace& trace, const std::string& path,
                 const WritePcapOptions& options = WritePcapOptions());

}  // namespace streamop

#endif  // STREAMOP_NET_PCAP_FORMAT_H_
