// STATEFUL functions (§6.2): collections of functions sharing a per-
// supergroup state blob. This mirrors the paper's runtime API:
//
//   STATE char[50] subsetsum_sampling_state;
//   SFUN int subsetsum_sampling_state ssample(int, CONST int);
//   void _sfun_state_init_<state>(void* new_state, void* old_state);
//   <ret> <name>(void* s, <params>);
//
// Differences from UDAFs, per the paper: stateful functions can produce
// output many times during execution, and the state is modified only when
// the functions sharing it are referenced. The `init` hook receives the
// equivalent state from the previous time window (or nullptr for a brand
// new supergroup) — this is how dynamic subset-sum sampling carries its
// threshold across windows.

#ifndef STREAMOP_EXPR_STATEFUL_H_
#define STREAMOP_EXPR_STATEFUL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "obs/quality.h"
#include "tuple/value.h"

namespace streamop {

/// Declaration of a shared state type (the STATE statement).
struct SfunStateDef {
  std::string name;
  size_t size = 0;

  /// Constructs the state in `state` (size bytes, suitably aligned).
  /// `old_state` is the equivalent state from the previous time window, or
  /// nullptr for a brand-new supergroup. `seed` derives per-supergroup RNG
  /// streams.
  void (*init)(void* state, const void* old_state, uint64_t seed) = nullptr;

  /// Destroys the state (placement-delete of any embedded objects).
  void (*destroy)(void* state) = nullptr;

  /// Signals that the time window has finished (the paper's final_init);
  /// may be nullptr when the state does not care.
  void (*window_final)(void* state) = nullptr;

  /// Reports the sampling accuracy of this state at window close (error
  /// bound, threshold, coverage — whatever the algorithm admits). Called
  /// by the operator while building a WindowQualityReport, before the
  /// window tables are swapped. Returns false when the state has nothing
  /// to report (e.g. it never sampled); may be nullptr.
  bool (*quality)(const void* state, const obs::QualityContext& ctx,
                  obs::EstimatorQuality* out) = nullptr;

  /// Checkpoint support (DESIGN.md §10). `serialize` externalizes the full
  /// state — including RNG stream positions — so that `restore` (called on
  /// a state freshly placement-constructed via init(state, nullptr, seed))
  /// overwrites every field and the restored state continues the exact
  /// draw sequence of the original. States without these hooks are skipped
  /// at snapshot time (counted by the checkpoint writer) and restart fresh
  /// after recovery; supplying neither or both is valid, one is not.
  void (*serialize)(const void* state, ByteWriter* w) = nullptr;
  void (*restore)(void* state, ByteReader* r) = nullptr;
};

/// Declaration of one stateful function (the SFUN statement).
struct SfunDef {
  std::string name;
  const SfunStateDef* state = nullptr;
  int min_args = 0;
  int max_args = 0;

  /// The function body. `state` is the shared per-supergroup state.
  Value (*call)(void* state, const Value* args, size_t nargs) = nullptr;
};

/// Registry of state types and stateful functions. The bundled sampling
/// packages (subset-sum, reservoir, heavy-hitter helpers) register
/// themselves here; users add their own with the same two calls.
class SfunRegistry {
 public:
  static SfunRegistry& Global();

  Status RegisterState(SfunStateDef def);
  Status RegisterFunction(SfunDef def);

  const SfunStateDef* FindState(const std::string& name) const;
  const SfunDef* FindFunction(const std::string& name) const;

 private:
  SfunRegistry() = default;
  // unique_ptr storage: resolved expressions and SfunDefs hold raw pointers
  // into the registry, which must stay stable across later registrations.
  std::vector<std::unique_ptr<SfunStateDef>> states_;
  std::vector<std::unique_ptr<SfunDef>> funcs_;
};

/// Ensures the built-in sampling packages are registered (idempotent).
/// Implemented in src/core (which owns the packages); declared here so the
/// analyzer can trigger it without a dependency inversion.
void EnsureBuiltinSfunPackagesRegistered();

}  // namespace streamop

#endif  // STREAMOP_EXPR_STATEFUL_H_
