// Compiled expression programs: the analyzed Expr tree flattened into a
// compact postfix bytecode, executed either one row at a time (a faster
// drop-in for the tree walk) or column-at-a-time over a TupleBatch with a
// selection-vector mask (the batched hot path, DESIGN.md §9).
//
// The compiler covers every analyzed expression kind; anything it cannot
// express (unanalyzed calls, unresolved references, pathological stack
// depth) makes TryCompile return nullopt and the caller keeps the tree-walk
// Evaluate() — bytecode is an optimization, never a semantic fork. Both
// interpreters route binary/unary operator application through the
// evaluator's EvalBinaryValues/EvalUnaryValue kernels, so results are
// bit-identical to the tree walk by construction (and differentially
// tested in tests/expr_program_test.cc and tests/query_fuzz_test.cc).
//
// Short-circuit AND/OR compile to probe/end opcode pairs. In row mode the
// probe jumps over the right operand exactly as the tree walk
// short-circuits. In batch mode the probe pushes a narrowed lane mask, so
// the right operand is evaluated only on lanes where it matters — lane-wise
// short-circuit: a guarded division like `b != 0 AND a/b > 2` never traps
// on guarded lanes, matching per-tuple semantics.

#ifndef STREAMOP_EXPR_PROGRAM_H_
#define STREAMOP_EXPR_PROGRAM_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"
#include "tuple/value.h"

namespace streamop {

enum class OpCode : uint8_t {
  kPushLiteral,   // a = literal index
  kLoadInput,     // a = input schema slot
  kLoadGroupBy,   // a = group-by variable slot
  kLoadAgg,       // a = aggregate final slot (row mode only)
  kLoadSuperAgg,  // a = superaggregate final slot (row mode only)
  kNot,
  kNeg,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndProbe,  // a = jump target past the matching kAndEnd
  kAndEnd,
  kOrProbe,   // a = jump target past the matching kOrEnd
  kOrEnd,
  kScalarCall,  // a = arg count, fn = ScalarFunctionDef*
  kSfunCall,    // a = arg count, b = sfun state slot, fn = SfunDef*
};

struct Instr {
  OpCode op;
  int32_t a = 0;
  int32_t b = 0;
  const void* fn = nullptr;
};

// VecCol — the materialized expression-result column type — lives in
// tuple/tuple_batch.h: it is the same struct as a TupleBatch column, so an
// identity program's result can alias its input column without a copy.

class ExprProgram {
 public:
  // Fixed evaluation limits; TryCompile refuses programs that exceed them
  // (the caller then stays on the tree walk).
  static constexpr size_t kMaxRowStack = 32;
  static constexpr size_t kMaxMaskDepth = 32;
  static constexpr size_t kMaxCallArgs = 8;

  // String literals are referenced by address from the flattened literal
  // pool, so programs move but never copy.
  ExprProgram(const ExprProgram&) = delete;
  ExprProgram& operator=(const ExprProgram&) = delete;
  ExprProgram(ExprProgram&&) = default;
  ExprProgram& operator=(ExprProgram&&) = default;

  /// Compiles an analyzed expression. nullopt if any node is outside the
  /// instruction set (the caller falls back to Evaluate()).
  static std::optional<ExprProgram> TryCompile(const Expr* expr);

  // What the program reads / mutates — the operator uses these to decide
  // which clauses may run column-at-a-time.
  bool has_sfun() const { return has_sfun_; }
  bool reads_input() const { return reads_input_; }
  bool reads_group_by() const { return reads_group_by_; }
  bool reads_agg() const { return reads_agg_; }
  bool reads_superagg() const { return reads_superagg_; }

  /// True if the program can run column-at-a-time: no per-lane state
  /// mutation (SFUNs) and no per-group/per-supergroup inputs. All scalar
  /// builtins are pure, so scalar calls stay batchable.
  bool batchable() const {
    return !has_sfun_ && !reads_agg_ && !reads_superagg_;
  }

  /// If the whole program is a single input-column load, its slot — the
  /// caller can use the batch column directly instead of evaluating.
  /// -1 otherwise.
  int identity_input_slot() const {
    return (code_.size() == 1 && code_[0].op == OpCode::kLoadInput)
               ? code_[0].a
               : -1;
  }

  size_t num_instructions() const { return code_.size(); }

  /// Disassembly for golden-program tests and debugging.
  std::string ToString() const;

  // ---------------------------------------------------------------------
  // Row mode: evaluate one row. Input may come from a materialized Tuple
  // or directly from a batch lane; group-by variables from a GroupKey or
  // from precomputed key columns. Semantics identical to Evaluate().
  struct RowContext {
    const Tuple* input = nullptr;
    const TupleBatch* batch = nullptr;  // alternative input source
    size_t row = 0;                     // lane for batch / key_cols reads
    const GroupKey* group_key = nullptr;
    const VecCol* const* key_cols = nullptr;  // per group-by slot
    size_t num_key_cols = 0;
    const std::vector<Value>* aggregates = nullptr;
    const std::vector<Value>* superaggs = nullptr;
    void* const* sfun_states = nullptr;
    size_t num_sfun_states = 0;
    uint64_t* sfun_calls = nullptr;
    // Optional reusable value stack (>= kMaxRowStack slots). Hot per-lane
    // callers pass one to skip constructing/destroying kMaxRowStack Values
    // per evaluation; left null, EvalRow uses a local array. Never shared
    // across concurrent evaluations.
    Value* scratch_stack = nullptr;
  };

  Result<Value> EvalRow(const RowContext& ctx) const;

  // ---------------------------------------------------------------------
  // Batch mode: evaluate column-at-a-time over every masked-in lane.
  struct BatchContext {
    const TupleBatch* batch = nullptr;
    // Lanes to evaluate; null means the batch's own selection vector.
    const uint8_t* mask = nullptr;
    const VecCol* const* key_cols = nullptr;  // per group-by slot
    size_t num_key_cols = 0;
  };

  /// Reusable per-caller evaluation state. Reaches steady-state capacity
  /// after one evaluation and never allocates again for string-free data.
  /// String results accumulate in `owned` across evaluations (their
  /// addresses are stored in result columns); call Reset() once per batch,
  /// after all columns derived from the previous batch are dead.
  struct BatchScratch {
    std::vector<VecCol> slots;                // value stack backing
    std::vector<std::vector<uint8_t>> masks;  // pushed mask backing
    std::deque<std::string> owned;            // string results (stable addrs)

    void Reset() {
      if (!owned.empty()) owned.clear();
    }
  };

  /// Evaluates over all masked-in lanes of the batch into `out` (lanes
  /// outside the mask hold nulls — callers must not read them). Any lane
  /// error (division by zero on an *active* lane, scalar-call failure)
  /// aborts the whole batch with that Status; the caller is expected to
  /// fall back to per-row evaluation to reproduce exact tuple-at-a-time
  /// error positioning. Requires batchable().
  Status EvalBatch(const BatchContext& ctx, BatchScratch* scratch,
                   VecCol* out) const;

 private:
  ExprProgram() = default;

  Result<Value> EvalRowOn(const RowContext& ctx, Value* stack) const;

  // Peephole for the hot predicate shape `fn(simple args...)` optionally
  // followed by `= literal` (ssample admission, cleaning triggers): the
  // arguments are plain loads, so EvalRow fills them and calls the function
  // directly instead of running the interpreter loop. Same semantics and
  // error positions as the bytecode it summarizes.
  struct FastCall {
    bool is_sfun = false;
    int32_t nargs = 0;
    int32_t state_slot = 0;   // sfun state index (sfun calls only)
    int32_t cmp_literal = -1; // literal index of a trailing kEq, -1: none
    const void* fn = nullptr;
  };
  void DetectFastCall();
  Result<Value> EvalFastCall(const RowContext& ctx, Value* stack) const;

  struct CompileState;
  static bool CompileNode(const Expr& e, CompileState* st);
  void FinalizeLiterals();

  std::vector<Instr> code_;
  std::vector<Value> literals_;
  // Flattened (type, raw) encoding of literals_, built once post-compile;
  // string raws point at literals_[i]'s payload (stable: literals_ is
  // immutable after FinalizeLiterals and programs are move-only).
  std::vector<uint64_t> literal_raw_;
  std::vector<uint8_t> literal_type_;
  std::optional<FastCall> fast_call_;
  size_t max_stack_ = 0;
  size_t max_masks_ = 0;
  bool has_sfun_ = false;
  bool reads_input_ = false;
  bool reads_group_by_ = false;
  bool reads_agg_ = false;
  bool reads_superagg_ = false;
};

}  // namespace streamop

#endif  // STREAMOP_EXPR_PROGRAM_H_
