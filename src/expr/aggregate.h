// Group aggregates: the ordinary per-group aggregation functions (sum,
// count, min, max, avg, first, last). Sum and count are *subtractable*,
// which the supergroup machinery relies on: when a cleaning phase deletes a
// group, its contribution is subtracted from the supergroup aggregate.

#ifndef STREAMOP_EXPR_AGGREGATE_H_
#define STREAMOP_EXPR_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "sampling/gk_quantile.h"
#include "tuple/value.h"

namespace streamop {

enum class AggregateKind {
  kSum,
  kCount,  // count(*) or count(expr)
  kMin,
  kMax,
  kAvg,
  kFirst,     // first value seen in the group (the paper's first())
  kLast,
  kQuantile,  // quantile(x, phi) / median(x): Greenwald-Khanna sketch
};

/// Resolves an aggregate function name ("sum", "count", ...); returns
/// nullptr-like false if the name is not an aggregate.
bool LookupAggregateKind(const std::string& name, AggregateKind* kind);

/// One aggregate computed per group: kind + (analyzed) argument expression.
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCount;
  ExprPtr arg;          // null for count(*)
  bool star = false;    // count(*)
  double param = 0.0;   // kQuantile: the phi of quantile(x, phi)
  std::string display;  // original text, for output naming / errors
};

/// Value-semantic accumulator for one aggregate instance.
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(AggregateKind kind = AggregateKind::kCount,
                                double param = 0.0)
      : kind_(kind), param_(param) {}

  AggregateAccumulator(AggregateAccumulator&&) = default;
  AggregateAccumulator& operator=(AggregateAccumulator&&) = default;

  /// Folds in one input value (ignored payload for count(*)).
  void Update(const Value& v) { Update(v, 1.0); }

  /// Folds in one value with a Horvitz–Thompson weight: a tuple admitted
  /// with probability p contributes with weight 1/p, so sum/count/avg stay
  /// unbiased under load shedding. Weight 1.0 is the exact unweighted path
  /// (integer sums remain integers); any other weight moves sum/count/avg
  /// into double-space estimates. min/max/first/last/quantile ignore the
  /// weight (they are order statistics of the observed subsample).
  void Update(const Value& v, double weight);

  /// Removes one previously-added value. Only sum/count/avg support
  /// subtraction; min/max/first/last return Unimplemented.
  Status Subtract(const Value& v);

  /// Merges another accumulator of the same kind (used when a group's
  /// total folds into a supergroup aggregate).
  void Merge(const AggregateAccumulator& other);

  /// Current result value.
  Value Final() const;

  AggregateKind kind() const { return kind_; }
  uint64_t count() const { return count_; }

  /// True once any update carried a weight != 1.0; Final() then reports
  /// double-space Horvitz–Thompson estimates for count/avg.
  bool weighted() const { return weighted_; }

  /// Checkpoint: the complete fold state, including the lazily-built
  /// quantile sketch when present.
  void SerializeTo(ByteWriter& w) const;
  void RestoreFrom(ByteReader& r);

 private:
  AggregateKind kind_;
  uint64_t count_ = 0;
  // Sum state: tracked in unsigned and double space simultaneously; the
  // result stays UInt while every input was an unsigned integer.
  uint64_t sum_u_ = 0;
  double sum_d_ = 0.0;
  bool all_uint_ = true;
  // Horvitz–Thompson state: sum of admission weights. Equals count_ while
  // every update had weight 1.0 (weighted_ == false), in which case the
  // exact integer paths above stay authoritative.
  double weight_sum_ = 0.0;
  bool weighted_ = false;
  Value extremum_;  // min/max/first/last payload
  bool has_value_ = false;
  double param_ = 0.0;
  std::unique_ptr<GkQuantileSketch> sketch_;  // kQuantile, lazily built
};

/// True if `v1 < v2` under the evaluator's comparison semantics (numeric
/// cross-type compare; lexicographic strings). Shared with the evaluator.
bool ValueLess(const Value& v1, const Value& v2);

}  // namespace streamop

#endif  // STREAMOP_EXPR_AGGREGATE_H_
