#include "expr/expr.h"

namespace streamop {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args, bool is_super) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->func_name = std::move(name);
  e->is_super = is_super;
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::AggregateRef(int slot) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregateRef;
  e->agg_slot = slot;
  return e;
}

ExprPtr Expr::SuperAggRef(int slot) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSuperAggRef;
  e->agg_slot = slot;
  return e;
}

ExprPtr Expr::GroupByRef(std::string name, int slot) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  e->source = RefSource::kGroupBy;
  e->slot = slot;
  return e;
}

ExprPtr Expr::InputRef(std::string name, int slot) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  e->source = RefSource::kInput;
  e->slot = slot;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (ExprPtr& c : e->children) c = c->Clone();
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumnRef:
      return column_name;
    case ExprKind::kUnary:
      return (uop == UnaryOp::kNot ? "NOT " : "-") + children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpToString(bop) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kCall:
    case ExprKind::kScalarCall:
    case ExprKind::kStatefulCall: {
      std::string out = func_name;
      if (is_super) out += "$";
      out += "(";
      if (star_arg) {
        out += "*";
      } else {
        for (size_t i = 0; i < children.size(); ++i) {
          if (i > 0) out += ", ";
          out += children[i]->ToString();
        }
      }
      out += ")";
      return out;
    }
    case ExprKind::kAggregateRef:
      return "agg#" + std::to_string(agg_slot);
    case ExprKind::kSuperAggRef:
      return "superagg#" + std::to_string(agg_slot);
  }
  return "?";
}

}  // namespace streamop
