// Interpreted expression evaluation against an EvalContext.
//
// The same analyzed expression may be evaluated in several contexts during
// operator execution (per input tuple for WHERE, per supergroup for
// CLEANING WHEN, per group for CLEANING BY / HAVING / SELECT); the context
// simply exposes whichever sources are live at that point.

#ifndef STREAMOP_EXPR_EVALUATOR_H_
#define STREAMOP_EXPR_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "obs/metrics.h"
#include "tuple/tuple.h"

namespace streamop {

/// The data sources an expression may read during one evaluation. Any
/// member may be null if that source is not live in the current clause.
struct EvalContext {
  const Tuple* input = nullptr;              // raw stream tuple
  const GroupKey* group_key = nullptr;       // computed group-by values
  const std::vector<Value>* aggregates = nullptr;   // group aggregate finals
  const std::vector<Value>* superaggs = nullptr;    // superaggregate finals
  void* const* sfun_states = nullptr;        // state blobs by sfun_state_slot
  size_t num_sfun_states = 0;
  uint64_t* sfun_calls = nullptr;            // counts stateful-fn invocations
                                             // (plain; owner batches into the
                                             // registry counter)
};

/// Evaluates an analyzed expression. Errors indicate bugs in analysis
/// (unresolved reference) or runtime issues (division by zero).
Result<Value> Evaluate(const Expr& expr, const EvalContext& ctx);

/// Evaluates a predicate: null/absent -> true (an omitted clause always
/// passes), otherwise truthiness of the result.
Result<bool> EvaluatePredicate(const Expr* expr, const EvalContext& ctx);

/// Compares two values with numeric cross-type promotion; returns -1/0/+1.
int CompareValues(const Value& a, const Value& b);

/// Applies one non-short-circuit binary operator (comparison or arithmetic)
/// to already-evaluated operands — the single source of truth for operator
/// semantics, shared by the tree walk above and the bytecode interpreter
/// (src/expr/program.cc). kAnd/kOr are not accepted here: their
/// short-circuit evaluation lives with the control flow, not the operands.
Result<Value> EvalBinaryValues(BinaryOp op, const Value& l, const Value& r);

/// Applies a unary operator to an already-evaluated operand. NOT yields the
/// negated truthiness; negation stays double for doubles and goes through
/// AsInt for everything else, exactly as the tree walk does.
Value EvalUnaryValue(UnaryOp op, const Value& v);

}  // namespace streamop

#endif  // STREAMOP_EXPR_EVALUATOR_H_
