// Scalar (stateless, per-call) function registry. These are the ordinary
// runtime-library functions of the query language: UMAX, UMIN, H (the
// min-hash hash), abs, ...

#ifndef STREAMOP_EXPR_SCALAR_FUNCTION_H_
#define STREAMOP_EXPR_SCALAR_FUNCTION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/value.h"

namespace streamop {

struct ScalarFunctionDef {
  std::string name;
  int min_args = 0;
  int max_args = 0;  // inclusive; -1 = variadic
  // Pointer+count rather than std::vector so the evaluator can pass
  // arguments from a stack buffer without allocating per call.
  std::function<Result<Value>(const Value* args, size_t num_args)> fn;
};

/// Global registry of scalar functions, populated with the builtins on
/// first use. Lookup is case-insensitive.
class ScalarFunctionRegistry {
 public:
  /// The process-wide registry instance.
  static ScalarFunctionRegistry& Global();

  /// Registers a function; fails if the name is taken.
  Status Register(ScalarFunctionDef def);

  /// Finds by name; nullptr if absent.
  const ScalarFunctionDef* Find(const std::string& name) const;

 private:
  ScalarFunctionRegistry();
  std::vector<ScalarFunctionDef> defs_;
};

}  // namespace streamop

#endif  // STREAMOP_EXPR_SCALAR_FUNCTION_H_
