#include "expr/stateful.h"

#include "common/string_util.h"

namespace streamop {

SfunRegistry& SfunRegistry::Global() {
  static SfunRegistry* instance = new SfunRegistry();
  return *instance;
}

Status SfunRegistry::RegisterState(SfunStateDef def) {
  if (FindState(def.name) != nullptr) {
    return Status::AlreadyExists("SFUN state '" + def.name +
                                 "' already registered");
  }
  states_.push_back(std::make_unique<SfunStateDef>(std::move(def)));
  return Status::OK();
}

Status SfunRegistry::RegisterFunction(SfunDef def) {
  if (FindFunction(def.name) != nullptr) {
    return Status::AlreadyExists("stateful function '" + def.name +
                                 "' already registered");
  }
  if (def.state == nullptr) {
    return Status::InvalidArgument("stateful function '" + def.name +
                                   "' has no state binding");
  }
  funcs_.push_back(std::make_unique<SfunDef>(std::move(def)));
  return Status::OK();
}

const SfunStateDef* SfunRegistry::FindState(const std::string& name) const {
  for (const auto& s : states_) {
    if (EqualsIgnoreCase(s->name, name)) return s.get();
  }
  return nullptr;
}

const SfunDef* SfunRegistry::FindFunction(const std::string& name) const {
  for (const auto& f : funcs_) {
    if (EqualsIgnoreCase(f->name, name)) return f.get();
  }
  return nullptr;
}

}  // namespace streamop
