#include "expr/program.h"

#include <cmath>
#include <cstdio>

#include "expr/scalar_function.h"
#include "expr/stateful.h"
#include "obs/metrics.h"

namespace streamop {

namespace {

constexpr uint8_t kNullTag = static_cast<uint8_t>(FieldType::kNull);
constexpr uint8_t kBoolTag = static_cast<uint8_t>(FieldType::kBool);
constexpr uint8_t kUIntTag = static_cast<uint8_t>(FieldType::kUInt);
constexpr uint8_t kIntTag = static_cast<uint8_t>(FieldType::kInt);
constexpr uint8_t kDoubleTag = static_cast<uint8_t>(FieldType::kDouble);
constexpr uint8_t kStringTag = static_cast<uint8_t>(FieldType::kString);

inline bool IsNumericTag(uint8_t t) {
  return t == kUIntTag || t == kIntTag || t == kDoubleTag;
}

/// Value::AsDouble over a (type, raw) lane: null/string -> 0.0, bool 0/1.
inline double RawAsDouble(uint8_t t, uint64_t raw) {
  switch (t) {
    case kUIntTag:
      return static_cast<double>(raw);
    case kIntTag:
      return static_cast<double>(static_cast<int64_t>(raw));
    case kDoubleTag:
      return std::bit_cast<double>(raw);
    case kBoolTag:
      return raw != 0 ? 1.0 : 0.0;
    default:  // kNull / kString coerce to 0.0
      return 0.0;
  }
}

/// A column operand during batch evaluation: borrowed pointers plus a
/// stride so literal splats (stride 0) read lane 0 everywhere, branch-free.
struct ColRef {
  const uint64_t* raw;
  const uint8_t* type;
  size_t stride;  // 1 = per-lane column, 0 = splat
  int slot;       // backing scratch slot, or -1 if borrowed
};

inline uint8_t LaneType(const ColRef& c, size_t i) {
  return c.type[i * c.stride];
}
inline uint64_t LaneRaw(const ColRef& c, size_t i) {
  return c.raw[i * c.stride];
}
inline Value LaneValue(const ColRef& c, size_t i) {
  return MaterializeRawValue(LaneType(c, i), LaneRaw(c, i));
}

/// Stores a computed Value into an output lane; string payloads are copied
/// into the scratch-owned deque so their addresses survive the batch.
inline void WriteLane(VecCol* col, size_t i, const Value& v,
                      std::deque<std::string>* owned) {
  uint8_t t = static_cast<uint8_t>(v.type());
  uint64_t raw = 0;
  switch (v.type()) {
    case FieldType::kNull:
      break;
    case FieldType::kBool:
      raw = v.bool_value() ? 1 : 0;
      break;
    case FieldType::kUInt:
      raw = v.uint_value();
      break;
    case FieldType::kInt:
      raw = static_cast<uint64_t>(v.int_value());
      break;
    case FieldType::kDouble:
      raw = std::bit_cast<uint64_t>(v.double_value());
      break;
    case FieldType::kString:
      owned->push_back(v.string_value());
      raw = reinterpret_cast<uint64_t>(&owned->back());
      break;
  }
  col->raw[i] = raw;
  col->type[i] = t;
}

inline void ClearLane(VecCol* col, size_t i) {
  col->raw[i] = 0;
  col->type[i] = kNullTag;
}

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kPushLiteral:
      return "push_lit";
    case OpCode::kLoadInput:
      return "load_input";
    case OpCode::kLoadGroupBy:
      return "load_group";
    case OpCode::kLoadAgg:
      return "load_agg";
    case OpCode::kLoadSuperAgg:
      return "load_super";
    case OpCode::kNot:
      return "not";
    case OpCode::kNeg:
      return "neg";
    case OpCode::kAdd:
      return "add";
    case OpCode::kSub:
      return "sub";
    case OpCode::kMul:
      return "mul";
    case OpCode::kDiv:
      return "div";
    case OpCode::kMod:
      return "mod";
    case OpCode::kEq:
      return "eq";
    case OpCode::kNe:
      return "ne";
    case OpCode::kLt:
      return "lt";
    case OpCode::kLe:
      return "le";
    case OpCode::kGt:
      return "gt";
    case OpCode::kGe:
      return "ge";
    case OpCode::kAndProbe:
      return "and_probe";
    case OpCode::kAndEnd:
      return "and_end";
    case OpCode::kOrProbe:
      return "or_probe";
    case OpCode::kOrEnd:
      return "or_end";
    case OpCode::kScalarCall:
      return "scall";
    case OpCode::kSfunCall:
      return "sfun";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Compiler

struct ExprProgram::CompileState {
  ExprProgram prog;
  size_t depth = 0;       // simulated value-stack depth
  size_t mask_depth = 0;  // simulated AND/OR nesting depth
  bool ok = true;

  void Emit(OpCode op, int32_t a = 0, int32_t b = 0,
            const void* fn = nullptr) {
    prog.code_.push_back(Instr{op, a, b, fn});
  }
  bool Push() {
    if (++depth > kMaxRowStack) return false;
    if (depth > prog.max_stack_) prog.max_stack_ = depth;
    return true;
  }
  void Pop(size_t n) { depth -= n; }
};

bool ExprProgram::CompileNode(const Expr& e, CompileState* st) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      int32_t idx = static_cast<int32_t>(st->prog.literals_.size());
      st->prog.literals_.push_back(e.literal);
      st->Emit(OpCode::kPushLiteral, idx);
      return st->Push();
    }

    case ExprKind::kColumnRef: {
      if (e.slot < 0) return false;  // unresolved: let the tree walk error
      if (e.source == RefSource::kInput) {
        st->prog.reads_input_ = true;
        st->Emit(OpCode::kLoadInput, e.slot);
      } else if (e.source == RefSource::kGroupBy) {
        st->prog.reads_group_by_ = true;
        st->Emit(OpCode::kLoadGroupBy, e.slot);
      } else {
        return false;
      }
      return st->Push();
    }

    case ExprKind::kUnary:
      if (!CompileNode(*e.children[0], st)) return false;
      st->Emit(e.uop == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg);
      return true;

    case ExprKind::kBinary: {
      if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
        if (++st->mask_depth > kMaxMaskDepth) return false;
        if (st->mask_depth > st->prog.max_masks_) {
          st->prog.max_masks_ = st->mask_depth;
        }
        if (!CompileNode(*e.children[0], st)) return false;
        bool is_and = e.bop == BinaryOp::kAnd;
        size_t probe = st->prog.code_.size();
        st->Emit(is_and ? OpCode::kAndProbe : OpCode::kOrProbe);
        // The probe consumes the left operand and the end pushes the
        // result, so the right operand compiles at the same depth.
        st->Pop(1);
        if (!CompileNode(*e.children[1], st)) return false;
        st->Emit(is_and ? OpCode::kAndEnd : OpCode::kOrEnd);
        st->prog.code_[probe].a =
            static_cast<int32_t>(st->prog.code_.size());
        --st->mask_depth;
        return true;
      }
      if (!CompileNode(*e.children[0], st)) return false;
      if (!CompileNode(*e.children[1], st)) return false;
      switch (e.bop) {
        case BinaryOp::kAdd:
          st->Emit(OpCode::kAdd);
          break;
        case BinaryOp::kSub:
          st->Emit(OpCode::kSub);
          break;
        case BinaryOp::kMul:
          st->Emit(OpCode::kMul);
          break;
        case BinaryOp::kDiv:
          st->Emit(OpCode::kDiv);
          break;
        case BinaryOp::kMod:
          st->Emit(OpCode::kMod);
          break;
        case BinaryOp::kEq:
          st->Emit(OpCode::kEq);
          break;
        case BinaryOp::kNe:
          st->Emit(OpCode::kNe);
          break;
        case BinaryOp::kLt:
          st->Emit(OpCode::kLt);
          break;
        case BinaryOp::kLe:
          st->Emit(OpCode::kLe);
          break;
        case BinaryOp::kGt:
          st->Emit(OpCode::kGt);
          break;
        case BinaryOp::kGe:
          st->Emit(OpCode::kGe);
          break;
        default:
          return false;
      }
      st->Pop(1);
      return true;
    }

    case ExprKind::kScalarCall: {
      if (e.scalar == nullptr || e.children.size() > kMaxCallArgs) {
        return false;
      }
      for (const ExprPtr& c : e.children) {
        if (!CompileNode(*c, st)) return false;
      }
      st->Emit(OpCode::kScalarCall,
               static_cast<int32_t>(e.children.size()), 0, e.scalar);
      if (e.children.empty()) return st->Push();
      st->Pop(e.children.size() - 1);
      return true;
    }

    case ExprKind::kStatefulCall: {
      if (e.sfun == nullptr || e.sfun_state_slot < 0 ||
          e.children.size() > kMaxCallArgs) {
        return false;
      }
      for (const ExprPtr& c : e.children) {
        if (!CompileNode(*c, st)) return false;
      }
      st->prog.has_sfun_ = true;
      st->Emit(OpCode::kSfunCall, static_cast<int32_t>(e.children.size()),
               e.sfun_state_slot, e.sfun);
      if (e.children.empty()) return st->Push();
      st->Pop(e.children.size() - 1);
      return true;
    }

    case ExprKind::kAggregateRef:
      if (e.agg_slot < 0) return false;
      st->prog.reads_agg_ = true;
      st->Emit(OpCode::kLoadAgg, e.agg_slot);
      return st->Push();

    case ExprKind::kSuperAggRef:
      if (e.agg_slot < 0) return false;
      st->prog.reads_superagg_ = true;
      st->Emit(OpCode::kLoadSuperAgg, e.agg_slot);
      return st->Push();

    case ExprKind::kCall:
      return false;  // unanalyzed; the tree walk reports the bug
  }
  return false;
}

void ExprProgram::FinalizeLiterals() {
  literal_raw_.resize(literals_.size());
  literal_type_.resize(literals_.size());
  for (size_t i = 0; i < literals_.size(); ++i) {
    const Value& v = literals_[i];
    literal_type_[i] = static_cast<uint8_t>(v.type());
    switch (v.type()) {
      case FieldType::kNull:
        literal_raw_[i] = 0;
        break;
      case FieldType::kBool:
        literal_raw_[i] = v.bool_value() ? 1 : 0;
        break;
      case FieldType::kUInt:
        literal_raw_[i] = v.uint_value();
        break;
      case FieldType::kInt:
        literal_raw_[i] = static_cast<uint64_t>(v.int_value());
        break;
      case FieldType::kDouble:
        literal_raw_[i] = std::bit_cast<uint64_t>(v.double_value());
        break;
      case FieldType::kString:
        literal_raw_[i] =
            reinterpret_cast<uint64_t>(&v.string_value());
        break;
    }
  }
}

void ExprProgram::DetectFastCall() {
  auto is_load = [](OpCode op) {
    return op == OpCode::kPushLiteral || op == OpCode::kLoadInput ||
           op == OpCode::kLoadGroupBy || op == OpCode::kLoadAgg ||
           op == OpCode::kLoadSuperAgg;
  };
  size_t end = code_.size();
  int32_t cmp_literal = -1;
  if (end >= 2 && code_[end - 2].op == OpCode::kPushLiteral &&
      code_[end - 1].op == OpCode::kEq) {
    cmp_literal = code_[end - 2].a;
    end -= 2;
  }
  if (end == 0) return;
  const Instr& call = code_[end - 1];
  if (call.op != OpCode::kScalarCall && call.op != OpCode::kSfunCall) return;
  if (static_cast<size_t>(call.a) != end - 1) return;  // extra operands
  for (size_t k = 0; k + 1 < end; ++k) {
    if (!is_load(code_[k].op)) return;
  }
  FastCall f;
  f.is_sfun = call.op == OpCode::kSfunCall;
  f.nargs = call.a;
  f.state_slot = call.b;
  f.cmp_literal = cmp_literal;
  f.fn = call.fn;
  fast_call_ = f;
}

std::optional<ExprProgram> ExprProgram::TryCompile(const Expr* expr) {
  if (expr == nullptr) return std::nullopt;
  CompileState st;
  if (!CompileNode(*expr, &st)) return std::nullopt;
  if (st.depth != 1) return std::nullopt;  // malformed tree
  st.prog.FinalizeLiterals();
  st.prog.DetectFastCall();
  return std::move(st.prog);
}

std::string ExprProgram::ToString() const {
  std::string out;
  char buf[128];
  for (size_t pc = 0; pc < code_.size(); ++pc) {
    const Instr& in = code_[pc];
    switch (in.op) {
      case OpCode::kPushLiteral:
        std::snprintf(buf, sizeof(buf), "%zu: push_lit[%d] ; %s\n", pc, in.a,
                      literals_[in.a].ToString().c_str());
        break;
      case OpCode::kLoadInput:
      case OpCode::kLoadGroupBy:
      case OpCode::kLoadAgg:
      case OpCode::kLoadSuperAgg:
        std::snprintf(buf, sizeof(buf), "%zu: %s[%d]\n", pc, OpName(in.op),
                      in.a);
        break;
      case OpCode::kAndProbe:
      case OpCode::kOrProbe:
        std::snprintf(buf, sizeof(buf), "%zu: %s ->%d\n", pc, OpName(in.op),
                      in.a);
        break;
      case OpCode::kScalarCall:
        std::snprintf(
            buf, sizeof(buf), "%zu: scall %s/%d\n", pc,
            static_cast<const ScalarFunctionDef*>(in.fn)->name.c_str(),
            in.a);
        break;
      case OpCode::kSfunCall:
        std::snprintf(buf, sizeof(buf), "%zu: sfun %s/%d state[%d]\n", pc,
                      static_cast<const SfunDef*>(in.fn)->name.c_str(), in.a,
                      in.b);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%zu: %s\n", pc, OpName(in.op));
        break;
    }
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Row mode

Result<Value> ExprProgram::EvalRow(const RowContext& ctx) const {
  if (ctx.scratch_stack != nullptr) {
    if (fast_call_.has_value()) return EvalFastCall(ctx, ctx.scratch_stack);
    return EvalRowOn(ctx, ctx.scratch_stack);
  }
  Value local_stack[kMaxRowStack];
  if (fast_call_.has_value()) return EvalFastCall(ctx, local_stack);
  return EvalRowOn(ctx, local_stack);
}

Result<Value> ExprProgram::EvalFastCall(const RowContext& ctx,
                                        Value* stack) const {
  const FastCall& f = *fast_call_;
  for (int32_t k = 0; k < f.nargs; ++k) {
    const Instr& in = code_[k];
    switch (in.op) {
      case OpCode::kPushLiteral:
        stack[k] = literals_[in.a];
        break;
      case OpCode::kLoadInput: {
        const size_t slot = static_cast<size_t>(in.a);
        if (ctx.batch != nullptr) {
          if (slot >= ctx.batch->num_cols()) {
            return Status::Internal("input column out of range");
          }
          stack[k] = ctx.batch->ValueAt(ctx.row, slot);
        } else if (ctx.input != nullptr && slot < ctx.input->size()) {
          stack[k] = ctx.input->at(slot);
        } else {
          return Status::Internal("input tuple unavailable");
        }
        break;
      }
      case OpCode::kLoadGroupBy: {
        const size_t slot = static_cast<size_t>(in.a);
        if (ctx.key_cols != nullptr) {
          if (slot >= ctx.num_key_cols) {
            return Status::Internal("group key column out of range");
          }
          const VecCol& col = *ctx.key_cols[slot];
          stack[k] = MaterializeRawValue(col.type[ctx.row], col.raw[ctx.row]);
        } else if (ctx.group_key != nullptr && slot < ctx.group_key->size()) {
          stack[k] = ctx.group_key->at(slot);
        } else {
          return Status::Internal("group key unavailable");
        }
        break;
      }
      case OpCode::kLoadAgg:
        if (ctx.aggregates == nullptr ||
            in.a >= static_cast<int32_t>(ctx.aggregates->size())) {
          return Status::Internal("aggregate value unavailable");
        }
        stack[k] = (*ctx.aggregates)[in.a];
        break;
      case OpCode::kLoadSuperAgg:
        if (ctx.superaggs == nullptr ||
            in.a >= static_cast<int32_t>(ctx.superaggs->size())) {
          return Status::Internal("superaggregate value unavailable");
        }
        stack[k] = (*ctx.superaggs)[in.a];
        break;
      default:
        return Status::Internal("unhandled opcode");  // unreachable by shape
    }
  }
  Value v;
  if (f.is_sfun) {
    if (ctx.sfun_states == nullptr || f.state_slot < 0 ||
        static_cast<size_t>(f.state_slot) >= ctx.num_sfun_states) {
      return Status::Internal("stateful function called without live state");
    }
    auto* def = static_cast<const SfunDef*>(f.fn);
    if (obs::kStatsEnabled && ctx.sfun_calls != nullptr) {
      ++*ctx.sfun_calls;
    }
    v = def->call(ctx.sfun_states[f.state_slot], stack,
                  static_cast<size_t>(f.nargs));
  } else {
    auto* def = static_cast<const ScalarFunctionDef*>(f.fn);
    STREAMOP_ASSIGN_OR_RETURN(v, def->fn(stack, static_cast<size_t>(f.nargs)));
  }
  if (f.cmp_literal >= 0) {
    return EvalBinaryValues(BinaryOp::kEq, v, literals_[f.cmp_literal]);
  }
  return v;
}

Result<Value> ExprProgram::EvalRowOn(const RowContext& ctx,
                                     Value* stack) const {
  size_t sp = 0;
  size_t pc = 0;
  const size_t n = code_.size();
  while (pc < n) {
    const Instr& in = code_[pc];
    switch (in.op) {
      case OpCode::kPushLiteral:
        stack[sp++] = literals_[in.a];
        break;

      case OpCode::kLoadInput: {
        const size_t slot = static_cast<size_t>(in.a);
        if (ctx.batch != nullptr) {
          if (slot >= ctx.batch->num_cols()) {
            return Status::Internal("input column out of range");
          }
          stack[sp++] = ctx.batch->ValueAt(ctx.row, slot);
        } else if (ctx.input != nullptr && slot < ctx.input->size()) {
          stack[sp++] = ctx.input->at(slot);
        } else {
          return Status::Internal("input tuple unavailable");
        }
        break;
      }

      case OpCode::kLoadGroupBy: {
        const size_t slot = static_cast<size_t>(in.a);
        if (ctx.key_cols != nullptr) {
          if (slot >= ctx.num_key_cols) {
            return Status::Internal("group key column out of range");
          }
          const VecCol& col = *ctx.key_cols[slot];
          stack[sp++] =
              MaterializeRawValue(col.type[ctx.row], col.raw[ctx.row]);
        } else if (ctx.group_key != nullptr &&
                   slot < ctx.group_key->size()) {
          stack[sp++] = ctx.group_key->at(slot);
        } else {
          return Status::Internal("group key unavailable");
        }
        break;
      }

      case OpCode::kLoadAgg:
        if (ctx.aggregates == nullptr ||
            in.a >= static_cast<int32_t>(ctx.aggregates->size())) {
          return Status::Internal("aggregate value unavailable");
        }
        stack[sp++] = (*ctx.aggregates)[in.a];
        break;

      case OpCode::kLoadSuperAgg:
        if (ctx.superaggs == nullptr ||
            in.a >= static_cast<int32_t>(ctx.superaggs->size())) {
          return Status::Internal("superaggregate value unavailable");
        }
        stack[sp++] = (*ctx.superaggs)[in.a];
        break;

      case OpCode::kNot:
        stack[sp - 1] = Value::Bool(!stack[sp - 1].AsBool());
        break;
      case OpCode::kNeg:
        stack[sp - 1] = EvalUnaryValue(UnaryOp::kNeg, stack[sp - 1]);
        break;

      case OpCode::kAndProbe:
        if (!stack[--sp].AsBool()) {
          stack[sp++] = Value::Bool(false);
          pc = static_cast<size_t>(in.a);
          continue;
        }
        break;
      case OpCode::kOrProbe:
        if (stack[--sp].AsBool()) {
          stack[sp++] = Value::Bool(true);
          pc = static_cast<size_t>(in.a);
          continue;
        }
        break;
      case OpCode::kAndEnd:
      case OpCode::kOrEnd:
        stack[sp - 1] = Value::Bool(stack[sp - 1].AsBool());
        break;

      case OpCode::kScalarCall: {
        const size_t nargs = static_cast<size_t>(in.a);
        // Postfix layout: the arguments already sit contiguously on top of
        // the stack — call straight into them, no marshaling.
        auto* def = static_cast<const ScalarFunctionDef*>(in.fn);
        STREAMOP_ASSIGN_OR_RETURN(Value v,
                                  def->fn(&stack[sp - nargs], nargs));
        sp -= nargs;
        stack[sp++] = std::move(v);
        break;
      }

      case OpCode::kSfunCall: {
        const size_t nargs = static_cast<size_t>(in.a);
        if (ctx.sfun_states == nullptr || in.b < 0 ||
            static_cast<size_t>(in.b) >= ctx.num_sfun_states) {
          return Status::Internal(
              "stateful function called without live state");
        }
        auto* def = static_cast<const SfunDef*>(in.fn);
        void* state = ctx.sfun_states[in.b];
        if (obs::kStatsEnabled && ctx.sfun_calls != nullptr) {
          ++*ctx.sfun_calls;
        }
        Value v = def->call(state, &stack[sp - nargs], nargs);
        sp -= nargs;
        stack[sp++] = std::move(v);
        break;
      }

      default: {  // binary comparison / arithmetic
        BinaryOp bop;
        switch (in.op) {
          case OpCode::kAdd: bop = BinaryOp::kAdd; break;
          case OpCode::kSub: bop = BinaryOp::kSub; break;
          case OpCode::kMul: bop = BinaryOp::kMul; break;
          case OpCode::kDiv: bop = BinaryOp::kDiv; break;
          case OpCode::kMod: bop = BinaryOp::kMod; break;
          case OpCode::kEq: bop = BinaryOp::kEq; break;
          case OpCode::kNe: bop = BinaryOp::kNe; break;
          case OpCode::kLt: bop = BinaryOp::kLt; break;
          case OpCode::kLe: bop = BinaryOp::kLe; break;
          case OpCode::kGt: bop = BinaryOp::kGt; break;
          case OpCode::kGe: bop = BinaryOp::kGe; break;
          default:
            return Status::Internal("unhandled opcode");
        }
        STREAMOP_ASSIGN_OR_RETURN(
            Value v, EvalBinaryValues(bop, stack[sp - 2], stack[sp - 1]));
        sp -= 2;
        stack[sp++] = std::move(v);
        break;
      }
    }
    ++pc;
  }
  if (sp != 1) return Status::Internal("program left malformed stack");
  return std::move(stack[0]);
}

// ---------------------------------------------------------------------------
// Batch mode

namespace {

/// Per-lane slow path for a binary op: materialize both operands and run
/// the shared kernel, so odd type combinations stay bit-identical to the
/// tree walk.
Status SlowBinaryLane(BinaryOp op, const ColRef& l, const ColRef& r,
                      size_t i, VecCol* out,
                      std::deque<std::string>* owned) {
  Value lv = LaneValue(l, i);
  Value rv = LaneValue(r, i);
  STREAMOP_ASSIGN_OR_RETURN(Value v, EvalBinaryValues(op, lv, rv));
  WriteLane(out, i, v, owned);
  return Status::OK();
}

/// Column-at-a-time binary op over the masked lanes. Fast lanes: uint/uint
/// (replicating the evaluator's unsigned arithmetic exactly, including the
/// underflow-to-signed SUB) and string-free comparisons via double
/// promotion (exactly CompareValues' fallback). Everything else drops to
/// the per-lane slow path.
Status EvalBinaryBatch(OpCode opcode, BinaryOp op, const ColRef& l,
                       const ColRef& r, const uint8_t* mask, size_t n,
                       VecCol* out, std::deque<std::string>* owned) {
  const bool is_cmp = opcode >= OpCode::kEq && opcode <= OpCode::kGe;
  for (size_t i = 0; i < n; ++i) {
    if (!mask[i]) {
      ClearLane(out, i);
      continue;
    }
    const uint8_t lt = LaneType(l, i);
    const uint8_t rt = LaneType(r, i);
    if (lt == kUIntTag && rt == kUIntTag) {
      const uint64_t a = LaneRaw(l, i);
      const uint64_t b = LaneRaw(r, i);
      uint64_t res;
      uint8_t tag = kUIntTag;
      switch (opcode) {
        case OpCode::kAdd:
          res = a + b;
          break;
        case OpCode::kSub:
          // Underflow switches to signed, as the evaluator does for
          // timestamp deltas.
          if (b > a) {
            res = static_cast<uint64_t>(static_cast<int64_t>(a) -
                                        static_cast<int64_t>(b));
            tag = kIntTag;
          } else {
            res = a - b;
          }
          break;
        case OpCode::kMul:
          res = a * b;
          break;
        case OpCode::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          res = a / b;
          break;
        case OpCode::kMod:
          if (b == 0) return Status::InvalidArgument("modulo by zero");
          res = a % b;
          break;
        case OpCode::kEq:
          res = a == b;
          tag = kBoolTag;
          break;
        case OpCode::kNe:
          res = a != b;
          tag = kBoolTag;
          break;
        case OpCode::kLt:
          res = a < b;
          tag = kBoolTag;
          break;
        case OpCode::kLe:
          res = a <= b;
          tag = kBoolTag;
          break;
        case OpCode::kGt:
          res = a > b;
          tag = kBoolTag;
          break;
        case OpCode::kGe:
          res = a >= b;
          tag = kBoolTag;
          break;
        default:
          return Status::Internal("unhandled opcode");
      }
      out->raw[i] = res;
      out->type[i] = tag;
      continue;
    }
    if (is_cmp && lt != kStringTag && rt != kStringTag) {
      // CompareValues' non-exact branch: both sides through AsDouble.
      const double a = RawAsDouble(lt, LaneRaw(l, i));
      const double b = RawAsDouble(rt, LaneRaw(r, i));
      // Matches bool/bool exact compare too: 0/1 promote losslessly.
      int c = a < b ? -1 : (a > b ? 1 : 0);
      bool res;
      switch (opcode) {
        case OpCode::kEq: res = c == 0; break;
        case OpCode::kNe: res = c != 0; break;
        case OpCode::kLt: res = c < 0; break;
        case OpCode::kLe: res = c <= 0; break;
        case OpCode::kGt: res = c > 0; break;
        default: res = c >= 0; break;  // kGe
      }
      out->raw[i] = res ? 1 : 0;
      out->type[i] = kBoolTag;
      continue;
    }
    if (!is_cmp && IsNumericTag(lt) && IsNumericTag(rt) &&
        (lt == kDoubleTag || rt == kDoubleTag)) {
      // Arith's double branch (promotion to double when either side is).
      const double a = RawAsDouble(lt, LaneRaw(l, i));
      const double b = RawAsDouble(rt, LaneRaw(r, i));
      double res;
      switch (opcode) {
        case OpCode::kAdd:
          res = a + b;
          break;
        case OpCode::kSub:
          res = a - b;
          break;
        case OpCode::kMul:
          res = a * b;
          break;
        case OpCode::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          res = a / b;
          break;
        default:  // kMod
          if (b == 0.0) return Status::InvalidArgument("modulo by zero");
          res = std::fmod(a, b);
          break;
      }
      out->raw[i] = std::bit_cast<uint64_t>(res);
      out->type[i] = kDoubleTag;
      continue;
    }
    STREAMOP_RETURN_NOT_OK(SlowBinaryLane(op, l, r, i, out, owned));
  }
  return Status::OK();
}

}  // namespace

Status ExprProgram::EvalBatch(const BatchContext& ctx, BatchScratch* scratch,
                              VecCol* out) const {
  const TupleBatch& batch = *ctx.batch;
  const size_t n = batch.num_rows();
  if (scratch->slots.size() < max_stack_) scratch->slots.resize(max_stack_);
  if (scratch->masks.size() < max_masks_) scratch->masks.resize(max_masks_);
  for (size_t s = 0; s < max_stack_; ++s) {
    scratch->slots[s].raw.resize(n);
    scratch->slots[s].type.resize(n);
  }

  ColRef refs[kMaxRowStack];
  const uint8_t* mask_refs[kMaxMaskDepth + 1];
  size_t sp = 0;
  size_t mtop = 0;  // index of current mask in mask_refs
  mask_refs[0] = ctx.mask != nullptr ? ctx.mask : batch.selection();

  auto slot_ref = [&](size_t s) -> ColRef {
    VecCol& col = scratch->slots[s];
    return ColRef{col.raw.data(), col.type.data(), 1, static_cast<int>(s)};
  };

  size_t pc = 0;
  const size_t ninstr = code_.size();
  while (pc < ninstr) {
    const Instr& in = code_[pc];
    const uint8_t* mask = mask_refs[mtop];
    switch (in.op) {
      case OpCode::kPushLiteral:
        refs[sp++] = ColRef{literal_raw_.data() + in.a,
                            literal_type_.data() + in.a, 0, -1};
        break;

      case OpCode::kLoadInput:
        if (static_cast<size_t>(in.a) >= batch.num_cols()) {
          return Status::Internal("input column out of range");
        }
        refs[sp++] = ColRef{batch.raw(in.a), batch.type(in.a), 1, -1};
        break;

      case OpCode::kLoadGroupBy: {
        if (ctx.key_cols == nullptr ||
            static_cast<size_t>(in.a) >= ctx.num_key_cols) {
          return Status::Internal("group key columns unavailable");
        }
        const VecCol& col = *ctx.key_cols[in.a];
        refs[sp++] = ColRef{col.raw.data(), col.type.data(), 1, -1};
        break;
      }

      case OpCode::kLoadAgg:
      case OpCode::kLoadSuperAgg:
      case OpCode::kSfunCall:
        return Status::Internal("non-batchable opcode in batch mode");

      case OpCode::kNot: {
        const ColRef l = refs[sp - 1];
        VecCol& dst = scratch->slots[sp - 1];
        for (size_t i = 0; i < n; ++i) {
          if (!mask[i]) {
            ClearLane(&dst, i);
            continue;
          }
          dst.raw[i] = RawValueAsBool(LaneType(l, i), LaneRaw(l, i)) ? 0 : 1;
          dst.type[i] = kBoolTag;
        }
        refs[sp - 1] = slot_ref(sp - 1);
        break;
      }

      case OpCode::kNeg: {
        const ColRef l = refs[sp - 1];
        VecCol& dst = scratch->slots[sp - 1];
        for (size_t i = 0; i < n; ++i) {
          if (!mask[i]) {
            ClearLane(&dst, i);
            continue;
          }
          const uint8_t t = LaneType(l, i);
          if (t == kDoubleTag) {
            dst.raw[i] = std::bit_cast<uint64_t>(
                -std::bit_cast<double>(LaneRaw(l, i)));
            dst.type[i] = kDoubleTag;
          } else {
            WriteLane(&dst, i,
                      EvalUnaryValue(UnaryOp::kNeg, LaneValue(l, i)),
                      &scratch->owned);
          }
        }
        refs[sp - 1] = slot_ref(sp - 1);
        break;
      }

      case OpCode::kAndProbe:
      case OpCode::kOrProbe: {
        const bool is_and = in.op == OpCode::kAndProbe;
        const ColRef l = refs[--sp];
        std::vector<uint8_t>& sub = scratch->masks[mtop];
        sub.resize(n);
        size_t active = 0;
        for (size_t i = 0; i < n; ++i) {
          const bool truthy =
              mask[i] && RawValueAsBool(LaneType(l, i), LaneRaw(l, i));
          // AND evaluates the rhs where the lhs held; OR where it failed.
          const uint8_t live = mask[i] && (is_and ? truthy : !truthy);
          sub[i] = live;
          active += live;
        }
        if (active == 0) {
          // Every masked lane short-circuits: push the constant result and
          // jump past the matching end opcode.
          VecCol& dst = scratch->slots[sp];
          const uint64_t res = is_and ? 0 : 1;
          for (size_t i = 0; i < n; ++i) {
            if (!mask[i]) {
              ClearLane(&dst, i);
              continue;
            }
            dst.raw[i] = res;
            dst.type[i] = kBoolTag;
          }
          refs[sp] = slot_ref(sp);
          ++sp;
          pc = static_cast<size_t>(in.a);
          continue;
        }
        mask_refs[++mtop] = sub.data();
        break;
      }

      case OpCode::kAndEnd:
      case OpCode::kOrEnd: {
        const bool is_and = in.op == OpCode::kAndEnd;
        const ColRef r = refs[sp - 1];
        const uint8_t* sub = mask_refs[mtop--];
        const uint8_t* outer = mask_refs[mtop];
        VecCol& dst = scratch->slots[sp - 1];
        for (size_t i = 0; i < n; ++i) {
          if (!outer[i]) {
            ClearLane(&dst, i);
            continue;
          }
          bool res;
          if (sub[i]) {
            res = RawValueAsBool(LaneType(r, i), LaneRaw(r, i));
          } else {
            // Lane short-circuited at the probe.
            res = !is_and;
          }
          dst.raw[i] = res ? 1 : 0;
          dst.type[i] = kBoolTag;
        }
        refs[sp - 1] = slot_ref(sp - 1);
        break;
      }

      case OpCode::kScalarCall: {
        const size_t nargs = static_cast<size_t>(in.a);
        auto* def = static_cast<const ScalarFunctionDef*>(in.fn);
        const size_t base = sp - nargs;
        VecCol& dst = scratch->slots[base];
        Value argv[kMaxCallArgs];
        // The destination slot may back one of the argument refs; read all
        // argument lanes before writing the output lane, per lane.
        for (size_t i = 0; i < n; ++i) {
          if (!mask[i]) {
            ClearLane(&dst, i);
            continue;
          }
          for (size_t a = 0; a < nargs; ++a) {
            argv[a] = LaneValue(refs[base + a], i);
          }
          Result<Value> v = def->fn(argv, nargs);
          STREAMOP_RETURN_NOT_OK(v.status());
          WriteLane(&dst, i, *v, &scratch->owned);
        }
        sp = base;
        refs[sp] = slot_ref(sp);
        ++sp;
        break;
      }

      default: {  // binary comparison / arithmetic
        BinaryOp bop;
        switch (in.op) {
          case OpCode::kAdd: bop = BinaryOp::kAdd; break;
          case OpCode::kSub: bop = BinaryOp::kSub; break;
          case OpCode::kMul: bop = BinaryOp::kMul; break;
          case OpCode::kDiv: bop = BinaryOp::kDiv; break;
          case OpCode::kMod: bop = BinaryOp::kMod; break;
          case OpCode::kEq: bop = BinaryOp::kEq; break;
          case OpCode::kNe: bop = BinaryOp::kNe; break;
          case OpCode::kLt: bop = BinaryOp::kLt; break;
          case OpCode::kLe: bop = BinaryOp::kLe; break;
          case OpCode::kGt: bop = BinaryOp::kGt; break;
          case OpCode::kGe: bop = BinaryOp::kGe; break;
          default:
            return Status::Internal("unhandled opcode");
        }
        const ColRef l = refs[sp - 2];
        const ColRef r = refs[sp - 1];
        VecCol& dst = scratch->slots[sp - 2];
        STREAMOP_RETURN_NOT_OK(EvalBinaryBatch(in.op, bop, l, r, mask, n,
                                               &dst, &scratch->owned));
        --sp;
        refs[sp - 1] = slot_ref(sp - 1);
        break;
      }
    }
    ++pc;
  }

  if (sp != 1) return Status::Internal("program left malformed stack");
  // Hand the result to the caller: swap out a slot-backed column, copy a
  // borrowed (input / literal) one.
  const ColRef res = refs[0];
  if (res.slot >= 0) {
    out->raw.swap(scratch->slots[res.slot].raw);
    out->type.swap(scratch->slots[res.slot].type);
    return Status::OK();
  }
  out->raw.resize(n);
  out->type.resize(n);
  const uint8_t* mask = mask_refs[0];
  for (size_t i = 0; i < n; ++i) {
    if (!mask[i]) {
      ClearLane(out, i);
      continue;
    }
    out->raw[i] = LaneRaw(res, i);
    out->type[i] = LaneType(res, i);
  }
  return Status::OK();
}

}  // namespace streamop
