#include "expr/aggregate.h"

#include "common/string_util.h"

namespace streamop {

bool LookupAggregateKind(const std::string& name, AggregateKind* kind) {
  struct Entry {
    const char* name;
    AggregateKind kind;
  };
  static constexpr Entry kEntries[] = {
      {"sum", AggregateKind::kSum},   {"count", AggregateKind::kCount},
      {"min", AggregateKind::kMin},   {"max", AggregateKind::kMax},
      {"avg", AggregateKind::kAvg},   {"first", AggregateKind::kFirst},
      {"last", AggregateKind::kLast}, {"quantile", AggregateKind::kQuantile},
      {"median", AggregateKind::kQuantile},
  };
  for (const Entry& e : kEntries) {
    if (EqualsIgnoreCase(e.name, name)) {
      *kind = e.kind;
      return true;
    }
  }
  return false;
}

bool ValueLess(const Value& v1, const Value& v2) {
  if (v1.type() == FieldType::kString && v2.type() == FieldType::kString) {
    return v1.string_value() < v2.string_value();
  }
  if (v1.type() == FieldType::kUInt && v2.type() == FieldType::kUInt) {
    return v1.uint_value() < v2.uint_value();
  }
  if (v1.type() == FieldType::kInt && v2.type() == FieldType::kInt) {
    return v1.int_value() < v2.int_value();
  }
  return v1.AsDouble() < v2.AsDouble();
}

void AggregateAccumulator::Update(const Value& v, double weight) {
  ++count_;
  weight_sum_ += weight;
  if (weight != 1.0) weighted_ = true;
  switch (kind_) {
    case AggregateKind::kCount:
      break;
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      if (v.type() == FieldType::kUInt && !weighted_) {
        sum_u_ += v.uint_value();
      } else {
        all_uint_ = false;
      }
      sum_d_ += weight * v.AsDouble();
      break;
    case AggregateKind::kMin:
      if (!has_value_ || ValueLess(v, extremum_)) extremum_ = v;
      has_value_ = true;
      break;
    case AggregateKind::kMax:
      if (!has_value_ || ValueLess(extremum_, v)) extremum_ = v;
      has_value_ = true;
      break;
    case AggregateKind::kFirst:
      if (!has_value_) extremum_ = v;
      has_value_ = true;
      break;
    case AggregateKind::kLast:
      extremum_ = v;
      has_value_ = true;
      break;
    case AggregateKind::kQuantile:
      if (sketch_ == nullptr) {
        sketch_ = std::make_unique<GkQuantileSketch>(0.005);
      }
      sketch_->Insert(v.AsDouble());
      break;
  }
}

Status AggregateAccumulator::Subtract(const Value& v) {
  switch (kind_) {
    case AggregateKind::kCount:
      if (count_ > 0) --count_;
      // Weighted removal: the caller hands the (weighted) shadow total.
      if (weighted_) weight_sum_ -= v.AsDouble();
      return Status::OK();
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      if (count_ > 0) --count_;
      if (v.type() == FieldType::kUInt && !weighted_) {
        sum_u_ -= v.uint_value();
      } else {
        all_uint_ = false;
      }
      sum_d_ -= v.AsDouble();
      return Status::OK();
    default:
      return Status::Unimplemented(
          "aggregate is not subtractable (min/max/first/last/quantile)");
  }
}

void AggregateAccumulator::Merge(const AggregateAccumulator& other) {
  weight_sum_ += other.weight_sum_;
  weighted_ = weighted_ || other.weighted_;
  switch (kind_) {
    case AggregateKind::kCount:
      count_ += other.count_;
      break;
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      count_ += other.count_;
      sum_u_ += other.sum_u_;
      sum_d_ += other.sum_d_;
      all_uint_ = all_uint_ && other.all_uint_;
      if (weighted_) all_uint_ = false;
      break;
    case AggregateKind::kMin:
      if (other.has_value_ &&
          (!has_value_ || ValueLess(other.extremum_, extremum_))) {
        extremum_ = other.extremum_;
        has_value_ = true;
      }
      count_ += other.count_;
      break;
    case AggregateKind::kMax:
      if (other.has_value_ &&
          (!has_value_ || ValueLess(extremum_, other.extremum_))) {
        extremum_ = other.extremum_;
        has_value_ = true;
      }
      count_ += other.count_;
      break;
    case AggregateKind::kFirst:
      if (!has_value_ && other.has_value_) {
        extremum_ = other.extremum_;
        has_value_ = true;
      }
      count_ += other.count_;
      break;
    case AggregateKind::kLast:
      if (other.has_value_) {
        extremum_ = other.extremum_;
        has_value_ = true;
      }
      count_ += other.count_;
      break;
    case AggregateKind::kQuantile:
      // GK summaries are not merged here; re-accumulate instead.
      count_ += other.count_;
      break;
  }
}

Value AggregateAccumulator::Final() const {
  switch (kind_) {
    case AggregateKind::kCount:
      // Weighted count is the Horvitz–Thompson estimate sum(1/p_i); it is a
      // real number, so it reports as Double once any weight != 1.0.
      if (weighted_) return Value::Double(weight_sum_);
      return Value::UInt(count_);
    case AggregateKind::kSum:
      if (count_ == 0) return Value::UInt(0);
      return all_uint_ ? Value::UInt(sum_u_) : Value::Double(sum_d_);
    case AggregateKind::kAvg:
      if (count_ == 0) return Value::Double(0.0);
      if (weighted_ && weight_sum_ > 0.0) {
        return Value::Double(sum_d_ / weight_sum_);
      }
      return Value::Double(sum_d_ / static_cast<double>(count_));
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kFirst:
    case AggregateKind::kLast:
      return has_value_ ? extremum_ : Value::Null();
    case AggregateKind::kQuantile:
      if (sketch_ == nullptr) return Value::Null();
      return Value::Double(sketch_->Query(param_));
  }
  return Value::Null();
}

void AggregateAccumulator::SerializeTo(ByteWriter& w) const {
  w.U8(static_cast<uint8_t>(kind_));
  w.U64(count_);
  w.U64(sum_u_);
  w.F64(sum_d_);
  w.Bool(all_uint_);
  w.F64(weight_sum_);
  w.Bool(weighted_);
  extremum_.SerializeTo(w);
  w.Bool(has_value_);
  w.F64(param_);
  w.Bool(sketch_ != nullptr);
  if (sketch_ != nullptr) sketch_->SerializeTo(w);
}

void AggregateAccumulator::RestoreFrom(ByteReader& r) {
  kind_ = static_cast<AggregateKind>(r.U8());
  count_ = r.U64();
  sum_u_ = r.U64();
  sum_d_ = r.F64();
  all_uint_ = r.Bool();
  weight_sum_ = r.F64();
  weighted_ = r.Bool();
  extremum_ = Value::Deserialize(r);
  has_value_ = r.Bool();
  param_ = r.F64();
  if (r.Bool()) {
    sketch_ = std::make_unique<GkQuantileSketch>();
    sketch_->RestoreFrom(r);
  } else {
    sketch_.reset();
  }
}

}  // namespace streamop
