// Expression AST shared by the parser, analyzer and interpreter.
//
// One concrete node type (Expr) carries a kind tag plus the union of
// per-kind fields; the tree is immutable after analysis. The analyzer
// resolves names: column references get a source + slot, function calls are
// classified as scalar, aggregate, superaggregate or stateful, and
// aggregate occurrences are rewritten into slot references.

#ifndef STREAMOP_EXPR_EXPR_H_
#define STREAMOP_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "tuple/value.h"

namespace streamop {

struct ScalarFunctionDef;  // expr/scalar_function.h
struct SfunDef;            // expr/stateful.h

enum class ExprKind {
  kLiteral,
  kColumnRef,     // unresolved name or resolved (source, slot)
  kUnary,
  kBinary,
  kCall,          // unclassified function call (parser output)
  kScalarCall,    // resolved scalar function
  kStatefulCall,  // resolved stateful function (SFUN)
  kAggregateRef,  // slot into the group's aggregate vector
  kSuperAggRef,   // slot into the supergroup's superaggregate vector
};

enum class UnaryOp { kNot, kNeg };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpToString(BinaryOp op);

/// Where a resolved column reference reads from at evaluation time.
enum class RefSource {
  kUnresolved,
  kInput,    // the raw input tuple (schema field slot)
  kGroupBy,  // the computed group-by key (group-by variable slot)
};

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

class Expr {
 public:
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string column_name;
  RefSource source = RefSource::kUnresolved;
  int slot = -1;

  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kAdd;

  // kCall / kScalarCall / kStatefulCall: callee name as written; `is_super`
  // records a '$' suffix (superaggregate syntax). `star_arg` records f(*).
  std::string func_name;
  bool is_super = false;
  bool star_arg = false;
  const ScalarFunctionDef* scalar = nullptr;
  const SfunDef* sfun = nullptr;
  int sfun_state_slot = -1;

  // kAggregateRef / kSuperAggRef
  int agg_slot = -1;

  // Operands / call arguments.
  std::vector<ExprPtr> children;

  // ----- constructors -----
  static ExprPtr Literal(Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args,
                      bool is_super = false);
  static ExprPtr AggregateRef(int slot);
  static ExprPtr SuperAggRef(int slot);
  static ExprPtr GroupByRef(std::string name, int slot);
  static ExprPtr InputRef(std::string name, int slot);

  /// Deep copy (analysis rewrites clones, leaving parser output intact).
  ExprPtr Clone() const;

  /// Unparses for error messages ("sum(len) + 1").
  std::string ToString() const;
};

}  // namespace streamop

#endif  // STREAMOP_EXPR_EXPR_H_
