#include "expr/scalar_function.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace streamop {

namespace {

Result<Value> ScalarUmax(const Value* args, size_t /*num_args*/) {
  // Unsigned max, the paper's UMAX(sum(len), ssthreshold()).
  return Value::UInt(std::max(args[0].AsUInt(), args[1].AsUInt()));
}

Result<Value> ScalarUmin(const Value* args, size_t /*num_args*/) {
  return Value::UInt(std::min(args[0].AsUInt(), args[1].AsUInt()));
}

Result<Value> ScalarDmax(const Value* args, size_t /*num_args*/) {
  return Value::Double(std::max(args[0].AsDouble(), args[1].AsDouble()));
}

Result<Value> ScalarDmin(const Value* args, size_t /*num_args*/) {
  return Value::Double(std::min(args[0].AsDouble(), args[1].AsDouble()));
}

Result<Value> ScalarHash(const Value* args, size_t num_args) {
  // H(x [, seed]): the min-hash hash function, uniform over u64.
  uint64_t seed = num_args > 1 ? args[1].AsUInt() : 0;
  return Value::UInt(SeededHash64(args[0].Hash(), seed));
}

Result<Value> ScalarAbs(const Value* args, size_t /*num_args*/) {
  const Value& v = args[0];
  if (v.type() == FieldType::kDouble) {
    return Value::Double(std::fabs(v.double_value()));
  }
  int64_t i = v.AsInt();
  return Value::Int(i < 0 ? -i : i);
}

Result<Value> ScalarFloat(const Value* args, size_t /*num_args*/) {
  return Value::Double(args[0].AsDouble());
}

Result<Value> ScalarUint(const Value* args, size_t /*num_args*/) {
  return Value::UInt(args[0].AsUInt());
}

Result<Value> ScalarIpStr(const Value* args, size_t /*num_args*/) {
  return Value::String(FormatIpv4(static_cast<uint32_t>(args[0].AsUInt())));
}

Result<Value> ScalarPrio(const Value* args, size_t num_args) {
  // PRIO(w, key [, seed]): priority-sampling priority q = w / u with u a
  // uniform (0,1] variate *derived deterministically from the tuple key*
  // (hash randomness instead of an RNG keeps query replays reproducible).
  double w = args[0].AsDouble();
  uint64_t seed = num_args > 2 ? args[2].AsUInt() : UINT64_C(0x9e3779b9);
  uint64_t h = SeededHash64(args[1].Hash(), seed);
  double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
  return Value::Double(w / u);
}

}  // namespace

ScalarFunctionRegistry::ScalarFunctionRegistry() {
  defs_.push_back({"UMAX", 2, 2, ScalarUmax});
  defs_.push_back({"UMIN", 2, 2, ScalarUmin});
  defs_.push_back({"DMAX", 2, 2, ScalarDmax});
  defs_.push_back({"DMIN", 2, 2, ScalarDmin});
  defs_.push_back({"H", 1, 2, ScalarHash});
  defs_.push_back({"ABS", 1, 1, ScalarAbs});
  defs_.push_back({"FLOAT", 1, 1, ScalarFloat});
  defs_.push_back({"UINT", 1, 1, ScalarUint});
  defs_.push_back({"IPSTR", 1, 1, ScalarIpStr});
  defs_.push_back({"PRIO", 2, 3, ScalarPrio});
}

ScalarFunctionRegistry& ScalarFunctionRegistry::Global() {
  static ScalarFunctionRegistry* instance = new ScalarFunctionRegistry();
  return *instance;
}

Status ScalarFunctionRegistry::Register(ScalarFunctionDef def) {
  if (Find(def.name) != nullptr) {
    return Status::AlreadyExists("scalar function '" + def.name +
                                 "' already registered");
  }
  defs_.push_back(std::move(def));
  return Status::OK();
}

const ScalarFunctionDef* ScalarFunctionRegistry::Find(
    const std::string& name) const {
  for (const auto& d : defs_) {
    if (EqualsIgnoreCase(d.name, name)) return &d;
  }
  return nullptr;
}

}  // namespace streamop
