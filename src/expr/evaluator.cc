#include "expr/evaluator.h"

#include <cmath>

#include "expr/aggregate.h"
#include "expr/scalar_function.h"
#include "expr/stateful.h"

namespace streamop {

namespace {

// Call arguments at or below this count are marshalled on the stack; no
// in-repo builtin takes more (max today is 5, ssample's).
constexpr size_t kInlineArgs = 8;

// Numeric tower for arithmetic: double if either side is double; signed if
// either side is signed; otherwise unsigned.
enum class NumClass { kUInt, kInt, kDouble };

NumClass ClassOf(const Value& v) {
  switch (v.type()) {
    case FieldType::kDouble:
      return NumClass::kDouble;
    case FieldType::kInt:
      return NumClass::kInt;
    default:
      return NumClass::kUInt;
  }
}

NumClass Promote(NumClass a, NumClass b) {
  if (a == NumClass::kDouble || b == NumClass::kDouble) {
    return NumClass::kDouble;
  }
  if (a == NumClass::kInt || b == NumClass::kInt) return NumClass::kInt;
  return NumClass::kUInt;
}

Result<Value> Arith(BinaryOp op, const Value& l, const Value& r) {
  if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
    return Status::TypeError("arithmetic on non-numeric values: " +
                             l.ToString() + " " + BinaryOpToString(op) + " " +
                             r.ToString());
  }
  switch (Promote(ClassOf(l), ClassOf(r))) {
    case NumClass::kDouble: {
      double a = l.AsDouble();
      double b = r.AsDouble();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        case BinaryOp::kMul:
          return Value::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) return Status::InvalidArgument("division by zero");
          return Value::Double(a / b);
        case BinaryOp::kMod:
          if (b == 0.0) return Status::InvalidArgument("modulo by zero");
          return Value::Double(std::fmod(a, b));
        default:
          break;
      }
      break;
    }
    case NumClass::kInt: {
      int64_t a = l.AsInt();
      int64_t b = r.AsInt();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Int(a + b);
        case BinaryOp::kSub:
          return Value::Int(a - b);
        case BinaryOp::kMul:
          return Value::Int(a * b);
        case BinaryOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value::Int(a / b);
        case BinaryOp::kMod:
          if (b == 0) return Status::InvalidArgument("modulo by zero");
          return Value::Int(a % b);
        default:
          break;
      }
      break;
    }
    case NumClass::kUInt: {
      uint64_t a = l.AsUInt();
      uint64_t b = r.AsUInt();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::UInt(a + b);
        case BinaryOp::kSub:
          // Unsigned subtraction that would underflow switches to signed,
          // matching user expectations for timestamp deltas.
          if (b > a) {
            return Value::Int(static_cast<int64_t>(a) -
                              static_cast<int64_t>(b));
          }
          return Value::UInt(a - b);
        case BinaryOp::kMul:
          return Value::UInt(a * b);
        case BinaryOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value::UInt(a / b);
        case BinaryOp::kMod:
          if (b == 0) return Status::InvalidArgument("modulo by zero");
          return Value::UInt(a % b);
        default:
          break;
      }
      break;
    }
  }
  return Status::Internal("unhandled arithmetic operator");
}

}  // namespace

int CompareValues(const Value& a, const Value& b) {
  if (a.type() == FieldType::kString && b.type() == FieldType::kString) {
    int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type() == FieldType::kUInt && b.type() == FieldType::kUInt) {
    uint64_t x = a.uint_value();
    uint64_t y = b.uint_value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == FieldType::kBool && b.type() == FieldType::kBool) {
    int x = a.bool_value() ? 1 : 0;
    int y = b.bool_value() ? 1 : 0;
    return x - y;
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

Result<Value> EvalBinaryValues(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(CompareValues(l, r) == 0);
    case BinaryOp::kNe:
      return Value::Bool(CompareValues(l, r) != 0);
    case BinaryOp::kLt:
      return Value::Bool(CompareValues(l, r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(CompareValues(l, r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(CompareValues(l, r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(CompareValues(l, r) >= 0);
    default:
      return Arith(op, l, r);
  }
}

Value EvalUnaryValue(UnaryOp op, const Value& v) {
  if (op == UnaryOp::kNot) return Value::Bool(!v.AsBool());
  if (v.type() == FieldType::kDouble) return Value::Double(-v.double_value());
  return Value::Int(-v.AsInt());
}

Result<Value> Evaluate(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;

    case ExprKind::kColumnRef: {
      if (expr.source == RefSource::kInput) {
        if (ctx.input == nullptr ||
            expr.slot >= static_cast<int>(ctx.input->size())) {
          return Status::Internal("input tuple unavailable for column '" +
                                  expr.column_name + "'");
        }
        return ctx.input->at(static_cast<size_t>(expr.slot));
      }
      if (expr.source == RefSource::kGroupBy) {
        if (ctx.group_key == nullptr ||
            expr.slot >= static_cast<int>(ctx.group_key->size())) {
          return Status::Internal("group key unavailable for variable '" +
                                  expr.column_name + "'");
        }
        return ctx.group_key->at(static_cast<size_t>(expr.slot));
      }
      return Status::Internal("unresolved column reference '" +
                              expr.column_name + "'");
    }

    case ExprKind::kUnary: {
      STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*expr.children[0], ctx));
      return EvalUnaryValue(expr.uop, v);
    }

    case ExprKind::kBinary: {
      if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
        STREAMOP_ASSIGN_OR_RETURN(Value l, Evaluate(*expr.children[0], ctx));
        bool lb = l.AsBool();
        if (expr.bop == BinaryOp::kAnd && !lb) return Value::Bool(false);
        if (expr.bop == BinaryOp::kOr && lb) return Value::Bool(true);
        STREAMOP_ASSIGN_OR_RETURN(Value r, Evaluate(*expr.children[1], ctx));
        return Value::Bool(r.AsBool());
      }
      STREAMOP_ASSIGN_OR_RETURN(Value l, Evaluate(*expr.children[0], ctx));
      STREAMOP_ASSIGN_OR_RETURN(Value r, Evaluate(*expr.children[1], ctx));
      return EvalBinaryValues(expr.bop, l, r);
    }

    case ExprKind::kScalarCall: {
      // Arguments land in a stack buffer (heap fallback only past
      // kInlineArgs) — the per-tuple hot path makes several calls and must
      // not allocate for each.
      Value inline_args[kInlineArgs];
      std::vector<Value> spill;
      Value* args = inline_args;
      if (expr.children.size() > kInlineArgs) {
        spill.resize(expr.children.size());
        args = spill.data();
      }
      for (size_t i = 0; i < expr.children.size(); ++i) {
        STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*expr.children[i], ctx));
        args[i] = std::move(v);
      }
      return expr.scalar->fn(args, expr.children.size());
    }

    case ExprKind::kStatefulCall: {
      if (ctx.sfun_states == nullptr || expr.sfun_state_slot < 0 ||
          static_cast<size_t>(expr.sfun_state_slot) >= ctx.num_sfun_states) {
        return Status::Internal("stateful function '" + expr.func_name +
                                "' called without live state");
      }
      Value inline_args[kInlineArgs];
      std::vector<Value> spill;
      Value* args = inline_args;
      if (expr.children.size() > kInlineArgs) {
        spill.resize(expr.children.size());
        args = spill.data();
      }
      for (size_t i = 0; i < expr.children.size(); ++i) {
        STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*expr.children[i], ctx));
        args[i] = std::move(v);
      }
      void* state = ctx.sfun_states[expr.sfun_state_slot];
      if (obs::kStatsEnabled && ctx.sfun_calls != nullptr) {
        ++*ctx.sfun_calls;
      }
      return expr.sfun->call(state, args, expr.children.size());
    }

    case ExprKind::kAggregateRef: {
      if (ctx.aggregates == nullptr ||
          expr.agg_slot >= static_cast<int>(ctx.aggregates->size())) {
        return Status::Internal("aggregate value unavailable in this clause");
      }
      return (*ctx.aggregates)[static_cast<size_t>(expr.agg_slot)];
    }

    case ExprKind::kSuperAggRef: {
      if (ctx.superaggs == nullptr ||
          expr.agg_slot >= static_cast<int>(ctx.superaggs->size())) {
        return Status::Internal(
            "superaggregate value unavailable in this clause");
      }
      return (*ctx.superaggs)[static_cast<size_t>(expr.agg_slot)];
    }

    case ExprKind::kCall:
      return Status::Internal("unanalyzed call '" + expr.func_name +
                              "' reached the evaluator");
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvaluatePredicate(const Expr* expr, const EvalContext& ctx) {
  if (expr == nullptr) return true;
  STREAMOP_ASSIGN_OR_RETURN(Value v, Evaluate(*expr, ctx));
  return v.AsBool();
}

}  // namespace streamop
