#include "tuple/tuple.h"

namespace streamop {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

std::string GroupKey::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace streamop
