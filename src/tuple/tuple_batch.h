// TupleBatch: the columnar unit of the batched hot path (DESIGN.md §9).
//
// A fixed-capacity batch of rows stored column-major: per column one packed
// array of 64-bit payloads plus one array of per-lane type tags, exactly
// mirroring Value's tagged-union representation (bool/uint/int/double share
// the raw word; strings store a pointer to a batch-owned copy). A selection
// mask — one byte per row, the classic selection-vector layout — lets
// upstream stages (load shedding, selection nodes) disable lanes without
// compacting; downstream consumers iterate selected lanes only.
//
// The batch is a reusable arena: Clear() resets the row count but keeps
// every column's capacity, so the engine's ring-drain loop fills the same
// batch tens of thousands of times without touching the heap (packet
// streams carry no strings; string values are the only allocating case).

#ifndef STREAMOP_TUPLE_TUPLE_BATCH_H_
#define STREAMOP_TUPLE_TUPLE_BATCH_H_

#include <bit>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/hash.h"
#include "net/packet.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace streamop {

/// Reconstructs a Value from a (type tag, raw payload) lane. Strings are
/// copied out of the batch (the pointer stays owned by the batch / scratch).
inline Value MaterializeRawValue(uint8_t type, uint64_t raw) {
  switch (static_cast<FieldType>(type)) {
    case FieldType::kNull:
      return Value::Null();
    case FieldType::kBool:
      return Value::Bool(raw != 0);
    case FieldType::kUInt:
      return Value::UInt(raw);
    case FieldType::kInt:
      return Value::Int(static_cast<int64_t>(raw));
    case FieldType::kDouble:
      return Value::Double(std::bit_cast<double>(raw));
    case FieldType::kString:
      return Value::String(*reinterpret_cast<const std::string*>(raw));
  }
  return Value::Null();
}

/// Value::Hash() replicated over a (type, raw) lane — must stay bit-equal
/// to it (the batched group probe hashes lanes without materializing).
inline uint64_t RawValueHash(uint8_t type, uint64_t raw) {
  const uint64_t tag = type;
  switch (static_cast<FieldType>(type)) {
    case FieldType::kNull:
      return Mix64(tag);
    case FieldType::kBool:
      return HashCombine(tag, raw != 0 ? 1 : 0);
    case FieldType::kString:
      return HashCombine(
          tag, HashString(*reinterpret_cast<const std::string*>(raw)));
    default:
      // kUInt / kInt / kDouble all hash their 64 payload bits directly.
      return HashCombine(tag, raw);
  }
}

/// Value::operator== replicated against a (type, raw) lane: same type and
/// payload; doubles compare by value (-0 == +0, NaN != NaN).
inline bool RawValueEquals(const Value& v, uint8_t type, uint64_t raw) {
  if (v.type() != static_cast<FieldType>(type)) return false;
  switch (v.type()) {
    case FieldType::kNull:
      return true;
    case FieldType::kString:
      return v.string_value() ==
             *reinterpret_cast<const std::string*>(raw);
    case FieldType::kDouble:
      return v.double_value() == std::bit_cast<double>(raw);
    case FieldType::kBool:
      return v.bool_value() == (raw != 0);
    case FieldType::kUInt:
      return v.uint_value() == raw;
    case FieldType::kInt:
      return v.int_value() == static_cast<int64_t>(raw);
  }
  return false;
}

/// Value::AsBool() replicated over a (type, raw) lane.
inline bool RawValueAsBool(uint8_t type, uint64_t raw) {
  switch (static_cast<FieldType>(type)) {
    case FieldType::kNull:
      return false;
    case FieldType::kDouble:
      return std::bit_cast<double>(raw) != 0.0;
    case FieldType::kString:
      return !reinterpret_cast<const std::string*>(raw)->empty();
    default:  // kBool / kUInt / kInt
      return raw != 0;
  }
}

/// One materialized column: packed 64-bit payloads plus per-lane type tags,
/// the common currency of TupleBatch storage and compiled-expression results
/// (expr/program.h) — sharing the layout lets the operator alias an input
/// column as an expression result without copying. String lanes point into
/// storage owned by whoever produced the column.
struct VecCol {
  std::vector<uint64_t> raw;
  std::vector<uint8_t> type;
};

class TupleBatch {
 public:
  TupleBatch() = default;
  TupleBatch(size_t num_cols, size_t capacity) { Configure(num_cols, capacity); }

  /// (Re)shapes the batch and reserves every column for `capacity` rows.
  void Configure(size_t num_cols, size_t capacity) {
    capacity_ = capacity;
    cols_.resize(num_cols);
    for (Column& c : cols_) {
      c.raw.reserve(capacity);
      c.type.reserve(capacity);
    }
    sel_.reserve(capacity);
    Clear();
  }

  size_t num_cols() const { return cols_.size(); }
  size_t num_rows() const { return num_rows_; }
  size_t capacity() const { return capacity_; }
  bool full() const { return num_rows_ >= capacity_; }
  bool empty() const { return num_rows_ == 0; }

  /// Resets to zero rows, retaining column capacity (and releasing owned
  /// string copies from the previous fill).
  void Clear() {
    for (Column& c : cols_) {
      c.raw.clear();
      c.type.clear();
    }
    sel_.clear();
    num_rows_ = 0;
    if (!owned_.empty()) owned_.clear();
  }

  /// Fast path: appends one packet as the 8-column PKT row (all kUInt),
  /// bypassing per-tuple Value construction entirely.
  void AppendPacket(const PacketRecord& p) {
    const uint64_t vals[8] = {p.ts_sec(), p.ts_ns,    p.src_ip, p.dst_ip,
                              p.src_port, p.dst_port, p.proto,  p.len};
    for (size_t c = 0; c < 8; ++c) {
      cols_[c].raw.push_back(vals[c]);
      cols_[c].type.push_back(static_cast<uint8_t>(FieldType::kUInt));
    }
    sel_.push_back(1);
    ++num_rows_;
  }

  /// Appends one row from a Tuple (generic path; string payloads are copied
  /// into the batch so the source tuple may die immediately).
  void AppendTuple(const Tuple& t) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      AppendRawInto(&cols_[c], t.at(c));
    }
    sel_.push_back(1);
    ++num_rows_;
  }

  /// Appends row `row` of `src` (all columns), copying strings.
  void AppendRowFrom(const TupleBatch& src, size_t row) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      AppendRaw(c, src.cols_[c].type[row], src.cols_[c].raw[row]);
    }
    sel_.push_back(1);
    ++num_rows_;
  }

  /// Appends one (type, raw) lane to column `c` WITHOUT advancing the row
  /// count — callers building a row column-by-column must call FinishRow()
  /// once per row. Strings are copied into batch-owned storage.
  void AppendRaw(size_t c, uint8_t type, uint64_t raw) {
    if (static_cast<FieldType>(type) == FieldType::kString) {
      owned_.push_back(*reinterpret_cast<const std::string*>(raw));
      raw = reinterpret_cast<uint64_t>(&owned_.back());
    }
    cols_[c].raw.push_back(raw);
    cols_[c].type.push_back(type);
  }
  void FinishRow() {
    sel_.push_back(1);
    ++num_rows_;
  }

  // Selection mask (one byte per row; rows append selected).
  bool selected(size_t row) const { return sel_[row] != 0; }
  void set_selected(size_t row, bool on) { sel_[row] = on ? 1 : 0; }
  const uint8_t* selection() const { return sel_.data(); }
  size_t num_selected() const {
    size_t n = 0;
    for (size_t i = 0; i < num_rows_; ++i) n += sel_[i];
    return n;
  }

  // Column access.
  const uint64_t* raw(size_t c) const { return cols_[c].raw.data(); }
  const uint8_t* type(size_t c) const { return cols_[c].type.data(); }
  uint8_t type_at(size_t c, size_t row) const { return cols_[c].type[row]; }
  uint64_t raw_at(size_t c, size_t row) const { return cols_[c].raw[row]; }

  Value ValueAt(size_t row, size_t c) const {
    return MaterializeRawValue(cols_[c].type[row], cols_[c].raw[row]);
  }

  /// Whole-column view, aliasable as a compiled-expression result (an
  /// identity program's output IS its input column).
  const VecCol& col(size_t c) const { return cols_[c]; }

  /// Fills a reused Tuple with row `row` (vector capacity is kept, so the
  /// steady-state fallback path does not allocate for numeric rows).
  void MaterializeRow(size_t row, Tuple* out) const {
    std::vector<Value>& vals = out->mutable_values();
    vals.resize(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) {
      vals[c] = ValueAt(row, c);
    }
  }

 private:
  using Column = VecCol;

  void AppendRawInto(Column* col, const Value& v) {
    uint8_t t = static_cast<uint8_t>(v.type());
    uint64_t raw = 0;
    switch (v.type()) {
      case FieldType::kNull:
        break;
      case FieldType::kBool:
        raw = v.bool_value() ? 1 : 0;
        break;
      case FieldType::kUInt:
        raw = v.uint_value();
        break;
      case FieldType::kInt:
        raw = static_cast<uint64_t>(v.int_value());
        break;
      case FieldType::kDouble:
        raw = std::bit_cast<uint64_t>(v.double_value());
        break;
      case FieldType::kString:
        owned_.push_back(v.string_value());
        raw = reinterpret_cast<uint64_t>(&owned_.back());
        break;
    }
    col->raw.push_back(raw);
    col->type.push_back(t);
  }

  std::vector<Column> cols_;
  std::vector<uint8_t> sel_;
  size_t num_rows_ = 0;
  size_t capacity_ = 0;
  // Owned string payloads (deque: stable addresses under growth). Empty for
  // packet workloads — the zero-allocation steady state never touches it.
  std::deque<std::string> owned_;
};

}  // namespace streamop

#endif  // STREAMOP_TUPLE_TUPLE_BATCH_H_
