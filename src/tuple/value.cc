#include "tuple/value.h"

#include <cstdio>

namespace streamop {

const char* FieldTypeToString(FieldType t) {
  switch (t) {
    case FieldType::kNull:
      return "NULL";
    case FieldType::kBool:
      return "BOOL";
    case FieldType::kUInt:
      return "UINT";
    case FieldType::kInt:
      return "INT";
    case FieldType::kDouble:
      return "DOUBLE";
    case FieldType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::AsDouble() const {
  switch (type()) {
    case FieldType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case FieldType::kUInt:
      return static_cast<double>(uint_value());
    case FieldType::kInt:
      return static_cast<double>(int_value());
    case FieldType::kDouble:
      return double_value();
    default:
      return 0.0;
  }
}

uint64_t Value::AsUInt() const {
  switch (type()) {
    case FieldType::kBool:
      return bool_value() ? 1 : 0;
    case FieldType::kUInt:
      return uint_value();
    case FieldType::kInt:
      return int_value() < 0 ? 0 : static_cast<uint64_t>(int_value());
    case FieldType::kDouble: {
      // Out-of-range casts are UB; clamp (huge thresholds must saturate,
      // not wrap to 0 — UMAX(x, 1e154) silently becoming x bit us once).
      double d = double_value();
      if (!(d > 0.0)) return 0;  // negatives and NaN
      if (d >= 18446744073709551615.0) return UINT64_MAX;
      return static_cast<uint64_t>(d);
    }
    default:
      return 0;
  }
}

int64_t Value::AsInt() const {
  switch (type()) {
    case FieldType::kBool:
      return bool_value() ? 1 : 0;
    case FieldType::kUInt:
      return static_cast<int64_t>(uint_value());
    case FieldType::kInt:
      return int_value();
    case FieldType::kDouble: {
      double d = double_value();
      if (d != d) return 0;  // NaN
      if (d >= 9223372036854775807.0) return INT64_MAX;
      if (d <= -9223372036854775808.0) return INT64_MIN;
      return static_cast<int64_t>(d);
    }
    default:
      return 0;
  }
}

bool Value::AsBool() const {
  switch (type()) {
    case FieldType::kNull:
      return false;
    case FieldType::kBool:
      return bool_value();
    case FieldType::kUInt:
      return uint_value() != 0;
    case FieldType::kInt:
      return int_value() != 0;
    case FieldType::kDouble:
      return double_value() != 0.0;
    case FieldType::kString:
      return !string_value().empty();
  }
  return false;
}

uint64_t Value::Hash() const {
  // Tag the type into the hash so that UInt(1) and Int(1) hash apart,
  // matching operator== semantics.
  uint64_t tag = static_cast<uint64_t>(type());
  switch (type()) {
    case FieldType::kNull:
      return Mix64(tag);
    case FieldType::kBool:
      return HashCombine(tag, bool_value() ? 1 : 0);
    case FieldType::kUInt:
      return HashCombine(tag, uint_value());
    case FieldType::kInt:
      return HashCombine(tag, static_cast<uint64_t>(int_value()));
    case FieldType::kDouble: {
      double d = double_value();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(tag, bits);
    }
    case FieldType::kString:
      return HashCombine(tag, HashString(string_value()));
  }
  return 0;
}

void Value::SerializeTo(ByteWriter& w) const {
  w.U8(static_cast<uint8_t>(type_));
  switch (type_) {
    case FieldType::kNull:
      break;
    case FieldType::kString:
      w.Str(str_);
      break;
    default:
      w.U64(raw_);
      break;
  }
}

Value Value::Deserialize(ByteReader& r) {
  uint8_t tag = r.U8();
  switch (static_cast<FieldType>(tag)) {
    case FieldType::kNull:
      return Value();
    case FieldType::kBool:
      return Value(FieldType::kBool, r.U64());
    case FieldType::kUInt:
      return Value(FieldType::kUInt, r.U64());
    case FieldType::kInt:
      return Value(FieldType::kInt, r.U64());
    case FieldType::kDouble:
      return Value(FieldType::kDouble, r.U64());
    case FieldType::kString:
      return Value(r.Str());
  }
  r.MarkFailed();
  return Value();
}

std::string Value::ToString() const {
  switch (type()) {
    case FieldType::kNull:
      return "NULL";
    case FieldType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case FieldType::kUInt:
      return std::to_string(uint_value());
    case FieldType::kInt:
      return std::to_string(int_value());
    case FieldType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case FieldType::kString:
      return string_value();
  }
  return "?";
}

}  // namespace streamop
