// Value: the dynamically-typed scalar that flows through expressions,
// group-by keys and output tuples. A tagged union over the five field
// types the query engine supports.

#ifndef STREAMOP_TUPLE_VALUE_H_
#define STREAMOP_TUPLE_VALUE_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/serde.h"
#include "common/status.h"

namespace streamop {

/// The scalar types a stream field or expression may have.
enum class FieldType {
  kNull = 0,
  kBool,
  kUInt,    // 64-bit unsigned (timestamps, addresses, lengths)
  kInt,     // 64-bit signed
  kDouble,  // IEEE double
  kString,
};

/// Short name for a field type ("UINT", "STRING", ...).
const char* FieldTypeToString(FieldType t);

/// True for kUInt / kInt / kDouble.
inline bool IsNumeric(FieldType t) {
  return t == FieldType::kUInt || t == FieldType::kInt ||
         t == FieldType::kDouble;
}

/// A dynamically typed scalar. Cheap to copy for all types except kString.
///
/// Implemented as a hand-rolled tagged union rather than std::variant: every
/// non-string alternative lives in one 64-bit word, so copy / move / assign
/// of numeric values — the per-tuple hot path is made of little else — is a
/// branch plus a two-word copy, fully inlined, instead of out-of-line
/// variant visitation.
class Value {
 public:
  Value() noexcept : type_(FieldType::kNull), raw_(0) {}
  ~Value() { DestroyString(); }

  Value(const Value& o) : type_(o.type_) {
    if (type_ == FieldType::kString) {
      new (&str_) std::string(o.str_);
    } else {
      raw_ = o.raw_;
    }
  }
  Value(Value&& o) noexcept : type_(o.type_) {
    if (type_ == FieldType::kString) {
      new (&str_) std::string(std::move(o.str_));
    } else {
      raw_ = o.raw_;
    }
  }
  Value& operator=(const Value& o) {
    if (this == &o) return *this;
    if (type_ == FieldType::kString && o.type_ == FieldType::kString) {
      str_ = o.str_;  // reuse the string's capacity
      return *this;
    }
    DestroyString();
    type_ = o.type_;
    if (type_ == FieldType::kString) {
      new (&str_) std::string(o.str_);
    } else {
      raw_ = o.raw_;
    }
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    if (this == &o) return *this;
    if (type_ == FieldType::kString && o.type_ == FieldType::kString) {
      str_ = std::move(o.str_);
      return *this;
    }
    DestroyString();
    type_ = o.type_;
    if (type_ == FieldType::kString) {
      new (&str_) std::string(std::move(o.str_));
    } else {
      raw_ = o.raw_;
    }
    return *this;
  }

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(FieldType::kBool, b ? 1 : 0); }
  static Value UInt(uint64_t v) { return Value(FieldType::kUInt, v); }
  static Value Int(int64_t v) {
    return Value(FieldType::kInt, static_cast<uint64_t>(v));
  }
  static Value Double(double v) {
    return Value(FieldType::kDouble, std::bit_cast<uint64_t>(v));
  }
  static Value String(std::string s) { return Value(std::move(s)); }

  FieldType type() const { return type_; }

  bool is_null() const { return type_ == FieldType::kNull; }

  // Exact-type accessors; calling with the wrong type is a programming
  // error (asserted in debug builds).
  bool bool_value() const {
    assert(type_ == FieldType::kBool);
    return raw_ != 0;
  }
  uint64_t uint_value() const {
    assert(type_ == FieldType::kUInt);
    return raw_;
  }
  int64_t int_value() const {
    assert(type_ == FieldType::kInt);
    return static_cast<int64_t>(raw_);
  }
  double double_value() const {
    assert(type_ == FieldType::kDouble);
    return std::bit_cast<double>(raw_);
  }
  const std::string& string_value() const {
    assert(type_ == FieldType::kString);
    return str_;
  }

  /// Numeric coercion to double; Null/Bool/String coerce to 0.0, false/true
  /// to 0.0/1.0. Used by aggregates that operate in double space.
  double AsDouble() const;

  /// Numeric coercion to uint64; doubles truncate, negatives clamp to 0.
  uint64_t AsUInt() const;

  /// Numeric coercion to int64.
  int64_t AsInt() const;

  /// Truthiness: false for Null, false Bool, zero numeric, empty string.
  bool AsBool() const;

  /// 64-bit hash suitable for group-table keys.
  uint64_t Hash() const;

  /// Structural equality: same type and same payload. (Cross-numeric-type
  /// comparison is the expression evaluator's job, not Value's.) Doubles
  /// compare by value (NaN != NaN, -0 == +0), matching the old variant.
  bool operator==(const Value& other) const {
    if (type_ != other.type_) return false;
    switch (type_) {
      case FieldType::kString:
        return str_ == other.str_;
      case FieldType::kDouble:
        return double_value() == other.double_value();
      default:
        return raw_ == other.raw_;
    }
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Human-readable rendering for examples and debugging.
  std::string ToString() const;

  /// Checkpoint encoding: type tag byte, then the payload (raw 64-bit word
  /// for scalars, length-prefixed bytes for strings, nothing for null).
  void SerializeTo(ByteWriter& w) const;

  /// Inverse of SerializeTo. An unknown type tag fails the reader and
  /// yields Null.
  static Value Deserialize(ByteReader& r);

 private:
  Value(FieldType t, uint64_t raw) noexcept : type_(t), raw_(raw) {}
  explicit Value(std::string s) : type_(FieldType::kString) {
    new (&str_) std::string(std::move(s));
  }

  void DestroyString() {
    if (type_ == FieldType::kString) str_.~basic_string();
  }

  FieldType type_;
  union {
    uint64_t raw_;  // bool / uint / int / double payload (bit_cast)
    std::string str_;
  };
};

}  // namespace streamop

#endif  // STREAMOP_TUPLE_VALUE_H_
