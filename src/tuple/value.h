// Value: the dynamically-typed scalar that flows through expressions,
// group-by keys and output tuples. A tagged union over the five field
// types the query engine supports.

#ifndef STREAMOP_TUPLE_VALUE_H_
#define STREAMOP_TUPLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/status.h"

namespace streamop {

/// The scalar types a stream field or expression may have.
enum class FieldType {
  kNull = 0,
  kBool,
  kUInt,    // 64-bit unsigned (timestamps, addresses, lengths)
  kInt,     // 64-bit signed
  kDouble,  // IEEE double
  kString,
};

/// Short name for a field type ("UINT", "STRING", ...).
const char* FieldTypeToString(FieldType t);

/// True for kUInt / kInt / kDouble.
inline bool IsNumeric(FieldType t) {
  return t == FieldType::kUInt || t == FieldType::kInt ||
         t == FieldType::kDouble;
}

/// A dynamically typed scalar. Cheap to copy for all types except kString.
class Value {
 public:
  Value() : var_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Var(b)); }
  static Value UInt(uint64_t v) { return Value(Var(v)); }
  static Value Int(int64_t v) { return Value(Var(v)); }
  static Value Double(double v) { return Value(Var(v)); }
  static Value String(std::string s) { return Value(Var(std::move(s))); }

  FieldType type() const {
    switch (var_.index()) {
      case 0:
        return FieldType::kNull;
      case 1:
        return FieldType::kBool;
      case 2:
        return FieldType::kUInt;
      case 3:
        return FieldType::kInt;
      case 4:
        return FieldType::kDouble;
      default:
        return FieldType::kString;
    }
  }

  bool is_null() const { return type() == FieldType::kNull; }

  // Exact-type accessors; calling with the wrong type is a programming
  // error guarded in debug builds by std::get.
  bool bool_value() const { return std::get<bool>(var_); }
  uint64_t uint_value() const { return std::get<uint64_t>(var_); }
  int64_t int_value() const { return std::get<int64_t>(var_); }
  double double_value() const { return std::get<double>(var_); }
  const std::string& string_value() const { return std::get<std::string>(var_); }

  /// Numeric coercion to double; Null/Bool/String coerce to 0.0, false/true
  /// to 0.0/1.0. Used by aggregates that operate in double space.
  double AsDouble() const;

  /// Numeric coercion to uint64; doubles truncate, negatives clamp to 0.
  uint64_t AsUInt() const;

  /// Numeric coercion to int64.
  int64_t AsInt() const;

  /// Truthiness: false for Null, false Bool, zero numeric, empty string.
  bool AsBool() const;

  /// 64-bit hash suitable for group-table keys.
  uint64_t Hash() const;

  /// Structural equality: same type and same payload. (Cross-numeric-type
  /// comparison is the expression evaluator's job, not Value's.)
  bool operator==(const Value& other) const { return var_ == other.var_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Human-readable rendering for examples and debugging.
  std::string ToString() const;

 private:
  using Var =
      std::variant<std::monostate, bool, uint64_t, int64_t, double, std::string>;
  explicit Value(Var v) : var_(std::move(v)) {}
  Var var_;
};

}  // namespace streamop

#endif  // STREAMOP_TUPLE_VALUE_H_
