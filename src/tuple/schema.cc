#include "tuple/schema.h"

#include "common/string_util.h"

namespace streamop {

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<int> Schema::ResolveField(std::string_view name) const {
  int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::AnalysisError("unknown column '" + std::string(name) +
                                 "' in stream '" + name_ + "'");
  }
  return idx;
}

bool Schema::HasOrderedField() const {
  for (const Field& f : fields_) {
    if (f.ordering != Ordering::kNone) return true;
  }
  return false;
}

std::vector<int> Schema::OrderedFieldIndexes() const {
  std::vector<int> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].ordering != Ordering::kNone) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += FieldTypeToString(fields_[i].type);
    if (fields_[i].ordering == Ordering::kIncreasing) out += " increasing";
    if (fields_[i].ordering == Ordering::kDecreasing) out += " decreasing";
  }
  out += ")";
  return out;
}

SchemaPtr MakePacketSchema() {
  return std::make_shared<Schema>(
      "PKT",
      std::vector<Field>{
          // `ts_ns` is the paper's "uts": nanosecond granularity, with its
          // timestamp-ness cast away (not marked ordered) so that grouping
          // by it makes each packet its own group without ending windows.
          {"time", FieldType::kUInt, Ordering::kIncreasing},
          {"ts_ns", FieldType::kUInt, Ordering::kNone},
          {"srcIP", FieldType::kUInt, Ordering::kNone},
          {"destIP", FieldType::kUInt, Ordering::kNone},
          {"srcPort", FieldType::kUInt, Ordering::kNone},
          {"destPort", FieldType::kUInt, Ordering::kNone},
          {"proto", FieldType::kUInt, Ordering::kNone},
          {"len", FieldType::kUInt, Ordering::kNone},
      });
}

}  // namespace streamop
