// Tuple: a row of Values, plus the composite-key helpers the group and
// supergroup hash tables are built on.

#ifndef STREAMOP_TUPLE_TUPLE_H_
#define STREAMOP_TUPLE_TUPLE_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace streamop {

/// A row of dynamically typed values. The schema is carried out-of-band
/// (by the stream / operator), not per-tuple, to keep tuples lean.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

  /// "(v0, v1, ...)" for diagnostics and examples.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// A composite grouping key: the projected group-by (or supergroup) values.
/// Hash/equality are structural, suitable for unordered_map.
class GroupKey {
 public:
  GroupKey() = default;
  explicit GroupKey(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const GroupKey& other) const {
    return values_ == other.values_;
  }

  uint64_t Hash() const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (const Value& v : values_) h = HashCombine(h, v.Hash());
    return h;
  }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

}  // namespace streamop

#endif  // STREAMOP_TUPLE_TUPLE_H_
