// Tuple: a row of Values, plus the composite-key helpers the group and
// supergroup hash tables are built on.

#ifndef STREAMOP_TUPLE_TUPLE_H_
#define STREAMOP_TUPLE_TUPLE_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "tuple/schema.h"
#include "tuple/value.h"

namespace streamop {

/// A row of dynamically typed values. The schema is carried out-of-band
/// (by the stream / operator), not per-tuple, to keep tuples lean.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  Value& at(size_t i) { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  const std::vector<Value>& values() const { return values_; }

  /// Direct access for operators that fill a reused output tuple in place
  /// (clear + push_back keeps the vector's capacity).
  std::vector<Value>& mutable_values() { return values_; }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }

  /// "(v0, v1, ...)" for diagnostics and examples.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// A composite grouping key: the projected group-by (or supergroup) values.
/// Hash/equality are structural, suitable for hash tables.
///
/// The hash is computed once — incrementally as values are appended (or
/// eagerly at construction) — and cached, so table probes and rehashes
/// never re-hash the key's values (string values in particular are hashed
/// exactly once per key construction). The Clear()/Append() pair lets a
/// long-lived scratch key be rebuilt per tuple while reusing its vector
/// capacity: the operator's steady-state path allocates nothing.
class GroupKey {
 public:
  // Seed of the incremental hash fold. Public so the batched hot path can
  // compute lane hashes column-wise (HashCombine fold over RawValueHash)
  // that match Hash() bit-for-bit without materializing a key.
  static constexpr uint64_t kSeed = 0x2545f4914f6cdd1dULL;

  GroupKey() = default;
  explicit GroupKey(std::vector<Value> values) : values_(std::move(values)) {
    hash_ = kHashSeed;
    for (const Value& v : values_) hash_ = HashCombine(hash_, v.Hash());
  }

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// Resets to the empty key, retaining vector capacity (scratch reuse).
  void Clear() {
    values_.clear();
    hash_ = kHashSeed;
  }

  /// Appends one value, folding it into the cached hash.
  void Append(Value v) {
    hash_ = HashCombine(hash_, v.Hash());
    values_.push_back(std::move(v));
  }

  void Reserve(size_t n) { values_.reserve(n); }

  bool operator==(const GroupKey& other) const {
    return hash_ == other.hash_ && values_ == other.values_;
  }

  /// The cached structural hash (computed at construction, O(1) here).
  uint64_t Hash() const { return hash_; }

  std::string ToString() const;

  /// Checkpoint encoding: value count then each value. The cached hash is
  /// not stored — Deserialize recomputes it, so a snapshot stays valid even
  /// if the hash mix ever changes between versions of the binary.
  void SerializeTo(ByteWriter& w) const {
    w.U64(values_.size());
    for (const Value& v : values_) v.SerializeTo(w);
  }
  static GroupKey Deserialize(ByteReader& r) {
    uint64_t n = r.U64();
    if (!r.CheckCount(n, 1)) return GroupKey();
    std::vector<Value> vals;
    vals.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) vals.push_back(Value::Deserialize(r));
    return GroupKey(std::move(vals));
  }

 private:
  // Chosen so that the cached hash equals the historical per-call
  // computation: seeded fold of HashCombine over the value hashes.
  static constexpr uint64_t kHashSeed = kSeed;

  std::vector<Value> values_;
  uint64_t hash_ = kHashSeed;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    return static_cast<size_t>(k.Hash());
  }
};

}  // namespace streamop

#endif  // STREAMOP_TUPLE_TUPLE_H_
