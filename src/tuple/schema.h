// Schema: an ordered list of named, typed fields. Following Gigascope,
// fields can be marked as temporally ordered (increasing / decreasing);
// the query analyzer uses that marking to infer evaluation windows.

#ifndef STREAMOP_TUPLE_SCHEMA_H_
#define STREAMOP_TUPLE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/value.h"

namespace streamop {

/// Temporal ordering property of a stream attribute (Gigascope's
/// "time increasing" annotation).
enum class Ordering {
  kNone = 0,
  kIncreasing,
  kDecreasing,
};

/// One field of a schema.
struct Field {
  std::string name;
  FieldType type = FieldType::kNull;
  Ordering ordering = Ordering::kNone;
};

/// An immutable schema shared by all tuples of a stream.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name, std::vector<Field> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the named field, or -1 if absent (case-insensitive, matching
  /// SQL identifier semantics).
  int FieldIndex(std::string_view name) const;

  /// Resolves a field by name into its index.
  Result<int> ResolveField(std::string_view name) const;

  /// True if any field carries a temporal ordering.
  bool HasOrderedField() const;

  /// Indexes of all temporally ordered fields.
  std::vector<int> OrderedFieldIndexes() const;

  /// "name(field:TYPE, ...)" for diagnostics.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// The canonical packet schema used by the network-monitoring examples and
/// benchmarks: PKT(time increasing, ts_ns increasing, srcIP, destIP,
/// srcPort, destPort, proto, len). `time` is in seconds, `ts_ns` is the
/// nanosecond-granularity timestamp the paper uses ("uts") to make every
/// packet its own group.
SchemaPtr MakePacketSchema();

}  // namespace streamop

#endif  // STREAMOP_TUPLE_SCHEMA_H_
