// Binary serialization primitives for durable engine state (DESIGN.md §10).
//
// Every sampler, SFUN state blob and aggregate accumulator externalizes its
// state through ByteWriter/ByteReader so the checkpoint subsystem (and,
// later, shard-merge) sees one uniform surface. The format is deliberately
// boring: little-endian fixed-width integers, IEEE doubles by bit pattern,
// length-prefixed byte strings. No varints, no alignment, no framing — the
// enclosing snapshot supplies versioning and CRC (engine/checkpoint.h).
//
// Readers use sticky-failure semantics: a read past the end (or a failed
// expectation) poisons the reader, every subsequent read returns zero
// values, and the caller checks ok() once at the end of a restore instead
// of threading a status through every field. Restores must therefore be
// written so that garbage zero values cannot crash mid-restore (sizes are
// bounds-checked before container reserves).

#ifndef STREAMOP_COMMON_SERDE_H_
#define STREAMOP_COMMON_SERDE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace streamop {

/// Append-only little-endian binary encoder backed by a std::string.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 4);
  }

  void U64(uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    buf_.append(b, 8);
  }

  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  /// Length-prefixed (u64) byte string.
  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Raw bytes, no length prefix (caller owns the framing).
  void Raw(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }
  std::string Release() { return std::move(buf_); }

  /// Overwrites 4 bytes at `pos` with `v` (for patching a length/CRC slot
  /// reserved earlier). `pos + 4` must not exceed size().
  void PatchU32(size_t pos, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[pos + static_cast<size_t>(i)] = static_cast<char>(v >> (8 * i));
    }
  }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer with sticky
/// failure: any out-of-bounds read sets failed() and yields zeros from then
/// on. The buffer must outlive the reader.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(std::string_view s) : ByteReader(s.data(), s.size()) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return p_[pos_++];
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{p_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{p_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }

  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  bool Bool() { return U8() != 0; }

  /// Reads a length-prefixed byte string. An inconsistent length (longer
  /// than the remaining buffer) fails the reader and returns "".
  std::string Str() {
    uint64_t n = U64();
    if (!Need(n)) return std::string();
    std::string out(reinterpret_cast<const char*>(p_ + pos_),
                    static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return out;
  }

  /// Copies `n` raw bytes out; zero-fills on underflow.
  void Raw(void* out, size_t n) {
    if (!Need(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
  }

  /// Fails the reader unless at least `n` elements could plausibly follow
  /// (each at least `elem_bytes` wide). Call before reserve()/resize() with
  /// an untrusted count so a corrupt length cannot balloon memory.
  bool CheckCount(uint64_t n, size_t elem_bytes) {
    if (elem_bytes == 0) elem_bytes = 1;
    if (failed_ || n > (size_ - pos_) / elem_bytes) {
      failed_ = true;
      return false;
    }
    return true;
  }

  /// Advances past `n` bytes without reading them (e.g. an opaque blob
  /// whose consumer is absent in this build). Fails on underflow.
  void Skip(size_t n) {
    if (!Need(n)) return;
    pos_ += n;
  }

  bool ok() const { return !failed_; }
  bool failed() const { return failed_; }
  void MarkFailed() { failed_ = true; }
  size_t remaining() const { return failed_ ? 0 : size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  bool Need(uint64_t n) {
    if (failed_ || n > size_ - pos_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* p_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// --- Item hooks for templated samplers -------------------------------------
//
// Templated samplers (ReservoirSampler<T>, LossyCounting<K>, ...) serialize
// their stored items through unqualified SerdeWrite/SerdeRead calls, so ADL
// picks up overloads for user item types; the scalar and composite overloads
// below cover everything the engine itself instantiates.

inline void SerdeWrite(ByteWriter& w, uint64_t v) { w.U64(v); }
inline void SerdeWrite(ByteWriter& w, int64_t v) { w.I64(v); }
inline void SerdeWrite(ByteWriter& w, uint32_t v) { w.U32(v); }
inline void SerdeWrite(ByteWriter& w, double v) { w.F64(v); }
inline void SerdeWrite(ByteWriter& w, const std::string& v) { w.Str(v); }

inline void SerdeRead(ByteReader& r, uint64_t* v) { *v = r.U64(); }
inline void SerdeRead(ByteReader& r, int64_t* v) { *v = r.I64(); }
inline void SerdeRead(ByteReader& r, uint32_t* v) { *v = r.U32(); }
inline void SerdeRead(ByteReader& r, double* v) { *v = r.F64(); }
inline void SerdeRead(ByteReader& r, std::string* v) { *v = r.Str(); }

template <typename A, typename B>
void SerdeWrite(ByteWriter& w, const std::pair<A, B>& p) {
  SerdeWrite(w, p.first);
  SerdeWrite(w, p.second);
}
template <typename A, typename B>
void SerdeRead(ByteReader& r, std::pair<A, B>* p) {
  SerdeRead(r, &p->first);
  SerdeRead(r, &p->second);
}

template <typename T>
void SerdeWriteVector(ByteWriter& w, const std::vector<T>& v) {
  w.U64(v.size());
  for (const T& item : v) SerdeWrite(w, item);
}
template <typename T>
void SerdeReadVector(ByteReader& r, std::vector<T>* v) {
  uint64_t n = r.U64();
  v->clear();
  if (!r.CheckCount(n, 1)) return;
  v->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    T item{};
    SerdeRead(r, &item);
    v->push_back(std::move(item));
  }
}

/// CRC-32C (Castagnoli), the checksum guarding checkpoint snapshots.
/// `seed` chains incremental computation: Crc32c(b, Crc32c(a)) ==
/// Crc32c(a+b).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);
inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

}  // namespace streamop

#endif  // STREAMOP_COMMON_SERDE_H_
