#include "common/random.h"

#include <algorithm>
#include <cassert>

namespace streamop {

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (uint64_t k = 0; k < n; ++k) cdf_[k] /= norm_;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Pcg64& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(uint64_t k) const {
  if (k >= n_) return 0.0;
  return (1.0 / std::pow(static_cast<double>(k + 1), s_)) / norm_;
}

double ChiSquareUniform(const std::vector<uint64_t>& observed) {
  if (observed.empty()) return 0.0;
  uint64_t total = 0;
  for (uint64_t c : observed) total += c;
  double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  if (expected <= 0.0) return 0.0;
  double chi2 = 0.0;
  for (uint64_t c : observed) {
    double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

}  // namespace streamop
