// FlatHashTable: the open-addressing hash table behind the operator's group
// / supergroup / membership tables and the sketch-side maps.
//
// Design (the "hash-once flat table" of the hot-path work):
//   - One contiguous slot array, linear probing, power-of-two capacity,
//     maximum load factor 3/4. No per-node allocation, no bucket chains.
//   - Every slot stores the 64-bit key hash next to the entry. Probes
//     compare hashes before keys, and rehashes reinsert by stored hash, so
//     a key is hashed exactly once on insertion (with GroupKey the hash is
//     additionally cached inside the key itself and never recomputed).
//   - Deletion is tombstone-free backward-shift: the probe chain after the
//     erased slot is compacted in place, so lookups never scan dead slots
//     and load factor never degrades under churn.
//   - clear() destroys the entries but keeps the slot array, so a table
//     that is cleared every window (the §6.4 table swap) serves the next
//     window's burst without rehashing.
//
// Iteration order is the slot order, which depends on hash values and
// insertion history. It is deterministic for a fixed operation sequence but
// NOT insertion order; operator results must never depend on it (the
// operator iterates supergroups in creation order for exactly this reason).
//
// erase(iterator) returns an iterator at the same slot position, which then
// holds either the backward-shifted successor or the next occupied slot.
// Erase-while-iterating therefore never skips a live entry, but an entry
// moved across the array-wrap boundary can be visited twice — callers'
// retention predicates must be idempotent (both in-repo users, lossy
// counting's Prune and distinct sampling's RaiseLevel, are).

#ifndef STREAMOP_COMMON_FLAT_HASH_TABLE_H_
#define STREAMOP_COMMON_FLAT_HASH_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace streamop {

/// Default hash for flat tables: integral keys go through a full-avalanche
/// mix (std::hash is the identity for integers in common stdlibs, which is
/// hostile to open addressing); everything else uses std::hash.
template <typename K>
struct FlatHash {
  size_t operator()(const K& k) const {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return static_cast<size_t>(Mix64(static_cast<uint64_t>(k)));
    } else {
      return std::hash<K>{}(k);
    }
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashTable {
 public:
  using value_type = std::pair<K, V>;

 private:
  struct Slot {
    uint64_t hash = 0;  // 0 == empty; stored hashes are normalized nonzero
    value_type kv{};
  };

  template <bool Const>
  class Iter {
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

   public:
    Iter() = default;
    Iter(SlotPtr slot, SlotPtr end) : slot_(slot), end_(end) { SkipEmpty(); }

    Ref operator*() const { return slot_->kv; }
    Ptr operator->() const { return &slot_->kv; }

    Iter& operator++() {
      ++slot_;
      SkipEmpty();
      return *this;
    }

    bool operator==(const Iter& o) const { return slot_ == o.slot_; }
    bool operator!=(const Iter& o) const { return slot_ != o.slot_; }

    // Conversion iterator -> const_iterator.
    operator Iter<true>() const { return Iter<true>(slot_, end_); }

   private:
    friend class FlatHashTable;
    void SkipEmpty() {
      while (slot_ != end_ && slot_->hash == 0) ++slot_;
    }
    SlotPtr slot_ = nullptr;
    SlotPtr end_ = nullptr;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashTable() = default;
  explicit FlatHashTable(size_t expected_entries) { reserve(expected_entries); }

  FlatHashTable(const FlatHashTable&) = default;
  FlatHashTable& operator=(const FlatHashTable&) = default;

  FlatHashTable(FlatHashTable&& o) noexcept
      : slots_(std::move(o.slots_)), size_(o.size_) {
    o.slots_.clear();
    o.size_ = 0;
  }
  FlatHashTable& operator=(FlatHashTable&& o) noexcept {
    slots_ = std::move(o.slots_);
    size_ = o.size_;
    o.slots_.clear();
    o.size_ = 0;
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  iterator begin() { return iterator(SlotsBegin(), SlotsEnd()); }
  iterator end() { return iterator(SlotsEnd(), SlotsEnd()); }
  const_iterator begin() const {
    return const_iterator(SlotsBegin(), SlotsEnd());
  }
  const_iterator end() const { return const_iterator(SlotsEnd(), SlotsEnd()); }

  /// Pre-sizes the slot array so `expected_entries` fit without rehashing.
  /// Never shrinks.
  void reserve(size_t expected_entries) {
    size_t needed = expected_entries + expected_entries / 3 + 1;  // 4/3 n
    if (needed < kMinCapacity) needed = kMinCapacity;
    size_t cap = kMinCapacity;
    while (cap < needed) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  iterator find(const K& key) {
    size_t i = FindIndex(key);
    return i == kNotFound ? end()
                          : iterator(slots_.data() + i, SlotsEnd());
  }
  const_iterator find(const K& key) const {
    size_t i = FindIndex(key);
    return i == kNotFound ? end()
                          : const_iterator(slots_.data() + i, SlotsEnd());
  }

  size_t count(const K& key) const {
    return FindIndex(key) == kNotFound ? 0 : 1;
  }

  /// Heterogeneous probe: finds the entry whose stored key satisfies
  /// `key_eq` among slots matching `raw_hash` (pre-normalization). Lets
  /// the batched hot path probe with a lane hash and a column-wise key
  /// comparison, without materializing a key object. `raw_hash` MUST equal
  /// hasher_(k) for the key `key_eq` accepts, or the entry will be missed.
  template <typename Pred>
  iterator find_hashed(uint64_t raw_hash, Pred&& key_eq) {
    if (size_ == 0) return end();
    uint64_t h = NormHash(raw_hash);
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && key_eq(slots_[i].kv.first)) {
        return iterator(slots_.data() + i, SlotsEnd());
      }
      i = (i + 1) & mask;
    }
    return end();
  }

  /// Prefetches the home slot of `raw_hash` (pre-normalization, as passed
  /// to find_hashed). The batched hot path issues this a few lanes ahead of
  /// the probe so the slot's cache miss overlaps per-lane work.
  void prefetch_hashed(uint64_t raw_hash) const {
    if (slots_.empty()) return;
    const uint64_t h = NormHash(raw_hash);
    __builtin_prefetch(
        &slots_[static_cast<size_t>(h) & (slots_.size() - 1)]);
  }

  /// Inserts `key` with a value constructed from `args` unless present.
  template <typename KeyArg, typename... Args>
  std::pair<iterator, bool> try_emplace(KeyArg&& key, Args&&... args) {
    GrowIfNeeded();
    uint64_t h = NormHash(hasher_(key));
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && eq_(slots_[i].kv.first, key)) {
        return {iterator(slots_.data() + i, SlotsEnd()), false};
      }
      i = (i + 1) & mask;
    }
    slots_[i].hash = h;
    slots_[i].kv.first = K(std::forward<KeyArg>(key));
    slots_[i].kv.second = V(std::forward<Args>(args)...);
    ++size_;
    return {iterator(slots_.data() + i, SlotsEnd()), true};
  }

  template <typename KeyArg, typename ValArg>
  std::pair<iterator, bool> emplace(KeyArg&& key, ValArg&& value) {
    return try_emplace(std::forward<KeyArg>(key), std::forward<ValArg>(value));
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  /// Erases by key; returns the number of entries removed (0 or 1).
  size_t erase(const K& key) {
    size_t i = FindIndex(key);
    if (i == kNotFound) return 0;
    EraseIndex(i);
    return 1;
  }

  /// Erases the entry at `it`; returns an iterator at the same slot
  /// position (see the header comment for erase-while-iterating semantics).
  iterator erase(iterator it) {
    assert(it.slot_ != nullptr && it.slot_ != SlotsEnd());
    size_t i = static_cast<size_t>(it.slot_ - slots_.data());
    EraseIndex(i);
    return iterator(slots_.data() + i, SlotsEnd());
  }

  /// Destroys all entries; keeps the slot array (capacity) allocated.
  void clear() {
    if (size_ == 0) return;
    for (Slot& s : slots_) {
      if (s.hash != 0) {
        s.hash = 0;
        s.kv = value_type{};
      }
    }
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  Slot* SlotsBegin() { return slots_.data(); }
  Slot* SlotsEnd() { return slots_.data() + slots_.size(); }
  const Slot* SlotsBegin() const { return slots_.data(); }
  const Slot* SlotsEnd() const { return slots_.data() + slots_.size(); }

  /// Hash 0 marks an empty slot, so a real hash of 0 is remapped.
  static uint64_t NormHash(size_t h) {
    uint64_t h64 = static_cast<uint64_t>(h);
    return h64 == 0 ? 0x9e3779b97f4a7c15ULL : h64;
  }

  size_t FindIndex(const K& key) const {
    if (size_ == 0) return kNotFound;
    uint64_t h = NormHash(hasher_(key));
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    while (slots_[i].hash != 0) {
      if (slots_[i].hash == h && eq_(slots_[i].kv.first, key)) return i;
      i = (i + 1) & mask;
    }
    return kNotFound;
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  /// Reinserts every entry into a slot array of `new_cap` (a power of two)
  /// using the stored hashes — keys are never rehashed.
  void Rehash(size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(new_cap);
    size_t mask = new_cap - 1;
    for (Slot& s : old) {
      if (s.hash == 0) continue;
      size_t i = static_cast<size_t>(s.hash) & mask;
      while (slots_[i].hash != 0) i = (i + 1) & mask;
      slots_[i].hash = s.hash;
      slots_[i].kv = std::move(s.kv);
    }
  }

  /// Backward-shift deletion (Knuth 6.4, Algorithm R): scan the contiguous
  /// occupied run after the hole; any entry whose probe path covers the
  /// hole is pulled back into it, leaving no tombstone and no broken chain.
  void EraseIndex(size_t i) {
    size_t mask = slots_.size() - 1;
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].hash == 0) break;
      // The entry at j probes home, home+1, ..., j. It may move into the
      // hole only if the hole lies on that path — i.e. its probe distance
      // reaches at least back to the hole. Entries between their home slot
      // and the hole (home cyclically in (hole, j]) must stay put.
      size_t home = static_cast<size_t>(slots_[j].hash) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole].hash = slots_[j].hash;
        slots_[hole].kv = std::move(slots_[j].kv);
        slots_[j].hash = 0;
        hole = j;
      }
    }
    slots_[hole].hash = 0;
    slots_[hole].kv = value_type{};
    --size_;
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  [[no_unique_address]] Hash hasher_{};
  [[no_unique_address]] Eq eq_{};
};

}  // namespace streamop

#endif  // STREAMOP_COMMON_FLAT_HASH_TABLE_H_
