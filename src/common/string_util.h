// Small string helpers shared by the lexer, error messages and examples.

#ifndef STREAMOP_COMMON_STRING_UTIL_H_
#define STREAMOP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace streamop {

/// Lower-cases ASCII; query keywords are case-insensitive.
std::string AsciiToLower(std::string_view s);

/// True if two ASCII strings compare equal ignoring case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a delimiter; empty pieces are preserved.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Renders a 32-bit IPv4 address in dotted-quad notation ("10.1.2.3").
std::string FormatIpv4(uint32_t addr);

/// Parses dotted-quad IPv4 text; returns false on malformed input.
bool ParseIpv4(std::string_view text, uint32_t* addr);

/// Human-friendly number with thousands separators ("1,234,567").
std::string FormatWithCommas(uint64_t v);

}  // namespace streamop

#endif  // STREAMOP_COMMON_STRING_UTIL_H_
