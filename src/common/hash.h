// 64-bit mixing hashes used throughout the engine: group-table keys,
// min-hash value hashing, and hash combination for composite keys.

#ifndef STREAMOP_COMMON_HASH_H_
#define STREAMOP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace streamop {

/// SplitMix64 finalizer: a full-avalanche bijective mix of a 64-bit word.
/// This is the workhorse for hashing fixed-width values.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an accumulated hash with a new 64-bit value (boost-style but
/// with a 64-bit golden-ratio constant and a remix).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// FNV-1a over bytes, then remixed; used for string values.
inline uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// A seeded hash family: H_seed(x). Distinct seeds give (approximately)
/// independent hash functions, as needed by min-hash signatures.
inline uint64_t SeededHash64(uint64_t x, uint64_t seed) {
  return Mix64(x ^ Mix64(seed));
}

/// Maps a 64-bit hash to a double uniform in [0, 1); convenient for
/// hash-based sampling decisions (e.g., min-hash thresholds).
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace streamop

#endif  // STREAMOP_COMMON_HASH_H_
