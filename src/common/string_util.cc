#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace streamop {

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatIpv4(uint32_t addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

bool ParseIpv4(std::string_view text, uint32_t* addr) {
  uint32_t parts[4] = {0, 0, 0, 0};
  int part = 0;
  bool digit_seen = false;
  for (char c : text) {
    if (c == '.') {
      if (!digit_seen || part >= 3) return false;
      ++part;
      digit_seen = false;
    } else if (c >= '0' && c <= '9') {
      parts[part] = parts[part] * 10 + static_cast<uint32_t>(c - '0');
      if (parts[part] > 255) return false;
      digit_seen = true;
    } else {
      return false;
    }
  }
  if (part != 3 || !digit_seen) return false;
  *addr = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
  return true;
}

std::string FormatWithCommas(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace streamop
