// Deterministic pseudo-random number generation and the heavy-tailed
// distributions used by the synthetic traffic generators.
//
// All experiments in this repo are seeded, so every figure regenerates
// bit-identically. The core generator is PCG64 (O'Neill), chosen for speed,
// statistical quality and a tiny state that copies cheaply into samplers.

#ifndef STREAMOP_COMMON_RANDOM_H_
#define STREAMOP_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/serde.h"

namespace streamop {

/// PCG-XSH-RR 64/32 with 64-bit output composed of two 32-bit draws.
/// Deterministic given the seed; copyable so that samplers can own one.
class Pcg64 {
 public:
  explicit Pcg64(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    Next32();
    state_ += seed;
    Next32();
  }

  /// Uniform 32-bit draw.
  uint32_t Next32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// Uniform 64-bit draw.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next32()) << 32) | Next32();
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns exactly 0, safe for log().
  double NextDoubleOpen() {
    return (static_cast<double>(Next64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (-bound) % bound;
    for (;;) {
      uint64_t r = Next64();
      if (r >= threshold) return r % bound;
    }
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate) {
    return -std::log(NextDoubleOpen()) / rate;
  }

  /// Pareto with shape alpha and minimum xm (heavy-tailed for alpha <= 2).
  double NextPareto(double alpha, double xm) {
    return xm / std::pow(NextDoubleOpen(), 1.0 / alpha);
  }

  /// Standard normal via Box-Muller (one value per call; no caching to keep
  /// the generator state trivially copyable).
  double NextGaussian() {
    double u1 = NextDoubleOpen();
    double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Externalizes the exact stream position (checkpoint/restore): a
  /// restored generator produces the identical draw sequence the original
  /// would have from this point on.
  void SerializeTo(ByteWriter& w) const {
    w.U64(state_);
    w.U64(inc_);
  }
  void RestoreFrom(ByteReader& r) {
    state_ = r.U64();
    inc_ = r.U64();
  }

  /// Geometric: number of failures before the first success, P(success)=p.
  /// Computed in O(1) by inverting the CDF.
  uint64_t NextGeometric(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return UINT64_MAX;
    double g = std::floor(std::log(NextDoubleOpen()) / std::log1p(-p));
    if (g > 9.2e18) return UINT64_MAX;
    return static_cast<uint64_t>(g);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Zipf(s) sampler over {0, 1, ..., n-1} using the inverted-CDF table method:
/// O(n) setup, O(log n) per draw via binary search. Rank 0 is the most
/// frequent item. Used for source/destination address popularity.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// Draws a rank in [0, n).
  uint64_t Sample(Pcg64& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Probability mass of rank k.
  double Pmf(uint64_t k) const;

 private:
  uint64_t n_;
  double s_;
  double norm_;               // generalized harmonic number H_{n,s}
  std::vector<double> cdf_;   // cumulative masses, size n
};

/// Computes the empirical chi-square statistic for observed counts against
/// uniform expectation; helper shared by the statistical property tests.
double ChiSquareUniform(const std::vector<uint64_t>& observed);

}  // namespace streamop

#endif  // STREAMOP_COMMON_RANDOM_H_
