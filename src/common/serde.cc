#include "common/serde.h"

namespace streamop {
namespace {

// Slice-by-one table for CRC-32C (polynomial 0x1EDC6F41, reflected
// 0x82F63B78). Built once; snapshot sizes are kilobytes so table lookups
// are nowhere near the checkpoint cost profile (the fsync is).
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const Crc32cTable table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace streamop
