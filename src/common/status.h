// Status and Result<T>: exception-free error handling, modeled on the
// conventions of Arrow / RocksDB. Every fallible operation in streamop
// returns a Status (or Result<T> when it also produces a value).

#ifndef STREAMOP_COMMON_STATUS_H_
#define STREAMOP_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace streamop {

/// Broad classification of an error. Kept deliberately small; the detailed
/// explanation lives in the message string.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,       // lexical or syntactic error in query text
  kAnalysisError,    // semantically invalid query (bad column, bad supergroup)
  kTypeError,        // expression or value type mismatch
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kIOError,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A Status carries success or an (code, message) error. The OK state is
/// represented by a null rep so that passing OK around is free.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<Rep> rep_;  // null == OK
};

/// Result<T> is either a value or an error Status. Access to the value of a
/// failed Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : var_(std::move(status)) {    // NOLINT implicit
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> var_;
};

// Propagate an error Status from an expression that yields Status.
#define STREAMOP_RETURN_NOT_OK(expr)                  \
  do {                                                \
    ::streamop::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)

// Evaluate an expression yielding Result<T>; on error propagate the Status,
// otherwise bind the value to `lhs`.
#define STREAMOP_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                   \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).value();

#define STREAMOP_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define STREAMOP_ASSIGN_OR_RETURN_CONCAT(x, y) \
  STREAMOP_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define STREAMOP_ASSIGN_OR_RETURN(lhs, expr)                                  \
  STREAMOP_ASSIGN_OR_RETURN_IMPL(                                             \
      STREAMOP_ASSIGN_OR_RETURN_CONCAT(_streamop_result_, __LINE__), lhs, expr)

}  // namespace streamop

#endif  // STREAMOP_COMMON_STATUS_H_
