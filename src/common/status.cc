#include "common/status.h"

namespace streamop {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace streamop
