// QueryNode: one query in the Gigascope-style runtime — either a low-level
// selection node (cheap filter / pre-sampler reading the packet ring
// buffer) or a high-level node running the sampling operator.

#ifndef STREAMOP_ENGINE_QUERY_NODE_H_
#define STREAMOP_ENGINE_QUERY_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sampling_operator.h"
#include "query/analyzer.h"
#include "query/selection_operator.h"

namespace streamop {

class QueryNode {
 public:
  QueryNode(std::string name, const CompiledQuery& query);

  const std::string& name() const { return name_; }

  /// Feeds one tuple; any resulting output rows accumulate internally.
  Status Push(const Tuple& t);

  /// End-of-stream: close the final window (sampling nodes).
  Status Finish();

  /// Removes and returns output rows produced so far.
  std::vector<Tuple> DrainOutput();

  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

  /// Accumulated processing time, maintained by the runtime's stopwatch
  /// (the node itself never reads the clock).
  void AddCpuNanos(uint64_t ns) { cpu_ns_ += ns; }
  uint64_t cpu_nanos() const { return cpu_ns_; }

  bool is_sampling() const { return sampling_ != nullptr; }

  /// Window statistics (sampling nodes only; empty otherwise).
  const std::vector<WindowStats>& window_stats() const;

 private:
  std::string name_;
  std::unique_ptr<SamplingOperator> sampling_;
  std::unique_ptr<SelectionOperator> selection_;
  std::vector<Tuple> output_;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
  uint64_t cpu_ns_ = 0;
};

}  // namespace streamop

#endif  // STREAMOP_ENGINE_QUERY_NODE_H_
