// QueryNode: one query in the Gigascope-style runtime — either a low-level
// selection node (cheap filter / pre-sampler reading the packet ring
// buffer) or a high-level node running the sampling operator.

#ifndef STREAMOP_ENGINE_QUERY_NODE_H_
#define STREAMOP_ENGINE_QUERY_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sampling_operator.h"
#include "obs/metrics.h"
#include "query/analyzer.h"
#include "query/selection_operator.h"

namespace streamop {

class QueryNode {
 public:
  /// `registry` backs the node's metrics (tuple/cpu totals, batch-latency
  /// histogram) and — for sampling nodes — the operator's per-phase metrics,
  /// labelled `node="<name>"`. nullptr uses the process-wide default
  /// registry, so a node is always observable.
  QueryNode(std::string name, const CompiledQuery& query,
            obs::MetricRegistry* registry = nullptr);

  const std::string& name() const { return name_; }

  /// Feeds one tuple; any resulting output rows accumulate internally.
  Status Push(const Tuple& t) { return Push(t, 1.0); }

  /// Weighted variant: under load shedding the runtime passes the
  /// Horvitz–Thompson weight 1/p of the admitted tuple so sampling-node
  /// aggregates stay unbiased. Selection nodes ignore the weight.
  Status Push(const Tuple& t, double weight);

  /// End-of-stream: close the final window (sampling nodes).
  Status Finish();

  /// Removes and returns output rows produced so far.
  std::vector<Tuple> DrainOutput();

  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

  /// Accumulated processing time, maintained by the runtime's stopwatch
  /// (the node itself never reads the clock). Mirrored into the registry
  /// counter so exported snapshots carry per-node CPU.
  void AddCpuNanos(uint64_t ns) {
    cpu_ns_ += ns;
    if (metrics_.enabled()) metrics_.cpu_ns->Add(ns);
  }
  uint64_t cpu_nanos() const { return cpu_ns_; }

  /// Records one consumed batch (size + processing latency) into the
  /// registry-backed histogram; called by the runtime per drained batch.
  void RecordBatch(uint64_t latency_ns) {
    if (metrics_.enabled()) {
      metrics_.batches->Add();
      metrics_.batch_latency_ns->Record(latency_ns);
    }
  }

  const obs::NodeMetrics& metrics() const { return metrics_; }

  bool is_sampling() const { return sampling_ != nullptr; }

  /// Window statistics (sampling nodes only; empty otherwise).
  const std::vector<WindowStats>& window_stats() const;

  /// Late (clamped non-monotonic) tuples seen (sampling nodes only).
  uint64_t late_tuples() const;

 private:
  std::string name_;
  std::unique_ptr<SamplingOperator> sampling_;
  std::unique_ptr<SelectionOperator> selection_;
  std::vector<Tuple> output_;
  // The plain counters below stay authoritative for RunReport — they must
  // survive STREAMOP_NO_STATS builds; the registry-backed metrics_ mirror
  // them for export.
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
  uint64_t cpu_ns_ = 0;
  obs::NodeMetrics metrics_;
};

}  // namespace streamop

#endif  // STREAMOP_ENGINE_QUERY_NODE_H_
