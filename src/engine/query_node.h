// QueryNode: one query in the Gigascope-style runtime — either a low-level
// selection node (cheap filter / pre-sampler reading the packet ring
// buffer) or a high-level node running the sampling operator.

#ifndef STREAMOP_ENGINE_QUERY_NODE_H_
#define STREAMOP_ENGINE_QUERY_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/sampling_operator.h"
#include "obs/metrics.h"
#include "query/analyzer.h"
#include "query/selection_operator.h"

namespace streamop {

class QueryNode {
 public:
  /// `registry` backs the node's metrics (tuple/cpu totals, batch-latency
  /// histogram) and — for sampling nodes — the operator's per-phase metrics,
  /// labelled `node="<name>"`. nullptr uses the process-wide default
  /// registry, so a node is always observable.
  QueryNode(std::string name, const CompiledQuery& query,
            obs::MetricRegistry* registry = nullptr);

  const std::string& name() const { return name_; }

  /// Feeds one tuple; any resulting output rows accumulate internally.
  Status Push(const Tuple& t) { return Push(t, 1.0); }

  /// Weighted variant: under load shedding the runtime passes the
  /// Horvitz–Thompson weight 1/p of the admitted tuple so sampling-node
  /// aggregates stay unbiased. Selection nodes ignore the weight.
  Status Push(const Tuple& t, double weight);

  /// Batched hot path (DESIGN.md §9): feeds every selected lane, in row
  /// order, equivalent to Push() per lane. Sampling nodes accumulate
  /// output rows internally as usual. For selection nodes: with `out` the
  /// admitted, projected lanes land columnar in *out (the caller chains
  /// them into the next node's PushBatch; DrainOutput() stays empty);
  /// without it they are materialized into the internal row output.
  /// `span_ctx` (optional) is the causal span context the runtime threads
  /// from its drain loop to the sampling operator: the caller's shed
  /// probability and row count go down, the id of the window span the batch
  /// fed comes back, so the runtime's ring_drain span can parent under the
  /// window root (obs/span.h). Selection nodes pass it through untouched.
  Status PushBatch(const TupleBatch& batch, double weight = 1.0,
                   TupleBatch* out = nullptr,
                   obs::SpanContext* span_ctx = nullptr);

  /// End-of-stream: close the final window (sampling nodes).
  Status Finish();

  /// Removes and returns output rows produced so far.
  std::vector<Tuple> DrainOutput();

  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

  /// Accumulated processing time, maintained by the runtime's stopwatch
  /// (the node itself never reads the clock). Mirrored into the registry
  /// counter so exported snapshots carry per-node CPU.
  void AddCpuNanos(uint64_t ns) {
    cpu_ns_ += ns;
    if (metrics_.enabled()) metrics_.cpu_ns->Add(ns);
  }
  uint64_t cpu_nanos() const { return cpu_ns_; }

  /// Records one consumed batch (processing latency + fill, i.e. rows the
  /// batch carried) into the registry-backed histograms; called by the
  /// runtime per drained batch. A fill of 0 skips the fill histogram
  /// (legacy call sites that only know the latency).
  void RecordBatch(uint64_t latency_ns, uint64_t fill = 0) {
    if (metrics_.enabled()) {
      metrics_.batches->Add();
      metrics_.batch_latency_ns->Record(latency_ns);
      if (fill > 0) metrics_.batch_fill->Record(fill);
    }
  }

  const obs::NodeMetrics& metrics() const { return metrics_; }

  bool is_sampling() const { return sampling_ != nullptr; }

  /// The sampling operator behind this node, or nullptr for selection
  /// nodes. The runtime's checkpoint wiring installs flush hooks and
  /// restores durable state through this.
  SamplingOperator* sampling_operator() { return sampling_.get(); }

  /// Number of input-schema columns (what a fed TupleBatch must carry).
  size_t input_width() const {
    return sampling_ != nullptr
               ? sampling_->plan().input_schema->num_fields()
               : selection_->plan().input_schema->num_fields();
  }

  /// Window statistics (sampling nodes only; empty otherwise).
  const std::vector<WindowStats>& window_stats() const;

  /// Late (clamped non-monotonic) tuples seen (sampling nodes only).
  uint64_t late_tuples() const;

 private:
  std::string name_;
  std::unique_ptr<SamplingOperator> sampling_;
  std::unique_ptr<SelectionOperator> selection_;
  std::vector<Tuple> output_;
  TupleBatch scratch_out_;  // PushBatch without caller-supplied out
  Tuple scratch_row_;
  // The plain counters below stay authoritative for RunReport — they must
  // survive STREAMOP_NO_STATS builds; the registry-backed metrics_ mirror
  // them for export.
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
  uint64_t cpu_ns_ = 0;
  obs::NodeMetrics metrics_;
};

}  // namespace streamop

#endif  // STREAMOP_ENGINE_QUERY_NODE_H_
