#include "engine/query_node.h"

namespace streamop {

QueryNode::QueryNode(std::string name, const CompiledQuery& query,
                     obs::MetricRegistry* registry)
    : name_(std::move(name)) {
  obs::MetricRegistry& reg =
      registry != nullptr ? *registry : obs::MetricRegistry::Default();
  metrics_ = obs::NodeMetrics::Create(reg, name_);
  if (query.kind == CompiledQueryKind::kSampling) {
    sampling_ = std::make_unique<SamplingOperator>(query.sampling);
    sampling_->set_metrics(obs::OperatorMetrics::Create(reg, name_));
    sampling_->set_quality(nullptr, name_);  // default ring, node-labeled
  } else {
    selection_ = std::make_unique<SelectionOperator>(query.selection);
  }
}

Status QueryNode::Push(const Tuple& t, double weight) {
  ++tuples_in_;
  if (metrics_.enabled()) metrics_.tuples_in->Add();
  if (sampling_ != nullptr) {
    STREAMOP_RETURN_NOT_OK(sampling_->Process(t, weight));
    std::vector<Tuple> rows = sampling_->DrainOutput();
    tuples_out_ += rows.size();
    if (metrics_.enabled() && !rows.empty()) {
      metrics_.tuples_out->Add(rows.size());
    }
    for (Tuple& r : rows) output_.push_back(std::move(r));
    return Status::OK();
  }
  Tuple out;
  STREAMOP_ASSIGN_OR_RETURN(bool pass, selection_->Process(t, &out));
  if (pass) {
    ++tuples_out_;
    if (metrics_.enabled()) metrics_.tuples_out->Add();
    output_.push_back(std::move(out));
  }
  return Status::OK();
}

Status QueryNode::PushBatch(const TupleBatch& batch, double weight,
                            TupleBatch* out, obs::SpanContext* span_ctx) {
  const size_t lanes = batch.num_selected();
  tuples_in_ += lanes;
  if (metrics_.enabled()) {
    if (lanes > 0) metrics_.tuples_in->Add(lanes);
    metrics_.batch_fill->Record(lanes);
  }
  if (sampling_ != nullptr) {
    STREAMOP_RETURN_NOT_OK(sampling_->ProcessBatch(batch, weight, span_ctx));
    std::vector<Tuple> rows = sampling_->DrainOutput();
    tuples_out_ += rows.size();
    if (metrics_.enabled() && !rows.empty()) {
      metrics_.tuples_out->Add(rows.size());
    }
    for (Tuple& r : rows) output_.push_back(std::move(r));
    return Status::OK();
  }
  TupleBatch* dest = out != nullptr ? out : &scratch_out_;
  STREAMOP_RETURN_NOT_OK(selection_->ProcessBatch(batch, dest));
  const size_t n_out = dest->num_rows();
  tuples_out_ += n_out;
  if (metrics_.enabled() && n_out > 0) {
    metrics_.tuples_out->Add(n_out);
  }
  if (out == nullptr) {
    for (size_t i = 0; i < n_out; ++i) {
      scratch_out_.MaterializeRow(i, &scratch_row_);
      output_.push_back(scratch_row_);
    }
  }
  return Status::OK();
}

Status QueryNode::Finish() {
  if (sampling_ != nullptr) {
    STREAMOP_RETURN_NOT_OK(sampling_->FinishStream());
    std::vector<Tuple> rows = sampling_->DrainOutput();
    tuples_out_ += rows.size();
    if (metrics_.enabled() && !rows.empty()) {
      metrics_.tuples_out->Add(rows.size());
    }
    for (Tuple& r : rows) output_.push_back(std::move(r));
  }
  return Status::OK();
}

std::vector<Tuple> QueryNode::DrainOutput() {
  std::vector<Tuple> out = std::move(output_);
  output_.clear();
  return out;
}

const std::vector<WindowStats>& QueryNode::window_stats() const {
  static const std::vector<WindowStats> kEmpty;
  return sampling_ != nullptr ? sampling_->window_stats() : kEmpty;
}

uint64_t QueryNode::late_tuples() const {
  return sampling_ != nullptr ? sampling_->late_tuples() : 0;
}

}  // namespace streamop
