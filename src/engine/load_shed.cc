#include "engine/load_shed.h"

#include <algorithm>

namespace streamop {

LoadShedController::LoadShedController(const LoadShedConfig& config,
                                       obs::MetricRegistry* registry)
    : config_(config), rng_(config.seed, 0x10ad5edULL) {
  // Clamp the configuration into a sane region instead of asserting: the
  // controller must keep a malformed CLI invocation from crashing a run.
  config_.high_watermark = std::clamp(config_.high_watermark, 0.0, 1.0);
  config_.low_watermark =
      std::clamp(config_.low_watermark, 0.0, config_.high_watermark);
  config_.decrease_factor = std::clamp(config_.decrease_factor, 0.01, 0.99);
  config_.increase_step = std::clamp(config_.increase_step, 0.0, 1.0);
  config_.min_probability = std::clamp(config_.min_probability, 1e-6, 1.0);
  if (registry != nullptr && obs::kStatsEnabled) {
    probability_gauge_ = registry->GetGauge("streamop_shed_probability");
    decreases_ = registry->GetCounter("streamop_shed_decreases");
    increases_ = registry->GetCounter("streamop_shed_increases");
    probability_gauge_->Set(p_);
  }
}

void LoadShedController::Tick(size_t ring_size, size_t ring_capacity,
                              uint64_t push_failures_delta) {
  ++ticks_;
  double occupancy =
      ring_capacity == 0 ? 0.0
                         : static_cast<double>(ring_size) /
                               static_cast<double>(ring_capacity);
  if (config_.enabled) {
    if (occupancy >= config_.high_watermark || push_failures_delta > 0) {
      double next = p_ * config_.decrease_factor;
      p_ = std::max(next, config_.min_probability);
      if (decreases_ != nullptr) decreases_->Add();
    } else if (occupancy <= config_.low_watermark && p_ < 1.0) {
      p_ = std::min(p_ + config_.increase_step, 1.0);
      if (increases_ != nullptr) increases_->Add();
    }
    // Between the watermarks p holds (hysteresis band).
    p_min_seen_ = std::min(p_min_seen_, p_);
    p_max_seen_ = std::max(p_max_seen_, p_);
    if (probability_gauge_ != nullptr) probability_gauge_->Set(p_);
  }
  if (config_.max_history == 0 || history_.size() < config_.max_history) {
    history_.push_back(
        {occupancy, push_failures_delta, p_, offered_, admitted_});
  }
}

}  // namespace streamop
