#include "engine/runtime.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "stream/stream_source.h"

namespace streamop {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

NodeReport MakeReport(const QueryNode& node, double stream_seconds) {
  NodeReport r;
  r.name = node.name();
  r.tuples_in = node.tuples_in();
  r.tuples_out = node.tuples_out();
  r.cpu_seconds = static_cast<double>(node.cpu_nanos()) * 1e-9;
  r.cpu_percent =
      stream_seconds > 0.0 ? 100.0 * r.cpu_seconds / stream_seconds : 0.0;
  return r;
}

}  // namespace

TwoLevelRuntime::TwoLevelRuntime(const CompiledQuery& low,
                                 const std::vector<CompiledQuery>& high,
                                 Options options)
    : options_(options) {
  low_ = std::make_unique<QueryNode>("low", low);
  for (size_t i = 0; i < high.size(); ++i) {
    high_.push_back(
        std::make_unique<QueryNode>("high" + std::to_string(i), high[i]));
  }
}

Result<RunReport> TwoLevelRuntime::Run(const Trace& trace) {
  RingBuffer<const PacketRecord*> ring(options_.ring_capacity);
  const std::vector<PacketRecord>& packets = trace.packets();
  size_t produced = 0;

  std::vector<Tuple> low_out;
  low_out.reserve(options_.batch_size);

  while (produced < packets.size()) {
    // Producer: fill the ring (pointers into the trace arena — no copy,
    // matching Gigascope's zero-copy feed of low-level queries).
    while (produced < packets.size() && ring.TryPush(&packets[produced])) {
      ++produced;
    }

    // Low-level node: drain the ring in batches; packet->tuple conversion
    // and selection both bill to the low node (these are the "memory copy"
    // costs §7.2 attributes to low-level evaluation).
    while (!ring.empty()) {
      low_out.clear();
      uint64_t t0 = NowNanos();
      const PacketRecord* p = nullptr;
      for (size_t i = 0; i < options_.batch_size && ring.TryPop(&p); ++i) {
        STREAMOP_RETURN_NOT_OK(low_->Push(PacketToTuple(*p)));
      }
      std::vector<Tuple> rows = low_->DrainOutput();
      low_->AddCpuNanos(NowNanos() - t0);
      low_out = std::move(rows);

      // High-level nodes consume the low node's output.
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        for (const Tuple& t : low_out) {
          STREAMOP_RETURN_NOT_OK(node->Push(t));
        }
        node->AddCpuNanos(NowNanos() - h0);
      }
    }
  }

  // End of stream.
  {
    uint64_t t0 = NowNanos();
    STREAMOP_RETURN_NOT_OK(low_->Finish());
    std::vector<Tuple> rows = low_->DrainOutput();
    low_->AddCpuNanos(NowNanos() - t0);
    for (auto& node : high_) {
      uint64_t h0 = NowNanos();
      for (const Tuple& t : rows) {
        STREAMOP_RETURN_NOT_OK(node->Push(t));
      }
      STREAMOP_RETURN_NOT_OK(node->Finish());
      node->AddCpuNanos(NowNanos() - h0);
    }
  }

  RunReport report;
  report.stream_seconds = trace.DurationSec();
  report.packets = packets.size();
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  return report;
}

Result<RunReport> TwoLevelRuntime::RunThreaded(const Trace& trace) {
  RingBuffer<const PacketRecord*> ring(options_.ring_capacity);
  const std::vector<PacketRecord>& packets = trace.packets();
  std::atomic<bool> done{false};
  std::atomic<bool> abort{false};  // consumer error: stop producing

  uint64_t wall0 = NowNanos();
  std::thread producer([&] {
    for (const PacketRecord& p : packets) {
      while (!ring.TryPush(&p)) {
        if (abort.load(std::memory_order_acquire)) return;
        // The consumer is behind; yield instead of dropping (the paper's
        // Gigascope drops under overload, but reproducible results matter
        // more here than overload semantics).
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
  });

  Status status;
  {
    const PacketRecord* p = nullptr;
    for (;;) {
      size_t popped = 0;
      uint64_t t0 = NowNanos();
      std::vector<Tuple> rows;
      for (size_t i = 0; i < options_.batch_size && ring.TryPop(&p); ++i) {
        ++popped;
        status = low_->Push(PacketToTuple(*p));
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
      rows = low_->DrainOutput();
      low_->AddCpuNanos(NowNanos() - t0);
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        for (const Tuple& t : rows) {
          status = node->Push(t);
          if (!status.ok()) break;
        }
        node->AddCpuNanos(NowNanos() - h0);
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
      if (popped == 0) {
        if (done.load(std::memory_order_acquire) && ring.empty()) break;
        std::this_thread::yield();
      }
    }
    if (!status.ok()) abort.store(true, std::memory_order_release);
  }
  producer.join();
  if (!status.ok()) return status;

  // End of stream.
  {
    uint64_t t0 = NowNanos();
    STREAMOP_RETURN_NOT_OK(low_->Finish());
    std::vector<Tuple> rows = low_->DrainOutput();
    low_->AddCpuNanos(NowNanos() - t0);
    for (auto& node : high_) {
      uint64_t h0 = NowNanos();
      for (const Tuple& t : rows) {
        STREAMOP_RETURN_NOT_OK(node->Push(t));
      }
      STREAMOP_RETURN_NOT_OK(node->Finish());
      node->AddCpuNanos(NowNanos() - h0);
    }
  }

  RunReport report;
  report.stream_seconds = trace.DurationSec();
  report.pipeline_seconds = static_cast<double>(NowNanos() - wall0) * 1e-9;
  report.packets = packets.size();
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  return report;
}

Result<SingleRunResult> RunQueryOverTrace(const CompiledQuery& query,
                                          const Trace& trace,
                                          const std::string& name) {
  QueryNode node(name, query);
  uint64_t t0 = NowNanos();
  for (const PacketRecord& p : trace.packets()) {
    STREAMOP_RETURN_NOT_OK(node.Push(PacketToTuple(p)));
  }
  STREAMOP_RETURN_NOT_OK(node.Finish());
  node.AddCpuNanos(NowNanos() - t0);

  SingleRunResult out;
  out.report = MakeReport(node, trace.DurationSec());
  out.output = node.DrainOutput();
  out.windows = node.window_stats();
  return out;
}

}  // namespace streamop
