#include "engine/runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/exemplar.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "stream/stream_source.h"

namespace streamop {

namespace {

using obs::NowNanos;

// A packet whose length is below the 20-byte IPv4 header minimum is
// malformed (fault injection truncates below this); both run modes reject
// it at the ring instead of feeding garbage to the query nodes.
constexpr uint16_t kMinPacketLen = 20;

// Producer backoff ladder: this many plain yields before sleeping, then
// exponentially growing sleeps between these bounds.
constexpr int kBackoffYields = 32;
constexpr uint64_t kBackoffMinSleepNs = 1000;     // 1 us
constexpr uint64_t kBackoffMaxSleepNs = 1000000;  // 1 ms

// Marks the runtime as running for the duration of a Run/RunThreaded call
// (exception- and early-return-safe), so /healthz can tell an in-flight
// run from a completed one.
class RunningGuard {
 public:
  explicit RunningGuard(std::atomic<bool>& flag) : flag_(flag) {
    flag_.store(true, std::memory_order_relaxed);
  }
  ~RunningGuard() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool>& flag_;
};

// Offers a malformed-packet exemplar (the rejected header's timestamp and
// claimed length) to the process-wide store. Rare path: the gate is one
// relaxed load, the offer one uncontended lock.
void OfferMalformedExemplar(const PacketRecord& p) {
  if constexpr (obs::kStatsEnabled) {
    obs::ExemplarStore& store = obs::ExemplarStore::Default();
    if (!store.enabled()) return;
    obs::Exemplar ex;
    ex.ts_ns = p.ts_ns;
    ex.value = static_cast<double>(p.len);
    ex.dims[0] = p.ts_ns;
    ex.dims[1] = p.len;
    ex.ndims = 2;
    store.Offer(obs::ExemplarStore::kMalformed, ex);
  }
}

// Offers a shed-drop exemplar: which packet the Bernoulli pre-sampler
// dropped, at what admission probability.
void OfferShedExemplar(const PacketRecord& p, double weight) {
  if constexpr (obs::kStatsEnabled) {
    obs::ExemplarStore& store = obs::ExemplarStore::Default();
    if (!store.enabled()) return;
    obs::Exemplar ex;
    ex.ts_ns = p.ts_ns;
    ex.value = weight > 1.0 ? 1.0 / weight : 1.0;  // admission probability
    ex.weight = weight;
    ex.dims[0] = p.ts_ns;
    ex.dims[1] = p.src_ip;
    ex.dims[2] = p.dst_ip;
    ex.dims[3] = p.len;
    ex.ndims = 4;
    store.Offer(obs::ExemplarStore::kShedDrop, ex);
  }
}

NodeReport MakeReport(const QueryNode& node, double stream_seconds) {
  NodeReport r;
  r.name = node.name();
  r.tuples_in = node.tuples_in();
  r.tuples_out = node.tuples_out();
  r.cpu_seconds = static_cast<double>(node.cpu_nanos()) * 1e-9;
  r.cpu_percent =
      stream_seconds > 0.0 ? 100.0 * r.cpu_seconds / stream_seconds : 0.0;
  return r;
}

}  // namespace

TwoLevelRuntime::TwoLevelRuntime(const CompiledQuery& low,
                                 const std::vector<CompiledQuery>& high,
                                 Options options)
    : options_(options) {
  obs::MetricRegistry& reg = options_.registry != nullptr
                                 ? *options_.registry
                                 : obs::MetricRegistry::Default();
  ring_metrics_ = obs::RingBufferMetrics::Create(reg);
  producer_retries_ =
      reg.GetCounter("streamop_runtime_producer_retries_total");
  packets_dropped_ = reg.GetCounter("streamop_runtime_packets_dropped_total");
  shed_fraction_gauge_ = reg.GetGauge("streamop_runtime_shed_fraction");
  shed_p_min_gauge_ = reg.GetGauge("streamop_runtime_shed_p_min");
  shed_p_max_gauge_ = reg.GetGauge("streamop_runtime_shed_p_max");
  late_tuples_gauge_ = reg.GetGauge("streamop_runtime_late_tuples");
  packets_malformed_gauge_ =
      reg.GetGauge("streamop_runtime_packets_malformed");
  watchdog_fired_gauge_ = reg.GetGauge("streamop_runtime_watchdog_fired");
  low_ = std::make_unique<QueryNode>("low", low, &reg);
  for (size_t i = 0; i < high.size(); ++i) {
    high_.push_back(std::make_unique<QueryNode>("high" + std::to_string(i),
                                                high[i], &reg));
  }

  // Durability (engine/checkpoint.h): one manager per sampling node. The
  // newest valid snapshot is restored here, at construction, so the first
  // run resumes at the last flushed window; the installed flush hook then
  // snapshots at the configured cadence. Selection nodes are stateless and
  // get no manager.
  if (!options_.checkpoint.dir.empty()) {
    checkpoint_mgrs_.resize(high_.size());
    restored_sources_.resize(high_.size());
    for (size_t i = 0; i < high_.size(); ++i) {
      SamplingOperator* op = high_[i]->sampling_operator();
      if (op == nullptr) continue;
      CheckpointConfig cfg = options_.checkpoint;
      cfg.node = high_[i]->name();
      cfg.registry = &reg;
      checkpoint_mgrs_[i] = std::make_unique<CheckpointManager>(cfg);
      CheckpointManager* mgr = checkpoint_mgrs_[i].get();

      if (auto loaded = mgr->LoadLatest()) {
        ByteReader r(loaded->payload);
        if (op->RestoreDurableState(r)) {
          // Trailing sections: load-shed controller (applied to the next
          // run's controller) and the exemplar reservoirs (applied now).
          if (r.Bool()) restored_shed_blob_ = r.Str();
          if (r.Bool()) {
            const std::string ex = r.Str();
            ByteReader er(ex);
            obs::ExemplarStore::Default().RestoreFrom(er);
          }
          // Source-offset section (RunSource snapshots only; absent from
          // trace-run snapshots and anything written before it existed).
          restored_sources_[i].restored = true;
          if (r.remaining() > 0 && r.Bool()) {
            restored_sources_[i].has_source = true;
            restored_sources_[i].kind = r.Str();
            restored_sources_[i].stream_id = r.U64();
            restored_sources_[i].offset = r.U64();
          }
          recovered_ = true;
          recovered_windows_ =
              std::max(recovered_windows_, loaded->windows_flushed);
          std::fprintf(
              stderr,
              "[checkpoint] %s: restored %s (window %llu, replaying "
              "%llu tuples)\n",
              high_[i]->name().c_str(), loaded->path.c_str(),
              static_cast<unsigned long long>(loaded->windows_flushed),
              static_cast<unsigned long long>(op->recovery_skip_remaining()));
        } else {
          std::fprintf(stderr,
                       "[checkpoint] %s: snapshot %s does not match this "
                       "query, starting fresh\n",
                       high_[i]->name().c_str(), loaded->path.c_str());
        }
      }

      op->set_window_flush_hook([this, op, mgr, i](uint64_t windows_flushed) {
        if (!mgr->ShouldWrite(windows_flushed)) return;
        if (source_run_active_) {
          // Mid-batch state doesn't align with any source offset: defer
          // to the ingest batch boundary, where RunSource snapshots with
          // the source's durable offset attached.
          pending_snapshots_[i] = std::max(pending_snapshots_[i],
                                           windows_flushed);
          return;
        }
        WriteNodeSnapshot(op, mgr, windows_flushed, nullptr);
      });
    }
  }

  // Flight-recorder observability stack (obs/timeseries.h, obs/alerts.h,
  // obs/flight_recorder.h): a positive sampling interval or a flight dir
  // brings up the ring, the alert engine (built-in SLO rules + the user's
  // --alert-rules file) and the sampler thread. Loading the pre-crash
  // segment happens BEFORE the first spill could overwrite it.
  const bool want_timeseries =
      options_.timeseries.interval_ms > 0 || !options_.flight.dir.empty();
  if (want_timeseries) {
    if (!options_.flight.dir.empty()) {
      auto loaded = obs::FlightRecorder::Load(options_.flight.dir);
      if (loaded.ok()) {
        forensic_report_ = std::move(*loaded);
        std::fputs(forensic_report_.ToText().c_str(), stderr);
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        std::fprintf(stderr, "[flight] %s: %s\n",
                     options_.flight.dir.c_str(),
                     loaded.status().message().c_str());
      }
      flight_ = std::make_unique<obs::FlightRecorder>(options_.flight);
    }
    obs::TimeSeriesOptions ts_opts = options_.timeseries;
    if (ts_opts.interval_ms == 0) ts_opts.interval_ms = 250;
    ts_ = std::make_unique<obs::TimeSeries>(ts_opts);
    obs::AlertEngine::Options alert_opts;
    alert_opts.quality_ci_target = options_.quality_ci_target;
    alerts_ = std::make_unique<obs::AlertEngine>(alert_opts);
    alerts_->AddBuiltinRules();
    if (!options_.alert_rules.empty()) {
      alerts_status_ = alerts_->AddRulesFromText(options_.alert_rules);
      if (!alerts_status_.ok()) {
        std::fprintf(stderr, "[alerts] %s\n",
                     alerts_status_.message().c_str());
      }
    }
    obs::TimeSeriesSampler::Options sampler_opts;
    sampler_opts.interval_ms = ts_opts.interval_ms;
    sampler_opts.registry = &reg;
    sampler_opts.timeseries = ts_.get();
    sampler_opts.alerts = alerts_.get();
    sampler_opts.recorder = flight_.get();
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(sampler_opts);
    (void)sampler_->Start();  // no-op under STREAMOP_NO_STATS
  }

  if (options_.http_port >= 0) {
    obs::HttpServerOptions http;
    http.port = static_cast<uint16_t>(options_.http_port);
    http.registry = &reg;
    http.health_json = [this] { return HealthJson(); };
    http.healthy = [this] { return healthy(); };
    http.timeseries = ts_.get();
    http.alerts = alerts_.get();
    http.flight_recorder = flight_.get();
    if (forensic_report_.valid) {
      http.forensics_json = [this] { return forensic_report_.ToJson(); };
    }
    http_server_ = std::make_unique<obs::HttpServer>(std::move(http));
    http_status_ = http_server_->Start();
    if (!http_status_.ok()) http_server_.reset();
  }
}

void TwoLevelRuntime::PublishReport(const RunReport& report) {
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = report;
  }
  shed_fraction_gauge_->Set(report.shed_fraction);
  shed_p_min_gauge_->Set(report.shed_p_min);
  shed_p_max_gauge_->Set(report.shed_p_max);
  late_tuples_gauge_->Set(static_cast<double>(report.late_tuples));
  packets_malformed_gauge_->Set(
      static_cast<double>(report.packets_malformed));
  watchdog_fired_gauge_->Set(report.watchdog_fired ? 1.0 : 0.0);
}

void TwoLevelRuntime::FillCheckpointReport(RunReport* report) const {
  report->recovered = recovered_;
  report->recovered_windows = recovered_windows_;
  for (const auto& mgr : checkpoint_mgrs_) {
    if (mgr == nullptr) continue;
    report->checkpoints_written += mgr->writes();
    report->checkpoint_failures += mgr->failures();
    report->checkpoint_corrupt_skipped += mgr->corrupt_skipped();
    if (mgr->degraded()) report->checkpoint_degraded = true;
  }
}

bool TwoLevelRuntime::AnyNodeRecovering() const {
  for (const auto& node : high_) {
    SamplingOperator* op = node->sampling_operator();
    if (op != nullptr && op->recovering()) return true;
  }
  return false;
}

void TwoLevelRuntime::WriteNodeSnapshot(SamplingOperator* op,
                                        CheckpointManager* mgr,
                                        uint64_t windows_flushed,
                                        const ResumableSource* source) {
  ByteWriter w;
  op->SerializeDurableState(w);
  // Shed controller state rides along while a threaded run is live (the
  // hook runs on the consumer thread, which owns the controller, so this
  // read is unsynchronized but single-threaded).
  LoadShedController* shed = active_shed_.load(std::memory_order_acquire);
  w.Bool(shed != nullptr);
  if (shed != nullptr) {
    ByteWriter sw;
    shed->SerializeTo(sw);
    w.Str(sw.data());
  }
  ByteWriter ew;
  obs::ExemplarStore::Default().SerializeTo(ew);
  w.Bool(true);
  w.Str(ew.data());
  // Source-offset section: present only for RunSource snapshots, which
  // are taken at ingest batch boundaries where the operator state and the
  // source's durable offset describe the same prefix of the input.
  w.Bool(source != nullptr);
  if (source != nullptr) {
    w.Str(source->kind());
    w.U64(source->stream_id());
    w.U64(source->durable_offset());
  }
  mgr->Write(windows_flushed, w.data());
  // Checkpoint-cadence forensics: keep the flight segment in step with the
  // durable state, so a crash right after a checkpoint still leaves a
  // telemetry tail that covers the checkpointed window.
  if (flight_ != nullptr) flight_->RequestSpill();
}

void TwoLevelRuntime::FlushPendingSnapshots(const ResumableSource* source) {
  for (size_t i = 0; i < pending_snapshots_.size(); ++i) {
    if (pending_snapshots_[i] == 0) continue;
    WriteNodeSnapshot(high_[i]->sampling_operator(), checkpoint_mgrs_[i].get(),
                      pending_snapshots_[i], source);
    pending_snapshots_[i] = 0;
  }
}

bool TwoLevelRuntime::ApplySourceResume(ResumableSource& source) {
  if (!recovered_ || restored_sources_.empty()) return false;
  bool any = false;
  uint64_t offset = 0;
  for (size_t i = 0; i < high_.size(); ++i) {
    if (checkpoint_mgrs_[i] == nullptr) continue;
    const RestoredSourceInfo& rs = restored_sources_[i];
    // Every checkpoint-managed node must have been restored from a
    // snapshot naming THIS source at ONE offset; a node restored without
    // a source section (or not restored at all) still expects the replay-
    // from-start contract, and seeking would starve it of its prefix.
    if (!rs.restored || !rs.has_source) return false;
    if (rs.kind != source.kind() || rs.stream_id != source.stream_id()) {
      std::fprintf(stderr,
                   "[checkpoint] %s: snapshot was taken against %s source "
                   "id %llx, not %s — falling back to positional replay\n",
                   high_[i]->name().c_str(), rs.kind.c_str(),
                   static_cast<unsigned long long>(rs.stream_id),
                   source.describe().c_str());
      return false;
    }
    if (any && rs.offset != offset) return false;  // mixed offsets
    offset = rs.offset;
    any = true;
  }
  if (!any) return false;
  const Status st = source.SeekTo(offset);
  if (!st.ok()) {
    std::fprintf(stderr,
                 "[checkpoint] cannot seek %s to offset %llu (%s) — "
                 "falling back to positional replay\n",
                 source.describe().c_str(),
                 static_cast<unsigned long long>(offset),
                 st.message().c_str());
    return false;
  }
  // The source now continues exactly where the snapshots left off: no
  // replayed prefix will arrive, so cancel the positional skip.
  for (size_t i = 0; i < high_.size(); ++i) {
    if (checkpoint_mgrs_[i] == nullptr) continue;
    high_[i]->sampling_operator()->ClearRecoveryReplay();
  }
  std::fprintf(stderr, "[checkpoint] resuming %s at offset %llu\n",
               source.describe().c_str(),
               static_cast<unsigned long long>(offset));
  return true;
}

bool TwoLevelRuntime::healthy() const {
  if (alerts_ != nullptr && alerts_->critical_firing()) return false;
  std::lock_guard<std::mutex> lock(report_mu_);
  return !last_report_.watchdog_fired;
}

std::string TwoLevelRuntime::HealthJson() const {
  RunReport r;
  {
    std::lock_guard<std::mutex> lock(report_mu_);
    r = last_report_;
  }
  // Checkpoint state is read live from the managers (not the report copy)
  // so /healthz reflects writes and failures of an in-flight run too.
  const bool ckpt_enabled = !checkpoint_mgrs_.empty();
  bool ckpt_degraded = false;
  uint64_t ckpt_writes = 0, ckpt_failures = 0, ckpt_corrupt = 0;
  for (const auto& mgr : checkpoint_mgrs_) {
    if (mgr == nullptr) continue;
    ckpt_writes += mgr->writes();
    ckpt_failures += mgr->failures();
    ckpt_corrupt += mgr->corrupt_skipped();
    if (mgr->degraded()) ckpt_degraded = true;
  }
  // Alert summary + flight-recorder status (obs/alerts.h): a firing
  // critical alert dominates every other status and flips the endpoint to
  // 503 via healthy().
  const bool alerts_enabled = alerts_ != nullptr;
  obs::AlertSummary alerts;
  if (alerts_enabled) alerts = alerts_->Summary();
  const bool critical_alert = alerts.critical_firing > 0;
  const char* alert_worst =
      alerts.firing > 0 ? obs::AlertSeverityName(alerts.worst) : "none";
  const bool flight_enabled = flight_ != nullptr && flight_->enabled();
  const bool is_running = running_.load(std::memory_order_relaxed);
  const char* status =
      r.watchdog_fired
          ? "watchdog_fired"
          : critical_alert
                ? "critical_alert"
                : is_running
                      ? "running"
                      : (ckpt_degraded || alerts.firing > 0 ||
                         (r.shedding_enabled && r.shed_fraction > 0.0))
                            ? "degraded"
                            : "ok";
  const bool src_active = source_active_.load(std::memory_order_relaxed);
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\"status\": \"%s\", \"running\": %s, \"watchdog_fired\": %s, "
      "\"shedding_enabled\": %s, \"shed_fraction\": %.6f, "
      "\"shed_p_min\": %.6f, \"shed_p_max\": %.6f, "
      "\"tuples_shed\": %llu, \"late_tuples\": %llu, "
      "\"packets_malformed\": %llu, \"packets\": %llu, "
      "\"checkpoint_enabled\": %s, \"checkpoint_degraded\": %s, "
      "\"recovered\": %s, \"recovered_windows\": %llu, "
      "\"checkpoints_written\": %llu, \"checkpoint_failures\": %llu, "
      "\"checkpoint_corrupt_skipped\": %llu, "
      "\"source_active\": %s, \"source_offset\": %llu, "
      "\"source_lag\": %llu, \"source_reconnects\": %llu, "
      "\"source_gaps\": %llu, "
      "\"alerts_enabled\": %s, \"alerts_firing\": %llu, "
      "\"alerts_pending\": %llu, \"alerts_critical_firing\": %llu, "
      "\"alerts_worst_severity\": \"%s\", "
      "\"flight_recorder_enabled\": %s, \"flight_spills\": %llu, "
      "\"flight_spill_failures\": %llu, \"forensic_report_loaded\": %s}\n",
      status, is_running ? "true" : "false",
      r.watchdog_fired ? "true" : "false",
      r.shedding_enabled ? "true" : "false", r.shed_fraction, r.shed_p_min,
      r.shed_p_max, static_cast<unsigned long long>(r.tuples_shed),
      static_cast<unsigned long long>(r.late_tuples),
      static_cast<unsigned long long>(r.packets_malformed),
      static_cast<unsigned long long>(r.packets),
      ckpt_enabled ? "true" : "false", ckpt_degraded ? "true" : "false",
      recovered_ ? "true" : "false",
      static_cast<unsigned long long>(recovered_windows_),
      static_cast<unsigned long long>(ckpt_writes),
      static_cast<unsigned long long>(ckpt_failures),
      static_cast<unsigned long long>(ckpt_corrupt),
      src_active ? "true" : "false",
      static_cast<unsigned long long>(
          live_source_offset_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          live_source_lag_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          live_source_reconnects_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          live_source_gaps_.load(std::memory_order_relaxed)),
      alerts_enabled ? "true" : "false",
      static_cast<unsigned long long>(alerts.firing),
      static_cast<unsigned long long>(alerts.pending),
      static_cast<unsigned long long>(alerts.critical_firing), alert_worst,
      flight_enabled ? "true" : "false",
      static_cast<unsigned long long>(
          flight_ != nullptr ? flight_->spills() : 0),
      static_cast<unsigned long long>(
          flight_ != nullptr ? flight_->spill_failures() : 0),
      forensic_report_.valid ? "true" : "false");
  return buf;
}

Result<RunReport> TwoLevelRuntime::Run(const Trace& trace) {
  RunningGuard running(running_);
  RingBuffer<const PacketRecord*> ring(options_.ring_capacity);
  ring.AttachMetrics(&ring_metrics_);
  const std::vector<PacketRecord>& packets = trace.packets();
  size_t produced = 0;
  uint64_t packets_malformed = 0;

  // Batched data path (DESIGN.md §9): the ring drains into a reusable
  // columnar batch, the low node filters/projects it column-at-a-time into
  // `low_out_batch`, and the high nodes consume that batch directly — no
  // per-tuple Value rows anywhere on the steady-state path.
  TupleBatch batch(low_->input_width(), options_.batch_size);
  TupleBatch low_out_batch;

  while (produced < packets.size()) {
    // Producer: fill the ring (pointers into the trace arena — no copy,
    // matching Gigascope's zero-copy feed of low-level queries).
    while (produced < packets.size() && ring.TryPush(&packets[produced])) {
      ++produced;
    }

    // Low-level node: drain the ring in batches; packet->batch conversion
    // and selection both bill to the low node (these are the "memory copy"
    // costs §7.2 attributes to low-level evaluation).
    while (!ring.empty()) {
      obs::SpanRing& spans = obs::SpanRing::Default();
      obs::Profiler& prof = obs::Profiler::Default();
      const bool span_on = spans.enabled();
      const bool prof_on = prof.phase_accounting_enabled();
      uint64_t t0 = NowNanos();
      const uint64_t drain_c0 = prof_on ? obs::CycleNow() : 0;
      batch.Clear();
      const PacketRecord* p = nullptr;
      for (size_t i = 0; i < options_.batch_size && ring.TryPop(&p); ++i) {
        if (p->len < kMinPacketLen) {
          ++packets_malformed;  // truncated/garbage header: reject, don't feed
          OfferMalformedExemplar(*p);
          continue;
        }
        batch.AppendPacket(*p);
      }
      const uint64_t drain_end = span_on ? NowNanos() : 0;
      if (prof_on) {
        prof.AddPhaseCycles(obs::Profiler::kDrain,
                            obs::CycleNow() - drain_c0);
      }
      // Causal context: rows drained go down; the id of the window span the
      // batch fed comes back up through the sampling operator, so the drain
      // span below parents under the window root it actually filled.
      obs::SpanContext sctx;
      sctx.rows = batch.num_rows();
      STREAMOP_RETURN_NOT_OK(low_->PushBatch(batch, 1.0, &low_out_batch));
      uint64_t batch_ns = NowNanos() - t0;
      low_->AddCpuNanos(batch_ns);
      low_->RecordBatch(batch_ns, batch.num_rows());

      // High-level nodes consume the low node's output batch.
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        STREAMOP_RETURN_NOT_OK(node->PushBatch(
            low_out_batch, 1.0, nullptr, span_on ? &sctx : nullptr));
        uint64_t h_ns = NowNanos() - h0;
        node->AddCpuNanos(h_ns);
        node->RecordBatch(h_ns, low_out_batch.num_rows());
      }
      if (span_on) {
        obs::SpanRecord dr;
        dr.name = "ring_drain";
        dr.parent_id = sctx.window_span_id;
        dr.window_seq = sctx.window_seq;
        dr.ts_ns = t0;
        dr.dur_ns = drain_end - t0;
        dr.rows = batch.num_rows();
        spans.Emit(dr);
      }
    }
  }

  // End of stream.
  {
    uint64_t t0 = NowNanos();
    STREAMOP_RETURN_NOT_OK(low_->Finish());
    std::vector<Tuple> rows = low_->DrainOutput();
    low_->AddCpuNanos(NowNanos() - t0);
    for (auto& node : high_) {
      uint64_t h0 = NowNanos();
      for (const Tuple& t : rows) {
        STREAMOP_RETURN_NOT_OK(node->Push(t));
      }
      STREAMOP_RETURN_NOT_OK(node->Finish());
      node->AddCpuNanos(NowNanos() - h0);
    }
  }

  RunReport report;
  report.stream_seconds = trace.DurationSec();
  report.packets = packets.size();
  report.packets_malformed = packets_malformed;
  report.ring_push_failures = ring_metrics_.enabled()
                                  ? ring_metrics_.push_failures->value()
                                  : 0;
  report.ring_occupancy_hwm =
      ring_metrics_.enabled()
          ? static_cast<uint64_t>(ring_metrics_.occupancy_hwm->value())
          : 0;
  report.late_tuples = low_->late_tuples();
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.late_tuples += node->late_tuples();
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  FillCheckpointReport(&report);
  PublishReport(report);
  return report;
}

Result<RunReport> TwoLevelRuntime::RunSource(ResumableSource& source) {
  RunningGuard running(running_);
  obs::MetricRegistry& reg = options_.registry != nullptr
                                 ? *options_.registry
                                 : obs::MetricRegistry::Default();
  const obs::IngestSourceMetrics ingest =
      obs::IngestSourceMetrics::Create(reg, source.describe());

  // Restore-side seek must happen before Open(): pcap applies the pending
  // seek when opening, sockets put the offset in their first HELLO.
  const bool resumed = ApplySourceResume(source);
  STREAMOP_RETURN_NOT_OK(source.Open());

  source_run_active_ = true;
  source_active_.store(true, std::memory_order_relaxed);
  pending_snapshots_.assign(high_.size(), 0);

  std::vector<PacketRecord> records(options_.batch_size);
  TupleBatch batch(low_->input_width(), options_.batch_size);
  TupleBatch low_out_batch;
  uint64_t delivered = 0;
  uint64_t malformed = 0;
  uint64_t first_ts = 0;
  uint64_t last_ts = 0;
  bool have_ts = false;
  int64_t idle_since_ns = -1;
  bool clean_end = false;
  Status status;
  SourceIngestStats prev;  // last stats pushed into the counters

  auto sync_metrics = [&] {
    const SourceIngestStats& s = source.stats();
    if (ingest.enabled()) {
      ingest.frames->Add(s.frames - prev.frames);
      ingest.records->Add(s.records - prev.records);
      ingest.malformed_frames->Add(s.malformed_frames - prev.malformed_frames);
      ingest.reconnects->Add(s.reconnects - prev.reconnects);
      ingest.gaps->Add(s.gaps - prev.gaps);
      ingest.gap_records->Add(s.gap_records - prev.gap_records);
      ingest.duplicates->Add(s.duplicate_records - prev.duplicate_records);
      ingest.heartbeats->Add(s.heartbeats - prev.heartbeats);
      ingest.durable_offset->Set(static_cast<double>(source.durable_offset()));
      ingest.resume_offset->Set(static_cast<double>(s.resume_offset));
      ingest.offset_lag->Set(static_cast<double>(source.offset_lag()));
    }
    prev = s;
    live_source_offset_.store(source.durable_offset(),
                              std::memory_order_relaxed);
    live_source_lag_.store(source.offset_lag(), std::memory_order_relaxed);
    live_source_reconnects_.store(s.reconnects, std::memory_order_relaxed);
    live_source_gaps_.store(s.gaps, std::memory_order_relaxed);
  };

  for (;;) {
    size_t n = 0;
    const ResumableSource::ReadResult rr =
        source.Read(records.data(), records.size(), &n);
    if (n > 0) {
      delivered += n;
      const uint64_t t0 = NowNanos();
      batch.Clear();
      for (size_t i = 0; i < n; ++i) {
        const PacketRecord& p = records[i];
        if (!have_ts) {
          first_ts = p.ts_ns;
          have_ts = true;
        }
        last_ts = std::max(last_ts, p.ts_ns);
        if (p.len < kMinPacketLen) {
          ++malformed;  // quarantined on arrival, never fed to the nodes
          OfferMalformedExemplar(p);
          continue;
        }
        batch.AppendPacket(p);
      }
      status = low_->PushBatch(batch, 1.0, &low_out_batch);
      const uint64_t batch_ns = NowNanos() - t0;
      low_->AddCpuNanos(batch_ns);
      low_->RecordBatch(batch_ns, batch.num_rows());
      if (status.ok()) {
        for (auto& node : high_) {
          const uint64_t h0 = NowNanos();
          status = node->PushBatch(low_out_batch, 1.0, nullptr, nullptr);
          const uint64_t h_ns = NowNanos() - h0;
          node->AddCpuNanos(h_ns);
          if (low_out_batch.num_rows() > 0) {
            node->RecordBatch(h_ns, low_out_batch.num_rows());
          }
          if (!status.ok()) break;
        }
      }
      if (!status.ok()) break;
      idle_since_ns = -1;
    } else if (rr == ResumableSource::ReadResult::kIdle) {
      // Heartbeat-empty batch: the wire is quiet but the pipeline keeps
      // turning — hooks run, metrics refresh, deferred snapshots land.
      batch.Clear();
      status = low_->PushBatch(batch, 1.0, &low_out_batch);
      for (auto& node : high_) {
        if (!status.ok()) break;
        status = node->PushBatch(low_out_batch, 1.0, nullptr, nullptr);
      }
      if (!status.ok()) break;
    }

    // Ingest batch boundary: every record read so far is fully processed,
    // so a deferred snapshot here can bind the operator state to the
    // source's durable offset.
    FlushPendingSnapshots(&source);
    sync_metrics();

    if (rr == ResumableSource::ReadResult::kEnd) {
      clean_end = source.last_status().ok();
      break;
    }
    if (options_.source_max_records > 0 &&
        delivered >= options_.source_max_records) {
      clean_end = true;
      break;
    }
    if (rr == ResumableSource::ReadResult::kIdle &&
        options_.source_max_idle_ms > 0) {
      const int64_t now = static_cast<int64_t>(NowNanos());
      if (idle_since_ns < 0) {
        idle_since_ns = now;
      } else if (now - idle_since_ns >=
                 static_cast<int64_t>(options_.source_max_idle_ms) *
                     1000000) {
        clean_end = true;  // configured idle budget: a clean end
        break;
      }
    }
  }

  // End of stream: flush the final windows, but only on a clean end — an
  // ingest failure must not emit partial windows as if they completed.
  if (status.ok() && clean_end) {
    const uint64_t t0 = NowNanos();
    status = low_->Finish();
    if (status.ok()) {
      std::vector<Tuple> rows = low_->DrainOutput();
      low_->AddCpuNanos(NowNanos() - t0);
      for (auto& node : high_) {
        const uint64_t h0 = NowNanos();
        for (const Tuple& t : rows) {
          status = node->Push(t);
          if (!status.ok()) break;
        }
        if (status.ok()) status = node->Finish();
        node->AddCpuNanos(NowNanos() - h0);
        if (!status.ok()) break;
      }
    }
  }
  // Snapshots deferred by the final flush bind to the end-of-stream offset.
  FlushPendingSnapshots(&source);
  source_run_active_ = false;
  source_active_.store(false, std::memory_order_relaxed);
  sync_metrics();

  RunReport report;
  report.stream_seconds =
      have_ts && last_ts > first_ts
          ? static_cast<double>(last_ts - first_ts) * 1e-9
          : 0.0;
  report.packets = delivered;
  report.packets_malformed = malformed;
  report.late_tuples = low_->late_tuples();
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.late_tuples += node->late_tuples();
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  SourceReport sr;
  sr.source = source.describe();
  sr.resumed_from_offset = resumed;
  sr.clean_end = clean_end && status.ok();
  sr.durable_offset = source.durable_offset();
  sr.offset_lag = source.offset_lag();
  if (!source.last_status().ok()) sr.error = source.last_status().message();
  sr.stats = source.stats();
  report.sources.push_back(std::move(sr));
  FillCheckpointReport(&report);
  PublishReport(report);

  if (!status.ok()) return status;
  if (!clean_end && !source.last_status().ok()) return source.last_status();
  return report;
}

Result<RunReport> TwoLevelRuntime::RunThreaded(const Trace& trace) {
  RunningGuard running(running_);
  RingBuffer<const PacketRecord*> ring(options_.ring_capacity);
  ring.AttachMetrics(&ring_metrics_);
  const std::vector<PacketRecord>& packets = trace.packets();
  obs::MetricRegistry& reg = options_.registry != nullptr
                                 ? *options_.registry
                                 : obs::MetricRegistry::Default();
  LoadShedController shed(options_.shed, &reg);
  // A restored snapshot carries the controller state from the killed run;
  // apply it so the admission probability resumes where it left off.
  if (!restored_shed_blob_.empty()) {
    ByteReader sr(restored_shed_blob_);
    shed.RestoreFrom(sr);
    restored_shed_blob_.clear();
  }
  // Publish for the checkpoint flush hook (runs on the consumer thread,
  // the same thread that drives the controller).
  active_shed_.store(&shed, std::memory_order_release);

  std::atomic<bool> abort{false};         // any party: stop everything
  std::atomic<bool> consumer_done{false};
  // Progress heartbeat for the watchdog: bumped on every push, pop and
  // drop. If it freezes for stall_timeout_ms the run is declared stuck.
  std::atomic<uint64_t> progress{0};
  // Producer->controller feedback, independent of the (compile-out-able)
  // obs counters: TryPush failures since the controller's last tick.
  std::atomic<uint64_t> push_failures{0};

  // Overload accounting, surfaced in the report and the registry: every
  // failed push is either retried (bounded backoff, deterministic default)
  // or dropped (drop_on_overload, the paper's Gigascope behaviour).
  uint64_t producer_retries = 0;
  uint64_t packets_dropped = 0;
  uint64_t backoff_sleeps = 0;
  uint64_t backoff_ns = 0;

  uint64_t wall0 = NowNanos();
  std::thread producer([&] {
    const bool drop = options_.drop_on_overload;
    int yields = 0;
    uint64_t sleep_ns = kBackoffMinSleepNs;
    for (const PacketRecord& p : packets) {
      while (!ring.TryPush(&p)) {
        if (abort.load(std::memory_order_acquire) || ring.poisoned()) {
          return;  // aborted runs leave the ring poisoned, not closed
        }
        push_failures.fetch_add(1, std::memory_order_relaxed);
        if (drop) {
          ++packets_dropped;
          progress.fetch_add(1, std::memory_order_relaxed);
          break;  // overload: shed this packet, move on
        }
        // Bounded backoff ladder: a burst of yields, then exponentially
        // growing sleeps capped at 1 ms — the producer never busy-spins
        // unboundedly against a slow consumer.
        ++producer_retries;
        if (yields < kBackoffYields) {
          ++yields;
          std::this_thread::yield();
        } else {
          ++backoff_sleeps;
          backoff_ns += sleep_ns;
          std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
          sleep_ns = std::min(sleep_ns * 2, kBackoffMaxSleepNs);
        }
      }
      // Ladder resets after any successful push.
      yields = 0;
      sleep_ns = kBackoffMinSleepNs;
      progress.fetch_add(1, std::memory_order_relaxed);
    }
    ring.Close();  // end of stream: consumer drains and exits
  });

  Status status;
  uint64_t consumer_malformed = 0;
  std::thread consumer([&] {
    const PacketRecord* p = nullptr;
    const bool shed_on = options_.shed.enabled;
    const uint64_t tick_ns = options_.shed.tick_interval_us * 1000;
    uint64_t last_tick_ns = 0;
    uint64_t last_failures = 0;
    uint64_t batch_index = 0;
    TupleBatch batch(low_->input_width(), options_.batch_size);
    TupleBatch low_out_batch;
    for (;;) {
      if (abort.load(std::memory_order_acquire)) break;
      if (options_.consumer_stall_hook) {
        options_.consumer_stall_hook(batch_index, abort);
        if (abort.load(std::memory_order_acquire)) break;
      }
      ++batch_index;

      // While a restored node is still discarding its replayed prefix the
      // shed gate is bypassed (weight 1.0, no Admit draws, no Tick): the
      // replayed packets were already admitted before the crash, and
      // re-shedding or re-tuning on them would double-drop / perturb the
      // restored admission probability. Recovery is byte-exact for
      // non-shed runs; with shedding, the RNG draws consumed before the
      // snapshot are part of the restored controller state, so the
      // post-replay stream continues from the same admission sequence.
      const bool replaying = AnyNodeRecovering();

      // Controller tick, rate-limited here so the controller itself stays
      // pure (unit tests drive Tick directly). The post-tick p is constant
      // across the batch, so one weight applies to every admitted tuple.
      if (shed_on && !replaying) {
        const uint64_t now = NowNanos();
        if (last_tick_ns == 0 || now - last_tick_ns >= tick_ns) {
          const uint64_t f = push_failures.load(std::memory_order_relaxed);
          shed.Tick(ring.size(), ring.capacity(), f - last_failures);
          last_failures = f;
          last_tick_ns = now;
        }
      }
      const double weight = (shed_on && !replaying) ? shed.weight() : 1.0;

      obs::SpanRing& spans = obs::SpanRing::Default();
      obs::Profiler& prof = obs::Profiler::Default();
      const bool span_on = spans.enabled();
      const bool prof_on = prof.phase_accounting_enabled();
      size_t popped = 0;
      uint64_t t0 = NowNanos();
      const uint64_t drain_c0 = prof_on ? obs::CycleNow() : 0;
      batch.Clear();
      for (size_t i = 0; i < options_.batch_size && ring.TryPop(&p); ++i) {
        ++popped;
        progress.fetch_add(1, std::memory_order_relaxed);
        if (p->len < kMinPacketLen) {
          ++consumer_malformed;  // truncated/garbage header: reject
          OfferMalformedExemplar(*p);
          continue;
        }
        if (shed_on && !replaying && !shed.Admit()) {  // Bernoulli pre-sample
          OfferShedExemplar(*p, weight);
          continue;
        }
        batch.AppendPacket(*p);  // weight is constant across the batch
      }
      const uint64_t drain_end = span_on ? NowNanos() : 0;
      if (prof_on) {
        prof.AddPhaseCycles(obs::Profiler::kDrain,
                            obs::CycleNow() - drain_c0);
      }
      obs::SpanContext sctx;
      sctx.shed_p = weight > 1.0 ? 1.0 / weight : 1.0;
      sctx.rows = batch.num_rows();
      status = low_->PushBatch(batch, weight, &low_out_batch);
      if (!status.ok()) break;
      if (popped > 0) {
        uint64_t batch_ns = NowNanos() - t0;
        low_->AddCpuNanos(batch_ns);
        low_->RecordBatch(batch_ns, batch.num_rows());
      }
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        status = node->PushBatch(low_out_batch, weight, nullptr,
                                 span_on ? &sctx : nullptr);
        uint64_t h_ns = NowNanos() - h0;
        node->AddCpuNanos(h_ns);
        if (low_out_batch.num_rows() > 0) {
          node->RecordBatch(h_ns, low_out_batch.num_rows());
        }
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
      if (span_on && popped > 0) {
        obs::SpanRecord dr;
        dr.name = "ring_drain";
        dr.parent_id = sctx.window_span_id;
        dr.window_seq = sctx.window_seq;
        dr.ts_ns = t0;
        dr.dur_ns = drain_end - t0;
        dr.rows = batch.num_rows();
        dr.shed_p = sctx.shed_p;
        spans.Emit(dr);
      }
      if (popped == 0) {
        if (ring.closed() && ring.empty()) break;  // clean end of stream
        std::this_thread::yield();
      }
    }
    if (!status.ok()) {
      // Consumer failed: poison the ring so the producer's retry loop (and
      // any pending pushes) unstick immediately instead of live-locking.
      abort.store(true, std::memory_order_release);
      ring.Poison();
    }
    consumer_done.store(true, std::memory_order_release);
    progress.fetch_add(1, std::memory_order_relaxed);
  });

  // Watchdog: the main thread supervises both workers. If the progress
  // heartbeat freezes for stall_timeout_ms — a hung consumer, a deadlocked
  // hook — it aborts and poisons the ring; both threads exit cooperatively
  // and the run reports ResourceExhausted instead of hanging forever.
  bool watchdog_fired = false;
  {
    const uint64_t timeout_ns = options_.stall_timeout_ms * 1000000ull;
    uint64_t last_progress = progress.load(std::memory_order_relaxed);
    uint64_t last_change_ns = NowNanos();
    while (!consumer_done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const uint64_t now_progress = progress.load(std::memory_order_relaxed);
      if (now_progress != last_progress) {
        last_progress = now_progress;
        last_change_ns = NowNanos();
        continue;
      }
      if (timeout_ns > 0 && NowNanos() - last_change_ns >= timeout_ns) {
        watchdog_fired = true;
        abort.store(true, std::memory_order_release);
        ring.Poison();
        break;
      }
    }
  }
  producer.join();
  consumer.join();

  producer_retries_->Add(producer_retries);
  packets_dropped_->Add(packets_dropped);

  // End of stream (only on a clean run: an aborted pipeline must not emit
  // partial windows as if they were complete).
  if (status.ok() && !watchdog_fired) {
    uint64_t t0 = NowNanos();
    status = low_->Finish();
    if (status.ok()) {
      std::vector<Tuple> rows = low_->DrainOutput();
      low_->AddCpuNanos(NowNanos() - t0);
      const double weight = options_.shed.enabled ? shed.weight() : 1.0;
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        for (const Tuple& t : rows) {
          status = node->Push(t, weight);
          if (!status.ok()) break;
        }
        if (status.ok()) status = node->Finish();
        node->AddCpuNanos(NowNanos() - h0);
        if (!status.ok()) break;
      }
    }
  }

  // The final flush (Finish above) may have snapshotted through the hook;
  // from here the controller is about to leave scope, so unpublish it.
  active_shed_.store(nullptr, std::memory_order_release);

  // The report — including the degradation summary — is built even for
  // failed runs and kept in last_report() for post-mortems.
  RunReport report;
  report.stream_seconds = trace.DurationSec();
  report.pipeline_seconds = static_cast<double>(NowNanos() - wall0) * 1e-9;
  report.packets = packets.size();
  report.ring_producer_retries = producer_retries;
  report.packets_dropped = packets_dropped;
  report.producer_backoff_sleeps = backoff_sleeps;
  report.producer_backoff_seconds = static_cast<double>(backoff_ns) * 1e-9;
  report.packets_malformed = consumer_malformed;
  report.watchdog_fired = watchdog_fired;
  report.shedding_enabled = options_.shed.enabled;
  report.tuples_offered = shed.offered();
  report.tuples_shed = shed.shed();
  report.shed_fraction = shed.shed_fraction();
  report.shed_p_min = shed.min_probability_seen();
  report.shed_p_max = shed.max_probability_seen();
  report.ring_push_failures = ring_metrics_.enabled()
                                  ? ring_metrics_.push_failures->value()
                                  : push_failures.load();
  report.ring_occupancy_hwm =
      ring_metrics_.enabled()
          ? static_cast<uint64_t>(ring_metrics_.occupancy_hwm->value())
          : 0;
  report.late_tuples = low_->late_tuples();
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.late_tuples += node->late_tuples();
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  FillCheckpointReport(&report);
  PublishReport(report);

  if (watchdog_fired) {
    return Status::ResourceExhausted(
        "pipeline stalled: no progress for " +
        std::to_string(options_.stall_timeout_ms) +
        " ms (watchdog); see last_report() for the degradation summary");
  }
  if (!status.ok()) return status;
  return report;
}

Result<SingleRunResult> RunQueryOverTrace(const CompiledQuery& query,
                                          const Trace& trace,
                                          const std::string& name,
                                          obs::MetricRegistry* registry) {
  obs::MetricRegistry& reg =
      registry != nullptr ? *registry : obs::MetricRegistry::Default();
  QueryNode node(name, query, &reg);

  // Feed through an instrumented ring in batches — the same data path the
  // two-level runtime uses — so single-query runs (the CLI, the figure
  // benchmarks) surface ring occupancy and batch-latency metrics too.
  const obs::RingBufferMetrics ring_metrics =
      obs::RingBufferMetrics::Create(reg);
  RingBuffer<const PacketRecord*> ring(1 << 16);
  ring.AttachMetrics(&ring_metrics);
  constexpr size_t kBatch = 512;

  const std::vector<PacketRecord>& packets = trace.packets();
  TupleBatch batch(node.input_width(), kBatch);
  size_t produced = 0;
  while (produced < packets.size()) {
    while (produced < packets.size() && ring.TryPush(&packets[produced])) {
      ++produced;
    }
    while (!ring.empty()) {
      uint64_t t0 = NowNanos();
      batch.Clear();
      const PacketRecord* p = nullptr;
      for (size_t i = 0; i < kBatch && ring.TryPop(&p); ++i) {
        batch.AppendPacket(*p);
      }
      STREAMOP_RETURN_NOT_OK(node.PushBatch(batch));
      uint64_t batch_ns = NowNanos() - t0;
      node.AddCpuNanos(batch_ns);
      node.RecordBatch(batch_ns, batch.num_rows());
    }
  }
  uint64_t t0 = NowNanos();
  STREAMOP_RETURN_NOT_OK(node.Finish());
  node.AddCpuNanos(NowNanos() - t0);

  SingleRunResult out;
  out.report = MakeReport(node, trace.DurationSec());
  out.output = node.DrainOutput();
  out.windows = node.window_stats();
  return out;
}

}  // namespace streamop
