#include "engine/runtime.h"

#include <atomic>
#include <thread>

#include "obs/metrics.h"
#include "stream/stream_source.h"

namespace streamop {

namespace {

using obs::NowNanos;

NodeReport MakeReport(const QueryNode& node, double stream_seconds) {
  NodeReport r;
  r.name = node.name();
  r.tuples_in = node.tuples_in();
  r.tuples_out = node.tuples_out();
  r.cpu_seconds = static_cast<double>(node.cpu_nanos()) * 1e-9;
  r.cpu_percent =
      stream_seconds > 0.0 ? 100.0 * r.cpu_seconds / stream_seconds : 0.0;
  return r;
}

}  // namespace

TwoLevelRuntime::TwoLevelRuntime(const CompiledQuery& low,
                                 const std::vector<CompiledQuery>& high,
                                 Options options)
    : options_(options) {
  obs::MetricRegistry& reg = options_.registry != nullptr
                                 ? *options_.registry
                                 : obs::MetricRegistry::Default();
  ring_metrics_ = obs::RingBufferMetrics::Create(reg);
  producer_retries_ =
      reg.GetCounter("streamop_runtime_producer_retries_total");
  packets_dropped_ = reg.GetCounter("streamop_runtime_packets_dropped_total");
  low_ = std::make_unique<QueryNode>("low", low, &reg);
  for (size_t i = 0; i < high.size(); ++i) {
    high_.push_back(std::make_unique<QueryNode>("high" + std::to_string(i),
                                                high[i], &reg));
  }
}

Result<RunReport> TwoLevelRuntime::Run(const Trace& trace) {
  RingBuffer<const PacketRecord*> ring(options_.ring_capacity);
  ring.AttachMetrics(&ring_metrics_);
  const std::vector<PacketRecord>& packets = trace.packets();
  size_t produced = 0;

  std::vector<Tuple> low_out;
  low_out.reserve(options_.batch_size);

  while (produced < packets.size()) {
    // Producer: fill the ring (pointers into the trace arena — no copy,
    // matching Gigascope's zero-copy feed of low-level queries).
    while (produced < packets.size() && ring.TryPush(&packets[produced])) {
      ++produced;
    }

    // Low-level node: drain the ring in batches; packet->tuple conversion
    // and selection both bill to the low node (these are the "memory copy"
    // costs §7.2 attributes to low-level evaluation).
    while (!ring.empty()) {
      low_out.clear();
      uint64_t t0 = NowNanos();
      const PacketRecord* p = nullptr;
      for (size_t i = 0; i < options_.batch_size && ring.TryPop(&p); ++i) {
        STREAMOP_RETURN_NOT_OK(low_->Push(PacketToTuple(*p)));
      }
      std::vector<Tuple> rows = low_->DrainOutput();
      uint64_t batch_ns = NowNanos() - t0;
      low_->AddCpuNanos(batch_ns);
      low_->RecordBatch(batch_ns);
      low_out = std::move(rows);

      // High-level nodes consume the low node's output.
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        for (const Tuple& t : low_out) {
          STREAMOP_RETURN_NOT_OK(node->Push(t));
        }
        uint64_t h_ns = NowNanos() - h0;
        node->AddCpuNanos(h_ns);
        node->RecordBatch(h_ns);
      }
    }
  }

  // End of stream.
  {
    uint64_t t0 = NowNanos();
    STREAMOP_RETURN_NOT_OK(low_->Finish());
    std::vector<Tuple> rows = low_->DrainOutput();
    low_->AddCpuNanos(NowNanos() - t0);
    for (auto& node : high_) {
      uint64_t h0 = NowNanos();
      for (const Tuple& t : rows) {
        STREAMOP_RETURN_NOT_OK(node->Push(t));
      }
      STREAMOP_RETURN_NOT_OK(node->Finish());
      node->AddCpuNanos(NowNanos() - h0);
    }
  }

  RunReport report;
  report.stream_seconds = trace.DurationSec();
  report.packets = packets.size();
  report.ring_push_failures = ring_metrics_.enabled()
                                  ? ring_metrics_.push_failures->value()
                                  : 0;
  report.ring_occupancy_hwm =
      ring_metrics_.enabled()
          ? static_cast<uint64_t>(ring_metrics_.occupancy_hwm->value())
          : 0;
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  return report;
}

Result<RunReport> TwoLevelRuntime::RunThreaded(const Trace& trace) {
  RingBuffer<const PacketRecord*> ring(options_.ring_capacity);
  ring.AttachMetrics(&ring_metrics_);
  const std::vector<PacketRecord>& packets = trace.packets();
  std::atomic<bool> done{false};
  std::atomic<bool> abort{false};  // consumer error: stop producing

  // Overload accounting, surfaced in the report and the registry: every
  // failed push is either retried (deterministic default) or dropped
  // (drop_on_overload, the paper's Gigascope behaviour).
  uint64_t producer_retries = 0;
  uint64_t packets_dropped = 0;

  uint64_t wall0 = NowNanos();
  std::thread producer([&] {
    const bool drop = options_.drop_on_overload;
    for (const PacketRecord& p : packets) {
      while (!ring.TryPush(&p)) {
        if (abort.load(std::memory_order_acquire)) return;
        if (drop) {
          ++packets_dropped;
          break;  // overload: shed this packet, move on
        }
        // The consumer is behind; yield instead of dropping (reproducible
        // results matter more here than overload semantics).
        ++producer_retries;
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
  });

  Status status;
  {
    const PacketRecord* p = nullptr;
    for (;;) {
      size_t popped = 0;
      uint64_t t0 = NowNanos();
      std::vector<Tuple> rows;
      for (size_t i = 0; i < options_.batch_size && ring.TryPop(&p); ++i) {
        ++popped;
        status = low_->Push(PacketToTuple(*p));
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
      rows = low_->DrainOutput();
      if (popped > 0) {
        uint64_t batch_ns = NowNanos() - t0;
        low_->AddCpuNanos(batch_ns);
        low_->RecordBatch(batch_ns);
      }
      for (auto& node : high_) {
        uint64_t h0 = NowNanos();
        for (const Tuple& t : rows) {
          status = node->Push(t);
          if (!status.ok()) break;
        }
        uint64_t h_ns = NowNanos() - h0;
        node->AddCpuNanos(h_ns);
        if (!rows.empty()) node->RecordBatch(h_ns);
        if (!status.ok()) break;
      }
      if (!status.ok()) break;
      if (popped == 0) {
        if (done.load(std::memory_order_acquire) && ring.empty()) break;
        std::this_thread::yield();
      }
    }
    if (!status.ok()) abort.store(true, std::memory_order_release);
  }
  producer.join();
  if (!status.ok()) return status;

  producer_retries_->Add(producer_retries);
  packets_dropped_->Add(packets_dropped);

  // End of stream.
  {
    uint64_t t0 = NowNanos();
    STREAMOP_RETURN_NOT_OK(low_->Finish());
    std::vector<Tuple> rows = low_->DrainOutput();
    low_->AddCpuNanos(NowNanos() - t0);
    for (auto& node : high_) {
      uint64_t h0 = NowNanos();
      for (const Tuple& t : rows) {
        STREAMOP_RETURN_NOT_OK(node->Push(t));
      }
      STREAMOP_RETURN_NOT_OK(node->Finish());
      node->AddCpuNanos(NowNanos() - h0);
    }
  }

  RunReport report;
  report.stream_seconds = trace.DurationSec();
  report.pipeline_seconds = static_cast<double>(NowNanos() - wall0) * 1e-9;
  report.packets = packets.size();
  report.ring_producer_retries = producer_retries;
  report.packets_dropped = packets_dropped;
  report.ring_push_failures = ring_metrics_.enabled()
                                  ? ring_metrics_.push_failures->value()
                                  : producer_retries + packets_dropped;
  report.ring_occupancy_hwm =
      ring_metrics_.enabled()
          ? static_cast<uint64_t>(ring_metrics_.occupancy_hwm->value())
          : 0;
  report.low = MakeReport(*low_, report.stream_seconds);
  for (auto& node : high_) {
    report.high.push_back(MakeReport(*node, report.stream_seconds));
  }
  return report;
}

Result<SingleRunResult> RunQueryOverTrace(const CompiledQuery& query,
                                          const Trace& trace,
                                          const std::string& name,
                                          obs::MetricRegistry* registry) {
  obs::MetricRegistry& reg =
      registry != nullptr ? *registry : obs::MetricRegistry::Default();
  QueryNode node(name, query, &reg);

  // Feed through an instrumented ring in batches — the same data path the
  // two-level runtime uses — so single-query runs (the CLI, the figure
  // benchmarks) surface ring occupancy and batch-latency metrics too.
  const obs::RingBufferMetrics ring_metrics =
      obs::RingBufferMetrics::Create(reg);
  RingBuffer<const PacketRecord*> ring(1 << 16);
  ring.AttachMetrics(&ring_metrics);
  constexpr size_t kBatch = 512;

  const std::vector<PacketRecord>& packets = trace.packets();
  size_t produced = 0;
  while (produced < packets.size()) {
    while (produced < packets.size() && ring.TryPush(&packets[produced])) {
      ++produced;
    }
    while (!ring.empty()) {
      uint64_t t0 = NowNanos();
      const PacketRecord* p = nullptr;
      for (size_t i = 0; i < kBatch && ring.TryPop(&p); ++i) {
        STREAMOP_RETURN_NOT_OK(node.Push(PacketToTuple(*p)));
      }
      uint64_t batch_ns = NowNanos() - t0;
      node.AddCpuNanos(batch_ns);
      node.RecordBatch(batch_ns);
    }
  }
  uint64_t t0 = NowNanos();
  STREAMOP_RETURN_NOT_OK(node.Finish());
  node.AddCpuNanos(NowNanos() - t0);

  SingleRunResult out;
  out.report = MakeReport(node, trace.DurationSec());
  out.output = node.DrainOutput();
  out.windows = node.window_stats();
  return out;
}

}  // namespace streamop
