// CascadeRuntime — "cascading one type of stream sampling inside a
// different type of stream sampling", the ongoing work §8 announces.
//
// A cascade is a chain of queries: stage 0 consumes a base stream; the
// output of stage i (registered in the catalog as "S<i>", with window-
// defining ordering propagated into its schema) is the input of stage i+1.
// Example: a heavy-hitter query feeding a reservoir query samples uniformly
// from the heavy hitters; a flow-building stage feeding subset-sum sampling
// is the paper's "sampled flows" pipeline in its two-phase form.

#ifndef STREAMOP_ENGINE_CASCADE_H_
#define STREAMOP_ENGINE_CASCADE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query_node.h"
#include "query/query.h"

namespace streamop {

class CascadeRuntime {
 public:
  /// Compiles the stage queries. `sqls[0]` must reference a stream of
  /// `base_catalog`; `sqls[i]` (i > 0) may additionally reference "S<i-1>",
  /// the previous stage's output.
  static Result<std::unique_ptr<CascadeRuntime>> Create(
      const std::vector<std::string>& sqls, const Catalog& base_catalog,
      const AnalyzerOptions& options = {});

  /// Feeds one base-stream tuple through every stage.
  Status Push(const Tuple& t);

  /// End of stream: closes every stage's final window in order, flushing
  /// each stage's tail output into the next.
  Status Finish();

  /// Output rows of the final stage.
  std::vector<Tuple> DrainOutput();

  size_t num_stages() const { return stages_.size(); }
  QueryNode& stage(size_t i) { return *stages_[i]; }
  SchemaPtr output_schema() const { return output_schema_; }

 private:
  CascadeRuntime() = default;

  // Pushes `rows` into stages [from..end), cascading intermediate output.
  Status Propagate(size_t from, std::vector<Tuple> rows);

  std::vector<std::unique_ptr<QueryNode>> stages_;
  SchemaPtr output_schema_;
};

}  // namespace streamop

#endif  // STREAMOP_ENGINE_CASCADE_H_
