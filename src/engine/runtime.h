// TwoLevelRuntime: the Gigascope execution architecture (§3, Fig. 1).
//
// Packets flow   trace arena -> ring buffer -> low-level node -> high-level
// nodes. The low-level node is a selection (or pre-sampling selection)
// query applied without copying off the ring buffer; its output tuples are
// the only per-packet copies, which is why a selective low-level query
// slashes total cost (Fig. 6). The runtime stopwatches each node and
// reports %CPU relative to the stream's real-time duration — the paper's
// metric of "fraction of one CPU consumed at line rate".

#ifndef STREAMOP_ENGINE_RUNTIME_H_
#define STREAMOP_ENGINE_RUNTIME_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/checkpoint.h"
#include "engine/load_shed.h"
#include "engine/query_node.h"
#include "net/trace_generator.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "query/analyzer.h"
#include "stream/resumable_source.h"
#include "stream/ring_buffer.h"

namespace streamop {

/// Per-node outcome of a run.
struct NodeReport {
  std::string name;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  double cpu_seconds = 0.0;
  double cpu_percent = 0.0;  // 100 * cpu_seconds / stream_seconds
};

/// Per-source ingest outcome of a RunSource run (stream/resumable_source.h).
struct SourceReport {
  std::string source;              // ResumableSource::describe()
  bool resumed_from_offset = false;  // restore seeked instead of replaying
  bool clean_end = false;            // EOF/FIN, not an ingest failure
  uint64_t durable_offset = 0;       // final resumable offset
  uint64_t offset_lag = 0;           // producer head - consumed, at exit
  std::string error;                 // last_status() message when not ok
  SourceIngestStats stats;
};

struct RunReport {
  double stream_seconds = 0.0;    // the trace's wall-clock span
  double pipeline_seconds = 0.0;  // RunThreaded: end-to-end wall time
  uint64_t packets = 0;

  // Ring-buffer overload accounting (RunThreaded). A full ring makes the
  // producer either retry (default: yield until space, deterministic) or
  // drop the packet (drop_on_overload — Gigascope's behaviour). Either
  // way the overload is now visible instead of silent.
  uint64_t ring_push_failures = 0;   // TryPush calls that found the ring full
  uint64_t ring_producer_retries = 0;  // producer yield-and-retry rounds
  uint64_t packets_dropped = 0;        // only with drop_on_overload
  uint64_t ring_occupancy_hwm = 0;     // high-water mark of ring occupancy

  // Producer backoff ladder (RunThreaded): after a burst of yields the
  // producer sleeps with exponentially growing intervals instead of
  // spinning; total sleep time quantifies how long the pipeline ran
  // producer-bound.
  uint64_t producer_backoff_sleeps = 0;
  double producer_backoff_seconds = 0.0;

  // Degradation summary (RunThreaded). With shedding enabled, `tuples_shed`
  // of `tuples_offered` packets were dropped at the consumer's Bernoulli
  // gate and the survivors reweighted by 1/p; shed_p_min/max bracket the
  // admission probability over the run.
  bool shedding_enabled = false;
  uint64_t tuples_offered = 0;
  uint64_t tuples_shed = 0;
  double shed_fraction = 0.0;
  double shed_p_min = 1.0;
  double shed_p_max = 1.0;

  uint64_t late_tuples = 0;        // clamped non-monotonic arrivals (nodes)
  uint64_t packets_malformed = 0;  // len below the 20-byte IP header minimum
  bool watchdog_fired = false;     // run terminated by the stall watchdog

  // Durability summary (engine/checkpoint.h). `recovered` is set when the
  // runtime restored a snapshot at construction; `recovered_windows` is the
  // flush count of the newest snapshot restored. `checkpoint_degraded`
  // means the last write attempt exhausted its retries (ingest continued
  // without durability).
  bool recovered = false;
  uint64_t recovered_windows = 0;
  bool checkpoint_degraded = false;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t checkpoint_corrupt_skipped = 0;

  // Network/file ingest (RunSource): one entry per source fed this run.
  std::vector<SourceReport> sources;

  NodeReport low;
  std::vector<NodeReport> high;
};

/// Runtime tuning knobs.
struct RuntimeOptions {
  size_t ring_capacity = 1 << 16;
  size_t batch_size = 512;
  /// RunThreaded only: drop packets when the ring is full instead of
  /// spinning the producer (the paper's Gigascope drops under overload).
  /// Off by default — dropping makes results depend on thread timing.
  bool drop_on_overload = false;
  /// Registry backing all runtime/node/operator metrics; nullptr uses the
  /// process-wide default registry.
  obs::MetricRegistry* registry = nullptr;

  /// Adaptive load shedding (RunThreaded only): when enabled, the consumer
  /// pre-samples packets with the AIMD-controlled probability p and tags
  /// admitted tuples with weight 1/p (see engine/load_shed.h).
  LoadShedConfig shed;

  /// Stall watchdog (RunThreaded): if neither thread makes progress for
  /// this long, the run aborts with Status::ResourceExhausted instead of
  /// hanging. 0 disables the watchdog.
  uint64_t stall_timeout_ms = 10000;

  /// Test hook: invoked by the consumer before each batch with the batch
  /// index and the runtime's abort flag. Fault-injection tests install
  /// cooperative stalls here (stream/fault_injection.h); the hook MUST
  /// return promptly once the abort flag is set.
  std::function<void(uint64_t, const std::atomic<bool>&)> consumer_stall_hook;

  /// Durable snapshots (engine/checkpoint.h): with a non-empty dir, every
  /// sampling node writes a versioned CRC-guarded snapshot of its durable
  /// state (plus the load-shed controller and exemplar reservoirs) every
  /// `checkpoint.every_n_windows` window flushes, and the runtime restores
  /// the newest valid snapshot at construction — a killed process resumes
  /// at the last flushed window. The `node` field is overwritten per node.
  CheckpointConfig checkpoint;

  /// RunSource: stop after this many delivered records (0 = run until the
  /// source ends). Lets a live socket run have a bounded footprint.
  uint64_t source_max_records = 0;

  /// RunSource: end the run cleanly after this much *consecutive* idle
  /// time (no records, only heartbeat reads). 0 = wait forever. Distinct
  /// from the per-read timeout (SocketSourceConfig::read_timeout_ms),
  /// which only bounds one Read() call.
  uint64_t source_max_idle_ms = 0;

  /// Embedded introspection server (obs/http_server.h): -1 disables it,
  /// 0 binds an ephemeral port (read back via http_server()->port()), any
  /// other value binds that port on loopback. The server starts with the
  /// runtime, serves /metrics, /metrics.json, /traces, /windows and
  /// /healthz while runs execute, and stops with the runtime's destructor.
  int http_port = -1;

  /// Metrics time-series ring + sampler thread (obs/timeseries.h). The
  /// runtime-level default zeroes interval_ms — no ring, no sampler, no
  /// alert engine — so existing embedders pay nothing. Any positive
  /// interval (or a non-empty flight dir below) brings up the whole
  /// stack: ring, alert engine with the built-in SLO rules, sampler
  /// thread, and the /timeseries, /alerts and /dashboard endpoints.
  obs::TimeSeriesOptions timeseries{.interval_ms = 0};

  /// Extra alert rules (the --alert-rules file contents, one rule per
  /// line — syntax in obs/alerts.h). Installed after the built-ins; parse
  /// errors are reported on stderr and via alerts_status().
  std::string alert_rules;

  /// Accuracy-SLO target for the built-in quality CI-width rule
  /// (obs/alerts.h AlertEngine::Options). <= 0 disables that rule.
  double quality_ci_target = 0.0;

  /// Flight recorder (obs/flight_recorder.h): with a non-empty dir the
  /// sampler spills the telemetry tail there on cadence and at every
  /// checkpoint write, and the runtime loads any pre-crash segment at
  /// construction, printing the forensic report to stderr and serving it
  /// on /forensics. A non-empty dir implies the time-series stack even if
  /// timeseries.interval_ms was left 0 (it then runs at 250ms).
  obs::FlightRecorderOptions flight;
};

/// One low-level query feeding any number of high-level queries.
class TwoLevelRuntime {
 public:
  using Options = RuntimeOptions;

  /// `low` must be a selection query over the packet schema; each entry of
  /// `high` consumes the low node's output schema (which, for the bundled
  /// benchmarks, re-exposes the packet columns).
  TwoLevelRuntime(const CompiledQuery& low,
                  const std::vector<CompiledQuery>& high,
                  RuntimeOptions options = RuntimeOptions());

  /// Replays the trace through the pipeline. High-level node outputs are
  /// retained and can be drained from the nodes afterwards.
  Result<RunReport> Run(const Trace& trace);

  /// Like Run(), but with true pipeline parallelism, the way Gigascope
  /// deploys its query nodes: a producer thread feeds the ring buffer and
  /// a consumer thread runs the low-level node + high-level operators.
  /// Results are identical to Run() (the pipeline is deterministic); only
  /// the wall-clock overlap differs. The report additionally carries the
  /// end-to-end wall time in `pipeline_seconds`.
  Result<RunReport> RunThreaded(const Trace& trace);

  /// Feeds the pipeline from an external ingest source (a socket or a pcap
  /// file — stream/resumable_source.h) instead of an in-memory trace. The
  /// loop is single-threaded: read a batch from the source, push it
  /// through the nodes, repeat; read timeouts degrade to heartbeat-empty
  /// batches so the loop keeps turning while the wire is quiet.
  ///
  /// Durability differs from the trace runs in one crucial way: snapshots
  /// requested by the window-flush hook are deferred to the next ingest
  /// batch boundary, where every record read so far has been fully
  /// processed, and the source's durable offset is persisted alongside the
  /// operator state. On restore, when the newest snapshots carry a source
  /// section matching this source's kind and stream id, the runtime seeks
  /// the source to the saved offset and cancels positional replay —
  /// byte-identical resume for pcap, at-most-once for sockets. Any
  /// mismatch (different source, mixed offsets, pre-source snapshot)
  /// falls back to the armed replay-from-start path.
  Result<RunReport> RunSource(ResumableSource& source);

  QueryNode& low_node() { return *low_; }
  QueryNode& high_node(size_t i) { return *high_[i]; }
  size_t num_high_nodes() const { return high_.size(); }

  /// Report of the most recent run, including runs that returned an error
  /// Status — the degradation summary (shed fraction, late tuples, watchdog
  /// verdict) survives an aborted run for post-mortems. Call from the
  /// driving thread only; concurrent readers (the /healthz endpoint) go
  /// through HealthJson(), which copies under the report mutex.
  const RunReport& last_report() const { return last_report_; }

  /// The embedded introspection server, or nullptr when http_port < 0 or
  /// startup failed (see http_status()).
  obs::HttpServer* http_server() { return http_server_.get(); }
  const Status& http_status() const { return http_status_; }

  /// The observability time-series stack, or nullptr when disabled
  /// (timeseries.interval_ms == 0 and flight.dir empty).
  obs::TimeSeries* timeseries() { return ts_.get(); }
  obs::AlertEngine* alert_engine() { return alerts_.get(); }
  obs::FlightRecorder* flight_recorder() { return flight_.get(); }
  obs::TimeSeriesSampler* sampler() { return sampler_.get(); }
  /// Parse status of RuntimeOptions::alert_rules (OK when empty).
  const Status& alerts_status() const { return alerts_status_; }

  /// The pre-crash forensic report loaded from flight.dir at construction
  /// (ForensicReport::valid is false when none was found). The JSON form
  /// is what /forensics serves under "report".
  const obs::ForensicReport& forensic_report() const {
    return forensic_report_;
  }

  /// True while Run()/RunThreaded() is executing.
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// /healthz body: run state + the degradation summary of the most recent
  /// (or in-flight) run as JSON. Thread-safe.
  std::string HealthJson() const;

  /// /healthz verdict: false once a run was terminated by the watchdog.
  bool healthy() const;

  /// True when a snapshot was restored at construction; the first
  /// Run/RunThreaded then replays the already-processed stream prefix.
  bool recovered() const { return recovered_; }
  uint64_t recovered_windows() const { return recovered_windows_; }

  /// The checkpoint manager of high node `i`, or nullptr when
  /// checkpointing is disabled or the node is not a sampling node.
  CheckpointManager* checkpoint_manager(size_t i) {
    return i < checkpoint_mgrs_.size() ? checkpoint_mgrs_[i].get() : nullptr;
  }

 private:
  // What the newest restored snapshot of each high node said about the
  // input source it was taken against (empty when nothing was restored or
  // the snapshot predates source sections).
  struct RestoredSourceInfo {
    bool restored = false;    // this node restored any snapshot
    bool has_source = false;  // ... carrying a source-offset section
    std::string kind;
    uint64_t stream_id = 0;
    uint64_t offset = 0;
  };

  // Folds the checkpoint counters and recovery state into `report`.
  void FillCheckpointReport(RunReport* report) const;
  // True while any sampling node is still discarding replayed input.
  bool AnyNodeRecovering() const;
  // Publishes the report to last_report_ (under the mutex, for /healthz
  // readers) and refreshes the degradation gauges in the registry.
  void PublishReport(const RunReport& report);
  // Serializes one node's durable state (+ shed controller, exemplars and
  // — for source runs — the source offset section) and hands it to `mgr`.
  void WriteNodeSnapshot(SamplingOperator* op, CheckpointManager* mgr,
                         uint64_t windows_flushed,
                         const ResumableSource* source);
  // RunSource restore: seek `source` to the checkpointed offset and cancel
  // positional replay when every restored node agrees on (kind, stream_id,
  // offset); otherwise leave the replay path armed. Returns whether the
  // seek was applied.
  bool ApplySourceResume(ResumableSource& source);
  // Writes the snapshots deferred by the flush hook during RunSource.
  void FlushPendingSnapshots(const ResumableSource* source);

  Options options_;
  RunReport last_report_;
  mutable std::mutex report_mu_;
  std::atomic<bool> running_{false};
  std::unique_ptr<QueryNode> low_;
  std::vector<std::unique_ptr<QueryNode>> high_;
  // Durability (engine/checkpoint.h): one manager per high node (nullptr
  // for selection nodes or with checkpointing disabled). active_shed_
  // points at the live controller while RunThreaded executes so the flush
  // hook (consumer thread) can include its state in snapshots.
  std::vector<std::unique_ptr<CheckpointManager>> checkpoint_mgrs_;
  std::atomic<LoadShedController*> active_shed_{nullptr};
  bool recovered_ = false;
  uint64_t recovered_windows_ = 0;
  std::string restored_shed_blob_;  // applied to the next run's controller
  std::vector<RestoredSourceInfo> restored_sources_;  // parallel to high_
  // RunSource state. source_run_active_ gates the flush hook onto the
  // deferred-snapshot path; it is only mutated by the thread driving
  // RunSource, and source runs never overlap threaded runs on one runtime.
  bool source_run_active_ = false;
  std::vector<uint64_t> pending_snapshots_;  // windows_flushed per node, 0=none
  // Live ingest view for /healthz while RunSource is in flight.
  std::atomic<bool> source_active_{false};
  std::atomic<uint64_t> live_source_offset_{0};
  std::atomic<uint64_t> live_source_lag_{0};
  std::atomic<uint64_t> live_source_reconnects_{0};
  std::atomic<uint64_t> live_source_gaps_{0};
  obs::RingBufferMetrics ring_metrics_;   // outlives the per-run rings
  obs::Counter* producer_retries_ = nullptr;
  obs::Counter* packets_dropped_ = nullptr;
  // Degradation summary as gauges (satellite of the PR 3 RunReport): what
  // /metrics scrapes see without parsing stderr or RunReport.
  obs::Gauge* shed_fraction_gauge_ = nullptr;
  obs::Gauge* shed_p_min_gauge_ = nullptr;
  obs::Gauge* shed_p_max_gauge_ = nullptr;
  obs::Gauge* late_tuples_gauge_ = nullptr;
  obs::Gauge* packets_malformed_gauge_ = nullptr;
  obs::Gauge* watchdog_fired_gauge_ = nullptr;
  Status http_status_;
  // Time-series / alerting / forensics stack (obs/timeseries.h et al.),
  // created when options enable it. Declared before http_server_ and
  // sampler_ so both consumer threads stop before their data sources die.
  std::unique_ptr<obs::TimeSeries> ts_;
  std::unique_ptr<obs::AlertEngine> alerts_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  obs::ForensicReport forensic_report_;  // pre-crash segment, if any
  Status alerts_status_;
  // Declared last: destroyed first, so the sampler and serving threads
  // (whose handlers read last_report_, the ring and the alert board) stop
  // before the state they read.
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  std::unique_ptr<obs::HttpServer> http_server_;
};

/// Single-node convenience: run one query over a trace and report stats.
/// The trace is fed through an instrumented ring buffer in batches (the
/// same data path the two-level runtime uses), so ring occupancy and
/// batch-latency metrics land in `registry` (nullptr = default registry).
struct SingleRunResult {
  NodeReport report;
  std::vector<Tuple> output;
  std::vector<WindowStats> windows;
};
Result<SingleRunResult> RunQueryOverTrace(const CompiledQuery& query,
                                          const Trace& trace,
                                          const std::string& name = "query",
                                          obs::MetricRegistry* registry =
                                              nullptr);

}  // namespace streamop

#endif  // STREAMOP_ENGINE_RUNTIME_H_
