// Adaptive load shedding (Gigascope §1/§5 in spirit): when the ring buffer
// between the packet source and the low-level node runs hot, the consumer
// pre-samples packets with a Bernoulli probability `p` driven by an AIMD
// controller, and every admitted tuple carries the Horvitz–Thompson weight
// 1/p so downstream sum/count/sum$/count$ estimates stay unbiased.
//
// Controller (DESIGN.md §8): occupancy >= high watermark, or any push
// failure since the last tick, multiplies p by `decrease_factor`
// (multiplicative decrease, floored at `min_probability`); occupancy <= low
// watermark adds `increase_step` (additive recovery, capped at 1.0); in
// between — the hysteresis band — p holds, which keeps the weight sequence
// piecewise-constant and the estimator variance low.
//
// The controller is deliberately pure and clock-free: callers decide when
// to Tick() (the runtime rate-limits ticks to `tick_interval_us`), so unit
// tests can drive it deterministically.

#ifndef STREAMOP_ENGINE_LOAD_SHED_H_
#define STREAMOP_ENGINE_LOAD_SHED_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"

namespace streamop {

struct LoadShedConfig {
  bool enabled = false;
  /// Ring occupancy fraction at/above which p decreases multiplicatively.
  double high_watermark = 0.75;
  /// Ring occupancy fraction at/below which p recovers additively.
  double low_watermark = 0.40;
  /// Multiplicative decrease factor in (0, 1).
  double decrease_factor = 0.7;
  /// Additive recovery step per tick.
  double increase_step = 0.05;
  /// Floor for p: bounds the worst-case weight 1/p (and thus estimator
  /// variance) even under a sustained burst.
  double min_probability = 0.1;
  /// Seed for the Bernoulli admission draws (deterministic runs).
  uint64_t seed = 0x5eedb007ULL;
  /// Minimum spacing between controller ticks, enforced by the caller.
  uint64_t tick_interval_us = 500;
  /// Cap on the per-tick history kept for reporting (0 = unbounded).
  size_t max_history = 4096;
};

/// One controller tick's observation and decision, for reports and tests.
struct ShedTickRecord {
  double occupancy = 0.0;       // ring fill fraction seen at the tick
  uint64_t push_failures = 0;   // producer push failures since last tick
  double p = 1.0;               // admission probability after the tick
  uint64_t offered = 0;         // cumulative tuples offered so far
  uint64_t admitted = 0;        // cumulative tuples admitted so far
};

class LoadShedController {
 public:
  explicit LoadShedController(const LoadShedConfig& config,
                              obs::MetricRegistry* registry = nullptr);

  /// Re-evaluates p from the ring state. `push_failures_delta` is the
  /// number of producer TryPush failures since the previous tick.
  void Tick(size_t ring_size, size_t ring_capacity,
            uint64_t push_failures_delta);

  /// Bernoulli admission test at the current p. Skips the RNG draw entirely
  /// while p == 1.0 so an idle controller costs one branch per packet.
  bool Admit() {
    ++offered_;
    if (p_ >= 1.0) {
      ++admitted_;
      return true;
    }
    if (rng_.NextDouble() < p_) {
      ++admitted_;
      return true;
    }
    return false;
  }

  double probability() const { return p_; }
  /// Horvitz–Thompson weight for tuples admitted at the current p.
  double weight() const { return 1.0 / p_; }

  double min_probability_seen() const { return p_min_seen_; }
  double max_probability_seen() const { return p_max_seen_; }
  uint64_t offered() const { return offered_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t shed() const { return offered_ - admitted_; }
  double shed_fraction() const {
    return offered_ == 0
               ? 0.0
               : static_cast<double>(shed()) / static_cast<double>(offered_);
  }
  uint64_t ticks() const { return ticks_; }
  const std::vector<ShedTickRecord>& history() const { return history_; }
  const LoadShedConfig& config() const { return config_; }

  /// Checkpoint: controller position (p, RNG, counters) and the tick
  /// history. Config and metric handles stay as constructed.
  void SerializeTo(ByteWriter& w) const {
    rng_.SerializeTo(w);
    w.F64(p_);
    w.F64(p_min_seen_);
    w.F64(p_max_seen_);
    w.U64(offered_);
    w.U64(admitted_);
    w.U64(ticks_);
    w.U64(history_.size());
    for (const ShedTickRecord& t : history_) {
      w.F64(t.occupancy);
      w.U64(t.push_failures);
      w.F64(t.p);
      w.U64(t.offered);
      w.U64(t.admitted);
    }
  }
  void RestoreFrom(ByteReader& r) {
    rng_.RestoreFrom(r);
    p_ = r.F64();
    p_min_seen_ = r.F64();
    p_max_seen_ = r.F64();
    offered_ = r.U64();
    admitted_ = r.U64();
    ticks_ = r.U64();
    history_.clear();
    uint64_t n = r.U64();
    if (!r.CheckCount(n, 40)) return;
    history_.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      ShedTickRecord t;
      t.occupancy = r.F64();
      t.push_failures = r.U64();
      t.p = r.F64();
      t.offered = r.U64();
      t.admitted = r.U64();
      history_.push_back(t);
    }
  }

 private:
  LoadShedConfig config_;
  Pcg64 rng_;
  double p_ = 1.0;
  double p_min_seen_ = 1.0;
  double p_max_seen_ = 1.0;
  uint64_t offered_ = 0;
  uint64_t admitted_ = 0;
  uint64_t ticks_ = 0;
  std::vector<ShedTickRecord> history_;
  obs::Gauge* probability_gauge_ = nullptr;
  obs::Counter* decreases_ = nullptr;
  obs::Counter* increases_ = nullptr;
};

}  // namespace streamop

#endif  // STREAMOP_ENGINE_LOAD_SHED_H_
