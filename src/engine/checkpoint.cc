#include "engine/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace streamop {

namespace {

// Header layout (kHeaderSize = 32 bytes, little-endian):
//   u32 magic "STCK"
//   u32 version
//   u64 windows_flushed
//   u64 payload_len
//   u32 payload_crc   (CRC-32C of the payload bytes)
//   u32 header_crc    (CRC-32C of the 28 bytes above)
// The header CRC distinguishes a torn/bit-flipped header from a merely
// stale version, and the payload CRC catches truncation past the header
// (payload_len is also checked against the file size) and body bit flips.
constexpr uint32_t kMagic = 0x4B435453;  // "STCK"

bool ReadFileBytes(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return true;
}

// mkdir -p: creates each missing component. Returns false when a
// component cannot be created (permissions, file in the way) — the write
// then fails through the normal bounded-retry/degraded path.
bool EnsureDir(const std::string& dir) {
  size_t i = 0;
  while (i <= dir.size()) {
    size_t j = dir.find('/', i);
    if (j == std::string::npos) j = dir.size();
    const std::string partial = dir.substr(0, j);
    if (!partial.empty() && partial != "/" && partial != "." &&
        partial != "..") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return false;
      }
    }
    i = j + 1;
  }
  return true;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  if (config_.every_n_windows == 0) config_.every_n_windows = 1;
  if (config_.retain == 0) config_.retain = 1;
  obs::MetricRegistry& reg = config_.registry != nullptr
                                 ? *config_.registry
                                 : obs::MetricRegistry::Default();
  bytes_gauge_ = reg.GetGauge("streamop_checkpoint_bytes");
  write_ns_gauge_ = reg.GetGauge("streamop_checkpoint_write_ns");
  age_gauge_ = reg.GetGauge("streamop_checkpoint_age_windows");
  degraded_gauge_ = reg.GetGauge("streamop_checkpoint_degraded");
  writes_counter_ = reg.GetCounter("streamop_checkpoint_writes_total");
  failures_counter_ = reg.GetCounter("streamop_checkpoint_failures_total");
  corrupt_counter_ =
      reg.GetCounter("streamop_checkpoint_corrupt_skipped_total");
}

std::string CheckpointManager::FrameSnapshot(uint64_t windows_flushed,
                                             std::string_view payload,
                                             uint32_t version) {
  ByteWriter w;
  w.U32(kMagic);
  w.U32(version);
  w.U64(windows_flushed);
  w.U64(payload.size());
  w.U32(Crc32c(payload));
  w.U32(Crc32c(w.data()));  // header_crc over the 28 bytes above
  w.Raw(payload.data(), payload.size());
  return w.Release();
}

bool CheckpointManager::VerifySnapshot(std::string_view file_bytes,
                                       LoadedCheckpoint* out,
                                       std::string* why) {
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (file_bytes.size() < kHeaderSize) return fail("truncated header");
  ByteReader r(file_bytes.data(), kHeaderSize);
  const uint32_t magic = r.U32();
  const uint32_t version = r.U32();
  const uint64_t windows = r.U64();
  const uint64_t payload_len = r.U64();
  const uint32_t payload_crc = r.U32();
  const uint32_t header_crc = r.U32();
  if (magic != kMagic) return fail("bad magic");
  if (header_crc != Crc32c(file_bytes.data(), kHeaderSize - 4)) {
    return fail("header CRC mismatch");
  }
  if (version != kVersion) return fail("version mismatch");
  if (payload_len != file_bytes.size() - kHeaderSize) {
    return fail("truncated payload");
  }
  const std::string_view payload = file_bytes.substr(kHeaderSize);
  if (payload_crc != Crc32c(payload)) return fail("payload CRC mismatch");
  out->payload.assign(payload);
  out->windows_flushed = windows;
  return true;
}

bool CheckpointManager::ShouldWrite(uint64_t windows_flushed) {
  if (!enabled()) return false;
  const uint64_t age =
      windows_flushed >= last_written_windows_
          ? windows_flushed - last_written_windows_
          : windows_flushed;
  age_gauge_->Set(static_cast<double>(age));
  return windows_flushed % config_.every_n_windows == 0;
}

std::string CheckpointManager::SnapshotPath(uint64_t windows_flushed) const {
  char seq[32];
  std::snprintf(seq, sizeof(seq), "%012llu",
                static_cast<unsigned long long>(windows_flushed));
  return config_.dir + "/" + config_.node + ".ckpt." + seq;
}

bool CheckpointManager::WriteOnce(const std::string& path,
                                  std::string_view framed) {
  if (!EnsureDir(config_.dir)) return false;
  const std::string tmp = config_.dir + "/" + config_.node + ".ckpt.tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Durable rename: fsync the directory so the new name survives a crash.
  const int dfd = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return false;
  const bool dir_ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return dir_ok;
}

bool CheckpointManager::Write(uint64_t windows_flushed,
                              std::string_view payload) {
  if (!enabled()) return false;
  const auto t0 = std::chrono::steady_clock::now();
  const std::string framed = FrameSnapshot(windows_flushed, payload);
  const std::string path = SnapshotPath(windows_flushed);

  bool ok = false;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config_.retry_backoff_ms * static_cast<uint64_t>(attempt)));
    }
    if (WriteOnce(path, framed)) {
      ok = true;
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  last_write_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  write_ns_gauge_->Set(static_cast<double>(last_write_ns_));

  if (!ok) {
    ++failures_;
    failures_counter_->Add();
    degraded_ = true;
    degraded_gauge_->Set(1.0);
    std::fprintf(stderr,
                 "[checkpoint] %s: write failed after %d attempts "
                 "(%s) — continuing without durability\n",
                 config_.node.c_str(), config_.max_retries + 1,
                 std::strerror(errno));
    return false;
  }
  ++writes_;
  writes_counter_->Add();
  last_bytes_ = framed.size();
  last_written_windows_ = windows_flushed;
  bytes_gauge_->Set(static_cast<double>(last_bytes_));
  age_gauge_->Set(0.0);
  if (degraded_) {
    degraded_ = false;  // durability restored
    degraded_gauge_->Set(0.0);
  }
  DeleteOldSnapshots();
  return true;
}

std::vector<std::pair<uint64_t, std::string>>
CheckpointManager::ListSnapshots() const {
  std::vector<std::pair<uint64_t, std::string>> out;
  DIR* dir = ::opendir(config_.dir.c_str());
  if (dir == nullptr) return out;
  const std::string prefix = config_.node + ".ckpt.";
  for (struct dirent* e = ::readdir(dir); e != nullptr; e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix))
      continue;
    const std::string seq = name.substr(prefix.size());
    if (seq == "tmp") continue;
    if (seq.find_first_not_of("0123456789") != std::string::npos) continue;
    out.emplace_back(std::strtoull(seq.c_str(), nullptr, 10),
                     config_.dir + "/" + name);
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

void CheckpointManager::DeleteOldSnapshots() {
  const auto snaps = ListSnapshots();
  for (size_t i = config_.retain; i < snaps.size(); ++i) {
    ::unlink(snaps[i].second.c_str());
  }
}

std::optional<LoadedCheckpoint> CheckpointManager::LoadLatest() {
  if (!enabled()) return std::nullopt;
  for (const auto& [windows, path] : ListSnapshots()) {
    std::string bytes;
    if (!ReadFileBytes(path, &bytes)) {
      ++corrupt_skipped_;
      corrupt_counter_->Add();
      std::fprintf(stderr, "[checkpoint] %s: unreadable, skipped\n",
                   path.c_str());
      continue;
    }
    LoadedCheckpoint loaded;
    std::string why;
    if (!VerifySnapshot(bytes, &loaded, &why)) {
      ++corrupt_skipped_;
      corrupt_counter_->Add();
      std::fprintf(stderr, "[checkpoint] %s: %s, skipped\n", path.c_str(),
                   why.c_str());
      continue;
    }
    loaded.path = path;
    return loaded;
  }
  return std::nullopt;
}

}  // namespace streamop
