// Durable engine snapshots (DESIGN.md §10): a versioned, CRC-guarded binary
// image of everything that must survive a kill — sampler and SFUN state
// (RNG stream positions included), per-group aggregates, supergroup
// partials and creation order, window boundaries, load-shed controller
// position, telemetry exemplar reservoirs.
//
// One CheckpointManager owns the snapshot files of one query node. Writes
// are atomic (temp file + fsync + rename + directory fsync) so a crash
// mid-write can only ever leave the previous snapshot in place, never a
// half-written current one. A bounded set of the most recent snapshots is
// retained; LoadLatest() walks them newest-first and returns the first one
// whose header, version and CRC all verify — torn, truncated, bit-flipped
// or stale-version files are counted, logged and skipped, never restored.
//
// Failure is a first-class state, not an abort: if the directory is
// unwritable or fsync fails, Write() retries a bounded number of times with
// backoff, then marks the manager degraded and returns — ingest continues
// without durability rather than crashing. A later successful write clears
// the degraded flag.

#ifndef STREAMOP_ENGINE_CHECKPOINT_H_
#define STREAMOP_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/serde.h"
#include "obs/metrics.h"

namespace streamop {

struct CheckpointConfig {
  /// Snapshot directory. Empty disables checkpointing entirely.
  std::string dir;

  /// Write a snapshot every N window flushes (0 behaves like 1).
  uint64_t every_n_windows = 1;

  /// How many snapshots to retain per node. Older ones are deleted after a
  /// successful write; keeping >1 gives LoadLatest() a fallback when the
  /// newest file is corrupt.
  size_t retain = 3;

  /// File-name prefix (the owning query node's name): `<node>.ckpt.<N>`.
  std::string node = "node";

  /// Bounded retry on write failure: total attempts = 1 + max_retries,
  /// sleeping retry_backoff_ms * attempt between them.
  int max_retries = 3;
  uint64_t retry_backoff_ms = 10;

  /// Registry for the checkpoint gauges/counters; nullptr = process default.
  obs::MetricRegistry* registry = nullptr;
};

/// The outcome of LoadLatest().
struct LoadedCheckpoint {
  std::string payload;        // verified snapshot body
  uint64_t windows_flushed;   // flush count the snapshot was taken at
  std::string path;           // which file it came from
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig config);

  bool enabled() const { return !config_.dir.empty(); }

  /// Cadence + age bookkeeping, called on every window flush. Returns true
  /// when a snapshot should be written for this flush count (and updates
  /// the age gauge either way).
  bool ShouldWrite(uint64_t windows_flushed);

  /// Writes `payload` as the snapshot for `windows_flushed`, atomically,
  /// with bounded retry. Never throws and never aborts ingest: persistent
  /// failure increments failures(), sets degraded(), and returns false.
  bool Write(uint64_t windows_flushed, std::string_view payload);

  /// Newest snapshot that verifies (magic, header CRC, version, payload
  /// length and CRC), walking retained files newest-first. Invalid files
  /// are counted in corrupt_skipped() and skipped; nullopt when none is
  /// loadable.
  std::optional<LoadedCheckpoint> LoadLatest();

  // Plain counters, authoritative for RunReport (survive NO_STATS builds).
  uint64_t writes() const { return writes_; }
  uint64_t failures() const { return failures_; }
  uint64_t corrupt_skipped() const { return corrupt_skipped_; }
  uint64_t last_bytes() const { return last_bytes_; }
  uint64_t last_write_ns() const { return last_write_ns_; }
  bool degraded() const { return degraded_; }

  /// Snapshot wire format version accepted by this build.
  static constexpr uint32_t kVersion = 1;
  /// Fixed header size in bytes (see checkpoint.cc for the layout).
  static constexpr size_t kHeaderSize = 32;

  /// Frames `payload` with the magic/version/CRC header — exposed so tests
  /// (and the fault injector) can build valid and near-valid files.
  static std::string FrameSnapshot(uint64_t windows_flushed,
                                   std::string_view payload,
                                   uint32_t version = kVersion);

  /// Verifies a framed snapshot; on success fills `out` and returns true.
  /// `why` (optional) receives a short reason on failure.
  static bool VerifySnapshot(std::string_view file_bytes,
                             LoadedCheckpoint* out,
                             std::string* why = nullptr);

 private:
  // All retained snapshot files of this node, newest (highest flush count)
  // first.
  std::vector<std::pair<uint64_t, std::string>> ListSnapshots() const;
  std::string SnapshotPath(uint64_t windows_flushed) const;
  bool WriteOnce(const std::string& path, std::string_view framed);
  void DeleteOldSnapshots();

  CheckpointConfig config_;
  uint64_t last_written_windows_ = 0;
  uint64_t writes_ = 0;
  uint64_t failures_ = 0;
  uint64_t corrupt_skipped_ = 0;
  uint64_t last_bytes_ = 0;
  uint64_t last_write_ns_ = 0;
  bool degraded_ = false;

  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* write_ns_gauge_ = nullptr;
  obs::Gauge* age_gauge_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Counter* corrupt_counter_ = nullptr;
};

}  // namespace streamop

#endif  // STREAMOP_ENGINE_CHECKPOINT_H_
