#include "engine/cascade.h"

namespace streamop {

Result<std::unique_ptr<CascadeRuntime>> CascadeRuntime::Create(
    const std::vector<std::string>& sqls, const Catalog& base_catalog,
    const AnalyzerOptions& options) {
  if (sqls.empty()) {
    return Status::InvalidArgument("a cascade needs at least one stage");
  }
  auto runtime = std::unique_ptr<CascadeRuntime>(new CascadeRuntime());
  Catalog catalog = base_catalog;
  for (size_t i = 0; i < sqls.size(); ++i) {
    AnalyzerOptions stage_options = options;
    stage_options.seed = options.seed + i * 0x9e37;  // distinct RNG streams
    STREAMOP_ASSIGN_OR_RETURN(CompiledQuery cq,
                              CompileQuery(sqls[i], catalog, stage_options));
    SchemaPtr out = cq.output_schema();
    // Register this stage's output as S<i> for the next stage's FROM.
    auto named = std::make_shared<Schema>("S" + std::to_string(i),
                                          out->fields());
    STREAMOP_RETURN_NOT_OK(catalog.RegisterStream(named));
    runtime->stages_.push_back(
        std::make_unique<QueryNode>("stage" + std::to_string(i), cq));
    runtime->output_schema_ = named;
  }
  return runtime;
}

Status CascadeRuntime::Propagate(size_t from, std::vector<Tuple> rows) {
  for (size_t i = from; i < stages_.size() && !rows.empty(); ++i) {
    for (const Tuple& t : rows) {
      STREAMOP_RETURN_NOT_OK(stages_[i]->Push(t));
    }
    if (i + 1 == stages_.size()) return Status::OK();  // keep final output
    rows = stages_[i]->DrainOutput();
  }
  return Status::OK();
}

Status CascadeRuntime::Push(const Tuple& t) {
  STREAMOP_RETURN_NOT_OK(stages_[0]->Push(t));
  if (stages_.size() == 1) return Status::OK();
  std::vector<Tuple> rows = stages_[0]->DrainOutput();
  return Propagate(1, std::move(rows));
}

Status CascadeRuntime::Finish() {
  // Close stages front to back so that each stage's tail output still flows
  // through the rest of the pipeline.
  for (size_t i = 0; i < stages_.size(); ++i) {
    STREAMOP_RETURN_NOT_OK(stages_[i]->Finish());
    if (i + 1 < stages_.size()) {
      STREAMOP_RETURN_NOT_OK(Propagate(i + 1, stages_[i]->DrainOutput()));
    }
  }
  return Status::OK();
}

std::vector<Tuple> CascadeRuntime::DrainOutput() {
  return stages_.back()->DrainOutput();
}

}  // namespace streamop
