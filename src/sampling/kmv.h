// K-minimum-values (min-hash) sketch, §4.3: retain the k smallest hash
// values of the distinct elements seen. From two sketches one estimates the
// Broder resemblance |A∩B| / |A∪B|; from one sketch the distinct count and
// — following Datar-Muthukrishnan — the rarity (fraction of distinct
// elements that occur exactly once), by also tracking the multiplicity of
// each retained element.

#ifndef STREAMOP_SAMPLING_KMV_H_
#define STREAMOP_SAMPLING_KMV_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash_table.h"
#include "common/hash.h"
#include "common/serde.h"

namespace streamop {

class KMinHashSketch {
 public:
  explicit KMinHashSketch(uint64_t k, uint64_t hash_seed = 0);

  /// Processes one element (pre-hashed by the caller if it isn't a u64).
  void Offer(uint64_t element);

  uint64_t k() const { return k_; }
  uint64_t hash_seed() const { return hash_seed_; }
  size_t size() const { return entries_.size(); }
  uint64_t distinct_offered_upper_bound() const { return offers_; }

  /// The retained hash values, ascending.
  std::vector<uint64_t> MinValues() const;

  /// KMV distinct-count estimator: (k-1) / U_(k) with U_(k) the kth
  /// smallest hash normalized to (0,1]. Falls back to the exact count while
  /// fewer than k distinct elements have been seen.
  double EstimateDistinctCount() const;

  /// Broder resemblance estimate of the element sets behind two sketches
  /// (must share k and hash seed): |MinValues(A ∪ B) ∩ A_sketch ∩ B_sketch|
  /// / k, the standard k-minimum-values coincidence estimator.
  double EstimateResemblance(const KMinHashSketch& other) const;

  /// Rarity: fraction of distinct elements occurring exactly once,
  /// estimated over the uniform distinct-element sample the sketch retains.
  double EstimateRarity() const;

  void Clear();

  /// Checkpoint: config, offer count and the retained (hash, multiplicity)
  /// entries. The heap is rebuilt on restore, so the snapshot does not
  /// depend on the flat table's slot order.
  void SerializeTo(ByteWriter& w) const;
  void RestoreFrom(ByteReader& r);

 private:
  // hash value -> multiplicity of the underlying element. The ordered map
  // this used to be cost an allocation and a tree rebalance per admitted
  // element; the flat table plus a max-heap over the retained hashes gives
  // O(1) membership and O(log k) eviction with no per-entry allocation.
  using EntryMap = FlatHashTable<uint64_t, uint64_t>;

  uint64_t k_;
  uint64_t hash_seed_;
  uint64_t offers_ = 0;
  EntryMap entries_;           // at most k smallest, keyed by hash
  std::vector<uint64_t> heap_; // max-heap of the retained hashes
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_KMV_H_
