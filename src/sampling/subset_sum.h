// Standalone subset-sum samplers over weighted items:
//
//   * BasicSubsetSumSampler<T>   — fixed threshold z (§4.4, basic version);
//   * DynamicSubsetSumSampler<T> — fixed target sample size N with the
//     aggressive z adjustment and cleaning-phase subsampling (§4.4, dynamic
//     version), plus the paper's *relaxed* cross-window threshold carry-over
//     (§7.1): z for the next window starts at z_final / f.
//
// These classes are what a library user embeds directly; the query-engine
// path reaches the identical logic through the ssample()/ssdo_clean()/...
// stateful functions in src/core/sfun_subset_sum.{h,cc}.

#ifndef STREAMOP_SAMPLING_SUBSET_SUM_H_
#define STREAMOP_SAMPLING_SUBSET_SUM_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "sampling/threshold_core.h"

namespace streamop {

/// One retained sample: the caller's payload plus the weight-adjusted
/// estimate contribution (max of true weight and every threshold the item
/// survived).
template <typename T>
struct WeightedSample {
  T item;
  double adjusted_weight;
};

template <typename T>
void SerdeWrite(ByteWriter& w, const WeightedSample<T>& s) {
  SerdeWrite(w, s.item);
  w.F64(s.adjusted_weight);
}
template <typename T>
void SerdeRead(ByteReader& r, WeightedSample<T>* s) {
  SerdeRead(r, &s->item);
  s->adjusted_weight = r.F64();
}

/// Basic subset-sum sampling at a fixed threshold z. The expected value of
/// EstimateSum() over any subset of offered items equals that subset's true
/// weight sum; the sample size is whatever the data yields.
template <typename T>
class BasicSubsetSumSampler {
 public:
  explicit BasicSubsetSumSampler(double z,
                                 ThresholdMode mode = ThresholdMode::kCounter,
                                 uint64_t seed = 1)
      : core_(z, mode, seed) {}

  /// Offers one item; retains it if the threshold test admits it.
  void Offer(const T& item, double weight) {
    ThresholdDecision d = core_.Offer(weight);
    if (d.sampled) {
      samples_.push_back(WeightedSample<T>{item, d.adjusted_weight});
      if (d.was_large) ++large_count_;
    }
  }

  double z() const { return core_.z(); }
  const std::vector<WeightedSample<T>>& samples() const { return samples_; }
  uint64_t large_count() const { return large_count_; }

  /// Unbiased estimate of the total weight of all offered items.
  double EstimateSum() const {
    double s = 0.0;
    for (const auto& ws : samples_) s += ws.adjusted_weight;
    return s;
  }

  void Clear() {
    samples_.clear();
    large_count_ = 0;
    core_.ResetCounter();
  }

  void SerializeTo(ByteWriter& w) const {
    core_.SerializeTo(w);
    SerdeWriteVector(w, samples_);
    w.U64(large_count_);
  }
  void RestoreFrom(ByteReader& r) {
    core_.RestoreFrom(r);
    SerdeReadVector(r, &samples_);
    large_count_ = r.U64();
  }

 private:
  ThresholdSamplerCore core_;
  std::vector<WeightedSample<T>> samples_;
  uint64_t large_count_ = 0;
};

/// Statistics one window of dynamic subset-sum sampling produces; the
/// accuracy and cleaning-cost figures are computed from these.
struct SubsetSumWindowStats {
  uint64_t tuples_offered = 0;
  uint64_t samples_admitted = 0;   // admitted at any point in the window
  uint64_t cleaning_phases = 0;
  uint64_t final_sample_count = 0;
  double final_z = 0.0;
  double estimated_sum = 0.0;
};

/// Dynamic subset-sum sampling: targets N final samples per window.
/// A cleaning phase fires when the retained sample exceeds beta*N: the
/// threshold is adjusted aggressively and the retained sample is
/// re-subsampled at the new threshold. At the window boundary a final
/// cleaning enforces |S| <= N, and the closing threshold seeds the next
/// window — divided by relax_factor when relaxation is enabled.
template <typename T>
class DynamicSubsetSumSampler {
 public:
  struct Options {
    uint64_t target_samples = 1000;  // N
    double beta = 2.0;               // cleaning trigger at beta*N
    double initial_z = 100.0;
    bool relaxed = false;            // the paper's accuracy fix
    double relax_factor = 10.0;      // f: z_next = z_final / f
    uint64_t seed = 1;               // seeds the admission/subsampling RNGs
    ThresholdMode mode = ThresholdMode::kCounter;
  };

  explicit DynamicSubsetSumSampler(Options opt)
      : opt_(opt), core_(opt.initial_z, opt.mode, opt.seed) {}

  /// Offers one item within the current window.
  void Offer(const T& item, double weight) {
    ++stats_.tuples_offered;
    ThresholdDecision d = core_.Offer(weight);
    if (d.sampled) {
      samples_.push_back(WeightedSample<T>{item, d.adjusted_weight});
      if (d.was_large) ++large_count_;
      ++stats_.samples_admitted;
    }
    // Clean until back under the trigger: while the threshold is still far
    // below the weight scale, one capped adjustment may not prune anything,
    // so the loop mirrors the operator's per-tuple re-firing of
    // CLEANING WHEN. Each iteration at least doubles z, so it terminates.
    double trigger = opt_.beta * static_cast<double>(opt_.target_samples);
    while (static_cast<double>(samples_.size()) > trigger) Clean();
  }

  /// Ends the window: final cleaning down to at most N samples, stats
  /// capture, threshold carry-over, and state reset for the next window.
  SubsetSumWindowStats EndWindow() {
    while (samples_.size() > opt_.target_samples) Clean();
    stats_.final_sample_count = samples_.size();
    stats_.final_z = core_.z();
    stats_.estimated_sum = EstimateSum();
    SubsetSumWindowStats out = stats_;

    double z_next = core_.z();
    if (opt_.relaxed && opt_.relax_factor > 1.0) {
      z_next /= opt_.relax_factor;
    }
    if (z_next < kMinZ) z_next = kMinZ;
    core_ = ThresholdSamplerCore(z_next, opt_.mode,
                                 HashCombine(opt_.seed, ++rng_seq_));
    samples_.clear();
    large_count_ = 0;
    stats_ = SubsetSumWindowStats{};
    return out;
  }

  /// Unbiased estimate of the window's total weight so far.
  double EstimateSum() const {
    double s = 0.0;
    for (const auto& ws : samples_) s += ws.adjusted_weight;
    return s;
  }

  const std::vector<WeightedSample<T>>& samples() const { return samples_; }
  double z() const { return core_.z(); }
  uint64_t cleaning_phases() const { return stats_.cleaning_phases; }

  /// Checkpoint: options, threshold core (incl. RNG position), retained
  /// samples, cleaning sequence number and in-window stats.
  void SerializeTo(ByteWriter& w) const {
    w.U64(opt_.target_samples);
    w.F64(opt_.beta);
    w.F64(opt_.initial_z);
    w.Bool(opt_.relaxed);
    w.F64(opt_.relax_factor);
    w.U64(opt_.seed);
    w.U8(static_cast<uint8_t>(opt_.mode));
    core_.SerializeTo(w);
    SerdeWriteVector(w, samples_);
    w.U64(large_count_);
    w.U64(rng_seq_);
    w.U64(stats_.tuples_offered);
    w.U64(stats_.samples_admitted);
    w.U64(stats_.cleaning_phases);
    w.U64(stats_.final_sample_count);
    w.F64(stats_.final_z);
    w.F64(stats_.estimated_sum);
  }
  void RestoreFrom(ByteReader& r) {
    opt_.target_samples = r.U64();
    opt_.beta = r.F64();
    opt_.initial_z = r.F64();
    opt_.relaxed = r.Bool();
    opt_.relax_factor = r.F64();
    opt_.seed = r.U64();
    opt_.mode = static_cast<ThresholdMode>(r.U8());
    core_.RestoreFrom(r);
    SerdeReadVector(r, &samples_);
    large_count_ = r.U64();
    rng_seq_ = r.U64();
    stats_.tuples_offered = r.U64();
    stats_.samples_admitted = r.U64();
    stats_.cleaning_phases = r.U64();
    stats_.final_sample_count = r.U64();
    stats_.final_z = r.F64();
    stats_.estimated_sum = r.F64();
  }

 private:
  static constexpr double kMinZ = 1e-6;

  // One cleaning phase: adjust z aggressively, then re-subsample the
  // retained items at the new threshold with a fresh counter.
  void Clean() {
    ++stats_.cleaning_phases;
    double z_new = AggressiveZAdjust(core_.z(), samples_.size(),
                                     opt_.target_samples, large_count_);
    if (z_new <= core_.z()) {
      // The threshold failed to grow (degenerate count mix); force growth so
      // the cleaning loop terminates.
      z_new = core_.z() * 2.0;
    }
    ThresholdSamplerCore resample(z_new, opt_.mode,
                                  HashCombine(opt_.seed, ++rng_seq_));
    std::vector<WeightedSample<T>> kept;
    kept.reserve(samples_.size());
    uint64_t large = 0;
    for (auto& ws : samples_) {
      ThresholdDecision d = resample.Offer(ws.adjusted_weight);
      if (d.sampled) {
        kept.push_back(WeightedSample<T>{ws.item, d.adjusted_weight});
        if (d.was_large) ++large;
      }
    }
    samples_ = std::move(kept);
    large_count_ = large;
    // Continue stream admission at the new threshold; the in-flight
    // small-tuple counter restarts (it refers to the old threshold).
    core_.set_z(z_new);
    core_.ResetCounter();
  }

  Options opt_;
  ThresholdSamplerCore core_;
  std::vector<WeightedSample<T>> samples_;
  uint64_t large_count_ = 0;
  uint64_t rng_seq_ = 0;
  SubsetSumWindowStats stats_;
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_SUBSET_SUM_H_
