#include "sampling/kmv.h"

#include <algorithm>

namespace streamop {

KMinHashSketch::KMinHashSketch(uint64_t k, uint64_t hash_seed)
    : k_(k), hash_seed_(hash_seed) {
  entries_.reserve(static_cast<size_t>(k));
  heap_.reserve(static_cast<size_t>(k));
}

void KMinHashSketch::Offer(uint64_t element) {
  ++offers_;
  uint64_t h = SeededHash64(element, hash_seed_);
  auto it = entries_.find(h);
  if (it != entries_.end()) {
    ++it->second;
    return;
  }
  if (entries_.size() < k_) {
    entries_.emplace(h, 1);
    heap_.push_back(h);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  // The heap front is the largest retained hash — the eviction candidate.
  if (h < heap_.front()) {
    entries_.erase(heap_.front());
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = h;
    std::push_heap(heap_.begin(), heap_.end());
    entries_.emplace(h, 1);
  }
}

std::vector<uint64_t> KMinHashSketch::MinValues() const {
  std::vector<uint64_t> out(heap_.begin(), heap_.end());
  std::sort(out.begin(), out.end());
  return out;
}

double KMinHashSketch::EstimateDistinctCount() const {
  if (entries_.size() < k_) return static_cast<double>(entries_.size());
  uint64_t kth = heap_.front();  // largest of the k smallest
  double u = (static_cast<double>(kth) + 1.0) / 18446744073709551616.0;  // 2^64
  if (u <= 0.0) return static_cast<double>(entries_.size());
  return (static_cast<double>(k_) - 1.0) / u;
}

double KMinHashSketch::EstimateResemblance(const KMinHashSketch& other) const {
  // Merge the two sketches' values, take the k smallest of the union, and
  // count how many appear in both sketches.
  std::vector<uint64_t> a = MinValues();
  std::vector<uint64_t> b = other.MinValues();
  std::vector<uint64_t> merged;
  merged.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  size_t take = std::min<size_t>(k_, merged.size());
  if (take == 0) return 1.0;  // two empty sets are identical
  size_t in_both = 0;
  for (size_t i = 0; i < take; ++i) {
    uint64_t h = merged[i];
    bool ina = std::binary_search(a.begin(), a.end(), h);
    bool inb = std::binary_search(b.begin(), b.end(), h);
    if (ina && inb) ++in_both;
  }
  return static_cast<double>(in_both) / static_cast<double>(take);
}

double KMinHashSketch::EstimateRarity() const {
  if (entries_.empty()) return 0.0;
  uint64_t singletons = 0;
  for (const auto& [h, cnt] : entries_) {
    if (cnt == 1) ++singletons;
  }
  return static_cast<double>(singletons) / static_cast<double>(entries_.size());
}

void KMinHashSketch::Clear() {
  entries_.clear();
  heap_.clear();
  offers_ = 0;
}

void KMinHashSketch::SerializeTo(ByteWriter& w) const {
  w.U64(k_);
  w.U64(hash_seed_);
  w.U64(offers_);
  // Emit entries sorted by hash so the snapshot bytes are independent of
  // the flat table's slot order (two equal sketches serialize identically).
  std::vector<std::pair<uint64_t, uint64_t>> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [h, cnt] : entries_) sorted.emplace_back(h, cnt);
  std::sort(sorted.begin(), sorted.end());
  w.U64(sorted.size());
  for (const auto& [h, cnt] : sorted) {
    w.U64(h);
    w.U64(cnt);
  }
}

void KMinHashSketch::RestoreFrom(ByteReader& r) {
  k_ = r.U64();
  hash_seed_ = r.U64();
  offers_ = r.U64();
  entries_.clear();
  heap_.clear();
  uint64_t n = r.U64();
  if (!r.CheckCount(n, 16)) return;
  entries_.reserve(static_cast<size_t>(n));
  heap_.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t h = r.U64();
    uint64_t cnt = r.U64();
    entries_.emplace(h, cnt);
    heap_.push_back(h);
  }
  std::make_heap(heap_.begin(), heap_.end());
}

}  // namespace streamop
