// Manku-Motwani lossy counting ("Approximate frequency counts over data
// streams", VLDB 2002), the heavy-hitters algorithm of §4.2.
//
// The stream is divided into buckets of width w = ceil(1/eps). Each entry
// (e, f, delta) tracks element e with estimated count f and maximal
// undercount delta. At every bucket boundary, entries with
// f + delta <= b_current are pruned. Query(s) returns all elements with
// f >= (s - eps) * N; guarantees: no element with true frequency >= s*N is
// missed, and no element with true frequency < (s - eps)*N is returned.

#ifndef STREAMOP_SAMPLING_LOSSY_COUNTING_H_
#define STREAMOP_SAMPLING_LOSSY_COUNTING_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/flat_hash_table.h"
#include "common/serde.h"

namespace streamop {

template <typename K, typename Hash = FlatHash<K>>
class LossyCounting {
 public:
  struct Entry {
    K element;
    uint64_t frequency;   // estimated count f
    uint64_t max_error;   // delta
  };

  explicit LossyCounting(double epsilon)
      : epsilon_(epsilon),
        bucket_width_(static_cast<uint64_t>(std::ceil(1.0 / epsilon))) {}

  /// Processes one stream element.
  void Offer(const K& element) {
    ++n_;
    auto it = table_.find(element);
    if (it != table_.end()) {
      ++it->second.frequency;
    } else {
      table_.emplace(element,
                     Counts{1, current_bucket_ > 0 ? current_bucket_ - 1 : 0});
    }
    if (n_ % bucket_width_ == 0) {
      ++current_bucket_;
      Prune();
    }
  }

  /// All elements whose true frequency may be >= s*N (the guarantee set).
  std::vector<Entry> Query(double support) const {
    std::vector<Entry> out;
    double threshold = (support - epsilon_) * static_cast<double>(n_);
    for (const auto& [k, c] : table_) {
      if (static_cast<double>(c.frequency) >= threshold) {
        out.push_back(Entry{k, c.frequency, c.max_error});
      }
    }
    return out;
  }

  /// Estimated frequency of one element (0 if not tracked).
  uint64_t EstimateFrequency(const K& element) const {
    auto it = table_.find(element);
    return it == table_.end() ? 0 : it->second.frequency;
  }

  uint64_t stream_length() const { return n_; }
  uint64_t current_bucket() const { return current_bucket_; }
  size_t table_size() const { return table_.size(); }
  double epsilon() const { return epsilon_; }
  uint64_t bucket_width() const { return bucket_width_; }

  void Clear() {
    table_.clear();
    n_ = 0;
    current_bucket_ = 1;
  }

  /// Checkpoint: config, stream position and the tracked (element, f,
  /// delta) entries. Element types serialize via SerdeWrite/SerdeRead.
  void SerializeTo(ByteWriter& w) const {
    w.F64(epsilon_);
    w.U64(bucket_width_);
    w.U64(n_);
    w.U64(current_bucket_);
    w.U64(table_.size());
    for (const auto& [k, c] : table_) {
      SerdeWrite(w, k);
      w.U64(c.frequency);
      w.U64(c.max_error);
    }
  }
  void RestoreFrom(ByteReader& r) {
    epsilon_ = r.F64();
    bucket_width_ = r.U64();
    n_ = r.U64();
    current_bucket_ = r.U64();
    table_.clear();
    uint64_t count = r.U64();
    if (!r.CheckCount(count, 16)) return;
    table_.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      K k{};
      SerdeRead(r, &k);
      Counts c;
      c.frequency = r.U64();
      c.max_error = r.U64();
      table_.emplace(std::move(k), c);
    }
  }

 private:
  struct Counts {
    uint64_t frequency;
    uint64_t max_error;
  };

  // The flat table's erase-while-iterating can revisit an entry shifted
  // across the array wrap; the retention predicate is idempotent, so a
  // double visit is harmless.
  void Prune() {
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->second.frequency + it->second.max_error <= current_bucket_) {
        it = table_.erase(it);
      } else {
        ++it;
      }
    }
  }

  double epsilon_;
  uint64_t bucket_width_;
  uint64_t n_ = 0;
  uint64_t current_bucket_ = 1;
  FlatHashTable<K, Counts, Hash> table_;
};

}  // namespace streamop

#endif  // STREAMOP_SAMPLING_LOSSY_COUNTING_H_
